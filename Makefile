# Development targets mirroring the CI jobs (.github/workflows/ci.yml).
# `make check` runs everything CI runs, locally.

GO ?= go

.PHONY: build test race bench bench-smoke lint fmt check cover-server fuzz-smoke serve

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detector pass over the concurrent packages: query engine, store
# (including the snapshot round-trip under concurrent writers), snapshot
# format, HTTP server, and the sharded response cache.
race:
	$(GO) test -race ./internal/store/... ./internal/snapshot/... ./internal/sparql/... ./internal/server/...

# Coverage gate for the HTTP server subsystem (the CI threshold).
cover-server:
	$(GO) test -covermode=atomic -coverprofile=server-cover.out ./internal/server/...
	@total=$$($(GO) tool cover -func=server-cover.out | awk '/^total:/ {sub(/%/, "", $$3); print $$3}'); \
	echo "internal/server coverage: $$total%"; \
	awk "BEGIN { exit !($$total >= 80) }" || { echo "FAIL: coverage $$total% < 80%"; exit 1; }

# Short coverage-guided fuzz smoke over the text-format parsers.
fuzz-smoke:
	$(GO) test -fuzz=FuzzParseQuery -fuzztime=10s ./internal/sparql
	$(GO) test -fuzz=FuzzNTriples -fuzztime=10s ./internal/ntriples

# Run the exploration server on the embedded demo dataset.
serve:
	$(GO) run ./cmd/lodvizd -addr :8080

# Full benchmark suite (slow; see bench-smoke for the CI variant).
bench:
	$(GO) test -run='^$$' -bench=. -benchmem .

# One-iteration smoke of the BGP join benchmarks and the ingestion
# benchmarks (bulk AddBatch vs the per-triple Add loop at 100k triples):
# verifies the benchmark paths execute, without timing noise gating CI.
bench-smoke:
	$(GO) test -run='^$$' -bench=BGP -benchtime=1x .
	$(GO) test -run='^$$' -bench='AddBatch|AddAll|AddSequential|SnapshotWrite' -benchtime=1x ./internal/store

lint:
	$(GO) vet ./...
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

fmt:
	gofmt -w .

check: build lint test race bench-smoke cover-server
