# Development targets mirroring the CI jobs (.github/workflows/ci.yml).
# `make check` runs everything CI runs, locally.

GO ?= go

.PHONY: build test race bench bench-smoke lint fmt check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detector pass over the concurrent query-engine packages.
race:
	$(GO) test -race ./internal/store/... ./internal/sparql/...

# Full benchmark suite (slow; see bench-smoke for the CI variant).
bench:
	$(GO) test -run='^$$' -bench=. -benchmem .

# One-iteration smoke of the BGP join benchmarks: verifies the parallel
# engine's benchmark path executes, without timing noise gating CI.
bench-smoke:
	$(GO) test -run='^$$' -bench=BGP -benchtime=1x .

lint:
	$(GO) vet ./...
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

fmt:
	gofmt -w .

check: build lint test race bench-smoke
