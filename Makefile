# Development targets mirroring the CI jobs (.github/workflows/ci.yml).
# `make check` runs everything CI runs, locally.

GO ?= go

.PHONY: build test race bench bench-smoke lint fmt check cover-server fuzz-smoke serve serve-cluster

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detector pass over the concurrent packages: query engine, store
# (including the snapshot round-trip under concurrent writers), snapshot
# format, the federation mesh (parallel bind-join batches, circuit
# breakers, TTL cache), HTTP server, and the sharded response cache; plus
# the multi-node federation smoke (two httptest lodvizd instances answering
# one SERVICE query).
race:
	$(GO) test -race ./internal/store/... ./internal/snapshot/... ./internal/sparql/... ./internal/federation/... ./internal/server/...
	$(GO) test -race -run 'Federated|ServiceSilent' .

# Coverage gate for the HTTP server subsystem (the CI threshold).
cover-server:
	$(GO) test -covermode=atomic -coverprofile=server-cover.out ./internal/server/...
	@total=$$($(GO) tool cover -func=server-cover.out | awk '/^total:/ {sub(/%/, "", $$3); print $$3}'); \
	echo "internal/server coverage: $$total%"; \
	awk "BEGIN { exit !($$total >= 80) }" || { echo "FAIL: coverage $$total% < 80%"; exit 1; }

# Short coverage-guided fuzz smoke over the text-format parsers and the
# federation results decoder (it consumes untrusted remote bytes).
fuzz-smoke:
	$(GO) test -fuzz=FuzzParseQuery -fuzztime=10s ./internal/sparql
	$(GO) test -fuzz=FuzzNTriples -fuzztime=10s ./internal/ntriples
	$(GO) test -fuzz=FuzzDecodeResults -fuzztime=10s ./internal/federation

# Run the exploration server on the embedded demo dataset.
serve:
	$(GO) run ./cmd/lodvizd -addr :8080

# Run a local two-node federation mesh on :8081/:8082, each peered with the
# other, both serving the embedded demo dataset. Try:
#   curl localhost:8081/federation
#   curl -G localhost:8081/sparql --data-urlencode \
#     'query=SELECT * WHERE { SERVICE <http://localhost:8082/sparql> { ?s ?p ?o } } LIMIT 5'
serve-cluster:
	$(GO) build -o /tmp/lodvizd-cluster ./cmd/lodvizd
	/tmp/lodvizd-cluster -addr :8081 -peer http://localhost:8082/sparql & \
	/tmp/lodvizd-cluster -addr :8082 -peer http://localhost:8081/sparql & \
	wait

# Full benchmark suite (slow; see bench-smoke for the CI variant).
bench:
	$(GO) test -run='^$$' -bench=. -benchmem .

# One-iteration smoke of the BGP join benchmarks, the ingestion benchmarks
# (bulk AddBatch vs the per-triple Add loop at 100k triples), and the
# federation bind-join benchmarks (batched VALUES dispatch vs
# one-request-per-binding at 1k bindings): verifies the benchmark paths
# execute, without timing noise gating CI. The streaming LIMIT-pushdown
# pair (materializing pipeline vs early-terminating scan over a >100k-
# solution BGP) additionally records its timings as BENCH_stream.json —
# the start of the benchmark trajectory CI archives per run.
bench-smoke:
	$(GO) test -run='^$$' -bench=BGP -benchtime=1x .
	$(GO) test -run='^$$' -bench='AddBatch|AddAll|AddSequential|SnapshotWrite' -benchtime=1x ./internal/store
	$(GO) test -run='^$$' -bench=BindJoin -benchtime=1x ./internal/federation
	$(GO) test -run='^$$' -bench=LimitPushdown -benchtime=1x -json . > BENCH_stream.json
	@grep -o '"Output":"Benchmark[^"]*' BENCH_stream.json | sed 's/"Output":"//' || true
	@test -s BENCH_stream.json || { echo "FAIL: BENCH_stream.json is empty"; exit 1; }

lint:
	$(GO) vet ./...
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

fmt:
	gofmt -w .

check: build lint test race bench-smoke cover-server
