# Development targets mirroring the CI jobs (.github/workflows/ci.yml).
# `make check` runs everything CI runs, locally.

GO ?= go

.PHONY: build test race bench bench-smoke bench-regression bench-baseline lint analyze fmt check cover-server fuzz-smoke serve serve-cluster

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detector pass over the concurrent packages: query engine (both the
# hash-join and dictionary-ID merge-join executors), store (including the
# snapshot round-trip under concurrent writers and the permutation ID
# scans with epoch restarts), snapshot format, the federation mesh
# (parallel bind-join batches, circuit breakers, TTL cache), HTTP server,
# the sharded response cache, and the metrics registry (sharded histograms
# and vec instantiation under concurrent scrapes); plus a focused rerun of
# the dictionary/permutation paths under writers and the multi-node
# federation smoke (two httptest lodvizd instances answering one SERVICE
# query).
race:
	$(GO) test -race ./internal/store/... ./internal/snapshot/... ./internal/sparql/... ./internal/federation/... ./internal/server/... ./internal/wal/... ./internal/ledger/... ./internal/explore/... ./internal/facet/... ./internal/hetree/... ./internal/progressive/... ./internal/sampling/... ./internal/prefetch/... ./internal/obs/...
	$(GO) test -race -count=2 -run 'ScanIDs|IDJoin|StreamConcurrentWriters' ./internal/store ./internal/sparql
	$(GO) test -race -run 'Federated|ServiceSilent' .

# Coverage gate for the HTTP server subsystem and the metrics registry it
# exposes (the CI threshold applies to the combined profile).
cover-server:
	$(GO) test -covermode=atomic -coverprofile=server-cover.out ./internal/server/... ./internal/obs/...
	@total=$$($(GO) tool cover -func=server-cover.out | awk '/^total:/ {sub(/%/, "", $$3); print $$3}'); \
	echo "internal/server+internal/obs coverage: $$total%"; \
	awk "BEGIN { exit !($$total >= 80) }" || { echo "FAIL: coverage $$total% < 80%"; exit 1; }

# Short coverage-guided fuzz smoke over the text-format parsers and the
# federation results decoder (it consumes untrusted remote bytes).
fuzz-smoke:
	$(GO) test -fuzz=FuzzParseQuery -fuzztime=10s ./internal/sparql
	$(GO) test -fuzz=FuzzNTriples -fuzztime=10s ./internal/ntriples
	$(GO) test -fuzz=FuzzDecodeResults -fuzztime=10s ./internal/federation
	$(GO) test -fuzz=FuzzWALDecode -fuzztime=10s ./internal/wal

# Run the exploration server on the embedded demo dataset.
serve:
	$(GO) run ./cmd/lodvizd -addr :8080

# Run a local two-node federation mesh on :8081/:8082, each peered with the
# other, both serving the embedded demo dataset. Try:
#   curl localhost:8081/federation
#   curl -G localhost:8081/sparql --data-urlencode \
#     'query=SELECT * WHERE { SERVICE <http://localhost:8082/sparql> { ?s ?p ?o } } LIMIT 5'
serve-cluster:
	$(GO) build -o /tmp/lodvizd-cluster ./cmd/lodvizd
	/tmp/lodvizd-cluster -addr :8081 -peer http://localhost:8082/sparql & \
	/tmp/lodvizd-cluster -addr :8082 -peer http://localhost:8081/sparql & \
	wait

# Full benchmark suite (slow; see bench-smoke for the CI variant).
bench:
	$(GO) test -run='^$$' -bench=. -benchmem .

# One-iteration smoke of the BGP join benchmarks (hash and dictionary-ID
# executors), the ingestion benchmarks (bulk AddBatch vs the per-triple
# Add loop at 100k triples), the federation bind-join benchmarks (batched
# VALUES dispatch vs one-request-per-binding at 1k bindings), and the
# streaming LIMIT-pushdown pair: verifies the benchmark paths execute,
# without timing noise gating CI. Timing regressions are gated separately
# by bench-regression against the committed baseline.
bench-smoke:
	$(GO) test -run='^$$' -bench=BGP -benchtime=1x .
	$(GO) test -run='^$$' -bench='AddBatch|AddAll|AddSequential|SnapshotWrite' -benchtime=1x ./internal/store
	$(GO) test -run='^$$' -bench=BindJoin -benchtime=1x ./internal/federation
	$(GO) test -run='^$$' -bench=LimitPushdown -benchtime=1x .

# Benchmark regression gate: replay the pinned scenarios best-of-3 and
# fail on >25% regression against bench/baseline.json (override the ratio
# with BENCH_GATE=1.50 etc.), or on a speedup scenario dropping below its
# hard floor. Artifacts BENCH_store.json / BENCH_stream.json are what CI
# uploads per run.
bench-regression:
	$(GO) run ./cmd/benchharness -scenarios store -out BENCH_store.json -gate
	$(GO) run ./cmd/benchharness -scenarios stream -out BENCH_stream.json -gate
	$(GO) run ./cmd/benchharness -scenarios write -out BENCH_write.json -gate
	$(GO) run ./cmd/benchharness -scenarios explore -out BENCH_explore.json -gate
	$(GO) run ./cmd/benchharness -scenarios obs -out BENCH_obs.json -gate

# Refresh the committed baseline after an intentional perf change; commit
# the resulting bench/baseline.json diff alongside the change.
bench-baseline:
	$(GO) run ./cmd/benchharness -scenarios store -update-baseline
	$(GO) run ./cmd/benchharness -scenarios stream -update-baseline
	$(GO) run ./cmd/benchharness -scenarios write -update-baseline
	$(GO) run ./cmd/benchharness -scenarios explore -update-baseline
	$(GO) run ./cmd/benchharness -scenarios obs -update-baseline

# go vet + gofmt always; staticcheck/gosimple/unused etc. run via
# golangci-lint when it is installed (CI always runs it — see the lint
# job and .golangci.yml).
lint:
	$(GO) vet ./...
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi
	@if command -v golangci-lint >/dev/null 2>&1; then \
		golangci-lint run ./...; \
	else \
		echo "golangci-lint not installed; skipping (CI runs it)"; fi

fmt:
	gofmt -w .

# lodvizvet: the engine's own analyzer suite (pagelock, ctxflow, syncerr,
# idspace, obshandle — see internal/analysis/README.md). Runs through
# `go vet -vettool` so results integrate with cmd/go's caching and cover
# test variants of every package.
analyze:
	$(GO) build -o bin/lodvizvet ./cmd/lodvizvet
	$(GO) vet -vettool=$(CURDIR)/bin/lodvizvet ./...

check: build lint analyze test race bench-smoke bench-regression cover-server
