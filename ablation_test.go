// Ablation benchmarks for the design choices DESIGN.md calls out:
// WoD-specific indexes vs scanning, buffer-pool sizing, join-order
// robustness, and hierarchy fan-out.
package lodviz

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"github.com/lodviz/lodviz/internal/hetree"
	"github.com/lodviz/lodviz/internal/nanocube"
	"github.com/lodviz/lodviz/internal/sparql"
	"github.com/lodviz/lodviz/internal/spatial"
	"github.com/lodviz/lodviz/internal/store"
)

// Ablation 1 — Nanocube vs raw scan for spatio-temporal counting (the §4
// "indexes for WoD tasks" recommendation, quantified).

type stEvent struct{ x, y, t float64 }

func ablationEvents(n int) []stEvent {
	rng := rand.New(rand.NewSource(21))
	evs := make([]stEvent, n)
	for i := range evs {
		evs[i] = stEvent{x: rng.Float64() * 100, y: rng.Float64() * 100, t: rng.Float64() * 10}
	}
	return evs
}

func BenchmarkAblationNanocubeCount(b *testing.B) {
	evs := ablationEvents(200000)
	nc, err := nanocube.New(nanocube.Options{
		World: nanocube.BBox{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100},
		TMin:  0, TMax: 10, TimeBins: 64, Depth: 8,
	})
	if err != nil {
		b.Fatal(err)
	}
	for _, e := range evs {
		nc.Add(e.x, e.y, e.t)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nc.Count(nanocube.BBox{MinX: 10, MinY: 10, MaxX: 60, MaxY: 60}, 2, 7)
	}
}

func BenchmarkAblationScanCount(b *testing.B) {
	evs := ablationEvents(200000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		for _, e := range evs {
			if e.x >= 10 && e.x < 60 && e.y >= 10 && e.y < 60 && e.t >= 2 && e.t < 7 {
				n++
			}
		}
		if n == 0 {
			b.Fatal("empty count")
		}
	}
}

// Ablation 2 — buffer-pool sizing for viewport queries.

func poolBench(b *testing.B, poolPages int) {
	rng := rand.New(rand.NewSource(8))
	pts := make([]spatial.TilePoint, 100000)
	for i := range pts {
		pts[i] = spatial.TilePoint{ID: uint32(i), X: rng.Float64() * 4096, Y: rng.Float64() * 4096}
	}
	dir, err := os.MkdirTemp("", "lodviz-abl")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { os.RemoveAll(dir) })
	ts, err := spatial.NewTileStore(filepath.Join(dir, "t.db"), spatial.NewRect(0, 0, 4096, 4096), 32, poolPages)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { ts.Close() })
	if err := ts.AddAll(pts); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := spatial.NewRect(float64(i%8)*400, float64(i%4)*800, float64(i%8)*400+1024, float64(i%4)*800+1024)
		if _, err := ts.Query(w); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationPool8Pages(b *testing.B)   { poolBench(b, 8) }
func BenchmarkAblationPool256Pages(b *testing.B) { poolBench(b, 256) }

// Ablation 3 — join-order robustness: the engine's selectivity reordering
// should make author order irrelevant (selective-first and selective-last
// formulations cost the same).

func joinStore(b *testing.B) *store.Store {
	b.Helper()
	st := store.New()
	for i := 0; i < 20000; i++ {
		s := IRI(fmt.Sprintf("http://e/item%d", i))
		st.Add(Triple{S: s, P: "http://e/type", O: IRI("http://e/Item")})
		st.Add(Triple{S: s, P: "http://e/val", O: NewInteger(int64(i))})
		if i%1000 == 0 {
			st.Add(Triple{S: s, P: "http://e/special", O: NewLiteral("yes")})
		}
	}
	st.Compact()
	return st
}

func joinBench(b *testing.B, q string) {
	st := joinStore(b)
	parsed, err := sparql.Parse(q)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sparql.Eval(st, parsed)
		if err != nil || len(res.Rows) != 20 {
			b.Fatalf("rows=%d err=%v", len(res.Rows), err)
		}
	}
}

func BenchmarkAblationJoinSelectiveFirst(b *testing.B) {
	joinBench(b, `SELECT ?s ?v WHERE {
  ?s <http://e/special> "yes" .
  ?s <http://e/type> <http://e/Item> .
  ?s <http://e/val> ?v . }`)
}

func BenchmarkAblationJoinSelectiveLast(b *testing.B) {
	joinBench(b, `SELECT ?s ?v WHERE {
  ?s <http://e/type> <http://e/Item> .
  ?s <http://e/val> ?v .
  ?s <http://e/special> "yes" . }`)
}

// Ablation 4 — HETree fan-out: overview latency at degree 2 vs 16.

func hetreeDegreeBench(b *testing.B, degree int) {
	rng := rand.New(rand.NewSource(5))
	items := make([]hetree.Item, 500000)
	for i := range items {
		items[i] = hetree.Item{Value: rng.NormFloat64() * 1000}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr, err := hetree.New(items, hetree.Options{Degree: degree, LeafCapacity: 64, Incremental: true})
		if err != nil {
			b.Fatal(err)
		}
		tr.LevelFor(256)
	}
}

func BenchmarkAblationHETreeDegree2(b *testing.B)  { hetreeDegreeBench(b, 2) }
func BenchmarkAblationHETreeDegree16(b *testing.B) { hetreeDegreeBench(b, 16) }
