package lodviz

import (
	"fmt"

	"github.com/lodviz/lodviz/internal/explain"
	"github.com/lodviz/lodviz/internal/facet"
	"github.com/lodviz/lodviz/internal/nanocube"
	"github.com/lodviz/lodviz/internal/rdf"
	"github.com/lodviz/lodviz/internal/store"
)

// User-assistance and WoD-specific index extensions — the "possible
// directions for the future WoD exploration and visualization systems" of
// the survey's Section 4, implemented.

type (
	// FacetSuggestion ranks a facet as the next drill-down step.
	FacetSuggestion = facet.Suggestion
	// Nanocube is a spatio-temporal count index (region × time-range
	// aggregation independent of event count).
	Nanocube = nanocube.Nanocube
	// NanocubeOptions configure a Nanocube.
	NanocubeOptions = nanocube.Options
	// NanocubeBBox is a spatial query/domain rectangle.
	NanocubeBBox = nanocube.BBox
	// ExplainRow is one record of an aggregate view handed to the outlier
	// explainer.
	ExplainRow = explain.Row
	// Explanation is one candidate cause of an outlier.
	Explanation = explain.Explanation
)

// NewNanocube creates an empty spatio-temporal count index.
func NewNanocube(opts NanocubeOptions) (*Nanocube, error) {
	nc, err := nanocube.New(opts)
	if err != nil {
		return nil, fmt.Errorf("lodviz: %w", err)
	}
	return nc, nil
}

// EventCube builds a Nanocube over the dataset's geolocated entities, using
// the given temporal property (xsd:dateTime/date/gYear) as the event time.
// Entities without the property are skipped; the time domain is fitted to
// the data.
func (d *Dataset) EventCube(timeProp IRI, timeBins, depth int) (*Nanocube, error) {
	points := d.GeoPoints()
	if len(points) == 0 {
		return nil, fmt.Errorf("lodviz: no geolocated entities")
	}
	type ev struct {
		x, y, t float64
	}
	var events []ev
	tMin, tMax := 0.0, 0.0
	first := true
	for _, p := range points {
		d.st.ForEach(store.Pattern{S: p.Entity, P: timeProp}, func(tr Triple) bool {
			l, ok := tr.O.(rdf.Literal)
			if !ok {
				return true
			}
			tm, ok := l.Time()
			if !ok {
				return true
			}
			t := float64(tm.Unix())
			events = append(events, ev{x: p.Lon, y: p.Lat, t: t})
			if first || t < tMin {
				tMin = t
			}
			if first || t > tMax {
				tMax = t
			}
			first = false
			return true
		})
	}
	if len(events) == 0 {
		return nil, fmt.Errorf("lodviz: no events with temporal property %s", timeProp)
	}
	nc, err := nanocube.New(nanocube.Options{
		World: nanocube.BBox{MinX: -180, MinY: -90, MaxX: 180, MaxY: 90},
		TMin:  tMin, TMax: tMax + 1,
		TimeBins: timeBins, Depth: depth,
	})
	if err != nil {
		return nil, fmt.Errorf("lodviz: %w", err)
	}
	for _, e := range events {
		nc.Add(e.x, e.y, e.t)
	}
	return nc, nil
}

// ExplainOutliers finds the attribute restrictions that best explain why
// the flagged groups' aggregates deviate (Scorpion-style). rows carry one
// entity/group/value record per aggregate input.
func (d *Dataset) ExplainOutliers(rows []ExplainRow, outlierGroups []string, k int) ([]Explanation, error) {
	return explain.Outliers(d.st, rows, outlierGroups, k, explain.Options{})
}
