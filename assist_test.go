package lodviz

import (
	"fmt"
	"testing"
	"time"
)

func TestEventCube(t *testing.T) {
	ds, err := GenerateGeoPoints(500, 4, 9)
	if err != nil {
		t.Fatal(err)
	}
	// Attach a temporal property to every place.
	for i := 0; i < 500; i++ {
		ts := time.Date(2000+i%16, time.Month(1+i%12), 1, 0, 0, 0, 0, time.UTC)
		if err := ds.Add(Triple{
			S: GenRes("place", i),
			P: GenProp("observedAt"),
			O: newDateTime(ts),
		}); err != nil {
			t.Fatal(err)
		}
	}
	nc, err := ds.EventCube(GenProp("observedAt"), 32, 6)
	if err != nil {
		t.Fatal(err)
	}
	if nc.Len() != 500 {
		t.Errorf("events = %d", nc.Len())
	}
	world := NanocubeBBox{MinX: -180, MinY: -90, MaxX: 180, MaxY: 90}
	series := nc.TimeSeries(world)
	total := 0
	for _, c := range series {
		total += c
	}
	if total != 500 {
		t.Errorf("series total = %d", total)
	}
	cells, err := nc.Heatmap(3, -1e18, 1e18)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) == 0 {
		t.Error("empty heatmap")
	}
}

func newDateTime(ts time.Time) Literal {
	return Literal{
		Lexical:  ts.UTC().Format("2006-01-02T15:04:05Z"),
		Datatype: "http://www.w3.org/2001/XMLSchema#dateTime",
	}
}

func TestEventCubeErrors(t *testing.T) {
	ds := MiniLOD()
	if _, err := ds.EventCube(GenProp("nope"), 8, 4); err == nil {
		t.Error("missing temporal property accepted")
	}
	empty, _ := FromTriples(nil)
	if _, err := empty.EventCube(GenProp("x"), 8, 4); err == nil {
		t.Error("no geo entities accepted")
	}
}

func TestExplainOutliersViaFacade(t *testing.T) {
	ds, err := GenerateEntities(EntityOptions{Entities: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Entities of class 0 have huge values in group "g1".
	var rows []ExplainRow
	for i := 0; i < 10; i++ {
		v := 10.0
		g := "g0"
		if i >= 5 {
			g = "g1"
			v = 10
			// Entities 5..7 happen to be whatever class the generator gave;
			// we manufacture a clear signal via an extra attribute instead.
		}
		rows = append(rows, ExplainRow{Entity: GenRes("entity", i), Group: g, Value: v})
	}
	// Mark three outlier-group entities with a distinctive attribute and
	// boost their values.
	for i := 5; i < 8; i++ {
		ds.Add(Triple{S: GenRes("entity", i), P: GenProp("flag"), O: NewLiteral("buggy")})
		rows[i].Value = 500
	}
	exps, err := ds.ExplainOutliers(rows, []string{"g1"}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(exps) == 0 {
		t.Fatal("no explanations")
	}
	if exps[0].Predicate != GenProp("flag") {
		t.Errorf("top explanation = %v, want flag (all %+v)", exps[0].Predicate, exps)
	}
}

func TestFacetSuggestionsViaFacade(t *testing.T) {
	ds, err := GenerateEntities(EntityOptions{Entities: 300, CategoryProps: 2, Categories: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	s := ds.Explore(DefaultPreferences()).Facets()
	sugg := s.SuggestNext(3)
	if len(sugg) == 0 {
		t.Fatal("no suggestions")
	}
	for i := 1; i < len(sugg); i++ {
		if sugg[i].Score > sugg[i-1].Score {
			t.Error("suggestions not sorted")
		}
	}
	fmt.Sprintln(sugg[0].Predicate) // exercise the exported fields
	if sugg[0].Coverage <= 0 || sugg[0].Entropy <= 0 {
		t.Errorf("suggestion fields: %+v", sugg[0])
	}
}
