// Benchmarks, one group per experiment in DESIGN.md's index (E1–E12).
// cmd/benchharness runs the same workloads as parameter sweeps and prints
// paper-style rows; these testing.B benches give per-operation costs.
package lodviz

import (
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"github.com/lodviz/lodviz/internal/aggregate"
	"github.com/lodviz/lodviz/internal/bundling"
	"github.com/lodviz/lodviz/internal/crack"
	"github.com/lodviz/lodviz/internal/gen"
	"github.com/lodviz/lodviz/internal/hetree"
	"github.com/lodviz/lodviz/internal/layout"
	"github.com/lodviz/lodviz/internal/prefetch"
	"github.com/lodviz/lodviz/internal/progressive"
	"github.com/lodviz/lodviz/internal/recommend"
	"github.com/lodviz/lodviz/internal/registry"
	"github.com/lodviz/lodviz/internal/sampling"
	"github.com/lodviz/lodviz/internal/sparql"
	"github.com/lodviz/lodviz/internal/spatial"
	"github.com/lodviz/lodviz/internal/store"
	"github.com/lodviz/lodviz/internal/super"
)

// E1/E2 — survey table regeneration.

func BenchmarkTable1Generation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if registry.RenderTable1() == "" {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkTable2Generation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if registry.RenderTable2() == "" {
			b.Fatal("empty table")
		}
	}
}

// E3 — reduction strategies (100k points → 10k budget).

func e3Points(n int) []sampling.Point {
	rng := rand.New(rand.NewSource(7))
	pts := make([]sampling.Point, n)
	for i := range pts {
		if i%997 == 0 {
			pts[i] = sampling.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}
		} else {
			pts[i] = sampling.Point{X: 50 + rng.NormFloat64()*2, Y: 50 + rng.NormFloat64()*2}
		}
	}
	return pts
}

func BenchmarkE3ReductionReservoir(b *testing.B) {
	pts := e3Points(100000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, _ := sampling.NewReservoir[sampling.Point](10000, 1)
		for _, p := range pts {
			r.Add(p)
		}
		_ = r.Sample()
	}
}

func BenchmarkE3ReductionVAS(b *testing.B) {
	pts := e3Points(100000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sampling.VisualizationAware(pts, 10000, 1000, 1000, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE3ReductionBin2D(b *testing.B) {
	pts := e3Points(100000)
	xs := make([]float64, len(pts))
	ys := make([]float64, len(pts))
	for i, p := range pts {
		xs[i], ys[i] = p.X, p.Y
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := aggregate.Bin2D(xs, ys, 100, 100); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE3ReductionM4(b *testing.B) {
	series := make([]aggregate.M4Point, 100000)
	for i := range series {
		series[i] = aggregate.M4Point{T: float64(i), V: math.Sin(float64(i) / 500)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := aggregate.M4(series, 1000); err != nil {
			b.Fatal(err)
		}
	}
}

// E4 — progressive aggregation.

func BenchmarkE4ProgressiveTo10Percent(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	vals := make([]float64, 1000000)
	for i := range vals {
		vals[i] = rng.ExpFloat64() * 100
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := progressive.NewSampler(vals, progressive.Mean, int64(i))
		s.Step(len(vals) / 10)
		_ = s.Current()
	}
}

// E5 — HETree construction.

func e5Items(n int) []hetree.Item {
	rng := rand.New(rand.NewSource(5))
	items := make([]hetree.Item, n)
	for i := range items {
		items[i] = hetree.Item{Value: rng.NormFloat64() * 1000}
	}
	return items
}

func BenchmarkE5HETreeFull(b *testing.B) {
	items := e5Items(100000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hetree.New(items, hetree.Options{Degree: 4, LeafCapacity: 32}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE5HETreeIncremental(b *testing.B) {
	items := e5Items(100000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr, err := hetree.New(items, hetree.Options{Degree: 4, LeafCapacity: 32, Incremental: true})
		if err != nil {
			b.Fatal(err)
		}
		// One drill-down path.
		n := tr.Root()
		for {
			cs := tr.Children(n)
			if cs == nil {
				break
			}
			n = cs[0]
		}
	}
}

// E6 — adaptive indexing: the cost of a 100-query session.

func e6Vals(n int) ([]float64, [][2]float64) {
	rng := rand.New(rand.NewSource(6))
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = rng.Float64() * 1e6
	}
	queries := make([][2]float64, 100)
	for i := range queries {
		lo := rng.Float64() * 1e6
		queries[i] = [2]float64{lo, lo + 1e4}
	}
	return vals, queries
}

func BenchmarkE6CrackingSession(b *testing.B) {
	vals, queries := e6Vals(1000000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, _ := crack.New(vals)
		for _, q := range queries {
			c.Count(q[0], q[1])
		}
	}
}

func BenchmarkE6ScanSession(b *testing.B) {
	vals, queries := e6Vals(1000000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := crack.NewScan(vals)
		for _, q := range queries {
			s.Count(q[0], q[1])
		}
	}
}

func BenchmarkE6SortSession(b *testing.B) {
	vals, queries := e6Vals(1000000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := crack.NewSorted(vals)
		for _, q := range queries {
			s.Count(q[0], q[1])
		}
	}
}

// E7 — viewport queries: disk tiles vs in-memory R-tree.

func e7Tiles(b *testing.B) (*spatial.TileStore, []spatial.TilePoint) {
	b.Helper()
	rng := rand.New(rand.NewSource(8))
	pts := make([]spatial.TilePoint, 100000)
	for i := range pts {
		pts[i] = spatial.TilePoint{ID: uint32(i), X: rng.Float64() * 4096, Y: rng.Float64() * 4096}
	}
	dir, err := os.MkdirTemp("", "lodviz-bench")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { os.RemoveAll(dir) })
	ts, err := spatial.NewTileStore(filepath.Join(dir, "t.db"), spatial.NewRect(0, 0, 4096, 4096), 32, 64)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { ts.Close() })
	if err := ts.AddAll(pts); err != nil {
		b.Fatal(err)
	}
	return ts, pts
}

func BenchmarkE7DiskTilesWindow(b *testing.B) {
	ts, _ := e7Tiles(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := spatial.NewRect(float64(i%8)*400, float64(i%4)*800, float64(i%8)*400+1024, float64(i%4)*800+1024)
		if _, err := ts.Query(w); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE7RTreeWindow(b *testing.B) {
	_, pts := e7Tiles(b)
	var rt spatial.RTree
	for _, p := range pts {
		rt.Insert(spatial.Entry{Rect: spatial.PointRect(p.X, p.Y), ID: p.ID})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := spatial.NewRect(float64(i%8)*400, float64(i%4)*800, float64(i%8)*400+1024, float64(i%4)*800+1024)
		rt.Search(w)
	}
}

// E8 — supernode frame vs flat layout.

func e8Graph(b *testing.B) *Graph {
	b.Helper()
	ds, err := GenerateScaleFree(10000, 2, 13)
	if err != nil {
		b.Fatal(err)
	}
	return ds.BuildGraph()
}

func BenchmarkE8FlatLayout(b *testing.B) {
	g := e8Graph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		layout.ForceDirected(g, layout.Options{Iterations: 5, Seed: 1})
	}
}

func BenchmarkE8SupernodeFrame(b *testing.B) {
	g := e8Graph(b)
	h := super.Build(g, super.Options{MaxLeafSize: 64, Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := h.NewView()
		v.ExpandToBudget(200)
		v.Edges()
	}
}

// E9 — bundling.

func BenchmarkE9BundlingHEB(b *testing.B) {
	parent := []int{-1, 0, 0}
	positions := []bundling.Point{{X: 500, Y: 50}, {X: 100, Y: 500}, {X: 900, Y: 500}}
	var edges []bundling.Edge
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 200; i++ {
		l1 := len(parent)
		parent = append(parent, 1)
		positions = append(positions, bundling.Point{X: 50 + rng.Float64()*100, Y: 400 + rng.Float64()*300})
		l2 := len(parent)
		parent = append(parent, 2)
		positions = append(positions, bundling.Point{X: 850 + rng.Float64()*100, Y: 400 + rng.Float64()*300})
		edges = append(edges, bundling.Edge{From: l1, To: l2})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bundling.HierarchicalBundle(edges, parent, positions, 0.9)
	}
}

// E10 — prefetch session simulation.

func BenchmarkE10PrefetchSession(b *testing.B) {
	trace := make([]prefetch.Tile, 200)
	for i := range trace {
		trace[i] = prefetch.Tile{X: i, Y: 0, Zoom: 4}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prefetch.SimulateSession(trace, 32, true, func(prefetch.Tile) {})
	}
}

// E11 — recommendation.

func BenchmarkE11Recommend(b *testing.B) {
	cols := []recommend.Profile{
		{Name: "t", Kind: recommend.Temporal, Cardinality: 100, Rows: 100, Coverage: 1},
		{Name: "v", Kind: recommend.Numeric, Cardinality: 90, Rows: 100, Coverage: 1},
		{Name: "c", Kind: recommend.Categorical, Cardinality: 6, Rows: 100, Coverage: 1},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(recommend.Recommend(cols)) == 0 {
			b.Fatal("no recommendations")
		}
	}
}

// E12 — substrate throughput.

func BenchmarkE12StoreLoad(b *testing.B) {
	triples := gen.EntityDataset(gen.EntityOptions{
		Entities: 10000, NumericProps: 2, CategoryProps: 1, LinkProps: 1, Seed: 12,
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := store.Load(triples); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(triples)), "triples/op")
}

func BenchmarkE12PatternMatch(b *testing.B) {
	st, _ := store.Load(gen.EntityDataset(gen.EntityOptions{
		Entities: 10000, NumericProps: 2, CategoryProps: 1, LinkProps: 1, Seed: 12,
	}))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.ForEach(store.Pattern{S: gen.Res("entity", i%10000)}, func(Triple) bool { return true })
	}
}

// E13 — parallel BGP join engine: the same multi-pattern join evaluated
// sequentially and by the worker-pool pipeline, over ≥100k generated triples.

func bgpJoinStore(b *testing.B) *store.Store {
	b.Helper()
	triples := gen.EntityDataset(gen.EntityOptions{
		Entities: 20000, NumericProps: 2, CategoryProps: 2, LinkProps: 1, Seed: 13,
	})
	if len(triples) < 100000 {
		b.Fatalf("dataset too small: %d triples", len(triples))
	}
	st, err := store.Load(triples)
	if err != nil {
		b.Fatal(err)
	}
	return st
}

func bgpJoinQuery(b *testing.B) *sparql.Query {
	b.Helper()
	q := fmt.Sprintf(`SELECT ?e ?o ?v WHERE { ?e <%s> "category-2" . ?e <%s> ?o . ?o <%s> ?v . }`,
		string(gen.Prop("cat0")), string(gen.Prop("rel0")), string(gen.Prop("num0")))
	parsed, err := sparql.Parse(q)
	if err != nil {
		b.Fatal(err)
	}
	return parsed
}

func benchBGPJoin(b *testing.B, parallelism int) {
	st := bgpJoinStore(b)
	parsed := bgpJoinQuery(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sparql.EvalOpts(st, parsed, sparql.Options{Parallelism: parallelism})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

func BenchmarkBGPJoinSequential(b *testing.B) { benchBGPJoin(b, 1) }

func BenchmarkBGPJoinParallel(b *testing.B) { benchBGPJoin(b, 0) }

// BenchmarkBGPJoinParallel4 pins the pool at 4 workers for machines where
// NumCPU is large enough that scheduling noise dominates.
func BenchmarkBGPJoinParallel4(b *testing.B) { benchBGPJoin(b, 4) }

// E13b — dictionary-ID execution vs the term-space hash path, isolated at
// Parallelism 1 so the comparison measures the executor, not the pool. The
// Hash variants force Options.NoIDJoin; the IDs variants run the default
// merge-join path. cmd/benchharness -scenarios store records the ratio in
// BENCH_store.json and the CI bench-regression job gates on it.

func benchBGPJoinOpts(b *testing.B, query string, opt sparql.Options) {
	st := bgpJoinStore(b)
	parsed, err := sparql.Parse(query)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sparql.EvalOpts(st, parsed, opt)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// boundPQuery is the bound-predicate case: both patterns scan a full
// predicate range and equi-join on subject AND category value, so all 20k
// entities flow through the join but only ~1/8 survive the value equality.
// The term-space path materializes a Binding map per intermediate row; the
// ID path keeps the intermediates as uint32 rows and only decodes the
// survivors.
func boundPQuery() string {
	return fmt.Sprintf(`SELECT ?e ?c WHERE { ?e <%s> ?c . ?e <%s> ?c . }`,
		string(gen.Prop("cat0")), string(gen.Prop("cat1")))
}

// boundOQuery is the bound-object case: a POS-access entry on one category
// value, a link hop, and a bound-object re-check on the link target —
// intermediate fan-out with a small surviving set.
func boundOQuery() string {
	return fmt.Sprintf(`SELECT ?e ?o WHERE { ?e <%s> "category-2" . ?e <%s> ?o . ?o <%s> "category-2" . }`,
		string(gen.Prop("cat0")), string(gen.Prop("rel0")), string(gen.Prop("cat0")))
}

func BenchmarkBGPJoinBoundPHash(b *testing.B) {
	benchBGPJoinOpts(b, boundPQuery(), sparql.Options{Parallelism: 1, NoIDJoin: true})
}

func BenchmarkBGPJoinBoundPIDs(b *testing.B) {
	benchBGPJoinOpts(b, boundPQuery(), sparql.Options{Parallelism: 1})
}

func BenchmarkBGPJoinBoundOHash(b *testing.B) {
	benchBGPJoinOpts(b, boundOQuery(), sparql.Options{Parallelism: 1, NoIDJoin: true})
}

func BenchmarkBGPJoinBoundOIDs(b *testing.B) {
	benchBGPJoinOpts(b, boundOQuery(), sparql.Options{Parallelism: 1})
}

// E14 — streaming LIMIT pushdown: a first-page exploration query
// (LIMIT 10) over a BGP with >100k solutions, evaluated by the
// materializing pipeline (full scan, then slice) and by the streaming
// fast path (scan stops after 10 solutions). The streamed variant's cost
// scales with the limit, not the dataset — expect several orders of
// magnitude, comfortably past the 10x bar.

func limitPushdownStore(b *testing.B) *store.Store {
	b.Helper()
	// One value triple per entity: the single-pattern BGP below has
	// exactly `entities` solutions.
	const entities = 120000
	triples := make([]Triple, 0, entities)
	for i := 0; i < entities; i++ {
		triples = append(triples, Triple{
			S: IRI(fmt.Sprintf("http://bench/e%d", i)),
			P: "http://bench/value",
			O: NewInteger(int64(i)),
		})
	}
	st, err := store.Load(triples)
	if err != nil {
		b.Fatal(err)
	}
	return st
}

func benchLimitPushdown(b *testing.B, noStream bool) {
	st := limitPushdownStore(b)
	parsed, err := sparql.Parse(`SELECT ?s ?v WHERE { ?s <http://bench/value> ?v } LIMIT 10`)
	if err != nil {
		b.Fatal(err)
	}
	opt := sparql.Options{NoStream: noStream}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sparql.EvalOpts(st, parsed, opt)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) != 10 {
			b.Fatalf("got %d rows, want 10", len(res.Rows))
		}
	}
}

func BenchmarkLimitPushdownMaterialized(b *testing.B) { benchLimitPushdown(b, true) }

func BenchmarkLimitPushdownStreamed(b *testing.B) { benchLimitPushdown(b, false) }

// BenchmarkLimitPushdownOrderByTopK: ORDER BY ?v LIMIT 10 over the same
// store — the full scan is unavoidable, but the bounded heap replaces the
// 120k-row sort (O(n log k) comparisons, O(k) sort memory).
func BenchmarkLimitPushdownOrderByTopK(b *testing.B) {
	st := limitPushdownStore(b)
	parsed, err := sparql.Parse(`SELECT ?s ?v WHERE { ?s <http://bench/value> ?v } ORDER BY DESC(?v) LIMIT 10`)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sparql.EvalOpts(st, parsed, sparql.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) != 10 {
			b.Fatalf("got %d rows, want 10", len(res.Rows))
		}
	}
}

func BenchmarkE12SPARQLJoin(b *testing.B) {
	st, _ := store.Load(gen.EntityDataset(gen.EntityOptions{
		Entities: 5000, NumericProps: 1, CategoryProps: 1, LinkProps: 1, Seed: 12,
	}))
	q := fmt.Sprintf(`SELECT ?c (COUNT(?e) AS ?n) WHERE { ?e <%s> ?c . ?e <%s> ?v . } GROUP BY ?c`,
		string(gen.Prop("cat0")), string(gen.Prop("num0")))
	parsed, err := sparql.Parse(q)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sparql.Eval(st, parsed); err != nil {
			b.Fatal(err)
		}
	}
}
