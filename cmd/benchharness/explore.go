package main

import (
	"context"
	"errors"
	"testing"

	"github.com/lodviz/lodviz/internal/explore"
	"github.com/lodviz/lodviz/internal/facet"
	"github.com/lodviz/lodviz/internal/gen"
	"github.com/lodviz/lodviz/internal/graph"
	"github.com/lodviz/lodviz/internal/rdf"
	"github.com/lodviz/lodviz/internal/store"
)

// exploreFacetStore builds the facet-distribution workload: 20k typed
// entities with four 16-valued categorical properties and no labels — the
// faceted-browsing shape (many entities, low-cardinality facet values) where
// aggregation cost, not term decoding, dominates.
func exploreFacetStore() *store.Store {
	triples := gen.EntityDataset(gen.EntityOptions{
		Entities: 20000, CategoryProps: 4, Categories: 16, Seed: 13,
	})
	kept := triples[:0]
	for _, t := range triples {
		if t.P != rdf.RDFSLabel {
			kept = append(kept, t)
		}
	}
	st, err := store.Load(kept)
	if err != nil {
		panic(err)
	}
	return st
}

// exploreScenarios measures the progressive exploration layer against the
// paths it replaced: the ID-space facet distribution vs the old per-entity
// term-space aggregation (the PR's ≥3x acceptance bar), the progressive
// stats first-estimate latency vs the exact one-pass scan, and the direct
// ID-space neighborhood expansion vs rebuilding the whole graph per request.
func exploreScenarios() []benchResult {
	st := benchStore()
	ctx := context.Background()

	// Facet distribution over every typed entity. Both paths produce the
	// same facets (reference.go keeps the old algorithm as the differential
	// oracle); the base entity set is computed once outside the timers so
	// each measurement isolates the aggregation itself.
	fst := exploreFacetStore()
	sess := facet.NewSession(fst)
	entities := sess.BaseEntities()
	termMS := msPerOp(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if fs := facet.ReferenceFacets(fst, entities, nil, 0); len(fs) == 0 {
				b.Fatal("no facets")
			}
		}
	})
	idsMS := msPerOp(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			fs, err := sess.FacetsCtx(ctx)
			if err != nil {
				b.Fatal(err)
			}
			if len(fs) == 0 {
				b.Fatal("no facets")
			}
		}
	})

	// Stats: time to the first CLT-bounded estimate (stop after the first
	// emitted batch) vs the exact single-pass computation.
	statsFirstMS := msPerOp(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_, err := explore.StreamStats(ctx, st, 0, 1, func(explore.StatsBatch) bool { return false })
			if err != nil && !errors.Is(err, explore.ErrStopped) {
				b.Fatal(err)
			}
		}
	})
	statsExactMS := msPerOp(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if stats := st.ComputeStats(); stats.Triples == 0 {
				b.Fatal("empty stats")
			}
		}
	})

	// Neighborhood: serving one entity's immediate neighborhood from the
	// permutation indexes (warm) vs the old handler's approach of
	// materializing the entire term graph per request (rebuilt).
	start := gen.Res("entity", 0)
	hoodIDsMS := msPerOp(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := explore.FindNeighborhood(ctx, st, start, explore.NeighborhoodOptions{Hops: 1}); err != nil {
				b.Fatal(err)
			}
		}
	})
	hoodRebuiltMS := msPerOp(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			g := graph.FromStore(st)
			id, ok := g.Lookup(start)
			if !ok {
				b.Fatal("start node missing")
			}
			if nodes := g.Neighborhood(id, 1); len(nodes) == 0 {
				b.Fatal("empty neighborhood")
			}
		}
	})

	return []benchResult{
		{Name: "facet_dist_term_ms", Value: termMS, Unit: "ms", Better: "lower"},
		{Name: "facet_dist_ids_ms", Value: idsMS, Unit: "ms", Better: "lower"},
		{Name: "facet_dist_speedup", Value: termMS / idsMS, Unit: "x", Better: "higher", Min: 3},
		{Name: "stats_first_estimate_ms", Value: statsFirstMS, Unit: "ms", Better: "lower"},
		{Name: "stats_exact_ms", Value: statsExactMS, Unit: "ms", Better: "lower"},
		{Name: "neighborhood_ids_ms", Value: hoodIDsMS, Unit: "ms", Better: "lower"},
		{Name: "neighborhood_rebuilt_ms", Value: hoodRebuiltMS, Unit: "ms", Better: "lower"},
		{Name: "neighborhood_speedup", Value: hoodRebuiltMS / hoodIDsMS, Unit: "x", Better: "higher", Min: 3},
	}
}
