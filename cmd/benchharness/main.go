// Benchharness runs every experiment in DESIGN.md's index (E1–E12) and
// prints paper-style result rows; EXPERIMENTS.md records its output against
// the survey's claims.
//
// Usage:
//
//	benchharness               # run everything
//	benchharness -only E6,E7   # run a subset
//	benchharness -quick        # smaller sweeps (CI-sized)
//
// Regression mode (see regress.go) measures pinned scenarios, emits a JSON
// artifact, and gates against the committed baseline:
//
//	benchharness -scenarios store -out BENCH_store.json -gate
//	benchharness -scenarios store -update-baseline   # refresh bench/baseline.json
package main

import (
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"time"

	"github.com/lodviz/lodviz"
	"github.com/lodviz/lodviz/internal/aggregate"
	"github.com/lodviz/lodviz/internal/bundling"
	"github.com/lodviz/lodviz/internal/crack"
	"github.com/lodviz/lodviz/internal/gen"
	"github.com/lodviz/lodviz/internal/hetree"
	"github.com/lodviz/lodviz/internal/layout"
	"github.com/lodviz/lodviz/internal/prefetch"
	"github.com/lodviz/lodviz/internal/progressive"
	"github.com/lodviz/lodviz/internal/recommend"
	"github.com/lodviz/lodviz/internal/sampling"
	"github.com/lodviz/lodviz/internal/sparql"
	"github.com/lodviz/lodviz/internal/spatial"
	"github.com/lodviz/lodviz/internal/store"
	"github.com/lodviz/lodviz/internal/super"
	"github.com/lodviz/lodviz/internal/vis"
)

var quick = flag.Bool("quick", false, "smaller sweeps")

func main() {
	only := flag.String("only", "", "comma-separated experiment ids (e.g. E3,E6)")
	scenarios := flag.String("scenarios", "", "regression scenario set (store, stream, write, explore, or obs); skips the experiments")
	out := flag.String("out", "", "write scenario results to this JSON artifact")
	baseline := flag.String("baseline", "bench/baseline.json", "baseline file for -gate / -update-baseline")
	updateBaseline := flag.Bool("update-baseline", false, "rewrite the baseline from this run's results")
	gate := flag.Bool("gate", false, "fail when a scenario regresses past the gate ratio (BENCH_GATE, default 1.25)")
	flag.Parse()

	if *scenarios != "" {
		os.Exit(runRegress(*scenarios, *out, *baseline, *updateBaseline, *gate))
	}

	experiments := []struct {
		id   string
		name string
		run  func()
	}{
		{"E1", "Table 1 regeneration", e1},
		{"E2", "Table 2 regeneration", e2},
		{"E3", "reduction: squeeze N objects into the pixel budget", e3},
		{"E4", "progressive approximate aggregation", e4},
		{"E5", "HETree: full vs incremental construction", e5},
		{"E6", "adaptive indexing: scan vs full sort vs cracking", e6},
		{"E7", "disk-backed tiles vs in-memory graph rendering", e7},
		{"E8", "supernode hierarchy vs flat drawing", e8},
		{"E9", "edge bundling ink reduction", e9},
		{"E10", "caching & prefetching in exploration sessions", e10},
		{"E11", "visualization recommendation accuracy", e11},
		{"E12", "triple store & SPARQL substrate throughput", e12},
	}
	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.TrimSpace(id)] = true
		}
	}
	for _, ex := range experiments {
		if len(want) > 0 && !want[ex.id] {
			continue
		}
		fmt.Printf("==== [%s] %s ====\n", ex.id, ex.name)
		start := time.Now()
		ex.run()
		fmt.Printf("---- %s done in %v\n\n", ex.id, time.Since(start).Round(time.Millisecond))
	}
}

func scale(full int) int {
	if *quick {
		return full / 10
	}
	return full
}

// E1/E2 — table regeneration.

func e1() { fmt.Println(lodviz.Table1()) }

func e2() {
	fmt.Println(lodviz.Table2())
	fmt.Println(lodviz.Observations())
}

// E3 — reduction strategies against the pixel budget ("squeeze a billion
// records into a million pixels", ref [119]).
func e3() {
	budgetW, budgetH := 1000, 1000 // one megapixel
	fmt.Printf("%-10s %-12s %10s %10s %12s %10s\n",
		"N", "strategy", "out_points", "time_ms", "coverage", "reduction")
	for _, n := range []int{scale(10000), scale(100000), scale(1000000)} {
		rng := rand.New(rand.NewSource(7))
		pts := make([]sampling.Point, n)
		for i := range pts {
			// Clustered + outliers, the adversarial case for naive sampling.
			if i%997 == 0 {
				pts[i] = sampling.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}
			} else {
				pts[i] = sampling.Point{X: 50 + rng.NormFloat64()*2, Y: 50 + rng.NormFloat64()*2}
			}
		}
		budget := 10000 // marks the view can hold
		row := func(name string, out []sampling.Point, d time.Duration) {
			cov := sampling.PixelCoverage(out, budgetW, budgetH)
			fmt.Printf("%-10d %-12s %10d %10.2f %12.5f %9.1fx\n",
				n, name, len(out), float64(d.Microseconds())/1000, cov,
				float64(n)/math.Max(1, float64(len(out))))
		}
		t0 := time.Now()
		row("raw", pts, time.Since(t0))

		t0 = time.Now()
		res, _ := sampling.NewReservoir[sampling.Point](budget, 1)
		for _, p := range pts {
			res.Add(p)
		}
		row("reservoir", res.Sample(), time.Since(t0))

		t0 = time.Now()
		vas, _ := sampling.VisualizationAware(pts, budget, budgetW, budgetH, 1)
		row("vas", vas, time.Since(t0))

		t0 = time.Now()
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i, p := range pts {
			xs[i], ys[i] = p.X, p.Y
		}
		grid, _ := aggregate.Bin2D(xs, ys, 100, 100)
		var binned []sampling.Point
		for _, c := range grid.NonEmpty() {
			binned = append(binned, sampling.Point{X: float64(c.XBin), Y: float64(c.YBin)})
		}
		row("bin2d", binned, time.Since(t0))
	}
	// M4 on a time series.
	n := scale(1000000)
	series := make([]aggregate.M4Point, n)
	for i := range series {
		series[i] = aggregate.M4Point{T: float64(i), V: math.Sin(float64(i) / 500)}
	}
	t0 := time.Now()
	m4, _ := aggregate.M4(series, 1000)
	fmt.Printf("%-10d %-12s %10d %10.2f %12s %9.1fx  (pixel-perfect line chart)\n",
		n, "m4", len(m4), float64(time.Since(t0).Microseconds())/1000, "-",
		float64(n)/float64(len(m4)))
}

// E4 — progressive aggregation with confidence intervals.
func e4() {
	n := scale(1000000)
	rng := rand.New(rand.NewSource(3))
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = rng.ExpFloat64() * 100
	}
	exact := 0.0
	for _, v := range vals {
		exact += v
	}
	exact /= float64(n)

	fmt.Printf("exact mean = %.4f over N=%d\n", exact, n)
	fmt.Printf("%-10s %12s %12s %12s %10s\n", "fraction", "estimate", "abs_err", "ci95", "time_ms")
	s := progressive.NewSampler(vals, progressive.Mean, 11)
	batch := n / 20
	t0 := time.Now()
	for s.Step(batch) {
		e := s.Current()
		if int(e.Fraction*100+0.5)%25 == 0 || e.Fraction < 0.11 {
			fmt.Printf("%-10.2f %12.4f %12.4f %12.4f %10.2f\n",
				e.Fraction, e.Value, math.Abs(e.Value-exact), e.CI95,
				float64(time.Since(t0).Microseconds())/1000)
		}
	}
	final := s.Current()
	fmt.Printf("%-10.2f %12.4f %12.4f %12.4f %10.2f  (final=exact)\n",
		final.Fraction, final.Value, math.Abs(final.Value-exact), final.CI95,
		float64(time.Since(t0).Microseconds())/1000)
}

// E5 — HETree full vs incremental construction.
func e5() {
	fmt.Printf("%-10s %-14s %12s %14s\n", "N", "mode", "time_ms", "nodes_created")
	for _, n := range []int{scale(100000), scale(1000000)} {
		items := make([]hetree.Item, n)
		rng := rand.New(rand.NewSource(5))
		for i := range items {
			items[i] = hetree.Item{Value: rng.NormFloat64() * 1000}
		}
		t0 := time.Now()
		full, _ := hetree.New(items, hetree.Options{Degree: 4, LeafCapacity: 32})
		fullTime := time.Since(t0)
		fmt.Printf("%-10d %-14s %12.2f %14d\n", n, "FULL",
			float64(fullTime.Microseconds())/1000, full.MaterializedNodes())

		t0 = time.Now()
		inc, _ := hetree.New(items, hetree.Options{Degree: 4, LeafCapacity: 32, Incremental: true})
		// Simulate a user drilling down 10 root-to-leaf paths.
		rng2 := rand.New(rand.NewSource(9))
		for p := 0; p < 10; p++ {
			node := inc.Root()
			for {
				cs := inc.Children(node)
				if cs == nil {
					break
				}
				node = cs[rng2.Intn(len(cs))]
			}
		}
		incTime := time.Since(t0)
		fmt.Printf("%-10d %-14s %12.2f %14d  (10 drill-down paths)\n", n, "INCREMENTAL",
			float64(incTime.Microseconds())/1000, inc.MaterializedNodes())
	}
}

// E6 — adaptive indexing.
func e6() {
	n := scale(1000000)
	q := 1000
	if *quick {
		q = 200
	}
	rng := rand.New(rand.NewSource(6))
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = rng.Float64() * 1e6
	}
	queries := make([][2]float64, q)
	for i := range queries {
		lo := rng.Float64() * 1e6
		queries[i] = [2]float64{lo, lo + 1e4}
	}
	checkpoints := map[int]bool{1: true, 10: true, 100: true, q: true}
	fmt.Printf("%-12s %14s %14s %14s\n", "queries", "scan_ms", "sort_ms", "crack_ms")

	// Scan baseline.
	scanT := make(map[int]time.Duration)
	t0 := time.Now()
	sc := crack.NewScan(vals)
	for i, qr := range queries {
		sc.Count(qr[0], qr[1])
		if checkpoints[i+1] {
			scanT[i+1] = time.Since(t0)
		}
	}
	// Full-sort baseline (sort cost charged to first query).
	sortT := make(map[int]time.Duration)
	t0 = time.Now()
	so := crack.NewSorted(vals)
	for i, qr := range queries {
		so.Count(qr[0], qr[1])
		if checkpoints[i+1] {
			sortT[i+1] = time.Since(t0)
		}
	}
	// Cracking.
	crackT := make(map[int]time.Duration)
	t0 = time.Now()
	cr, _ := crack.New(vals)
	for i, qr := range queries {
		cr.Count(qr[0], qr[1])
		if checkpoints[i+1] {
			crackT[i+1] = time.Since(t0)
		}
	}
	for _, cp := range []int{1, 10, 100, q} {
		fmt.Printf("%-12d %14.2f %14.2f %14.2f\n", cp,
			float64(scanT[cp].Microseconds())/1000,
			float64(sortT[cp].Microseconds())/1000,
			float64(crackT[cp].Microseconds())/1000)
	}
	fmt.Printf("cracker ended with %d pieces, %d swaps\n", cr.Pieces(), cr.Swaps())
}

// E7 — disk tiles vs in-memory for viewport queries.
func e7() {
	n := scale(200000)
	rng := rand.New(rand.NewSource(8))
	pts := make([]spatial.TilePoint, n)
	for i := range pts {
		pts[i] = spatial.TilePoint{ID: uint32(i), X: rng.Float64() * 4096, Y: rng.Float64() * 4096}
	}
	// In-memory R-tree.
	var rt spatial.RTree
	t0 := time.Now()
	for _, p := range pts {
		rt.Insert(spatial.Entry{Rect: spatial.PointRect(p.X, p.Y), ID: p.ID})
	}
	rtBuild := time.Since(t0)

	// Disk tiles with a 64-page (256 KiB) pool.
	dir, err := os.MkdirTemp("", "lodviz-bench")
	if err != nil {
		fmt.Println("tempdir:", err)
		return
	}
	defer os.RemoveAll(dir)
	ts, err := spatial.NewTileStore(filepath.Join(dir, "t.db"), spatial.NewRect(0, 0, 4096, 4096), 32, 64)
	if err != nil {
		fmt.Println("tiles:", err)
		return
	}
	defer ts.Close()
	t0 = time.Now()
	if err := ts.AddAll(pts); err != nil {
		fmt.Println("load:", err)
		return
	}
	tileBuild := time.Since(t0)

	fmt.Printf("build: rtree(memory)=%.1fms  tiles(disk)=%.1fms\n",
		float64(rtBuild.Microseconds())/1000, float64(tileBuild.Microseconds())/1000)
	fmt.Printf("resident: rtree holds all %d points in heap; tile pool capped at 64 pages = %d KiB\n",
		n, 64*4)

	// Pan session: 50 viewport queries.
	windows := make([]spatial.Rect, 50)
	for i := range windows {
		x := float64(i%10) * 400
		y := float64(i/10) * 800
		windows[i] = spatial.NewRect(x, y, x+1024, y+1024)
	}
	t0 = time.Now()
	found := 0
	for _, w := range windows {
		found += len(rt.Search(w))
	}
	rtQuery := time.Since(t0)
	t0 = time.Now()
	found2 := 0
	for _, w := range windows {
		got, _ := ts.Query(w)
		found2 += len(got)
	}
	tileQuery := time.Since(t0)
	fmt.Printf("50-window pan: rtree=%.2fms (%d pts)  tiles=%.2fms (%d pts)  pool hitrate=%.2f\n",
		float64(rtQuery.Microseconds())/1000, found,
		float64(tileQuery.Microseconds())/1000, found2, ts.Pool().HitRate())
}

// E8 — supernode abstraction vs flat drawing.
func e8() {
	n := scale(20000)
	ds, _ := lodviz.GenerateScaleFree(n, 2, 13)
	g := ds.BuildGraph()
	fmt.Printf("graph: %d nodes, %d edges\n", g.NumNodes(), g.NumEdges())

	t0 := time.Now()
	layout.ForceDirected(g, layout.Options{Iterations: 10, Seed: 1})
	flat := time.Since(t0)

	t0 = time.Now()
	h := super.Build(g, super.Options{MaxLeafSize: 64, Seed: 1})
	build := time.Since(t0)
	v := h.NewView()
	t0 = time.Now()
	v.ExpandToBudget(200)
	edges := v.Edges()
	frame := time.Since(t0)

	fmt.Printf("flat force-directed (10 iters): %.1fms for %d nodes\n",
		float64(flat.Microseconds())/1000, g.NumNodes())
	fmt.Printf("hierarchy build: %.1fms (%d supernodes, depth %d)\n",
		float64(build.Microseconds())/1000, len(h.Nodes), h.Depth())
	fmt.Printf("budgeted frame: %.2fms → %d visible supernodes, %d aggregated edges\n",
		float64(frame.Microseconds())/1000, len(v.Visible), len(edges))
}

// E9 — edge bundling ink reduction.
func e9() {
	// Bipartite traffic between two clusters, the classic bundling showcase.
	m := 200
	if *quick {
		m = 50
	}
	parent := []int{-1, 0, 0}
	positions := []bundling.Point{{X: 500, Y: 50}, {X: 100, Y: 500}, {X: 900, Y: 500}}
	var edges []bundling.Edge
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < m; i++ {
		// Leaves under cluster 1 and 2.
		l1 := len(parent)
		parent = append(parent, 1)
		positions = append(positions, bundling.Point{X: 50 + rng.Float64()*100, Y: 400 + rng.Float64()*300})
		l2 := len(parent)
		parent = append(parent, 2)
		positions = append(positions, bundling.Point{X: 850 + rng.Float64()*100, Y: 400 + rng.Float64()*300})
		edges = append(edges, bundling.Edge{From: l1, To: l2})
	}
	straight := bundling.HierarchicalBundle(edges, parent, positions, 0)
	t0 := time.Now()
	bundled := bundling.HierarchicalBundle(edges, parent, positions, 0.9)
	hebTime := time.Since(t0)
	ratio := bundling.InkRatio(straight, bundled, 512)
	fmt.Printf("HEB:  %d edges bundled in %.2fms, ink ratio %.3f (1.0 = no saving)\n",
		len(edges), float64(hebTime.Microseconds())/1000, ratio)

	t0 = time.Now()
	fdeb := bundling.FDEB(edges[:min(m, 60)], positions, bundling.FDEBOptions{})
	fdebTime := time.Since(t0)
	fratio := bundling.InkRatio(straight[:len(fdeb)], fdeb, 512)
	fmt.Printf("FDEB: %d edges bundled in %.2fms, ink ratio %.3f\n",
		len(fdeb), float64(fdebTime.Microseconds())/1000, fratio)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// E10 — caching & prefetching.
func e10() {
	// Three exploration traces: linear pan, local back-and-forth, random.
	mkLinear := func(n int) []prefetch.Tile {
		out := make([]prefetch.Tile, n)
		for i := range out {
			out[i] = prefetch.Tile{X: i, Y: 0, Zoom: 4}
		}
		return out
	}
	mkLocal := func(n int) []prefetch.Tile {
		out := make([]prefetch.Tile, n)
		for i := range out {
			out[i] = prefetch.Tile{X: i % 5, Y: (i / 5) % 3, Zoom: 4}
		}
		return out
	}
	mkRandom := func(n int) []prefetch.Tile {
		rng := rand.New(rand.NewSource(2))
		out := make([]prefetch.Tile, n)
		for i := range out {
			out[i] = prefetch.Tile{X: rng.Intn(50), Y: rng.Intn(50), Zoom: 4}
		}
		return out
	}
	fmt.Printf("%-12s %14s %14s %14s\n", "trace", "no_prefetch", "with_prefetch", "prefetch_loads")
	for _, tc := range []struct {
		name  string
		trace []prefetch.Tile
	}{
		{"linear-pan", mkLinear(200)},
		{"local-area", mkLocal(200)},
		{"random", mkRandom(200)},
	} {
		plain := prefetch.SimulateSession(tc.trace, 32, false, func(prefetch.Tile) {})
		pf := prefetch.SimulateSession(tc.trace, 32, true, func(prefetch.Tile) {})
		fmt.Printf("%-12s %13.1f%% %13.1f%% %14d\n",
			tc.name, plain.HitRate()*100, pf.HitRate()*100, pf.Prefetches)
	}
}

// E11 — recommendation accuracy over a labeled corpus.
func e11() {
	type labeled struct {
		name string
		cols []recommend.Profile
		want vis.Type
	}
	corpus := []labeled{
		{"two numerics", []recommend.Profile{
			{Name: "a", Kind: recommend.Numeric, Cardinality: 500, Rows: 500, Coverage: 1},
			{Name: "b", Kind: recommend.Numeric, Cardinality: 500, Rows: 500, Coverage: 1}},
			vis.Scatter},
		{"time series", []recommend.Profile{
			{Name: "t", Kind: recommend.Temporal, Cardinality: 100, Rows: 100, Coverage: 1},
			{Name: "v", Kind: recommend.Numeric, Cardinality: 90, Rows: 100, Coverage: 1}},
			vis.LineChart},
		{"categories+measure", []recommend.Profile{
			{Name: "c", Kind: recommend.Categorical, Cardinality: 6, Rows: 300, Coverage: 1},
			{Name: "v", Kind: recommend.Numeric, Cardinality: 250, Rows: 300, Coverage: 1}},
			vis.BarChart},
		{"geo+measure", []recommend.Profile{
			{Name: "loc", Kind: recommend.GeoPoint, Cardinality: 400, Rows: 400, Coverage: 1},
			{Name: "v", Kind: recommend.Numeric, Cardinality: 350, Rows: 400, Coverage: 1}},
			vis.Map},
		{"entity links", []recommend.Profile{
			{Name: "s", Kind: recommend.Entity, Cardinality: 200, Rows: 400, Coverage: 1},
			{Name: "o", Kind: recommend.Entity, Cardinality: 220, Rows: 400, Coverage: 1}},
			vis.GraphVis},
		{"single numeric", []recommend.Profile{
			{Name: "v", Kind: recommend.Numeric, Cardinality: 900, Rows: 1000, Coverage: 1}},
			vis.Histogram},
		{"small categorical", []recommend.Profile{
			{Name: "c", Kind: recommend.Categorical, Cardinality: 4, Rows: 100, Coverage: 1}},
			vis.PieChart},
	}
	top1, top3 := 0, 0
	for _, l := range corpus {
		recs := recommend.Recommend(l.cols)
		if len(recs) > 0 && recs[0].Type == l.want {
			top1++
		}
		for i := 0; i < 3 && i < len(recs); i++ {
			if recs[i].Type == l.want {
				top3++
				break
			}
		}
	}
	fmt.Printf("labeled cases: %d   top-1 accuracy: %d/%d   top-3 accuracy: %d/%d\n",
		len(corpus), top1, len(corpus), top3, len(corpus))
}

// E12 — substrate throughput.
func e12() {
	n := scale(500000)
	triples := gen.EntityDataset(gen.EntityOptions{
		Entities: n / 5, NumericProps: 2, CategoryProps: 1, LinkProps: 1, Seed: 12,
	})
	t0 := time.Now()
	st, _ := store.Load(triples)
	loadT := time.Since(t0)
	fmt.Printf("bulk load: %d triples in %.1fms (%.2fM triples/s)\n",
		st.Len(), float64(loadT.Microseconds())/1000,
		float64(st.Len())/loadT.Seconds()/1e6)

	// Pattern matching.
	t0 = time.Now()
	k := 0
	for i := 0; i < 10000; i++ {
		st.ForEach(store.Pattern{S: gen.Res("entity", i%(n/5))}, func(tr lodviz.Triple) bool {
			k++
			return true
		})
	}
	patT := time.Since(t0)
	fmt.Printf("subject lookups: 10000 patterns, %d triples in %.1fms\n",
		k, float64(patT.Microseconds())/1000)

	// SPARQL join.
	q := fmt.Sprintf(`SELECT ?e ?v WHERE { ?e <%s> ?o . ?e <%s> ?v . }`,
		string(gen.Prop("rel0")), string(gen.Prop("num0")))
	t0 = time.Now()
	res, err := sparql.Exec(st, q)
	if err != nil {
		fmt.Println("sparql:", err)
		return
	}
	fmt.Printf("BGP join: %d rows in %.1fms\n",
		len(res.Rows), float64(time.Since(t0).Microseconds())/1000)

	// Aggregation query.
	q = fmt.Sprintf(`SELECT ?c (COUNT(?e) AS ?n) (AVG(?v) AS ?avg)
WHERE { ?e <%s> ?c . ?e <%s> ?v . } GROUP BY ?c ORDER BY DESC(?n)`,
		string(gen.Prop("cat0")), string(gen.Prop("num0")))
	t0 = time.Now()
	res, err = sparql.Exec(st, q)
	if err != nil {
		fmt.Println("sparql:", err)
		return
	}
	fmt.Printf("GROUP BY aggregate: %d groups in %.1fms\n",
		len(res.Rows), float64(time.Since(t0).Microseconds())/1000)
}
