package main

import (
	"fmt"
	"testing"

	"github.com/lodviz/lodviz/internal/gen"
	"github.com/lodviz/lodviz/internal/obs"
	"github.com/lodviz/lodviz/internal/sparql"
)

// obsScenarios measures what the observability layer costs on the hot BGP
// path: the three-pattern chain join with full engine metrics attached
// versus bare (nil Metrics, nil Trace = the NoObs configuration). The
// overhead ratio carries the acceptance ceiling: instrumentation must cost
// at most 5% — metric flushes are amortized per chunk/page precisely so
// this gate holds.
func obsScenarios() []benchResult {
	st := benchStore()
	chain := fmt.Sprintf(`SELECT ?e ?o ?v WHERE { ?e <%s> "category-2" . ?e <%s> ?o . ?o <%s> ?v . }`,
		string(gen.Prop("cat0")), string(gen.Prop("rel0")), string(gen.Prop("num0")))

	met := sparql.NewMetrics(obs.NewRegistry())
	bareOpt := sparql.Options{Parallelism: 1}
	instOpt := sparql.Options{Parallelism: 1, Metrics: met}

	// Interleave the two measurements across rounds so machine-state drift
	// (thermal, cache pressure) hits both sides alike; best-of keeps the
	// jitter filtering msPerOp uses elsewhere.
	bareFn := benchQuery(st, chain, bareOpt)
	instFn := benchQuery(st, chain, instOpt)
	bare, inst := 0.0, 0.0
	for i := 0; i < 3; i++ {
		b := float64(testing.Benchmark(bareFn).NsPerOp()) / 1e6
		n := float64(testing.Benchmark(instFn).NsPerOp()) / 1e6
		if i == 0 || b < bare {
			bare = b
		}
		if i == 0 || n < inst {
			inst = n
		}
	}

	return []benchResult{
		{Name: "obs_bgp_noobs_ms", Value: bare, Unit: "ms", Better: "lower"},
		{Name: "obs_bgp_instrumented_ms", Value: inst, Unit: "ms", Better: "lower"},
		{Name: "obs_overhead_ratio", Value: inst / bare, Unit: "x", Better: "lower", Max: 1.05},
	}
}
