package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"testing"

	"github.com/lodviz/lodviz/internal/gen"
	"github.com/lodviz/lodviz/internal/rdf"
	"github.com/lodviz/lodviz/internal/sparql"
	"github.com/lodviz/lodviz/internal/store"
)

// The benchmark-regression mode: `benchharness -scenarios store` runs a
// pinned set of workloads through testing.Benchmark, writes the results as a
// BENCH_*.json artifact, and (with -gate) fails the process when a scenario
// regresses more than the gate ratio against the committed
// bench/baseline.json. CI runs this on every push; refresh the baseline with
// -update-baseline when a PR intentionally shifts performance.

// benchSchema identifies the artifact format.
const benchSchema = "lodviz-bench/1"

// defaultGateRatio fails a lower-is-better scenario at +25% over baseline
// (and a higher-is-better one at -25% under). Override with BENCH_GATE.
const defaultGateRatio = 1.25

// benchResult is one scenario's measurement.
type benchResult struct {
	Name   string  `json:"name"`
	Value  float64 `json:"value"`
	Unit   string  `json:"unit"`   // "ms" or "x"
	Better string  `json:"better"` // "lower" or "higher"
	// Min is an absolute floor enforced regardless of baseline (speedup
	// scenarios encode their acceptance bar here); 0 = no floor.
	Min float64 `json:"min,omitempty"`
	// Max is an absolute ceiling enforced regardless of baseline (overhead
	// ratios encode their acceptance bar here); 0 = no ceiling.
	Max float64 `json:"max,omitempty"`
}

// benchFile is the artifact / baseline wire format.
type benchFile struct {
	Schema    string        `json:"schema"`
	Scenarios []benchResult `json:"scenarios"`
}

// msPerOp reports milliseconds per operation, best of three
// testing.Benchmark runs — the minimum filters scheduler and GC jitter,
// which a single run leaves well above the gate's 25% window.
func msPerOp(fn func(b *testing.B)) float64 {
	best := 0.0
	for i := 0; i < 3; i++ {
		r := testing.Benchmark(fn)
		ms := float64(r.NsPerOp()) / 1e6
		if i == 0 || ms < best {
			best = ms
		}
	}
	return best
}

// benchStore builds the pinned BGP-join dataset (the same shape
// bench_test.go's E13 group uses).
func benchStore() *store.Store {
	triples := gen.EntityDataset(gen.EntityOptions{
		Entities: 20000, NumericProps: 2, CategoryProps: 2, LinkProps: 1, Seed: 13,
	})
	st, err := store.Load(triples)
	if err != nil {
		panic(err)
	}
	return st
}

func benchQuery(st *store.Store, query string, opt sparql.Options) func(b *testing.B) {
	parsed, err := sparql.Parse(query)
	if err != nil {
		panic(err)
	}
	return func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sparql.EvalOpts(st, parsed, opt); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// storeScenarios measures the dictionary/permutation execution engine: the
// three-pattern chain, the bound-predicate and bound-object joins (hash vs
// ID-space, with the speedup ratios the acceptance gate rides on), bulk
// load, and snapshot round-trip.
func storeScenarios() []benchResult {
	st := benchStore()
	chain := fmt.Sprintf(`SELECT ?e ?o ?v WHERE { ?e <%s> "category-2" . ?e <%s> ?o . ?o <%s> ?v . }`,
		string(gen.Prop("cat0")), string(gen.Prop("rel0")), string(gen.Prop("num0")))
	boundP := fmt.Sprintf(`SELECT ?e ?c WHERE { ?e <%s> ?c . ?e <%s> ?c . }`,
		string(gen.Prop("cat0")), string(gen.Prop("cat1")))
	boundO := fmt.Sprintf(`SELECT ?e ?o WHERE { ?e <%s> "category-2" . ?e <%s> ?o . ?o <%s> "category-2" . }`,
		string(gen.Prop("cat0")), string(gen.Prop("rel0")), string(gen.Prop("cat0")))

	seq := sparql.Options{Parallelism: 1}
	seqHash := sparql.Options{Parallelism: 1, NoIDJoin: true}

	chainIDs := msPerOp(benchQuery(st, chain, seq))
	boundPHash := msPerOp(benchQuery(st, boundP, seqHash))
	boundPIDs := msPerOp(benchQuery(st, boundP, seq))
	boundOHash := msPerOp(benchQuery(st, boundO, seqHash))
	boundOIDs := msPerOp(benchQuery(st, boundO, seq))

	loadMS := msPerOp(func(b *testing.B) {
		triples := gen.EntityDataset(gen.EntityOptions{
			Entities: 10000, NumericProps: 2, CategoryProps: 1, LinkProps: 1, Seed: 12,
		})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := store.Load(triples); err != nil {
				b.Fatal(err)
			}
		}
	})
	snapMS := msPerOp(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := st.WriteSnapshot(discard{}); err != nil {
				b.Fatal(err)
			}
		}
	})

	return []benchResult{
		{Name: "bgp_chain_ids_ms", Value: chainIDs, Unit: "ms", Better: "lower"},
		{Name: "bgp_bound_p_hash_ms", Value: boundPHash, Unit: "ms", Better: "lower"},
		{Name: "bgp_bound_p_ids_ms", Value: boundPIDs, Unit: "ms", Better: "lower"},
		{Name: "bgp_bound_p_speedup", Value: boundPHash / boundPIDs, Unit: "x", Better: "higher", Min: 3},
		{Name: "bgp_bound_o_hash_ms", Value: boundOHash, Unit: "ms", Better: "lower"},
		{Name: "bgp_bound_o_ids_ms", Value: boundOIDs, Unit: "ms", Better: "lower"},
		{Name: "bgp_bound_o_speedup", Value: boundOHash / boundOIDs, Unit: "x", Better: "higher", Min: 3},
		{Name: "store_load_ms", Value: loadMS, Unit: "ms", Better: "lower"},
		{Name: "snapshot_write_ms", Value: snapMS, Unit: "ms", Better: "lower"},
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

// streamStoreRegress is bench_test.go's limit-pushdown dataset: one value
// triple per entity, so the single-pattern BGP has exactly n solutions.
func streamStoreRegress(n int) *store.Store {
	triples := make([]rdf.Triple, 0, n)
	for i := 0; i < n; i++ {
		triples = append(triples, rdf.Triple{
			S: rdf.IRI(fmt.Sprintf("http://bench/e%d", i)),
			P: "http://bench/value",
			O: rdf.NewInteger(int64(i)),
		})
	}
	st, err := store.Load(triples)
	if err != nil {
		panic(err)
	}
	return st
}

// streamScenarios measures the streaming pipeline: LIMIT pushdown vs the
// materializing path, and the bounded ORDER BY top-k heap.
func streamScenarios() []benchResult {
	st := streamStoreRegress(120000)
	limit := `SELECT ?s ?v WHERE { ?s <http://bench/value> ?v } LIMIT 10`
	topk := `SELECT ?s ?v WHERE { ?s <http://bench/value> ?v } ORDER BY DESC(?v) LIMIT 10`

	streamed := msPerOp(benchQuery(st, limit, sparql.Options{}))
	materialized := msPerOp(benchQuery(st, limit, sparql.Options{NoStream: true}))
	topkMS := msPerOp(benchQuery(st, topk, sparql.Options{}))

	return []benchResult{
		{Name: "limit_pushdown_streamed_ms", Value: streamed, Unit: "ms", Better: "lower"},
		{Name: "limit_pushdown_materialized_ms", Value: materialized, Unit: "ms", Better: "lower"},
		{Name: "limit_pushdown_speedup", Value: materialized / streamed, Unit: "x", Better: "higher", Min: 10},
		{Name: "orderby_topk_ms", Value: topkMS, Unit: "ms", Better: "lower"},
	}
}

// runRegress executes the selected scenario set, writes the artifact, and
// applies the baseline gate. Returns the process exit code.
func runRegress(set, out, baselinePath string, updateBaseline, gate bool) int {
	var results []benchResult
	switch set {
	case "store":
		results = storeScenarios()
	case "stream":
		results = streamScenarios()
	case "write":
		results = writeScenarios()
	case "explore":
		results = exploreScenarios()
	case "obs":
		results = obsScenarios()
	default:
		fmt.Fprintf(os.Stderr, "unknown -scenarios set %q (want store, stream, write, explore, or obs)\n", set)
		return 2
	}
	for _, r := range results {
		fmt.Printf("%-34s %10.3f %s\n", r.Name, r.Value, r.Unit)
	}
	if out != "" {
		data, err := json.MarshalIndent(benchFile{Schema: benchSchema, Scenarios: results}, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "marshal:", err)
			return 2
		}
		if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "write artifact:", err)
			return 2
		}
		fmt.Printf("wrote %s\n", out)
	}

	failed := false
	// Absolute floors and ceilings hold regardless of any baseline.
	for _, r := range results {
		if r.Min > 0 && r.Value < r.Min {
			fmt.Fprintf(os.Stderr, "FAIL %s: %.3f%s below the %.1f%s floor\n", r.Name, r.Value, r.Unit, r.Min, r.Unit)
			failed = true
		}
		if r.Max > 0 && r.Value > r.Max {
			fmt.Fprintf(os.Stderr, "FAIL %s: %.3f%s above the %.2f%s ceiling\n", r.Name, r.Value, r.Unit, r.Max, r.Unit)
			failed = true
		}
	}

	if updateBaseline {
		// Merge into the existing baseline: one file holds every scenario
		// set; this run replaces only its own entries.
		merged := benchFile{Schema: benchSchema}
		if prev, err := os.ReadFile(baselinePath); err == nil {
			var old benchFile
			if json.Unmarshal(prev, &old) == nil && old.Schema == benchSchema {
				fresh := map[string]bool{}
				for _, r := range results {
					fresh[r.Name] = true
				}
				for _, r := range old.Scenarios {
					if !fresh[r.Name] {
						merged.Scenarios = append(merged.Scenarios, r)
					}
				}
			}
		}
		merged.Scenarios = append(merged.Scenarios, results...)
		data, err := json.MarshalIndent(merged, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "marshal baseline:", err)
			return 2
		}
		if err := os.WriteFile(baselinePath, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "write baseline:", err)
			return 2
		}
		fmt.Printf("updated baseline %s\n", baselinePath)
	} else if gate {
		if gateAgainstBaseline(results, baselinePath) {
			failed = true
		}
	}
	if failed {
		return 1
	}
	return 0
}

// gateAgainstBaseline compares results to the committed baseline with a
// direction-aware ratio; returns true when any scenario regresses.
func gateAgainstBaseline(results []benchResult, baselinePath string) bool {
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "FAIL: baseline %s unreadable: %v\n", baselinePath, err)
		return true
	}
	var base benchFile
	if err := json.Unmarshal(data, &base); err != nil || base.Schema != benchSchema {
		fmt.Fprintf(os.Stderr, "FAIL: baseline %s invalid (schema %q): %v\n", baselinePath, base.Schema, err)
		return true
	}
	ratio := defaultGateRatio
	if env := os.Getenv("BENCH_GATE"); env != "" {
		v, err := strconv.ParseFloat(env, 64)
		if err != nil || v < 1 {
			fmt.Fprintf(os.Stderr, "FAIL: BENCH_GATE=%q is not a ratio >= 1\n", env)
			return true
		}
		ratio = v
	}
	byName := map[string]benchResult{}
	for _, b := range base.Scenarios {
		byName[b.Name] = b
	}
	// Sub-tenth-millisecond timings are dominated by scheduler noise; an
	// absolute slack keeps the ratio gate meaningful for them.
	const msSlack = 0.05
	failed := false
	for _, r := range results {
		b, ok := byName[r.Name]
		if !ok {
			fmt.Printf("INFO %s: no baseline entry (new scenario)\n", r.Name)
			continue
		}
		switch r.Better {
		case "higher":
			if r.Min > 0 {
				// Floor-gated scenario (a speedup ratio): the absolute floor
				// is the contract; baseline-relative ratios of ratios are
				// noise.
				continue
			}
			if r.Value < b.Value/ratio {
				fmt.Fprintf(os.Stderr, "FAIL %s: %.3f%s vs baseline %.3f%s (allowed ≥ %.3f)\n",
					r.Name, r.Value, r.Unit, b.Value, b.Unit, b.Value/ratio)
				failed = true
			}
		default:
			if r.Max > 0 {
				// Ceiling-gated scenario (an overhead ratio): the absolute
				// ceiling is the contract; baseline-relative ratios of
				// ratios are noise.
				continue
			}
			allowed := b.Value * ratio
			if r.Unit == "ms" && allowed < b.Value+msSlack {
				allowed = b.Value + msSlack
			}
			if r.Value > allowed {
				fmt.Fprintf(os.Stderr, "FAIL %s: %.3f%s vs baseline %.3f%s (allowed ≤ %.3f)\n",
					r.Name, r.Value, r.Unit, b.Value, b.Unit, allowed)
				failed = true
			}
		}
	}
	if !failed {
		fmt.Printf("gate passed: %d scenarios within %.0f%% of baseline\n", len(results), (ratio-1)*100)
	}
	return failed
}
