package main

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"github.com/lodviz/lodviz/internal/rdf"
	"github.com/lodviz/lodviz/internal/sparql"
	"github.com/lodviz/lodviz/internal/store"
	"github.com/lodviz/lodviz/internal/wal"
)

// The "write" scenario set measures the durable write path: a fixed
// commit session bare, through the WAL without fsync, and through the full
// group-committed fsync pipeline — plus the same synced session while
// concurrent readers keep querying the store, the shape a live exploration
// endpoint sees (reads invalidated by every generation bump). Each timed
// operation is one complete session over a fresh store, so the measurement
// does not drift with the iteration count the harness happens to pick.

const (
	// writeBatchSize triples per committed batch, writeBatches batches per
	// timed session.
	writeBatchSize = 100
	writeBatches   = 20
)

// writeBatch builds a fresh, never-before-inserted batch so every timed
// AddBatch is an effective (logged, applied) write.
func writeBatch(i int) []rdf.Triple {
	ts := make([]rdf.Triple, 0, writeBatchSize)
	for j := 0; j < writeBatchSize; j++ {
		ts = append(ts, rdf.Triple{
			S: rdf.IRI(fmt.Sprintf("http://bench/w/e%d-%d", i, j)),
			P: "http://bench/value",
			O: rdf.NewInteger(int64(i*writeBatchSize + j)),
		})
	}
	return ts
}

// newWALStore attaches a fresh WAL under dir to a fresh store.
func newWALStore(b *testing.B, dir string, policy wal.SyncPolicy) (*store.Store, *wal.Log) {
	log, err := wal.Open(filepath.Join(dir, "bench.wal"), wal.Options{Sync: policy})
	if err != nil {
		b.Fatal(err)
	}
	st := store.New()
	st.SetWAL(log)
	return st, log
}

// commitSession drives one fixed write session against st.
func commitSession(b *testing.B, st *store.Store) {
	for i := 0; i < writeBatches; i++ {
		if _, err := st.AddBatch(writeBatch(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// benchWALSession times WAL-backed sessions; the log is recreated per
// iteration (an Open on a removed path is far cheaper than the commits it
// precedes) so every session starts from the same empty state.
func benchWALSession(policy wal.SyncPolicy) func(b *testing.B) {
	return func(b *testing.B) {
		dir := b.TempDir()
		for i := 0; i < b.N; i++ {
			st, log := newWALStore(b, dir, policy)
			commitSession(b, st)
			if err := log.Close(); err != nil {
				b.Fatal(err)
			}
			os.Remove(filepath.Join(dir, "bench.wal"))
		}
	}
}

// writeScenarios measures sustained write throughput, alone and under
// concurrent query load. Values are ms per session (writeBatches batches of
// writeBatchSize triples).
func writeScenarios() []benchResult {
	bare := msPerOp(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			commitSession(b, store.New())
		}
	})
	nosync := msPerOp(benchWALSession(wal.SyncNone))
	synced := msPerOp(benchWALSession(wal.SyncAlways))

	// The same synced session while two readers each run a fixed number of
	// queries concurrently — each effective batch bumps the generation, so
	// every read replans against fresh state. The reader work is a fixed
	// count (not free-running until the writer finishes) so every timed
	// operation performs identical total work; otherwise the measurement
	// swings with however many reads the scheduler happens to fit in.
	const readerQueries = 60
	mixed := msPerOp(func(b *testing.B) {
		dir := b.TempDir()
		query, err := sparql.Parse(`SELECT ?s ?v WHERE { ?s <http://bench/value> ?v } LIMIT 20`)
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			st, log := newWALStore(b, dir, wal.SyncAlways)
			var wg sync.WaitGroup
			for r := 0; r < 2; r++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for q := 0; q < readerQueries; q++ {
						if _, err := sparql.EvalOpts(st, query, sparql.Options{Parallelism: 1}); err != nil {
							b.Error(err)
							return
						}
					}
				}()
			}
			commitSession(b, st)
			wg.Wait()
			if err := log.Close(); err != nil {
				b.Fatal(err)
			}
			os.Remove(filepath.Join(dir, "bench.wal"))
		}
	})

	return []benchResult{
		{Name: "write_session_bare_ms", Value: bare, Unit: "ms", Better: "lower"},
		{Name: "write_session_wal_nosync_ms", Value: nosync, Unit: "ms", Better: "lower"},
		{Name: "write_session_wal_sync_ms", Value: synced, Unit: "ms", Better: "lower"},
		{Name: "write_session_mixed_load_ms", Value: mixed, Unit: "ms", Better: "lower"},
	}
}
