// Lodviz is the command-line front door of the framework: load RDF files,
// run SPARQL queries, inspect dataset overviews, search, and emit
// visualizations as SVG or terminal text.
//
// Usage:
//
//	lodviz -load data.ttl overview
//	lodviz -load data.nt  query 'SELECT ?s WHERE { ?s ?p ?o } LIMIT 5'
//	lodviz -demo search Athens
//	lodviz -demo visualize 'SELECT ?label ?population WHERE { ... }' -svg out.svg
//	lodviz -demo facets
//	lodviz tables
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"github.com/lodviz/lodviz"
)

func main() {
	load := flag.String("load", "", "RDF file to load (.ttl or .nt)")
	demo := flag.Bool("demo", false, "use the embedded mini-LOD dataset")
	svgOut := flag.String("svg", "", "write visualization SVG to this file")
	limit := flag.Int("limit", 20, "maximum rows/hits to print")
	stream := flag.Bool("stream", false, "stream query rows as they are found (progressive delivery; LIMIT stops the scan early)")
	flag.Parse()

	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	cmd := args[0]

	if cmd == "tables" {
		fmt.Println(lodviz.Table1())
		fmt.Println(lodviz.Table2())
		fmt.Println(lodviz.Observations())
		return
	}

	ds, err := open(*load, *demo)
	if err != nil {
		fail(err)
	}
	ex := ds.Explore(lodviz.DefaultPreferences())

	switch cmd {
	case "overview":
		o := ex.Overview()
		fmt.Printf("triples: %d\nterms:   %d\n\nclasses:\n", o.Triples, o.Terms)
		for _, c := range o.Classes {
			fmt.Printf("  %-30s %d\n", c.Key, c.Count)
		}
		fmt.Println("\ntop predicates:")
		for i, p := range o.Predicates {
			if i == *limit {
				break
			}
			fmt.Printf("  %-60v %d triples, %d subjects\n", p.Predicate, p.Triples, p.DistinctSubjects)
		}
	case "query":
		if len(args) < 2 {
			fail(fmt.Errorf("query: missing SPARQL string"))
		}
		if *stream {
			streamQuery(ds, args[1], *limit)
			return
		}
		res, err := ds.Query(args[1])
		if err != nil {
			fail(err)
		}
		if res.Form == 1 { // ASK
			fmt.Println(res.Ask)
			return
		}
		fmt.Println(strings.Join(res.Vars, "\t"))
		for i, row := range res.Rows {
			if i == *limit {
				fmt.Printf("... (%d more rows)\n", len(res.Rows)-i)
				break
			}
			cells := make([]string, len(res.Vars))
			for j, v := range res.Vars {
				if t, ok := row[v]; ok {
					cells[j] = t.String()
				}
			}
			fmt.Println(strings.Join(cells, "\t"))
		}
	case "search":
		if len(args) < 2 {
			fail(fmt.Errorf("search: missing keywords"))
		}
		for _, h := range ex.Search(strings.Join(args[1:], " "), *limit) {
			fmt.Printf("%.3f  %v\n       %s\n", h.Score, h.Entity, truncate(h.Snippet, 90))
		}
	case "facets":
		s := ex.Facets()
		s.MaxValuesPerFacet = 5
		fmt.Printf("entity set: %d\n", s.Count())
		for i, f := range s.Facets() {
			if i == *limit {
				break
			}
			fmt.Printf("%v (%d)\n", f.Predicate, f.Total)
			for _, v := range f.Values {
				fmt.Printf("    %-50v %d\n", truncate(v.Term.String(), 48), v.Count)
			}
		}
	case "visualize":
		if len(args) < 2 {
			fail(fmt.Errorf("visualize: missing SPARQL string"))
		}
		spec, svg, err := ex.Visualize(args[1])
		if err != nil {
			fail(err)
		}
		fmt.Printf("visualization: %v (%d marks)\n\n", spec.Type, spec.PointCount())
		fmt.Println(lodviz.RenderText(spec))
		if *svgOut != "" {
			if err := os.WriteFile(*svgOut, []byte(svg), 0o644); err != nil {
				fail(err)
			}
			fmt.Printf("SVG written to %s\n", *svgOut)
		}
	default:
		usage()
		os.Exit(2)
	}
}

// streamQuery prints rows as the engine finds them: a plain LIMIT/OFFSET
// query shows its first row while the scan is still running and stops
// scanning once -limit rows are printed, instead of materializing the full
// result set first.
func streamQuery(ds *lodviz.Dataset, query string, limit int) {
	headerDone := false
	res, err := ds.QueryStream(context.Background(), query, lodviz.QueryOptions{}, func(vars []string, row lodviz.Binding) bool {
		if limit <= 0 {
			return false
		}
		if !headerDone {
			fmt.Println(strings.Join(vars, "\t"))
			headerDone = true
		}
		cells := make([]string, len(vars))
		for j, v := range vars {
			if t, ok := row[v]; ok {
				cells[j] = t.String()
			}
		}
		fmt.Println(strings.Join(cells, "\t"))
		limit--
		return limit > 0
	})
	if err != nil {
		fail(err)
	}
	if res.Vars == nil { // ASK
		fmt.Println(res.Ask)
		return
	}
	if !headerDone {
		fmt.Println(strings.Join(res.Vars, "\t"))
	}
}

func open(path string, demo bool) (*lodviz.Dataset, error) {
	if demo || path == "" {
		return lodviz.MiniLOD(), nil
	}
	switch filepath.Ext(path) {
	case ".nt", ".ntriples":
		// Stream straight off the file: no whole-file slice in memory.
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return lodviz.LoadNTriples(f)
	default:
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		return lodviz.LoadTurtle(string(data))
	}
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-3] + "..."
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "lodviz:", err)
	os.Exit(1)
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: lodviz [-load file | -demo] <command>

commands:
  overview               dataset summary (classes, predicates)
  query '<sparql>'       run a SPARQL SELECT/ASK query (-stream prints rows
                         as they are found; LIMIT stops the scan early)
  search <keywords>      keyword search over labels and literals
  facets                 show facet distributions
  visualize '<sparql>'   recommend + render a visualization (-svg out.svg)
  tables                 regenerate the survey's Tables 1 and 2`)
}
