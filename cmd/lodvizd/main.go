// Command lodvizd serves a lodviz dataset over HTTP: a SPARQL 1.1 Protocol
// endpoint (/sparql, JSON results) plus the exploration endpoints /facets,
// /graph/neighborhood, /hetree, /stats, an N-Triples ingestion endpoint
// (POST /triples), and /healthz.
//
// Usage:
//
//	lodvizd [flags]
//
//	-addr string        listen address (default ":8080")
//	-data string        dataset to load: a .nt/.ntriples or .ttl/.turtle
//	                    file (default: the embedded MiniLOD demo dataset)
//	-parallelism int    SPARQL worker count (default: NumCPU)
//	-cache int          response-cache capacity in entries; -1 disables
//	                    (default 4096)
//	-max-inflight int   concurrent requests allowed per endpoint before
//	                    shedding with 429 (default 64)
//	-timeout duration   per-query evaluation timeout (default 30s)
//	-facet-values int   max values listed per facet on /facets (default 25)
//
// Repeated identical exploration requests are served from a sharded LRU
// cache keyed by the normalized request and the store's content generation;
// any write (POST /triples) advances the generation and thereby invalidates
// every cached response at once.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"github.com/lodviz/lodviz/internal/gen"
	"github.com/lodviz/lodviz/internal/ntriples"
	"github.com/lodviz/lodviz/internal/server"
	"github.com/lodviz/lodviz/internal/store"
	"github.com/lodviz/lodviz/internal/turtle"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	data := flag.String("data", "", "dataset file (.nt, .ntriples, .ttl, .turtle); empty loads the embedded MiniLOD demo")
	parallelism := flag.Int("parallelism", 0, "SPARQL worker count (0 = NumCPU)")
	cacheSize := flag.Int("cache", 0, "response-cache capacity in entries (0 = default 4096, negative disables)")
	maxInFlight := flag.Int("max-inflight", 0, "concurrent requests per endpoint before 429 shedding (0 = default 64)")
	timeout := flag.Duration("timeout", 0, "per-query evaluation timeout (0 = default 30s)")
	facetValues := flag.Int("facet-values", 0, "max values listed per facet (0 = default 25)")
	flag.Parse()

	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
	st, err := loadStore(*data)
	if err != nil {
		logger.Error("loading dataset", "err", err)
		os.Exit(1)
	}
	logger.Info("dataset loaded", "source", sourceName(*data), "triples", st.Len(), "terms", st.NumTerms())

	srv := server.New(st, server.Config{
		Parallelism:    *parallelism,
		CacheCapacity:  *cacheSize,
		MaxInFlight:    *maxInFlight,
		QueryTimeout:   *timeout,
		MaxFacetValues: *facetValues,
		Logger:         logger,
	})

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	start := time.Now()
	if err := srv.ListenAndServe(ctx, *addr); err != nil {
		logger.Error("server", "err", err)
		os.Exit(1)
	}
	logger.Info("stopped", "uptime", time.Since(start).Round(time.Second).String())
}

func loadStore(path string) (*store.Store, error) {
	if path == "" {
		return gen.MiniLODStore(), nil
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	switch ext := filepath.Ext(path); ext {
	case ".nt", ".ntriples":
		triples, err := ntriples.ParseString(string(raw))
		if err != nil {
			return nil, err
		}
		return store.Load(triples)
	case ".ttl", ".turtle":
		triples, err := turtle.ParseString(string(raw))
		if err != nil {
			return nil, err
		}
		return store.Load(triples)
	default:
		return nil, fmt.Errorf("unsupported dataset extension %q (want .nt, .ntriples, .ttl, .turtle)", ext)
	}
}

func sourceName(path string) string {
	if path == "" {
		return "minilod (embedded)"
	}
	return path
}
