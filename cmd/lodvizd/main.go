// Command lodvizd serves a lodviz dataset over HTTP: a SPARQL 1.1 Protocol
// endpoint (/sparql, JSON results), a chunked streaming variant
// (/sparql/stream, NDJSON — rows are flushed as the engine finds them, so
// the first row of a LIMIT query arrives while the scan is still running
// and the scan stops once the limit is filled), plus the exploration
// endpoints /facets, /graph/neighborhood, /hetree, /stats — with progressive
// NDJSON twins /facets/stream and /stats/stream that emit CLT-bounded
// approximate batches mid-scan before converging to the exact answer, and
// sample=/seed= parameters on /graph/neighborhood for bounded
// reservoir-sampled expansions — an N-Triples ingestion endpoint
// (POST /triples), and /healthz.
//
// Usage:
//
//	lodvizd [flags]
//
//	-addr string        listen address (default ":8080")
//	-data string        dataset to load: a .nt/.ntriples or .ttl/.turtle
//	                    file (default: the embedded MiniLOD demo dataset)
//	-snapshot string    snapshot file: restored at startup when present,
//	                    written atomically on graceful shutdown (and
//	                    periodically with -snapshot-interval)
//	-snapshot-interval duration
//	                    how often to persist a snapshot while serving
//	                    (0 disables periodic writes; unchanged generations
//	                    are skipped)
//	-wal string         write-ahead log file: every acknowledged write is
//	                    appended (and fsynced, see -wal-sync) before it is
//	                    applied, then replayed over the snapshot at startup
//	-wal-sync string    "always" (group-committed fsync per acknowledged
//	                    write, the default) or "none" (OS decides when
//	                    bytes hit disk)
//	-parallelism int    SPARQL worker count (default: NumCPU)
//	-cache int          response-cache capacity in entries; -1 disables
//	                    (default 4096)
//	-max-inflight int   concurrent requests allowed per endpoint before
//	                    shedding with 429 (default 64)
//	-timeout duration   per-query evaluation timeout (default 30s)
//	-facet-values int   max values listed per facet on /facets (default 25)
//	-facet-warming      pre-compute ancestor facet views (one filter removed
//	                    at a time) into the response cache in the background
//	                    after each /facets request, so backing out of a
//	                    refinement is a cache hit (default true; requires
//	                    the cache)
//	-peer url           remote SPARQL endpoint to federate with; repeatable.
//	                    Peers answer SERVICE clauses and show up on
//	                    /federation with live health state
//	-federation-probe duration
//	                    peer health-probe interval (default 30s); every
//	                    10th probe also refreshes the per-predicate
//	                    capability summaries; 0 disables background upkeep
//	-federation-restrict
//	                    refuse SERVICE dispatch to endpoints not listed
//	                    with -peer — recommended when /sparql is exposed
//	                    to untrusted clients, since query text can name
//	                    arbitrary URLs (server-side request forgery)
//	-pprof addr         serve net/http/pprof on a separate listener
//	                    (e.g. localhost:6060); empty disables. Kept off
//	                    the public API address deliberately
//	-slow-query duration
//	                    log /sparql queries at or over this duration at
//	                    warn level, with row count and execution-plan
//	                    summary (0 disables)
//
// Prometheus metrics for every layer — HTTP handlers, response cache,
// store, WAL, federation mesh, SPARQL engine — are served on /metrics, and
// POST /sparql?explain=1 returns a per-query execution trace alongside the
// results (see the server package).
//
// With -peer, this node joins an exploration mesh: queries may span
// endpoints with SERVICE <peer/sparql> { ... } clauses, evaluated as
// batched parallel bind joins. Failing peers are circuit-broken (and probed
// back in), and SERVICE SILENT degrades to the local partial result when a
// peer is down.
//
// Repeated identical exploration requests are served from a sharded LRU
// cache keyed by the normalized request and the store's content generation;
// any write (POST /triples) advances the generation and thereby invalidates
// every cached response at once.
//
// With -snapshot, writes ingested over HTTP survive restarts: the server
// persists a checksummed binary snapshot (dictionary + sorted SPO index)
// via an atomic temp-file-and-rename, restores it on the next start, and
// the restored store answers queries identically to the one that saved it.
//
// With -wal, every acknowledged write (POST /triples, SPARQL update) is
// additionally appended to a group-committed write-ahead log before it is
// applied, so writes survive a crash between snapshots. Startup layers the
// two: restore the snapshot, then replay the WAL suffix over it; each
// successful snapshot truncates the WAL records it covers. -wal-sync picks
// the durability point: "always" (default) fsyncs before acknowledging —
// concurrent writers share one fsync via group commit — and "none" leaves
// flushing to the OS. The WAL also feeds an in-memory Merkle mutation
// ledger served on /ledger/root and /ledger/proof, so clients can verify a
// particular mutation is part of the dataset's history.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io/fs"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"sync"
	"syscall"
	"time"

	"github.com/lodviz/lodviz/internal/federation"
	"github.com/lodviz/lodviz/internal/gen"
	"github.com/lodviz/lodviz/internal/ledger"
	"github.com/lodviz/lodviz/internal/obs"
	"github.com/lodviz/lodviz/internal/server"
	"github.com/lodviz/lodviz/internal/store"
	"github.com/lodviz/lodviz/internal/turtle"
	"github.com/lodviz/lodviz/internal/wal"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	data := flag.String("data", "", "dataset file (.nt, .ntriples, .ttl, .turtle); empty loads the embedded MiniLOD demo")
	snapshotPath := flag.String("snapshot", "", "snapshot file: restored at startup when present, written on shutdown and every -snapshot-interval")
	snapshotInterval := flag.Duration("snapshot-interval", 0, "periodic snapshot write interval while serving (0 disables periodic writes)")
	walPath := flag.String("wal", "", "write-ahead log file: acknowledged writes are logged before they apply and replayed over the snapshot at startup")
	walSync := flag.String("wal-sync", "always", "WAL durability: \"always\" fsyncs (group-committed) before acknowledging a write, \"none\" leaves flushing to the OS")
	parallelism := flag.Int("parallelism", 0, "SPARQL worker count (0 = NumCPU)")
	cacheSize := flag.Int("cache", 0, "response-cache capacity in entries (0 = default 4096, negative disables)")
	maxInFlight := flag.Int("max-inflight", 0, "concurrent requests per endpoint before 429 shedding (0 = default 64)")
	timeout := flag.Duration("timeout", 0, "per-query evaluation timeout (0 = default 30s)")
	facetValues := flag.Int("facet-values", 0, "max values listed per facet (0 = default 25)")
	facetWarming := flag.Bool("facet-warming", true, "pre-compute ancestor facet views into the response cache after each /facets request")
	var peers []string
	flag.Func("peer", "remote SPARQL endpoint URL to federate with (repeatable)", func(v string) error {
		if v == "" {
			return fmt.Errorf("empty peer URL")
		}
		peers = append(peers, v)
		return nil
	})
	probeInterval := flag.Duration("federation-probe", 30*time.Second, "peer health-probe interval; capabilities refresh every 10th probe (0 disables background upkeep)")
	restrictPeers := flag.Bool("federation-restrict", false, "refuse SERVICE dispatch to endpoints not listed with -peer (SSRF hardening for exposed deployments)")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this separate address (e.g. localhost:6060); empty disables")
	slowQuery := flag.Duration("slow-query", 0, "log /sparql queries at or over this duration with their execution plan (0 disables)")
	flag.Parse()

	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
	st, source, err := openStore(*snapshotPath, *data)
	if err != nil {
		logger.Error("loading dataset", "err", err)
		os.Exit(1)
	}
	logger.Info("dataset loaded", "source", source, "triples", st.Len(), "terms", st.NumTerms())

	registry := obs.NewRegistry()
	var (
		walLog *wal.Log
		led    *ledger.Ledger
	)
	if *walPath != "" {
		policy, err := parseSyncPolicy(*walSync)
		if err != nil {
			logger.Error("bad -wal-sync", "err", err)
			os.Exit(2)
		}
		walLog, led, err = openWAL(*walPath, policy, wal.NewMetrics(registry), st, logger)
		if err != nil {
			logger.Error("opening WAL", "path", *walPath, "err", err)
			os.Exit(1)
		}
		defer func() {
			// A close error at shutdown can mean the tail of the log never
			// reached disk; it must at least be visible in the exit logs.
			if cerr := walLog.Close(); cerr != nil {
				logger.Error("closing WAL", "err", cerr)
			}
		}()
	}

	// The snapshotter is built before the server so /healthz can report the
	// snapshot age; the periodic loop starts further down, once the serving
	// context exists.
	var snap *snapshotter
	if *snapshotPath != "" {
		snap = &snapshotter{path: *snapshotPath, st: st, wal: walLog, logger: logger}
		if source == *snapshotPath {
			// The on-disk image already matches the store; don't rewrite
			// it until something changes.
			snap.savedGen = st.Generation()
			snap.haveSaved = true
			snap.savedAt = time.Now()
		}
	}

	mesh := federation.NewMesh(federation.Options{RestrictToPeers: *restrictPeers})
	for _, p := range peers {
		mesh.AddPeer(p)
	}
	cfg := server.Config{
		Parallelism:        *parallelism,
		CacheCapacity:      *cacheSize,
		MaxInFlight:        *maxInFlight,
		QueryTimeout:       *timeout,
		MaxFacetValues:     *facetValues,
		FacetWarming:       *facetWarming,
		Logger:             logger,
		Mesh:               mesh,
		Ledger:             led,
		Metrics:            registry,
		WAL:                walLog,
		WALSyncDesc:        *walSync,
		SlowQueryThreshold: *slowQuery,
	}
	if snap != nil {
		cfg.SnapshotSavedAt = snap.savedAtTime
	}
	srv := server.New(st, cfg)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if len(peers) > 0 {
		logger.Info("federation enabled", "peers", len(peers), "probeInterval", probeInterval.String())
		if *probeInterval > 0 {
			// Background upkeep: health-probe peers (closing open circuits
			// without live traffic) and refresh capability summaries.
			go mesh.Maintain(ctx, *probeInterval)
		}
	}

	if snap != nil && *snapshotInterval > 0 {
		go snap.run(ctx, *snapshotInterval)
	}

	if *pprofAddr != "" {
		// pprof gets its own listener and an explicit mux, so the profiling
		// surface is never reachable through the public API address.
		pm := http.NewServeMux()
		pm.HandleFunc("/debug/pprof/", pprof.Index)
		pm.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pm.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pm.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pm.HandleFunc("/debug/pprof/trace", pprof.Trace)
		logger.Info("pprof listening", "addr", *pprofAddr)
		go func() {
			if err := http.ListenAndServe(*pprofAddr, pm); err != nil {
				logger.Error("pprof server", "err", err)
			}
		}()
	}

	start := time.Now()
	if err := srv.ListenAndServe(ctx, *addr); err != nil {
		logger.Error("server", "err", err)
		os.Exit(1)
	}
	if snap != nil {
		if err := snap.save("shutdown"); err != nil {
			// The shutdown snapshot is the only persistence point when no
			// WAL is configured — exiting zero here would let supervisors
			// discard acknowledged writes silently.
			if walLog != nil {
				logger.Error("shutdown snapshot failed; the WAL retains every acknowledged write and will replay it on the next start", "err", err)
			} else {
				logger.Error("shutdown snapshot failed; writes since the last snapshot are lost (consider -wal)", "err", err)
			}
			os.Exit(1)
		}
	}
	logger.Info("stopped", "uptime", time.Since(start).Round(time.Second).String())
}

// parseSyncPolicy maps the -wal-sync flag to a wal.SyncPolicy.
func parseSyncPolicy(v string) (wal.SyncPolicy, error) {
	switch v {
	case "always":
		return wal.SyncAlways, nil
	case "none":
		return wal.SyncNone, nil
	default:
		return wal.SyncAlways, fmt.Errorf("unknown -wal-sync %q (want \"always\" or \"none\")", v)
	}
}

// openWAL recovers and attaches the write-ahead log: open (which truncates
// any torn tail left by a crash mid-write), replay the surviving records
// over the just-restored store — rebuilding the mutation ledger from the
// same payloads — and only then attach the log to the store, so replayed
// writes are not re-appended. Replay is idempotent (re-adding a present
// triple or re-deleting an absent one is a no-op), which is what makes the
// snapshot-plus-WAL-suffix layering safe: records the snapshot already
// covers simply do nothing.
func openWAL(path string, policy wal.SyncPolicy, met *wal.Metrics, st *store.Store, logger *slog.Logger) (*wal.Log, *ledger.Ledger, error) {
	led := ledger.New()
	walLog, err := wal.Open(path, wal.Options{Sync: policy, Observer: led.Append, Metrics: met})
	if err != nil {
		return nil, nil, err
	}
	records := 0
	start := time.Now()
	_, err = wal.Replay(path, func(rec wal.Record) error {
		records++
		led.Append(rec.Seq, rec.Payload)
		switch rec.Op {
		case wal.OpAdd:
			_, err := st.AddBatch(rec.Triples)
			return err
		case wal.OpDelete:
			_, err := st.DeleteBatch(rec.Triples)
			return err
		default:
			return fmt.Errorf("unknown op %v at seq %d", rec.Op, rec.Seq)
		}
	})
	if err != nil {
		if cerr := walLog.Close(); cerr != nil {
			logger.Warn("closing WAL after failed replay", "err", cerr)
		}
		return nil, nil, fmt.Errorf("replaying: %w", err)
	}
	st.SetWAL(walLog)
	logger.Info("wal recovered", "path", path, "records", records,
		"lastSeq", walLog.LastSeq(), "triples", st.Len(),
		"dur", time.Since(start).Round(time.Millisecond).String())
	return walLog, led, nil
}

// snapshotter serializes periodic and shutdown snapshot writes, skipping
// writes when the store generation has not moved since the last save. When
// a WAL is attached, each successful snapshot truncates the log records the
// snapshot covers.
type snapshotter struct {
	path   string
	st     *store.Store
	wal    *wal.Log // nil when running without a WAL
	logger *slog.Logger

	mu        sync.Mutex
	savedGen  uint64
	haveSaved bool
	savedAt   time.Time
}

// savedAtTime reports the last successful snapshot write (zero = none yet);
// the server's /healthz derives the snapshot age from it.
func (sn *snapshotter) savedAtTime() time.Time {
	sn.mu.Lock()
	defer sn.mu.Unlock()
	return sn.savedAt
}

func (sn *snapshotter) run(ctx context.Context, interval time.Duration) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			// Periodic failures are logged inside save and retried next
			// tick; only the shutdown save's error reaches main.
			_ = sn.save("interval")
		}
	}
}

func (sn *snapshotter) save(reason string) error {
	sn.mu.Lock()
	defer sn.mu.Unlock()
	gen := sn.st.Generation()
	if sn.haveSaved && gen == sn.savedGen {
		return nil
	}
	// The truncation frontier is read BEFORE the snapshot captures the
	// store: a WAL append and its store apply share the store's write lock,
	// so every record at or below this frontier is applied — and therefore
	// inside the snapshot — by the time the snapshot's read lock is granted.
	// Records appended after this point survive truncation and replay over
	// the snapshot idempotently.
	var frontier uint64
	if sn.wal != nil {
		frontier = sn.wal.LastSeq()
	}
	start := time.Now()
	if err := sn.st.WriteSnapshotFile(sn.path); err != nil {
		sn.logger.Error("snapshot write failed", "path", sn.path, "reason", reason, "err", err)
		return err
	}
	sn.savedGen = gen
	sn.haveSaved = true
	sn.savedAt = time.Now()
	if sn.wal != nil && frontier > 0 {
		if err := sn.wal.TruncateThrough(frontier); err != nil {
			// The snapshot itself succeeded; a fat WAL only means a longer
			// replay, so don't fail the save over it.
			sn.logger.Error("wal truncate failed", "throughSeq", frontier, "err", err)
		}
	}
	sn.logger.Info("snapshot written", "path", sn.path, "reason", reason,
		"triples", sn.st.Len(), "generation", gen,
		"dur", time.Since(start).Round(time.Millisecond).String())
	return nil
}

// openStore picks the startup source: an existing snapshot wins (it holds
// everything ingested over HTTP before the last stop), otherwise the -data
// file (or the embedded demo) is loaded. Returns the store and the source it
// came from.
func openStore(snapshotPath, dataPath string) (*store.Store, string, error) {
	if snapshotPath != "" {
		switch _, err := os.Stat(snapshotPath); {
		case err == nil:
			st, err := store.ReadSnapshotFile(snapshotPath)
			if err != nil {
				return nil, "", fmt.Errorf("restoring snapshot %s: %w", snapshotPath, err)
			}
			return st, snapshotPath, nil
		case !errors.Is(err, fs.ErrNotExist):
			// A snapshot that exists but cannot be statted must abort:
			// falling back to -data would later overwrite it with a fresh
			// store, destroying everything ingested before the restart.
			return nil, "", fmt.Errorf("checking snapshot %s: %w", snapshotPath, err)
		}
	}
	st, err := loadStore(dataPath)
	if err != nil {
		return nil, "", err
	}
	return st, sourceName(dataPath), nil
}

func loadStore(path string) (*store.Store, error) {
	if path == "" {
		return gen.MiniLODStore(), nil
	}
	switch ext := filepath.Ext(path); ext {
	case ".nt", ".ntriples":
		// Stream the file in bounded chunks: gigabyte dumps never
		// materialize as one slice.
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		// Read-only fd: close errors cannot lose data, discard explicitly.
		defer func() { _ = f.Close() }()
		return store.LoadNTriples(f)
	case ".ttl", ".turtle":
		raw, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		triples, err := turtle.ParseString(string(raw))
		if err != nil {
			return nil, err
		}
		return store.Load(triples)
	default:
		return nil, fmt.Errorf("unsupported dataset extension %q (want .nt, .ntriples, .ttl, .turtle)", ext)
	}
}

func sourceName(path string) string {
	if path == "" {
		return "minilod (embedded)"
	}
	return path
}
