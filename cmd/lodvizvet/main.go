// Command lodvizvet is the engine's own static-analysis suite: five
// analyzers that turn lodviz's cross-cutting invariants — per-page lock
// discipline, context threading, durability error handling, dictionary-ID
// hygiene, and nil-safe metric handles — into build-time failures.
//
// Two modes share the same analyzers:
//
//	go vet -vettool=$(pwd)/bin/lodvizvet ./...   # vet protocol (make analyze)
//	lodvizvet ./...                              # standalone driver
//
// The vet mode integrates with cmd/go's caching and test-variant
// coverage; the standalone mode needs nothing but a module directory and
// prints every finding with the invariant it violates. Suppress a
// finding, with a justification, via a trailing comment:
//
//	st.Compact() //lint:allow pagelock scan already ended: fn returned false above
//
// See internal/analysis/README.md for what each analyzer enforces and
// which PR introduced the invariant.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/lodviz/lodviz/internal/analysis/all"
	"github.com/lodviz/lodviz/internal/analysis/driver"
	"github.com/lodviz/lodviz/internal/analysis/unitchecker"
)

func main() {
	args := os.Args[1:]
	// The vet protocol probes (-V=full, -flags) and config files take
	// precedence so `go vet -vettool` always works regardless of flag
	// parsing below.
	if isVetInvocation(args) {
		os.Exit(unitchecker.Main("lodvizvet", args, all.Analyzers(), os.Stdout, os.Stderr))
	}

	fs := flag.NewFlagSet("lodvizvet", flag.ExitOnError)
	list := fs.Bool("list", false, "list the analyzers and exit")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: lodvizvet [packages]\n       go vet -vettool=lodvizvet [packages]\n\nAnalyzers:\n")
		for _, a := range all.Analyzers() {
			fmt.Fprintf(fs.Output(), "  %-10s %s\n", a.Name, a.Doc)
		}
		fs.PrintDefaults()
	}
	_ = fs.Parse(args)
	if *list {
		for _, a := range all.Analyzers() {
			fmt.Printf("%-10s %s\n  invariant: %s\n  docs:      %s\n", a.Name, a.Doc, a.Invariant, a.DocSection)
		}
		return
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "lodvizvet:", err)
		os.Exit(1)
	}
	n, err := driver.Run(all.Analyzers(), driver.ModuleRoot(wd), patterns, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lodvizvet:", err)
		os.Exit(1)
	}
	if n > 0 {
		fmt.Fprintf(os.Stderr, "lodvizvet: %d finding(s)\n", n)
		os.Exit(2)
	}
}

func isVetInvocation(args []string) bool {
	for _, a := range args {
		if a == "-V=full" || a == "-flags" || strings.HasSuffix(a, ".cfg") {
			return true
		}
	}
	return false
}
