// Tablegen regenerates the survey's Table 1 and Table 2 from the
// machine-readable systems registry (experiments E1 and E2).
//
// Usage:
//
//	tablegen [-format text|csv] [-table 1|2|all] [-observations]
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/lodviz/lodviz"
)

func main() {
	format := flag.String("format", "text", "output format: text or csv")
	table := flag.String("table", "all", "which table: 1, 2 or all")
	observations := flag.Bool("observations", false, "also print the Section-4 aggregate observations")
	flag.Parse()

	emit := func(n int) {
		switch *format {
		case "csv":
			fmt.Print(lodviz.TableCSV(n))
		case "text":
			if n == 1 {
				fmt.Println(lodviz.Table1())
			} else {
				fmt.Println(lodviz.Table2())
			}
		default:
			fmt.Fprintf(os.Stderr, "tablegen: unknown format %q\n", *format)
			os.Exit(2)
		}
	}
	switch *table {
	case "1":
		emit(1)
	case "2":
		emit(2)
	case "all":
		emit(1)
		emit(2)
	default:
		fmt.Fprintf(os.Stderr, "tablegen: unknown table %q\n", *table)
		os.Exit(2)
	}
	if *observations {
		fmt.Println(lodviz.Observations())
	}
}
