// Facetbrowse: Explorator-style session combining keyword search, faceted
// navigation with refining counts, and Visor-style pivoting to a related
// entity set.
package main

import (
	"fmt"
	"log"

	"github.com/lodviz/lodviz"
)

func main() {
	ds, err := lodviz.GenerateEntities(lodviz.EntityOptions{
		Entities:      2000,
		Classes:       5,
		CategoryProps: 2,
		Categories:    6,
		LinkProps:     1,
		Seed:          7,
	})
	if err != nil {
		log.Fatal(err)
	}
	ex := ds.Explore(lodviz.DefaultPreferences())

	// Keyword search locates starting points (VisiNav's first concept).
	hits := ex.Search("entity 42", 3)
	fmt.Println("keyword search for \"entity 42\":")
	for _, h := range hits {
		fmt.Printf("  %.3f %v\n", h.Score, h.Entity)
	}

	// Faceted browsing: facets are predicates, values carry counts.
	session := ex.Facets()
	session.MaxValuesPerFacet = 4
	fmt.Printf("\nbase entity set: %d entities\n", session.Count())
	fmt.Println("facets:")
	for i, f := range session.Facets() {
		if i == 3 {
			break
		}
		fmt.Printf("  %v (%d entities)\n", f.Predicate, f.Total)
		for _, v := range f.Values {
			fmt.Printf("    %-40v %d\n", v.Term, v.Count)
		}
	}

	// Apply filters: counts refine conjunctively.
	session.Apply(lodviz.FacetFilter{
		Predicate: lodviz.GenProp("cat0"),
		Value:     lodviz.NewLiteral("category-0"),
	})
	fmt.Printf("\nafter cat0=category-0: %d entities\n", session.Count())
	session.Apply(lodviz.FacetFilter{
		Predicate: lodviz.GenProp("cat1"),
		Value:     lodviz.NewLiteral("category-1"),
	})
	fmt.Printf("after cat1=category-1: %d entities\n", session.Count())

	// Pivot: re-root the session on the entities linked via rel0
	// (Humboldt/Visor's "connect points of interest").
	pivoted := session.Pivot(lodviz.GenProp("rel0"))
	fmt.Printf("\npivot over rel0: now browsing %d linked entities\n", pivoted.Count())
	for i, f := range pivoted.Facets() {
		if i == 2 {
			break
		}
		fmt.Printf("  facet %v covers %d of them\n", f.Predicate, f.Total)
	}
}
