// Command federate demonstrates cross-dataset exploration: two lodviz
// nodes, each holding half of a small knowledge graph, answer one SPARQL
// query together. Node A holds cities, node B holds countries; a SERVICE
// clause on node A follows the locatedIn links out to node B via a batched
// bind join, and the mesh's /federation endpoint shows the peer's health
// afterwards. Finally a query against a dead endpoint shows SERVICE SILENT
// degrading to the local partial result.
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"log/slog"
	"net"

	"github.com/lodviz/lodviz"
)

const citiesTTL = `
@prefix ex: <http://example.org/> .
ex:athens ex:locatedIn ex:greece ; ex:population 664046 .
ex:patras ex:locatedIn ex:greece ; ex:population 213984 .
ex:lyon ex:locatedIn ex:france ; ex:population 513275 .
ex:bordeaux ex:locatedIn ex:france ; ex:population 252040 .
`

const countriesTTL = `
@prefix ex: <http://example.org/> .
ex:greece ex:name "Greece"@en ; ex:capital ex:athens .
ex:france ex:name "France"@en ; ex:capital ex:paris .
`

func serve(ctx context.Context, ds *lodviz.Dataset) (string, error) {
	cfg := lodviz.ServerConfig{Logger: slog.New(slog.NewTextHandler(io.Discard, nil))}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	go ds.ServeListener(ctx, ln, cfg)
	return "http://" + ln.Addr().String() + "/sparql", nil
}

func main() {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	cities, err := lodviz.LoadTurtle(citiesTTL)
	if err != nil {
		log.Fatal(err)
	}
	countries, err := lodviz.LoadTurtle(countriesTTL)
	if err != nil {
		log.Fatal(err)
	}

	// Two in-process nodes — the same wiring `lodvizd -peer` does.
	peerB, err := serve(ctx, countries)
	if err != nil {
		log.Fatal(err)
	}
	cities.Federate(peerB)
	fmt.Println("node B (countries) at", peerB)

	// One query, two datasets: the city patterns run locally, the country
	// names come from node B through a batched bind join.
	res, err := cities.Query(fmt.Sprintf(`PREFIX ex: <http://example.org/>
		SELECT ?city ?name ?pop WHERE {
			?city ex:locatedIn ?country ; ex:population ?pop .
			SERVICE <%s> { ?country ex:name ?name }
		} ORDER BY DESC(?pop)`, peerB))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nfederated join (cities local, countries remote):")
	for _, row := range res.Rows {
		fmt.Printf("  %-40s %-12s pop=%s\n", row["city"], row["name"], row["pop"])
	}

	// The mesh tracked the peer while serving the join.
	for _, ep := range cities.FederationStatus() {
		fmt.Printf("\npeer %s: state=%s latency=%.1fms requests=%d\n",
			ep.URL, ep.State, ep.LatencyMs, ep.Requests)
	}

	// SERVICE SILENT against an endpoint nobody runs: the query degrades
	// to its local partial result instead of failing.
	res, err = cities.Query(`PREFIX ex: <http://example.org/>
		SELECT ?city ?name WHERE {
			?city ex:locatedIn ?country .
			SERVICE SILENT <http://127.0.0.1:1/sparql> { ?country ex:name ?name }
		}`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nSERVICE SILENT with a dead endpoint: %d rows, names unbound (local partial result)\n", len(res.Rows))
}
