// Graphexplore: graphVizdb-style scalable graph exploration — lay out a
// large scale-free RDF graph, persist the layout into disk-backed tiles,
// pan a viewport across it with a bounded memory budget, and get an
// overview through an expandable supernode hierarchy with bundled edges.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"github.com/lodviz/lodviz"
)

func main() {
	// A scale-free RDF graph: hubs and long tails, like real LOD.
	ds, err := lodviz.GenerateScaleFree(20000, 2, 99)
	if err != nil {
		log.Fatal(err)
	}
	g := ds.BuildGraph()
	fmt.Printf("graph: %d nodes, %d edges\n", g.NumNodes(), g.NumEdges())

	// 1. Layout (grid-accelerated force-directed).
	pos := lodviz.ForceLayout(g, lodviz.LayoutOptions{
		Iterations: 20, Width: 4096, Height: 4096, Seed: 1,
	})
	fmt.Println("layout computed")

	// 2. Persist into disk tiles: only the viewport's pages stay resident
	// (the graphVizdb architecture).
	dir, err := os.MkdirTemp("", "lodviz-tiles")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	world := lodviz.NewRect(0, 0, 4096, 4096)
	tiles, err := lodviz.NewTileStore(filepath.Join(dir, "layout.tiles"), world, 32, 64)
	if err != nil {
		log.Fatal(err)
	}
	defer tiles.Close()
	pts := make([]lodviz.TilePoint, len(pos))
	for i, p := range pos {
		pts[i] = lodviz.TilePoint{ID: uint32(i), X: p.X, Y: p.Y}
	}
	if err := tiles.AddAll(pts); err != nil {
		log.Fatal(err)
	}

	// 3. Pan a viewport across the layout: each window query touches only
	// intersecting tiles; the buffer pool stays at 64 pages (256 KiB).
	for step := 0; step < 5; step++ {
		x := float64(step) * 800
		window := lodviz.NewRect(x, 1500, x+1024, 2524)
		visible, err := tiles.Query(window)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("viewport %d: %4d nodes visible  [%s]\n", step, len(visible), tiles.Stats())
	}

	// 4. Overview via supernode hierarchy: expand to a 40-node budget.
	h := lodviz.BuildSupernodes(g, 64, 7)
	view := h.NewView()
	view.ExpandToBudget(40)
	fmt.Printf("\nsupernode overview: %d supernodes on screen\n", len(view.Visible))
	edges := view.Edges()
	fmt.Printf("aggregated edges between them: %d\n", len(edges))
	heaviest := 0
	for _, e := range edges {
		if e.Weight > heaviest {
			heaviest = e.Weight
		}
	}
	fmt.Printf("heaviest bundle stands for %d base edges\n", heaviest)

	// 5. Bundle the visible edges through the hierarchy for a readable
	// drawing: build parent[] and positions for the visible frontier.
	// (For the demo we bundle a simple two-cluster subset.)
	parent := []int{-1, 0, 0, 1, 1, 2, 2}
	positions := []lodviz.LayoutPoint{
		{X: 500, Y: 500}, {X: 200, Y: 500}, {X: 800, Y: 500},
		{X: 100, Y: 300}, {X: 100, Y: 700}, {X: 900, Y: 300}, {X: 900, Y: 700},
	}
	bundled := lodviz.BundleEdges([][2]int{{3, 5}, {4, 6}}, parent, positions, 0.85)
	fmt.Printf("\nbundled %d edges; first path has %d control points\n",
		len(bundled), len(bundled[0]))
}
