// Hierarchy: SynopsViz-style multilevel exploration of a large numeric
// property with an incrementally-constructed HETree — overview at a bounded
// number of groups, zoom into a range, adapt the hierarchy to new
// preferences, all without ever materializing the full tree.
package main

import (
	"fmt"
	"log"

	"github.com/lodviz/lodviz"
)

func main() {
	// A synthetic DBpedia-like dataset: 50k entities with a skewed numeric
	// property (num0) — think populations, incomes, counts.
	ds, err := lodviz.GenerateEntities(lodviz.EntityOptions{
		Entities:     50000,
		NumericProps: 1,
		Seed:         42,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %d triples\n", ds.Len())

	ex := ds.Explore(lodviz.DefaultPreferences())
	prop := lodviz.GenProp("num0")

	// Overview first: the HETree picks the deepest level that fits the
	// pixel budget. Only the visited part of the tree is materialized.
	spec, err := ex.NumericOverview(prop)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Println(lodviz.RenderText(spec))

	tree, err := ex.NumericHierarchy(prop)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("materialized %d tree nodes for 50000 values (incremental construction)\n",
		tree.MaterializedNodes())

	// Zoom and filter: drill into the dense low range.
	nodes, err := ex.ZoomNumeric(prop, 0, 50)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nzoom into [0, 50): %d groups\n", len(nodes))
	shown := 0
	for _, n := range nodes {
		if shown == 8 {
			fmt.Printf("  ... and %d more\n", len(nodes)-shown)
			break
		}
		fmt.Printf("  [%8.3f, %8.3f]  count=%-6d mean=%.2f\n", n.Lo, n.Hi, n.Count, n.Mean())
		shown++
	}

	// Adapt the hierarchy to a new task (coarser groups) — the sorted data
	// is reused, only the skeleton resets.
	p := ex.Preferences()
	p.TreeDegree = 8
	p.LeafCapacity = 512
	if err := ex.SetPreferences(p); err != nil {
		log.Fatal(err)
	}
	spec, err = ex.NumericOverview(prop)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nafter adaptation (degree=8, leaf=512):\n%s\n", spec.Title)

	// Details on demand: the items inside one leaf.
	tree, _ = ex.NumericHierarchy(prop)
	frontier := tree.LevelFor(16)
	leaf := frontier[0]
	items := tree.Items(leaf)
	fmt.Printf("first group [%.3f, %.3f] holds %d entities; first three:\n",
		leaf.Lo, leaf.Hi, len(items))
	for i := 0; i < 3 && i < len(items); i++ {
		fmt.Printf("  %v = %.3f\n", items[i].Ref, items[i].Value)
	}
}
