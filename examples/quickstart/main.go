// Quickstart: load the embedded mini Linked-Data dataset, run a SPARQL
// query, get a visualization recommendation, and render the chart — the
// five-minute tour of the lodviz API.
package main

import (
	"fmt"
	"log"

	"github.com/lodviz/lodviz"
)

func main() {
	// 1. Load a dataset. MiniLOD is embedded; LoadTurtle/LoadNTriples load
	// your own data.
	ds := lodviz.MiniLOD()
	fmt.Printf("loaded %d triples\n\n", ds.Len())

	// 2. Query it with SPARQL.
	res, err := ds.Query(`
PREFIX ex: <http://lodviz.example.org/mini/>
PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#>
SELECT ?label ?population WHERE {
  ?city a ex:City ; rdfs:label ?label ; ex:population ?population .
} ORDER BY DESC(?population)`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("cities by population:")
	for _, row := range res.Rows {
		fmt.Printf("  %-14s %s\n",
			row["label"].(lodviz.Literal).Lexical,
			row["population"].(lodviz.Literal).Lexical)
	}

	// 3. Explore: overview first ...
	ex := ds.Explore(lodviz.DefaultPreferences())
	o := ex.Overview()
	fmt.Printf("\noverview: %d triples, %d terms, %d classes\n",
		o.Triples, o.Terms, len(o.Classes))
	for _, c := range o.Classes {
		fmt.Printf("  class %-10s %d instances\n", c.Key, c.Count)
	}

	// ... then details on demand.
	hits := ex.Search("Athens", 1)
	if len(hits) > 0 {
		d := ex.Details(hits[0].Entity)
		fmt.Printf("\ndetails for %q: %d outgoing, %d incoming statements\n",
			d.Label, len(d.Outgoing), len(d.Incoming))
	}

	// 4. Ask for a visualization: the recommender profiles the result
	// columns and the LDVM pipeline binds + renders the best match.
	recs, _, err := ex.RecommendFor(`
PREFIX ex: <http://lodviz.example.org/mini/>
PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#>
SELECT ?label ?population WHERE { ?c a ex:City ; rdfs:label ?label ; ex:population ?population . }`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ntop visualization recommendations:")
	for i, r := range recs {
		if i == 3 {
			break
		}
		fmt.Printf("  %.2f %-12v %s\n", r.Score, r.Type, r.Reason)
	}

	spec, svg, err := ex.Visualize(`
PREFIX ex: <http://lodviz.example.org/mini/>
PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#>
SELECT ?label ?population WHERE { ?c a ex:City ; rdfs:label ?label ; ex:population ?population . }`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nchosen: %v (%d marks), SVG is %d bytes\n",
		spec.Type, spec.PointCount(), len(svg))
	fmt.Println()
	fmt.Println(lodviz.RenderText(spec))
}
