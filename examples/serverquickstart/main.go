// Command serverquickstart demonstrates the lodviz exploration server end to
// end in one process: it serves the embedded MiniLOD dataset on an ephemeral
// port, runs a SPARQL query twice over HTTP to show the cache warming up,
// adds a triple to show generation-based invalidation, and shuts down
// gracefully.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"log/slog"
	"net"
	"net/http"
	"net/url"
	"strings"

	"github.com/lodviz/lodviz"
)

func main() {
	ds := lodviz.MiniLOD()
	cfg := lodviz.ServerConfig{Logger: slog.New(slog.NewTextHandler(io.Discard, nil))}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- ds.ServeListener(ctx, ln, cfg) }()
	base := "http://" + ln.Addr().String()
	fmt.Println("serving MiniLOD at", base)

	query := `SELECT ?city ?pop WHERE {
		?city <http://lodviz.example.org/mini/country> <http://lodviz.example.org/mini/greece> .
		?city <http://lodviz.example.org/mini/population> ?pop
	} ORDER BY DESC(?pop)`
	u := base + "/sparql?query=" + url.QueryEscape(query)

	for i, label := range []string{"cold", "repeat"} {
		resp, err := http.Get(u)
		if err != nil {
			log.Fatal(err)
		}
		var doc struct {
			Results struct {
				Bindings []map[string]struct {
					Value string `json:"value"`
				} `json:"bindings"`
			} `json:"results"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
			log.Fatal(err)
		}
		resp.Body.Close()
		fmt.Printf("%s query: X-Cache=%s, %d rows\n", label, resp.Header.Get("X-Cache"), len(doc.Results.Bindings))
		if i == 0 {
			for _, b := range doc.Results.Bindings {
				fmt.Printf("  %s  pop=%s\n", b["city"].Value, b["pop"].Value)
			}
		}
	}

	// A write bumps the store generation: the cached answer is stale and the
	// next identical request recomputes.
	nt := `<http://lodviz.example.org/mini/sparta> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://lodviz.example.org/mini/City> .`
	if _, err := http.Post(base+"/triples", "application/n-triples", strings.NewReader(nt+"\n")); err != nil {
		log.Fatal(err)
	}
	resp, err := http.Get(u)
	if err != nil {
		log.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	fmt.Printf("after write: X-Cache=%s (generation advanced, cache invalidated)\n", resp.Header.Get("X-Cache"))

	cancel()
	if err := <-done; err != nil {
		log.Fatal(err)
	}
	fmt.Println("shut down cleanly")
}
