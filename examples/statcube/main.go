// Statcube: CubeViz-style exploration of statistical Linked Data described
// with the W3C RDF Data Cube vocabulary — discover cubes, inspect the
// structure, slice by a dimension, pivot into a two-dimensional table, and
// chart one dimension's totals.
package main

import (
	"fmt"
	"log"

	"github.com/lodviz/lodviz"
)

func main() {
	// 20 regions × 10 years of population observations.
	ds, err := lodviz.GenerateDataCube(20, 10, 2016)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %d triples\n", ds.Len())

	cubes := ds.Cubes()
	fmt.Printf("data cubes found: %v\n", cubes)
	cube, err := ds.LoadCube(cubes[0])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("structure: %d dimensions, %d measures, %d observations\n",
		len(cube.Dimensions), len(cube.Measures), len(cube.Observations))

	region := lodviz.GenProp("region")
	year := lodviz.GenProp("year")
	population := lodviz.GenProp("population")

	// Slice: one region across all years.
	regions := cube.DimensionValues(region)
	slice := cube.Slice(map[lodviz.IRI]lodviz.Term{region: regions[0]})
	fmt.Printf("\nslice %v: %d observations\n", shortTerm(regions[0]), len(slice))

	// Pivot: regions × years table (top-left 5×5 corner shown).
	pt, err := cube.Pivot(region, year, population, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\npivot table %d rows × %d cols (top-left corner):\n",
		len(pt.RowKeys), len(pt.ColKeys))
	fmt.Printf("%-12s", "")
	for c := 0; c < 5 && c < len(pt.ColKeys); c++ {
		fmt.Printf("%12v", shortTerm(pt.ColKeys[c]))
	}
	fmt.Println()
	for r := 0; r < 5 && r < len(pt.RowKeys); r++ {
		fmt.Printf("%-12v", shortTerm(pt.RowKeys[r]))
		for c := 0; c < 5 && c < len(pt.ColKeys); c++ {
			fmt.Printf("%12.0f", pt.Cells[r][c])
		}
		fmt.Println()
	}

	// Chart: totals per year as a bar chart.
	years, totals := cube.Totals(year, population)
	var pts []lodviz.VisPoint
	for i, y := range years {
		pts = append(pts, lodviz.VisPoint{Label: shortTerm(y), Y: totals[i]})
	}
	bars := &lodviz.VisSpec{
		Type:   lodviz.BarChart,
		Title:  "total population by year",
		Series: []lodviz.VisSeries{{Name: "population", Points: pts}},
	}
	fmt.Println()
	fmt.Println(lodviz.RenderText(bars))
	fmt.Printf("SVG rendering: %d bytes\n", len(lodviz.RenderSVG(bars)))
}

func shortTerm(t lodviz.Term) string {
	if iri, ok := t.(lodviz.IRI); ok {
		return iri.LocalName()
	}
	if l, ok := t.(lodviz.Literal); ok {
		return l.Lexical
	}
	return t.String()
}
