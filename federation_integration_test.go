package lodviz

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"sort"
	"strings"
	"testing"
)

// The multi-node federation contract, end to end: two live lodvizd
// instances (full server stacks over httptest), one holding cities and one
// holding countries, must answer a SERVICE query exactly like a single
// node holding the union of both datasets.

const fedCitiesTTL = `
@prefix ex: <http://example.org/> .
ex:athens ex:locatedIn ex:greece ; ex:population 664046 .
ex:patras ex:locatedIn ex:greece ; ex:population 213984 .
ex:lyon ex:locatedIn ex:france ; ex:population 513275 .
ex:bordeaux ex:locatedIn ex:france ; ex:population 252040 .
ex:atlantis ex:locatedIn ex:nowhere .
`

const fedCountriesTTL = `
@prefix ex: <http://example.org/> .
ex:greece ex:name "Greece"@en .
ex:france ex:name "France"@en .
ex:japan ex:name "Japan"@en .
`

func fedDataset(t *testing.T, ttl string) *Dataset {
	t.Helper()
	ds, err := LoadTurtle(ttl)
	if err != nil {
		t.Fatalf("LoadTurtle: %v", err)
	}
	return ds
}

// fedNode serves ds as a full lodvizd-equivalent node over httptest and
// returns its /sparql endpoint URL.
func fedNode(t *testing.T, ds *Dataset) string {
	t.Helper()
	srv := httptest.NewServer(ds.Handler(quietConfig()))
	t.Cleanup(srv.Close)
	return srv.URL + "/sparql"
}

func canonResults(res *Results) string {
	lines := make([]string, 0, len(res.Rows))
	for _, r := range res.Rows {
		keys := make([]string, 0, len(r))
		for k := range r {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		var sb strings.Builder
		for _, k := range keys {
			sb.WriteString(k + "=" + r[k].String() + " ")
		}
		lines = append(lines, sb.String())
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

func TestFederatedQueryEqualsMergedStore(t *testing.T) {
	cities := fedDataset(t, fedCitiesTTL)
	countries := fedDataset(t, fedCountriesTTL)
	peerURL := fedNode(t, countries)

	cities.Federate(peerURL)
	federated := fmt.Sprintf(`PREFIX ex: <http://example.org/>
		SELECT ?city ?name ?pop WHERE {
			?city ex:locatedIn ?country ; ex:population ?pop .
			SERVICE <%s> { ?country ex:name ?name }
		}`, peerURL)
	got, err := cities.Query(federated)
	if err != nil {
		t.Fatalf("federated query: %v", err)
	}
	if len(got.Rows) == 0 {
		t.Fatal("federated query returned no rows")
	}

	merged := fedDataset(t, fedCitiesTTL+fedCountriesTTL)
	want, err := merged.Query(`PREFIX ex: <http://example.org/>
		SELECT ?city ?name ?pop WHERE {
			?city ex:locatedIn ?country ; ex:population ?pop .
			?country ex:name ?name
		}`)
	if err != nil {
		t.Fatalf("merged query: %v", err)
	}
	if canonResults(got) != canonResults(want) {
		t.Errorf("federated solution multiset differs from merged store\n got:\n%s\nwant:\n%s",
			canonResults(got), canonResults(want))
	}

	// The peer shows up healthy on the mesh after serving the bind join.
	status := cities.FederationStatus()
	if len(status) != 1 || status[0].State != "closed" || status[0].Requests == 0 {
		t.Errorf("federation status = %+v", status)
	}
}

// TestFederatedQueryOverHTTP drives the same two-node join through node A's
// own /sparql endpoint — client-visible federation, not just façade-level.
func TestFederatedQueryOverHTTP(t *testing.T) {
	cities := fedDataset(t, fedCitiesTTL)
	countries := fedDataset(t, fedCountriesTTL)
	peerURL := fedNode(t, countries)
	nodeA := fedNode(t, cities)

	q := fmt.Sprintf(`PREFIX ex: <http://example.org/>
		SELECT ?city ?name WHERE {
			?city ex:locatedIn ?country .
			SERVICE <%s> { ?country ex:name ?name }
		}`, peerURL)
	resp, err := http.Get(nodeA + "?query=" + url.QueryEscape(q))
	if err != nil {
		t.Fatalf("GET /sparql: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Cache"); got != "BYPASS" {
		t.Errorf("X-Cache = %q, want BYPASS (federated responses are not generation-cacheable)", got)
	}
	var doc struct {
		Results struct {
			Bindings []map[string]struct {
				Value string `json:"value"`
			} `json:"bindings"`
		} `json:"results"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(doc.Results.Bindings) != 4 {
		t.Fatalf("bindings = %d, want 4 (cities with named countries)", len(doc.Results.Bindings))
	}
}

func TestServiceSilentDegradesToLocalPartialResult(t *testing.T) {
	cities := fedDataset(t, fedCitiesTTL)
	// A dead endpoint: nothing listens here (reserved TEST-NET-1 address
	// would hang, so use a just-closed local server for a fast refusal).
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	deadURL := dead.URL
	dead.Close()

	q := fmt.Sprintf(`PREFIX ex: <http://example.org/>
		SELECT ?city ?name WHERE {
			?city ex:locatedIn ?country .
			SERVICE SILENT <%s> { ?country ex:name ?name }
		}`, deadURL)
	got, err := cities.Query(q)
	if err != nil {
		t.Fatalf("SERVICE SILENT against dead endpoint errored: %v", err)
	}
	// All five cities come back — the local partial result — with ?name
	// unbound everywhere.
	if len(got.Rows) != 5 {
		t.Fatalf("rows = %d, want 5 (local partial result)", len(got.Rows))
	}
	for _, r := range got.Rows {
		if _, bound := r["name"]; bound {
			t.Errorf("row %v has ?name bound despite dead endpoint", r)
		}
	}

	// Without SILENT the same query must fail loudly.
	qLoud := strings.Replace(q, "SERVICE SILENT", "SERVICE", 1)
	if _, err := cities.Query(qLoud); err == nil {
		t.Fatal("plain SERVICE against dead endpoint should error")
	}
}

func TestFederationStatusEndpoint(t *testing.T) {
	cities := fedDataset(t, fedCitiesTTL)
	countries := fedDataset(t, fedCountriesTTL)
	peerURL := fedNode(t, countries)
	cities.Federate(peerURL)
	nodeA := fedNode(t, cities)

	resp, err := http.Get(strings.TrimSuffix(nodeA, "/sparql") + "/federation")
	if err != nil {
		t.Fatalf("GET /federation: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var doc struct {
		Endpoints []struct {
			URL   string `json:"url"`
			State string `json:"state"`
		} `json:"endpoints"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(doc.Endpoints) != 1 || doc.Endpoints[0].URL != peerURL {
		t.Fatalf("endpoints = %+v, want the registered peer", doc.Endpoints)
	}
}

func TestDatasetSearchAndComplete(t *testing.T) {
	ds := MiniLOD()
	hits := ds.Search("athens", 5)
	if len(hits) == 0 {
		t.Fatal("Search(athens) found nothing in MiniLOD")
	}
	comps := ds.Complete("ath", 5)
	found := false
	for _, c := range comps {
		if c == "athens" {
			found = true
		}
	}
	if !found {
		t.Errorf("Complete(ath) = %v, want to include athens", comps)
	}
}
