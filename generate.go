package lodviz

import (
	"github.com/lodviz/lodviz/internal/gen"
)

// Synthetic dataset generation. The surveyed systems demonstrate on live
// LOD endpoints (DBpedia, LinkedGeoData); lodviz is offline by design, so
// these deterministic generators produce datasets with the same shape (see
// DESIGN.md, "Substitutions").

// GenerateScaleFree returns a dataset whose link structure follows a
// Barabási–Albert preferential-attachment process (n entities, m edges per
// new entity) — the hub-dominated topology of real LOD graphs.
func GenerateScaleFree(n, m int, seed int64) (*Dataset, error) {
	return FromTriples(gen.ScaleFreeGraph(n, m, seed))
}

// EntityOptions configures GenerateEntities.
type EntityOptions = gen.EntityOptions

// GenerateEntities returns a DBpedia-like entity-attribute dataset.
func GenerateEntities(opts EntityOptions) (*Dataset, error) {
	return FromTriples(gen.EntityDataset(opts))
}

// GenerateDataCube returns an RDF Data Cube of regions × years population
// observations.
func GenerateDataCube(regions, years int, seed int64) (*Dataset, error) {
	return FromTriples(gen.DataCube(regions, years, seed))
}

// GenerateGeoPoints returns a dataset of n geolocated places clustered
// around c hotspots.
func GenerateGeoPoints(n, c int, seed int64) (*Dataset, error) {
	return FromTriples(gen.GeoPoints(n, c, seed))
}

// GenProp returns the IRI of a generated property (e.g. "num0", "cat0",
// "linksTo") for querying generated datasets.
func GenProp(name string) IRI { return gen.Prop(name) }

// GenRes returns the IRI of a generated resource, e.g. GenRes("node", 0).
func GenRes(kind string, i int) IRI { return gen.Res(kind, i) }
