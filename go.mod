module github.com/lodviz/lodviz

go 1.22
