package lodviz

import (
	"fmt"

	"github.com/lodviz/lodviz/internal/bundling"
	"github.com/lodviz/lodviz/internal/datacube"
	"github.com/lodviz/lodviz/internal/geo"
	"github.com/lodviz/lodviz/internal/graph"
	"github.com/lodviz/lodviz/internal/layout"
	"github.com/lodviz/lodviz/internal/ontology"
	"github.com/lodviz/lodviz/internal/spatial"
	"github.com/lodviz/lodviz/internal/super"
)

// Graph-based exploration API (the survey's §3.4 systems).

type (
	// Graph is the node-link view of a dataset.
	Graph = graph.Graph
	// NodeID indexes a node within a Graph.
	NodeID = graph.NodeID
	// LayoutPoint is a 2-D node position.
	LayoutPoint = layout.Point
	// LayoutOptions tune force-directed layout.
	LayoutOptions = layout.Options
	// Hierarchy is a supernode abstraction hierarchy.
	Hierarchy = super.Hierarchy
	// HierarchyView is an expandable/collapsible frontier of a Hierarchy.
	HierarchyView = super.View
	// TileStore is a disk-backed viewport-query store for laid-out nodes.
	TileStore = spatial.TileStore
	// TilePoint is one positioned object in a TileStore.
	TilePoint = spatial.TilePoint
	// Rect is an axis-aligned viewport rectangle.
	Rect = spatial.Rect
	// Cube is a parsed RDF Data Cube.
	Cube = datacube.Cube
	// GeoPoint is a geolocated entity.
	GeoPoint = geo.Point
	// ClassHierarchy is the extracted rdfs:subClassOf forest.
	ClassHierarchy = ontology.Hierarchy
)

// BuildGraph extracts the resource-to-resource graph of the dataset.
func (d *Dataset) BuildGraph() *Graph { return graph.FromStore(d.st) }

// ForceLayout computes a force-directed layout for a graph.
func ForceLayout(g *Graph, opts LayoutOptions) []LayoutPoint {
	return layout.ForceDirected(g, opts)
}

// BuildSupernodes builds an ASK-GraphView-style abstraction hierarchy with
// the given leaf size.
func BuildSupernodes(g *Graph, maxLeaf int, seed int64) *Hierarchy {
	return super.Build(g, super.Options{MaxLeafSize: maxLeaf, Seed: seed})
}

// NewRect builds a viewport rectangle.
func NewRect(x1, y1, x2, y2 float64) Rect { return spatial.NewRect(x1, y1, x2, y2) }

// NewTileStore creates a disk-backed tile store over a layout world,
// keeping at most poolPages 4-KiB pages in memory (the graphVizdb
// architecture).
func NewTileStore(path string, world Rect, grid, poolPages int) (*TileStore, error) {
	ts, err := spatial.NewTileStore(path, world, grid, poolPages)
	if err != nil {
		return nil, fmt.Errorf("lodviz: %w", err)
	}
	return ts, nil
}

// BundleEdges applies Holten-style hierarchical edge bundling: edges are
// index pairs into positions, parent describes the cluster tree (-1 root),
// beta in [0,1] is the bundling strength.
func BundleEdges(edges [][2]int, parent []int, positions []LayoutPoint, beta float64) [][]LayoutPoint {
	bEdges := make([]bundling.Edge, len(edges))
	for i, e := range edges {
		bEdges[i] = bundling.Edge{From: e[0], To: e[1]}
	}
	bPos := make([]bundling.Point, len(positions))
	for i, p := range positions {
		bPos[i] = bundling.Point{X: p.X, Y: p.Y}
	}
	lines := bundling.HierarchicalBundle(bEdges, parent, bPos, beta)
	out := make([][]LayoutPoint, len(lines))
	for i, l := range lines {
		pts := make([]LayoutPoint, len(l))
		for j, p := range l {
			pts[j] = LayoutPoint{X: p.X, Y: p.Y}
		}
		out[i] = pts
	}
	return out
}

// Data-cube API (the survey's §3.3 statistical systems).

// Cubes lists the RDF Data Cubes declared in the dataset.
func (d *Dataset) Cubes() []IRI { return datacube.Discover(d.st) }

// LoadCube parses one cube's structure and observations.
func (d *Dataset) LoadCube(iri IRI) (*Cube, error) { return datacube.Load(d.st, iri) }

// Geospatial API (the survey's §3.3 geo systems).

// GeoPoints extracts all WGS84-geolocated entities.
func (d *Dataset) GeoPoints() []GeoPoint { return geo.ExtractPoints(d.st) }

// GeoBins clusters points into zoom-appropriate map markers.
func GeoBins(points []GeoPoint, zoom int) []geo.MapBin { return geo.BinForZoom(points, zoom) }

// Ontology API (the survey's §3.5 systems).

// ClassHierarchy extracts the dataset's class hierarchy with instance
// counts.
func (d *Dataset) ClassHierarchy() *ClassHierarchy { return ontology.Extract(d.st) }
