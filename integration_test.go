package lodviz

import (
	"strings"
	"testing"

	"github.com/lodviz/lodviz/internal/gen"
	"github.com/lodviz/lodviz/internal/ntriples"
	"github.com/lodviz/lodviz/internal/rdf"
)

// Integration tests exercising full cross-module paths: parse → store →
// SPARQL → exploration → reduction → visualization.

func TestIntegrationTurtleToVisualization(t *testing.T) {
	// Turtle in, SVG out, through every pipeline stage.
	ds, err := LoadTurtle(gen.MiniLOD)
	if err != nil {
		t.Fatal(err)
	}
	ex := ds.Explore(DefaultPreferences())
	spec, svg, err := ex.Visualize(`
PREFIX ex: <http://lodviz.example.org/mini/>
PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#>
SELECT ?label ?population WHERE { ?c a ex:City ; rdfs:label ?label ; ex:population ?population . }`)
	if err != nil {
		t.Fatal(err)
	}
	if spec.PointCount() != 5 {
		t.Errorf("spec points = %d, want 5 cities", spec.PointCount())
	}
	if !strings.Contains(svg, "<svg") {
		t.Error("no SVG output")
	}
}

func TestIntegrationNTriplesRoundTripThroughStore(t *testing.T) {
	// Generate → serialize to N-Triples → re-parse → compare query results.
	orig, err := GenerateEntities(EntityOptions{Entities: 100, NumericProps: 1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	serialized := ntriples.Format(orig.Store().Triples())
	re, err := LoadNTriples(strings.NewReader(serialized))
	if err != nil {
		t.Fatal(err)
	}
	if re.Len() != orig.Len() {
		t.Fatalf("round trip: %d != %d triples", re.Len(), orig.Len())
	}
	q := `SELECT (COUNT(?s) AS ?n) WHERE { ?s ?p ?o }`
	r1, err := orig.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := re.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	n1, _ := r1.Rows[0]["n"].(rdf.Literal).Int()
	n2, _ := r2.Rows[0]["n"].(rdf.Literal).Int()
	if n1 != n2 {
		t.Errorf("count after round trip: %d != %d", n1, n2)
	}
}

func TestIntegrationDynamicUpdatesVisibleEverywhere(t *testing.T) {
	// The survey's "dynamic data" requirement: updates must be visible to
	// SPARQL, facets and search without a reload.
	ds := MiniLOD()
	ex := ds.Explore(DefaultPreferences())

	before, _ := ds.Query(`PREFIX ex: <http://lodviz.example.org/mini/>
SELECT ?c WHERE { ?c a ex:City }`)

	ds.Add(Triple{
		S: IRI("http://lodviz.example.org/mini/heraklion"),
		P: rdf.RDFType,
		O: IRI("http://lodviz.example.org/mini/City"),
	})
	ds.Add(Triple{
		S: IRI("http://lodviz.example.org/mini/heraklion"),
		P: rdf.RDFSLabel,
		O: NewLiteral("Heraklion"),
	})

	after, _ := ds.Query(`PREFIX ex: <http://lodviz.example.org/mini/>
SELECT ?c WHERE { ?c a ex:City }`)
	if len(after.Rows) != len(before.Rows)+1 {
		t.Errorf("SPARQL sees %d cities, want %d", len(after.Rows), len(before.Rows)+1)
	}
	// Facet session started after the update sees it too.
	s := ex.Facets()
	s.Apply(FacetFilter{Predicate: rdf.RDFType, Value: IRI("http://lodviz.example.org/mini/City")})
	if s.Count() != 6 {
		t.Errorf("facets see %d cities, want 6", s.Count())
	}
}

func TestIntegrationGraphPipelineOverGeneratedData(t *testing.T) {
	ds, err := GenerateScaleFree(500, 2, 11)
	if err != nil {
		t.Fatal(err)
	}
	g := ds.BuildGraph()
	pos := ForceLayout(g, LayoutOptions{Iterations: 15, Seed: 2})
	// Layout → supernodes → aggregated edges, sizes consistent throughout.
	h := BuildSupernodes(g, 16, 2)
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	v := h.NewView()
	v.ExpandToBudget(25)
	total := 0
	for _, id := range v.Visible {
		total += h.Nodes[id].Size
	}
	if total != g.NumNodes() {
		t.Errorf("view covers %d of %d nodes", total, g.NumNodes())
	}
	if len(pos) != g.NumNodes() {
		t.Errorf("layout %d positions for %d nodes", len(pos), g.NumNodes())
	}
}

func TestIntegrationCubeToChart(t *testing.T) {
	ds, err := GenerateDataCube(6, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	cube, err := ds.LoadCube(ds.Cubes()[0])
	if err != nil {
		t.Fatal(err)
	}
	keys, vals := cube.Totals(GenProp("year"), GenProp("population"))
	if len(keys) != 4 || len(vals) != 4 {
		t.Fatalf("totals = %d keys", len(keys))
	}
	var pts []VisPoint
	for i := range keys {
		pts = append(pts, VisPoint{Label: keys[i].String(), Y: vals[i]})
	}
	spec := &VisSpec{Type: BarChart, Series: []VisSeries{{Points: pts}}}
	if !strings.Contains(RenderSVG(spec), "<rect") {
		t.Error("cube chart did not render bars")
	}
}

func TestIntegrationSPARQLOverParsedOntology(t *testing.T) {
	// Ontology extraction agrees with a SPARQL count over the same store.
	ds := MiniLOD()
	h := ds.ClassHierarchy()
	res, err := ds.Query(`
PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#>
SELECT (COUNT(?c) AS ?n) WHERE { ?c rdfs:subClassOf ?p }`)
	if err != nil {
		t.Fatal(err)
	}
	n, _ := res.Rows[0]["n"].(rdf.Literal).Int()
	// Mini ontology declares 3 subclass axioms; the hierarchy contains the
	// corresponding parent-child links (plus virtual-root attachments).
	if n != 3 {
		t.Errorf("subclass axioms = %d", n)
	}
	linked := 0
	for i := 1; i < len(h.Classes); i++ {
		if h.Classes[i].Parent != 0 {
			linked++
		}
	}
	if linked != 3 {
		t.Errorf("hierarchy has %d non-root links, want 3", linked)
	}
}

func TestIntegrationKeywordSearchAfterUpdates(t *testing.T) {
	ds := MiniLOD()
	ds.Add(Triple{
		S: IRI("http://lodviz.example.org/mini/zanzibar"),
		P: rdf.RDFSLabel,
		O: NewLiteral("Zanzibar the spice island"),
	})
	ex := ds.Explore(DefaultPreferences())
	hits := ex.Search("spice island", 5)
	if len(hits) != 1 || hits[0].Entity != IRI("http://lodviz.example.org/mini/zanzibar") {
		t.Errorf("hits = %v", hits)
	}
}
