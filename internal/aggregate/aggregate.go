// Package aggregate implements the aggregation-based data-reduction family
// from the survey (Section 2, refs [42,25,74,73,97,138,96]): equal-width,
// equal-frequency and temporal binning, two-dimensional (heatmap) binning,
// a generic group-by engine, and M4 — the pixel-perfect min/max/first/last
// per pixel-column aggregation of Jugel et al. for line charts.
package aggregate

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"
)

// ErrBadBins is returned for non-positive bin counts.
var ErrBadBins = errors.New("aggregate: bin count must be positive")

// Bin is one bucket of a 1-D binning.
type Bin struct {
	// Lo and Hi delimit the bin interval [Lo, Hi) (the last bin is closed).
	Lo, Hi float64
	// Count is the number of values in the bin.
	Count int
	// Sum, Min, Max aggregate the contained values.
	Sum, Min, Max float64
}

// Mean returns the bin's mean (0 for an empty bin).
func (b Bin) Mean() float64 {
	if b.Count == 0 {
		return 0
	}
	return b.Sum / float64(b.Count)
}

// EqualWidth bins values into n equal-width intervals spanning [min, max].
func EqualWidth(values []float64, n int) ([]Bin, error) {
	if n <= 0 {
		return nil, ErrBadBins
	}
	if len(values) == 0 {
		return nil, nil
	}
	lo, hi := values[0], values[0]
	for _, v := range values {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	if hi == lo {
		hi = lo + 1
	}
	bins := make([]Bin, n)
	width := (hi - lo) / float64(n)
	for i := range bins {
		bins[i] = Bin{Lo: lo + float64(i)*width, Hi: lo + float64(i+1)*width, Min: math.Inf(1), Max: math.Inf(-1)}
	}
	for _, v := range values {
		i := int((v - lo) / width)
		if i >= n {
			i = n - 1
		}
		accumulate(&bins[i], v)
	}
	return bins, nil
}

// EqualFrequency bins sorted values into n buckets of (near-)equal counts —
// the quantile binning HETree-C style hierarchies use at their leaf level.
func EqualFrequency(values []float64, n int) ([]Bin, error) {
	if n <= 0 {
		return nil, ErrBadBins
	}
	if len(values) == 0 {
		return nil, nil
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	if n > len(sorted) {
		n = len(sorted)
	}
	bins := make([]Bin, 0, n)
	per := len(sorted) / n
	extra := len(sorted) % n
	idx := 0
	for i := 0; i < n; i++ {
		cnt := per
		if i < extra {
			cnt++
		}
		chunk := sorted[idx : idx+cnt]
		b := Bin{Lo: chunk[0], Hi: chunk[len(chunk)-1], Min: math.Inf(1), Max: math.Inf(-1)}
		for _, v := range chunk {
			accumulate(&b, v)
		}
		bins = append(bins, b)
		idx += cnt
	}
	return bins, nil
}

func accumulate(b *Bin, v float64) {
	b.Count++
	b.Sum += v
	b.Min = math.Min(b.Min, v)
	b.Max = math.Max(b.Max, v)
}

// TimeUnit selects the calendar granularity of temporal binning.
type TimeUnit int

// Supported calendar granularities.
const (
	ByYear TimeUnit = iota
	ByMonth
	ByDay
	ByHour
)

// TimeBin is one temporal bucket.
type TimeBin struct {
	// Start is the bucket's calendar start.
	Start time.Time
	// Label is a human-readable bucket key ("2016", "2016-03", ...).
	Label string
	Count int
	Sum   float64
}

// ByTime buckets timestamped values at the given granularity, in
// chronological order — the timeline reduction used by temporal facets.
func ByTime(ts []time.Time, values []float64, unit TimeUnit) ([]TimeBin, error) {
	if len(ts) != len(values) && len(values) != 0 {
		return nil, fmt.Errorf("aggregate: %d timestamps vs %d values", len(ts), len(values))
	}
	buckets := map[string]*TimeBin{}
	var order []string
	for i, tm := range ts {
		start, label := truncate(tm, unit)
		b, ok := buckets[label]
		if !ok {
			b = &TimeBin{Start: start, Label: label}
			buckets[label] = b
			order = append(order, label)
		}
		b.Count++
		if len(values) > 0 {
			b.Sum += values[i]
		}
	}
	sort.Strings(order)
	out := make([]TimeBin, 0, len(order))
	for _, label := range order {
		out = append(out, *buckets[label])
	}
	return out, nil
}

func truncate(t time.Time, unit TimeUnit) (time.Time, string) {
	t = t.UTC()
	switch unit {
	case ByYear:
		s := time.Date(t.Year(), 1, 1, 0, 0, 0, 0, time.UTC)
		return s, s.Format("2006")
	case ByMonth:
		s := time.Date(t.Year(), t.Month(), 1, 0, 0, 0, 0, time.UTC)
		return s, s.Format("2006-01")
	case ByDay:
		s := time.Date(t.Year(), t.Month(), t.Day(), 0, 0, 0, 0, time.UTC)
		return s, s.Format("2006-01-02")
	default:
		s := time.Date(t.Year(), t.Month(), t.Day(), t.Hour(), 0, 0, 0, time.UTC)
		return s, s.Format("2006-01-02T15")
	}
}

// Cell2D is one cell of a 2-D (heatmap) binning.
type Cell2D struct {
	XBin, YBin int
	Count      int
}

// Grid2D is a 2-D binning of points, the imMens/Nanocubes-style reduction
// for scatter/heat maps.
type Grid2D struct {
	XBins, YBins           int
	MinX, MaxX, MinY, MaxY float64
	// Cells maps (yBin*XBins + xBin) to counts; empty cells are absent.
	Cells map[int]int
}

// Bin2D builds a 2-D count grid over the points.
func Bin2D(xs, ys []float64, xBins, yBins int) (*Grid2D, error) {
	if xBins <= 0 || yBins <= 0 {
		return nil, ErrBadBins
	}
	if len(xs) != len(ys) {
		return nil, fmt.Errorf("aggregate: %d xs vs %d ys", len(xs), len(ys))
	}
	g := &Grid2D{XBins: xBins, YBins: yBins, Cells: map[int]int{}}
	if len(xs) == 0 {
		return g, nil
	}
	g.MinX, g.MaxX = xs[0], xs[0]
	g.MinY, g.MaxY = ys[0], ys[0]
	for i := range xs {
		g.MinX = math.Min(g.MinX, xs[i])
		g.MaxX = math.Max(g.MaxX, xs[i])
		g.MinY = math.Min(g.MinY, ys[i])
		g.MaxY = math.Max(g.MaxY, ys[i])
	}
	if g.MaxX == g.MinX {
		g.MaxX = g.MinX + 1
	}
	if g.MaxY == g.MinY {
		g.MaxY = g.MinY + 1
	}
	for i := range xs {
		xb := int((xs[i] - g.MinX) / (g.MaxX - g.MinX) * float64(xBins))
		yb := int((ys[i] - g.MinY) / (g.MaxY - g.MinY) * float64(yBins))
		if xb >= xBins {
			xb = xBins - 1
		}
		if yb >= yBins {
			yb = yBins - 1
		}
		g.Cells[yb*xBins+xb]++
	}
	return g, nil
}

// NonEmpty returns the populated cells sorted by count descending.
func (g *Grid2D) NonEmpty() []Cell2D {
	out := make([]Cell2D, 0, len(g.Cells))
	for k, c := range g.Cells {
		out = append(out, Cell2D{XBin: k % g.XBins, YBin: k / g.XBins, Count: c})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		ki := out[i].YBin*g.XBins + out[i].XBin
		kj := out[j].YBin*g.XBins + out[j].XBin
		return ki < kj
	})
	return out
}

// Total returns the number of binned points.
func (g *Grid2D) Total() int {
	t := 0
	for _, c := range g.Cells {
		t += c
	}
	return t
}

// M4Point is a (t, v) sample of a series.
type M4Point struct {
	T, V float64
}

// M4 reduces a time series to at most 4 points per pixel column — min, max,
// first, last — which renders pixel-identically to the full series on a
// display of the given width (Jugel et al., PVLDB 2014). Input must be
// sorted by T.
func M4(series []M4Point, width int) ([]M4Point, error) {
	if width <= 0 {
		return nil, ErrBadBins
	}
	if len(series) <= 4*width {
		return append([]M4Point(nil), series...), nil
	}
	lo, hi := series[0].T, series[len(series)-1].T
	if hi == lo {
		hi = lo + 1
	}
	type colAgg struct {
		first, last, min, max M4Point
		seen                  bool
	}
	cols := make([]colAgg, width)
	for _, p := range series {
		c := int((p.T - lo) / (hi - lo) * float64(width))
		if c >= width {
			c = width - 1
		}
		a := &cols[c]
		if !a.seen {
			*a = colAgg{first: p, last: p, min: p, max: p, seen: true}
			continue
		}
		a.last = p
		if p.V < a.min.V {
			a.min = p
		}
		if p.V > a.max.V {
			a.max = p
		}
	}
	var out []M4Point
	for _, a := range cols {
		if !a.seen {
			continue
		}
		// Emit the column's 4 anchor points in time order, deduplicated.
		pts := []M4Point{a.first, a.min, a.max, a.last}
		sort.Slice(pts, func(i, j int) bool { return pts[i].T < pts[j].T })
		for i, p := range pts {
			if i > 0 && p == pts[i-1] {
				continue
			}
			out = append(out, p)
		}
	}
	return out, nil
}

// GroupResult is one group of a group-by aggregation.
type GroupResult struct {
	Key   string
	Count int
	Sum   float64
}

// GroupBy aggregates values by a string key, returning groups sorted by
// count descending — the workhorse behind facet counts and pie/bar charts.
func GroupBy[T any](items []T, key func(T) string, value func(T) float64) []GroupResult {
	groups := map[string]*GroupResult{}
	var order []string
	for _, it := range items {
		k := key(it)
		g, ok := groups[k]
		if !ok {
			g = &GroupResult{Key: k}
			groups[k] = g
			order = append(order, k)
		}
		g.Count++
		if value != nil {
			g.Sum += value(it)
		}
	}
	out := make([]GroupResult, 0, len(order))
	for _, k := range order {
		out = append(out, *groups[k])
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Key < out[j].Key
	})
	return out
}
