package aggregate

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestEqualWidthBasic(t *testing.T) {
	bins, err := EqualWidth([]float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(bins) != 5 {
		t.Fatalf("bins = %d", len(bins))
	}
	for i, b := range bins {
		if b.Count != 2 {
			t.Errorf("bin %d count = %d, want 2", i, b.Count)
		}
	}
	if bins[0].Min != 0 || bins[0].Max != 1 || bins[0].Mean() != 0.5 {
		t.Errorf("bin 0 = %+v", bins[0])
	}
}

func TestEqualWidthEdgeCases(t *testing.T) {
	if _, err := EqualWidth([]float64{1}, 0); err != ErrBadBins {
		t.Error("n=0 accepted")
	}
	bins, err := EqualWidth(nil, 3)
	if err != nil || bins != nil {
		t.Error("empty input should return nil bins")
	}
	// Constant input must not divide by zero.
	bins, err = EqualWidth([]float64{5, 5, 5}, 3)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, b := range bins {
		total += b.Count
	}
	if total != 3 {
		t.Errorf("constant input lost values: %d", total)
	}
}

func TestEqualFrequency(t *testing.T) {
	// Heavily skewed data: equal-frequency keeps bucket counts balanced.
	var vals []float64
	for i := 0; i < 90; i++ {
		vals = append(vals, float64(i)/100)
	}
	for i := 0; i < 10; i++ {
		vals = append(vals, 1000+float64(i))
	}
	bins, err := EqualFrequency(vals, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(bins) != 10 {
		t.Fatalf("bins = %d", len(bins))
	}
	for i, b := range bins {
		if b.Count != 10 {
			t.Errorf("bin %d count = %d, want 10", i, b.Count)
		}
	}
}

func TestEqualFrequencyFewerValuesThanBins(t *testing.T) {
	bins, err := EqualFrequency([]float64{3, 1, 2}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(bins) != 3 {
		t.Errorf("bins = %d, want 3", len(bins))
	}
	if bins[0].Lo != 1 || bins[2].Lo != 3 {
		t.Errorf("bins not sorted: %+v", bins)
	}
}

// Property: binning conserves count and sum.
func TestBinningConservationProperty(t *testing.T) {
	f := func(seed int64, n8 uint8, bins8 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(n8)%300 + 1
		nb := int(bins8)%20 + 1
		vals := make([]float64, n)
		var sum float64
		for i := range vals {
			vals[i] = rng.NormFloat64() * 100
			sum += vals[i]
		}
		for _, f := range []func([]float64, int) ([]Bin, error){EqualWidth, EqualFrequency} {
			bins, err := f(vals, nb)
			if err != nil {
				return false
			}
			count, binSum := 0, 0.0
			for _, b := range bins {
				count += b.Count
				binSum += b.Sum
			}
			if count != n || math.Abs(binSum-sum) > 1e-6*math.Max(1, math.Abs(sum)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestByTime(t *testing.T) {
	mk := func(y int, m time.Month, d int) time.Time {
		return time.Date(y, m, d, 12, 0, 0, 0, time.UTC)
	}
	ts := []time.Time{mk(2015, 1, 1), mk(2015, 6, 15), mk(2016, 3, 15), mk(2016, 3, 20)}
	vals := []float64{1, 2, 3, 4}

	byYear, err := ByTime(ts, vals, ByYear)
	if err != nil {
		t.Fatal(err)
	}
	if len(byYear) != 2 || byYear[0].Label != "2015" || byYear[0].Count != 2 || byYear[0].Sum != 3 {
		t.Errorf("byYear = %+v", byYear)
	}
	byMonth, _ := ByTime(ts, vals, ByMonth)
	if len(byMonth) != 3 || byMonth[2].Label != "2016-03" || byMonth[2].Count != 2 {
		t.Errorf("byMonth = %+v", byMonth)
	}
	byDay, _ := ByTime(ts, nil, ByDay)
	if len(byDay) != 4 {
		t.Errorf("byDay = %+v", byDay)
	}
	byHour, _ := ByTime(ts[:1], nil, ByHour)
	if byHour[0].Label != "2015-01-01T12" {
		t.Errorf("byHour label = %q", byHour[0].Label)
	}
}

func TestByTimeLengthMismatch(t *testing.T) {
	if _, err := ByTime([]time.Time{time.Now()}, []float64{1, 2}, ByYear); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestBin2D(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 0.1}
	ys := []float64{0, 1, 2, 3, 0.1}
	g, err := Bin2D(xs, ys, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if g.Total() != 5 {
		t.Errorf("Total = %d", g.Total())
	}
	cells := g.NonEmpty()
	if len(cells) != 2 {
		t.Fatalf("non-empty cells = %d, want 2 (diagonal)", len(cells))
	}
	if cells[0].Count != 3 { // 0, 0.1, 1 in lower-left... (1 maps to bin 0? 1/3*2=0.66 -> 0)
		t.Errorf("densest cell = %+v", cells[0])
	}
}

func TestBin2DEdgeCases(t *testing.T) {
	if _, err := Bin2D(nil, nil, 0, 2); err != ErrBadBins {
		t.Error("0 bins accepted")
	}
	if _, err := Bin2D([]float64{1}, nil, 2, 2); err == nil {
		t.Error("mismatched lengths accepted")
	}
	g, err := Bin2D(nil, nil, 2, 2)
	if err != nil || g.Total() != 0 {
		t.Error("empty input should give empty grid")
	}
}

func TestM4ReducesAndKeepsExtremes(t *testing.T) {
	// A long series with one extreme spike: M4 must retain the spike.
	var series []M4Point
	for i := 0; i < 10000; i++ {
		v := math.Sin(float64(i) / 100)
		if i == 5555 {
			v = 99
		}
		series = append(series, M4Point{T: float64(i), V: v})
	}
	out, err := M4(series, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) > 4*100 {
		t.Errorf("M4 output %d > 4*width", len(out))
	}
	foundSpike := false
	for _, p := range out {
		if p.V == 99 {
			foundSpike = true
		}
	}
	if !foundSpike {
		t.Error("M4 lost the spike (max of its pixel column)")
	}
	// Output must remain sorted by T within tolerance of column ordering.
	for i := 1; i < len(out); i++ {
		if out[i].T < out[i-1].T {
			t.Errorf("M4 output unsorted at %d", i)
			break
		}
	}
}

func TestM4SmallSeriesPassThrough(t *testing.T) {
	series := []M4Point{{0, 1}, {1, 2}, {2, 3}}
	out, err := M4(series, 100)
	if err != nil || len(out) != 3 {
		t.Errorf("small series should pass through: %v %v", out, err)
	}
	if _, err := M4(series, 0); err != ErrBadBins {
		t.Error("width=0 accepted")
	}
}

func TestGroupBy(t *testing.T) {
	type rec struct {
		class string
		val   float64
	}
	items := []rec{{"a", 1}, {"b", 2}, {"a", 3}, {"c", 4}, {"a", 5}}
	groups := GroupBy(items, func(r rec) string { return r.class }, func(r rec) float64 { return r.val })
	if len(groups) != 3 {
		t.Fatalf("groups = %d", len(groups))
	}
	if groups[0].Key != "a" || groups[0].Count != 3 || groups[0].Sum != 9 {
		t.Errorf("top group = %+v", groups[0])
	}
	// nil value function counts only.
	counts := GroupBy(items, func(r rec) string { return r.class }, nil)
	if counts[0].Sum != 0 {
		t.Error("nil value fn should not sum")
	}
}

func TestGroupByDeterministicTieBreak(t *testing.T) {
	items := []string{"b", "a"}
	groups := GroupBy(items, func(s string) string { return s }, nil)
	if groups[0].Key != "a" || groups[1].Key != "b" {
		t.Errorf("tie-break not lexicographic: %+v", groups)
	}
}
