// Package all enumerates the lodvizvet analyzer suite in one place, so
// the multichecker binary, the standalone driver, and the integration
// tests agree on what "all five" means.
package all

import (
	"github.com/lodviz/lodviz/internal/analysis"
	"github.com/lodviz/lodviz/internal/analysis/ctxflow"
	"github.com/lodviz/lodviz/internal/analysis/idspace"
	"github.com/lodviz/lodviz/internal/analysis/obshandle"
	"github.com/lodviz/lodviz/internal/analysis/pagelock"
	"github.com/lodviz/lodviz/internal/analysis/syncerr"
)

// Analyzers returns the full suite in reporting order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		ctxflow.Analyzer,
		idspace.Analyzer,
		obshandle.Analyzer,
		pagelock.Analyzer,
		syncerr.Analyzer,
	}
}
