// Package analysis is lodviz's project-specific static-analysis framework:
// a deliberately small, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis surface that the five lodvizvet analyzers
// (pagelock, ctxflow, syncerr, idspace, obshandle) are written against.
//
// The vendored x/tools module is unavailable in the hermetic build
// environment, so the framework is built on the standard library only:
// go/ast + go/types for the analyses themselves, `go list -export` plus
// go/importer's gc-export-data mode for offline package loading (see the
// driver subpackage), and the cmd/vet unitchecker protocol for
// `go vet -vettool` integration (see the unitchecker subpackage).
//
// Every analyzer names the invariant it enforces and the document section
// that explains it; diagnostics carry both so a build-time failure points
// straight at the design rule it protects. Individual findings can be
// waived with a justified suppression comment on the offending line (or
// the line directly above it):
//
//	//lint:allow <analyzer> <why this site is safe>
//
// A suppression without a justification is itself a diagnostic.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer describes one static-analysis pass.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:allow comments. Lower-case, no spaces.
	Name string

	// Doc is a one-line description of what the analyzer reports.
	Doc string

	// Invariant is the engine invariant the analyzer enforces, phrased as
	// the rule a violation breaks. It is appended to every diagnostic.
	Invariant string

	// DocSection names where the invariant is documented
	// (e.g. "internal/analysis/README.md#pagelock").
	DocSection string

	// Run applies the analyzer to one package, reporting findings
	// through the pass.
	Run func(*Pass) error
}

// A Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags []Diagnostic
}

// A Diagnostic is one finding at one position. Message is the
// site-specific text; the framework appends the analyzer's invariant when
// formatting.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Finding is a diagnostic resolved against the file set and attributed
// to its analyzer, after suppression filtering.
type Finding struct {
	Analyzer *Analyzer
	Pos      token.Position
	Message  string
}

// String renders the finding the way the drivers print it: position,
// site message, analyzer name, and the invariant the site violates.
func (f Finding) String() string {
	return fmt.Sprintf("%s: %s [%s: %s — see %s]",
		f.Pos, f.Message, f.Analyzer.Name, f.Analyzer.Invariant, f.Analyzer.DocSection)
}
