// Package analysistest runs one analyzer over a stub package tree and
// checks its findings against // want comments, mirroring the
// golang.org/x/tools analysistest contract on the standard library.
//
// Each analyzer keeps its fixtures under testdata/src/<path>/: the target
// package plus any stub dependencies (a fake internal/store, internal/obs,
// ...) it imports. Stubs are type-checked from source; standard-library
// imports resolve through `go list -export` build-cache export data, so the
// whole load works offline. Expected findings are written as trailing
// comments holding backquoted regexps:
//
//	st.Add(t) // want `store mutation Add inside a ForEachPage page callback`
//
// Every finding must match a want on its line, every want must be matched
// exactly once, and a want-less line with a finding fails the test — which
// is also how suppression fixtures work: a violation wearing a justified
// //lint:allow and no want comment asserts the waiver held.
package analysistest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strings"
	"testing"

	"github.com/lodviz/lodviz/internal/analysis"
)

// TestData returns the absolute path of the calling test's testdata
// directory.
func TestData(t *testing.T) string {
	t.Helper()
	p, err := filepath.Abs("testdata")
	if err != nil {
		t.Fatalf("analysistest: resolving testdata: %v", err)
	}
	return p
}

// Run loads the package at testdata/src/<path>, applies the analyzer, and
// compares the surviving findings against the package's // want comments.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, path string) {
	t.Helper()
	l := newLoader(filepath.Join(testdata, "src"))
	info := analysis.NewInfo()
	pkg, files, err := l.loadFrom(path, info)
	if err != nil {
		t.Fatalf("analysistest: loading %s: %v", path, err)
	}
	findings, err := analysis.Run([]*analysis.Analyzer{a}, l.fset, files, pkg, info)
	if err != nil {
		t.Fatalf("analysistest: running %s on %s: %v", a.Name, path, err)
	}

	wants := collectWants(t, l.fset, files)
	for _, f := range findings {
		if !wants.consume(f.Pos.Filename, f.Pos.Line, f.Message) {
			t.Errorf("unexpected finding: %v", f)
		}
	}
	wants.reportUnmatched(t)
}

// want is one expected-diagnostic regexp at a (file, line).
type want struct {
	file    string
	line    int
	rx      *regexp.Regexp
	matched bool
}

type wantSet []*want

func (ws wantSet) consume(file string, line int, msg string) bool {
	for _, w := range ws {
		if !w.matched && w.file == file && w.line == line && w.rx.MatchString(msg) {
			w.matched = true
			return true
		}
	}
	return false
}

func (ws wantSet) reportUnmatched(t *testing.T) {
	t.Helper()
	for _, w := range ws {
		if !w.matched {
			t.Errorf("%s:%d: no finding matching %q", filepath.Base(w.file), w.line, w.rx)
		}
	}
}

var wantRx = regexp.MustCompile("`([^`]*)`")

func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) wantSet {
	t.Helper()
	var ws wantSet
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := fset.Position(c.Pos())
				specs := wantRx.FindAllStringSubmatch(text, -1)
				if len(specs) == 0 {
					t.Fatalf("%s:%d: want comment without a backquoted regexp", pos.Filename, pos.Line)
				}
				for _, m := range specs {
					rx, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, m[1], err)
					}
					ws = append(ws, &want{file: pos.Filename, line: pos.Line, rx: rx})
				}
			}
		}
	}
	return ws
}

// loader type-checks packages under a testdata/src tree from source,
// resolving standard-library imports from build-cache export data.
type loader struct {
	root string
	fset *token.FileSet
	pkgs map[string]*types.Package
	std  types.Importer
	exp  map[string]string // std import path -> export-data file
}

func newLoader(root string) *loader {
	l := &loader{
		root: root,
		fset: token.NewFileSet(),
		pkgs: map[string]*types.Package{},
		exp:  map[string]string{},
	}
	l.std = importer.ForCompiler(l.fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := l.exp[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	return l
}

func (l *loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	dir := filepath.Join(l.root, filepath.FromSlash(path))
	if fi, err := os.Stat(dir); err == nil && fi.IsDir() {
		pkg, _, err := l.loadFrom(path, nil)
		return pkg, err
	}
	if err := l.resolveStd(path); err != nil {
		return nil, err
	}
	return l.std.Import(path)
}

// loadFrom parses and type-checks the package at root/<path> from source.
func (l *loader) loadFrom(path string, info *types.Info) (*types.Package, []*ast.File, error) {
	dir := filepath.Join(l.root, filepath.FromSlash(path))
	names, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil || len(names) == 0 {
		return nil, nil, fmt.Errorf("no Go files in %s", dir)
	}
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, nil, err
		}
		files = append(files, f)
	}
	conf := types.Config{
		Importer: l,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	pkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, nil, fmt.Errorf("typecheck %s: %w", path, err)
	}
	l.pkgs[path] = pkg
	return pkg, files, nil
}

// resolveStd locates export data for a standard-library package and its
// dependencies via one `go list` call, memoized across imports.
func (l *loader) resolveStd(path string) error {
	if _, ok := l.exp[path]; ok {
		return nil
	}
	cmd := exec.Command("go", "list", "-deps", "-export", "-json=ImportPath,Export", path)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return fmt.Errorf("go list %s: %w\n%s", path, err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p struct{ ImportPath, Export string }
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return err
		}
		if p.Export != "" {
			l.exp[p.ImportPath] = p.Export
		}
	}
	if _, ok := l.exp[path]; !ok {
		return fmt.Errorf("no export data produced for %q", path)
	}
	return nil
}
