// Package ctxflow enforces context threading on the scan-driving paths.
//
// Every long-running operation in the engine — paged store scans,
// progressive aggregation, federation round-trips — is cancellable only
// if its driver holds a real caller context. Two rules:
//
//  1. context.Background() / context.TODO() may not be called outside
//     package main, init functions, and _test.go files. A library
//     function that mints its own root context detaches everything below
//     it from request cancellation and server shutdown.
//
//  2. A function that drives a paged store scan (ScanIDs, ForEachPage,
//     ForEachIDPage, ForEachID on a store source) must have a
//     context.Context in hand: a parameter, or a context field on its
//     receiver. Paged scans honor cancellation *between* pages, but only
//     if the loop around them can observe a context. Implementations of
//     the scan methods themselves (wrappers satisfying sparql.Source /
//     explore.Source) are exempt — the interface fixes their signature,
//     and their callers hold the context.
package ctxflow

import (
	"go/ast"
	"go/types"

	"github.com/lodviz/lodviz/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name:       "ctxflow",
	Doc:        "flag context.Background()/TODO() outside main/init/tests and paged-scan drivers without a context",
	Invariant:  "scan drivers accept and thread a caller context; only main, init, and tests mint root contexts",
	DocSection: "internal/analysis/README.md#ctxflow",
	Run:        run,
}

// scanMethods are the paged-scan entry points on a store source whose
// drivers must be cancellable.
var scanMethods = map[string]bool{
	"ScanIDs": true, "ForEachPage": true, "ForEachIDPage": true, "ForEachID": true,
}

func run(pass *analysis.Pass) error {
	isMain := pass.Pkg.Name() == "main"
	inStore := analysis.PkgIs(pass.Pkg, "internal/store")
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if !isMain && fd.Name.Name != "init" {
				checkRootContexts(pass, fd)
			}
			if !isMain && !inStore {
				checkScanDriver(pass, fd)
			}
		}
	}
	return nil
}

// checkRootContexts flags context.Background()/context.TODO() anywhere in
// the declaration (including nested literals).
func checkRootContexts(pass *analysis.Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := analysis.CalleeFunc(pass.TypesInfo, call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
			return true
		}
		if fn.Name() == "Background" || fn.Name() == "TODO" {
			pass.Reportf(call.Pos(), "context.%s() in %s: accept a context.Context and thread it (root contexts belong to main, init, and tests)", fn.Name(), fd.Name.Name)
		}
		return true
	})
}

// checkScanDriver flags declarations that drive a paged scan without any
// context in reach.
func checkScanDriver(pass *analysis.Pass, fd *ast.FuncDecl) {
	if fd.Name.Name == "init" || scanMethods[fd.Name.Name] {
		return // interface plumbing: a ForEachPage wrapping an inner ForEachPage
	}
	obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
	if !ok {
		return
	}
	sig, ok := obj.Type().(*types.Signature)
	if !ok {
		return
	}
	if analysis.HasContextParam(sig) || recvHasContextField(sig) {
		return
	}
	var scanPos ast.Node
	var scanName string
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if scanPos != nil {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := analysis.CalleeFunc(pass.TypesInfo, call)
		if fn == nil || !scanMethods[fn.Name()] {
			return true
		}
		if analysis.IsStoreSource(analysis.RecvType(fn)) {
			scanPos, scanName = call, fn.Name()
		}
		return true
	})
	if scanPos != nil {
		pass.Reportf(fd.Name.Pos(), "%s drives a paged store scan (%s) but has no context.Context parameter or receiver field: the scan cannot be cancelled", fd.Name.Name, scanName)
	}
}

// recvHasContextField reports whether the method's receiver is a struct
// carrying a context.Context field (the executor-state pattern: the
// context is threaded once at construction).
func recvHasContextField(sig *types.Signature) bool {
	if sig.Recv() == nil {
		return false
	}
	named := analysis.NamedType(sig.Recv().Type())
	if named == nil {
		return false
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if analysis.IsContextType(st.Field(i).Type()) {
			return true
		}
	}
	return false
}
