package ctxflow_test

import (
	"testing"

	"github.com/lodviz/lodviz/internal/analysis/analysistest"
	"github.com/lodviz/lodviz/internal/analysis/ctxflow"
)

func TestCtxflow(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), ctxflow.Analyzer, "ctxflowtest")
}
