package ctxflowtest

import (
	"context"

	"github.com/lodviz/lodviz/internal/store"
)

func mintRoot() context.Context {
	return context.Background() // want `context.Background\(\) in mintRoot`
}

func mintTODO() {
	ctx := context.TODO() // want `context.TODO\(\) in mintTODO`
	_ = ctx
}

func nestedLiteralMint() {
	f := func() context.Context {
		return context.Background() // want `context.Background\(\) in nestedLiteralMint`
	}
	_ = f
}

func init() {
	_ = context.Background() // init may mint roots
}

func driveScan(st *store.Store) { // want `driveScan drives a paged store scan \(ScanIDs\)`
	_, _ = st.ScanIDs(0, 0, 0, 0)
}

func drivePage(st *store.Store) { // want `drivePage drives a paged store scan \(ForEachPage\)`
	st.ForEachPage(0, 0, 0, func(store.IDTriple) bool { return true })
}

func driveWithCtx(ctx context.Context, st *store.Store) {
	_, _ = st.ScanIDs(0, 0, 0, 0)
	_ = ctx
}

type executor struct {
	ctx context.Context
	st  *store.Store
}

// The executor-state pattern: the context was threaded at construction.
func (e *executor) drive() {
	_, _ = e.st.ScanIDs(0, 0, 0, 0)
}

type wrapper struct{ st *store.Store }

func (w *wrapper) LayoutEpoch() uint64 { return 0 }

// Interface plumbing: a scan method wrapping an inner scan method has its
// signature fixed by the Source interface; its callers hold the context.
func (w *wrapper) ForEachID(sub, pred, obj store.ID, fn func(store.IDTriple) bool) {
	w.st.ForEachID(sub, pred, obj, fn)
}

func suppressedRoot() context.Context {
	//lint:allow ctxflow compat wrapper: callers without request scope land here
	return context.Background()
}
