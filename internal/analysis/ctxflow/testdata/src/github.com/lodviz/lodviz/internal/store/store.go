// Stub of internal/store: just enough surface for the ctxflow fixtures.
package store

type ID uint32

type IDTriple struct{ S, P, O ID }

type Store struct{}

func (s *Store) LayoutEpoch() uint64 { return 0 }

func (s *Store) ScanIDs(sub, pred, obj ID, lead int) (int, bool) { return 0, false }

func (s *Store) ForEachID(sub, pred, obj ID, fn func(IDTriple) bool) {}

func (s *Store) ForEachPage(sub, pred, obj ID, fn func(IDTriple) bool) {}
