// Package driver loads Go packages for analysis without the x/tools
// module: it shells out to `go list -deps -export -json` for package
// metadata and compiled export data (both come from the local build
// cache, so loading works fully offline), parses the target packages'
// sources, and type-checks them with go/importer's gc-export-data mode.
package driver

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"

	"github.com/lodviz/lodviz/internal/analysis"
)

// listPackage is the subset of `go list -json` output the driver needs.
type listPackage struct {
	ImportPath string
	Dir        string
	Standard   bool
	DepOnly    bool
	Export     string
	GoFiles    []string
	ImportMap  map[string]string
	Error      *struct{ Err string }
}

// A Package is one loaded, type-checked target package.
type Package struct {
	ImportPath string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// Load resolves patterns (./..., package paths) to type-checked packages.
// Dependencies are imported from compiled export data; only the matched
// packages themselves are parsed from source.
func Load(dir string, patterns []string) ([]*Package, error) {
	args := append([]string{
		"list", "-e", "-deps", "-export",
		"-json=ImportPath,Dir,Standard,DepOnly,Export,GoFiles,ImportMap,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %w\n%s", err, stderr.String())
	}

	exports := map[string]string{}
	var targets []*listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %w", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("%s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			pc := p
			targets = append(targets, &pc)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	imp := newExportImporter(exports)
	var pkgs []*Package
	for _, t := range targets {
		pkg, err := typecheck(t, imp)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

func typecheck(lp *listPackage, imp types.Importer) (*Package, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range lp.GoFiles {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(lp.Dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := analysis.NewInfo()
	conf := types.Config{
		Importer: &mapImporter{imp: imp, importMap: lp.ImportMap},
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	tpkg, err := conf.Check(lp.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", lp.ImportPath, err)
	}
	return &Package{ImportPath: lp.ImportPath, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}

// Run loads the patterns, applies the analyzers to every target package,
// and writes findings to w. It returns the number of findings.
func Run(analyzers []*analysis.Analyzer, dir string, patterns []string, w io.Writer) (int, error) {
	pkgs, err := Load(dir, patterns)
	if err != nil {
		return 0, err
	}
	total := 0
	for _, pkg := range pkgs {
		findings, err := analysis.Run(analyzers, pkg.Fset, pkg.Files, pkg.Types, pkg.Info)
		if err != nil {
			return total, err
		}
		for _, f := range findings {
			fmt.Fprintln(w, f)
			total++
		}
	}
	return total, nil
}

// exportImporter satisfies types.Importer by reading compiled export data
// located by `go list -export`.
type exportImporter struct {
	gc   types.Importer
	seen map[string]string
}

func newExportImporter(exports map[string]string) *exportImporter {
	e := &exportImporter{seen: exports}
	e.gc = importer.ForCompiler(token.NewFileSet(), "gc", func(path string) (io.ReadCloser, error) {
		file, ok := e.seen[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	return e
}

func (e *exportImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return e.gc.Import(path)
}

// mapImporter applies one package's ImportMap (vendoring aliases) before
// delegating; for this module the map is empty and paths pass through.
type mapImporter struct {
	imp       types.Importer
	importMap map[string]string
}

func (m *mapImporter) Import(path string) (*types.Package, error) {
	if mapped, ok := m.importMap[path]; ok {
		path = mapped
	}
	return m.imp.Import(path)
}

// ModuleRoot locates the enclosing module root for dir (where go.mod
// lives), falling back to dir itself.
func ModuleRoot(dir string) string {
	cmd := exec.Command("go", "env", "GOMOD")
	cmd.Dir = dir
	out, err := cmd.Output()
	if err != nil {
		return dir
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == os.DevNull {
		return dir
	}
	return filepath.Dir(gomod)
}
