// Package idspace keeps dictionary IDs and plain integers apart outside
// the store.
//
// PR 6 rebuilt execution around dictionary-encoded store.ID values. An ID
// is a name, not a number: converting one to an int to use as a count or
// slice position, minting one from a loop index, or doing arithmetic on
// one is a category error that type-checks fine and corrupts joins
// quietly (IDs survive compaction; positions don't). Inside
// internal/store the representation is the point; everywhere else this
// analyzer flags:
//
//   - store.ID(x) where x is not a constant — minting an ID from a raw
//     integer (constant conversions like the store.ID(0) wildcard are
//     the documented sentinel and stay legal);
//   - integer(x) where x is a store.ID — using an ID as a number;
//   - arithmetic (+ - * / % << >> & | ^ &^, ++ --, op=) on store.ID
//     operands. Comparisons are legal: sorted-run merging is built on ID
//     order.
package idspace

import (
	"go/ast"
	"go/token"
	"go/types"

	"github.com/lodviz/lodviz/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name:       "idspace",
	Doc:        "flag raw uint32<->store.ID conversions and ID arithmetic outside internal/store",
	Invariant:  "dictionary IDs are names, not numbers: outside internal/store they are compared, never converted or computed with",
	DocSection: "internal/analysis/README.md#idspace",
	Run:        run,
}

func run(pass *analysis.Pass) error {
	if analysis.PkgIs(pass.Pkg, "internal/store") {
		return nil
	}
	info := pass.TypesInfo
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkConversion(pass, n)
			case *ast.BinaryExpr:
				if arithOp(n.Op) && (isID(info.TypeOf(n.X)) || isID(info.TypeOf(n.Y))) {
					pass.Reportf(n.OpPos, "arithmetic (%s) on store.ID outside internal/store: IDs are dictionary names, not numbers", n.Op)
				}
			case *ast.IncDecStmt:
				if isID(info.TypeOf(n.X)) {
					pass.Reportf(n.Pos(), "%s on store.ID outside internal/store: IDs are dictionary names, not numbers", n.Tok)
				}
			case *ast.AssignStmt:
				if n.Tok != token.ASSIGN && n.Tok != token.DEFINE {
					for _, lhs := range n.Lhs {
						if isID(info.TypeOf(lhs)) {
							pass.Reportf(n.TokPos, "%s on store.ID outside internal/store: IDs are dictionary names, not numbers", n.Tok)
						}
					}
				}
			}
			return true
		})
	}
	return nil
}

func isID(t types.Type) bool {
	return analysis.IsNamed(t, "internal/store", "ID")
}

func checkConversion(pass *analysis.Pass, call *ast.CallExpr) {
	info := pass.TypesInfo
	tv, ok := info.Types[call.Fun]
	if !ok || !tv.IsType() || len(call.Args) != 1 {
		return
	}
	arg := call.Args[0]
	argTV := info.Types[arg]
	target := tv.Type
	switch {
	case isID(target):
		if argTV.Value != nil {
			return // constant: store.ID(0) wildcard etc.
		}
		if isID(argTV.Type) {
			return // identity conversion through an alias
		}
		pass.Reportf(call.Pos(), "raw integer converted to store.ID outside internal/store: only the dictionary mints IDs (thread the ID, or look the term up)")
	case isID(argTV.Type) && isInteger(target):
		pass.Reportf(call.Pos(), "store.ID converted to %s outside internal/store: an ID is not a count or a position", target)
	}
}

func isInteger(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

func arithOp(op token.Token) bool {
	switch op {
	case token.ADD, token.SUB, token.MUL, token.QUO, token.REM,
		token.SHL, token.SHR, token.AND, token.OR, token.XOR, token.AND_NOT:
		return true
	}
	return false
}
