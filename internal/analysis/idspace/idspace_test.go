package idspace_test

import (
	"testing"

	"github.com/lodviz/lodviz/internal/analysis/analysistest"
	"github.com/lodviz/lodviz/internal/analysis/idspace"
)

func TestIdspace(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), idspace.Analyzer, "idspacetest")
}
