// Stub of internal/store: just enough surface for the idspace fixtures.
package store

type ID uint32

// Bits and PackPair mirror the real store's sanctioned escape hatches;
// living inside internal/store, their bodies are exempt by construction.
func (id ID) Bits() uint64 { return uint64(id) }

func PackPair(a, b ID) uint64 { return uint64(a)<<32 | uint64(b) }
