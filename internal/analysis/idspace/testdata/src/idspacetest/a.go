package idspacetest

import "github.com/lodviz/lodviz/internal/store"

func conversions(id store.ID, raw uint32) {
	_ = store.ID(raw) // want `raw integer converted to store.ID outside internal/store`
	_ = uint32(id)    // want `store.ID converted to uint32 outside internal/store`
	_ = uint64(id)    // want `store.ID converted to uint64 outside internal/store`
	_ = int(id)       // want `store.ID converted to int outside internal/store`

	_ = store.ID(0)  // the documented wildcard sentinel: constant, legal
	_ = store.ID(42) // constants are legal
	var alias store.ID = id
	_ = store.ID(alias) // identity conversion: legal
}

func arithmetic(id, other store.ID) {
	_ = id + 1     // want `arithmetic \(\+\) on store.ID outside internal/store`
	_ = id - other // want `arithmetic \(-\) on store.ID outside internal/store`
	_ = id << 2    // want `arithmetic \(<<\) on store.ID outside internal/store`
	id++           // want `\+\+ on store.ID outside internal/store`
	id |= other    // want `\|= on store.ID outside internal/store`

	// Comparison is the sanctioned use: sorted-run merging is built on it.
	_ = id == other
	_ = id < other
	_ = id >= other
}

func sanctioned(id, other store.ID) uint64 {
	// The store's own escape hatches keep call sites conversion-free.
	_ = store.PackPair(id, other)
	return id.Bits()
}

func suppressedConversion(id store.ID) uint64 {
	//lint:allow idspace fixture: hashing wants the raw bits, not the ordinal
	return uint64(id)
}
