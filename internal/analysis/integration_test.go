package analysis_test

// Integration coverage for the two lodvizvet entry points: the standalone
// driver and the `go vet -vettool` protocol, both run as a real child
// process over the fixture module in testdata/fixture.

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildLodvizvet compiles the multichecker once per test binary.
func buildLodvizvet(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	bin := filepath.Join(t.TempDir(), "lodvizvet")
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/lodvizvet")
	cmd.Dir = root
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building lodvizvet: %v\n%s", err, out)
	}
	return bin
}

func fixtureDir(t *testing.T) string {
	t.Helper()
	dir, err := filepath.Abs(filepath.Join("testdata", "fixture"))
	if err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestStandaloneDriverOnFixtureModule(t *testing.T) {
	bin := buildLodvizvet(t)
	fixture := fixtureDir(t)

	cmd := exec.Command(bin, "./...")
	cmd.Dir = fixture
	out, err := cmd.CombinedOutput()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 2 {
		t.Fatalf("want exit 2 on the violating fixture, got %v\n%s", err, out)
	}
	text := string(out)
	for _, frag := range []string{
		"store.ID converted to int",
		"arithmetic (+) on store.ID",
		"Drive drives a paged store scan (ScanIDs)",
		"[idspace:",
		"[ctxflow:",
	} {
		if !strings.Contains(text, frag) {
			t.Errorf("driver output missing %q:\n%s", frag, text)
		}
	}

	clean := exec.Command(bin, "./clean")
	clean.Dir = fixture
	if out, err := clean.CombinedOutput(); err != nil {
		t.Fatalf("want exit 0 on the clean fixture package, got %v\n%s", err, out)
	}
}

func TestVettoolProtocolOnFixtureModule(t *testing.T) {
	bin := buildLodvizvet(t)
	fixture := fixtureDir(t)

	vet := exec.Command("go", "vet", "-vettool="+bin, "./...")
	vet.Dir = fixture
	out, err := vet.CombinedOutput()
	if err == nil {
		t.Fatalf("want go vet to fail on the violating fixture\n%s", out)
	}
	if !strings.Contains(string(out), "store.ID converted to int") {
		t.Errorf("vet output missing the idspace diagnostic:\n%s", out)
	}

	clean := exec.Command("go", "vet", "-vettool="+bin, "./clean")
	clean.Dir = fixture
	if out, err := clean.CombinedOutput(); err != nil {
		t.Fatalf("want go vet to pass on the clean fixture package, got %v\n%s", err, out)
	}
}
