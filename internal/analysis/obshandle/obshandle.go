// Package obshandle protects the "NoObs = nil costs nothing" contract.
//
// PR 9's observability layer hands out metric handles from the
// internal/obs registry constructors, and every handle method is
// nil-receiver-safe, so uninstrumented code paths pass nil instead of
// wrapping call sites in conditionals. Two ways to quietly break that:
//
//   - constructing a metric handle as a struct literal outside
//     internal/obs: the handle bypasses registration (it will never be
//     scraped) and, for histograms, skips required initialization;
//   - adding a metric-bearing type (internal/obs handles, and any struct
//     named Metrics holding handle pointers — the repo's convention for
//     per-subsystem instrumentation passed as nil when disabled) whose
//     pointer-receiver methods dereference the receiver with no nil
//     check: the first NoObs benchmark run panics.
package obshandle

import (
	"go/ast"
	"go/types"

	"github.com/lodviz/lodviz/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name:       "obshandle",
	Doc:        "flag obs handles built outside the registry and metric-bearing methods that are not nil-receiver-safe",
	Invariant:  "metric handles come from the obs registry, and every handle method tolerates a nil receiver (NoObs = nil costs nothing)",
	DocSection: "internal/analysis/README.md#obshandle",
	Run:        run,
}

// handleTypes are the nil-safe metric handles the registry hands out.
var handleTypes = map[string]bool{
	"Counter": true, "Gauge": true, "Histogram": true,
	"CounterVec": true, "GaugeVec": true, "HistogramVec": true,
}

// constructTypes are the internal/obs types that only internal/obs may
// construct: the handles plus the Registry itself (NewRegistry allocates
// the family map a zero Registry lacks).
var constructTypes = map[string]bool{
	"Counter": true, "Gauge": true, "Histogram": true,
	"CounterVec": true, "GaugeVec": true, "HistogramVec": true,
	"Registry": true,
}

func run(pass *analysis.Pass) error {
	inObs := analysis.PkgIs(pass.Pkg, "internal/obs")
	for _, file := range pass.Files {
		if !inObs {
			checkConstruction(pass, file)
		}
		checkNilSafety(pass, file, inObs)
	}
	return nil
}

// checkConstruction flags obs.T{} composite literals and new(obs.T).
func checkConstruction(pass *analysis.Pass, file *ast.File) {
	info := pass.TypesInfo
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CompositeLit:
			if t := analysis.NamedType(info.TypeOf(n)); t != nil && isObsConstruct(t) {
				pass.Reportf(n.Pos(), "obs.%s constructed as a literal outside internal/obs: unregistered handles are never scraped — use the Registry constructors (obs.NewRegistry, Registry.%s, ...)", t.Obj().Name(), t.Obj().Name())
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "new" && len(n.Args) == 1 {
				if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
					if t := analysis.NamedType(info.TypeOf(n.Args[0])); t != nil && isObsConstruct(t) {
						pass.Reportf(n.Pos(), "new(obs.%s) outside internal/obs: unregistered handles are never scraped — use the Registry constructors", t.Obj().Name())
					}
				}
			}
		}
		return true
	})
}

func isHandle(t *types.Named) bool {
	return handleTypes[t.Obj().Name()] && t.Obj().Pkg() != nil && analysis.PkgIs(t.Obj().Pkg(), "internal/obs")
}

func isObsConstruct(t *types.Named) bool {
	return constructTypes[t.Obj().Name()] && t.Obj().Pkg() != nil && analysis.PkgIs(t.Obj().Pkg(), "internal/obs")
}

// checkNilSafety verifies pointer-receiver methods on metric-bearing
// types: a method that reads or writes through the receiver must contain
// a nil comparison of the receiver somewhere in its body (both idioms —
// `if m == nil { return }` and `if m != nil { ... }` — satisfy this).
// Pure delegation (calling other methods on the receiver without touching
// fields) is nil-safe by induction and passes without a check.
func checkNilSafety(pass *analysis.Pass, file *ast.File, inObs bool) {
	for _, decl := range file.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Recv == nil || fd.Body == nil || len(fd.Recv.List) == 0 {
			continue
		}
		recvField := fd.Recv.List[0]
		recvType := pass.TypesInfo.TypeOf(recvField.Type)
		if _, isPtr := recvType.(*types.Pointer); !isPtr {
			continue // value receivers cannot be nil
		}
		named := analysis.NamedType(recvType)
		if named == nil || !metricBearing(named, inObs) {
			continue
		}
		if len(recvField.Names) == 0 {
			continue // anonymous receiver: body cannot dereference it
		}
		recvObj := pass.TypesInfo.Defs[recvField.Names[0]]
		if recvObj == nil {
			continue
		}
		if derefsReceiver(pass.TypesInfo, fd.Body, recvObj) && !checksReceiverNil(pass.TypesInfo, fd.Body, recvObj) {
			pass.Reportf(fd.Name.Pos(), "(*%s).%s dereferences its receiver without a nil check: metric-bearing handles are passed as nil when observability is off", named.Obj().Name(), fd.Name.Name)
		}
	}
}

// metricBearing reports whether the named struct participates in the
// nil-handle contract: the obs handles themselves, and structs named
// Metrics whose fields include a pointer to an obs handle.
func metricBearing(named *types.Named, inObs bool) bool {
	if inObs && handleTypes[named.Obj().Name()] {
		return true
	}
	if named.Obj().Name() != "Metrics" {
		return false
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if p, ok := st.Field(i).Type().(*types.Pointer); ok {
			if t := analysis.NamedType(p); t != nil && isHandle(t) {
				return true
			}
		}
	}
	return false
}

// derefsReceiver reports whether the body selects a field through the
// receiver (method calls don't count: they re-enter the contract).
func derefsReceiver(info *types.Info, body *ast.BlockStmt, recv types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := ast.Unparen(sel.X).(*ast.Ident)
		if !ok || info.Uses[id] != recv {
			return true
		}
		if s, ok := info.Selections[sel]; ok && s.Kind() == types.FieldVal {
			found = true
			return false
		}
		return true
	})
	return found
}

// checksReceiverNil reports whether the body compares the receiver with
// nil anywhere.
func checksReceiverNil(info *types.Info, body *ast.BlockStmt, recv types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		be, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		if isRecvNilCmp(info, be.X, be.Y, recv) || isRecvNilCmp(info, be.Y, be.X, recv) {
			found = true
			return false
		}
		return true
	})
	return found
}

func isRecvNilCmp(info *types.Info, a, b ast.Expr, recv types.Object) bool {
	id, ok := ast.Unparen(a).(*ast.Ident)
	if !ok || info.Uses[id] != recv {
		return false
	}
	nb, ok := ast.Unparen(b).(*ast.Ident)
	return ok && nb.Name == "nil"
}
