package obshandle_test

import (
	"testing"

	"github.com/lodviz/lodviz/internal/analysis/analysistest"
	"github.com/lodviz/lodviz/internal/analysis/obshandle"
)

func TestObshandle(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), obshandle.Analyzer, "obshandletest")
}
