// Stub of internal/obs: just enough surface for the obshandle fixtures.
package obs

type Counter struct{ v uint64 }

func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v++
}

type Gauge struct{ v int64 }

type Histogram struct{ n uint64 }

type CounterVec struct{ m map[string]*Counter }

type Registry struct{ families map[string]any }

func NewRegistry() *Registry { return &Registry{families: map[string]any{}} }

func (r *Registry) Counter(name string) *Counter { return &Counter{} }
func (r *Registry) Gauge(name string) *Gauge     { return &Gauge{} }
