package obshandletest

import "github.com/lodviz/lodviz/internal/obs"

func construction(r *obs.Registry) {
	_ = &obs.Counter{} // want `obs.Counter constructed as a literal outside internal/obs`
	_ = obs.Registry{} // want `obs.Registry constructed as a literal outside internal/obs`
	_ = new(obs.Gauge) // want `new\(obs.Gauge\) outside internal/obs`

	// The registry constructors are the sanctioned path.
	_ = obs.NewRegistry()
	_ = r.Counter("requests_total")
}

// Metrics follows the repo convention: per-subsystem instrumentation
// passed as nil when observability is off.
type Metrics struct {
	Requests *obs.Counter
	queued   int
}

func (m *Metrics) Observe() { // want `\(\*Metrics\).Observe dereferences its receiver without a nil check`
	m.queued++
	m.Requests.Inc()
}

func (m *Metrics) ObserveSafe() {
	if m == nil {
		return
	}
	m.queued++
	m.Requests.Inc()
}

func (m *Metrics) ObservePositive() {
	if m != nil {
		m.Requests.Inc()
	}
}

// Pure delegation is nil-safe by induction: no field access, no check
// needed.
func (m *Metrics) Delegate() {
	m.ObserveSafe()
}

// Value receivers cannot be nil.
func (m Metrics) Snapshot() int { return m.queued }

// notMetrics is outside the convention: plain structs owe no nil-safety.
type notMetrics struct{ hits int }

func (n *notMetrics) bump() { n.hits++ }

func suppressedLiteral() {
	//lint:allow obshandle fixture: prototype literal is compared, never scraped
	_ = &obs.Counter{}
}
