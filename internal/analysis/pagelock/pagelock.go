// Package pagelock flags store mutations, nested store scans, and store
// mutex acquisition inside page callbacks.
//
// PR 5's per-page lock discipline makes the classic writer deadlock
// "impossible by construction": ForEachPage / ForEachIDPage hold the
// store's read lock only while one page is delivered, so joining,
// emission, and even consumer writes happen *between* pages. That
// construction protects current call sites only — a new callback that
// mutates the store, starts a second scan, or touches the store mutex
// from *inside* the page reintroduces the nested-RLock-behind-a-queued-
// writer deadlock the design removed. This analyzer turns that rule into
// a build failure.
package pagelock

import (
	"go/ast"
	"go/types"

	"github.com/lodviz/lodviz/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name:       "pagelock",
	Doc:        "flag store mutation, nested scans, and store-mutex Lock/RLock inside page callbacks",
	Invariant:  "a page callback runs under the store's read lock: mutate, snapshot, or re-scan between pages, never inside one",
	DocSection: "internal/analysis/README.md#pagelock",
	Run:        run,
}

// mutators are (*store.Store) methods that take the write lock (or, for
// SetWAL, the full lock) — calling one while a page holds the read lock
// deadlocks as soon as any writer is queued.
var mutators = map[string]bool{
	"Add": true, "AddAll": true, "AddBatch": true,
	"Delete": true, "DeleteBatch": true,
	"Compact": true, "SetWAL": true,
}

// lockedReads are store/source methods that acquire the read lock for the
// duration of the call. sync.RWMutex read locks do not nest behind a
// queued writer, so calling any of these from inside a page callback is
// the same deadlock shape as a mutation.
var lockedReads = map[string]bool{
	"ForEach": true, "ForEachID": true, "ForEachPage": true, "ForEachIDPage": true,
	"ScanIDs": true, "Match": true, "Count": true, "Contains": true,
	"Subjects": true, "Objects": true, "Predicates": true, "Triples": true,
	"EstimateCount": true, "EstimateCountIDs": true, "ComputeStats": true,
	"Cardinalities": true, "PredicateCardinality": true, "DegreeHistogram": true,
	"Generation": true, "LayoutEpoch": true, "Observe": true, "Len": true,
	"NumTerms": true, "Term": true, "Terms": true, "LookupTermID": true,
	"WriteSnapshot": true, "WriteSnapshotFile": true,
}

// pageCallbacks maps scan entry points to the argument index of the
// callback that runs with the read lock held.
var pageCallbacks = map[string]int{
	"ForEach":       1,
	"ForEachID":     3,
	"ForEachPage":   3,
	"ForEachIDPage": 5,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := analysis.CalleeFunc(pass.TypesInfo, call)
			if fn == nil {
				return true
			}
			if idx, ok := pageCallbacks[fn.Name()]; ok && analysis.IsStoreSource(analysis.RecvType(fn)) {
				if idx < len(call.Args) {
					if lit, ok := ast.Unparen(call.Args[idx]).(*ast.FuncLit); ok {
						checkCallback(pass, lit, fn.Name())
					}
				}
			}
			// explore.Walk's Visit handler runs inside the page; Page and
			// Reset run between pages and are exempt.
			if fn.Name() == "Walk" && fn.Pkg() != nil && analysis.PkgIs(fn.Pkg(), "internal/explore") {
				for _, arg := range call.Args {
					if h, ok := ast.Unparen(arg).(*ast.CompositeLit); ok && analysis.IsNamed(pass.TypesInfo.TypeOf(h), "internal/explore", "WalkHandler") {
						for _, elt := range h.Elts {
							kv, ok := elt.(*ast.KeyValueExpr)
							if !ok {
								continue
							}
							if key, ok := kv.Key.(*ast.Ident); ok && key.Name == "Visit" {
								if lit, ok := ast.Unparen(kv.Value).(*ast.FuncLit); ok {
									checkCallback(pass, lit, "explore.Walk Visit")
								}
							}
						}
					}
				}
			}
			return true
		})
	}
	return nil
}

// checkCallback walks one page-callback literal, skipping the bodies of
// go-launched function literals: a goroutine spawned from the callback
// only runs its store call after the scheduler lets it, and a blocked
// writer there merely waits for the page to end — the lock is not held on
// the goroutine's stack.
func checkCallback(pass *analysis.Pass, lit *ast.FuncLit, scan string) {
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			// The goroutine's store call runs off the callback's stack:
			// a writer queued ahead of it just delays the goroutine, not
			// the page. Check only the eagerly evaluated arguments.
			for _, arg := range n.Call.Args {
				ast.Inspect(arg, walk)
			}
			return false
		case *ast.CallExpr:
			checkCall(pass, n, scan)
		}
		return true
	}
	ast.Inspect(lit.Body, walk)
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr, scan string) {
	fn := analysis.CalleeFunc(pass.TypesInfo, call)
	if fn == nil {
		return
	}
	recv := analysis.RecvType(fn)
	name := fn.Name()
	switch {
	case mutators[name] && analysis.IsNamed(recv, "internal/store", "Store"):
		pass.Reportf(call.Pos(), "store mutation %s inside a %s page callback (the page holds the store read lock; mutate between pages)", name, scan)
	case lockedReads[name] && analysis.IsStoreSource(recv):
		pass.Reportf(call.Pos(), "nested store access %s inside a %s page callback (a nested RLock behind a queued writer deadlocks; read between pages)", name, scan)
	case name == "Walk" && fn.Pkg() != nil && analysis.PkgIs(fn.Pkg(), "internal/explore"):
		pass.Reportf(call.Pos(), "nested explore.Walk inside a %s page callback (a nested RLock behind a queued writer deadlocks)", scan)
	case (name == "Lock" || name == "RLock") && isSyncMutex(recv):
		if base := selectorBase(call); base != nil && touchesStore(pass.TypesInfo, base) {
			pass.Reportf(call.Pos(), "%s on the store's mutex inside a %s page callback (the page already holds the read lock)", name, scan)
		}
	}
}

func isSyncMutex(t types.Type) bool {
	return analysis.IsNamed(t, "sync", "Mutex") || analysis.IsNamed(t, "sync", "RWMutex")
}

// selectorBase returns the expression a method call's selector hangs off
// (x in x.mu.Lock()), or nil.
func selectorBase(call *ast.CallExpr) ast.Expr {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	return sel.X
}

// touchesStore reports whether any subexpression is (a pointer to) the
// concrete store — distinguishing st.mu.Lock() from a consumer's own
// unrelated mutex, which is legal inside a callback.
func touchesStore(info *types.Info, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if expr, ok := n.(ast.Expr); ok {
			if analysis.IsNamed(info.TypeOf(expr), "internal/store", "Store") {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
