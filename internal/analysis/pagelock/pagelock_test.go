package pagelock_test

import (
	"testing"

	"github.com/lodviz/lodviz/internal/analysis/analysistest"
	"github.com/lodviz/lodviz/internal/analysis/pagelock"
)

func TestPagelock(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), pagelock.Analyzer, "pagelocktest")
}
