// Stub of internal/explore: the Walk entry point and its handler.
package explore

import (
	"context"

	"github.com/lodviz/lodviz/internal/store"
)

type Source interface {
	LayoutEpoch() uint64
	ForEachIDPage(sub, pred, obj store.ID, limit, resume int, fn func(store.IDTriple) bool)
}

type WalkHandler struct {
	Visit func(store.IDTriple) bool
	Page  func(scanned int, done bool) bool
	Reset func()
}

func Walk(ctx context.Context, src Source, sub, pred, obj store.ID, page int, h WalkHandler) error {
	return nil
}
