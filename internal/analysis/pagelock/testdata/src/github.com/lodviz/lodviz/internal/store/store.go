// Stub of internal/store: just enough surface for the pagelock fixtures.
package store

import "sync"

type ID uint32

type IDTriple struct{ S, P, O ID }

type Pattern struct{ S, P, O string }

type Store struct {
	// Mu stands in for the store's mutex; exported so fixtures can
	// exercise the mutex-acquisition check from outside the package.
	Mu sync.RWMutex
}

func New() *Store { return &Store{} }

func (s *Store) LayoutEpoch() uint64 { return 0 }
func (s *Store) Generation() uint64  { return 0 }
func (s *Store) Len() int            { return 0 }

func (s *Store) Add(t IDTriple) bool    { return false }
func (s *Store) Delete(t IDTriple) bool { return false }
func (s *Store) Compact()               {}

func (s *Store) Count(p Pattern) int { return 0 }

func (s *Store) ForEach(p Pattern, fn func(IDTriple) bool) {}

func (s *Store) ForEachID(sub, pred, obj ID, fn func(IDTriple) bool) {}

func (s *Store) ForEachPage(sub, pred, obj ID, fn func(IDTriple) bool) {}

func (s *Store) ForEachIDPage(sub, pred, obj ID, limit, resume int, fn func(IDTriple) bool) {}
