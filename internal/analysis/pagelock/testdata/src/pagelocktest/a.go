package pagelocktest

import (
	"context"
	"sync"

	"github.com/lodviz/lodviz/internal/explore"
	"github.com/lodviz/lodviz/internal/store"
)

func mutationsInsidePage(st *store.Store) {
	st.ForEachPage(0, 0, 0, func(t store.IDTriple) bool {
		st.Add(t)                                                        // want `store mutation Add inside a ForEachPage page callback`
		st.Compact()                                                     // want `store mutation Compact inside a ForEachPage page callback`
		_ = st.Count(store.Pattern{})                                    // want `nested store access Count inside a ForEachPage page callback`
		st.ForEachID(0, 0, 0, func(store.IDTriple) bool { return true }) // want `nested store access ForEachID inside a ForEachPage page callback`
		st.Mu.RLock()                                                    // want `RLock on the store's mutex inside a ForEachPage page callback`
		return true
	})
}

func goroutineEscapesPage(st *store.Store) {
	st.ForEachIDPage(0, 0, 0, 128, 0, func(t store.IDTriple) bool {
		// A go-launched store call runs off the callback's stack: the
		// blocked writer merely delays the goroutine, not the page.
		go st.Compact()
		go func() {
			st.Add(t)
		}()
		return true
	})
}

func walkVisitInsidePage(ctx context.Context, src explore.Source, st *store.Store) {
	_ = explore.Walk(ctx, src, 0, 0, 0, 128, explore.WalkHandler{
		Visit: func(t store.IDTriple) bool {
			st.Delete(t) // want `store mutation Delete inside a explore.Walk Visit page callback`
			return true
		},
		Page: func(scanned int, done bool) bool {
			st.Compact() // Page runs between pages: mutation is legal here.
			return true
		},
	})
}

func ownMutexIsFine(st *store.Store) {
	var mu sync.Mutex
	st.ForEach(store.Pattern{}, func(t store.IDTriple) bool {
		mu.Lock() // a consumer's own mutex, not the store's
		mu.Unlock()
		return true
	})
}

func betweenPagesIsFine(st *store.Store) {
	var pending []store.IDTriple
	st.ForEachPage(0, 0, 0, func(t store.IDTriple) bool {
		pending = append(pending, t)
		return true
	})
	for _, t := range pending {
		st.Add(t) // after the scan: legal
	}
}

func suppressedMutation(st *store.Store) {
	st.ForEach(store.Pattern{}, func(t store.IDTriple) bool {
		//lint:allow pagelock fixture: store is freshly built here and has no concurrent writers
		st.Add(t)
		return false
	})
}
