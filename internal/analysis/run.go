package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Run applies the analyzers to one type-checked package and returns the
// surviving findings, ordered by position.
//
// Three filters sit between an analyzer's Reportf and the returned set:
//
//   - diagnostics in _test.go files are dropped: tests deliberately
//     violate engine invariants (mutating mid-scan to prove epoch
//     restarts, dropping sync errors to prove recovery), and gating them
//     would train people to sprinkle suppressions;
//   - diagnostics waived by a justified //lint:allow are dropped;
//   - a //lint:allow with no justification is converted into a finding of
//     its own (attributed to the analyzer it names), and waives nothing.
func Run(analyzers []*Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) ([]Finding, error) {
	dirs := parseAllows(fset, files)
	byName := make(map[string]*Analyzer, len(analyzers))
	var out []Finding
	for _, a := range analyzers {
		byName[a.Name] = a
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path(), err)
		}
		for _, d := range pass.diags {
			pos := fset.Position(d.Pos)
			if strings.HasSuffix(pos.Filename, "_test.go") {
				continue
			}
			if suppressed(dirs, a.Name, pos) {
				continue
			}
			out = append(out, Finding{Analyzer: a, Pos: pos, Message: d.Message})
		}
	}
	for _, d := range dirs {
		a, ok := byName[d.analyzer]
		if !ok {
			continue // directive for an analyzer not in this run
		}
		if d.reason != "" {
			continue
		}
		pos := fset.Position(d.pos)
		if strings.HasSuffix(pos.Filename, "_test.go") {
			continue
		}
		out = append(out, Finding{
			Analyzer: a,
			Pos:      pos,
			Message:  fmt.Sprintf("lint:allow %s has no justification; write //lint:allow %s <why this site is safe>", d.analyzer, d.analyzer),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer.Name < b.Analyzer.Name
	})
	return out, nil
}

// NewInfo returns a types.Info with every map the analyzers consult
// allocated. Shared by all drivers so a forgotten map never silently
// disables a check in one entry point only.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}
