package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// checkPkg typechecks one in-memory file and runs the analyzers on it.
func checkPkg(t *testing.T, name, src string, analyzers []*Analyzer) []Finding {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, name, src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := NewInfo()
	conf := types.Config{}
	pkg, err := conf.Check("p", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	findings, err := Run(analyzers, fset, []*ast.File{f}, pkg, info)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return findings
}

// flagInts is a toy analyzer: it reports every integer literal.
var flagInts = &Analyzer{
	Name:       "flagints",
	Doc:        "reports integer literals",
	Invariant:  "no integer literals",
	DocSection: "nowhere",
	Run: func(pass *Pass) error {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if lit, ok := n.(*ast.BasicLit); ok && lit.Kind == token.INT {
					pass.Reportf(lit.Pos(), "integer literal %s", lit.Value)
				}
				return true
			})
		}
		return nil
	},
}

func TestJustifiedAllowWaives(t *testing.T) {
	findings := checkPkg(t, "a.go", `package p

//lint:allow flagints fixture: the literal is the point
var x = 1
`, []*Analyzer{flagInts})
	if len(findings) != 0 {
		t.Fatalf("justified allow did not waive: %v", findings)
	}
}

func TestUnjustifiedAllowIsAFindingAndWaivesNothing(t *testing.T) {
	findings := checkPkg(t, "a.go", `package p

//lint:allow flagints
var x = 1
`, []*Analyzer{flagInts})
	if len(findings) != 2 {
		t.Fatalf("want 2 findings (the literal and the bare directive), got %v", findings)
	}
	var sawLiteral, sawDirective bool
	for _, f := range findings {
		if strings.Contains(f.Message, "integer literal") {
			sawLiteral = true
		}
		if strings.Contains(f.Message, "has no justification") {
			sawDirective = true
		}
	}
	if !sawLiteral || !sawDirective {
		t.Fatalf("missing expected findings: %v", findings)
	}
}

func TestAllowForOtherAnalyzerWaivesNothing(t *testing.T) {
	findings := checkPkg(t, "a.go", `package p

//lint:allow someotherlint the wrong analyzer name
var x = 1
`, []*Analyzer{flagInts})
	if len(findings) != 1 || !strings.Contains(findings[0].Message, "integer literal") {
		t.Fatalf("allow for another analyzer should not waive: %v", findings)
	}
}

func TestTestFileFindingsDropped(t *testing.T) {
	findings := checkPkg(t, "a_test.go", `package p

var x = 1
`, []*Analyzer{flagInts})
	if len(findings) != 0 {
		t.Fatalf("findings in _test.go files must be dropped: %v", findings)
	}
}

func TestFindingStringNamesInvariantAndDocs(t *testing.T) {
	findings := checkPkg(t, "a.go", "package p\n\nvar x = 1\n", []*Analyzer{flagInts})
	if len(findings) != 1 {
		t.Fatalf("want 1 finding, got %v", findings)
	}
	s := findings[0].String()
	for _, part := range []string{"flagints", "no integer literals", "nowhere", "integer literal 1"} {
		if !strings.Contains(s, part) {
			t.Errorf("finding %q missing %q", s, part)
		}
	}
}
