package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// allowDirective is one parsed //lint:allow comment.
type allowDirective struct {
	pos      token.Pos
	analyzer string
	reason   string
	line     int    // line the comment ends on
	file     string // filename the comment lives in
	used     bool
}

const allowPrefix = "//lint:allow "

// parseAllows collects every //lint:allow directive in the files.
// The directive form is
//
//	//lint:allow <analyzer> <justification>
//
// and it waives that analyzer's diagnostics on the directive's own line
// and on the line directly below it (so it works both as a trailing
// comment and as a standalone comment above the statement).
func parseAllows(fset *token.FileSet, files []*ast.File) []*allowDirective {
	var out []*allowDirective
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				if !strings.HasPrefix(text, strings.TrimSpace(allowPrefix)) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, strings.TrimSpace(allowPrefix)))
				name, reason, _ := strings.Cut(rest, " ")
				end := fset.Position(c.End())
				out = append(out, &allowDirective{
					pos:      c.Pos(),
					analyzer: name,
					reason:   strings.TrimSpace(reason),
					line:     end.Line,
					file:     end.Filename,
				})
			}
		}
	}
	return out
}

// suppressed reports whether a diagnostic by analyzer a at position pos is
// waived by one of the directives, marking the directive used.
func suppressed(dirs []*allowDirective, a string, pos token.Position) bool {
	for _, d := range dirs {
		if d.analyzer != a || d.file != pos.Filename || d.reason == "" {
			continue
		}
		if pos.Line == d.line || pos.Line == d.line+1 {
			d.used = true
			return true
		}
	}
	return false
}
