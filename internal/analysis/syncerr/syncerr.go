// Package syncerr flags discarded errors on the durability paths.
//
// The write path's guarantee is exactly as strong as its weakest error
// check: an fsync or WAL-append error that nobody observes is
// acknowledged-write loss — the client got a 200, the bytes are gone.
// Two tiers:
//
//   - Acknowledgement-bearing calls — (*wal.Log).Append / Sync / Close,
//     snapshot writer calls ((*snapshot.Writer).Term/Triple/Stats/Close),
//     and the store's WriteSnapshot / WriteSnapshotFile — must have their
//     error consumed, period. Even an explicit `_ =` is a finding: if the
//     error truly cannot matter at a site, say why with //lint:allow.
//
//   - (*os.File).Sync anywhere, and (*os.File).Close inside the
//     durability packages (wal, snapshot, disk, ledger, store, lodvizd),
//     must not be dropped silently (bare statement or bare defer). An
//     explicit `_ = f.Close()` is accepted there: error paths closing a
//     file they are abandoning may discard deliberately, and the blank
//     assignment is the visible record of that decision.
package syncerr

import (
	"go/ast"

	"github.com/lodviz/lodviz/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name:       "syncerr",
	Doc:        "flag discarded errors from WAL append/sync, snapshot writes, and file sync/close on durability paths",
	Invariant:  "a dropped error on the durability path is acknowledged-write loss; every sync/append/close error is handled or visibly discarded",
	DocSection: "internal/analysis/README.md#syncerr",
	Run:        run,
}

// durabilityPkgs are the last path elements of packages where even a
// read-side file close must be visibly handled.
var durabilityPkgs = map[string]bool{
	"wal": true, "snapshot": true, "disk": true, "ledger": true,
	"store": true, "lodvizd": true,
}

func run(pass *analysis.Pass) error {
	strict := inDurabilityPkg(pass)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					checkDropped(pass, call, strict, false)
				}
				return false // the call's arguments can't discard results
			case *ast.DeferStmt:
				checkDropped(pass, n.Call, strict, false)
				return false
			case *ast.GoStmt:
				checkDropped(pass, n.Call, strict, false)
				return false
			case *ast.AssignStmt:
				for _, rhs := range n.Rhs {
					call, ok := ast.Unparen(rhs).(*ast.CallExpr)
					if !ok {
						continue
					}
					// The error is always the last result; with multiple
					// rhs values positions align 1:1.
					if len(n.Rhs) == 1 && isBlank(n.Lhs[len(n.Lhs)-1]) {
						checkDropped(pass, call, strict, true)
					}
				}
			}
			return true
		})
	}
	return nil
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

func inDurabilityPkg(pass *analysis.Pass) bool {
	path := pass.Pkg.Path()
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			path = path[i+1:]
			break
		}
	}
	return durabilityPkgs[path]
}

// checkDropped reports call if it is a durability call whose error is
// being dropped. explicitBlank marks `_ = call` / `x, _ := call` sites,
// which tier 2 accepts and tier 1 still rejects.
func checkDropped(pass *analysis.Pass, call *ast.CallExpr, strict, explicitBlank bool) {
	fn := analysis.CalleeFunc(pass.TypesInfo, call)
	if fn == nil {
		return
	}
	recv := analysis.RecvType(fn)
	name := fn.Name()
	pos := call.Pos()

	// Tier 1: acknowledgement-bearing calls. Blank assignment is not an
	// acceptable way to drop these.
	switch {
	case analysis.IsNamed(recv, "internal/wal", "Log") && (name == "Append" || name == "Sync" || name == "Close"):
		pass.Reportf(pos, "error from (*wal.Log).%s discarded: an unobserved WAL %s is acknowledged-write loss", name, verb(name))
		return
	case analysis.IsNamed(recv, "internal/snapshot", "Writer") && (name == "Term" || name == "Triple" || name == "Stats" || name == "Close"):
		pass.Reportf(pos, "error from (*snapshot.Writer).%s discarded: a torn snapshot write must surface at the call site", name)
		return
	case analysis.IsNamed(recv, "internal/store", "Store") && (name == "WriteSnapshot" || name == "WriteSnapshotFile"):
		pass.Reportf(pos, "error from (*store.Store).%s discarded: a failed snapshot silently narrows WAL truncation safety", name)
		return
	}

	// Tier 2: raw file sync/close.
	if analysis.IsNamed(recv, "os", "File") {
		switch {
		case name == "Sync" && !explicitBlank:
			pass.Reportf(pos, "error from (*os.File).Sync discarded: an unchecked fsync is the definition of silent write loss (handle it, or discard visibly with _ =)")
		case name == "Close" && strict && !explicitBlank:
			pass.Reportf(pos, "error from (*os.File).Close discarded on a durability path: a close error can be the only report of a failed flush (handle it, or discard visibly with _ =)")
		}
	}
}

func verb(name string) string {
	switch name {
	case "Append":
		return "append failure"
	case "Sync":
		return "fsync failure"
	default:
		return "close failure"
	}
}
