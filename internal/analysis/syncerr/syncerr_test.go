package syncerr_test

import (
	"testing"

	"github.com/lodviz/lodviz/internal/analysis/analysistest"
	"github.com/lodviz/lodviz/internal/analysis/syncerr"
)

func TestSyncerrDurabilityPackage(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), syncerr.Analyzer, "syncerrtest/wal")
}

func TestSyncerrOrdinaryPackage(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), syncerr.Analyzer, "syncerrtest/other")
}
