// Stub of internal/snapshot: just enough surface for the syncerr fixtures.
package snapshot

type Writer struct{}

func (w *Writer) Term(s string) error   { return nil }
func (w *Writer) Triple(s string) error { return nil }
func (w *Writer) Stats() error          { return nil }
func (w *Writer) Close() error          { return nil }
