// Stub of internal/store: just enough surface for the syncerr fixtures.
package store

import "io"

type Store struct{}

func (s *Store) WriteSnapshot(w io.Writer) error     { return nil }
func (s *Store) WriteSnapshotFile(path string) error { return nil }
