// Stub of internal/wal: just enough surface for the syncerr fixtures.
package wal

type Log struct{}

func (l *Log) Append(op int) error { return nil }
func (l *Log) Sync() error         { return nil }
func (l *Log) Close() error        { return nil }
func (l *Log) LastSeq() uint64     { return 0 }
