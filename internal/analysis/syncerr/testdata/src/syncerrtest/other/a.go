// A package outside the durability set: file closes may be dropped
// silently, fsync still may not.
package other

import "os"

func closes(f *os.File) {
	f.Close() // not a durability package: bare close is legal here
	f.Sync()  // want `error from \(\*os.File\).Sync discarded`
}
