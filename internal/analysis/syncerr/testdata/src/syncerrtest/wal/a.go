// The package path ends in "wal", so tier 2's strict file-close rule
// applies here alongside the tier-1 acknowledgement-bearing calls.
package waldriver

import (
	"io"
	"os"

	"github.com/lodviz/lodviz/internal/snapshot"
	"github.com/lodviz/lodviz/internal/store"
	"github.com/lodviz/lodviz/internal/wal"
)

func tier1Dropped(l *wal.Log) {
	l.Append(1)     // want `error from \(\*wal.Log\).Append discarded`
	_ = l.Sync()    // want `error from \(\*wal.Log\).Sync discarded`
	defer l.Close() // want `error from \(\*wal.Log\).Close discarded`
	go l.Sync()     // want `error from \(\*wal.Log\).Sync discarded`
}

func tier1Snapshot(w *snapshot.Writer, st *store.Store, out io.Writer) {
	w.Triple("t")         // want `error from \(\*snapshot.Writer\).Triple discarded`
	_ = w.Close()         // want `error from \(\*snapshot.Writer\).Close discarded`
	st.WriteSnapshot(out) // want `error from \(\*store.Store\).WriteSnapshot discarded`
}

func tier2Files(f *os.File) {
	f.Sync()  // want `error from \(\*os.File\).Sync discarded`
	f.Close() // want `error from \(\*os.File\).Close discarded on a durability path`

	// Explicit blank assignment is the visible record of a deliberate
	// discard; tier 2 accepts it.
	_ = f.Sync()
	_ = f.Close()
}

func handled(l *wal.Log, f *os.File) error {
	if err := l.Sync(); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	return l.Close()
}

func suppressedTier1(l *wal.Log) {
	//lint:allow syncerr fixture: the log is scratch-scoped, loss cannot outlive this call
	l.Sync()
}
