// Package badid carries one violation per analyzer rule the integration
// test asserts on.
package badid

import "example.org/fixturemod/internal/store"

// Position reinterprets a dictionary ID as an offset — the idspace
// category error.
func Position(id store.ID) int {
	return int(id)
}

// NextID mints an ID by arithmetic.
func NextID(id store.ID) store.ID {
	return id + 1
}

// Drive runs a paged scan with no context in reach — the ctxflow
// violation.
func Drive(st *store.Store) {
	_, _ = st.ScanIDs(0, 0, 0, 0)
}
