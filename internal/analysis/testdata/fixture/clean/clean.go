// Package clean violates nothing; the integration test asserts the suite
// exits zero on it.
package clean

import (
	"context"

	"example.org/fixturemod/internal/store"
)

func Drive(ctx context.Context, st *store.Store) {
	_, _ = st.ScanIDs(0, 0, 0, 0)
	_ = ctx
}
