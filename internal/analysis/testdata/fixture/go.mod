module example.org/fixturemod

go 1.22
