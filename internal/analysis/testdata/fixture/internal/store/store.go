// A fixture-module store: the analyzers match package identity by import
// path suffix, so this internal/store is recognized like the real one.
package store

type ID uint32

type IDTriple struct{ S, P, O ID }

type Store struct{}

func (s *Store) LayoutEpoch() uint64 { return 0 }

func (s *Store) ScanIDs(sub, pred, obj ID, lead int) (int, bool) { return 0, false }
