package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Type- and callee-resolution helpers shared by the five analyzers.
//
// Package identity is matched by import-path *suffix* ("internal/store"
// matches both github.com/lodviz/lodviz/internal/store and a fixture
// module's internal/store). That keeps the analyzers testable against
// stub packages and fixture modules without weakening them in practice:
// nothing else in the build ends in these suffixes.

// PkgIs reports whether pkg's import path equals suffix or ends in
// "/"+suffix.
func PkgIs(pkg *types.Package, suffix string) bool {
	if pkg == nil {
		return false
	}
	return PathIs(pkg.Path(), suffix)
}

// PathIs reports whether path equals suffix or ends in "/"+suffix.
func PathIs(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

// CalleeFunc resolves the function or method a call statically invokes,
// or nil for calls through function values, builtins, and conversions.
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			f, _ := sel.Obj().(*types.Func)
			return f
		}
		// Package-qualified call: pkg.Fn(...).
		f, _ := info.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}

// Deref strips one level of pointer.
func Deref(t types.Type) types.Type {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// NamedType returns t as a *types.Named after stripping pointers and
// aliases, or nil.
func NamedType(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	t = types.Unalias(Deref(types.Unalias(t)))
	n, _ := t.(*types.Named)
	return n
}

// IsNamed reports whether t (or *t) is the named type pkgSuffix.name.
func IsNamed(t types.Type, pkgSuffix, name string) bool {
	n := NamedType(t)
	if n == nil {
		return false
	}
	obj := n.Obj()
	return obj.Name() == name && obj.Pkg() != nil && PkgIs(obj.Pkg(), pkgSuffix)
}

// RecvType returns the receiver type of a method, or nil for plain
// functions.
func RecvType(f *types.Func) types.Type {
	if f == nil {
		return nil
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	return sig.Recv().Type()
}

// IsStoreSource reports whether t is the concrete store (internal/store's
// Store) or a store-shaped source interface. The source interfaces
// (sparql.Source, explore.Source, and test doubles wrapping them) are
// recognized structurally by the LayoutEpoch method — the epoch contract
// is what makes a type a paged-scan source in this codebase.
func IsStoreSource(t types.Type) bool {
	if t == nil {
		return false
	}
	if IsNamed(t, "internal/store", "Store") {
		return true
	}
	iface, ok := Deref(types.Unalias(t)).Underlying().(*types.Interface)
	if !ok {
		return false
	}
	for i := 0; i < iface.NumMethods(); i++ {
		if iface.Method(i).Name() == "LayoutEpoch" {
			return true
		}
	}
	return false
}

// IsContextType reports whether t is context.Context.
func IsContextType(t types.Type) bool {
	return IsNamed(t, "context", "Context")
}

// HasContextParam reports whether the function type has a
// context.Context parameter.
func HasContextParam(sig *types.Signature) bool {
	if sig == nil {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if IsContextType(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}

// FuncIsTestFile reports whether the position's file is a _test.go file.
// (The framework already drops such diagnostics; analyzers use this to
// skip whole-file work early.)
func FuncIsTestFile(filename string) bool {
	return strings.HasSuffix(filename, "_test.go")
}
