// Package unitchecker implements the `go vet -vettool` side of lodvizvet:
// the cmd/vet driver protocol, reimplemented on the standard library.
//
// go vet probes the tool twice (`-V=full` for a cache-keying version
// string, `-flags` for the supported flag set) and then invokes it once
// per package with the path to a JSON config file naming the package's
// sources, its import map, and the export-data file of every dependency.
// Dependency-only invocations arrive with VetxOnly=true and expect only
// the facts file to be written; lodvizvet keeps no cross-package facts,
// so its facts files are empty placeholders.
package unitchecker

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"runtime"
	"strings"

	"github.com/lodviz/lodviz/internal/analysis"
)

// Config mirrors the JSON emitted by cmd/go for each vetted package.
type Config struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// Main handles one vettool invocation and returns the process exit code:
// 0 clean, 1 on operational errors, 2 when findings were reported (the
// exit contract cmd/go expects from a vet tool).
func Main(progname string, args []string, analyzers []*analysis.Analyzer, stdout, stderr io.Writer) int {
	for _, a := range args {
		switch a {
		case "-V=full":
			fmt.Fprintf(stdout, "%s version devel buildID=%s\n", progname, selfID())
			return 0
		case "-flags":
			fmt.Fprintln(stdout, "[]")
			return 0
		}
	}
	if len(args) != 1 || !strings.HasSuffix(args[0], ".cfg") {
		fmt.Fprintf(stderr, "%s: expected a single vet config file argument (invoke via go vet -vettool=%s, or pass package patterns to the standalone mode)\n", progname, progname)
		return 1
	}
	n, err := runConfig(args[0], analyzers, stderr)
	if err != nil {
		fmt.Fprintf(stderr, "%s: %v\n", progname, err)
		return 1
	}
	if n > 0 {
		return 2
	}
	return 0
}

func runConfig(path string, analyzers []*analysis.Analyzer, stderr io.Writer) (int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	var cfg Config
	if err := json.Unmarshal(data, &cfg); err != nil {
		return 0, fmt.Errorf("parsing vet config %s: %w", path, err)
	}
	// The facts file must exist for cmd/go to cache the result, even for
	// packages we have nothing to say about.
	writeVetx := func() error {
		if cfg.VetxOutput == "" {
			return nil
		}
		return os.WriteFile(cfg.VetxOutput, nil, 0o666)
	}
	if cfg.VetxOnly {
		return 0, writeVetx()
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0, writeVetx()
			}
			return 0, err
		}
		files = append(files, f)
	}
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	imp := importer.ForCompiler(fset, compiler, func(importPath string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[importPath]; ok {
			importPath = mapped
		}
		file, ok := cfg.PackageFile[importPath]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", importPath)
		}
		return os.Open(file)
	})
	info := analysis.NewInfo()
	conf := types.Config{
		Importer: unsafeAware{imp},
		Sizes:    types.SizesFor(compiler, runtime.GOARCH),
	}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0, writeVetx()
		}
		return 0, fmt.Errorf("typecheck %s: %w", cfg.ImportPath, err)
	}
	findings, err := analysis.Run(analyzers, fset, files, tpkg, info)
	if err != nil {
		return 0, err
	}
	for _, f := range findings {
		fmt.Fprintln(stderr, f)
	}
	if err := writeVetx(); err != nil {
		return len(findings), err
	}
	return len(findings), nil
}

type unsafeAware struct{ imp types.Importer }

func (u unsafeAware) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return u.imp.Import(path)
}

// selfID hashes the running binary so cmd/go's vet result cache turns
// over whenever the tool is rebuilt with different analyzer logic.
func selfID() string {
	exe, err := os.Executable()
	if err != nil {
		return "unknown"
	}
	f, err := os.Open(exe)
	if err != nil {
		return "unknown"
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "unknown"
	}
	return fmt.Sprintf("%x", h.Sum(nil)[:16])
}
