// Package bundling implements the edge-bundling techniques the survey lists
// as the second pillar of large-graph readability (Section 4, refs
// [48,44,63,107,90,34]): hierarchical edge bundling (Holten) routed through
// a cluster tree, and a simplified force-directed edge bundling (FDEB).
// Both report ink-reduction metrics so the E9 experiment can quantify the
// benefit.
package bundling

import (
	"math"
)

// Point is a 2-D coordinate.
type Point struct{ X, Y float64 }

// Polyline is a bundled edge path.
type Polyline []Point

// Length returns the polyline's total length.
func (p Polyline) Length() float64 {
	var t float64
	for i := 1; i < len(p); i++ {
		t += dist(p[i-1], p[i])
	}
	return t
}

func dist(a, b Point) float64 { return math.Hypot(a.X-b.X, a.Y-b.Y) }

// Edge connects two node indexes.
type Edge struct{ From, To int }

// HierarchicalBundle routes each edge through the lowest common ancestor
// path of a cluster tree (Holten's hierarchical edge bundling): control
// points are the centroids of the tree nodes between the endpoints, and the
// bundling strength beta in [0,1] interpolates between the straight line
// (0) and the full hierarchy route (1).
//
// parent[i] is the tree parent of node i (-1 for the root); positions give
// each tree node's 2-D location (leaf nodes are the graph nodes).
func HierarchicalBundle(edges []Edge, parent []int, positions []Point, beta float64) []Polyline {
	if beta < 0 {
		beta = 0
	}
	if beta > 1 {
		beta = 1
	}
	depth := make([]int, len(parent))
	for i := range parent {
		d, v := 0, i
		for parent[v] >= 0 {
			v = parent[v]
			d++
			if d > len(parent) {
				break // cycle guard
			}
		}
		depth[i] = d
	}
	out := make([]Polyline, len(edges))
	for ei, e := range edges {
		path := treePath(e.From, e.To, parent, depth)
		ctrl := make(Polyline, len(path))
		for i, v := range path {
			ctrl[i] = positions[v]
		}
		out[ei] = bend(ctrl, beta)
	}
	return out
}

// treePath returns the node sequence from a up to LCA and down to b.
func treePath(a, b int, parent, depth []int) []int {
	var up []int
	x, y := a, b
	for depth[x] > depth[y] {
		up = append(up, x)
		x = parent[x]
	}
	var down []int
	for depth[y] > depth[x] {
		down = append(down, y)
		y = parent[y]
	}
	for x != y {
		up = append(up, x)
		down = append(down, y)
		x = parent[x]
		y = parent[y]
		if x < 0 || y < 0 {
			break
		}
	}
	path := append(up, x)
	for i := len(down) - 1; i >= 0; i-- {
		path = append(path, down[i])
	}
	return path
}

// bend interpolates the control polygon toward the straight line by 1-beta
// (Holten's bundling-strength relaxation).
func bend(ctrl Polyline, beta float64) Polyline {
	if len(ctrl) < 3 || beta >= 1 {
		return ctrl
	}
	first, last := ctrl[0], ctrl[len(ctrl)-1]
	out := make(Polyline, len(ctrl))
	n := float64(len(ctrl) - 1)
	for i, p := range ctrl {
		t := float64(i) / n
		lin := Point{X: first.X + (last.X-first.X)*t, Y: first.Y + (last.Y-first.Y)*t}
		out[i] = Point{
			X: beta*p.X + (1-beta)*lin.X,
			Y: beta*p.Y + (1-beta)*lin.Y,
		}
	}
	return out
}

// FDEBOptions tune force-directed edge bundling.
type FDEBOptions struct {
	// Subdivisions per edge (default 16).
	Subdivisions int
	// Iterations of attraction (default 30).
	Iterations int
	// CompatibilityThreshold in [0,1] gates which edge pairs attract
	// (default 0.6).
	CompatibilityThreshold float64
	// Stiffness scales the spring force (default 0.1).
	Stiffness float64
}

func (o *FDEBOptions) normalize() {
	if o.Subdivisions <= 0 {
		o.Subdivisions = 16
	}
	if o.Iterations <= 0 {
		o.Iterations = 30
	}
	if o.CompatibilityThreshold <= 0 {
		o.CompatibilityThreshold = 0.6
	}
	if o.Stiffness <= 0 {
		o.Stiffness = 0.1
	}
}

// FDEB bundles straight edges by subdividing each into control points and
// letting compatible edges attract each other (Holten & van Wijk 2009,
// simplified: single cycle, precomputed pairwise compatibility).
func FDEB(edges []Edge, positions []Point, opts FDEBOptions) []Polyline {
	opts.normalize()
	m := len(edges)
	lines := make([]Polyline, m)
	for i, e := range edges {
		lines[i] = subdivide(positions[e.From], positions[e.To], opts.Subdivisions)
	}
	if m < 2 {
		return lines
	}
	// Pairwise compatibility (angle × scale × distance), O(m²) — FDEB is for
	// the  visible  edge set, which the abstraction layers keep small.
	compat := make([][]int, m)
	for i := 0; i < m; i++ {
		for j := i + 1; j < m; j++ {
			if edgeCompatibility(positions[edges[i].From], positions[edges[i].To],
				positions[edges[j].From], positions[edges[j].To]) >= opts.CompatibilityThreshold {
				compat[i] = append(compat[i], j)
				compat[j] = append(compat[j], i)
			}
		}
	}
	k := opts.Subdivisions
	for iter := 0; iter < opts.Iterations; iter++ {
		forces := make([][]Point, m)
		for i := range forces {
			forces[i] = make([]Point, k+1)
		}
		for i := 0; i < m; i++ {
			li := lines[i]
			// Spring force between consecutive control points.
			for p := 1; p < k; p++ {
				fx := opts.Stiffness * ((li[p-1].X - li[p].X) + (li[p+1].X - li[p].X))
				fy := opts.Stiffness * ((li[p-1].Y - li[p].Y) + (li[p+1].Y - li[p].Y))
				forces[i][p].X += fx
				forces[i][p].Y += fy
			}
			// Electrostatic attraction to compatible edges' control points.
			for _, j := range compat[i] {
				lj := lines[j]
				for p := 1; p < k; p++ {
					dx := lj[p].X - li[p].X
					dy := lj[p].Y - li[p].Y
					d := math.Hypot(dx, dy)
					if d < 1e-6 {
						continue
					}
					forces[i][p].X += dx / d
					forces[i][p].Y += dy / d
				}
			}
		}
		for i := 0; i < m; i++ {
			for p := 1; p < k; p++ {
				lines[i][p].X += forces[i][p].X
				lines[i][p].Y += forces[i][p].Y
			}
		}
	}
	return lines
}

func subdivide(a, b Point, k int) Polyline {
	out := make(Polyline, k+1)
	for i := 0; i <= k; i++ {
		t := float64(i) / float64(k)
		out[i] = Point{X: a.X + (b.X-a.X)*t, Y: a.Y + (b.Y-a.Y)*t}
	}
	return out
}

// edgeCompatibility combines angle, scale and position compatibility in
// [0,1], as in the FDEB paper.
func edgeCompatibility(p1, p2, q1, q2 Point) float64 {
	v1 := Point{p2.X - p1.X, p2.Y - p1.Y}
	v2 := Point{q2.X - q1.X, q2.Y - q1.Y}
	l1 := math.Hypot(v1.X, v1.Y)
	l2 := math.Hypot(v2.X, v2.Y)
	if l1 < 1e-9 || l2 < 1e-9 {
		return 0
	}
	// Angle.
	ca := math.Abs((v1.X*v2.X + v1.Y*v2.Y) / (l1 * l2))
	// Scale.
	lavg := (l1 + l2) / 2
	cs := 2 / (lavg/math.Min(l1, l2) + math.Max(l1, l2)/lavg)
	// Position.
	m1 := Point{(p1.X + p2.X) / 2, (p1.Y + p2.Y) / 2}
	m2 := Point{(q1.X + q2.X) / 2, (q1.Y + q2.Y) / 2}
	cp := lavg / (lavg + dist(m1, m2))
	return ca * cs * cp
}

// InkRatio compares total bundled ink (approximated by the length of the
// union of drawn segments, discretized to a grid) against the straight-line
// drawing. Values < 1 mean the bundling saved ink — the clutter-reduction
// measure E9 reports.
func InkRatio(straight, bundled []Polyline, gridCells int) float64 {
	si := inkCells(straight, gridCells)
	bi := inkCells(bundled, gridCells)
	if si == 0 {
		return 1
	}
	return float64(bi) / float64(si)
}

// inkCells rasterizes polylines onto a grid and counts touched cells.
func inkCells(lines []Polyline, gridCells int) int {
	if gridCells < 1 {
		gridCells = 256
	}
	minX, minY := math.Inf(1), math.Inf(1)
	maxX, maxY := math.Inf(-1), math.Inf(-1)
	for _, l := range lines {
		for _, p := range l {
			minX = math.Min(minX, p.X)
			minY = math.Min(minY, p.Y)
			maxX = math.Max(maxX, p.X)
			maxY = math.Max(maxY, p.Y)
		}
	}
	if maxX <= minX {
		maxX = minX + 1
	}
	if maxY <= minY {
		maxY = minY + 1
	}
	cells := map[int]bool{}
	for _, l := range lines {
		for i := 1; i < len(l); i++ {
			// Sample along the segment at sub-cell resolution.
			steps := int(dist(l[i-1], l[i])/((maxX-minX)/float64(gridCells))) + 1
			for s := 0; s <= steps; s++ {
				t := float64(s) / float64(steps)
				x := l[i-1].X + (l[i].X-l[i-1].X)*t
				y := l[i-1].Y + (l[i].Y-l[i-1].Y)*t
				cx := int((x - minX) / (maxX - minX) * float64(gridCells-1))
				cy := int((y - minY) / (maxY - minY) * float64(gridCells-1))
				cells[cy*gridCells+cx] = true
			}
		}
	}
	return len(cells)
}
