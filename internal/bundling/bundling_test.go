package bundling

import (
	"math"
	"testing"
)

// starTree builds a 2-level hierarchy: root 0, two cluster nodes 1 and 2,
// leaves 3,4 under 1 and 5,6 under 2.
func starTree() (parent []int, pos []Point) {
	parent = []int{-1, 0, 0, 1, 1, 2, 2}
	pos = []Point{
		{50, 50},           // root
		{20, 50}, {80, 50}, // clusters
		{10, 30}, {10, 70}, // leaves left
		{90, 30}, {90, 70}, // leaves right
	}
	return
}

func TestHierarchicalBundleFullBeta(t *testing.T) {
	parent, pos := starTree()
	edges := []Edge{{3, 5}, {4, 6}}
	lines := HierarchicalBundle(edges, parent, pos, 1.0)
	if len(lines) != 2 {
		t.Fatalf("lines = %d", len(lines))
	}
	// With beta=1 the path must route via cluster centroids and the root:
	// 3 → 1 → 0 → 2 → 5 = 5 points.
	if len(lines[0]) != 5 {
		t.Fatalf("path length = %d, want 5: %v", len(lines[0]), lines[0])
	}
	if lines[0][2] != (Point{50, 50}) {
		t.Errorf("midpoint should be the root: %v", lines[0][2])
	}
	// Endpoints preserved.
	if lines[0][0] != pos[3] || lines[0][4] != pos[5] {
		t.Error("endpoints moved")
	}
}

func TestHierarchicalBundleZeroBetaIsStraight(t *testing.T) {
	parent, pos := starTree()
	edges := []Edge{{3, 5}}
	lines := HierarchicalBundle(edges, parent, pos, 0)
	// All control points must lie on the straight segment.
	a, b := pos[3], pos[5]
	for _, p := range lines[0] {
		// Collinearity: cross product ~ 0.
		cross := (b.X-a.X)*(p.Y-a.Y) - (b.Y-a.Y)*(p.X-a.X)
		if math.Abs(cross) > 1e-6 {
			t.Errorf("point %v off the straight line", p)
		}
	}
}

func TestHierarchicalBundleSameCluster(t *testing.T) {
	parent, pos := starTree()
	edges := []Edge{{3, 4}} // same cluster: path 3 → 1 → 4
	lines := HierarchicalBundle(edges, parent, pos, 1)
	if len(lines[0]) != 3 {
		t.Errorf("intra-cluster path = %d points, want 3", len(lines[0]))
	}
}

func TestHierarchicalBundleBetaClamped(t *testing.T) {
	parent, pos := starTree()
	edges := []Edge{{3, 5}}
	for _, beta := range []float64{-0.5, 1.5} {
		lines := HierarchicalBundle(edges, parent, pos, beta)
		if len(lines) != 1 || len(lines[0]) < 2 {
			t.Errorf("beta=%g produced %v", beta, lines)
		}
	}
}

func TestPolylineLength(t *testing.T) {
	p := Polyline{{0, 0}, {3, 4}, {3, 8}}
	if p.Length() != 9 {
		t.Errorf("Length = %g, want 9", p.Length())
	}
}

func TestFDEBAttractsParallelEdges(t *testing.T) {
	// Two parallel horizontal edges close together must be pulled toward
	// each other's midlines.
	pos := []Point{{0, 0}, {100, 0}, {0, 10}, {100, 10}}
	edges := []Edge{{0, 1}, {2, 3}}
	lines := FDEB(edges, pos, FDEBOptions{Subdivisions: 8, Iterations: 40})
	mid0 := lines[0][4]
	mid1 := lines[1][4]
	gap := math.Abs(mid0.Y - mid1.Y)
	if gap >= 10 {
		t.Errorf("midpoint gap = %g, want < 10 (attracted)", gap)
	}
	// Endpoints must not move.
	if lines[0][0] != pos[0] || lines[0][8] != pos[1] {
		t.Error("endpoints moved")
	}
}

func TestFDEBIncompatibleEdgesUnmoved(t *testing.T) {
	// Perpendicular distant edges should stay nearly straight.
	pos := []Point{{0, 0}, {100, 0}, {500, 500}, {500, 600}}
	edges := []Edge{{0, 1}, {2, 3}}
	lines := FDEB(edges, pos, FDEBOptions{Subdivisions: 8, Iterations: 40})
	for _, p := range lines[0] {
		if math.Abs(p.Y) > 1 {
			t.Errorf("incompatible edge bent: %v", p)
		}
	}
}

func TestFDEBSingleEdge(t *testing.T) {
	pos := []Point{{0, 0}, {10, 10}}
	lines := FDEB([]Edge{{0, 1}}, pos, FDEBOptions{})
	if len(lines) != 1 || len(lines[0]) != 17 {
		t.Errorf("single edge: %d lines, %d points", len(lines), len(lines[0]))
	}
}

func TestInkRatioBundledSavesInk(t *testing.T) {
	// Many parallel edges: bundled through a shared spine should touch
	// fewer cells than straight lines fanned out.
	var straight, bundled []Polyline
	for i := 0; i < 20; i++ {
		y := float64(i * 5)
		straight = append(straight, Polyline{{0, y}, {100, 50}})
		// Bundled: route via a shared spine.
		bundled = append(bundled, Polyline{{0, y}, {50, 50}, {100, 50}})
	}
	ratio := InkRatio(straight, bundled, 128)
	if ratio >= 1 {
		t.Errorf("InkRatio = %g, want < 1", ratio)
	}
}

func TestInkRatioIdentical(t *testing.T) {
	lines := []Polyline{{{0, 0}, {10, 10}}}
	if r := InkRatio(lines, lines, 64); math.Abs(r-1) > 1e-9 {
		t.Errorf("identical drawings ratio = %g", r)
	}
}

func TestEdgeCompatibilityRange(t *testing.T) {
	// Parallel identical edges: compatibility 1.
	c := edgeCompatibility(Point{0, 0}, Point{10, 0}, Point{0, 1}, Point{10, 1})
	if c < 0.8 || c > 1 {
		t.Errorf("parallel compatibility = %g", c)
	}
	// Perpendicular edges: low angle compatibility.
	c = edgeCompatibility(Point{0, 0}, Point{10, 0}, Point{5, -5}, Point{5, 5})
	if c > 0.3 {
		t.Errorf("perpendicular compatibility = %g", c)
	}
	// Degenerate edge.
	if edgeCompatibility(Point{0, 0}, Point{0, 0}, Point{1, 1}, Point{2, 2}) != 0 {
		t.Error("degenerate edge compatibility != 0")
	}
}
