// Package cluster implements the clustering techniques the survey's systems
// use for abstraction: k-means for numeric attributes (Trisolda-style node
// merging), agglomerative clustering for small sets, and graph clustering —
// label propagation and greedy modularity (Louvain-style) — which the
// hierarchical graph-abstraction systems [1,8,9,93] build their layers from.
package cluster

import (
	"errors"
	"math"
	"math/rand"
	"sort"
)

// ErrBadK is returned when k is out of range.
var ErrBadK = errors.New("cluster: k must be in 1..len(points)")

// KMeansResult holds a k-means clustering.
type KMeansResult struct {
	// Centroids are the final cluster centers.
	Centroids [][]float64
	// Assign maps each input point to its centroid index.
	Assign []int
	// Iterations is how many Lloyd iterations ran.
	Iterations int
	// Inertia is the total within-cluster squared distance.
	Inertia float64
}

// KMeans clusters d-dimensional points with Lloyd's algorithm and k-means++
// seeding. Deterministic for a given seed.
func KMeans(points [][]float64, k int, seed int64, maxIter int) (*KMeansResult, error) {
	if k <= 0 || k > len(points) {
		return nil, ErrBadK
	}
	if maxIter <= 0 {
		maxIter = 100
	}
	rng := rand.New(rand.NewSource(seed))
	centroids := seedPlusPlus(points, k, rng)
	assign := make([]int, len(points))
	res := &KMeansResult{}
	for iter := 0; iter < maxIter; iter++ {
		changed := false
		for i, p := range points {
			best, bestD := 0, math.Inf(1)
			for c, cen := range centroids {
				if d := sqDist(p, cen); d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		res.Iterations = iter + 1
		if !changed && iter > 0 {
			break
		}
		// Recompute centroids.
		dim := len(points[0])
		sums := make([][]float64, k)
		counts := make([]int, k)
		for i := range sums {
			sums[i] = make([]float64, dim)
		}
		for i, p := range points {
			c := assign[i]
			counts[c]++
			for d := range p {
				sums[c][d] += p[d]
			}
		}
		for c := range centroids {
			if counts[c] == 0 {
				// Re-seed an empty cluster at the farthest point.
				centroids[c] = points[farthestPoint(points, centroids, rng)]
				continue
			}
			for d := range sums[c] {
				sums[c][d] /= float64(counts[c])
			}
			centroids[c] = sums[c]
		}
	}
	for i, p := range points {
		res.Inertia += sqDist(p, centroids[assign[i]])
	}
	res.Centroids = centroids
	res.Assign = assign
	return res, nil
}

func seedPlusPlus(points [][]float64, k int, rng *rand.Rand) [][]float64 {
	centroids := make([][]float64, 0, k)
	centroids = append(centroids, points[rng.Intn(len(points))])
	for len(centroids) < k {
		// Choose next center with probability proportional to D².
		dists := make([]float64, len(points))
		total := 0.0
		for i, p := range points {
			d := math.Inf(1)
			for _, c := range centroids {
				d = math.Min(d, sqDist(p, c))
			}
			dists[i] = d
			total += d
		}
		if total == 0 {
			centroids = append(centroids, points[rng.Intn(len(points))])
			continue
		}
		r := rng.Float64() * total
		acc := 0.0
		chosen := len(points) - 1
		for i, d := range dists {
			acc += d
			if acc >= r {
				chosen = i
				break
			}
		}
		centroids = append(centroids, points[chosen])
	}
	return centroids
}

func farthestPoint(points [][]float64, centroids [][]float64, rng *rand.Rand) int {
	best, bestD := rng.Intn(len(points)), -1.0
	for i, p := range points {
		d := math.Inf(1)
		for _, c := range centroids {
			d = math.Min(d, sqDist(p, c))
		}
		if d > bestD {
			best, bestD = i, d
		}
	}
	return best
}

func sqDist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// Agglomerative performs average-linkage hierarchical clustering of 1-D
// values down to k clusters, returning the assignment. Intended for the
// small candidate sets visualization front-ends cluster (legend grouping,
// color assignment), so the O(n³) simplicity is acceptable; callers should
// reduce first for large n.
func Agglomerative(values []float64, k int) ([]int, error) {
	n := len(values)
	if k <= 0 || k > n {
		return nil, ErrBadK
	}
	// Start with singleton clusters.
	clusters := make([][]int, n)
	for i := range clusters {
		clusters[i] = []int{i}
	}
	mean := func(c []int) float64 {
		s := 0.0
		for _, i := range c {
			s += values[i]
		}
		return s / float64(len(c))
	}
	for len(clusters) > k {
		bi, bj, bd := -1, -1, math.Inf(1)
		for i := 0; i < len(clusters); i++ {
			for j := i + 1; j < len(clusters); j++ {
				d := math.Abs(mean(clusters[i]) - mean(clusters[j]))
				if d < bd {
					bi, bj, bd = i, j, d
				}
			}
		}
		clusters[bi] = append(clusters[bi], clusters[bj]...)
		clusters = append(clusters[:bj], clusters[bj+1:]...)
	}
	assign := make([]int, n)
	for ci, c := range clusters {
		for _, i := range c {
			assign[i] = ci
		}
	}
	return assign, nil
}

// Graph is an undirected graph in adjacency-list form for community
// detection. Nodes are 0..N-1.
type Graph struct {
	N   int
	Adj [][]int
}

// NewGraph builds an undirected graph from edge pairs (self-loops kept,
// duplicates allowed).
func NewGraph(n int, edges [][2]int) *Graph {
	g := &Graph{N: n, Adj: make([][]int, n)}
	for _, e := range edges {
		if e[0] < 0 || e[0] >= n || e[1] < 0 || e[1] >= n {
			continue
		}
		g.Adj[e[0]] = append(g.Adj[e[0]], e[1])
		if e[0] != e[1] {
			g.Adj[e[1]] = append(g.Adj[e[1]], e[0])
		}
	}
	return g
}

// Edges returns the number of undirected edges.
func (g *Graph) Edges() int {
	m := 0
	for u, nbrs := range g.Adj {
		for _, v := range nbrs {
			if v >= u {
				m++
			}
		}
	}
	return m
}

// LabelPropagation detects communities by iteratively adopting each node's
// most frequent neighbor label. Deterministic given the seed. Returns a
// dense community id per node.
func LabelPropagation(g *Graph, seed int64, maxRounds int) []int {
	if maxRounds <= 0 {
		maxRounds = 20
	}
	labels := make([]int, g.N)
	for i := range labels {
		labels[i] = i
	}
	rng := rand.New(rand.NewSource(seed))
	order := rng.Perm(g.N)
	for round := 0; round < maxRounds; round++ {
		changed := false
		for _, u := range order {
			if len(g.Adj[u]) == 0 {
				continue
			}
			counts := map[int]int{}
			for _, v := range g.Adj[u] {
				counts[labels[v]]++
			}
			best, bestC := labels[u], counts[labels[u]]
			// Deterministic tie-break: smallest label among the most frequent.
			keys := make([]int, 0, len(counts))
			for l := range counts {
				keys = append(keys, l)
			}
			sort.Ints(keys)
			for _, l := range keys {
				if counts[l] > bestC {
					best, bestC = l, counts[l]
				}
			}
			if best != labels[u] {
				labels[u] = best
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return renumber(labels)
}

// Modularity computes Newman modularity Q of a community assignment.
func Modularity(g *Graph, comm []int) float64 {
	m := float64(g.Edges())
	if m == 0 {
		return 0
	}
	deg := make([]float64, g.N)
	for u := range g.Adj {
		deg[u] = float64(len(g.Adj[u]))
	}
	// Sum of degrees per community, and intra-community edge count.
	commDeg := map[int]float64{}
	intra := map[int]float64{}
	for u, nbrs := range g.Adj {
		commDeg[comm[u]] += deg[u]
		for _, v := range nbrs {
			if v >= u && comm[u] == comm[v] {
				intra[comm[u]]++
			}
		}
	}
	q := 0.0
	for c, e := range intra {
		q += e/m - (commDeg[c]/(2*m))*(commDeg[c]/(2*m))
	}
	for c, d := range commDeg {
		if _, ok := intra[c]; !ok {
			q -= (d / (2 * m)) * (d / (2 * m))
		}
	}
	return q
}

// GreedyModularity runs one level of Louvain-style local moving: each node
// greedily joins the neighboring community with the best modularity gain
// until no move improves Q. Returns the community assignment.
func GreedyModularity(g *Graph, seed int64) []int {
	m2 := float64(2 * g.Edges())
	if m2 == 0 {
		return renumber(make([]int, g.N))
	}
	comm := make([]int, g.N)
	deg := make([]float64, g.N)
	commTot := make([]float64, g.N) // sum of degrees in community
	for i := range comm {
		comm[i] = i
		deg[i] = float64(len(g.Adj[i]))
		commTot[i] = deg[i]
	}
	rng := rand.New(rand.NewSource(seed))
	order := rng.Perm(g.N)
	improved := true
	for rounds := 0; improved && rounds < 50; rounds++ {
		improved = false
		for _, u := range order {
			cu := comm[u]
			// Count links from u to each neighboring community.
			links := map[int]float64{}
			for _, v := range g.Adj[u] {
				if v != u {
					links[comm[v]]++
				}
			}
			// Remove u from its community.
			commTot[cu] -= deg[u]
			bestC, bestGain := cu, 0.0
			cands := make([]int, 0, len(links))
			for c := range links {
				cands = append(cands, c)
			}
			sort.Ints(cands)
			for _, c := range cands {
				gain := links[c]/m2*2 - deg[u]*commTot[c]*2/(m2*m2)
				base := links[cu]/m2*2 - deg[u]*commTot[cu]*2/(m2*m2)
				if gain-base > bestGain+1e-12 {
					bestGain = gain - base
					bestC = c
				}
			}
			commTot[bestC] += deg[u]
			if bestC != cu {
				comm[u] = bestC
				improved = true
			}
		}
	}
	return renumber(comm)
}

// renumber maps arbitrary labels to dense 0..k-1 ids in first-seen order.
func renumber(labels []int) []int {
	next := 0
	seen := map[int]int{}
	out := make([]int, len(labels))
	for i, l := range labels {
		id, ok := seen[l]
		if !ok {
			id = next
			seen[l] = id
			next++
		}
		out[i] = id
	}
	return out
}

// NumCommunities returns the number of distinct communities in a dense
// assignment.
func NumCommunities(comm []int) int {
	max := -1
	for _, c := range comm {
		if c > max {
			max = c
		}
	}
	return max + 1
}
