package cluster

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestKMeansSeparatesClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var points [][]float64
	// Three well-separated blobs.
	for c := 0; c < 3; c++ {
		cx, cy := float64(c*100), float64(c*100)
		for i := 0; i < 50; i++ {
			points = append(points, []float64{cx + rng.NormFloat64(), cy + rng.NormFloat64()})
		}
	}
	res, err := KMeans(points, 3, 7, 100)
	if err != nil {
		t.Fatal(err)
	}
	// Every blob must be pure: same assignment within each block of 50.
	for c := 0; c < 3; c++ {
		first := res.Assign[c*50]
		for i := 1; i < 50; i++ {
			if res.Assign[c*50+i] != first {
				t.Fatalf("blob %d split across clusters", c)
			}
		}
	}
	if res.Inertia > 1000 {
		t.Errorf("inertia = %g, too high for separated blobs", res.Inertia)
	}
}

func TestKMeansErrors(t *testing.T) {
	pts := [][]float64{{1}, {2}}
	if _, err := KMeans(pts, 0, 1, 10); err != ErrBadK {
		t.Error("k=0 accepted")
	}
	if _, err := KMeans(pts, 3, 1, 10); err != ErrBadK {
		t.Error("k>n accepted")
	}
}

func TestKMeansKEqualsN(t *testing.T) {
	pts := [][]float64{{0}, {10}, {20}}
	res, err := KMeans(pts, 3, 1, 50)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, a := range res.Assign {
		seen[a] = true
	}
	if len(seen) != 3 {
		t.Errorf("k=n should give singleton clusters, got %v", res.Assign)
	}
	if res.Inertia != 0 {
		t.Errorf("inertia = %g, want 0", res.Inertia)
	}
}

// Property: k-means assignment indexes are always within range and inertia
// is non-negative.
func TestKMeansBoundsProperty(t *testing.T) {
	f := func(seed int64, n8, k8 uint8) bool {
		n := int(n8)%50 + 2
		k := int(k8)%n + 1
		rng := rand.New(rand.NewSource(seed))
		pts := make([][]float64, n)
		for i := range pts {
			pts[i] = []float64{rng.Float64() * 100, rng.Float64() * 100}
		}
		res, err := KMeans(pts, k, seed, 30)
		if err != nil {
			return false
		}
		if res.Inertia < 0 || len(res.Assign) != n || len(res.Centroids) != k {
			return false
		}
		for _, a := range res.Assign {
			if a < 0 || a >= k {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestAgglomerative(t *testing.T) {
	values := []float64{1, 1.1, 1.2, 50, 50.5, 100}
	assign, err := Agglomerative(values, 3)
	if err != nil {
		t.Fatal(err)
	}
	if assign[0] != assign[1] || assign[1] != assign[2] {
		t.Errorf("low values split: %v", assign)
	}
	if assign[3] != assign[4] {
		t.Errorf("mid values split: %v", assign)
	}
	if assign[5] == assign[0] || assign[5] == assign[3] {
		t.Errorf("outlier merged: %v", assign)
	}
}

func TestAgglomerativeErrors(t *testing.T) {
	if _, err := Agglomerative([]float64{1}, 0); err != ErrBadK {
		t.Error("k=0 accepted")
	}
	if _, err := Agglomerative([]float64{1}, 2); err != ErrBadK {
		t.Error("k>n accepted")
	}
}

// twoCliques builds two K5 cliques joined by a single bridge edge.
func twoCliques() *Graph {
	var edges [][2]int
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			edges = append(edges, [2]int{i, j})
			edges = append(edges, [2]int{i + 5, j + 5})
		}
	}
	edges = append(edges, [2]int{4, 5})
	return NewGraph(10, edges)
}

func TestLabelPropagationFindsCliques(t *testing.T) {
	g := twoCliques()
	comm := LabelPropagation(g, 3, 30)
	if NumCommunities(comm) < 1 || NumCommunities(comm) > 3 {
		t.Fatalf("communities = %d", NumCommunities(comm))
	}
	// Nodes within each clique should agree (allow the bridge endpoints to
	// flip, but the clique cores must be uniform).
	for c := 0; c < 2; c++ {
		base := comm[c*5+1]
		for i := 1; i < 4; i++ {
			if comm[c*5+i] != base {
				t.Errorf("clique %d core split: %v", c, comm)
			}
		}
	}
}

func TestGreedyModularityImprovesQ(t *testing.T) {
	g := twoCliques()
	trivial := make([]int, g.N)
	for i := range trivial {
		trivial[i] = i
	}
	qTrivial := Modularity(g, trivial)
	comm := GreedyModularity(g, 5)
	qFound := Modularity(g, comm)
	if qFound <= qTrivial {
		t.Errorf("greedy Q=%g not better than singleton Q=%g", qFound, qTrivial)
	}
	// The ideal partition has Q ≈ 0.45 for two cliques with one bridge.
	ideal := make([]int, 10)
	for i := 5; i < 10; i++ {
		ideal[i] = 1
	}
	qIdeal := Modularity(g, ideal)
	if qFound < qIdeal-0.2 {
		t.Errorf("greedy Q=%g far from ideal %g", qFound, qIdeal)
	}
}

func TestModularityEmptyGraph(t *testing.T) {
	g := NewGraph(3, nil)
	if q := Modularity(g, []int{0, 1, 2}); q != 0 {
		t.Errorf("empty graph Q = %g", q)
	}
	comm := GreedyModularity(g, 1)
	if len(comm) != 3 {
		t.Errorf("assignment length = %d", len(comm))
	}
}

func TestNewGraphIgnoresOutOfRange(t *testing.T) {
	g := NewGraph(2, [][2]int{{0, 1}, {0, 5}, {-1, 0}})
	if g.Edges() != 1 {
		t.Errorf("Edges = %d, want 1", g.Edges())
	}
}

func TestRenumberDense(t *testing.T) {
	out := renumber([]int{7, 7, 3, 7, 3, 9})
	want := []int{0, 0, 1, 0, 1, 2}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("renumber = %v, want %v", out, want)
		}
	}
}

// Property: modularity of any assignment is in [-1, 1].
func TestModularityRangeProperty(t *testing.T) {
	f := func(seed int64, n8 uint8) bool {
		n := int(n8)%30 + 2
		rng := rand.New(rand.NewSource(seed))
		var edges [][2]int
		for i := 0; i < n*2; i++ {
			edges = append(edges, [2]int{rng.Intn(n), rng.Intn(n)})
		}
		g := NewGraph(n, edges)
		comm := make([]int, n)
		for i := range comm {
			comm[i] = rng.Intn(3)
		}
		q := Modularity(g, comm)
		return q >= -1.000001 && q <= 1.000001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
