// Package core ties the lodviz substrates into the exploration engine the
// survey calls for: a session that follows the visual-information-seeking
// mantra — overview first, zoom and filter, then details on demand
// (Shneiderman, ref [118]) — over datasets of any size, with an explicit
// resource budget and a per-user preference model (the survey's "variety of
// tasks & users" requirement).
package core

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"github.com/lodviz/lodviz/internal/aggregate"
	"github.com/lodviz/lodviz/internal/facet"
	"github.com/lodviz/lodviz/internal/hetree"
	"github.com/lodviz/lodviz/internal/keyword"
	"github.com/lodviz/lodviz/internal/ldvm"
	"github.com/lodviz/lodviz/internal/rdf"
	"github.com/lodviz/lodviz/internal/recommend"
	"github.com/lodviz/lodviz/internal/sampling"
	"github.com/lodviz/lodviz/internal/sparql"
	"github.com/lodviz/lodviz/internal/store"
	"github.com/lodviz/lodviz/internal/vis"
)

// Reduction selects the data-reduction strategy when a result exceeds the
// budget.
type Reduction int

// Reduction strategies.
const (
	// Auto picks aggregation for overview tasks and sampling for detail
	// preservation (outliers), following the survey's technique taxonomy.
	Auto Reduction = iota
	// PreferSampling always samples.
	PreferSampling
	// PreferAggregation always bins/aggregates.
	PreferAggregation
	// NoReduction disables reduction (use only for small data).
	NoReduction
)

// Preferences is the per-user/task configuration (Section 2's
// personalization requirement).
type Preferences struct {
	// PixelBudget bounds how many visual marks a single view may carry.
	PixelBudget vis.PixelBudget
	// Reduction picks the reduction strategy.
	Reduction Reduction
	// TreeDegree and LeafCapacity configure hierarchical exploration.
	TreeDegree   int
	LeafCapacity int
	// Seed makes sampling reproducible.
	Seed int64
}

// DefaultPreferences returns the survey's laptop-scale defaults: a
// one-megapixel display budget.
func DefaultPreferences() Preferences {
	return Preferences{
		PixelBudget:  vis.PixelBudget{Width: 1280, Height: 800},
		TreeDegree:   4,
		LeafCapacity: 64,
		Seed:         1,
	}
}

// Explorer is a stateful exploration session over one dataset.
type Explorer struct {
	st    *store.Store
	prefs Preferences

	// Lazy indexes.
	kwIndex *keyword.Index
	trees   map[rdf.IRI]*hetree.Tree
}

// NewExplorer starts a session with the given preferences.
func NewExplorer(st *store.Store, prefs Preferences) *Explorer {
	if prefs.PixelBudget.Pixels() == 0 {
		prefs = DefaultPreferences()
	}
	return &Explorer{st: st, prefs: prefs, trees: map[rdf.IRI]*hetree.Tree{}}
}

// Store exposes the underlying triple store.
func (e *Explorer) Store() *store.Store { return e.st }

// Preferences returns the session preferences.
func (e *Explorer) Preferences() Preferences { return e.prefs }

// SetPreferences adapts the session to new preferences; hierarchical trees
// adapt in place (keeping their sorted data) rather than rebuilding.
func (e *Explorer) SetPreferences(p Preferences) error {
	e.prefs = p
	for _, t := range e.trees {
		if err := t.Adapt(p.TreeDegree, p.LeafCapacity); err != nil {
			return fmt.Errorf("core: adapt hierarchy: %w", err)
		}
	}
	return nil
}

// Overview summarizes the dataset: size, class distribution and the most
// informative predicates — the entry screen of a WoD browser.
type Overview struct {
	Triples    int
	Terms      int
	Classes    []aggregate.GroupResult
	Predicates []store.PredicateStat
}

// Overview computes the dataset overview.
func (e *Explorer) Overview() Overview {
	stats := e.st.ComputeStats()
	var classes []aggregate.GroupResult
	for cls, n := range stats.Classes {
		label := cls.String()
		if iri, ok := cls.(rdf.IRI); ok {
			label = iri.LocalName()
		}
		classes = append(classes, aggregate.GroupResult{Key: label, Count: n})
	}
	sort.Slice(classes, func(i, j int) bool {
		if classes[i].Count != classes[j].Count {
			return classes[i].Count > classes[j].Count
		}
		return classes[i].Key < classes[j].Key
	})
	preds := stats.Predicates
	if len(preds) > 25 {
		preds = preds[:25]
	}
	return Overview{
		Triples:    stats.Triples,
		Terms:      stats.Terms,
		Classes:    classes,
		Predicates: preds,
	}
}

// Query runs a SPARQL query against the dataset.
func (e *Explorer) Query(q string) (*sparql.Results, error) {
	return sparql.Exec(e.st, q)
}

// Search finds entities by keyword (index built on first use).
func (e *Explorer) Search(query string, limit int) []keyword.Hit {
	if e.kwIndex == nil {
		e.kwIndex = keyword.BuildIndex(e.st)
	}
	return e.kwIndex.Search(query, limit)
}

// Facets starts a faceted-browsing session over the dataset.
func (e *Explorer) Facets() *facet.Session {
	return facet.NewSession(e.st)
}

// Details returns everything known about an entity (outgoing and incoming
// statements) — the "details on demand" stage.
type Details struct {
	Entity   rdf.Term
	Label    string
	Outgoing []rdf.Triple
	Incoming []rdf.Triple
}

// Details fetches an entity's full description.
func (e *Explorer) Details(entity rdf.Term) Details {
	d := Details{Entity: entity}
	if iri, ok := entity.(rdf.IRI); ok {
		d.Label = iri.LocalName()
	}
	e.st.ForEach(store.Pattern{S: entity}, func(t rdf.Triple) bool {
		if t.P == rdf.RDFSLabel {
			if l, ok := t.O.(rdf.Literal); ok {
				d.Label = l.Lexical
			}
		}
		d.Outgoing = append(d.Outgoing, t)
		return true
	})
	e.st.ForEach(store.Pattern{O: entity}, func(t rdf.Triple) bool {
		d.Incoming = append(d.Incoming, t)
		return true
	})
	return d
}

// NumericHierarchy returns (building on first use, incrementally) the HETree
// over a numeric or temporal property — the SynopsViz-style multilevel view.
func (e *Explorer) NumericHierarchy(prop rdf.IRI) (*hetree.Tree, error) {
	//lint:allow ctxflow compat wrapper: NumericHierarchyCtx is the cancellable form
	return e.NumericHierarchyCtx(context.Background(), prop)
}

// NumericHierarchyCtx is NumericHierarchy with cancellation: the underlying
// ID-space collection honors ctx while grouping large predicate runs.
func (e *Explorer) NumericHierarchyCtx(ctx context.Context, prop rdf.IRI) (*hetree.Tree, error) {
	if t, ok := e.trees[prop]; ok {
		return t, nil
	}
	tree, err := hetree.FromSource(ctx, e.st, prop, hetree.Options{
		Mode:         hetree.ContentBased,
		Degree:       e.prefs.TreeDegree,
		LeafCapacity: e.prefs.LeafCapacity,
		Incremental:  true, // the dynamic setting forbids full preprocessing
	})
	if errors.Is(err, hetree.ErrNoValues) {
		return nil, fmt.Errorf("core: property %s has no numeric or temporal values", prop)
	}
	if err != nil {
		return nil, fmt.Errorf("core: build hierarchy for %s: %w", prop, err)
	}
	e.trees[prop] = tree
	return tree, nil
}

// NumericOverview renders a property's distribution at the deepest
// hierarchy level that fits the pixel budget.
func (e *Explorer) NumericOverview(prop rdf.IRI) (*vis.Spec, error) {
	tree, err := e.NumericHierarchy(prop)
	if err != nil {
		return nil, err
	}
	// A bar per node; budget by display width.
	budget := e.prefs.PixelBudget.Width / 4
	if budget < 1 {
		budget = 1
	}
	nodes := tree.LevelFor(budget)
	var pts []vis.DataPoint
	for _, n := range nodes {
		pts = append(pts, vis.DataPoint{
			Label: fmt.Sprintf("[%.4g,%.4g]", n.Lo, n.Hi),
			X:     (n.Lo + n.Hi) / 2,
			Y:     float64(n.Count),
		})
	}
	return &vis.Spec{
		Type:   vis.Histogram,
		Title:  fmt.Sprintf("%s — %d objects in %d groups", prop.LocalName(), tree.Len(), len(nodes)),
		Series: []vis.Series{{Name: prop.LocalName(), Points: pts}},
	}, nil
}

// ZoomNumeric drills into a value range of a property, again within budget.
func (e *Explorer) ZoomNumeric(prop rdf.IRI, lo, hi float64) ([]*hetree.Node, error) {
	tree, err := e.NumericHierarchy(prop)
	if err != nil {
		return nil, err
	}
	budget := e.prefs.PixelBudget.Width / 4
	return tree.RangeQuery(lo, hi, budget), nil
}

// ReducePoints reduces a 2-D point set to the pixel budget using the
// session's reduction strategy, reporting what was done.
func (e *Explorer) ReducePoints(pts []sampling.Point) ([]sampling.Point, string) {
	budget := e.prefs.PixelBudget.Pixels() / 100 // marks are ~100 px incl. spacing
	if budget < 1 {
		budget = 1
	}
	if len(pts) <= budget || e.prefs.Reduction == NoReduction {
		return pts, "none"
	}
	switch e.prefs.Reduction {
	case PreferAggregation:
		return e.binPoints(pts, budget), "aggregation"
	case PreferSampling:
		out, err := sampling.VisualizationAware(pts, budget,
			e.prefs.PixelBudget.Width, e.prefs.PixelBudget.Height, e.prefs.Seed)
		if err != nil {
			return pts, "none"
		}
		return out, "sampling"
	default:
		// Auto: aggregation preserves density structure for overviews.
		return e.binPoints(pts, budget), "aggregation"
	}
}

func (e *Explorer) binPoints(pts []sampling.Point, budget int) []sampling.Point {
	side := 1
	for side*side < budget {
		side++
	}
	xs := make([]float64, len(pts))
	ys := make([]float64, len(pts))
	for i, p := range pts {
		xs[i], ys[i] = p.X, p.Y
	}
	grid, err := aggregate.Bin2D(xs, ys, side, side)
	if err != nil {
		return pts
	}
	var out []sampling.Point
	for _, c := range grid.NonEmpty() {
		out = append(out, sampling.Point{
			X: grid.MinX + (float64(c.XBin)+0.5)*(grid.MaxX-grid.MinX)/float64(side),
			Y: grid.MinY + (float64(c.YBin)+0.5)*(grid.MaxY-grid.MinY)/float64(side),
		})
	}
	return out
}

// RecommendFor profiles the results of a SPARQL query and ranks
// visualizations for them — the LDVM pipeline driven from a query.
func (e *Explorer) RecommendFor(query string) ([]recommend.Recommendation, *ldvm.Analytical, error) {
	abs, err := ldvm.SPARQLAnalyzer{Label: "adhoc", Query: query}.Analyze(e.st)
	if err != nil {
		return nil, nil, err
	}
	return recommend.Recommend(abs.Profiles), abs, nil
}

// Visualize runs the full LDVM pipeline for a query: analyze, recommend,
// bind, render.
func (e *Explorer) Visualize(query string) (*vis.Spec, string, error) {
	p := &ldvm.Pipeline{
		Source:   e.st,
		Analyzer: ldvm.SPARQLAnalyzer{Label: "adhoc", Query: query},
	}
	return p.Run()
}
