package core

import (
	"strings"
	"testing"

	"github.com/lodviz/lodviz/internal/gen"
	"github.com/lodviz/lodviz/internal/rdf"
	"github.com/lodviz/lodviz/internal/sampling"
	"github.com/lodviz/lodviz/internal/vis"
)

func miniExplorer() *Explorer {
	return NewExplorer(gen.MiniLODStore(), DefaultPreferences())
}

func TestOverview(t *testing.T) {
	e := miniExplorer()
	o := e.Overview()
	if o.Triples == 0 || o.Terms == 0 {
		t.Fatalf("overview = %+v", o)
	}
	if len(o.Classes) == 0 {
		t.Fatal("no classes in overview")
	}
	// City (5 instances) should rank above Country (3).
	var cityIdx, countryIdx int = -1, -1
	for i, c := range o.Classes {
		switch c.Key {
		case "City":
			cityIdx = i
		case "Country":
			countryIdx = i
		}
	}
	if cityIdx < 0 || countryIdx < 0 || cityIdx > countryIdx {
		t.Errorf("class ranking: %v", o.Classes)
	}
}

func TestQueryThroughExplorer(t *testing.T) {
	e := miniExplorer()
	res, err := e.Query(`
PREFIX ex: <http://lodviz.example.org/mini/>
SELECT ?c WHERE { ?c a ex:City }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Errorf("cities = %d", len(res.Rows))
	}
}

func TestSearchAndDetails(t *testing.T) {
	e := miniExplorer()
	hits := e.Search("Athens", 5)
	if len(hits) == 0 {
		t.Fatal("no hits for Athens")
	}
	d := e.Details(hits[0].Entity)
	if d.Label != "Athens" {
		t.Errorf("label = %q", d.Label)
	}
	if len(d.Outgoing) == 0 {
		t.Error("no outgoing statements")
	}
	// Athens is the object of livesIn statements.
	if len(d.Incoming) == 0 {
		t.Error("no incoming statements")
	}
}

func TestFacetsIntegration(t *testing.T) {
	e := miniExplorer()
	s := e.Facets()
	if s.Count() == 0 {
		t.Fatal("empty facet session")
	}
}

func TestNumericHierarchyAndOverview(t *testing.T) {
	e := miniExplorer()
	prop := rdf.IRI("http://lodviz.example.org/mini/population")
	tree, err := e.NumericHierarchy(prop)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Len() != 8 { // 5 cities + 3 countries
		t.Errorf("tree items = %d", tree.Len())
	}
	// Cached on second call.
	tree2, _ := e.NumericHierarchy(prop)
	if tree != tree2 {
		t.Error("hierarchy not cached")
	}
	spec, err := e.NumericOverview(prop)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Type != vis.Histogram || spec.PointCount() == 0 {
		t.Errorf("overview spec = %+v", spec)
	}
}

func TestNumericHierarchyErrors(t *testing.T) {
	e := miniExplorer()
	if _, err := e.NumericHierarchy("http://lodviz.example.org/mini/nope"); err == nil {
		t.Error("missing property accepted")
	}
}

func TestZoomNumeric(t *testing.T) {
	e := miniExplorer()
	prop := rdf.IRI("http://lodviz.example.org/mini/population")
	nodes, err := e.ZoomNumeric(prop, 0, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for _, n := range nodes {
		count += n.Count
	}
	if count < 3 { // at least the cities under 1M
		t.Errorf("zoom covered %d items", count)
	}
}

func TestSetPreferencesAdaptsTrees(t *testing.T) {
	e := miniExplorer()
	prop := rdf.IRI("http://lodviz.example.org/mini/population")
	if _, err := e.NumericHierarchy(prop); err != nil {
		t.Fatal(err)
	}
	p := e.Preferences()
	p.TreeDegree = 8
	p.LeafCapacity = 2
	if err := e.SetPreferences(p); err != nil {
		t.Fatal(err)
	}
	tree, _ := e.NumericHierarchy(prop)
	if tree.MaterializedNodes() != 1 {
		t.Errorf("tree not reset by adaptation: %d nodes", tree.MaterializedNodes())
	}
	// Invalid preference propagates an error.
	p.TreeDegree = 1
	if err := e.SetPreferences(p); err == nil {
		t.Error("invalid degree accepted")
	}
}

func TestReducePointsStrategies(t *testing.T) {
	prefs := DefaultPreferences()
	prefs.PixelBudget = vis.PixelBudget{Width: 100, Height: 100} // budget = 100 points
	st := gen.MiniLODStore()

	var pts []sampling.Point
	for i := 0; i < 5000; i++ {
		pts = append(pts, sampling.Point{X: float64(i % 70), Y: float64(i / 70)})
	}

	for _, tc := range []struct {
		red  Reduction
		want string
	}{
		{Auto, "aggregation"},
		{PreferAggregation, "aggregation"},
		{PreferSampling, "sampling"},
		{NoReduction, "none"},
	} {
		prefs.Reduction = tc.red
		e := NewExplorer(st, prefs)
		out, how := e.ReducePoints(pts)
		if how != tc.want {
			t.Errorf("reduction %v: how = %s, want %s", tc.red, how, tc.want)
		}
		if tc.red != NoReduction && len(out) > 150 {
			t.Errorf("reduction %v: %d points remain", tc.red, len(out))
		}
		if tc.red == NoReduction && len(out) != len(pts) {
			t.Error("NoReduction changed the data")
		}
	}
}

func TestReduceSmallInputPassesThrough(t *testing.T) {
	e := miniExplorer()
	pts := []sampling.Point{{X: 1, Y: 1}}
	out, how := e.ReducePoints(pts)
	if how != "none" || len(out) != 1 {
		t.Errorf("small input reduced: %s %d", how, len(out))
	}
}

func TestRecommendForAndVisualize(t *testing.T) {
	e := miniExplorer()
	q := `
PREFIX ex: <http://lodviz.example.org/mini/>
PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#>
SELECT ?label ?population WHERE { ?c a ex:City ; rdfs:label ?label ; ex:population ?population . }`
	recs, abs, err := e.RecommendFor(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 || len(abs.Rows) != 5 {
		t.Fatalf("recs=%d rows=%d", len(recs), len(abs.Rows))
	}
	spec, svg, err := e.Visualize(q)
	if err != nil {
		t.Fatal(err)
	}
	if spec.PointCount() == 0 || !strings.HasPrefix(svg, "<svg") {
		t.Error("visualization pipeline produced nothing")
	}
}

func TestZeroPreferencesGetDefaults(t *testing.T) {
	e := NewExplorer(gen.MiniLODStore(), Preferences{})
	if e.Preferences().PixelBudget.Pixels() == 0 {
		t.Error("zero preferences not defaulted")
	}
}
