// Package crack implements database cracking (Idreos et al., CIDR 2007 —
// ref [67] in the survey), the adaptive indexing strategy [144] applies to
// exploratory workloads: the index is built incrementally as a side effect
// of the queries actually asked, so the first query pays almost nothing and
// hot regions of the data get progressively more organized.
//
// The package also ships the two baselines the E6 experiment compares
// against: a full scan and a fully sorted index built up front.
package crack

import (
	"errors"
	"sort"
)

// ErrEmptyColumn is returned when constructing over no values.
var ErrEmptyColumn = errors.New("crack: empty column")

// Column is a crackable column: values are physically reorganized
// (partitioned) a little more by every range query.
type Column struct {
	vals []float64
	// bounds are crack positions: bounds[i].pos is the index of the first
	// element >= bounds[i].value. Sorted by value.
	bounds []bound
	// swaps counts element swaps, the physical-work metric.
	swaps int
}

type bound struct {
	value float64
	pos   int
}

// New copies values into a cracker column.
func New(values []float64) (*Column, error) {
	if len(values) == 0 {
		return nil, ErrEmptyColumn
	}
	vals := make([]float64, len(values))
	copy(vals, values)
	return &Column{vals: vals}, nil
}

// Len returns the column size.
func (c *Column) Len() int { return len(c.vals) }

// Swaps returns the cumulative number of element swaps performed by
// cracking so far.
func (c *Column) Swaps() int { return c.swaps }

// Pieces returns the number of contiguous pieces the column is currently
// cracked into.
func (c *Column) Pieces() int { return len(c.bounds) + 1 }

// crack partitions the piece containing v so that elements < v precede
// elements >= v, records the crack position, and returns it.
func (c *Column) crack(v float64) int {
	// Find existing bound, or the piece [lo, hi) to partition.
	i := sort.Search(len(c.bounds), func(k int) bool { return c.bounds[k].value >= v })
	if i < len(c.bounds) && c.bounds[i].value == v {
		return c.bounds[i].pos
	}
	lo := 0
	if i > 0 {
		lo = c.bounds[i-1].pos
	}
	hi := len(c.vals)
	if i < len(c.bounds) {
		hi = c.bounds[i].pos
	}
	// Hoare-style partition of vals[lo:hi] around v.
	p := c.partition(lo, hi, v)
	c.bounds = append(c.bounds, bound{})
	copy(c.bounds[i+1:], c.bounds[i:])
	c.bounds[i] = bound{value: v, pos: p}
	return p
}

func (c *Column) partition(lo, hi int, v float64) int {
	l, r := lo, hi-1
	for l <= r {
		for l <= r && c.vals[l] < v {
			l++
		}
		for l <= r && c.vals[r] >= v {
			r--
		}
		if l < r {
			c.vals[l], c.vals[r] = c.vals[r], c.vals[l]
			c.swaps++
			l++
			r--
		}
	}
	return l
}

// Range returns all values in [lo, hi), cracking the column at both bounds.
// The returned slice aliases the column; callers must not mutate it.
func (c *Column) Range(lo, hi float64) []float64 {
	if hi < lo {
		lo, hi = hi, lo
	}
	p1 := c.crack(lo)
	p2 := c.crack(hi)
	return c.vals[p1:p2]
}

// Count returns the number of values in [lo, hi).
func (c *Column) Count(lo, hi float64) int { return len(c.Range(lo, hi)) }

// Sum returns the sum of values in [lo, hi).
func (c *Column) Sum(lo, hi float64) float64 {
	var s float64
	for _, v := range c.Range(lo, hi) {
		s += v
	}
	return s
}

// CheckInvariant verifies that every piece's values respect the crack
// bounds. It is exported for property tests and costs O(n).
func (c *Column) CheckInvariant() bool {
	prevPos := 0
	var prevVal float64
	hasPrev := false
	for _, b := range c.bounds {
		if b.pos < prevPos || b.pos > len(c.vals) {
			return false
		}
		for i := prevPos; i < b.pos; i++ {
			if hasPrev && c.vals[i] < prevVal {
				return false
			}
			if c.vals[i] >= b.value {
				return false
			}
		}
		prevPos, prevVal, hasPrev = b.pos, b.value, true
	}
	for i := prevPos; i < len(c.vals); i++ {
		if hasPrev && c.vals[i] < prevVal {
			return false
		}
	}
	return true
}

// ScanColumn is the no-index baseline: every range query is a full scan.
type ScanColumn struct{ vals []float64 }

// NewScan copies values into a scan-only column.
func NewScan(values []float64) *ScanColumn {
	vals := make([]float64, len(values))
	copy(vals, values)
	return &ScanColumn{vals: vals}
}

// Range returns all values in [lo, hi) by scanning.
func (s *ScanColumn) Range(lo, hi float64) []float64 {
	var out []float64
	for _, v := range s.vals {
		if v >= lo && v < hi {
			out = append(out, v)
		}
	}
	return out
}

// Count returns the number of values in [lo, hi) by scanning.
func (s *ScanColumn) Count(lo, hi float64) int {
	n := 0
	for _, v := range s.vals {
		if v >= lo && v < hi {
			n++
		}
	}
	return n
}

// SortedColumn is the full-index baseline: pay a complete sort up front,
// then answer with binary search.
type SortedColumn struct{ vals []float64 }

// NewSorted copies and fully sorts the values.
func NewSorted(values []float64) *SortedColumn {
	vals := make([]float64, len(values))
	copy(vals, values)
	sort.Float64s(vals)
	return &SortedColumn{vals: vals}
}

// Range returns all values in [lo, hi) via binary search.
func (s *SortedColumn) Range(lo, hi float64) []float64 {
	i := sort.SearchFloat64s(s.vals, lo)
	j := sort.SearchFloat64s(s.vals, hi)
	return s.vals[i:j]
}

// Count returns the number of values in [lo, hi) via binary search.
func (s *SortedColumn) Count(lo, hi float64) int {
	return sort.SearchFloat64s(s.vals, hi) - sort.SearchFloat64s(s.vals, lo)
}
