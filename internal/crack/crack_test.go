package crack

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func randomValues(seed int64, n int) []float64 {
	rng := rand.New(rand.NewSource(seed))
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = rng.Float64() * 1000
	}
	return vals
}

func TestNewEmpty(t *testing.T) {
	if _, err := New(nil); err != ErrEmptyColumn {
		t.Errorf("err = %v, want ErrEmptyColumn", err)
	}
}

func TestRangeMatchesScan(t *testing.T) {
	vals := randomValues(1, 5000)
	c, err := New(vals)
	if err != nil {
		t.Fatal(err)
	}
	scan := NewScan(vals)
	queries := [][2]float64{{100, 200}, {0, 1000}, {500, 501}, {900, 1200}, {-10, 50}, {200, 100}}
	for _, q := range queries {
		lo, hi := q[0], q[1]
		if lo > hi {
			lo, hi = hi, lo
		}
		got := c.Count(q[0], q[1])
		want := scan.Count(lo, hi)
		if got != want {
			t.Errorf("Count(%g,%g) = %d, want %d", q[0], q[1], got, want)
		}
	}
	if !c.CheckInvariant() {
		t.Error("invariant violated after queries")
	}
}

func TestSumMatchesScan(t *testing.T) {
	vals := randomValues(2, 1000)
	c, _ := New(vals)
	scan := NewScan(vals)
	var want float64
	for _, v := range scan.Range(100, 400) {
		want += v
	}
	got := c.Sum(100, 400)
	if diff := got - want; diff > 1e-6 || diff < -1e-6 {
		t.Errorf("Sum = %g, want %g", got, want)
	}
}

func TestPiecesGrowWithQueries(t *testing.T) {
	c, _ := New(randomValues(3, 10000))
	if c.Pieces() != 1 {
		t.Errorf("initial pieces = %d", c.Pieces())
	}
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 50; i++ {
		lo := rng.Float64() * 900
		c.Range(lo, lo+50)
	}
	if c.Pieces() < 20 {
		t.Errorf("pieces after 50 queries = %d, expected index to accumulate", c.Pieces())
	}
	if !c.CheckInvariant() {
		t.Error("invariant violated")
	}
}

func TestRepeatedQueryIsStable(t *testing.T) {
	c, _ := New(randomValues(5, 2000))
	first := c.Count(250, 750)
	swapsAfterFirst := c.Swaps()
	for i := 0; i < 10; i++ {
		if got := c.Count(250, 750); got != first {
			t.Fatalf("repeat query changed answer: %d != %d", got, first)
		}
	}
	if c.Swaps() != swapsAfterFirst {
		t.Errorf("repeated identical query did %d extra swaps", c.Swaps()-swapsAfterFirst)
	}
}

func TestCrackingConvergesTowardSorted(t *testing.T) {
	vals := randomValues(6, 4000)
	c, _ := New(vals)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 400; i++ {
		lo := rng.Float64() * 1000
		c.Range(lo, lo+rng.Float64()*100)
	}
	// After many cracks, pieces are small; count strictly-descending
	// adjacent pairs as a sortedness proxy.
	inversions := 0
	for i := 1; i < len(c.vals); i++ {
		if c.vals[i] < c.vals[i-1] {
			inversions++
		}
	}
	if inversions > len(c.vals)/2 {
		t.Errorf("inversions = %d of %d — column not converging", inversions, len(c.vals))
	}
}

// Property: cracking answers every query sequence exactly like the scan and
// sorted baselines, and preserves the multiset of values.
func TestCrackEquivalenceProperty(t *testing.T) {
	f := func(seed int64, q8 uint8) bool {
		vals := randomValues(seed, 300)
		c, err := New(vals)
		if err != nil {
			return false
		}
		scan := NewScan(vals)
		sorted := NewSorted(vals)
		rng := rand.New(rand.NewSource(seed ^ 0x5a5a))
		for i := 0; i < int(q8)%20+1; i++ {
			lo := rng.Float64() * 1000
			hi := lo + rng.Float64()*200
			if c.Count(lo, hi) != scan.Count(lo, hi) || scan.Count(lo, hi) != sorted.Count(lo, hi) {
				return false
			}
		}
		if !c.CheckInvariant() {
			return false
		}
		// Multiset preservation.
		a := append([]float64(nil), c.vals...)
		b := append([]float64(nil), vals...)
		sort.Float64s(a)
		sort.Float64s(b)
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestBaselines(t *testing.T) {
	vals := []float64{5, 1, 4, 2, 3}
	scan := NewScan(vals)
	if got := scan.Count(2, 5); got != 3 {
		t.Errorf("scan Count = %d, want 3 (2,3,4)", got)
	}
	sorted := NewSorted(vals)
	if got := sorted.Count(2, 5); got != 3 {
		t.Errorf("sorted Count = %d", got)
	}
	r := sorted.Range(2, 5)
	if len(r) != 3 || r[0] != 2 || r[2] != 4 {
		t.Errorf("sorted Range = %v", r)
	}
}

func TestDuplicateHeavyColumn(t *testing.T) {
	vals := make([]float64, 1000)
	for i := range vals {
		vals[i] = float64(i % 5)
	}
	c, _ := New(vals)
	scan := NewScan(vals)
	for lo := 0.0; lo < 5; lo++ {
		if c.Count(lo, lo+1) != scan.Count(lo, lo+1) {
			t.Errorf("dup Count(%g) mismatch", lo)
		}
	}
	if !c.CheckInvariant() {
		t.Error("invariant violated with duplicates")
	}
}
