// Package datacube supports the W3C RDF Data Cube vocabulary, the substrate
// of the survey's statistical Linked Data systems (§3.3: CubeViz, Payola
// Data Cube, OpenCube, LDCE, [106]): it parses data structure definitions,
// extracts observations, slices cubes by dimension bindings, and pivots
// slices into the two-dimensional tables those browsers render.
package datacube

import (
	"errors"
	"fmt"
	"sort"

	"github.com/lodviz/lodviz/internal/rdf"
	"github.com/lodviz/lodviz/internal/store"
)

// Component is one dimension or measure of a cube.
type Component struct {
	Property rdf.IRI
	// IsMeasure distinguishes measures from dimensions.
	IsMeasure bool
}

// Cube is a parsed RDF data cube.
type Cube struct {
	// IRI identifies the qb:DataSet.
	IRI rdf.IRI
	// Dimensions and Measures, in discovery order.
	Dimensions []rdf.IRI
	Measures   []rdf.IRI
	// Observations hold one value per component.
	Observations []Observation
}

// Observation is one qb:Observation's bindings.
type Observation struct {
	// Dims maps dimension property → value.
	Dims map[rdf.IRI]rdf.Term
	// Values maps measure property → numeric value.
	Values map[rdf.IRI]float64
}

// ErrNoCube is returned when the store declares no qb:DataSet.
var ErrNoCube = errors.New("datacube: no qb:DataSet found")

// Discover lists the qb:DataSet IRIs in the store.
func Discover(st *store.Store) []rdf.IRI {
	var out []rdf.IRI
	for _, s := range st.Subjects(rdf.RDFType, rdf.QBDataSet) {
		if iri, ok := s.(rdf.IRI); ok {
			out = append(out, iri)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Load parses one cube: its structure definition and observations.
func Load(st *store.Store, dataset rdf.IRI) (*Cube, error) {
	if !st.Contains(rdf.Triple{S: dataset, P: rdf.RDFType, O: rdf.QBDataSet}) {
		return nil, fmt.Errorf("datacube: %s: %w", dataset, ErrNoCube)
	}
	c := &Cube{IRI: dataset}
	// Structure: dataset qb:structure ?dsd . ?dsd qb:component ?c .
	// ?c qb:dimension|qb:measure ?prop .
	for _, dsd := range st.Objects(dataset, rdf.QBStructure) {
		for _, comp := range st.Objects(dsd, rdf.QBComponent) {
			for _, d := range st.Objects(comp, rdf.QBDimension) {
				if iri, ok := d.(rdf.IRI); ok {
					c.Dimensions = append(c.Dimensions, iri)
				}
			}
			for _, m := range st.Objects(comp, rdf.QBMeasure) {
				if iri, ok := m.(rdf.IRI); ok {
					c.Measures = append(c.Measures, iri)
				}
			}
		}
	}
	sort.Slice(c.Dimensions, func(i, j int) bool { return c.Dimensions[i] < c.Dimensions[j] })
	sort.Slice(c.Measures, func(i, j int) bool { return c.Measures[i] < c.Measures[j] })
	if len(c.Dimensions) == 0 || len(c.Measures) == 0 {
		return nil, fmt.Errorf("datacube: %s: structure has %d dimensions, %d measures",
			dataset, len(c.Dimensions), len(c.Measures))
	}
	// Observations.
	dimSet := map[rdf.IRI]bool{}
	for _, d := range c.Dimensions {
		dimSet[d] = true
	}
	measSet := map[rdf.IRI]bool{}
	for _, m := range c.Measures {
		measSet[m] = true
	}
	for _, obsT := range st.Subjects(rdf.QBDataSetProp, dataset) {
		obs := Observation{Dims: map[rdf.IRI]rdf.Term{}, Values: map[rdf.IRI]float64{}}
		complete := true
		st.ForEach(store.Pattern{S: obsT}, func(t rdf.Triple) bool {
			switch {
			case dimSet[t.P]:
				obs.Dims[t.P] = t.O
			case measSet[t.P]:
				if l, ok := t.O.(rdf.Literal); ok {
					if v, ok := l.Float(); ok {
						obs.Values[t.P] = v
					}
				}
			}
			return true
		})
		for _, d := range c.Dimensions {
			if _, ok := obs.Dims[d]; !ok {
				complete = false
			}
		}
		if complete && len(obs.Values) > 0 {
			c.Observations = append(c.Observations, obs)
		}
	}
	return c, nil
}

// DimensionValues returns the distinct values of a dimension, sorted.
func (c *Cube) DimensionValues(dim rdf.IRI) []rdf.Term {
	seen := map[rdf.Term]struct{}{}
	var out []rdf.Term
	for _, o := range c.Observations {
		if v, ok := o.Dims[dim]; ok {
			if _, dup := seen[v]; !dup {
				seen[v] = struct{}{}
				out = append(out, v)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return rdf.Compare(out[i], out[j]) < 0 })
	return out
}

// Slice fixes some dimensions to values and returns the matching
// observations — qb:Slice materialized on demand.
func (c *Cube) Slice(fixed map[rdf.IRI]rdf.Term) []Observation {
	var out []Observation
	for _, o := range c.Observations {
		match := true
		for d, v := range fixed {
			if o.Dims[d] != v {
				match = false
				break
			}
		}
		if match {
			out = append(out, o)
		}
	}
	return out
}

// PivotTable is a 2-D aggregation of a cube: rows × columns of summed
// measure values — what CubeViz and the OpenCube Browser render.
type PivotTable struct {
	RowDim, ColDim rdf.IRI
	Measure        rdf.IRI
	RowKeys        []rdf.Term
	ColKeys        []rdf.Term
	// Cells[r][c] is the summed measure for RowKeys[r] × ColKeys[c].
	Cells [][]float64
}

// Pivot builds a two-dimensional table over rowDim × colDim for one
// measure, with remaining dimensions optionally fixed.
func (c *Cube) Pivot(rowDim, colDim, measure rdf.IRI, fixed map[rdf.IRI]rdf.Term) (*PivotTable, error) {
	if !c.hasDimension(rowDim) || !c.hasDimension(colDim) {
		return nil, fmt.Errorf("datacube: unknown dimension in pivot (%s × %s)", rowDim, colDim)
	}
	if !c.hasMeasure(measure) {
		return nil, fmt.Errorf("datacube: unknown measure %s", measure)
	}
	obs := c.Slice(fixed)
	pt := &PivotTable{RowDim: rowDim, ColDim: colDim, Measure: measure}
	rowIdx := map[rdf.Term]int{}
	colIdx := map[rdf.Term]int{}
	for _, o := range obs {
		r, rok := o.Dims[rowDim]
		cl, cok := o.Dims[colDim]
		if !rok || !cok {
			continue
		}
		if _, ok := rowIdx[r]; !ok {
			rowIdx[r] = len(pt.RowKeys)
			pt.RowKeys = append(pt.RowKeys, r)
		}
		if _, ok := colIdx[cl]; !ok {
			colIdx[cl] = len(pt.ColKeys)
			pt.ColKeys = append(pt.ColKeys, cl)
		}
	}
	sortTerms(pt.RowKeys, rowIdx)
	sortTerms(pt.ColKeys, colIdx)
	pt.Cells = make([][]float64, len(pt.RowKeys))
	for i := range pt.Cells {
		pt.Cells[i] = make([]float64, len(pt.ColKeys))
	}
	for _, o := range obs {
		r, rok := o.Dims[rowDim]
		cl, cok := o.Dims[colDim]
		if !rok || !cok {
			continue
		}
		pt.Cells[rowIdx[r]][colIdx[cl]] += o.Values[measure]
	}
	return pt, nil
}

func sortTerms(keys []rdf.Term, idx map[rdf.Term]int) {
	sort.Slice(keys, func(i, j int) bool { return rdf.Compare(keys[i], keys[j]) < 0 })
	for i, k := range keys {
		idx[k] = i
	}
}

func (c *Cube) hasDimension(d rdf.IRI) bool {
	for _, x := range c.Dimensions {
		if x == d {
			return true
		}
	}
	return false
}

func (c *Cube) hasMeasure(m rdf.IRI) bool {
	for _, x := range c.Measures {
		if x == m {
			return true
		}
	}
	return false
}

// Totals sums a measure grouped by one dimension — the series behind
// CubeViz's bar/line/pie charts.
func (c *Cube) Totals(dim, measure rdf.IRI) ([]rdf.Term, []float64) {
	idx := map[rdf.Term]int{}
	var keys []rdf.Term
	var vals []float64
	for _, o := range c.Observations {
		d, ok := o.Dims[dim]
		if !ok {
			continue
		}
		i, ok := idx[d]
		if !ok {
			i = len(keys)
			idx[d] = i
			keys = append(keys, d)
			vals = append(vals, 0)
		}
		vals[i] += o.Values[measure]
	}
	// Sort by key for stable output.
	order := make([]int, len(keys))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return rdf.Compare(keys[order[a]], keys[order[b]]) < 0 })
	outK := make([]rdf.Term, len(keys))
	outV := make([]float64, len(keys))
	for i, o := range order {
		outK[i] = keys[o]
		outV[i] = vals[o]
	}
	return outK, outV
}
