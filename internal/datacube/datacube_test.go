package datacube

import (
	"testing"

	"github.com/lodviz/lodviz/internal/rdf"
	"github.com/lodviz/lodviz/internal/store"
	"github.com/lodviz/lodviz/internal/turtle"
)

// demographics is a small qb dataset: population by (region, year).
const demographics = `
@prefix qb: <http://purl.org/linked-data/cube#> .
@prefix ex: <http://example.org/> .

ex:pop a qb:DataSet ; qb:structure ex:dsd .
ex:dsd a qb:DataStructureDefinition ;
  qb:component [ qb:dimension ex:region ] ;
  qb:component [ qb:dimension ex:year ] ;
  qb:component [ qb:measure ex:population ] .

ex:o1 qb:dataSet ex:pop ; ex:region ex:attica ; ex:year 2010 ; ex:population 3800000 .
ex:o2 qb:dataSet ex:pop ; ex:region ex:attica ; ex:year 2015 ; ex:population 3750000 .
ex:o3 qb:dataSet ex:pop ; ex:region ex:crete  ; ex:year 2010 ; ex:population 620000 .
ex:o4 qb:dataSet ex:pop ; ex:region ex:crete  ; ex:year 2015 ; ex:population 630000 .
ex:incomplete qb:dataSet ex:pop ; ex:region ex:crete ; ex:population 1 .
`

func ex(s string) rdf.IRI { return rdf.IRI("http://example.org/" + s) }

func cubeStore(t *testing.T) *store.Store {
	t.Helper()
	ts, err := turtle.ParseString(demographics)
	if err != nil {
		t.Fatal(err)
	}
	st, err := store.Load(ts)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestDiscover(t *testing.T) {
	st := cubeStore(t)
	cubes := Discover(st)
	if len(cubes) != 1 || cubes[0] != ex("pop") {
		t.Errorf("Discover = %v", cubes)
	}
}

func TestLoadStructure(t *testing.T) {
	st := cubeStore(t)
	c, err := Load(st, ex("pop"))
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Dimensions) != 2 || len(c.Measures) != 1 {
		t.Fatalf("structure = %d dims, %d measures", len(c.Dimensions), len(c.Measures))
	}
	// Incomplete observation (missing year) must be dropped.
	if len(c.Observations) != 4 {
		t.Errorf("observations = %d, want 4", len(c.Observations))
	}
}

func TestLoadMissingCube(t *testing.T) {
	st := cubeStore(t)
	if _, err := Load(st, ex("nope")); err == nil {
		t.Error("missing cube accepted")
	}
}

func TestDimensionValues(t *testing.T) {
	st := cubeStore(t)
	c, _ := Load(st, ex("pop"))
	regions := c.DimensionValues(ex("region"))
	if len(regions) != 2 {
		t.Errorf("regions = %v", regions)
	}
	years := c.DimensionValues(ex("year"))
	if len(years) != 2 {
		t.Errorf("years = %v", years)
	}
}

func TestSlice(t *testing.T) {
	st := cubeStore(t)
	c, _ := Load(st, ex("pop"))
	attica := c.Slice(map[rdf.IRI]rdf.Term{ex("region"): ex("attica")})
	if len(attica) != 2 {
		t.Errorf("attica slice = %d obs", len(attica))
	}
	empty := c.Slice(map[rdf.IRI]rdf.Term{ex("region"): ex("mars")})
	if len(empty) != 0 {
		t.Errorf("mars slice = %d obs", len(empty))
	}
	all := c.Slice(nil)
	if len(all) != 4 {
		t.Errorf("unfixed slice = %d obs", len(all))
	}
}

func TestPivot(t *testing.T) {
	st := cubeStore(t)
	c, _ := Load(st, ex("pop"))
	pt, err := c.Pivot(ex("region"), ex("year"), ex("population"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(pt.RowKeys) != 2 || len(pt.ColKeys) != 2 {
		t.Fatalf("pivot = %d×%d", len(pt.RowKeys), len(pt.ColKeys))
	}
	// attica sorts before crete; 2010 before 2015.
	if pt.Cells[0][0] != 3800000 {
		t.Errorf("cell[0][0] = %g", pt.Cells[0][0])
	}
	if pt.Cells[1][1] != 630000 {
		t.Errorf("cell[1][1] = %g", pt.Cells[1][1])
	}
}

func TestPivotErrors(t *testing.T) {
	st := cubeStore(t)
	c, _ := Load(st, ex("pop"))
	if _, err := c.Pivot(ex("nope"), ex("year"), ex("population"), nil); err == nil {
		t.Error("unknown dimension accepted")
	}
	if _, err := c.Pivot(ex("region"), ex("year"), ex("nope"), nil); err == nil {
		t.Error("unknown measure accepted")
	}
}

func TestTotals(t *testing.T) {
	st := cubeStore(t)
	c, _ := Load(st, ex("pop"))
	keys, vals := c.Totals(ex("region"), ex("population"))
	if len(keys) != 2 {
		t.Fatalf("totals keys = %v", keys)
	}
	// attica: 3.8M + 3.75M; crete: 0.62M + 0.63M.
	if vals[0] != 7550000 || vals[1] != 1250000 {
		t.Errorf("totals = %v", vals)
	}
}

func TestLoadRejectsEmptyStructure(t *testing.T) {
	src := `
@prefix qb: <http://purl.org/linked-data/cube#> .
@prefix ex: <http://example.org/> .
ex:broken a qb:DataSet .
`
	ts, _ := turtle.ParseString(src)
	st, _ := store.Load(ts)
	if _, err := Load(st, ex("broken")); err == nil {
		t.Error("structure-less cube accepted")
	}
}
