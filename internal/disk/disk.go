// Package disk provides the external-memory substrate lodviz uses to escape
// the "load everything in main memory" assumption the survey criticizes in
// Section 4: a file-backed page store with fixed 4 KiB pages and a buffer
// manager with LRU eviction and pin/unpin semantics.
//
// graphVizdb-style visualization tiles (package spatial) store their records
// through this layer, so only the pages backing the current viewport are
// resident.
package disk

import (
	"errors"
	"fmt"
	"os"
	"sync"
)

// PageSize is the fixed page size in bytes.
const PageSize = 4096

// PageID identifies a page within a store.
type PageID uint32

// ErrPageBounds is returned for out-of-range page reads.
var ErrPageBounds = errors.New("disk: page id out of range")

// PageStore is a file-backed array of pages.
type PageStore struct {
	mu    sync.Mutex
	f     *os.File
	pages int
	// Reads and Writes count physical page I/Os.
	Reads, Writes int
}

// Create creates a fresh page store at path, truncating any existing file.
// Use OpenExisting to reopen a store without destroying it.
func Create(path string) (*PageStore, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("disk: create %s: %w", path, err)
	}
	return &PageStore{f: f}, nil
}

// OpenExisting opens a page store previously written at path, recovering the
// allocated page count from the file size. A size that is not a whole number
// of pages indicates a torn write or foreign file and is rejected.
func OpenExisting(path string) (*PageStore, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("disk: open %s: %w", path, err)
	}
	fi, err := f.Stat()
	if err != nil {
		// Abandoning the fd; the stat error wins.
		_ = f.Close()
		return nil, fmt.Errorf("disk: stat %s: %w", path, err)
	}
	if fi.Size()%PageSize != 0 {
		// Abandoning the fd; the store was never usable.
		_ = f.Close()
		return nil, fmt.Errorf("disk: %s: size %d is not a multiple of the %d-byte page size", path, fi.Size(), PageSize)
	}
	return &PageStore{f: f, pages: int(fi.Size() / PageSize)}, nil
}

// Close closes the backing file.
func (ps *PageStore) Close() error {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	if err := ps.f.Close(); err != nil {
		return fmt.Errorf("disk: close: %w", err)
	}
	return nil
}

// Alloc appends a zeroed page and returns its id.
func (ps *PageStore) Alloc() (PageID, error) {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	id := PageID(ps.pages)
	ps.pages++
	var zero [PageSize]byte
	if _, err := ps.f.WriteAt(zero[:], int64(id)*PageSize); err != nil {
		return 0, fmt.Errorf("disk: alloc page %d: %w", id, err)
	}
	ps.Writes++
	return id, nil
}

// NumPages returns the number of allocated pages.
func (ps *PageStore) NumPages() int {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	return ps.pages
}

// Read fills buf (length PageSize) with the page's content.
func (ps *PageStore) Read(id PageID, buf []byte) error {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	if int(id) >= ps.pages {
		return ErrPageBounds
	}
	if _, err := ps.f.ReadAt(buf[:PageSize], int64(id)*PageSize); err != nil {
		return fmt.Errorf("disk: read page %d: %w", id, err)
	}
	ps.Reads++
	return nil
}

// Write stores buf (length PageSize) as the page's content.
func (ps *PageStore) Write(id PageID, buf []byte) error {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	if int(id) >= ps.pages {
		return ErrPageBounds
	}
	if _, err := ps.f.WriteAt(buf[:PageSize], int64(id)*PageSize); err != nil {
		return fmt.Errorf("disk: write page %d: %w", id, err)
	}
	ps.Writes++
	return nil
}

// frame is one buffer-pool slot.
type frame struct {
	id    PageID
	data  [PageSize]byte
	dirty bool
	pins  int
	// LRU links.
	prev, next *frame
}

// BufferPool caches pages with LRU eviction. Pinned pages are never evicted.
type BufferPool struct {
	mu       sync.Mutex
	store    *PageStore
	capacity int
	frames   map[PageID]*frame
	// lruHead is most-recently used; lruTail least.
	lruHead, lruTail *frame
	// Hits, Misses, Evictions are cache statistics.
	Hits, Misses, Evictions int
}

// ErrPoolFull is returned when every frame is pinned.
var ErrPoolFull = errors.New("disk: buffer pool exhausted (all pages pinned)")

// NewBufferPool wraps a store with an n-frame cache.
func NewBufferPool(store *PageStore, n int) *BufferPool {
	if n < 1 {
		n = 1
	}
	return &BufferPool{store: store, capacity: n, frames: make(map[PageID]*frame, n)}
}

// Get returns the page content, pinning the page in memory. Callers must
// Unpin when done. The returned slice aliases the frame: it is valid until
// Unpin.
func (bp *BufferPool) Get(id PageID) ([]byte, error) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	if fr, ok := bp.frames[id]; ok {
		bp.Hits++
		fr.pins++
		bp.touch(fr)
		return fr.data[:], nil
	}
	bp.Misses++
	fr, err := bp.allocFrame()
	if err != nil {
		return nil, err
	}
	if err := bp.store.Read(id, fr.data[:]); err != nil {
		// The frame was never linked into the LRU; drop it.
		return nil, err
	}
	fr.id = id
	fr.pins = 1
	fr.dirty = false
	bp.frames[id] = fr
	bp.pushFront(fr)
	return fr.data[:], nil
}

// Unpin releases a pin; markDirty schedules the page for write-back on
// eviction or Flush.
func (bp *BufferPool) Unpin(id PageID, markDirty bool) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	fr, ok := bp.frames[id]
	if !ok || fr.pins == 0 {
		return
	}
	fr.pins--
	if markDirty {
		fr.dirty = true
	}
}

// Flush writes back all dirty pages.
func (bp *BufferPool) Flush() error {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	for _, fr := range bp.frames {
		if fr.dirty {
			if err := bp.store.Write(fr.id, fr.data[:]); err != nil {
				return err
			}
			fr.dirty = false
		}
	}
	return nil
}

// Resident returns the number of cached pages.
func (bp *BufferPool) Resident() int {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	return len(bp.frames)
}

// HitRate returns the fraction of Gets served from memory.
func (bp *BufferPool) HitRate() float64 {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	total := bp.Hits + bp.Misses
	if total == 0 {
		return 0
	}
	return float64(bp.Hits) / float64(total)
}

// allocFrame returns a free frame, evicting the LRU unpinned page if needed.
// Caller holds bp.mu.
func (bp *BufferPool) allocFrame() (*frame, error) {
	if len(bp.frames) < bp.capacity {
		return &frame{}, nil
	}
	// Evict from the tail (least recently used) skipping pinned frames.
	for fr := bp.lruTail; fr != nil; fr = fr.prev {
		if fr.pins > 0 {
			continue
		}
		if fr.dirty {
			if err := bp.store.Write(fr.id, fr.data[:]); err != nil {
				return nil, err
			}
		}
		bp.unlink(fr)
		delete(bp.frames, fr.id)
		bp.Evictions++
		return fr, nil
	}
	return nil, ErrPoolFull
}

func (bp *BufferPool) pushFront(fr *frame) {
	fr.prev = nil
	fr.next = bp.lruHead
	if bp.lruHead != nil {
		bp.lruHead.prev = fr
	}
	bp.lruHead = fr
	if bp.lruTail == nil {
		bp.lruTail = fr
	}
}

func (bp *BufferPool) unlink(fr *frame) {
	if fr.prev != nil {
		fr.prev.next = fr.next
	} else {
		bp.lruHead = fr.next
	}
	if fr.next != nil {
		fr.next.prev = fr.prev
	} else {
		bp.lruTail = fr.prev
	}
	fr.prev, fr.next = nil, nil
}

func (bp *BufferPool) touch(fr *frame) {
	bp.unlink(fr)
	bp.pushFront(fr)
}
