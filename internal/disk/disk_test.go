package disk

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func newStore(t *testing.T) *PageStore {
	t.Helper()
	ps, err := Create(filepath.Join(t.TempDir(), "pages.db"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ps.Close() })
	return ps
}

func TestOpenExistingRecoversPages(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages.db")
	ps, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	var page [PageSize]byte
	for i := 0; i < 3; i++ {
		id, err := ps.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		copy(page[:], []byte{byte('a' + i)})
		if err := ps.Write(id, page[:]); err != nil {
			t.Fatal(err)
		}
	}
	if err := ps.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenExisting(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.NumPages() != 3 {
		t.Fatalf("NumPages after reopen = %d, want 3", re.NumPages())
	}
	for i := 0; i < 3; i++ {
		var got [PageSize]byte
		if err := re.Read(PageID(i), got[:]); err != nil {
			t.Fatal(err)
		}
		if got[0] != byte('a'+i) {
			t.Fatalf("page %d content = %q, want %q", i, got[0], byte('a'+i))
		}
	}
	// Reopened stores keep allocating past the recovered pages.
	id, err := re.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	if id != 3 {
		t.Fatalf("post-reopen Alloc = %d, want 3", id)
	}
}

func TestOpenExistingRejectsTornFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "torn.db")
	if err := os.WriteFile(path, make([]byte, PageSize+100), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenExisting(path); err == nil {
		t.Fatal("torn file accepted")
	}
}

func TestOpenExistingMissingFile(t *testing.T) {
	if _, err := OpenExisting(filepath.Join(t.TempDir(), "absent.db")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestCreateTruncatesButOpenExistingPreserves(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages.db")
	ps, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ps.Alloc(); err != nil {
		t.Fatal(err)
	}
	ps.Close()

	// OpenExisting keeps the page; a second Create destroys it.
	re, err := OpenExisting(path)
	if err != nil {
		t.Fatal(err)
	}
	if re.NumPages() != 1 {
		t.Fatalf("OpenExisting NumPages = %d, want 1", re.NumPages())
	}
	re.Close()

	fresh, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fresh.Close()
	if fresh.NumPages() != 0 {
		t.Fatalf("Create did not truncate: NumPages = %d", fresh.NumPages())
	}
}

func TestPageStoreRoundTrip(t *testing.T) {
	ps := newStore(t)
	id, err := ps.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	var page [PageSize]byte
	copy(page[:], "hello pages")
	if err := ps.Write(id, page[:]); err != nil {
		t.Fatal(err)
	}
	var got [PageSize]byte
	if err := ps.Read(id, got[:]); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[:], page[:]) {
		t.Error("page content mismatch")
	}
	if ps.NumPages() != 1 {
		t.Errorf("NumPages = %d", ps.NumPages())
	}
}

func TestPageStoreBounds(t *testing.T) {
	ps := newStore(t)
	var buf [PageSize]byte
	if err := ps.Read(0, buf[:]); err != ErrPageBounds {
		t.Errorf("read OOB err = %v", err)
	}
	if err := ps.Write(5, buf[:]); err != ErrPageBounds {
		t.Errorf("write OOB err = %v", err)
	}
}

func TestAllocZeroes(t *testing.T) {
	ps := newStore(t)
	id, _ := ps.Alloc()
	var buf [PageSize]byte
	buf[0] = 0xFF
	if err := ps.Read(id, buf[:]); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 0 {
		t.Error("fresh page not zeroed")
	}
}

func TestBufferPoolHitAndMiss(t *testing.T) {
	ps := newStore(t)
	id, _ := ps.Alloc()
	bp := NewBufferPool(ps, 4)

	if _, err := bp.Get(id); err != nil {
		t.Fatal(err)
	}
	bp.Unpin(id, false)
	if bp.Misses != 1 || bp.Hits != 0 {
		t.Errorf("after first get: hits=%d misses=%d", bp.Hits, bp.Misses)
	}
	if _, err := bp.Get(id); err != nil {
		t.Fatal(err)
	}
	bp.Unpin(id, false)
	if bp.Hits != 1 {
		t.Errorf("second get not a hit: hits=%d", bp.Hits)
	}
	if bp.HitRate() != 0.5 {
		t.Errorf("HitRate = %g", bp.HitRate())
	}
}

func TestBufferPoolEviction(t *testing.T) {
	ps := newStore(t)
	var ids []PageID
	for i := 0; i < 10; i++ {
		id, _ := ps.Alloc()
		ids = append(ids, id)
	}
	bp := NewBufferPool(ps, 3)
	for _, id := range ids {
		if _, err := bp.Get(id); err != nil {
			t.Fatal(err)
		}
		bp.Unpin(id, false)
	}
	if bp.Resident() != 3 {
		t.Errorf("Resident = %d, want 3", bp.Resident())
	}
	if bp.Evictions != 7 {
		t.Errorf("Evictions = %d, want 7", bp.Evictions)
	}
}

func TestBufferPoolWriteBack(t *testing.T) {
	ps := newStore(t)
	id, _ := ps.Alloc()
	bp := NewBufferPool(ps, 2)

	data, err := bp.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	copy(data, "dirty data")
	bp.Unpin(id, true)

	// Force eviction by filling the pool.
	for i := 0; i < 2; i++ {
		nid, _ := ps.Alloc()
		if _, err := bp.Get(nid); err != nil {
			t.Fatal(err)
		}
		bp.Unpin(nid, false)
	}
	var buf [PageSize]byte
	if err := ps.Read(id, buf[:]); err != nil {
		t.Fatal(err)
	}
	if string(buf[:10]) != "dirty data" {
		t.Error("dirty page not written back on eviction")
	}
}

func TestBufferPoolFlush(t *testing.T) {
	ps := newStore(t)
	id, _ := ps.Alloc()
	bp := NewBufferPool(ps, 2)
	data, _ := bp.Get(id)
	copy(data, "flushed")
	bp.Unpin(id, true)
	if err := bp.Flush(); err != nil {
		t.Fatal(err)
	}
	var buf [PageSize]byte
	ps.Read(id, buf[:])
	if string(buf[:7]) != "flushed" {
		t.Error("Flush did not persist dirty page")
	}
}

func TestBufferPoolAllPinned(t *testing.T) {
	ps := newStore(t)
	var ids []PageID
	for i := 0; i < 3; i++ {
		id, _ := ps.Alloc()
		ids = append(ids, id)
	}
	bp := NewBufferPool(ps, 2)
	// Pin two pages without unpinning.
	bp.Get(ids[0])
	bp.Get(ids[1])
	if _, err := bp.Get(ids[2]); err != ErrPoolFull {
		t.Errorf("err = %v, want ErrPoolFull", err)
	}
	bp.Unpin(ids[0], false)
	if _, err := bp.Get(ids[2]); err != nil {
		t.Errorf("after unpin: %v", err)
	}
}

func TestBufferPoolLRUOrder(t *testing.T) {
	ps := newStore(t)
	var ids []PageID
	for i := 0; i < 3; i++ {
		id, _ := ps.Alloc()
		ids = append(ids, id)
	}
	bp := NewBufferPool(ps, 2)
	bp.Get(ids[0])
	bp.Unpin(ids[0], false)
	bp.Get(ids[1])
	bp.Unpin(ids[1], false)
	// Touch page 0 so page 1 becomes LRU.
	bp.Get(ids[0])
	bp.Unpin(ids[0], false)
	// Loading page 2 must evict page 1, not page 0.
	bp.Get(ids[2])
	bp.Unpin(ids[2], false)
	bp.mu.Lock()
	_, has0 := bp.frames[ids[0]]
	_, has1 := bp.frames[ids[1]]
	bp.mu.Unlock()
	if !has0 || has1 {
		t.Errorf("LRU eviction wrong: has0=%v has1=%v", has0, has1)
	}
}

func TestUnpinUnknownPageIsNoop(t *testing.T) {
	ps := newStore(t)
	bp := NewBufferPool(ps, 2)
	bp.Unpin(99, true) // must not panic
}

func TestManyPagesStress(t *testing.T) {
	ps := newStore(t)
	bp := NewBufferPool(ps, 8)
	var ids []PageID
	for i := 0; i < 100; i++ {
		id, _ := ps.Alloc()
		ids = append(ids, id)
		data, err := bp.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		data[0] = byte(i)
		bp.Unpin(id, true)
	}
	if err := bp.Flush(); err != nil {
		t.Fatal(err)
	}
	for i, id := range ids {
		data, err := bp.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if data[0] != byte(i) {
			t.Fatalf("page %d content = %d, want %d", id, data[0], i)
		}
		bp.Unpin(id, false)
	}
}
