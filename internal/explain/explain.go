// Package explain implements a Scorpion-style outlier explainer (Wu &
// Madden, PVLDB 2013 — ref [141] in the survey): given an aggregate view
// with user-flagged outlier groups, it searches for the predicate=value
// restriction whose removal best normalizes the outliers while leaving the
// normal groups intact — the "explanations regarding data trends and
// anomalies" capability the survey asks of modern systems.
package explain

import (
	"fmt"
	"sort"

	"github.com/lodviz/lodviz/internal/rdf"
	"github.com/lodviz/lodviz/internal/store"
)

// Row is one input record of the aggregate view: an entity, the group it
// belongs to, and its contribution to the group's aggregate.
type Row struct {
	Entity rdf.Term
	Group  string
	Value  float64
}

// Explanation is one candidate predicate=value restriction.
type Explanation struct {
	Predicate rdf.IRI
	Value     rdf.Term
	// Influence is Scorpion's objective: how much removing the matching
	// rows moves outlier-group aggregates toward the normal-group mean,
	// penalized by damage to normal groups. Higher = better explanation.
	Influence float64
	// OutlierRows and NormalRows count the matching rows in each class.
	OutlierRows int
	NormalRows  int
}

// Options tune the search.
type Options struct {
	// MaxCandidates bounds the predicate=value pairs scored (default 1000).
	MaxCandidates int
	// MinSupport is the minimum share of outlier rows a candidate must
	// cover to be considered (default 0.05).
	MinSupport float64
}

func (o *Options) normalize() {
	if o.MaxCandidates <= 0 {
		o.MaxCandidates = 1000
	}
	if o.MinSupport <= 0 {
		o.MinSupport = 0.05
	}
}

// Outliers finds the top-k explanations for why the outlier groups'
// aggregates (here: mean of Value) deviate from the rest. st supplies the
// entities' attributes (candidate predicates are every predicate of the
// involved entities).
func Outliers(st *store.Store, rows []Row, outlierGroups []string, k int, opts Options) ([]Explanation, error) {
	opts.normalize()
	if k <= 0 {
		k = 3
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("explain: no rows")
	}
	isOutlier := map[string]bool{}
	for _, g := range outlierGroups {
		isOutlier[g] = true
	}
	var outlier, normal []Row
	for _, r := range rows {
		if isOutlier[r.Group] {
			outlier = append(outlier, r)
		} else {
			normal = append(normal, r)
		}
	}
	if len(outlier) == 0 || len(normal) == 0 {
		return nil, fmt.Errorf("explain: need both outlier and normal rows (%d/%d)", len(outlier), len(normal))
	}
	normalMean := mean(normal, nil)
	outlierMean := mean(outlier, nil)

	// Candidate predicates/values over the involved entities.
	type cand struct {
		p rdf.IRI
		v rdf.Term
	}
	matches := map[cand]map[rdf.Term]bool{}
	for _, r := range rows {
		st.ForEach(store.Pattern{S: r.Entity}, func(t rdf.Triple) bool {
			c := cand{t.P, t.O}
			m := matches[c]
			if m == nil {
				if len(matches) >= opts.MaxCandidates {
					return true
				}
				m = map[rdf.Term]bool{}
				matches[c] = m
			}
			m[r.Entity] = true
			return true
		})
	}

	var out []Explanation
	for c, entities := range matches {
		// Partition rows by whether the candidate holds.
		outHit, normHit := 0, 0
		for _, r := range outlier {
			if entities[r.Entity] {
				outHit++
			}
		}
		for _, r := range normal {
			if entities[r.Entity] {
				normHit++
			}
		}
		if float64(outHit) < opts.MinSupport*float64(len(outlier)) {
			continue
		}
		if outHit == len(outlier) {
			continue // removing everything explains nothing
		}
		// Aggregates after removing matching rows.
		newOutlier := mean(outlier, func(r Row) bool { return !entities[r.Entity] })
		newNormalMean := mean(normal, func(r Row) bool { return !entities[r.Entity] })
		// Influence: improvement of outlier deviation minus damage to
		// normal groups (both relative to the normal mean scale).
		improvement := abs(outlierMean-normalMean) - abs(newOutlier-normalMean)
		damage := abs(newNormalMean - normalMean)
		inf := improvement - damage
		if inf <= 0 {
			continue
		}
		out = append(out, Explanation{
			Predicate:   c.p,
			Value:       c.v,
			Influence:   inf,
			OutlierRows: outHit,
			NormalRows:  normHit,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Influence != out[j].Influence {
			return out[i].Influence > out[j].Influence
		}
		if out[i].Predicate != out[j].Predicate {
			return out[i].Predicate < out[j].Predicate
		}
		return rdf.Compare(out[i].Value, out[j].Value) < 0
	})
	if len(out) > k {
		out = out[:k]
	}
	return out, nil
}

// mean averages the Value of rows passing keep (nil = all). Empty
// selections return 0.
func mean(rows []Row, keep func(Row) bool) float64 {
	sum, n := 0.0, 0
	for _, r := range rows {
		if keep == nil || keep(r) {
			sum += r.Value
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
