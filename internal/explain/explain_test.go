package explain

import (
	"fmt"
	"testing"

	"github.com/lodviz/lodviz/internal/rdf"
	"github.com/lodviz/lodviz/internal/store"
)

func ex(s string) rdf.IRI { return rdf.IRI("http://example.org/" + s) }

// buildScenario: sensor readings grouped by hour. Hour "h2" is an outlier
// because sensors from vendor "acme" malfunction and report huge values.
func buildScenario() (*store.Store, []Row) {
	st := store.New()
	var rows []Row
	id := 0
	addReading := func(group, vendor string, value float64) {
		e := ex(fmt.Sprintf("reading%d", id))
		id++
		st.Add(rdf.T(e, ex("vendor"), rdf.NewLiteral(vendor)))
		st.Add(rdf.T(e, ex("unit"), rdf.NewLiteral("celsius")))
		rows = append(rows, Row{Entity: e, Group: group, Value: value})
	}
	for _, hour := range []string{"h0", "h1", "h3"} {
		for i := 0; i < 10; i++ {
			vendor := "good"
			if i%2 == 0 {
				vendor = "acme"
			}
			addReading(hour, vendor, 20+float64(i%3))
		}
	}
	// Outlier hour: acme readings explode, good readings stay normal.
	for i := 0; i < 10; i++ {
		if i%2 == 0 {
			addReading("h2", "acme", 500)
		} else {
			addReading("h2", "good", 21)
		}
	}
	return st, rows
}

func TestOutliersFindsCulprit(t *testing.T) {
	st, rows := buildScenario()
	exps, err := Outliers(st, rows, []string{"h2"}, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(exps) == 0 {
		t.Fatal("no explanations")
	}
	top := exps[0]
	if top.Predicate != ex("vendor") || top.Value != rdf.NewLiteral("acme") {
		t.Errorf("top explanation = %v=%v, want vendor=acme (all: %+v)", top.Predicate, top.Value, exps)
	}
	if top.Influence <= 0 {
		t.Errorf("influence = %g", top.Influence)
	}
	if top.OutlierRows != 5 {
		t.Errorf("outlier rows = %d, want 5", top.OutlierRows)
	}
}

func TestUniversalAttributeNotAnExplanation(t *testing.T) {
	st, rows := buildScenario()
	exps, err := Outliers(st, rows, []string{"h2"}, 10, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range exps {
		if e.Predicate == ex("unit") {
			t.Errorf("universal attribute ranked as explanation: %+v", e)
		}
	}
}

func TestOutliersErrors(t *testing.T) {
	st, rows := buildScenario()
	if _, err := Outliers(st, nil, []string{"h2"}, 3, Options{}); err == nil {
		t.Error("empty rows accepted")
	}
	if _, err := Outliers(st, rows, []string{"nonexistent"}, 3, Options{}); err == nil {
		t.Error("no outlier rows accepted")
	}
	all := []string{"h0", "h1", "h2", "h3"}
	if _, err := Outliers(st, rows, all, 3, Options{}); err == nil {
		t.Error("all-outlier accepted")
	}
}

func TestMinSupportFilters(t *testing.T) {
	st, rows := buildScenario()
	// A single odd row with a unique attribute must not dominate.
	e := ex("lonely")
	st.Add(rdf.T(e, ex("vendor"), rdf.NewLiteral("unique-vendor")))
	rows = append(rows, Row{Entity: e, Group: "h2", Value: 400})
	exps, err := Outliers(st, rows, []string{"h2"}, 5, Options{MinSupport: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range exps {
		if x.Value == rdf.NewLiteral("unique-vendor") {
			t.Errorf("low-support candidate survived MinSupport: %+v", x)
		}
	}
}

func TestTopKBound(t *testing.T) {
	st, rows := buildScenario()
	exps, err := Outliers(st, rows, []string{"h2"}, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(exps) > 1 {
		t.Errorf("k=1 returned %d", len(exps))
	}
}
