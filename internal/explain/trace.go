package explain

// Per-query execution traces. A Trace is a thread-safe span tree the SPARQL
// engine fills in while evaluating one query (sparql.Options.Trace): a
// "parse" span, one "plan" span per reordered pattern group, and an
// "execute" span whose children are the per-pattern join stages — each
// carrying the strategy the executor picked (id-merge, id-probe, id-cross,
// hash, paged-scan), the rows entering and leaving the stage, and for the
// paged streaming driver the number of store pages scanned. The HTTP layer
// serves the tree on POST /sparql?explain=1 and summarizes it in the
// slow-query log.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"time"
)

// maxTraceSpans bounds one trace's size: a query fanning OPTIONAL groups
// across thousands of bindings must not serialize thousands of spans.
// Further spans are counted in Trace.Dropped instead of recorded.
const maxTraceSpans = 512

// Span is one node of an execution trace.
type Span struct {
	// Name classifies the stage: "query", "parse", "plan", "execute",
	// "pattern".
	Name string `json:"name"`
	// Detail is the stage's subject — for pattern spans, the triple pattern
	// text; for plan spans, the join order chosen.
	Detail string `json:"detail,omitempty"`
	// Strategy is the executor a pattern span ran on: "id-merge",
	// "id-probe", "id-cross", "hash", or "paged-scan".
	Strategy string `json:"strategy,omitempty"`
	// RowsIn and RowsOut count the solution rows entering and leaving the
	// stage.
	RowsIn  int `json:"rowsIn,omitempty"`
	RowsOut int `json:"rowsOut,omitempty"`
	// Pages counts store pages a paged scan pulled (streaming driver only).
	Pages int `json:"pages,omitempty"`
	// DurationMicros is the stage's wall time in microseconds.
	DurationMicros int64 `json:"durationMicros"`
	// Children are sub-stages, in completion order.
	Children []*Span `json:"children,omitempty"`
}

// Trace is one query's span tree. Safe for concurrent Add calls — parallel
// pattern evaluation records spans from worker goroutines.
type Trace struct {
	mu      sync.Mutex
	root    *Span
	n       int
	dropped int
	start   time.Time
}

// NewTrace starts a trace; the root "query" span's duration runs until
// Finish.
func NewTrace() *Trace {
	return &Trace{root: &Span{Name: "query"}, start: time.Now()}
}

// Add attaches a new span under parent (nil = the root) and returns it. The
// caller fills the span's fields afterward; once the per-trace span budget
// is spent, Add counts the span as dropped and returns nil (safe: callers
// write fields through nilable pointers only when non-nil).
func (t *Trace) Add(parent *Span, name string) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.n >= maxTraceSpans {
		t.dropped++
		return nil
	}
	t.n++
	s := &Span{Name: name}
	if parent == nil {
		parent = t.root
	}
	parent.Children = append(parent.Children, s)
	return s
}

// Set fills a span's measurements; a nil span (trace disabled or budget
// spent) is a no-op.
func (s *Span) Set(detail, strategy string, rowsIn, rowsOut int, start time.Time) {
	if s == nil {
		return
	}
	s.Detail = detail
	s.Strategy = strategy
	s.RowsIn = rowsIn
	s.RowsOut = rowsOut
	if !start.IsZero() {
		s.DurationMicros = time.Since(start).Microseconds()
	}
}

// SetPages records a paged scan's page count; a nil span is a no-op.
func (s *Span) SetPages(n int) {
	if s != nil {
		s.Pages = n
	}
}

// Finish closes the root span's duration.
func (t *Trace) Finish() {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.root.DurationMicros = time.Since(t.start).Microseconds()
}

// traceJSON is the wire shape of a trace.
type traceJSON struct {
	Root    *Span `json:"root"`
	Dropped int   `json:"droppedSpans,omitempty"`
}

// MarshalJSON renders the trace as {"root": <span tree>} with HTML escaping
// off — pattern details are full of IRI angle brackets and must stay
// readable.
func (t *Trace) MarshalJSON() ([]byte, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(traceJSON{Root: t.root, Dropped: t.dropped}); err != nil {
		return nil, err
	}
	return bytes.TrimSuffix(buf.Bytes(), []byte("\n")), nil
}

// Root returns the root span (for tests and summaries). The tree must not
// be mutated while the query is still evaluating.
func (t *Trace) Root() *Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.root
}

// ZeroDurations clears every span's duration, making traces comparable in
// golden tests.
func (t *Trace) ZeroDurations() {
	t.mu.Lock()
	defer t.mu.Unlock()
	zeroDur(t.root)
}

func zeroDur(s *Span) {
	s.DurationMicros = 0
	for _, c := range s.Children {
		zeroDur(c)
	}
}

// Summary renders one compact line per pattern span — what the slow-query
// log records: "pattern[?s <p> ?o] id-merge 120->45" joined by "; ".
func (t *Trace) Summary() string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var parts []string
	var walk func(s *Span)
	walk = func(s *Span) {
		if s.Name == "pattern" {
			parts = append(parts, fmt.Sprintf("pattern[%s] %s %d->%d", s.Detail, s.Strategy, s.RowsIn, s.RowsOut))
		}
		for _, c := range s.Children {
			walk(c)
		}
	}
	walk(t.root)
	if t.dropped > 0 {
		parts = append(parts, fmt.Sprintf("(+%d spans dropped)", t.dropped))
	}
	return strings.Join(parts, "; ")
}
