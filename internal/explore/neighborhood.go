package explore

import (
	"context"
	"errors"
	"sort"

	"github.com/lodviz/lodviz/internal/rdf"
	"github.com/lodviz/lodviz/internal/sampling"
	"github.com/lodviz/lodviz/internal/store"
)

// ErrNodeNotFound reports that the requested start term does not occur as a
// resource node (subject or non-literal object) in the dataset.
var ErrNodeNotFound = errors.New("explore: node not found")

// NeighborhoodOptions controls FindNeighborhood.
type NeighborhoodOptions struct {
	// Hops is the BFS radius; values < 1 are treated as 1.
	Hops int
	// Sample, when > 0, bounds how many adjacent statements are expanded
	// per node: nodes whose fan-out exceeds it are expanded through a
	// seed-deterministic reservoir instead of exhaustively, and the result
	// reports the worst per-node coverage fraction. 0 expands everything.
	Sample int
	// Seed drives the reservoirs; the same seed over the same store
	// content yields the same sampled neighborhood regardless of visit
	// order.
	Seed int64
}

// NeighborEdge is one labelled edge between two nodes of a Neighborhood,
// referenced by index into Nodes.
type NeighborEdge struct {
	From int
	To   int
	Pred rdf.IRI
}

// Neighborhood is the k-hop subgraph around a start node.
type Neighborhood struct {
	// Nodes holds the start term first, then every other reached node in
	// ascending dictionary-ID order.
	Nodes []rdf.Term
	Edges []NeighborEdge
	// Coverage is the minimum fraction of adjacent statements expanded at
	// any visited node: 1 for exhaustive traversals, lower when sampling
	// truncated a huge-fanout node. Literal-valued statements count toward
	// the denominator.
	Coverage float64
	// Sampled reports whether any node was expanded through a reservoir.
	Sampled bool
}

type edgeRec struct {
	from, to, pred store.ID
}

// kindCache remembers which dictionary IDs decode to resources (IRIs or
// blank nodes), batch-decoding unknowns so literal objects can be filtered
// without a per-triple Terms call.
type kindCache struct {
	src  Source
	kind map[store.ID]bool
}

func (kc *kindCache) fill(ids []store.ID) {
	var missing []store.ID
	for _, id := range ids {
		if _, ok := kc.kind[id]; !ok {
			missing = append(missing, id)
		}
	}
	if len(missing) == 0 {
		return
	}
	terms := kc.src.Terms(missing)
	for i, id := range missing {
		kc.kind[id] = terms[i] != nil && terms[i].Kind() != rdf.KindLiteral
	}
}

func (kc *kindCache) resource(id store.ID) bool { return kc.kind[id] }

// nodeSeed mixes the traversal seed with the node ID (splitmix64-style odd
// constant) so each node's reservoir is deterministic under any visit order.
func nodeSeed(seed int64, n store.ID) int64 {
	return seed ^ int64(n.Bits()*0x9E3779B97F4A7C15)
}

// FindNeighborhood BFS-expands the k-hop neighborhood of start directly over
// the store's ID permutations — no materialized graph is built, so the cost
// is proportional to the neighborhood, not the dataset. Out-edges come from
// the subject-bound run, in-edges from the object-bound run; literal objects
// are never nodes. With Sample > 0, huge-fanout nodes are expanded through
// per-node seeded reservoirs and the returned Coverage reports the worst
// truncation; with Sample == 0 the result is the exact induced subgraph over
// the reached node set (every statement between two reached resources).
func FindNeighborhood(ctx context.Context, src Source, start rdf.Term, opt NeighborhoodOptions) (*Neighborhood, error) {
	if start == nil || start.Kind() == rdf.KindLiteral {
		return nil, ErrNodeNotFound
	}
	sid, ok := src.LookupTermID(start)
	if !ok {
		return nil, ErrNodeNotFound
	}
	if src.EstimateCountIDs(sid, 0, 0) == 0 && src.EstimateCountIDs(0, 0, sid) == 0 {
		return nil, ErrNodeNotFound
	}
	hops := opt.Hops
	if hops < 1 {
		hops = 1
	}

	kc := &kindCache{src: src, kind: map[store.ID]bool{sid: true}}
	visited := map[store.ID]bool{sid: true}
	frontier := []store.ID{sid}
	coverage := 1.0
	sampled := false
	edgeSet := map[edgeRec]struct{}{}

	for depth := 0; depth < hops; depth++ {
		var next []store.ID
		for _, n := range frontier {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			recs, cov := expandNode(ctx, src, kc, n, opt)
			if cov < coverage {
				coverage = cov
			}
			if cov < 1 {
				sampled = true
			}
			for _, r := range recs {
				if opt.Sample > 0 {
					edgeSet[r] = struct{}{}
				}
				other := r.to
				if other == n {
					other = r.from
				}
				if !visited[other] {
					visited[other] = true
					next = append(next, other)
				}
			}
		}
		frontier = next
	}

	// Node list: start first, remaining reached nodes in ascending ID order.
	rest := make([]store.ID, 0, len(visited)-1)
	for id := range visited {
		if id != sid {
			rest = append(rest, id)
		}
	}
	sort.Slice(rest, func(i, j int) bool { return rest[i] < rest[j] })
	nodeIDs := append([]store.ID{sid}, rest...)
	index := make(map[store.ID]int, len(nodeIDs))
	for i, id := range nodeIDs {
		index[id] = i
	}

	if opt.Sample == 0 {
		// Exact induced subgraph: one subject-bound run per reached node
		// captures every statement between reached resources (set
		// membership already implies the object is a resource).
		for _, id := range nodeIDs {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			src.ForEachID(id, 0, 0, func(t store.IDTriple) bool {
				if visited[t.O] {
					edgeSet[edgeRec{from: t.S, to: t.O, pred: t.P}] = struct{}{}
				}
				return true
			})
		}
	}

	edges := make([]edgeRec, 0, len(edgeSet))
	for r := range edgeSet {
		edges = append(edges, r)
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].from != edges[j].from {
			return edges[i].from < edges[j].from
		}
		if edges[i].pred != edges[j].pred {
			return edges[i].pred < edges[j].pred
		}
		return edges[i].to < edges[j].to
	})

	// One batch decode for node terms and edge predicates.
	predIDs := make([]store.ID, len(edges))
	for i, e := range edges {
		predIDs[i] = e.pred
	}
	terms := src.Terms(append(append([]store.ID{}, nodeIDs...), predIDs...))
	nb := &Neighborhood{
		Nodes:    terms[:len(nodeIDs)],
		Edges:    make([]NeighborEdge, 0, len(edges)),
		Coverage: coverage,
		Sampled:  sampled,
	}
	for i, e := range edges {
		iri, ok := terms[len(nodeIDs)+i].(rdf.IRI)
		if !ok {
			continue
		}
		nb.Edges = append(nb.Edges, NeighborEdge{From: index[e.from], To: index[e.to], Pred: iri})
	}
	return nb, nil
}

// expandNode returns the resource-valued adjacent statements of n (both
// directions) and the fraction of its adjacency that was expanded. When the
// fan-out exceeds opt.Sample (> 0), a seed-deterministic reservoir picks
// which statements to follow; otherwise the expansion is exhaustive.
// Cancelling ctx stops the underlying runs early; the caller's own ctx
// check then discards the truncated result.
func expandNode(ctx context.Context, src Source, kc *kindCache, n store.ID, opt NeighborhoodOptions) ([]edgeRec, float64) {
	total := src.EstimateCountIDs(n, 0, 0) + src.EstimateCountIDs(0, 0, n)
	if opt.Sample > 0 && total > opt.Sample {
		res, _ := sampling.NewReservoir[edgeRec](opt.Sample, nodeSeed(opt.Seed, n))
		src.ForEachID(n, 0, 0, func(t store.IDTriple) bool {
			res.Add(edgeRec{from: t.S, to: t.O, pred: t.P})
			return ctx.Err() == nil
		})
		src.ForEachID(0, 0, n, func(t store.IDTriple) bool {
			if t.S != n { // self-loops already seen in the out direction
				res.Add(edgeRec{from: t.S, to: t.O, pred: t.P})
			}
			return ctx.Err() == nil
		})
		recs := filterResource(kc, res.Sample(), n)
		cov := float64(opt.Sample) / float64(res.Seen())
		if cov > 1 {
			cov = 1
		}
		return recs, cov
	}
	var recs []edgeRec
	src.ForEachID(n, 0, 0, func(t store.IDTriple) bool {
		recs = append(recs, edgeRec{from: t.S, to: t.O, pred: t.P})
		return ctx.Err() == nil
	})
	src.ForEachID(0, 0, n, func(t store.IDTriple) bool {
		if t.S != n {
			recs = append(recs, edgeRec{from: t.S, to: t.O, pred: t.P})
		}
		return ctx.Err() == nil
	})
	return filterResource(kc, recs, n), 1
}

// filterResource drops statements whose far endpoint from n is a literal.
func filterResource(kc *kindCache, recs []edgeRec, n store.ID) []edgeRec {
	ends := make([]store.ID, 0, len(recs))
	for _, r := range recs {
		if r.to != n {
			ends = append(ends, r.to)
		}
	}
	kc.fill(ends)
	out := recs[:0]
	for _, r := range recs {
		if r.to != n && !kc.resource(r.to) {
			continue
		}
		out = append(out, r)
	}
	return out
}
