package explore

import (
	"context"
	"fmt"
	"reflect"
	"testing"

	"github.com/lodviz/lodviz/internal/gen"
	"github.com/lodviz/lodviz/internal/graph"
	"github.com/lodviz/lodviz/internal/rdf"
	"github.com/lodviz/lodviz/internal/store"
)

func linkedStore(t *testing.T) *store.Store {
	t.Helper()
	triples := gen.EntityDataset(gen.EntityOptions{
		Entities: 60, Classes: 3, CategoryProps: 1, Categories: 4, LinkProps: 2, Seed: 5,
	})
	st, err := store.Load(triples)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestNeighborhoodMatchesGraphOracle checks the ID-space BFS against the old
// materialized term graph: the reached node set must be identical, every
// returned edge must be a live statement between reached resources, and in
// exact mode the edge set must be the full induced subgraph.
func TestNeighborhoodMatchesGraphOracle(t *testing.T) {
	st := linkedStore(t)
	g := graph.FromStore(st)
	ctx := context.Background()
	for _, hops := range []int{1, 2} {
		for i := 0; i < 5; i++ {
			start := gen.Res("entity", i)
			nb, err := FindNeighborhood(ctx, st, start, NeighborhoodOptions{Hops: hops})
			if err != nil {
				t.Fatalf("hops=%d start=%s: %v", hops, start, err)
			}
			if len(nb.Nodes) == 0 || !reflect.DeepEqual(nb.Nodes[0], rdf.Term(start)) {
				t.Fatalf("hops=%d start=%s: Nodes[0] = %v, want the start node", hops, start, nb.Nodes)
			}
			if nb.Sampled || nb.Coverage != 1 {
				t.Fatalf("exact traversal reported sampled=%v coverage=%v", nb.Sampled, nb.Coverage)
			}

			gid, ok := g.Lookup(start)
			if !ok {
				t.Fatalf("oracle graph missing %s", start)
			}
			want := map[rdf.Term]bool{}
			for _, nid := range g.Neighborhood(gid, hops) {
				want[g.Terms[nid]] = true
			}
			got := map[rdf.Term]bool{}
			for _, n := range nb.Nodes {
				if got[n] {
					t.Fatalf("duplicate node %v", n)
				}
				got[n] = true
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("hops=%d start=%s: node set has %d nodes, oracle has %d", hops, start, len(got), len(want))
			}

			// Every edge is a live statement between reached nodes…
			for _, e := range nb.Edges {
				tr := rdf.Triple{S: nb.Nodes[e.From], P: e.Pred, O: nb.Nodes[e.To]}
				if !st.Contains(tr) {
					t.Fatalf("edge %v is not a statement in the store", tr)
				}
			}
			// …and exact mode returns the complete induced subgraph.
			induced := 0
			st.ForEach(store.Pattern{}, func(tr rdf.Triple) bool {
				if tr.O.Kind() != rdf.KindLiteral && got[tr.S] && got[tr.O] {
					induced++
				}
				return true
			})
			if len(nb.Edges) != induced {
				t.Fatalf("hops=%d start=%s: %d edges, induced subgraph has %d", hops, start, len(nb.Edges), induced)
			}
		}
	}
}

func TestNeighborhoodNotFound(t *testing.T) {
	st := linkedStore(t)
	ctx := context.Background()
	cases := []rdf.Term{
		nil,
		rdf.NewLiteral("just text"),
		rdf.IRI("http://nowhere/else"),
		gen.Prop("cat0"), // in the dictionary, but never a subject or object
	}
	for _, start := range cases {
		if _, err := FindNeighborhood(ctx, st, start, NeighborhoodOptions{Hops: 1}); err != ErrNodeNotFound {
			t.Fatalf("start=%v: err = %v, want ErrNodeNotFound", start, err)
		}
	}
}

// starStore wires one hub to n leaves (half outgoing, half incoming) plus a
// couple of literal statements that count toward the hub's fan-out.
func starStore(t *testing.T, n int) (*store.Store, rdf.IRI) {
	t.Helper()
	hub := rdf.IRI("http://x/hub")
	var triples []rdf.Triple
	for i := 0; i < n; i++ {
		leaf := rdf.IRI(fmt.Sprintf("http://x/leaf%d", i))
		if i%2 == 0 {
			triples = append(triples, rdf.Triple{S: hub, P: "http://x/out", O: leaf})
		} else {
			triples = append(triples, rdf.Triple{S: leaf, P: "http://x/in", O: hub})
		}
	}
	triples = append(triples,
		rdf.Triple{S: hub, P: rdf.RDFSLabel, O: rdf.NewLiteral("hub")},
		rdf.Triple{S: hub, P: "http://x/size", O: rdf.NewInteger(int64(n))},
	)
	st, err := store.Load(triples)
	if err != nil {
		t.Fatal(err)
	}
	return st, hub
}

func TestNeighborhoodSamplingDeterministic(t *testing.T) {
	st, hub := starStore(t, 100)
	ctx := context.Background()
	opt := NeighborhoodOptions{Hops: 1, Sample: 8, Seed: 3}
	nb1, err := FindNeighborhood(ctx, st, hub, opt)
	if err != nil {
		t.Fatal(err)
	}
	nb2, err := FindNeighborhood(ctx, st, hub, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(nb1, nb2) {
		t.Fatal("same (sample, seed) produced different neighborhoods")
	}
	if !nb1.Sampled {
		t.Fatal("fan-out 102 with sample 8 should report Sampled")
	}
	if nb1.Coverage <= 0 || nb1.Coverage >= 1 {
		t.Fatalf("Coverage = %v, want in (0,1)", nb1.Coverage)
	}
	if nodes := len(nb1.Nodes) - 1; nodes > 8 {
		t.Fatalf("sampled expansion reached %d nodes, want <= 8", nodes)
	}
	for _, e := range nb1.Edges {
		tr := rdf.Triple{S: nb1.Nodes[e.From], P: e.Pred, O: nb1.Nodes[e.To]}
		if !st.Contains(tr) {
			t.Fatalf("sampled edge %v is not a statement in the store", tr)
		}
	}
}

func TestNeighborhoodSampleAboveFanoutIsExact(t *testing.T) {
	st, hub := starStore(t, 40)
	nb, err := FindNeighborhood(context.Background(), st, hub, NeighborhoodOptions{Hops: 1, Sample: 1000, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if nb.Sampled || nb.Coverage != 1 {
		t.Fatalf("sample above fan-out reported sampled=%v coverage=%v", nb.Sampled, nb.Coverage)
	}
	if len(nb.Nodes) != 41 {
		t.Fatalf("reached %d nodes, want 41 (hub + 40 leaves, literals excluded)", len(nb.Nodes))
	}
}
