// Package explore is the ID-space substrate of the exploration stack: the
// Source interface the facet, hetree, and progressive-aggregate layers
// compute against, plus the shared scan drivers (an epoch-restarting paged
// walk, streaming dataset statistics, and permutation-backed neighborhood
// traversal). It mirrors the role sparql.IDSource plays for the query
// engine — exploration primitives join, count, and group over uint32
// dictionary IDs and decode terms only for what they actually emit.
package explore

import (
	"github.com/lodviz/lodviz/internal/rdf"
	"github.com/lodviz/lodviz/internal/store"
)

// Source is the store surface exploration primitives run on, mirroring
// sparql.IDSource: dictionary lookup and batch decode, sorted permutation
// runs (ScanIDs), paged position-cursor scans (ForEachIDPage, guarded by
// LayoutEpoch), and the cardinality summaries facet and stats ranking use.
// *store.Store satisfies it; tests wrap it to gate or instrument scans.
type Source interface {
	// Generation identifies the store content; any effective write advances
	// it. Exploration caches key final answers by it.
	Generation() uint64
	// LayoutEpoch identifies the physical index layout; compactions advance
	// it and invalidate positional cursors held across pages.
	LayoutEpoch() uint64
	// NumTerms returns the dictionary size.
	NumTerms() int
	// LookupTermID interns nothing: ok=false means the term does not occur.
	LookupTermID(t rdf.Term) (store.ID, bool)
	// Terms batch-decodes IDs under one lock acquisition.
	Terms(ids []store.ID) []rdf.Term
	// ScanIDs materializes the sorted run for a bound mask (0 = wildcard)
	// in the permutation serving lead.
	ScanIDs(s, p, o store.ID, lead store.Position) (store.IDRun, bool)
	// ForEachIDPage pages through the PosAny permutation for the mask with
	// a positional cursor; see store.Store.ForEachIDPage for the contract.
	ForEachIDPage(s, p, o store.ID, pos, max int, fn func(store.IDTriple) bool) (next int, done bool)
	// ForEachID streams matches under one consistent read view.
	ForEachID(s, p, o store.ID, fn func(store.IDTriple) bool)
	// EstimateCountIDs sizes a bound mask without scanning it.
	EstimateCountIDs(s, p, o store.ID) int
	// Cardinalities returns the per-predicate cardinality table (read-only).
	Cardinalities() map[rdf.IRI]store.PredCardinality
}

var _ Source = (*store.Store)(nil)
