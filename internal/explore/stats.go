package explore

import (
	"context"
	"errors"
	"sort"

	"github.com/lodviz/lodviz/internal/progressive"
	"github.com/lodviz/lodviz/internal/rdf"
	"github.com/lodviz/lodviz/internal/store"
)

// ErrStopped reports that the emit callback ended a stream before the exact
// answer was reached.
var ErrStopped = errors.New("explore: stream stopped by consumer")

// PredEstimate is one predicate's mid-scan summary: a CLT-bounded estimate
// of its statement count plus the distinct subject/object counts observed so
// far (observed counts only ever grow toward the exact value, so they are
// lower bounds, not estimates).
type PredEstimate struct {
	Predicate        rdf.IRI
	Triples          progressive.Estimate
	DistinctSubjects int
	DistinctObjects  int
}

// ClassEstimate is a mid-scan estimate of one rdf:type class's instance
// count.
type ClassEstimate struct {
	Class rdf.Term
	Count progressive.Estimate
}

// StatsBatch is one refining approximate answer from StreamStats. Fraction
// is the share of the dataset scanned; every estimate in the batch carries
// its own 95% interval that shrinks as Fraction approaches 1.
type StatsBatch struct {
	// Scanned is the number of live statements visited so far.
	Scanned int
	// Fraction is Scanned over the dataset size.
	Fraction float64
	// Predicates is ordered by estimated statement count (descending),
	// predicate IRI ascending on ties.
	Predicates []PredEstimate
	// Classes is ordered by estimated instance count (descending), class
	// term ascending on ties.
	Classes []ClassEstimate
}

// statsAgg accumulates the ID-space aggregates one walk page at a time. It
// is exactly the accumulator store.ComputeStats uses, factored out so the
// streaming and exact paths cannot diverge.
type statsAgg struct {
	typeID   store.ID
	perPred  map[store.ID]*predAgg
	classIDs map[store.ID]int
	scanned  int
}

type predAgg struct {
	triples int
	subj    map[store.ID]struct{}
	// obj maps each distinct object to its occurrence count so the
	// literal-object tally needs one kind check per distinct object.
	obj map[store.ID]int
}

func newStatsAgg(typeID store.ID) *statsAgg {
	return &statsAgg{
		typeID:   typeID,
		perPred:  map[store.ID]*predAgg{},
		classIDs: map[store.ID]int{},
	}
}

func (a *statsAgg) visit(t store.IDTriple) {
	pa := a.perPred[t.P]
	if pa == nil {
		pa = &predAgg{subj: map[store.ID]struct{}{}, obj: map[store.ID]int{}}
		a.perPred[t.P] = pa
	}
	pa.triples++
	pa.subj[t.S] = struct{}{}
	pa.obj[t.O]++
	if a.typeID != 0 && t.P == a.typeID {
		a.classIDs[t.O]++
	}
	a.scanned++
}

// batch freezes the current state into an approximate StatsBatch, decoding
// only the predicate and class terms (a handful) via one batch Terms call.
func (a *statsAgg) batch(src Source, population int) StatsBatch {
	ids := make([]store.ID, 0, len(a.perPred)+len(a.classIDs))
	for pid := range a.perPred {
		ids = append(ids, pid)
	}
	for cid := range a.classIDs {
		ids = append(ids, cid)
	}
	terms := src.Terms(ids)
	decoded := make(map[store.ID]rdf.Term, len(ids))
	for i, id := range ids {
		decoded[id] = terms[i]
	}
	b := StatsBatch{Scanned: a.scanned}
	if population > 0 {
		b.Fraction = float64(a.scanned) / float64(population)
		if b.Fraction > 1 {
			b.Fraction = 1
		}
	} else {
		b.Fraction = 1
	}
	for pid, pa := range a.perPred {
		iri, ok := decoded[pid].(rdf.IRI)
		if !ok {
			continue
		}
		b.Predicates = append(b.Predicates, PredEstimate{
			Predicate:        iri,
			Triples:          progressive.CountEstimate(pa.triples, a.scanned, population),
			DistinctSubjects: len(pa.subj),
			DistinctObjects:  len(pa.obj),
		})
	}
	sort.Slice(b.Predicates, func(i, j int) bool {
		if b.Predicates[i].Triples.Value != b.Predicates[j].Triples.Value {
			return b.Predicates[i].Triples.Value > b.Predicates[j].Triples.Value
		}
		return b.Predicates[i].Predicate < b.Predicates[j].Predicate
	})
	for cid, n := range a.classIDs {
		b.Classes = append(b.Classes, ClassEstimate{
			Class: decoded[cid],
			Count: progressive.CountEstimate(n, a.scanned, population),
		})
	}
	sort.Slice(b.Classes, func(i, j int) bool {
		if b.Classes[i].Count.Value != b.Classes[j].Count.Value {
			return b.Classes[i].Count.Value > b.Classes[j].Count.Value
		}
		return rdf.Compare(b.Classes[i].Class, b.Classes[j].Class) < 0
	})
	return b
}

// finalize decodes the accumulated ID aggregates into the exact store.Stats,
// producing precisely what store.ComputeStats would for the same content —
// the streaming endpoint's last answer must be byte-identical to the
// buffered one.
func (a *statsAgg) finalize(src Source) store.Stats {
	ids := make([]store.ID, 0, len(a.perPred)+len(a.classIDs))
	seen := map[store.ID]struct{}{}
	add := func(id store.ID) {
		if _, ok := seen[id]; !ok {
			seen[id] = struct{}{}
			ids = append(ids, id)
		}
	}
	for pid, pa := range a.perPred {
		add(pid)
		for oid := range pa.obj {
			add(oid)
		}
	}
	for cid := range a.classIDs {
		add(cid)
	}
	terms := src.Terms(ids)
	decoded := make(map[store.ID]rdf.Term, len(ids))
	for i, id := range ids {
		decoded[id] = terms[i]
	}
	s := store.Stats{
		Triples: a.scanned,
		Terms:   src.NumTerms(),
		Classes: make(map[rdf.Term]int, len(a.classIDs)),
	}
	for cid, n := range a.classIDs {
		s.Classes[decoded[cid]] = n
	}
	for pid, pa := range a.perPred {
		iri, ok := decoded[pid].(rdf.IRI)
		if !ok {
			continue
		}
		lits := 0
		for oid, n := range pa.obj {
			if decoded[oid].Kind() == rdf.KindLiteral {
				lits += n
			}
		}
		s.Predicates = append(s.Predicates, store.PredicateStat{
			Predicate:        iri,
			Triples:          pa.triples,
			DistinctSubjects: len(pa.subj),
			DistinctObjects:  len(pa.obj),
			LiteralObjects:   lits,
		})
	}
	sort.Slice(s.Predicates, func(i, j int) bool {
		if s.Predicates[i].Triples != s.Predicates[j].Triples {
			return s.Predicates[i].Triples > s.Predicates[j].Triples
		}
		return s.Predicates[i].Predicate < s.Predicates[j].Predicate
	})
	return s
}

// StreamStats computes dataset statistics progressively: it drives one paged
// ID-space walk over the whole store and, every batchPages pages, emits an
// approximate StatsBatch whose counts are CLT-scaled population estimates.
// When the scan completes it returns the exact store.Stats assembled from
// the same accumulator. emit returning false aborts with ErrStopped; ctx
// cancellation aborts with the context error; a layout-epoch restart resets
// the accumulator (consumers see Fraction drop back, then re-grow).
// pageSize <= 0 selects DefaultPageSize; batchPages < 1 is treated as 1.
func StreamStats(ctx context.Context, src Source, pageSize, batchPages int, emit func(StatsBatch) bool) (store.Stats, error) {
	if batchPages < 1 {
		batchPages = 1
	}
	typeID, _ := src.LookupTermID(rdf.RDFType)
	population := src.EstimateCountIDs(0, 0, 0)
	agg := newStatsAgg(typeID)
	pages := 0
	var stopped bool
	err := Walk(ctx, src, 0, 0, 0, pageSize, WalkHandler{
		Visit: func(t store.IDTriple) bool {
			agg.visit(t)
			return true
		},
		Page: func(scanned int, done bool) bool {
			if done {
				return true
			}
			pages++
			if pages%batchPages != 0 {
				return true
			}
			if !emit(agg.batch(src, population)) {
				stopped = true
				return false
			}
			return true
		},
		Reset: func() {
			agg = newStatsAgg(typeID)
			pages = 0
		},
	})
	if err != nil {
		return store.Stats{}, err
	}
	if stopped {
		return store.Stats{}, ErrStopped
	}
	return agg.finalize(src), nil
}
