package explore

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"testing"

	"github.com/lodviz/lodviz/internal/rdf"
	"github.com/lodviz/lodviz/internal/store"
)

func TestStreamStatsConvergesToExact(t *testing.T) {
	st := walkStore(t, 150)
	// Delta adds and a tombstone so the stream covers all three regions.
	for i := 0; i < 5; i++ {
		if err := st.Add(rdf.Triple{
			S: rdf.IRI(fmt.Sprintf("http://x/extra%d", i)),
			P: "http://x/p",
			O: rdf.NewInteger(int64(i)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	if !st.Delete(rdf.Triple{S: rdf.IRI("http://x/extra2"), P: "http://x/p", O: rdf.NewInteger(2)}) {
		t.Fatal("delete failed")
	}

	var batches []StatsBatch
	final, err := StreamStats(context.Background(), st, 32, 1, func(b StatsBatch) bool {
		batches = append(batches, b)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	want := st.ComputeStats()
	if !reflect.DeepEqual(final, want) {
		t.Fatalf("streamed final diverges from ComputeStats:\n got %+v\nwant %+v", final, want)
	}
	if len(batches) < 2 {
		t.Fatalf("got %d approximate batches, want >= 2 (page size 32 over %d triples)", len(batches), st.Len())
	}
	prev := 0
	for i, b := range batches {
		if b.Scanned <= prev {
			t.Fatalf("batch %d: Scanned %d not increasing (prev %d)", i, b.Scanned, prev)
		}
		prev = b.Scanned
		if b.Fraction <= 0 || b.Fraction > 1 {
			t.Fatalf("batch %d: Fraction %v out of (0,1]", i, b.Fraction)
		}
		for _, p := range b.Predicates {
			if p.Triples.Value < 0 || p.Triples.CI95 < 0 {
				t.Fatalf("batch %d: negative estimate %+v", i, p.Triples)
			}
			if b.Fraction < 1 && p.Triples.Final {
				t.Fatalf("batch %d: estimate marked final at fraction %v", i, b.Fraction)
			}
		}
		for j := 1; j < len(b.Predicates); j++ {
			a, c := b.Predicates[j-1], b.Predicates[j]
			if a.Triples.Value < c.Triples.Value {
				t.Fatalf("batch %d: predicates not sorted by estimated count desc", i)
			}
		}
	}
}

func TestStreamStatsSurvivesEpochRestart(t *testing.T) {
	st := walkStore(t, 120)
	src := &flipSource{Store: st}
	final, err := StreamStats(context.Background(), src, 32, 1, func(StatsBatch) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	if want := st.ComputeStats(); !reflect.DeepEqual(final, want) {
		t.Fatalf("final after epoch restart diverges from exact stats")
	}
}

func TestStreamStatsStopped(t *testing.T) {
	st := walkStore(t, 80)
	_, err := StreamStats(context.Background(), st, 16, 1, func(StatsBatch) bool { return false })
	if !errors.Is(err, ErrStopped) {
		t.Fatalf("err = %v, want ErrStopped", err)
	}
}

func TestStreamStatsCancelled(t *testing.T) {
	st := walkStore(t, 80)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := StreamStats(ctx, st, 16, 1, func(StatsBatch) bool { return true })
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestStreamStatsEmptyStore(t *testing.T) {
	st := store.New()
	emitted := 0
	final, err := StreamStats(context.Background(), st, 16, 1, func(StatsBatch) bool {
		emitted++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if emitted != 0 {
		t.Fatalf("empty store emitted %d batches, want 0", emitted)
	}
	if want := st.ComputeStats(); !reflect.DeepEqual(final, want) {
		t.Fatalf("empty final = %+v, want %+v", final, want)
	}
}
