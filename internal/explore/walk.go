package explore

import (
	"context"

	"github.com/lodviz/lodviz/internal/store"
)

// DefaultPageSize is how many triples one Walk page visits between lock
// drops, context checks, and Page callbacks.
const DefaultPageSize = 1 << 14

// walkRestartAttempts bounds how many times Walk restarts after a
// layout-epoch change before degrading to one materialized ScanIDs pass,
// mirroring the store's own paged-scan policy.
const walkRestartAttempts = 3

// WalkHandler receives a Walk's progress. Visit sees every matching triple;
// returning false ends the walk early. Page, if set, runs after every page
// with the number of triples visited so far and whether the scan is
// exhausted — the hook progressive aggregates emit estimates from; returning
// false also ends the walk. Reset, if set, runs when a layout-epoch change
// forces the walk to start over: the consumer must discard everything
// accumulated so far, because pages already visited may be re-visited.
type WalkHandler struct {
	Visit func(t store.IDTriple) bool
	Page  func(scanned int, done bool) bool
	Reset func()
}

// Walk streams the triples matching the (s, p, o) mask (0 = wildcard)
// through h, page by page, releasing the store's read lock between pages so
// a long aggregation never holds up writers. Between pages it honors ctx
// cancellation and watches the source's layout epoch: a compaction shifts
// positional cursors, so the walk restarts from scratch (calling h.Reset);
// after walkRestartAttempts restarts it falls back to one materialized
// sorted scan, which cannot be invalidated. pageSize <= 0 selects
// DefaultPageSize.
func Walk(ctx context.Context, src Source, s, p, o store.ID, pageSize int, h WalkHandler) error {
	if pageSize <= 0 {
		pageSize = DefaultPageSize
	}
	for attempt := 0; attempt < walkRestartAttempts; attempt++ {
		ok, err := walkPaged(ctx, src, s, p, o, pageSize, h)
		if ok || err != nil {
			return err
		}
		if h.Reset != nil {
			h.Reset()
		}
	}
	// Fallback: one consistent materialized run, still honoring ctx between
	// page-sized slices of the copy.
	run, ok := src.ScanIDs(s, p, o, store.PosAny)
	if !ok {
		return nil
	}
	scanned := 0
	stop := false
	run.ForEachSorted(func(t store.IDTriple) bool {
		if !h.Visit(t) {
			stop = true
			return false
		}
		scanned++
		if scanned%pageSize == 0 {
			if err := ctx.Err(); err != nil {
				stop = true
				return false
			}
			if h.Page != nil && !h.Page(scanned, false) {
				stop = true
				return false
			}
		}
		return true
	})
	if err := ctx.Err(); err != nil {
		return err
	}
	if !stop && h.Page != nil {
		h.Page(scanned, true)
	}
	return nil
}

// walkPaged runs one paged attempt. ok=false reports a layout-epoch change
// that invalidated the cursor (the caller restarts); a non-nil error is
// context cancellation.
func walkPaged(ctx context.Context, src Source, s, p, o store.ID, pageSize int, h WalkHandler) (ok bool, err error) {
	epoch := src.LayoutEpoch()
	pos, scanned := 0, 0
	for {
		if err := ctx.Err(); err != nil {
			return true, err
		}
		if src.LayoutEpoch() != epoch {
			return false, nil
		}
		stopped := false
		next, done := src.ForEachIDPage(s, p, o, pos, pageSize, func(t store.IDTriple) bool {
			if !h.Visit(t) {
				stopped = true
				return false
			}
			scanned++
			return true
		})
		if stopped {
			return true, nil
		}
		// A compaction during the page means some of it was visited under
		// the new layout with the old cursor; discard and restart.
		if src.LayoutEpoch() != epoch {
			return false, nil
		}
		pos = next
		if h.Page != nil && !h.Page(scanned, done) {
			return true, nil
		}
		if done {
			return true, nil
		}
	}
}
