package explore

import (
	"context"
	"sync"
	"testing"

	"github.com/lodviz/lodviz/internal/gen"
	"github.com/lodviz/lodviz/internal/store"
)

// walkStore builds a small mixed dataset: typed entities with labels,
// categorical literals, and entity links.
func walkStore(t testing.TB, entities int) *store.Store {
	t.Helper()
	triples := gen.EntityDataset(gen.EntityOptions{
		Entities: entities, Classes: 3, CategoryProps: 2, Categories: 4, LinkProps: 1, Seed: 7,
	})
	st, err := store.Load(triples)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// flipSource reports a layout-epoch bump as soon as the first page has been
// served, forcing exactly one Walk restart; the epoch is stable afterwards so
// the second attempt completes.
type flipSource struct {
	*store.Store
	mu    sync.Mutex
	pages int
}

func (f *flipSource) ForEachIDPage(s, p, o store.ID, pos, max int, fn func(store.IDTriple) bool) (int, bool) {
	next, done := f.Store.ForEachIDPage(s, p, o, pos, max, fn)
	f.mu.Lock()
	f.pages++
	f.mu.Unlock()
	return next, done
}

func (f *flipSource) LayoutEpoch() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	e := f.Store.LayoutEpoch()
	if f.pages >= 1 {
		e++
	}
	return e
}

// everFlip reports a different epoch on every call, so no paged attempt can
// ever validate its cursor and Walk must degrade to the materialized fallback.
type everFlip struct {
	*store.Store
	mu    sync.Mutex
	calls uint64
}

func (f *everFlip) LayoutEpoch() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.calls++
	return f.calls
}

func TestWalkVisitsEverythingPaged(t *testing.T) {
	st := walkStore(t, 80)
	visited := 0
	nonFinalPages := 0
	sawDone := false
	err := Walk(context.Background(), st, 0, 0, 0, 64, WalkHandler{
		Visit: func(store.IDTriple) bool { visited++; return true },
		Page: func(scanned int, done bool) bool {
			if scanned != visited {
				t.Fatalf("Page reported scanned=%d, visited=%d", scanned, visited)
			}
			if done {
				sawDone = true
			} else {
				nonFinalPages++
			}
			return true
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if visited != st.Len() {
		t.Fatalf("visited %d, want %d", visited, st.Len())
	}
	if nonFinalPages < 2 {
		t.Fatalf("page size 64 over %d triples produced %d non-final pages, want >= 2", st.Len(), nonFinalPages)
	}
	if !sawDone {
		t.Fatal("never saw the final done page")
	}
}

func TestWalkEpochChangeRestarts(t *testing.T) {
	st := walkStore(t, 80)
	src := &flipSource{Store: st}
	visited := 0
	resets := 0
	err := Walk(context.Background(), src, 0, 0, 0, 32, WalkHandler{
		Visit: func(store.IDTriple) bool { visited++; return true },
		Reset: func() { visited = 0; resets++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if resets != 1 {
		t.Fatalf("resets = %d, want exactly 1", resets)
	}
	if visited != st.Len() {
		t.Fatalf("visited %d after restart, want %d (accumulator must be rebuilt, not doubled)", visited, st.Len())
	}
}

func TestWalkFallsBackAfterRepeatedRestarts(t *testing.T) {
	st := walkStore(t, 80)
	src := &everFlip{Store: st}
	visited := 0
	resets := 0
	sawDone := false
	err := Walk(context.Background(), src, 0, 0, 0, 32, WalkHandler{
		Visit: func(store.IDTriple) bool { visited++; return true },
		Page: func(_ int, done bool) bool {
			if done {
				sawDone = true
			}
			return true
		},
		Reset: func() { visited = 0; resets++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if resets != walkRestartAttempts {
		t.Fatalf("resets = %d, want %d before the fallback", resets, walkRestartAttempts)
	}
	if visited != st.Len() {
		t.Fatalf("fallback visited %d, want %d", visited, st.Len())
	}
	if !sawDone {
		t.Fatal("fallback never reported the final page")
	}
}

func TestWalkEarlyStop(t *testing.T) {
	st := walkStore(t, 40)
	visited := 0
	err := Walk(context.Background(), st, 0, 0, 0, 16, WalkHandler{
		Visit: func(store.IDTriple) bool { visited++; return visited < 5 },
	})
	if err != nil {
		t.Fatal(err)
	}
	if visited != 5 {
		t.Fatalf("visited %d after Visit returned false, want 5", visited)
	}
}

func TestWalkContextCancelled(t *testing.T) {
	st := walkStore(t, 40)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := Walk(ctx, st, 0, 0, 0, 16, WalkHandler{
		Visit: func(store.IDTriple) bool { return true },
	})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
