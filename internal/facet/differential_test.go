package facet

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"testing"

	"github.com/lodviz/lodviz/internal/explore"
	"github.com/lodviz/lodviz/internal/gen"
	"github.com/lodviz/lodviz/internal/rdf"
	"github.com/lodviz/lodviz/internal/store"
)

// entityStore builds a typed entity dataset with categorical facets, then
// layers delta adds on top so the ID-space paths cross the base/delta
// boundary.
func entityStore(t testing.TB) *store.Store {
	t.Helper()
	triples := gen.EntityDataset(gen.EntityOptions{
		Entities: 120, Classes: 3, CategoryProps: 3, Categories: 5, LinkProps: 1, Seed: 21,
	})
	st, err := store.Load(triples)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if err := st.Add(rdf.Triple{
			S: gen.Res("entity", i),
			P: gen.Prop("cat0"),
			O: rdf.NewLiteral("category-extra"),
		}); err != nil {
			t.Fatal(err)
		}
	}
	return st
}

// TestFacetsMatchReference is the differential test for the ID-space refactor:
// the Session's facet distribution must be identical to the preserved
// term-space reference algorithm, with and without filters, across both
// aggregation strategies (probe for small match sets, merged walk for large).
func TestFacetsMatchReference(t *testing.T) {
	st := entityStore(t)
	ctx := context.Background()

	cases := []struct {
		name    string
		filters []Filter
		max     int
	}{
		{"unfiltered", nil, 0},
		{"one-filter", []Filter{{Predicate: gen.Prop("cat1"), Value: rdf.NewLiteral("category-2")}}, 0},
		{"two-filters", []Filter{
			{Predicate: gen.Prop("cat1"), Value: rdf.NewLiteral("category-2")},
			{Predicate: gen.Prop("cat2"), Value: rdf.NewLiteral("category-0")},
		}, 0},
		{"absent-value", []Filter{{Predicate: gen.Prop("cat1"), Value: rdf.NewLiteral("no-such-category")}}, 0},
		{"capped", []Filter{{Predicate: gen.Prop("cat0"), Value: rdf.NewLiteral("category-1")}}, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sess := NewSession(st)
			sess.MaxValuesPerFacet = tc.max
			for _, f := range tc.filters {
				sess.Apply(f)
			}
			got, err := sess.FacetsCtx(ctx)
			if err != nil {
				t.Fatal(err)
			}
			want := ReferenceFacets(st, NewSession(st).BaseEntities(), tc.filters, tc.max)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("ID-space facets diverge from reference:\n got %+v\nwant %+v", got, want)
			}
			n, err := sess.CountCtx(ctx)
			if err != nil {
				t.Fatal(err)
			}
			wantMatches := 0
			for _, e := range NewSession(st).BaseEntities() {
				ok := true
				for _, f := range tc.filters {
					if !st.Contains(rdf.Triple{S: e, P: f.Predicate, O: f.Value}) {
						ok = false
						break
					}
				}
				if ok {
					wantMatches++
				}
			}
			if n != wantMatches {
				t.Fatalf("CountCtx = %d, reference matches = %d", n, wantMatches)
			}
		})
	}
}

// TestFacetsProbePathMatchesReference pins the small-match-set strategy: a
// handful of explicit entities is far below probeThreshold relative to the
// dataset, so this exercises aggregateProbe (the walk cases above exercise
// aggregateWalk).
func TestFacetsProbePathMatchesReference(t *testing.T) {
	st := entityStore(t)
	entities := []rdf.Term{gen.Res("entity", 1), gen.Res("entity", 2), gen.Res("entity", 3)}
	sess := NewSessionOver(st, entities)
	got, err := sess.FacetsCtx(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if want := ReferenceFacets(st, entities, nil, 0); !reflect.DeepEqual(got, want) {
		t.Fatalf("probe-path facets diverge from reference:\n got %+v\nwant %+v", got, want)
	}
}

// TestStreamFinalMatchesFacets checks the progressive path's convergence
// contract: the final (count, facets) pair returned by Stream must equal what
// FacetsCtx computes, while at least one approximate batch was emitted
// mid-scan with the exact count and a fraction below 1.
func TestStreamFinalMatchesFacets(t *testing.T) {
	st := entityStore(t)
	ctx := context.Background()
	for _, filters := range [][]Filter{
		nil,
		{{Predicate: gen.Prop("cat1"), Value: rdf.NewLiteral("category-2")}},
	} {
		sess := NewSession(st)
		for _, f := range filters {
			sess.Apply(f)
		}
		wantFacets, err := sess.FacetsCtx(ctx)
		if err != nil {
			t.Fatal(err)
		}
		wantCount, err := sess.CountCtx(ctx)
		if err != nil {
			t.Fatal(err)
		}

		var batches []Batch
		count, fs, err := sess.Stream(ctx, 32, 1, func(b Batch) bool {
			batches = append(batches, b)
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
		if count != wantCount {
			t.Fatalf("Stream count = %d, want %d", count, wantCount)
		}
		if !reflect.DeepEqual(fs, wantFacets) {
			t.Fatalf("Stream final facets diverge from FacetsCtx:\n got %+v\nwant %+v", fs, wantFacets)
		}
		if len(batches) < 2 {
			t.Fatalf("got %d approximate batches, want >= 2", len(batches))
		}
		for i, b := range batches {
			if b.Count != wantCount {
				t.Fatalf("batch %d: count %d, want exact %d from the first batch on", i, b.Count, wantCount)
			}
			if b.Fraction <= 0 || b.Fraction > 1 {
				t.Fatalf("batch %d: fraction %v", i, b.Fraction)
			}
			for _, fe := range b.Facets {
				if fe.Total.Value < 0 || fe.Total.CI95 < 0 {
					t.Fatalf("batch %d: bad estimate %+v", i, fe.Total)
				}
			}
		}
	}
}

func TestStreamStopAndCancel(t *testing.T) {
	st := entityStore(t)
	sess := NewSession(st)
	if _, _, err := sess.Stream(context.Background(), 16, 1, func(Batch) bool { return false }); !errors.Is(err, explore.ErrStopped) {
		t.Fatalf("err = %v, want explore.ErrStopped", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := sess.Stream(ctx, 16, 1, func(Batch) bool { return true }); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestMaxValuesDeterministic pins tie-breaking under a value cap: repeated
// computations over a store whose counts tie heavily must produce identical
// capped value lists (count descending, term order on ties).
func TestMaxValuesDeterministic(t *testing.T) {
	var triples []rdf.Triple
	for i := 0; i < 30; i++ {
		e := rdf.IRI(fmt.Sprintf("http://x/e%d", i))
		triples = append(triples,
			rdf.Triple{S: e, P: rdf.RDFType, O: rdf.IRI("http://x/Thing")},
			// Every value appears exactly 3 times: all ties.
			rdf.Triple{S: e, P: "http://x/bucket", O: rdf.NewLiteral(fmt.Sprintf("b%02d", i%10))},
		)
	}
	st, err := store.Load(triples)
	if err != nil {
		t.Fatal(err)
	}
	build := func() []Facet {
		sess := NewSession(st)
		sess.MaxValuesPerFacet = 4
		fs, err := sess.FacetsCtx(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return fs
	}
	first := build()
	for i := 0; i < 5; i++ {
		if got := build(); !reflect.DeepEqual(got, first) {
			t.Fatalf("run %d: capped facet values changed across identical computations", i)
		}
	}
	if want := ReferenceFacets(st, NewSession(st).BaseEntities(), nil, 4); !reflect.DeepEqual(first, want) {
		t.Fatalf("capped ID-space facets diverge from reference:\n got %+v\nwant %+v", first, want)
	}
}
