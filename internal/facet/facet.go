// Package facet implements faceted browsing over RDF — the navigation
// paradigm of /facet, gFacet, Humboldt and Explorator (survey §3.1): facets
// are extracted from the dataset's predicates, values carry counts that
// refine as filters are applied conjunctively, and a pivot operation
// re-roots the browsing session on a related entity set.
//
// Since the progressive-exploration refactor the whole computation runs in
// dictionary-ID space over an explore.Source: the entity set is a sorted
// []store.ID, filters intersect sorted permutation runs, and distributions
// come from either per-entity ID probes or one merged SPO walk — terms are
// decoded once, at emission. The previous per-entity term-space algorithm is
// preserved as ReferenceFacets for differential tests and benchmarks.
package facet

import (
	"context"
	"sort"

	"github.com/lodviz/lodviz/internal/explore"
	"github.com/lodviz/lodviz/internal/rdf"
	"github.com/lodviz/lodviz/internal/store"
)

// DefaultMaxValues is the server-side default for MaxValuesPerFacet: enough
// values to render a facet widget, far fewer than an unfiltered predicate
// can hold. The package itself defaults to unlimited (0) for API
// compatibility; servers should cap.
const DefaultMaxValues = 25

// Value is one facet value with its count under the current filter.
type Value struct {
	Term  rdf.Term
	Count int
}

// Facet is one filterable dimension (a predicate) with its value
// distribution.
type Facet struct {
	Predicate rdf.IRI
	// Values are sorted by count descending (ties lexicographically).
	Values []Value
	// Total is the number of entities having the predicate.
	Total int
}

// Filter is a conjunctive predicate=value restriction.
type Filter struct {
	Predicate rdf.IRI
	Value     rdf.Term
}

// Session is a faceted-browsing session over a source: a current entity set
// (initially all subjects of rdf:type, or all subjects) plus active filters.
type Session struct {
	src explore.Source
	// base is the sorted, distinct dictionary-ID entity set.
	base []store.ID
	// extra holds base terms missing from the dictionary (an explicit
	// NewSessionOver set may mention entities with no statements); they
	// match only while no filter is active, like the old term-space
	// Contains check behaved.
	extra   []rdf.Term
	filters []Filter
	// MaxValuesPerFacet caps the values listed per facet (0 = unlimited).
	MaxValuesPerFacet int
}

// NewSessionCtx starts a session over all entities with an rdf:type; when
// the dataset declares no types, all subjects become the base set. The base
// collection scan honors ctx; a cancelled context aborts with its error.
func NewSessionCtx(ctx context.Context, src explore.Source) (*Session, error) {
	var base []store.ID
	if typeID, ok := src.LookupTermID(rdf.RDFType); ok {
		b, err := distinctSubjects(ctx, src, typeID)
		if err != nil {
			return nil, err
		}
		base = b
	}
	if len(base) == 0 {
		b, err := distinctSubjects(ctx, src, 0)
		if err != nil {
			return nil, err
		}
		base = b
	}
	return &Session{src: src, base: base}, nil
}

// NewSession is NewSessionCtx without cancellation, for callers with no
// request scope (CLI, tests).
func NewSession(src explore.Source) *Session {
	//lint:allow ctxflow compat wrapper: NewSessionCtx is the cancellable form
	s, _ := NewSessionCtx(context.Background(), src)
	return s
}

// NewSessionOver starts a session over an explicit entity set (the pivot
// path). Duplicate entities are collapsed.
func NewSessionOver(src explore.Source, entities []rdf.Term) *Session {
	s := &Session{src: src}
	seen := map[store.ID]struct{}{}
	extraSeen := map[rdf.Term]struct{}{}
	for _, e := range entities {
		if id, ok := src.LookupTermID(e); ok {
			if _, dup := seen[id]; !dup {
				seen[id] = struct{}{}
				s.base = append(s.base, id)
			}
			continue
		}
		if _, dup := extraSeen[e]; !dup {
			extraSeen[e] = struct{}{}
			s.extra = append(s.extra, e)
		}
	}
	sort.Slice(s.base, func(i, j int) bool { return s.base[i] < s.base[j] })
	sortTerms(s.extra)
	return s
}

// distinctSubjects returns the ascending distinct subject IDs of statements
// with predicate pid (0 = any). Both the PSO run (pid bound) and the SPO run
// (unbound) yield subjects in ascending order, so deduplication is one
// consecutive comparison per statement.
func distinctSubjects(ctx context.Context, src explore.Source, pid store.ID) ([]store.ID, error) {
	lead := store.PosS
	if pid == 0 {
		lead = store.PosAny
	}
	run, ok := src.ScanIDs(0, pid, 0, lead)
	if !ok {
		return nil, nil
	}
	var out []store.ID
	var last store.ID
	scanned := 0
	var stop error
	run.ForEachSorted(func(t store.IDTriple) bool {
		if scanned++; scanned%4096 == 0 {
			if err := ctx.Err(); err != nil {
				stop = err
				return false
			}
		}
		if t.S != last || len(out) == 0 {
			out = append(out, t.S)
			last = t.S
		}
		return true
	})
	if stop != nil {
		return nil, stop
	}
	return out, nil
}

func sortTerms(ts []rdf.Term) {
	sort.Slice(ts, func(i, j int) bool { return rdf.Compare(ts[i], ts[j]) < 0 })
}

// Apply adds a conjunctive filter.
func (s *Session) Apply(f Filter) {
	s.filters = append(s.filters, f)
}

// Remove drops the most recent filter matching the predicate; it reports
// whether one was removed.
func (s *Session) Remove(pred rdf.IRI) bool {
	for i := len(s.filters) - 1; i >= 0; i-- {
		if s.filters[i].Predicate == pred {
			s.filters = append(s.filters[:i], s.filters[i+1:]...)
			return true
		}
	}
	return false
}

// Reset clears all filters.
func (s *Session) Reset() { s.filters = nil }

// Filters returns the active filters.
func (s *Session) Filters() []Filter {
	return append([]Filter(nil), s.filters...)
}

// matchIDs intersects the base set with each filter's subject run: the
// subjects carrying (pred, value) come out of the POS permutation already
// sorted, so every conjunct is one two-pointer merge. A filter term absent
// from the dictionary matches nothing.
func (s *Session) matchIDs(ctx context.Context) ([]store.ID, error) {
	ids := s.base
	for _, f := range s.filters {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		pid, okP := s.src.LookupTermID(f.Predicate)
		vid, okV := s.src.LookupTermID(f.Value)
		if !okP || !okV {
			return nil, nil
		}
		run, ok := s.src.ScanIDs(0, pid, vid, store.PosS)
		if !ok {
			return nil, nil
		}
		var next []store.ID
		i := 0
		run.ForEachSorted(func(t store.IDTriple) bool {
			for i < len(ids) && ids[i] < t.S {
				i++
			}
			if i == len(ids) {
				return false
			}
			if ids[i] == t.S {
				next = append(next, t.S)
				i++
			}
			return true
		})
		ids = next
		if len(ids) == 0 {
			break
		}
	}
	return ids, nil
}

// MatchesCtx returns the current entity set under all filters, sorted by
// term order.
func (s *Session) MatchesCtx(ctx context.Context) ([]rdf.Term, error) {
	ids, err := s.matchIDs(ctx)
	if err != nil {
		return nil, err
	}
	out := s.src.Terms(ids)
	if out == nil {
		out = []rdf.Term{}
	}
	if len(s.filters) == 0 {
		out = append(out, s.extra...)
	}
	sortTerms(out)
	return out, nil
}

// Matches returns the current entity set under all filters.
func (s *Session) Matches() []rdf.Term {
	//lint:allow ctxflow compat wrapper: MatchesCtx is the cancellable form
	m, _ := s.MatchesCtx(context.Background())
	return m
}

// CountCtx returns the size of the current entity set.
func (s *Session) CountCtx(ctx context.Context) (int, error) {
	ids, err := s.matchIDs(ctx)
	if err != nil {
		return 0, err
	}
	n := len(ids)
	if len(s.filters) == 0 {
		n += len(s.extra)
	}
	return n, nil
}

// Count returns the size of the current entity set.
func (s *Session) Count() int {
	//lint:allow ctxflow compat wrapper: CountCtx is the cancellable form
	n, _ := s.CountCtx(context.Background())
	return n
}

// pagg accumulates one predicate's distribution in ID space.
type pagg struct {
	counts map[store.ID]int
	total  int
}

type distribution map[store.ID]*pagg

func (d distribution) get(p store.ID) *pagg {
	a := d[p]
	if a == nil {
		a = &pagg{counts: map[store.ID]int{}}
		d[p] = a
	}
	return a
}

// probeThreshold picks the aggregation strategy: a match set small relative
// to the dataset is served by per-entity ID probes; otherwise one merged SPO
// walk with a two-pointer membership test beats O(matches) index lookups.
const probeThreshold = 32

// FacetsCtx computes the facet distributions over the current entity set —
// the counts shown beside each facet value, which refine after every click.
func (s *Session) FacetsCtx(ctx context.Context) ([]Facet, error) {
	matches, err := s.matchIDs(ctx)
	if err != nil {
		return nil, err
	}
	per := distribution{}
	if len(matches) > 0 {
		if len(matches)*probeThreshold < s.src.EstimateCountIDs(0, 0, 0) {
			err = s.aggregateProbe(ctx, matches, per)
		} else {
			err = s.aggregateWalk(ctx, matches, per)
		}
		if err != nil {
			return nil, err
		}
	}
	return s.assemble(per), nil
}

// Facets computes the facet distributions over the current entity set.
func (s *Session) Facets() []Facet {
	//lint:allow ctxflow compat wrapper: FacetsCtx is the cancellable form
	f, _ := s.FacetsCtx(context.Background())
	return f
}

// aggregateProbe scans each matched entity's subject-bound run. The per-call
// stream interleaves the sorted base with unsorted delta entries, so the
// predicate-coverage total uses a small per-subject seen set instead of
// ordering assumptions.
func (s *Session) aggregateProbe(ctx context.Context, matches []store.ID, per distribution) error {
	seen := map[store.ID]bool{}
	for i, sid := range matches {
		if i%1024 == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		for p := range seen {
			delete(seen, p)
		}
		s.src.ForEachID(sid, 0, 0, func(t store.IDTriple) bool {
			a := per.get(t.P)
			a.counts[t.O]++
			if !seen[t.P] {
				seen[t.P] = true
				a.total++
			}
			return true
		})
	}
	return nil
}

// aggregateWalk merges one globally sorted SPO run against the sorted match
// set: subjects arrive grouped, so membership is a two-pointer advance and
// the coverage total increments exactly on (subject, predicate) group
// transitions — no per-triple term or map-of-sets work at all.
func (s *Session) aggregateWalk(ctx context.Context, matches []store.ID, per distribution) error {
	run, ok := s.src.ScanIDs(0, 0, 0, store.PosAny)
	if !ok {
		return nil
	}
	var err error
	mi := 0
	var lastS, lastP store.ID
	first := true
	visited := 0
	run.ForEachSorted(func(t store.IDTriple) bool {
		visited++
		if visited%8192 == 0 {
			if err = ctx.Err(); err != nil {
				return false
			}
		}
		for mi < len(matches) && matches[mi] < t.S {
			mi++
		}
		if mi == len(matches) {
			return false
		}
		if matches[mi] != t.S {
			return true
		}
		a := per.get(t.P)
		a.counts[t.O]++
		if first || t.S != lastS || t.P != lastP {
			a.total++
		}
		lastS, lastP, first = t.S, t.P, false
		return true
	})
	return err
}

// assemble decodes an ID-space distribution into the public Facet slice:
// one batch Terms call for every predicate and value, then the pinned
// deterministic ordering — values by count descending with rdf.Compare
// tie-breaks, facets by coverage descending with predicate tie-breaks.
func (s *Session) assemble(per distribution) []Facet {
	ids := make([]store.ID, 0, len(per))
	for pid, a := range per {
		ids = append(ids, pid)
		for oid := range a.counts {
			ids = append(ids, oid)
		}
	}
	terms := s.src.Terms(ids)
	decoded := make(map[store.ID]rdf.Term, len(ids))
	for i, id := range ids {
		decoded[id] = terms[i]
	}
	out := make([]Facet, 0, len(per))
	for pid, a := range per {
		p, ok := decoded[pid].(rdf.IRI)
		if !ok {
			continue
		}
		f := Facet{Predicate: p, Total: a.total}
		for oid, c := range a.counts {
			f.Values = append(f.Values, Value{Term: decoded[oid], Count: c})
		}
		sort.Slice(f.Values, func(i, j int) bool {
			if f.Values[i].Count != f.Values[j].Count {
				return f.Values[i].Count > f.Values[j].Count
			}
			return rdf.Compare(f.Values[i].Term, f.Values[j].Term) < 0
		})
		if s.MaxValuesPerFacet > 0 && len(f.Values) > s.MaxValuesPerFacet {
			f.Values = f.Values[:s.MaxValuesPerFacet]
		}
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Total != out[j].Total {
			return out[i].Total > out[j].Total
		}
		return out[i].Predicate < out[j].Predicate
	})
	return out
}

// PivotCtx re-roots the session on the values of a predicate across the
// current matches — Visor/Humboldt's "connect points of interest" operation.
// E.g. from films filtered to comedies, pivot on "director" to browse
// directors. The PSO run delivers (match, object) pairs with one two-pointer
// merge; literal objects are filtered after a single batch decode. The merge
// scan honors ctx; a cancelled context aborts with its error.
func (s *Session) PivotCtx(ctx context.Context, pred rdf.IRI) (*Session, error) {
	next := &Session{src: s.src}
	matches, err := s.matchIDs(ctx)
	if err != nil {
		return nil, err
	}
	if len(matches) == 0 {
		return next, nil
	}
	pid, ok := s.src.LookupTermID(pred)
	if !ok {
		return next, nil
	}
	run, ok := s.src.ScanIDs(0, pid, 0, store.PosS)
	if !ok {
		return next, nil
	}
	objSet := map[store.ID]struct{}{}
	var objs []store.ID
	mi := 0
	scanned := 0
	var stop error
	run.ForEachSorted(func(t store.IDTriple) bool {
		if scanned++; scanned%4096 == 0 {
			if err := ctx.Err(); err != nil {
				stop = err
				return false
			}
		}
		for mi < len(matches) && matches[mi] < t.S {
			mi++
		}
		if mi == len(matches) {
			return false
		}
		if matches[mi] != t.S {
			return true
		}
		if _, dup := objSet[t.O]; !dup {
			objSet[t.O] = struct{}{}
			objs = append(objs, t.O)
		}
		return true
	})
	if stop != nil {
		return nil, stop
	}
	terms := s.src.Terms(objs)
	for i, oid := range objs {
		if terms[i] != nil && terms[i].Kind() != rdf.KindLiteral {
			next.base = append(next.base, oid)
		}
	}
	sort.Slice(next.base, func(i, j int) bool { return next.base[i] < next.base[j] })
	return next, nil
}

// Pivot is PivotCtx without cancellation, for callers with no request scope.
func (s *Session) Pivot(pred rdf.IRI) *Session {
	//lint:allow ctxflow compat wrapper: PivotCtx is the cancellable form
	next, err := s.PivotCtx(context.Background(), pred)
	if err != nil {
		return &Session{src: s.src}
	}
	return next
}
