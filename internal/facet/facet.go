// Package facet implements faceted browsing over RDF — the navigation
// paradigm of /facet, gFacet, Humboldt and Explorator (survey §3.1): facets
// are extracted from the dataset's predicates, values carry counts that
// refine as filters are applied conjunctively, and a pivot operation
// re-roots the browsing session on a related entity set.
package facet

import (
	"sort"

	"github.com/lodviz/lodviz/internal/rdf"
	"github.com/lodviz/lodviz/internal/store"
)

// Value is one facet value with its count under the current filter.
type Value struct {
	Term  rdf.Term
	Count int
}

// Facet is one filterable dimension (a predicate) with its value
// distribution.
type Facet struct {
	Predicate rdf.IRI
	// Values are sorted by count descending (ties lexicographically).
	Values []Value
	// Total is the number of entities having the predicate.
	Total int
}

// Filter is a conjunctive predicate=value restriction.
type Filter struct {
	Predicate rdf.IRI
	Value     rdf.Term
}

// Session is a faceted-browsing session over a store: a current entity set
// (initially all subjects of rdf:type, or all subjects) plus active filters.
type Session struct {
	st      *store.Store
	base    []rdf.Term
	filters []Filter
	// MaxValuesPerFacet caps the values listed per facet (0 = unlimited).
	MaxValuesPerFacet int
}

// NewSession starts a session over all entities with an rdf:type; when the
// dataset declares no types, all subjects become the base set.
func NewSession(st *store.Store) *Session {
	base := st.Subjects(rdf.RDFType, nil)
	if len(base) == 0 {
		base = st.Subjects(nil, nil)
	}
	sortTerms(base)
	return &Session{st: st, base: base}
}

// NewSessionOver starts a session over an explicit entity set (the pivot
// path).
func NewSessionOver(st *store.Store, entities []rdf.Term) *Session {
	base := append([]rdf.Term(nil), entities...)
	sortTerms(base)
	return &Session{st: st, base: base}
}

func sortTerms(ts []rdf.Term) {
	sort.Slice(ts, func(i, j int) bool { return rdf.Compare(ts[i], ts[j]) < 0 })
}

// Apply adds a conjunctive filter.
func (s *Session) Apply(f Filter) {
	s.filters = append(s.filters, f)
}

// Remove drops the most recent filter matching the predicate; it reports
// whether one was removed.
func (s *Session) Remove(pred rdf.IRI) bool {
	for i := len(s.filters) - 1; i >= 0; i-- {
		if s.filters[i].Predicate == pred {
			s.filters = append(s.filters[:i], s.filters[i+1:]...)
			return true
		}
	}
	return false
}

// Reset clears all filters.
func (s *Session) Reset() { s.filters = nil }

// Filters returns the active filters.
func (s *Session) Filters() []Filter {
	return append([]Filter(nil), s.filters...)
}

// Matches returns the current entity set under all filters.
func (s *Session) Matches() []rdf.Term {
	out := make([]rdf.Term, 0, len(s.base))
	for _, e := range s.base {
		if s.matches(e) {
			out = append(out, e)
		}
	}
	return out
}

// Count returns the size of the current entity set.
func (s *Session) Count() int {
	n := 0
	for _, e := range s.base {
		if s.matches(e) {
			n++
		}
	}
	return n
}

func (s *Session) matches(e rdf.Term) bool {
	for _, f := range s.filters {
		if !s.st.Contains(rdf.Triple{S: e, P: f.Predicate, O: f.Value}) {
			return false
		}
	}
	return true
}

// Facets computes the facet distributions over the current entity set —
// the counts shown beside each facet value, which refine after every click.
func (s *Session) Facets() []Facet {
	matches := s.Matches()
	type agg struct {
		counts map[rdf.Term]int
		total  int
	}
	per := map[rdf.IRI]*agg{}
	for _, e := range matches {
		seenPred := map[rdf.IRI]bool{}
		s.st.ForEach(store.Pattern{S: e}, func(t rdf.Triple) bool {
			a := per[t.P]
			if a == nil {
				a = &agg{counts: map[rdf.Term]int{}}
				per[t.P] = a
			}
			a.counts[t.O]++
			if !seenPred[t.P] {
				seenPred[t.P] = true
				a.total++
			}
			return true
		})
	}
	out := make([]Facet, 0, len(per))
	for p, a := range per {
		f := Facet{Predicate: p, Total: a.total}
		for term, c := range a.counts {
			f.Values = append(f.Values, Value{Term: term, Count: c})
		}
		sort.Slice(f.Values, func(i, j int) bool {
			if f.Values[i].Count != f.Values[j].Count {
				return f.Values[i].Count > f.Values[j].Count
			}
			return rdf.Compare(f.Values[i].Term, f.Values[j].Term) < 0
		})
		if s.MaxValuesPerFacet > 0 && len(f.Values) > s.MaxValuesPerFacet {
			f.Values = f.Values[:s.MaxValuesPerFacet]
		}
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Total != out[j].Total {
			return out[i].Total > out[j].Total
		}
		return out[i].Predicate < out[j].Predicate
	})
	return out
}

// Pivot re-roots the session on the values of a predicate across the current
// matches — Visor/Humboldt's "connect points of interest" operation. E.g.
// from films filtered to comedies, pivot on "director" to browse directors.
func (s *Session) Pivot(pred rdf.IRI) *Session {
	seen := map[rdf.Term]struct{}{}
	var next []rdf.Term
	for _, e := range s.Matches() {
		s.st.ForEach(store.Pattern{S: e, P: pred}, func(t rdf.Triple) bool {
			if t.O.Kind() != rdf.KindLiteral {
				if _, dup := seen[t.O]; !dup {
					seen[t.O] = struct{}{}
					next = append(next, t.O)
				}
			}
			return true
		})
	}
	return NewSessionOver(s.st, next)
}
