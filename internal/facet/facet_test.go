package facet

import (
	"testing"

	"github.com/lodviz/lodviz/internal/rdf"
	"github.com/lodviz/lodviz/internal/store"
	"github.com/lodviz/lodviz/internal/turtle"
)

const movies = `
@prefix ex: <http://example.org/> .
ex:film1 a ex:Film ; ex:genre "comedy" ; ex:year 1995 ; ex:director ex:allen .
ex:film2 a ex:Film ; ex:genre "comedy" ; ex:year 2001 ; ex:director ex:allen .
ex:film3 a ex:Film ; ex:genre "drama"  ; ex:year 1995 ; ex:director ex:lee .
ex:film4 a ex:Film ; ex:genre "drama"  ; ex:year 2001 ; ex:director ex:kubrick .
ex:film5 a ex:Film ; ex:genre "horror" ; ex:year 2001 ; ex:director ex:lee .
ex:allen a ex:Director ; ex:country "US" .
ex:lee a ex:Director ; ex:country "US" .
ex:kubrick a ex:Director ; ex:country "UK" .
`

func movieStore(t *testing.T) *store.Store {
	t.Helper()
	ts, err := turtle.ParseString(movies)
	if err != nil {
		t.Fatal(err)
	}
	st, err := store.Load(ts)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func ex(s string) rdf.IRI { return rdf.IRI("http://example.org/" + s) }

func TestSessionBaseSet(t *testing.T) {
	st := movieStore(t)
	s := NewSession(st)
	if s.Count() != 8 { // 5 films + 3 directors have rdf:type
		t.Errorf("base count = %d, want 8", s.Count())
	}
}

func TestApplyFilterRefinesCounts(t *testing.T) {
	st := movieStore(t)
	s := NewSession(st)
	s.Apply(Filter{Predicate: rdf.RDFType, Value: ex("Film")})
	if s.Count() != 5 {
		t.Fatalf("films = %d, want 5", s.Count())
	}
	s.Apply(Filter{Predicate: ex("genre"), Value: rdf.NewLiteral("comedy")})
	if s.Count() != 2 {
		t.Errorf("comedies = %d, want 2", s.Count())
	}
	// Facet counts must reflect the filtered set.
	for _, f := range s.Facets() {
		if f.Predicate == ex("director") {
			if len(f.Values) != 1 || f.Values[0].Term != ex("allen") || f.Values[0].Count != 2 {
				t.Errorf("director facet under comedy = %+v", f.Values)
			}
		}
	}
}

func TestConjunctiveFilters(t *testing.T) {
	st := movieStore(t)
	s := NewSession(st)
	s.Apply(Filter{Predicate: ex("genre"), Value: rdf.NewLiteral("drama")})
	s.Apply(Filter{Predicate: ex("year"), Value: rdf.NewTypedLiteral("2001", rdf.XSDInteger)})
	m := s.Matches()
	if len(m) != 1 || m[0] != ex("film4") {
		t.Errorf("matches = %v, want film4", m)
	}
}

func TestRemoveAndReset(t *testing.T) {
	st := movieStore(t)
	s := NewSession(st)
	s.Apply(Filter{Predicate: ex("genre"), Value: rdf.NewLiteral("comedy")})
	s.Apply(Filter{Predicate: ex("year"), Value: rdf.NewTypedLiteral("1995", rdf.XSDInteger)})
	if !s.Remove(ex("year")) {
		t.Error("Remove returned false")
	}
	if len(s.Filters()) != 1 {
		t.Errorf("filters = %d", len(s.Filters()))
	}
	if s.Remove(ex("nope")) {
		t.Error("Remove invented a filter")
	}
	s.Reset()
	if len(s.Filters()) != 0 || s.Count() != 8 {
		t.Error("Reset did not restore base")
	}
}

func TestFacetsSortedByCoverage(t *testing.T) {
	st := movieStore(t)
	s := NewSession(st)
	facets := s.Facets()
	if len(facets) == 0 {
		t.Fatal("no facets")
	}
	// rdf:type covers all 8 entities and must come first.
	if facets[0].Predicate != rdf.RDFType || facets[0].Total != 8 {
		t.Errorf("top facet = %+v", facets[0])
	}
	for i := 1; i < len(facets); i++ {
		if facets[i].Total > facets[i-1].Total {
			t.Error("facets not sorted by coverage")
		}
	}
}

func TestMaxValuesPerFacet(t *testing.T) {
	st := movieStore(t)
	s := NewSession(st)
	s.MaxValuesPerFacet = 1
	for _, f := range s.Facets() {
		if len(f.Values) > 1 {
			t.Errorf("facet %v has %d values", f.Predicate, len(f.Values))
		}
	}
}

func TestPivot(t *testing.T) {
	st := movieStore(t)
	s := NewSession(st)
	s.Apply(Filter{Predicate: ex("genre"), Value: rdf.NewLiteral("drama")})
	// Pivot from drama films to their directors.
	directors := s.Pivot(ex("director"))
	if directors.Count() != 2 { // lee, kubrick
		t.Fatalf("pivoted count = %d, want 2", directors.Count())
	}
	// Facets on the pivoted set work.
	directors.Apply(Filter{Predicate: ex("country"), Value: rdf.NewLiteral("UK")})
	m := directors.Matches()
	if len(m) != 1 || m[0] != ex("kubrick") {
		t.Errorf("UK drama directors = %v", m)
	}
}

func TestPivotSkipsLiterals(t *testing.T) {
	st := movieStore(t)
	s := NewSession(st)
	genres := s.Pivot(ex("genre")) // all objects are literals
	if genres.Count() != 0 {
		t.Errorf("literal pivot count = %d, want 0", genres.Count())
	}
}

func TestSessionOverEmptyDataset(t *testing.T) {
	st := store.New()
	s := NewSession(st)
	if s.Count() != 0 || len(s.Facets()) != 0 {
		t.Error("empty dataset should have empty session")
	}
}

func TestUntypedDatasetFallsBackToSubjects(t *testing.T) {
	st := store.New()
	st.Add(rdf.T(ex("a"), ex("p"), ex("b")))
	s := NewSession(st)
	if s.Count() != 1 {
		t.Errorf("untyped base = %d, want 1 subject", s.Count())
	}
}
