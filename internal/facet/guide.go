package facet

import (
	"math"
	"sort"

	"github.com/lodviz/lodviz/internal/rdf"
)

// Suggestion ranks a facet as the next drill-down step.
type Suggestion struct {
	Predicate rdf.IRI
	// Score combines coverage and split balance; higher = better next step.
	Score float64
	// Entropy is the Shannon entropy (bits) of the facet's value
	// distribution over the current entity set.
	Entropy float64
	// Coverage is the fraction of current entities carrying the facet.
	Coverage float64
}

// SuggestNext ranks the facets most useful to drill into next, implementing
// the survey's "assist the user / guide her to interesting data parts"
// requirement (Section 2, ref [37]) with an information-theoretic policy:
// a good next facet covers most of the current entities (filtering on it
// keeps the session meaningful) and splits them evenly (high entropy —
// each click removes the most uncertainty). Facets with a single value
// (entropy 0) cannot refine anything and rank last.
func (s *Session) SuggestNext(limit int) []Suggestion {
	if limit <= 0 {
		limit = 5
	}
	matches := s.Matches()
	if len(matches) == 0 {
		return nil
	}
	applied := map[rdf.IRI]bool{}
	for _, f := range s.filters {
		applied[f.Predicate] = true
	}
	var out []Suggestion
	for _, f := range s.Facets() {
		if applied[f.Predicate] {
			continue // already filtered on; re-suggesting it is useless
		}
		total := 0
		for _, v := range f.Values {
			total += v.Count
		}
		if total == 0 || len(f.Values) < 2 {
			continue
		}
		entropy := 0.0
		for _, v := range f.Values {
			p := float64(v.Count) / float64(total)
			entropy -= p * math.Log2(p)
		}
		coverage := float64(f.Total) / float64(len(matches))
		if coverage > 1 {
			coverage = 1
		}
		// Normalized entropy keeps many-valued facets comparable to
		// few-valued ones; coverage dominates (a perfectly balanced facet
		// on 1% of entities is a bad next step).
		norm := entropy / math.Log2(float64(len(f.Values)))
		out = append(out, Suggestion{
			Predicate: f.Predicate,
			Score:     coverage * norm,
			Entropy:   entropy,
			Coverage:  coverage,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Predicate < out[j].Predicate
	})
	if len(out) > limit {
		out = out[:limit]
	}
	return out
}
