package facet

import (
	"testing"

	"github.com/lodviz/lodviz/internal/rdf"
	"github.com/lodviz/lodviz/internal/store"
)

// guideStore: 100 entities; "balanced" splits them evenly into 4 values,
// "skewed" puts 97% in one value, "constant" has a single value, "sparse"
// covers only 5 entities.
func guideStore(t *testing.T) *store.Store {
	t.Helper()
	st := store.New()
	for i := 0; i < 100; i++ {
		e := ex("e" + string(rune('0'+i/10)) + string(rune('0'+i%10)))
		st.Add(rdf.T(e, rdf.RDFType, ex("Thing")))
		st.Add(rdf.T(e, ex("balanced"), rdf.NewLiteral([]string{"a", "b", "c", "d"}[i%4])))
		skew := "common"
		if i >= 97 {
			skew = "rare"
		}
		st.Add(rdf.T(e, ex("skewed"), rdf.NewLiteral(skew)))
		st.Add(rdf.T(e, ex("constant"), rdf.NewLiteral("same")))
		if i < 5 {
			st.Add(rdf.T(e, ex("sparse"), rdf.NewLiteral([]string{"x", "y"}[i%2])))
		}
	}
	return st
}

func TestSuggestNextPrefersBalancedCoveringFacet(t *testing.T) {
	s := NewSession(guideStore(t))
	sugg := s.SuggestNext(10)
	if len(sugg) == 0 {
		t.Fatal("no suggestions")
	}
	if sugg[0].Predicate != ex("balanced") {
		t.Errorf("top suggestion = %v, want balanced (all: %+v)", sugg[0].Predicate, sugg)
	}
	// Constant facet (entropy 0, <2 values) must be absent.
	for _, g := range sugg {
		if g.Predicate == ex("constant") {
			t.Error("constant facet suggested")
		}
	}
	// Sparse facet scores below balanced despite being balanced itself.
	var sparse, balanced float64
	for _, g := range sugg {
		switch g.Predicate {
		case ex("sparse"):
			sparse = g.Score
		case ex("balanced"):
			balanced = g.Score
		}
	}
	if sparse >= balanced {
		t.Errorf("sparse %g >= balanced %g", sparse, balanced)
	}
}

func TestSuggestNextSkipsAppliedFacets(t *testing.T) {
	s := NewSession(guideStore(t))
	s.Apply(Filter{Predicate: ex("balanced"), Value: rdf.NewLiteral("a")})
	for _, g := range s.SuggestNext(10) {
		if g.Predicate == ex("balanced") {
			t.Error("already-applied facet suggested again")
		}
	}
}

func TestSuggestNextLimitsAndEmpty(t *testing.T) {
	s := NewSession(guideStore(t))
	if got := s.SuggestNext(1); len(got) > 1 {
		t.Errorf("limit ignored: %d", len(got))
	}
	// Default limit when <= 0.
	if got := s.SuggestNext(0); len(got) > 5 {
		t.Errorf("default limit: %d", len(got))
	}
	// Session filtered to nothing yields no suggestions.
	s.Apply(Filter{Predicate: ex("skewed"), Value: rdf.NewLiteral("nope")})
	if got := s.SuggestNext(5); got != nil {
		t.Errorf("empty session suggested %v", got)
	}
}

func TestSuggestEntropyValues(t *testing.T) {
	s := NewSession(guideStore(t))
	for _, g := range s.SuggestNext(10) {
		if g.Predicate == ex("balanced") {
			// 4 even values → entropy 2 bits.
			if g.Entropy < 1.99 || g.Entropy > 2.01 {
				t.Errorf("balanced entropy = %g, want ~2", g.Entropy)
			}
			if g.Coverage < 0.99 {
				t.Errorf("balanced coverage = %g", g.Coverage)
			}
		}
		if g.Predicate == ex("skewed") && g.Entropy > 0.5 {
			t.Errorf("skewed entropy = %g, too high", g.Entropy)
		}
	}
}
