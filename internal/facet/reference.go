package facet

import (
	"sort"

	"github.com/lodviz/lodviz/internal/rdf"
	"github.com/lodviz/lodviz/internal/store"
)

// ReferenceFacets is the pre-refactor term-space facet algorithm: filter the
// entity set with per-entity Contains probes, then re-scan every matched
// entity's statements hashing interface-valued terms. It is kept as the
// differential oracle for the ID-space Session and as the benchmark
// baseline the exploration scenarios compare against — not for production
// use.
func ReferenceFacets(st *store.Store, entities []rdf.Term, filters []Filter, maxValues int) []Facet {
	matches := make([]rdf.Term, 0, len(entities))
	for _, e := range entities {
		ok := true
		for _, f := range filters {
			if !st.Contains(rdf.Triple{S: e, P: f.Predicate, O: f.Value}) {
				ok = false
				break
			}
		}
		if ok {
			matches = append(matches, e)
		}
	}
	type agg struct {
		counts map[rdf.Term]int
		total  int
	}
	per := map[rdf.IRI]*agg{}
	for _, e := range matches {
		seenPred := map[rdf.IRI]bool{}
		st.ForEach(store.Pattern{S: e}, func(t rdf.Triple) bool {
			a := per[t.P]
			if a == nil {
				a = &agg{counts: map[rdf.Term]int{}}
				per[t.P] = a
			}
			a.counts[t.O]++
			if !seenPred[t.P] {
				seenPred[t.P] = true
				a.total++
			}
			return true
		})
	}
	out := make([]Facet, 0, len(per))
	for p, a := range per {
		f := Facet{Predicate: p, Total: a.total}
		for term, c := range a.counts {
			f.Values = append(f.Values, Value{Term: term, Count: c})
		}
		sort.Slice(f.Values, func(i, j int) bool {
			if f.Values[i].Count != f.Values[j].Count {
				return f.Values[i].Count > f.Values[j].Count
			}
			return rdf.Compare(f.Values[i].Term, f.Values[j].Term) < 0
		})
		if maxValues > 0 && len(f.Values) > maxValues {
			f.Values = f.Values[:maxValues]
		}
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Total != out[j].Total {
			return out[i].Total > out[j].Total
		}
		return out[i].Predicate < out[j].Predicate
	})
	return out
}

// BaseEntities exposes the session's current base set as terms, so callers
// can hand the same entity set to ReferenceFacets.
func (s *Session) BaseEntities() []rdf.Term {
	out := s.src.Terms(s.base)
	if out == nil {
		out = []rdf.Term{}
	}
	out = append(out, s.extra...)
	sortTerms(out)
	return out
}
