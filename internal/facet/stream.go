package facet

import (
	"context"
	"sort"

	"github.com/lodviz/lodviz/internal/explore"
	"github.com/lodviz/lodviz/internal/progressive"
	"github.com/lodviz/lodviz/internal/rdf"
	"github.com/lodviz/lodviz/internal/store"
)

// ValueEstimate is one facet value's mid-scan count estimate.
type ValueEstimate struct {
	Term  rdf.Term
	Count progressive.Estimate
}

// FacetEstimate is one predicate's mid-scan distribution estimate.
type FacetEstimate struct {
	Predicate rdf.IRI
	Total     progressive.Estimate
	Values    []ValueEstimate
}

// Batch is one refining approximate answer from Session.Stream. Count is
// exact from the start (the match set is an index intersection, cheap to
// compute upfront); the distributions carry CLT-scaled estimates whose
// intervals shrink with Fraction.
type Batch struct {
	// Scanned is the number of statements visited so far.
	Scanned int
	// Fraction is Scanned over the dataset size.
	Fraction float64
	// Count is the exact size of the matched entity set.
	Count int
	// Facets are ordered by estimated coverage descending, predicate
	// ascending on ties; within a facet, values by estimated count
	// descending with dictionary-ID tie-breaks (term tie-breaks would
	// need decoding values that never get emitted).
	Facets []FacetEstimate
}

// Stream computes the facet distributions progressively: the exact match
// set is intersected upfront, then one paged ID walk aggregates the
// distribution, emitting an approximate Batch every batchPages pages and
// finally returning the exact count and facets — the same values FacetsCtx
// produces, because both paths share the accumulator and assembler. emit
// returning false aborts with explore.ErrStopped; a layout-epoch restart
// resets the aggregation (Fraction drops back, then re-grows). pageSize <=
// 0 selects explore.DefaultPageSize; batchPages < 1 is treated as 1.
func (s *Session) Stream(ctx context.Context, pageSize, batchPages int, emit func(Batch) bool) (int, []Facet, error) {
	if batchPages < 1 {
		batchPages = 1
	}
	matches, err := s.matchIDs(ctx)
	if err != nil {
		return 0, nil, err
	}
	count := len(matches)
	if len(s.filters) == 0 {
		count += len(s.extra)
	}
	member := make(map[store.ID]struct{}, len(matches))
	for _, id := range matches {
		member[id] = struct{}{}
	}
	population := s.src.EstimateCountIDs(0, 0, 0)

	// Walk pages interleave the sorted base region with unsorted delta
	// entries, so coverage totals use a (subject, predicate) pair set
	// rather than group transitions.
	per := distribution{}
	pairs := map[uint64]struct{}{}
	pages := 0
	stopped := false
	if len(matches) > 0 {
		err = explore.Walk(ctx, s.src, 0, 0, 0, pageSize, explore.WalkHandler{
			Visit: func(t store.IDTriple) bool {
				if _, ok := member[t.S]; !ok {
					return true
				}
				a := per.get(t.P)
				a.counts[t.O]++
				pair := store.PackPair(t.S, t.P)
				if _, seen := pairs[pair]; !seen {
					pairs[pair] = struct{}{}
					a.total++
				}
				return true
			},
			Page: func(scanned int, done bool) bool {
				if done {
					return true
				}
				pages++
				if pages%batchPages != 0 {
					return true
				}
				if !emit(s.batch(per, count, scanned, population)) {
					stopped = true
					return false
				}
				return true
			},
			Reset: func() {
				per = distribution{}
				pairs = map[uint64]struct{}{}
				pages = 0
			},
		})
		if err != nil {
			return 0, nil, err
		}
		if stopped {
			return 0, nil, explore.ErrStopped
		}
	}
	return count, s.assemble(per), nil
}

// batch freezes the aggregation into an approximate Batch: per-value counts
// are scaled to population estimates, the value list is capped before
// decoding so only emitted terms are ever materialized.
func (s *Session) batch(per distribution, count, scanned, population int) Batch {
	b := Batch{Scanned: scanned, Count: count}
	if population > 0 {
		b.Fraction = float64(scanned) / float64(population)
		if b.Fraction > 1 {
			b.Fraction = 1
		}
	} else {
		b.Fraction = 1
	}
	type valueID struct {
		id store.ID
		n  int
	}
	type facetID struct {
		pid    store.ID
		total  int
		values []valueID
	}
	fs := make([]facetID, 0, len(per))
	for pid, a := range per {
		f := facetID{pid: pid, total: a.total}
		for oid, c := range a.counts {
			f.values = append(f.values, valueID{id: oid, n: c})
		}
		sort.Slice(f.values, func(i, j int) bool {
			if f.values[i].n != f.values[j].n {
				return f.values[i].n > f.values[j].n
			}
			return f.values[i].id < f.values[j].id
		})
		if s.MaxValuesPerFacet > 0 && len(f.values) > s.MaxValuesPerFacet {
			f.values = f.values[:s.MaxValuesPerFacet]
		}
		fs = append(fs, f)
	}
	sort.Slice(fs, func(i, j int) bool {
		if fs[i].total != fs[j].total {
			return fs[i].total > fs[j].total
		}
		return fs[i].pid < fs[j].pid
	})
	ids := make([]store.ID, 0, len(fs)*2)
	for _, f := range fs {
		ids = append(ids, f.pid)
		for _, v := range f.values {
			ids = append(ids, v.id)
		}
	}
	terms := s.src.Terms(ids)
	decoded := make(map[store.ID]rdf.Term, len(ids))
	for i, id := range ids {
		decoded[id] = terms[i]
	}
	for _, f := range fs {
		p, ok := decoded[f.pid].(rdf.IRI)
		if !ok {
			continue
		}
		fe := FacetEstimate{
			Predicate: p,
			Total:     progressive.CountEstimate(f.total, scanned, population),
		}
		for _, v := range f.values {
			fe.Values = append(fe.Values, ValueEstimate{
				Term:  decoded[v.id],
				Count: progressive.CountEstimate(v.n, scanned, population),
			})
		}
		b.Facets = append(b.Facets, fe)
	}
	return b
}
