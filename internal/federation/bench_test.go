package federation

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"github.com/lodviz/lodviz/internal/rdf"
	"github.com/lodviz/lodviz/internal/sparql"
)

// benchFixture builds a remote endpoint holding n entities with names, and
// n local bindings referencing them.
func benchFixture(b *testing.B, n int) (*Mesh, string, *sparql.Group, []sparql.Binding) {
	b.Helper()
	var ttl strings.Builder
	ttl.WriteString("@prefix ex: <http://example.org/> .\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&ttl, "ex:e%d ex:name \"entity %d\" .\n", i, i)
	}
	remote := mustStore(b, ttl.String())
	peer := sparqlEndpoint(b, remote, nil)

	q, err := sparql.Parse(`SELECT * WHERE { ?e <http://example.org/name> ?n }`)
	if err != nil {
		b.Fatal(err)
	}
	bindings := make([]sparql.Binding, n)
	for i := range bindings {
		bindings[i] = sparql.Binding{"e": rdf.IRI(fmt.Sprintf("http://example.org/e%d", i))}
	}
	// Caching disabled: every iteration must pay the real network cost.
	mesh := NewMesh(Options{CacheCapacity: -1, Retries: -1})
	return mesh, peer.URL, q.Where, bindings
}

// BenchmarkBindJoin contrasts the two federated join strategies at 1k local
// bindings: batched VALUES dispatch (the bind join, 64 rows per request)
// versus one request per binding. The batched form must win by the
// per-request overhead factor — this is the measurement behind the
// federation layer's batching default.
func BenchmarkBindJoin(b *testing.B) {
	const n = 1000
	run := func(b *testing.B, batchSize, parallel int) {
		mesh, url, pattern, bindings := benchFixture(b, n)
		fetch := func(ctx context.Context, query string) ([]sparql.Binding, error) {
			return mesh.Fetch(ctx, url, query)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rows, err := bindJoin(context.Background(), fetch, pattern, bindings, batchSize, parallel)
			if err != nil {
				b.Fatal(err)
			}
			if len(rows) != n {
				b.Fatalf("rows = %d, want %d", len(rows), n)
			}
		}
		b.ReportMetric(float64(n)/float64(batchSize), "requests/op")
	}
	b.Run("Batched64", func(b *testing.B) { run(b, 64, DefaultParallel) })
	b.Run("PerBinding", func(b *testing.B) { run(b, 1, DefaultParallel) })
}
