package federation

import (
	"context"
	"sort"
	"strconv"
	"strings"
	"sync"

	"github.com/lodviz/lodviz/internal/rdf"
	"github.com/lodviz/lodviz/internal/sparql"
)

// The bind join is the workhorse of federated evaluation. Shipping one
// remote request per local binding drowns in per-request latency; shipping
// the bare pattern and joining locally transfers the remote relation in
// full. The bind join batches the *distinct projections* of the local
// bindings onto the pattern's variables into a VALUES block, so each remote
// request answers for a whole batch and transfers only the rows that can
// join.
//
// Correct multiset semantics need one refinement: a remote solution can be
// compatible with several VALUES rows (UNDEF entries make this common), and
// on the way back we must know which local bindings each returned row may
// merge with. Each VALUES row therefore carries a synthetic ordinal column —
// the batch key — that the remote join propagates untouched; at merge time a
// returned row joins exactly the local bindings whose projection produced
// that ordinal. The result is precisely eval(pattern) ⋈ bindings, each pair
// contributing once.

// DefaultBatchSize is the VALUES rows shipped per remote request.
const DefaultBatchSize = 64

// DefaultParallel is the bounded number of concurrent batch requests one
// SERVICE evaluation dispatches.
const DefaultParallel = 4

// fetchFunc executes one remote subquery and returns its decoded rows.
type fetchFunc func(ctx context.Context, query string) ([]sparql.Binding, error)

// bindJoin evaluates pattern remotely via fetch and joins the results with
// the local bindings, dispatching batched VALUES subqueries with at most
// parallel in flight.
func bindJoin(ctx context.Context, fetch fetchFunc, pattern *sparql.Group, bindings []sparql.Binding, batchSize, parallel int) ([]sparql.Binding, error) {
	if len(bindings) == 0 {
		return nil, nil
	}
	if batchSize <= 0 {
		batchSize = DefaultBatchSize
	}
	if parallel <= 0 {
		parallel = DefaultParallel
	}

	shared := sharedVars(pattern, bindings)
	patternText := sparql.FormatGroup(pattern)

	// Project each binding onto the shared vars; identical projections
	// share a VALUES row (and therefore remote work).
	rows, keyOf := projectDistinct(bindings, shared)

	var queries []string
	if len(shared) == 0 {
		// Nothing to inject: one uncorrelated remote evaluation.
		queries = []string{"SELECT * WHERE { " + patternText + " }"}
	} else {
		keyVar := freshKeyVar(pattern, shared)
		for lo := 0; lo < len(rows); lo += batchSize {
			hi := lo + batchSize
			if hi > len(rows) {
				hi = len(rows)
			}
			queries = append(queries, batchQuery(patternText, shared, keyVar, rows[lo:hi], lo))
		}
	}

	batchRows, err := fetchAll(ctx, fetch, queries, parallel)
	if err != nil {
		return nil, err
	}

	// Group returned rows by their batch key (everything under key 0 when
	// nothing was injected). The rows may be shared with the mesh's result
	// cache, so they are never mutated here — the ordinal column is
	// skipped at merge time instead of deleted.
	byKey := make(map[int][]sparql.Binding)
	var keyVar string
	if len(shared) == 0 {
		byKey[0] = batchRows[0]
	} else {
		keyVar = freshKeyVar(pattern, shared)
		for _, rs := range batchRows {
			for _, row := range rs {
				k, ok := rowKey(row, keyVar)
				if !ok {
					continue // a row without its ordinal cannot be attributed
				}
				byKey[k] = append(byKey[k], row)
			}
		}
	}

	// Merge: each local binding joins the remote rows returned for its
	// projection's ordinal.
	var out []sparql.Binding
	for i, b := range bindings {
		for _, remote := range byKey[keyOf[i]] {
			if merged, ok := mergeBindings(b, remote, keyVar); ok {
				out = append(out, merged)
			}
		}
	}
	return out, nil
}

// sharedVars returns the sorted intersection of the variables the pattern
// certainly binds with the variables bound by at least one local binding —
// the columns safe and worth injecting. Only *certainly* bound remote
// variables qualify: injecting a variable the remote pattern binds merely
// optionally would let the VALUES row itself survive (e.g. through an
// OPTIONAL unextended) and manufacture solutions spec SERVICE semantics
// does not produce.
func sharedVars(pattern *sparql.Group, bindings []sparql.Binding) []string {
	bound := map[string]bool{}
	for _, b := range bindings {
		for v := range b {
			bound[v] = true
		}
	}
	var shared []string
	for _, v := range sparql.CertainVars(pattern) {
		if bound[v] {
			shared = append(shared, v)
		}
	}
	sort.Strings(shared)
	return shared
}

// projectDistinct projects every binding onto vars, deduplicating identical
// projections. It returns the distinct rows (nil entries = UNDEF) and, for
// each input binding, the index of its row.
//
// Blank-node values project to UNDEF: the SPARQL 1.1 grammar forbids blank
// nodes in VALUES data (a standards-compliant endpoint would reject the
// subquery), and a document-scoped label is not a constraint a remote
// endpoint could honor anyway. The unconstrained remote rows come back a
// superset, and the merge-time compatibility check keeps exactly the ones
// that agree with the local bnode binding.
func projectDistinct(bindings []sparql.Binding, vars []string) ([][]rdf.Term, []int) {
	keyOf := make([]int, len(bindings))
	if len(vars) == 0 {
		return nil, keyOf // every binding projects to the empty row, key 0
	}
	seen := map[string]int{}
	var rows [][]rdf.Term
	var sig strings.Builder
	for i, b := range bindings {
		sig.Reset()
		row := make([]rdf.Term, len(vars))
		for j, v := range vars {
			if t, ok := b[v]; ok && t.Kind() != rdf.KindBlank {
				row[j] = t
				sig.WriteString(t.String())
			}
			sig.WriteByte('|')
		}
		k, ok := seen[sig.String()]
		if !ok {
			k = len(rows)
			seen[sig.String()] = k
			rows = append(rows, row)
		}
		keyOf[i] = k
	}
	return rows, keyOf
}

// freshKeyVar picks the ordinal column name, avoiding collision with any
// pattern or shared variable. The name must not start with '_' (the engine
// hides such columns from SELECT *), and the choice is deterministic so the
// generated query text — and with it the result-cache key — is stable.
func freshKeyVar(pattern *sparql.Group, shared []string) string {
	taken := map[string]bool{}
	for _, v := range sparql.BindableVars(pattern) {
		taken[v] = true
	}
	for _, v := range shared {
		taken[v] = true
	}
	name := "lodvizBJK"
	for taken[name] {
		name += "x"
	}
	return name
}

// batchQuery renders one remote subquery: the VALUES block carrying this
// batch's projections (each row tagged with its global ordinal) joined with
// the pattern.
func batchQuery(patternText string, shared []string, keyVar string, rows [][]rdf.Term, firstKey int) string {
	var b strings.Builder
	b.WriteString("SELECT * WHERE { VALUES (")
	for _, v := range shared {
		b.WriteString("?" + v + " ")
	}
	b.WriteString("?" + keyVar + ") { ")
	for i, row := range rows {
		b.WriteString("(")
		for _, t := range row {
			if t == nil {
				b.WriteString("UNDEF ")
			} else {
				b.WriteString(t.String() + " ")
			}
		}
		b.WriteString(strconv.Itoa(firstKey+i) + ") ")
	}
	b.WriteString("} ")
	b.WriteString(patternText)
	b.WriteString(" }")
	return b.String()
}

// fetchAll runs the subqueries with at most parallel in flight, returning
// per-query row slices in query order. The first error cancels the rest.
func fetchAll(ctx context.Context, fetch fetchFunc, queries []string, parallel int) ([][]sparql.Binding, error) {
	results := make([][]sparql.Binding, len(queries))
	if len(queries) == 1 {
		rows, err := fetch(ctx, queries[0])
		if err != nil {
			return nil, err
		}
		results[0] = rows
		return results, nil
	}
	gctx, cancel := context.WithCancel(ctx)
	defer cancel()
	sem := make(chan struct{}, parallel)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	for i, q := range queries {
		select {
		case sem <- struct{}{}:
		case <-gctx.Done():
		}
		if gctx.Err() != nil {
			break
		}
		wg.Add(1)
		go func(i int, q string) {
			defer wg.Done()
			defer func() { <-sem }()
			rows, err := fetch(gctx, q)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if firstErr == nil {
					firstErr = err
					cancel()
				}
				return
			}
			results[i] = rows
		}(i, q)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return results, nil
}

// rowKey extracts the batch ordinal from a returned row.
func rowKey(row sparql.Binding, keyVar string) (int, bool) {
	t, ok := row[keyVar]
	if !ok {
		return 0, false
	}
	l, ok := t.(rdf.Literal)
	if !ok {
		return 0, false
	}
	n, err := strconv.Atoi(strings.TrimSpace(l.Lexical))
	if err != nil {
		return 0, false
	}
	return n, true
}

// mergeBindings joins a local binding with a remote row under SPARQL
// compatibility: vars bound on both sides must agree, the rest union. The
// remote row is never read-modified (it may be shared via the result
// cache); the synthetic ordinal column skipVar is left out of the merge.
func mergeBindings(local, remote sparql.Binding, skipVar string) (sparql.Binding, bool) {
	out := make(sparql.Binding, len(local)+len(remote))
	for k, v := range local {
		out[k] = v
	}
	for k, v := range remote {
		if k == skipVar && skipVar != "" {
			continue
		}
		if prev, ok := out[k]; ok {
			if prev != v {
				return nil, false
			}
			continue
		}
		out[k] = v
	}
	return out, true
}
