package federation

import (
	"container/list"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/lodviz/lodviz/internal/sparql"
)

// The remote-result cache differs from the server's response cache in one
// fundamental way: local responses are keyed by the store generation, which
// a write advances, so invalidation is exact. Remote data has no generation
// we can observe — so entries instead carry a TTL and staleness is bounded
// by time. Keys are (endpoint, subquery text); the bind-join executor
// generates canonical subquery text, so identical SERVICE work hits
// identical keys.

// rcShards is the shard count of the remote-result cache.
const rcShards = 16

// DefaultCacheCapacity is the entry capacity used for non-positive values.
const DefaultCacheCapacity = 1024

// DefaultCacheTTL is the entry lifetime used for non-positive values.
const DefaultCacheTTL = 30 * time.Second

// ResultCache is a sharded LRU of decoded remote results with TTL expiry.
// Safe for concurrent use. Cached rows are shared between readers and must
// be treated as immutable.
type ResultCache struct {
	ttl    time.Duration
	now    func() time.Time
	shards [rcShards]rcShard
	hits   atomic.Uint64
	misses atomic.Uint64
}

type rcShard struct {
	mu    sync.Mutex
	ll    *list.List
	items map[string]*list.Element
	cap   int
}

type rcItem struct {
	key     string
	rows    []sparql.Binding
	expires time.Time
}

// NewResultCache returns a cache of at most capacity entries whose entries
// expire ttl after insertion.
func NewResultCache(capacity int, ttl time.Duration) *ResultCache {
	if capacity <= 0 {
		capacity = DefaultCacheCapacity
	}
	if ttl <= 0 {
		ttl = DefaultCacheTTL
	}
	perShard := (capacity + rcShards - 1) / rcShards
	c := &ResultCache{ttl: ttl, now: time.Now}
	for i := range c.shards {
		c.shards[i].ll = list.New()
		c.shards[i].items = make(map[string]*list.Element)
		c.shards[i].cap = perShard
	}
	return c
}

// Key builds the cache key for a subquery against an endpoint.
func Key(endpoint, query string) string {
	return endpoint + "\x00" + query
}

func (c *ResultCache) shard(key string) *rcShard {
	h := fnv.New32a()
	h.Write([]byte(key))
	return &c.shards[h.Sum32()%rcShards]
}

// Get returns the cached rows for key if present and unexpired. Expired
// entries are removed on access.
func (c *ResultCache) Get(key string) ([]sparql.Binding, bool) {
	s := c.shard(key)
	s.mu.Lock()
	el, ok := s.items[key]
	if !ok {
		s.mu.Unlock()
		c.misses.Add(1)
		return nil, false
	}
	it := el.Value.(*rcItem)
	if c.now().After(it.expires) {
		s.ll.Remove(el)
		delete(s.items, key)
		s.mu.Unlock()
		c.misses.Add(1)
		return nil, false
	}
	s.ll.MoveToFront(el)
	rows := it.rows
	s.mu.Unlock()
	c.hits.Add(1)
	return rows, true
}

// Put stores rows under key with the cache's TTL, evicting LRU entries from
// the key's shard as needed.
func (c *ResultCache) Put(key string, rows []sparql.Binding) {
	s := c.shard(key)
	expires := c.now().Add(c.ttl)
	s.mu.Lock()
	if el, ok := s.items[key]; ok {
		it := el.Value.(*rcItem)
		it.rows, it.expires = rows, expires
		s.ll.MoveToFront(el)
		s.mu.Unlock()
		return
	}
	s.items[key] = s.ll.PushFront(&rcItem{key: key, rows: rows, expires: expires})
	for s.ll.Len() > s.cap {
		back := s.ll.Back()
		s.ll.Remove(back)
		delete(s.items, back.Value.(*rcItem).key)
	}
	s.mu.Unlock()
}

// Len returns the number of cached entries (expired ones included until
// touched).
func (c *ResultCache) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += s.ll.Len()
		s.mu.Unlock()
	}
	return n
}

// CacheStats is a snapshot of remote-result cache effectiveness.
type CacheStats struct {
	Hits    uint64 `json:"hits"`
	Misses  uint64 `json:"misses"`
	Entries int    `json:"entries"`
}

// Stats returns the cache counters.
func (c *ResultCache) Stats() CacheStats {
	return CacheStats{Hits: c.hits.Load(), Misses: c.misses.Load(), Entries: c.Len()}
}
