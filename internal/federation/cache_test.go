package federation

import (
	"fmt"
	"testing"
	"time"

	"github.com/lodviz/lodviz/internal/rdf"
	"github.com/lodviz/lodviz/internal/sparql"
)

func rows(n int) []sparql.Binding {
	out := make([]sparql.Binding, n)
	for i := range out {
		out[i] = sparql.Binding{"s": rdf.NewInteger(int64(i))}
	}
	return out
}

func TestResultCacheHitAndTTL(t *testing.T) {
	clock := newFakeClock()
	c := NewResultCache(64, 10*time.Second)
	c.now = clock.now

	key := Key("http://a/sparql", "SELECT * WHERE { ?s ?p ?o }")
	if _, ok := c.Get(key); ok {
		t.Fatal("empty cache hit")
	}
	c.Put(key, rows(3))
	got, ok := c.Get(key)
	if !ok || len(got) != 3 {
		t.Fatalf("Get after Put: ok=%v len=%d", ok, len(got))
	}

	// Within TTL: still served.
	clock.advance(9 * time.Second)
	if _, ok := c.Get(key); !ok {
		t.Fatal("entry expired before its TTL")
	}
	// Past TTL: expired and removed.
	clock.advance(2 * time.Second)
	if _, ok := c.Get(key); ok {
		t.Fatal("entry served after TTL")
	}
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 2 {
		t.Errorf("stats = %+v, want 2 hits 2 misses", st)
	}
	if st.Entries != 0 {
		t.Errorf("expired entry still counted: %+v", st)
	}
}

func TestResultCacheEviction(t *testing.T) {
	c := NewResultCache(16, time.Minute) // 1 entry per shard
	for i := 0; i < 200; i++ {
		c.Put(Key("http://a/", fmt.Sprintf("q%d", i)), rows(1))
	}
	if n := c.Len(); n > 16 {
		t.Errorf("cache grew to %d entries, cap 16", n)
	}
}

func TestResultCacheKeySeparatesEndpoints(t *testing.T) {
	c := NewResultCache(64, time.Minute)
	q := "SELECT * WHERE { ?s ?p ?o }"
	c.Put(Key("http://a/sparql", q), rows(1))
	if _, ok := c.Get(Key("http://b/sparql", q)); ok {
		t.Fatal("same query on another endpoint must miss")
	}
}
