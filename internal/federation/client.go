package federation

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"

	"github.com/lodviz/lodviz/internal/sparql"
)

// ClientOptions tune one endpoint client. The zero value selects the
// defaults documented on each field.
type ClientOptions struct {
	// HTTPClient is the transport (nil = http.DefaultClient).
	HTTPClient *http.Client
	// Timeout bounds one request attempt, connect-to-last-byte
	// (non-positive = 10s).
	Timeout time.Duration
	// Retries is how many times a failed request is retried on transient
	// failures — network errors, 429s and 5xx responses (negative = 0,
	// zero value = 2).
	Retries int
}

func (o ClientOptions) withDefaults() ClientOptions {
	if o.HTTPClient == nil {
		o.HTTPClient = http.DefaultClient
	}
	if o.Timeout <= 0 {
		o.Timeout = 10 * time.Second
	}
	if o.Retries == 0 {
		o.Retries = 2
	} else if o.Retries < 0 {
		o.Retries = 0
	}
	return o
}

// maxResponseBytes bounds one remote response body. Remote endpoints are
// untrusted input just like POSTed triples (which share the same 64 MiB
// cap): without a bound, one malicious or broken endpoint streaming an
// endless bindings array would grow res.Rows until the process dies. A
// response cut off at the cap fails decoding with a truncation error.
const maxResponseBytes = 64 << 20

// Client speaks the SPARQL 1.1 Protocol query operation against one remote
// endpoint: queries go out as POSTed forms, results come back as SPARQL-JSON
// and are decoded streamingly. Safe for concurrent use.
type Client struct {
	endpoint string
	opt      ClientOptions
}

// NewClient returns a client for the endpoint URL.
func NewClient(endpoint string, opt ClientOptions) *Client {
	return &Client{endpoint: endpoint, opt: opt.withDefaults()}
}

// Endpoint returns the endpoint URL the client targets.
func (c *Client) Endpoint() string { return c.endpoint }

// errStatus is a non-2xx protocol response; transient() decides retry.
type errStatus struct {
	code int
	body string
}

func (e *errStatus) Error() string {
	if e.body == "" {
		return fmt.Sprintf("endpoint returned HTTP %d", e.code)
	}
	return fmt.Sprintf("endpoint returned HTTP %d: %s", e.code, e.body)
}

func (e *errStatus) transient() bool {
	return e.code == http.StatusTooManyRequests || e.code >= 500
}

// Query executes one SPARQL query against the endpoint and decodes the
// SPARQL-JSON response. Each attempt runs under its own timeout; transient
// failures are retried with a short backoff until the retry budget or ctx
// runs out.
func (c *Client) Query(ctx context.Context, query string) (*sparql.Results, error) {
	var lastErr error
	for attempt := 0; attempt <= c.opt.Retries; attempt++ {
		if attempt > 0 {
			backoff := time.Duration(attempt) * 50 * time.Millisecond
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-time.After(backoff):
			}
		}
		res, err := c.queryOnce(ctx, query)
		if err == nil {
			return res, nil
		}
		lastErr = err
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		var se *errStatus
		if errors.As(err, &se) && !se.transient() {
			break // the endpoint understood us and said no; retrying won't help
		}
	}
	return nil, fmt.Errorf("federation: querying %s: %w", c.endpoint, lastErr)
}

func (c *Client) queryOnce(ctx context.Context, query string) (*sparql.Results, error) {
	actx, cancel := context.WithTimeout(ctx, c.opt.Timeout)
	defer cancel()

	form := url.Values{"query": {query}}
	req, err := http.NewRequestWithContext(actx, http.MethodPost, c.endpoint, strings.NewReader(form.Encode()))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	req.Header.Set("Accept", sparql.JSONContentType)
	req.Header.Set("User-Agent", "lodviz-federation/1.0")

	resp, err := c.opt.HTTPClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer func() {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		resp.Body.Close()
	}()
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		snippet, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, &errStatus{code: resp.StatusCode, body: strings.TrimSpace(string(snippet))}
	}
	return DecodeResults(io.LimitReader(resp.Body, maxResponseBytes))
}
