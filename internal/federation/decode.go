package federation

import (
	"encoding/json"
	"fmt"
	"io"

	"github.com/lodviz/lodviz/internal/rdf"
	"github.com/lodviz/lodviz/internal/sparql"
)

// DecodeTerm maps one SPARQL-JSON term back to an rdf.Term — the inverse of
// sparql.EncodeTerm. "typed-literal" is accepted as a legacy alias for
// "literal" (older endpoints emit it).
func DecodeTerm(jt sparql.JSONTerm) (rdf.Term, error) {
	switch jt.Type {
	case "uri":
		return rdf.IRI(jt.Value), nil
	case "bnode":
		return rdf.BlankNode(jt.Value), nil
	case "literal", "typed-literal":
		switch {
		case jt.Lang != "":
			return rdf.NewLangLiteral(jt.Value, jt.Lang), nil
		case jt.Datatype != "":
			return rdf.NewTypedLiteral(jt.Value, rdf.IRI(jt.Datatype)), nil
		default:
			return rdf.NewLiteral(jt.Value), nil
		}
	default:
		return nil, fmt.Errorf("federation: unknown term type %q", jt.Type)
	}
}

// DecodeResults reads a SPARQL 1.1 Query Results JSON document from r and
// reconstructs the sparql.Results it encodes. The results.bindings array is
// decoded streamingly — one solution at a time through json.Decoder — so a
// large remote result set never materializes as one raw JSON blob. Top-level
// keys may arrive in any order; unknown keys are skipped.
func DecodeResults(r io.Reader) (*sparql.Results, error) {
	dec := json.NewDecoder(r)
	res := &sparql.Results{Form: sparql.FormSelect}

	if err := expectDelim(dec, '{'); err != nil {
		return nil, err
	}
	for dec.More() {
		keyTok, err := dec.Token()
		if err != nil {
			return nil, decodeErr(err)
		}
		key, ok := keyTok.(string)
		if !ok {
			return nil, fmt.Errorf("federation: malformed results document: non-string key %v", keyTok)
		}
		switch key {
		case "head":
			var head struct {
				Vars []string `json:"vars"`
			}
			if err := dec.Decode(&head); err != nil {
				return nil, decodeErr(err)
			}
			res.Vars = head.Vars
		case "boolean":
			var b bool
			if err := dec.Decode(&b); err != nil {
				return nil, decodeErr(err)
			}
			res.Form = sparql.FormAsk
			res.Ask = b
		case "results":
			if err := decodeBindings(dec, res); err != nil {
				return nil, err
			}
		default:
			// Skip unknown values (e.g. "link") without materializing them.
			var skip json.RawMessage
			if err := dec.Decode(&skip); err != nil {
				return nil, decodeErr(err)
			}
		}
	}
	if err := expectDelim(dec, '}'); err != nil {
		return nil, err
	}
	return res, nil
}

// decodeBindings consumes the value of the "results" key: an object whose
// "bindings" member is an array of solutions, streamed one element at a time.
func decodeBindings(dec *json.Decoder, res *sparql.Results) error {
	if err := expectDelim(dec, '{'); err != nil {
		return err
	}
	for dec.More() {
		keyTok, err := dec.Token()
		if err != nil {
			return decodeErr(err)
		}
		key, _ := keyTok.(string)
		if key != "bindings" {
			var skip json.RawMessage
			if err := dec.Decode(&skip); err != nil {
				return decodeErr(err)
			}
			continue
		}
		if err := expectDelim(dec, '['); err != nil {
			return err
		}
		for dec.More() {
			var row map[string]sparql.JSONTerm
			if err := dec.Decode(&row); err != nil {
				return decodeErr(err)
			}
			b := make(sparql.Binding, len(row))
			for name, jt := range row {
				t, err := DecodeTerm(jt)
				if err != nil {
					return fmt.Errorf("%w (variable ?%s)", err, name)
				}
				b[name] = t
			}
			res.Rows = append(res.Rows, b)
		}
		if err := expectDelim(dec, ']'); err != nil {
			return err
		}
	}
	return expectDelim(dec, '}')
}

func expectDelim(dec *json.Decoder, want rune) error {
	tok, err := dec.Token()
	if err != nil {
		return decodeErr(err)
	}
	if d, ok := tok.(json.Delim); !ok || rune(d) != want {
		return fmt.Errorf("federation: malformed results document: expected %q, found %v", want, tok)
	}
	return nil
}

func decodeErr(err error) error {
	if err == io.EOF || err == io.ErrUnexpectedEOF {
		return fmt.Errorf("federation: truncated results document")
	}
	return fmt.Errorf("federation: decoding results: %w", err)
}
