package federation

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"github.com/lodviz/lodviz/internal/rdf"
	"github.com/lodviz/lodviz/internal/sparql"
)

// randTerm generates one canonical rdf.Term of a random kind. Only
// constructor-built terms are generated, so equality after a round trip is
// exact Go equality.
func randTerm(rng *rand.Rand) rdf.Term {
	switch rng.Intn(6) {
	case 0:
		return rdf.IRI(fmt.Sprintf("http://example.org/resource/%d", rng.Intn(1000)))
	case 1:
		return rdf.BlankNode(fmt.Sprintf("b%d", rng.Intn(100)))
	case 2:
		return rdf.NewLiteral(randText(rng))
	case 3:
		langs := []string{"en", "fr", "el", "de-at"}
		return rdf.NewLangLiteral(randText(rng), langs[rng.Intn(len(langs))])
	case 4:
		return rdf.NewInteger(rng.Int63n(1 << 40))
	default:
		dts := []rdf.IRI{rdf.XSDDouble, rdf.XSDDecimal, rdf.XSDDateTime, rdf.XSDBoolean, rdf.IRI("http://example.org/custom")}
		return rdf.NewTypedLiteral(randText(rng), dts[rng.Intn(len(dts))])
	}
}

func randText(rng *rand.Rand) string {
	alphabet := []rune(`abc XYZ 012 "quoted" \slash	tab
newline ελληνικά ünïcode`)
	n := rng.Intn(12)
	var b strings.Builder
	for i := 0; i < n; i++ {
		b.WriteRune(alphabet[rng.Intn(len(alphabet))])
	}
	return b.String()
}

// TestJSONRoundTripProperty encodes randomly generated result sets with the
// sparql package's serializer and decodes them with the federation decoder:
// the bindings must survive byte-exact (typed literals, language tags, and
// blank nodes included).
func TestJSONRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	vars := []string{"s", "p", "o", "x"}
	for trial := 0; trial < 200; trial++ {
		in := &sparql.Results{Form: sparql.FormSelect, Vars: vars}
		nrows := rng.Intn(8)
		for i := 0; i < nrows; i++ {
			row := sparql.Binding{}
			for _, v := range vars {
				if rng.Intn(4) == 0 {
					continue // leave unbound
				}
				row[v] = randTerm(rng)
			}
			in.Rows = append(in.Rows, row)
		}
		body, err := in.JSON()
		if err != nil {
			t.Fatalf("trial %d: JSON: %v", trial, err)
		}
		out, err := DecodeResults(bytes.NewReader(body))
		if err != nil {
			t.Fatalf("trial %d: DecodeResults: %v\nbody: %s", trial, err, body)
		}
		if out.Form != sparql.FormSelect {
			t.Fatalf("trial %d: form = %v", trial, out.Form)
		}
		if len(out.Vars) != len(in.Vars) {
			t.Fatalf("trial %d: vars = %v, want %v", trial, out.Vars, in.Vars)
		}
		if len(out.Rows) != len(in.Rows) {
			t.Fatalf("trial %d: %d rows, want %d", trial, len(out.Rows), len(in.Rows))
		}
		for i, want := range in.Rows {
			got := out.Rows[i]
			if len(got) != len(want) {
				t.Fatalf("trial %d row %d: %v, want %v", trial, i, got, want)
			}
			for k, wv := range want {
				if gv, ok := got[k]; !ok || gv != wv {
					t.Fatalf("trial %d row %d var %s: %#v, want %#v", trial, i, k, gv, wv)
				}
			}
		}
	}
}

func TestJSONRoundTripAsk(t *testing.T) {
	for _, ask := range []bool{true, false} {
		in := &sparql.Results{Form: sparql.FormAsk, Ask: ask}
		body, err := in.JSON()
		if err != nil {
			t.Fatalf("JSON: %v", err)
		}
		out, err := DecodeResults(bytes.NewReader(body))
		if err != nil {
			t.Fatalf("DecodeResults: %v", err)
		}
		if out.Form != sparql.FormAsk || out.Ask != ask {
			t.Errorf("round trip: form=%v ask=%v, want ask=%v", out.Form, out.Ask, ask)
		}
	}
}

func TestDecodeResultsKeyOrderAndUnknownKeys(t *testing.T) {
	// head after results, plus unknown members, per the "any order" contract.
	doc := `{"link": ["http://x/meta"], "results": {"bindings": [
		{"s": {"type": "uri", "value": "http://x/a"}}
	]}, "head": {"vars": ["s"]}}`
	res, err := DecodeResults(strings.NewReader(doc))
	if err != nil {
		t.Fatalf("DecodeResults: %v", err)
	}
	if len(res.Vars) != 1 || res.Vars[0] != "s" {
		t.Errorf("vars = %v", res.Vars)
	}
	if len(res.Rows) != 1 || res.Rows[0]["s"] != rdf.IRI("http://x/a") {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestDecodeResultsErrors(t *testing.T) {
	for _, doc := range []string{
		``,
		`[]`,
		`{"results": {"bindings": [{"s": {"type": "alien", "value": "x"}}]}}`,
		`{"results": {"bindings": [`,
		`{"head":`,
	} {
		if _, err := DecodeResults(strings.NewReader(doc)); err == nil {
			t.Errorf("DecodeResults(%q): expected error", doc)
		}
	}
}

// FuzzDecodeResults asserts the decoder never panics on arbitrary input and
// accepts everything the serializer emits.
func FuzzDecodeResults(f *testing.F) {
	seed := &sparql.Results{Form: sparql.FormSelect, Vars: []string{"s", "o"}, Rows: []sparql.Binding{
		{"s": rdf.IRI("http://x/a"), "o": rdf.NewLangLiteral("héllo", "fr")},
		{"o": rdf.NewInteger(42)},
	}}
	body, _ := seed.JSON()
	f.Add(string(body))
	askBody, _ := (&sparql.Results{Form: sparql.FormAsk, Ask: true}).JSON()
	f.Add(string(askBody))
	f.Add(`{"head": {"vars": []}, "results": {"bindings": []}}`)
	f.Add(`{"results": {"bindings": [{"s": {"type": "bnode", "value": "b0"}}]}}`)
	f.Fuzz(func(t *testing.T, doc string) {
		res, err := DecodeResults(strings.NewReader(doc))
		if err != nil {
			return
		}
		// Whatever decoded must re-encode without error.
		if _, err := res.JSON(); err != nil {
			t.Fatalf("re-encoding decoded results: %v", err)
		}
	})
}
