// Package federation lets one lodviz node answer queries that span many
// SPARQL endpoints — the "Web" in the Web of Big Linked Data. The survey's
// cross-dataset exploration scenario (follow an owl:sameAs link out of the
// local dataset into a remote one) needs exactly four things, and this
// package layers them:
//
//   - a SPARQL Protocol client (Client) with a streaming SPARQL-JSON
//     decoder — the inverse of the sparql package's serializer — plus
//     retries and per-request timeouts;
//   - an endpoint registry (Registry) tracking health, a latency EWMA, and
//     per-predicate cardinality summaries, with circuit breakers that eject
//     failing endpoints and probe them back in;
//   - a bind-join executor that batches local bindings into VALUES-injected
//     remote subqueries and streams the merged solutions back, dispatching
//     batches with bounded parallelism;
//   - a sharded remote-result cache keyed by (endpoint, subquery) with TTL
//     expiry — remote data has no generation counter to key on, so staleness
//     is bounded by time instead.
//
// Mesh ties the layers together and implements sparql.ServiceEvaluator, so
// plugging a Mesh into sparql.Options.Service gives the engine a working
// SERVICE clause. Any SPARQL 1.1 endpoint that speaks the JSON results
// format works as a peer — including other lodvizd instances, which is how
// a set of nodes becomes an exploration mesh.
package federation
