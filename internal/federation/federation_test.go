package federation

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/lodviz/lodviz/internal/rdf"
	"github.com/lodviz/lodviz/internal/sparql"
	"github.com/lodviz/lodviz/internal/store"
	"github.com/lodviz/lodviz/internal/turtle"
)

// Test topology: cities live locally, countries live on the remote peer.
const citiesTTL = `
@prefix ex: <http://example.org/> .
ex:athens ex:locatedIn ex:greece ; ex:population 664046 .
ex:patras ex:locatedIn ex:greece ; ex:population 213984 .
ex:lyon ex:locatedIn ex:france ; ex:population 513275 .
ex:bordeaux ex:locatedIn ex:france ; ex:population 252040 .
ex:atlantis ex:locatedIn ex:nowhere .
`

const countriesTTL = `
@prefix ex: <http://example.org/> .
ex:greece ex:name "Greece"@en ; ex:continent ex:europe .
ex:france ex:name "France"@en ; ex:continent ex:europe .
ex:japan ex:name "Japan"@en ; ex:continent ex:asia .
`

func mustStore(t testing.TB, ttl string) *store.Store {
	t.Helper()
	triples, err := turtle.ParseString(ttl)
	if err != nil {
		t.Fatalf("turtle: %v", err)
	}
	st, err := store.Load(triples)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	return st
}

// sparqlEndpoint is a minimal SPARQL Protocol endpoint over one store —
// what any conformant peer looks like to the federation layer.
func sparqlEndpoint(t testing.TB, st *store.Store, hits *atomic.Int64) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits != nil {
			hits.Add(1)
		}
		if err := r.ParseForm(); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		q := r.Form.Get("query")
		res, err := sparql.Exec(st, q)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		body, err := res.JSON()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", sparql.JSONContentType)
		w.Write(body)
	}))
	t.Cleanup(srv.Close)
	return srv
}

func canon(rows []sparql.Binding) string {
	lines := make([]string, 0, len(rows))
	for _, r := range rows {
		keys := make([]string, 0, len(r))
		for k := range r {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		var sb strings.Builder
		for _, k := range keys {
			sb.WriteString(k + "=" + r[k].String() + " ")
		}
		lines = append(lines, sb.String())
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// localFetch evaluates generated subqueries directly against a store —
// bind-join unit testing without HTTP in the way.
func localFetch(st *store.Store) fetchFunc {
	return func(_ context.Context, query string) ([]sparql.Binding, error) {
		res, err := sparql.Exec(st, query)
		if err != nil {
			return nil, fmt.Errorf("remote eval of %q: %w", query, err)
		}
		return res.Rows, nil
	}
}

func parsePattern(t *testing.T, src string) *sparql.Group {
	t.Helper()
	q, err := sparql.Parse("SELECT * WHERE " + src)
	if err != nil {
		t.Fatalf("parse pattern %q: %v", src, err)
	}
	return q.Where
}

func TestBindJoinMatchesDirectJoin(t *testing.T) {
	remote := mustStore(t, countriesTTL)
	pattern := parsePattern(t, `{ ?country <http://example.org/name> ?name }`)

	ex := func(s string) rdf.IRI { return rdf.IRI("http://example.org/" + s) }
	bindings := []sparql.Binding{
		{"city": ex("athens"), "country": ex("greece")},
		{"city": ex("patras"), "country": ex("greece")},
		{"city": ex("lyon"), "country": ex("france")},
		{"city": ex("atlantis"), "country": ex("nowhere")}, // no remote match
		{"city": ex("patras"), "country": ex("greece")},    // duplicate: multiset must keep both
		{"city": ex("unmoored")},                           // ?country unbound: UNDEF row, joins every country
	}

	// Expected: remote pattern evaluated in full, nested-loop joined.
	remoteAll, err := sparql.Exec(remote, "SELECT * WHERE { ?country <http://example.org/name> ?name }")
	if err != nil {
		t.Fatal(err)
	}
	var want []sparql.Binding
	for _, b := range bindings {
		for _, r := range remoteAll.Rows {
			if m, ok := mergeBindings(b, r, ""); ok {
				want = append(want, m)
			}
		}
	}

	for _, batch := range []int{1, 2, 3, 64} {
		got, err := bindJoin(context.Background(), localFetch(remote), pattern, bindings, batch, 2)
		if err != nil {
			t.Fatalf("bindJoin(batch=%d): %v", batch, err)
		}
		if canon(got) != canon(want) {
			t.Errorf("bindJoin(batch=%d) diverged from direct join\n got:\n%s\nwant:\n%s", batch, canon(got), canon(want))
		}
	}
}

// TestBindJoinOptionalPatternKeepsSpecSemantics pins the injection-safety
// rule: a variable the remote pattern binds only inside OPTIONAL must not
// be injected, or the VALUES row itself survives the OPTIONAL unextended
// and manufactures solutions spec SERVICE semantics does not produce.
func TestBindJoinOptionalPatternKeepsSpecSemantics(t *testing.T) {
	remote := mustStore(t, countriesTTL)
	pattern := parsePattern(t, `{ OPTIONAL { ?country <http://example.org/name> ?name } }`)
	ex := func(s string) rdf.IRI { return rdf.IRI("http://example.org/" + s) }
	bindings := []sparql.Binding{
		{"country": ex("greece")},
		{"country": ex("nowhere")}, // must yield NO solution, not an unextended one
	}

	// Spec semantics: eval the pattern remotely in isolation, join locally.
	remoteAll, err := sparql.Exec(remote, "SELECT * WHERE { OPTIONAL { ?country <http://example.org/name> ?name } }")
	if err != nil {
		t.Fatal(err)
	}
	var want []sparql.Binding
	for _, b := range bindings {
		for _, r := range remoteAll.Rows {
			if m, ok := mergeBindings(b, r, ""); ok {
				want = append(want, m)
			}
		}
	}

	got, err := bindJoin(context.Background(), localFetch(remote), pattern, bindings, 64, 2)
	if err != nil {
		t.Fatal(err)
	}
	if canon(got) != canon(want) {
		t.Errorf("OPTIONAL-only pattern diverged from spec semantics\n got:\n%s\nwant:\n%s", canon(got), canon(want))
	}
	for _, r := range got {
		if r["country"] == ex("nowhere") {
			t.Errorf("spurious solution for unmatched binding: %v", r)
		}
	}
}

func TestCertainVarsGateInjection(t *testing.T) {
	// ?name is certain (top-level pattern) but ?cont is OPTIONAL-only:
	// only ?country and ?name may be injected.
	pattern := parsePattern(t, `{ ?country <http://example.org/name> ?name .
		OPTIONAL { ?country <http://example.org/continent> ?cont } }`)
	bindings := []sparql.Binding{{
		"country": rdf.IRI("http://example.org/greece"),
		"cont":    rdf.IRI("http://example.org/europe"),
	}}
	shared := sharedVars(pattern, bindings)
	if len(shared) != 1 || shared[0] != "country" {
		t.Errorf("sharedVars = %v, want [country]", shared)
	}
}

func TestBindJoinNoSharedVars(t *testing.T) {
	remote := mustStore(t, countriesTTL)
	pattern := parsePattern(t, `{ ?c <http://example.org/continent> <http://example.org/asia> }`)
	bindings := []sparql.Binding{
		{"x": rdf.NewInteger(1)},
		{"x": rdf.NewInteger(2)},
	}
	got, err := bindJoin(context.Background(), localFetch(remote), pattern, bindings, 64, 2)
	if err != nil {
		t.Fatal(err)
	}
	// One asian country × two local bindings = 2 rows, each with ?x and ?c.
	if len(got) != 2 {
		t.Fatalf("rows = %d, want 2 (cross join)", len(got))
	}
	for _, r := range got {
		if r["c"] != rdf.IRI("http://example.org/japan") {
			t.Errorf("row %v missing ?c", r)
		}
	}
}

func TestBindJoinEmptyInput(t *testing.T) {
	remote := mustStore(t, countriesTTL)
	pattern := parsePattern(t, `{ ?s ?p ?o }`)
	calls := 0
	fetch := func(_ context.Context, _ string) ([]sparql.Binding, error) {
		calls++
		return nil, nil
	}
	got, err := bindJoin(context.Background(), fetch, pattern, nil, 64, 2)
	if err != nil || got != nil {
		t.Fatalf("got %v, %v", got, err)
	}
	if calls != 0 {
		t.Errorf("empty input dispatched %d requests", calls)
	}
	_ = remote
}

// TestServiceQueryEqualsMergedStore is the package-level statement of the
// federation contract: a SERVICE query across two live endpoints answers
// exactly like the same join over one store holding the union of both
// datasets.
func TestServiceQueryEqualsMergedStore(t *testing.T) {
	local := mustStore(t, citiesTTL)
	remote := mustStore(t, countriesTTL)
	peer := sparqlEndpoint(t, remote, nil)

	mesh := NewMesh(Options{})
	mesh.AddPeer(peer.URL)

	federated := fmt.Sprintf(`PREFIX ex: <http://example.org/>
		SELECT ?city ?name WHERE {
			?city ex:locatedIn ?country .
			SERVICE <%s> { ?country ex:name ?name }
		}`, peer.URL)
	got, err := sparql.ExecOpts(local, federated, sparql.Options{Service: mesh})
	if err != nil {
		t.Fatalf("federated query: %v", err)
	}

	merged := mustStore(t, citiesTTL+countriesTTL)
	want, err := sparql.Exec(merged, `PREFIX ex: <http://example.org/>
		SELECT ?city ?name WHERE {
			?city ex:locatedIn ?country .
			?country ex:name ?name
		}`)
	if err != nil {
		t.Fatalf("merged query: %v", err)
	}
	if len(got.Rows) == 0 {
		t.Fatal("federated query returned nothing")
	}
	if canon(got.Rows) != canon(want.Rows) {
		t.Errorf("federated != merged\n got:\n%s\nwant:\n%s", canon(got.Rows), canon(want.Rows))
	}
}

func TestMeshResultCacheDeduplicatesRequests(t *testing.T) {
	remote := mustStore(t, countriesTTL)
	var hits atomic.Int64
	peer := sparqlEndpoint(t, remote, &hits)

	mesh := NewMesh(Options{CacheTTL: time.Minute})
	local := mustStore(t, citiesTTL)
	q := fmt.Sprintf(`PREFIX ex: <http://example.org/>
		SELECT ?city ?name WHERE {
			?city ex:locatedIn ?country .
			SERVICE <%s> { ?country ex:name ?name }
		}`, peer.URL)
	var first string
	for i := 0; i < 3; i++ {
		res, err := sparql.ExecOpts(local, q, sparql.Options{Service: mesh})
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		// Cache-served runs must answer identically to the cold run —
		// in particular the bind join must not mutate the cached rows.
		if i == 0 {
			first = canon(res.Rows)
			if len(res.Rows) == 0 {
				t.Fatal("cold run returned no rows")
			}
		} else if canon(res.Rows) != first {
			t.Fatalf("run %d diverged from cold run\n got:\n%s\nwant:\n%s", i, canon(res.Rows), first)
		}
	}
	if n := hits.Load(); n != 1 {
		t.Errorf("remote endpoint saw %d requests, want 1 (TTL cache)", n)
	}
	if cs, ok := mesh.CacheStats(); !ok || cs.Hits == 0 {
		t.Errorf("cache stats = %+v ok=%v", cs, ok)
	}
}

// TestBindJoinBlankNodeProjectsToUndef pins the grammar workaround: a local
// binding whose shared var holds a blank node must not leak the bnode into
// the generated VALUES block (illegal SPARQL); it travels as UNDEF and the
// merge-time compatibility check filters the superset.
func TestBindJoinBlankNodeProjectsToUndef(t *testing.T) {
	remote := mustStore(t, countriesTTL)
	pattern := parsePattern(t, `{ ?country <http://example.org/name> ?name }`)
	bindings := []sparql.Binding{
		{"country": rdf.BlankNode("b1")}, // cannot match any remote IRI
		{"country": rdf.IRI("http://example.org/greece")},
	}
	var queries []string
	fetch := func(ctx context.Context, q string) ([]sparql.Binding, error) {
		queries = append(queries, q)
		return localFetch(remote)(ctx, q)
	}
	got, err := bindJoin(context.Background(), fetch, pattern, bindings, 64, 1)
	if err != nil {
		t.Fatalf("bindJoin: %v", err)
	}
	for _, q := range queries {
		if strings.Contains(q, "_:") {
			t.Errorf("generated subquery leaks a blank node into VALUES: %s", q)
		}
	}
	// Only the Greece binding joins; the bnode one finds no compatible row.
	if len(got) != 1 || got[0]["name"] != rdf.NewLangLiteral("Greece", "en") {
		t.Errorf("rows = %v, want exactly the greece join", got)
	}
}

func TestMeshCircuitBreaksDeadEndpoint(t *testing.T) {
	var hits atomic.Int64
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		http.Error(w, "no", http.StatusInternalServerError)
	}))
	t.Cleanup(dead.Close)

	mesh := NewMesh(Options{Retries: -1, FailureThreshold: 3, Cooldown: time.Hour, CacheCapacity: -1})
	ctx := context.Background()
	for i := 0; i < 10; i++ {
		if _, err := mesh.Fetch(ctx, dead.URL, "SELECT * WHERE { ?s ?p ?o }"); err == nil {
			t.Fatalf("fetch %d unexpectedly succeeded", i)
		}
	}
	if n := hits.Load(); n != 3 {
		t.Errorf("dead endpoint saw %d requests, want 3 (circuit opens at threshold)", n)
	}
	st := mesh.Status()
	if len(st) != 1 || st[0].State != StateOpen {
		t.Errorf("status = %+v, want one open endpoint", st)
	}
}

func TestMeshProbeAndCapabilities(t *testing.T) {
	remote := mustStore(t, countriesTTL)
	peer := sparqlEndpoint(t, remote, nil)
	mesh := NewMesh(Options{})
	mesh.AddPeer(peer.URL)

	ctx := context.Background()
	mesh.Probe(ctx)
	st := mesh.Status()
	if len(st) != 1 || st[0].State != StateClosed || st[0].Requests != 1 {
		t.Fatalf("status after probe = %+v", st)
	}
	if st[0].LatencyMs <= 0 {
		t.Errorf("latency EWMA not recorded: %+v", st[0])
	}

	mesh.RefreshCapabilities(ctx)
	name := rdf.IRI("http://example.org/name")
	eps := mesh.Registry().EndpointsFor(name)
	if len(eps) != 1 || eps[0] != peer.URL {
		t.Errorf("EndpointsFor(name) = %v", eps)
	}
	if caps := mesh.Registry().Capabilities(peer.URL); caps[name] != 3 {
		t.Errorf("capabilities = %v, want name→3", caps)
	}
}

func TestMeshRestrictToPeers(t *testing.T) {
	remote := mustStore(t, countriesTTL)
	peer := sparqlEndpoint(t, remote, nil)
	mesh := NewMesh(Options{RestrictToPeers: true})

	local := mustStore(t, citiesTTL)
	q := fmt.Sprintf(`PREFIX ex: <http://example.org/>
		SELECT ?name WHERE {
			?city ex:locatedIn ?country .
			SERVICE <%s> { ?country ex:name ?name }
		}`, peer.URL)

	// Unregistered endpoint: refused without any network dispatch.
	if _, err := sparql.ExecOpts(local, q, sparql.Options{Service: mesh}); err == nil {
		t.Fatal("restricted mesh dispatched to an unregistered endpoint")
	}
	// After registration the same query works.
	mesh.AddPeer(peer.URL)
	res, err := sparql.ExecOpts(local, q, sparql.Options{Service: mesh})
	if err != nil {
		t.Fatalf("registered peer refused: %v", err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no rows from registered peer")
	}
}

func TestMeshMaintainProbesAndRefreshes(t *testing.T) {
	remote := mustStore(t, countriesTTL)
	peer := sparqlEndpoint(t, remote, nil)
	mesh := NewMesh(Options{})
	mesh.AddPeer(peer.URL)

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { mesh.Maintain(ctx, time.Hour); close(done) }()

	// The initial capability sweep runs immediately, before the first tick.
	deadline := time.After(5 * time.Second)
	for {
		if caps := mesh.Registry().Capabilities(peer.URL); caps != nil {
			break
		}
		select {
		case <-deadline:
			t.Fatal("Maintain never refreshed capabilities")
		case <-time.After(5 * time.Millisecond):
		}
	}
	st := mesh.Status()
	if len(st) != 1 || st[0].State != StateClosed || st[0].Predicates == 0 {
		t.Errorf("status after initial sweep = %+v", st)
	}
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Maintain did not stop on cancellation")
	}
}

func TestClientRetriesTransientFailures(t *testing.T) {
	remote := mustStore(t, countriesTTL)
	var hits atomic.Int64
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) <= 2 {
			http.Error(w, "warming up", http.StatusServiceUnavailable)
			return
		}
		r.ParseForm()
		res, err := sparql.Exec(remote, r.Form.Get("query"))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		body, _ := res.JSON()
		w.Header().Set("Content-Type", sparql.JSONContentType)
		w.Write(body)
	}))
	t.Cleanup(flaky.Close)

	c := NewClient(flaky.URL, ClientOptions{Retries: 2})
	res, err := c.Query(context.Background(), "ASK { }")
	if err != nil {
		t.Fatalf("Query after retries: %v", err)
	}
	if !res.Ask {
		t.Error("ASK {} = false")
	}
	if hits.Load() != 3 {
		t.Errorf("endpoint saw %d requests, want 3 (2 failures + success)", hits.Load())
	}
}

func TestClientDoesNotRetryClientErrors(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		http.Error(w, "bad query", http.StatusBadRequest)
	}))
	t.Cleanup(srv.Close)
	c := NewClient(srv.URL, ClientOptions{Retries: 3})
	if _, err := c.Query(context.Background(), "nonsense"); err == nil {
		t.Fatal("expected error")
	}
	if hits.Load() != 1 {
		t.Errorf("endpoint saw %d requests, want 1 (400 is not transient)", hits.Load())
	}
}
