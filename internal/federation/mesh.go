package federation

import (
	"context"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"github.com/lodviz/lodviz/internal/rdf"
	"github.com/lodviz/lodviz/internal/sparql"
)

// Options tune a Mesh. The zero value is production-usable: 10s request
// timeout, 2 retries, 64-row bind-join batches, 4 concurrent batch
// requests, a 3-failure circuit breaker with 5s cooldown, and a 1024-entry
// 30s-TTL remote-result cache.
type Options struct {
	// HTTPClient is the shared transport for all endpoint clients
	// (nil = http.DefaultClient).
	HTTPClient *http.Client
	// Timeout bounds one remote request attempt (non-positive = 10s).
	Timeout time.Duration
	// Retries is the per-request retry budget for transient failures
	// (zero value = 2, negative = none).
	Retries int
	// BatchSize is the VALUES rows per bind-join batch (non-positive = 64).
	BatchSize int
	// Parallel caps concurrent batch requests per SERVICE evaluation
	// (non-positive = 4).
	Parallel int
	// FailureThreshold and Cooldown tune the circuit breaker; see
	// RegistryOptions.
	FailureThreshold int
	Cooldown         time.Duration
	// CacheCapacity sizes the remote-result cache in entries; 0 selects
	// DefaultCacheCapacity, negative disables caching.
	CacheCapacity int
	// CacheTTL bounds how stale a cached remote result may be served
	// (non-positive = DefaultCacheTTL).
	CacheTTL time.Duration
	// RestrictToPeers, when true, refuses SERVICE dispatch to endpoints
	// that were not explicitly registered with AddPeer. Query text can
	// name arbitrary IRIs, and on a server whose /sparql accepts
	// untrusted queries an unrestricted mesh is a server-side
	// request-forgery vector (SERVICE <http://169.254.169.254/...>); the
	// lodvizd -federation-restrict flag sets this. Default off: following
	// links to endpoints you did not pre-register is the open-world
	// exploration scenario, and embedded/trusted use keeps it.
	RestrictToPeers bool
}

// Mesh is the federation runtime of one lodviz node: the endpoint registry,
// one SPARQL Protocol client per remote endpoint, the TTL result cache, and
// the bind-join executor. It implements sparql.ServiceEvaluator, so wiring
// it into sparql.Options.Service activates SERVICE clauses. Safe for
// concurrent use by many queries.
type Mesh struct {
	opt   Options
	reg   *Registry
	cache *ResultCache // nil when disabled

	mu      sync.Mutex
	clients map[string]*Client
	peers   map[string]bool // explicitly registered endpoints (AddPeer)
}

// NewMesh builds a mesh with no peers registered yet.
func NewMesh(opt Options) *Mesh {
	m := &Mesh{
		opt: opt,
		reg: NewRegistry(RegistryOptions{
			FailureThreshold: opt.FailureThreshold,
			Cooldown:         opt.Cooldown,
		}),
		clients: map[string]*Client{},
		peers:   map[string]bool{},
	}
	if opt.CacheCapacity >= 0 {
		m.cache = NewResultCache(opt.CacheCapacity, opt.CacheTTL)
	}
	return m
}

// AddPeer registers a remote SPARQL endpoint. Registration is idempotent.
// Unless Options.RestrictToPeers is set, SERVICE clauses may also name
// endpoints that were never registered (they are tracked from first use).
func (m *Mesh) AddPeer(endpoint string) {
	m.mu.Lock()
	m.peers[endpoint] = true
	m.mu.Unlock()
	m.reg.Ensure(endpoint)
}

// allowed reports whether SERVICE dispatch to endpoint is permitted under
// the mesh's endpoint policy.
func (m *Mesh) allowed(endpoint string) bool {
	if !m.opt.RestrictToPeers {
		return true
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.peers[endpoint]
}

// Peers returns the registered endpoint URLs, sorted.
func (m *Mesh) Peers() []string { return m.reg.Endpoints() }

// Registry exposes the endpoint registry (health, capabilities, routing).
func (m *Mesh) Registry() *Registry { return m.reg }

// Status snapshots every known endpoint's health.
func (m *Mesh) Status() []EndpointStatus { return m.reg.Status() }

// CacheStats reports remote-result cache effectiveness; ok is false when
// caching is disabled.
func (m *Mesh) CacheStats() (CacheStats, bool) {
	if m.cache == nil {
		return CacheStats{}, false
	}
	return m.cache.Stats(), true
}

// client returns (creating on first use) the protocol client for endpoint.
func (m *Mesh) client(endpoint string) *Client {
	m.mu.Lock()
	defer m.mu.Unlock()
	c, ok := m.clients[endpoint]
	if !ok {
		c = NewClient(endpoint, ClientOptions{
			HTTPClient: m.opt.HTTPClient,
			Timeout:    m.opt.Timeout,
			Retries:    m.opt.Retries,
		})
		m.clients[endpoint] = c
	}
	return c
}

// Fetch executes one subquery against endpoint through the full stack:
// result cache, circuit breaker, protocol client, health accounting. The
// returned rows may be shared with the cache and must not be mutated.
func (m *Mesh) Fetch(ctx context.Context, endpoint, query string) ([]sparql.Binding, error) {
	key := Key(endpoint, query)
	if m.cache != nil {
		if rows, ok := m.cache.Get(key); ok {
			return rows, nil
		}
	}
	if !m.reg.Allow(endpoint) {
		return nil, fmt.Errorf("federation: endpoint %s is ejected (circuit open)", endpoint)
	}
	start := time.Now()
	res, err := m.client(endpoint).Query(ctx, query)
	m.reg.Report(endpoint, time.Since(start), err)
	if err != nil {
		return nil, err
	}
	if m.cache != nil {
		m.cache.Put(key, res.Rows)
	}
	return res.Rows, nil
}

// EvalService implements sparql.ServiceEvaluator: the engine hands over the
// SERVICE clause's pattern and the local bindings, the mesh answers with
// their join against the remote evaluation.
func (m *Mesh) EvalService(ctx context.Context, call *sparql.ServiceCall) ([]sparql.Binding, error) {
	endpoint := call.Endpoint
	if !m.allowed(endpoint) {
		return nil, fmt.Errorf("federation: endpoint %s is not a registered peer (mesh restricts SERVICE to peers)", endpoint)
	}
	m.reg.Ensure(endpoint)
	fetch := func(ctx context.Context, query string) ([]sparql.Binding, error) {
		return m.Fetch(ctx, endpoint, query)
	}
	return bindJoin(ctx, fetch, call.Pattern, call.Bindings, m.opt.BatchSize, m.opt.Parallel)
}

// forEachEndpoint runs fn concurrently over every registered endpoint the
// circuit breaker currently allows, waiting for all to finish. Sweeps must
// not serialize: one dead peer burning its full timeout-and-retry budget
// would otherwise stall upkeep for the whole mesh.
func (m *Mesh) forEachEndpoint(fn func(endpoint string)) {
	var wg sync.WaitGroup
	for _, endpoint := range m.reg.Endpoints() {
		if !m.reg.Allow(endpoint) {
			continue
		}
		wg.Add(1)
		go func(endpoint string) {
			defer wg.Done()
			fn(endpoint)
		}(endpoint)
	}
	wg.Wait()
}

// Probe health-checks every registered endpoint with an ASK query,
// recording outcomes in the registry (which is how an open circuit is
// probed back in without waiting for live traffic).
func (m *Mesh) Probe(ctx context.Context) {
	m.forEachEndpoint(func(endpoint string) {
		start := time.Now()
		_, err := m.client(endpoint).Query(ctx, "ASK { }")
		m.reg.Report(endpoint, time.Since(start), err)
	})
}

// capabilityRefreshEvery is how many Maintain ticks pass between capability
// sweeps: health probes are a cheap ASK, the capability query aggregates
// the whole remote store, so it runs an order of magnitude less often.
const capabilityRefreshEvery = 10

// Maintain runs the mesh's background upkeep until ctx is cancelled: every
// interval it health-probes all registered endpoints (closing open circuits
// without waiting for live traffic), and on the first tick plus every
// tenth it refreshes the per-predicate capability summaries. lodvizd runs
// this when peers are configured; embedders may call it themselves.
func (m *Mesh) Maintain(ctx context.Context, interval time.Duration) {
	if interval <= 0 {
		interval = 30 * time.Second
	}
	m.RefreshCapabilities(ctx) // doubles as the initial health probe
	t := time.NewTicker(interval)
	defer t.Stop()
	for tick := 1; ; tick++ {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		if tick%capabilityRefreshEvery == 0 {
			m.RefreshCapabilities(ctx)
		} else {
			m.Probe(ctx)
		}
	}
}

// capabilityQuery summarizes an endpoint's per-predicate cardinalities. It
// is plain SPARQL 1.1, so it works against any conformant endpoint, not
// just lodvizd peers.
const capabilityQuery = "SELECT ?p (COUNT(*) AS ?n) WHERE { ?s ?p ?o } GROUP BY ?p"

// RefreshCapabilities probes each registered endpoint for its per-predicate
// triple counts and stores the summaries in the registry. Endpoints with an
// open circuit are skipped; individual failures are recorded and do not
// abort the sweep.
func (m *Mesh) RefreshCapabilities(ctx context.Context) {
	m.forEachEndpoint(func(endpoint string) {
		start := time.Now()
		res, err := m.client(endpoint).Query(ctx, capabilityQuery)
		m.reg.Report(endpoint, time.Since(start), err)
		if err != nil {
			return
		}
		caps := make(map[rdf.IRI]int, len(res.Rows))
		for _, row := range res.Rows {
			p, ok := row["p"].(rdf.IRI)
			if !ok {
				continue
			}
			l, ok := row["n"].(rdf.Literal)
			if !ok {
				continue
			}
			n, err := strconv.Atoi(l.Lexical)
			if err != nil {
				continue
			}
			caps[p] = n
		}
		m.reg.SetCapabilities(endpoint, caps)
	})
}
