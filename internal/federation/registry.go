package federation

import (
	"sort"
	"sync"
	"time"

	"github.com/lodviz/lodviz/internal/rdf"
)

// Circuit breaker states, in the classic three-state formulation.
const (
	// StateClosed: the endpoint is healthy and requests flow normally.
	StateClosed = "closed"
	// StateOpen: the endpoint crossed the failure threshold and is ejected;
	// requests are refused locally until the cooldown elapses.
	StateOpen = "open"
	// StateHalfOpen: the cooldown elapsed and exactly one probe request is
	// allowed through; its outcome closes or re-opens the circuit.
	StateHalfOpen = "half-open"
)

// RegistryOptions tune the circuit breaker and latency tracking.
type RegistryOptions struct {
	// FailureThreshold is how many consecutive failures open the circuit
	// (non-positive = 3).
	FailureThreshold int
	// Cooldown is how long an open circuit refuses requests before letting
	// a probe through (non-positive = 5s).
	Cooldown time.Duration
	// EWMAAlpha weighs the newest latency sample in the moving average
	// (outside (0,1] = 0.2).
	EWMAAlpha float64

	// now overrides time.Now in tests.
	now func() time.Time
}

func (o RegistryOptions) withDefaults() RegistryOptions {
	if o.FailureThreshold <= 0 {
		o.FailureThreshold = 3
	}
	if o.Cooldown <= 0 {
		o.Cooldown = 5 * time.Second
	}
	if o.EWMAAlpha <= 0 || o.EWMAAlpha > 1 {
		o.EWMAAlpha = 0.2
	}
	if o.now == nil {
		o.now = time.Now
	}
	return o
}

// Registry tracks the endpoints a node federates with: circuit-breaker
// health, an exponentially weighted moving average of request latency, and
// per-predicate cardinality summaries used to pick endpoints for a
// predicate. Safe for concurrent use.
type Registry struct {
	opt RegistryOptions

	mu  sync.Mutex
	eps map[string]*endpoint
}

type endpoint struct {
	url          string
	state        string
	consecFails  int
	requests     uint64
	failures     uint64
	ewmaMs       float64
	haveLatency  bool
	openUntil    time.Time
	lastErr      string
	lastReported time.Time
	caps         map[rdf.IRI]int
	capsAt       time.Time
}

// NewRegistry returns an empty registry.
func NewRegistry(opt RegistryOptions) *Registry {
	return &Registry{opt: opt.withDefaults(), eps: map[string]*endpoint{}}
}

// Ensure registers url if it is not yet known. Newly added endpoints start
// closed (healthy until proven otherwise).
func (r *Registry) Ensure(url string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.ensureLocked(url)
}

func (r *Registry) ensureLocked(url string) *endpoint {
	ep, ok := r.eps[url]
	if !ok {
		ep = &endpoint{url: url, state: StateClosed}
		r.eps[url] = ep
	}
	return ep
}

// Endpoints returns the registered endpoint URLs, sorted.
func (r *Registry) Endpoints() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.eps))
	for u := range r.eps {
		out = append(out, u)
	}
	sort.Strings(out)
	return out
}

// Allow reports whether a request to url may proceed right now. A closed
// circuit always allows; an open circuit refuses until its cooldown has
// elapsed, at which point exactly one caller is let through as the half-open
// probe (subsequent callers keep being refused until that probe reports).
func (r *Registry) Allow(url string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	ep := r.ensureLocked(url)
	switch ep.state {
	case StateClosed:
		return true
	case StateHalfOpen:
		return false // one probe is already in flight
	default: // StateOpen
		if r.opt.now().Before(ep.openUntil) {
			return false
		}
		ep.state = StateHalfOpen
		return true
	}
}

// Report records the outcome of one request to url: latency feeds the EWMA,
// errors drive the circuit breaker. A success closes the circuit and resets
// the failure streak; a failure extends the streak and, at the threshold (or
// on a failed half-open probe), opens the circuit for the cooldown period.
func (r *Registry) Report(url string, d time.Duration, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	ep := r.ensureLocked(url)
	ep.requests++
	ep.lastReported = r.opt.now()
	if err == nil {
		ms := float64(d) / float64(time.Millisecond)
		if !ep.haveLatency {
			ep.ewmaMs = ms
			ep.haveLatency = true
		} else {
			a := r.opt.EWMAAlpha
			ep.ewmaMs = a*ms + (1-a)*ep.ewmaMs
		}
		ep.consecFails = 0
		ep.state = StateClosed
		ep.lastErr = ""
		return
	}
	ep.failures++
	ep.consecFails++
	ep.lastErr = err.Error()
	if ep.state == StateHalfOpen || ep.consecFails >= r.opt.FailureThreshold {
		ep.state = StateOpen
		ep.openUntil = r.opt.now().Add(r.opt.Cooldown)
	}
}

// SetCapabilities stores the per-predicate triple counts advertised (or
// probed) for url — the cardinality summary federated planning keys on.
func (r *Registry) SetCapabilities(url string, caps map[rdf.IRI]int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	ep := r.ensureLocked(url)
	ep.caps = caps
	ep.capsAt = r.opt.now()
}

// Capabilities returns url's per-predicate counts (nil when never set).
func (r *Registry) Capabilities(url string) map[rdf.IRI]int {
	r.mu.Lock()
	defer r.mu.Unlock()
	ep, ok := r.eps[url]
	if !ok || ep.caps == nil {
		return nil
	}
	out := make(map[rdf.IRI]int, len(ep.caps))
	for k, v := range ep.caps {
		out[k] = v
	}
	return out
}

// EndpointsFor returns the endpoints known to hold triples for pred, highest
// cardinality first — the routing primitive for predicate-directed
// federation.
func (r *Registry) EndpointsFor(pred rdf.IRI) []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	type cand struct {
		url string
		n   int
	}
	var cands []cand
	for u, ep := range r.eps {
		if n := ep.caps[pred]; n > 0 {
			cands = append(cands, cand{u, n})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].n != cands[j].n {
			return cands[i].n > cands[j].n
		}
		return cands[i].url < cands[j].url
	})
	out := make([]string, len(cands))
	for i, c := range cands {
		out[i] = c.url
	}
	return out
}

// EndpointStatus is a point-in-time snapshot of one endpoint's health — the
// /federation status endpoint serves a list of these.
type EndpointStatus struct {
	// URL is the endpoint URL.
	URL string `json:"url"`
	// State is the circuit state: closed, open, or half-open.
	State string `json:"state"`
	// LatencyMs is the request-latency EWMA in milliseconds (0 until the
	// first success).
	LatencyMs float64 `json:"latencyMs"`
	// Requests and Failures count all reported outcomes.
	Requests uint64 `json:"requests"`
	Failures uint64 `json:"failures"`
	// ConsecutiveFailures is the current failure streak.
	ConsecutiveFailures int `json:"consecutiveFailures"`
	// Predicates is how many distinct predicates the capability summary
	// lists (0 when unprobed).
	Predicates int `json:"predicates"`
	// LastError is the most recent failure message, empty when healthy.
	LastError string `json:"lastError,omitempty"`
}

// Status snapshots every registered endpoint, sorted by URL.
func (r *Registry) Status() []EndpointStatus {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]EndpointStatus, 0, len(r.eps))
	for _, ep := range r.eps {
		st := ep.state
		// An open circuit whose cooldown has elapsed is half-open in
		// spirit: the next Allow will probe.
		if st == StateOpen && !r.opt.now().Before(ep.openUntil) {
			st = StateHalfOpen
		}
		out = append(out, EndpointStatus{
			URL:                 ep.url,
			State:               st,
			LatencyMs:           ep.ewmaMs,
			Requests:            ep.requests,
			Failures:            ep.failures,
			ConsecutiveFailures: ep.consecFails,
			Predicates:          len(ep.caps),
			LastError:           ep.lastErr,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].URL < out[j].URL })
	return out
}
