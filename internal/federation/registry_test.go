package federation

import (
	"errors"
	"testing"
	"time"

	"github.com/lodviz/lodviz/internal/rdf"
)

// fakeClock is a manually advanced time source.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{t: time.Unix(1700000000, 0)} }
func testRegistry(c *fakeClock, opt RegistryOptions) *Registry {
	opt.now = c.now
	return NewRegistry(opt)
}

const ep = "http://peer.example/sparql"

func TestCircuitBreakerOpensAndProbesBackIn(t *testing.T) {
	clock := newFakeClock()
	r := testRegistry(clock, RegistryOptions{FailureThreshold: 3, Cooldown: 5 * time.Second})
	fail := errors.New("connection refused")

	if !r.Allow(ep) {
		t.Fatal("fresh endpoint should be allowed")
	}
	// Two failures: still closed.
	r.Report(ep, 0, fail)
	r.Report(ep, 0, fail)
	if !r.Allow(ep) {
		t.Fatal("below threshold should stay closed")
	}
	// Third consecutive failure opens the circuit.
	r.Report(ep, 0, fail)
	if r.Allow(ep) {
		t.Fatal("circuit should be open after 3 consecutive failures")
	}
	if got := r.Status()[0].State; got != StateOpen {
		t.Fatalf("state = %q, want open", got)
	}

	// Cooldown not yet elapsed: still refused.
	clock.advance(4 * time.Second)
	if r.Allow(ep) {
		t.Fatal("cooldown not elapsed, should refuse")
	}
	// Cooldown elapsed: exactly one probe passes.
	clock.advance(2 * time.Second)
	if !r.Allow(ep) {
		t.Fatal("first caller after cooldown should be the half-open probe")
	}
	if r.Allow(ep) {
		t.Fatal("second caller during half-open probe should be refused")
	}

	// Failed probe re-opens for another cooldown.
	r.Report(ep, 0, fail)
	if r.Allow(ep) {
		t.Fatal("failed probe should re-open the circuit")
	}
	clock.advance(6 * time.Second)
	if !r.Allow(ep) {
		t.Fatal("second probe after re-opened cooldown")
	}
	// Successful probe closes the circuit fully.
	r.Report(ep, 10*time.Millisecond, nil)
	if !r.Allow(ep) || !r.Allow(ep) {
		t.Fatal("closed circuit should allow everyone")
	}
	st := r.Status()[0]
	if st.State != StateClosed {
		t.Errorf("state = %q, want closed", st.State)
	}
	if st.ConsecutiveFailures != 0 {
		t.Errorf("consecutive failures = %d, want 0", st.ConsecutiveFailures)
	}
}

func TestSuccessResetsFailureStreak(t *testing.T) {
	clock := newFakeClock()
	r := testRegistry(clock, RegistryOptions{FailureThreshold: 3})
	fail := errors.New("boom")
	r.Report(ep, 0, fail)
	r.Report(ep, 0, fail)
	r.Report(ep, time.Millisecond, nil) // streak broken
	r.Report(ep, 0, fail)
	r.Report(ep, 0, fail)
	if !r.Allow(ep) {
		t.Fatal("streak was reset; 2 failures should not open the circuit")
	}
}

func TestLatencyEWMA(t *testing.T) {
	clock := newFakeClock()
	r := testRegistry(clock, RegistryOptions{EWMAAlpha: 0.5})
	r.Report(ep, 100*time.Millisecond, nil)
	if got := r.Status()[0].LatencyMs; got != 100 {
		t.Fatalf("first sample seeds the EWMA: got %v, want 100", got)
	}
	r.Report(ep, 200*time.Millisecond, nil)
	if got := r.Status()[0].LatencyMs; got != 150 {
		t.Fatalf("EWMA after 100,200 at alpha 0.5 = %v, want 150", got)
	}
	// Failures leave the latency estimate untouched.
	r.Report(ep, 0, errors.New("x"))
	if got := r.Status()[0].LatencyMs; got != 150 {
		t.Fatalf("failure changed EWMA to %v", got)
	}
}

func TestCapabilitiesAndEndpointsFor(t *testing.T) {
	clock := newFakeClock()
	r := testRegistry(clock, RegistryOptions{})
	name := rdf.IRI("http://example.org/name")
	pop := rdf.IRI("http://example.org/population")
	r.SetCapabilities("http://a/sparql", map[rdf.IRI]int{name: 10, pop: 5})
	r.SetCapabilities("http://b/sparql", map[rdf.IRI]int{name: 100})
	r.SetCapabilities("http://c/sparql", map[rdf.IRI]int{pop: 1})

	got := r.EndpointsFor(name)
	if len(got) != 2 || got[0] != "http://b/sparql" || got[1] != "http://a/sparql" {
		t.Errorf("EndpointsFor(name) = %v (want b before a, no c)", got)
	}
	if got := r.EndpointsFor(rdf.IRI("http://example.org/absent")); len(got) != 0 {
		t.Errorf("EndpointsFor(absent) = %v", got)
	}
	caps := r.Capabilities("http://a/sparql")
	if caps[name] != 10 || caps[pop] != 5 {
		t.Errorf("Capabilities = %v", caps)
	}
	// The returned map is a copy.
	caps[name] = 999
	if r.Capabilities("http://a/sparql")[name] != 10 {
		t.Error("Capabilities returned a live reference")
	}
}

func TestRegistryStatusSorted(t *testing.T) {
	clock := newFakeClock()
	r := testRegistry(clock, RegistryOptions{})
	r.Ensure("http://b/")
	r.Ensure("http://a/")
	st := r.Status()
	if len(st) != 2 || st[0].URL != "http://a/" || st[1].URL != "http://b/" {
		t.Errorf("Status order: %v", st)
	}
}
