// Package gen produces the deterministic synthetic datasets lodviz's
// examples and experiments run on. The module is offline and the paper's
// subject matter — live LOD endpoints like DBpedia and LinkedGeoData — is
// unreachable by construction, so these generators synthesize datasets with
// the same *shape*: scale-free link structure (Barabási–Albert), skewed
// value distributions, RDF Data Cube layouts, and geo point clouds. Every
// generator takes an explicit seed; identical seeds give identical data.
package gen

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/lodviz/lodviz/internal/rdf"
	"github.com/lodviz/lodviz/internal/store"
)

// NS is the namespace of all generated resources.
const NS = "http://lodviz.example.org/"

func res(kind string, i int) rdf.IRI {
	return rdf.IRI(fmt.Sprintf("%s%s/%d", NS, kind, i))
}

func prop(name string) rdf.IRI { return rdf.IRI(NS + "prop/" + name) }

// ScaleFreeGraph generates a Barabási–Albert preferential-attachment RDF
// graph of n entities, each new node attaching m edges — the degree-skewed
// topology of real LOD graphs (a few hubs, many leaves).
func ScaleFreeGraph(n, m int, seed int64) []rdf.Triple {
	if n < 2 {
		n = 2
	}
	if m < 1 {
		m = 1
	}
	rng := rand.New(rand.NewSource(seed))
	var triples []rdf.Triple
	// repeated holds node indexes proportional to their degree.
	var repeated []int
	link := func(a, b int) {
		triples = append(triples, rdf.T(res("node", a), prop("linksTo"), res("node", b)))
		repeated = append(repeated, a, b)
	}
	link(0, 1)
	for v := 2; v < n; v++ {
		attach := m
		if attach >= v {
			attach = v
		}
		seen := map[int]bool{}
		for len(seen) < attach {
			t := repeated[rng.Intn(len(repeated))]
			if t != v && !seen[t] {
				seen[t] = true
				link(v, t)
			}
		}
	}
	return triples
}

// ErdosRenyiGraph generates a uniform random RDF graph with n entities and
// approximately e edges — the unstructured baseline topology.
func ErdosRenyiGraph(n, e int, seed int64) []rdf.Triple {
	if n < 2 {
		n = 2
	}
	rng := rand.New(rand.NewSource(seed))
	var triples []rdf.Triple
	for i := 0; i < e; i++ {
		a, b := rng.Intn(n), rng.Intn(n)
		if a == b {
			b = (b + 1) % n
		}
		triples = append(triples, rdf.T(res("node", a), prop("linksTo"), res("node", b)))
	}
	return triples
}

// EntityOptions configure EntityDataset.
type EntityOptions struct {
	// Entities is the number of generated entities.
	Entities int
	// Classes is how many rdf:type classes to spread them over (Zipf-ish).
	Classes int
	// NumericProps / TemporalProps / CategoryProps count attribute
	// predicates per kind.
	NumericProps  int
	TemporalProps int
	CategoryProps int
	// Categories is the distinct-value count of each categorical property.
	Categories int
	// LinkProps adds object properties wiring entities together.
	LinkProps int
	Seed      int64
}

func (o *EntityOptions) normalize() {
	if o.Entities < 1 {
		o.Entities = 100
	}
	if o.Classes < 1 {
		o.Classes = 5
	}
	if o.Categories < 2 {
		o.Categories = 8
	}
}

// EntityDataset generates a DBpedia-like entity-attribute dataset: typed
// entities with labels, numeric values (log-normal-ish, skewed), temporal
// values, categorical values and random links.
func EntityDataset(opts EntityOptions) []rdf.Triple {
	opts.normalize()
	rng := rand.New(rand.NewSource(opts.Seed))
	var triples []rdf.Triple
	epoch := time.Date(1950, 1, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < opts.Entities; i++ {
		e := res("entity", i)
		// Zipf-ish class assignment: class c with prob ~ 1/(c+1).
		cls := 0
		for cls < opts.Classes-1 && rng.Float64() > 0.5 {
			cls++
		}
		triples = append(triples,
			rdf.T(e, rdf.RDFType, res("class", cls)),
			rdf.T(e, rdf.RDFSLabel, rdf.NewLiteral(fmt.Sprintf("Entity %d of class %d", i, cls))),
		)
		for p := 0; p < opts.NumericProps; p++ {
			// Skewed positive values.
			v := rng.ExpFloat64() * 100 * float64(p+1)
			triples = append(triples, rdf.T(e, prop(fmt.Sprintf("num%d", p)), rdf.NewDouble(v)))
		}
		for p := 0; p < opts.TemporalProps; p++ {
			ts := epoch.Add(time.Duration(rng.Int63n(int64(time.Hour) * 24 * 365 * 70)))
			triples = append(triples, rdf.T(e, prop(fmt.Sprintf("date%d", p)), rdf.NewDateTime(ts)))
		}
		for p := 0; p < opts.CategoryProps; p++ {
			c := rng.Intn(opts.Categories)
			triples = append(triples, rdf.T(e, prop(fmt.Sprintf("cat%d", p)),
				rdf.NewLiteral(fmt.Sprintf("category-%d", c))))
		}
		for p := 0; p < opts.LinkProps; p++ {
			other := rng.Intn(opts.Entities)
			triples = append(triples, rdf.T(e, prop(fmt.Sprintf("rel%d", p)), res("entity", other)))
		}
	}
	return triples
}

// DataCube generates an RDF Data Cube of |regions| × |years| observations
// with one population-like measure.
func DataCube(regions, years int, seed int64) []rdf.Triple {
	if regions < 1 {
		regions = 1
	}
	if years < 1 {
		years = 1
	}
	rng := rand.New(rand.NewSource(seed))
	ds := rdf.IRI(NS + "cube/pop")
	dsd := rdf.IRI(NS + "cube/dsd")
	dimRegion := prop("region")
	dimYear := prop("year")
	measure := prop("population")
	var triples []rdf.Triple
	triples = append(triples,
		rdf.T(ds, rdf.RDFType, rdf.QBDataSet),
		rdf.T(ds, rdf.QBStructure, dsd),
		rdf.T(dsd, rdf.RDFType, rdf.QBDataStructureDef),
	)
	for i, comp := range []rdf.Triple{
		rdf.T(rdf.BlankNode("c1"), rdf.QBDimension, dimRegion),
		rdf.T(rdf.BlankNode("c2"), rdf.QBDimension, dimYear),
		rdf.T(rdf.BlankNode("c3"), rdf.QBMeasure, measure),
	} {
		b := rdf.BlankNode(fmt.Sprintf("comp%d", i))
		triples = append(triples,
			rdf.T(dsd, rdf.QBComponent, b),
			rdf.T(b, comp.P, comp.O),
		)
	}
	obsID := 0
	for r := 0; r < regions; r++ {
		base := 50000 + rng.Float64()*5e6
		for y := 0; y < years; y++ {
			obs := res("obs", obsID)
			obsID++
			pop := base * (1 + 0.01*float64(y)*(rng.Float64()-0.3))
			triples = append(triples,
				rdf.T(obs, rdf.QBDataSetProp, ds),
				rdf.T(obs, dimRegion, res("region", r)),
				rdf.T(obs, dimYear, rdf.NewYear(2000+y)),
				rdf.T(obs, measure, rdf.NewDouble(float64(int(pop)))),
			)
		}
	}
	return triples
}

// CubeIRI returns the dataset IRI DataCube generates.
func CubeIRI() rdf.IRI { return rdf.IRI(NS + "cube/pop") }

// CubeRegionDim, CubeYearDim and CubeMeasure name the generated components.
func CubeRegionDim() rdf.IRI { return prop("region") }

// CubeYearDim returns the year dimension IRI.
func CubeYearDim() rdf.IRI { return prop("year") }

// CubeMeasure returns the measure IRI.
func CubeMeasure() rdf.IRI { return prop("population") }

// GeoPoints generates n geolocated entities clustered around c hotspots —
// the clustered point clouds of real place datasets.
func GeoPoints(n, c int, seed int64) []rdf.Triple {
	if c < 1 {
		c = 1
	}
	rng := rand.New(rand.NewSource(seed))
	type hotspot struct{ lat, lon float64 }
	hs := make([]hotspot, c)
	for i := range hs {
		hs[i] = hotspot{lat: rng.Float64()*140 - 70, lon: rng.Float64()*340 - 170}
	}
	var triples []rdf.Triple
	for i := 0; i < n; i++ {
		h := hs[rng.Intn(c)]
		lat := h.lat + rng.NormFloat64()*2
		lon := h.lon + rng.NormFloat64()*2
		if lat > 90 {
			lat = 90
		}
		if lat < -90 {
			lat = -90
		}
		e := res("place", i)
		triples = append(triples,
			rdf.T(e, rdf.RDFType, rdf.GeoPoint),
			rdf.T(e, rdf.GeoLat, rdf.NewDouble(lat)),
			rdf.T(e, rdf.GeoLong, rdf.NewDouble(lon)),
			rdf.T(e, rdf.RDFSLabel, rdf.NewLiteral(fmt.Sprintf("Place %d", i))),
		)
	}
	return triples
}

// LoadStore is a convenience wrapper: generate → Load.
func LoadStore(triples []rdf.Triple) *store.Store {
	st, err := store.Load(triples)
	if err != nil {
		// Generators only emit valid triples; an error here is a programming
		// bug, not an input condition.
		panic(fmt.Sprintf("gen: load: %v", err))
	}
	return st
}

// Values extracts the float values of a generated numeric property — the
// flat array form the reduction experiments consume.
func Values(st *store.Store, propName string) []float64 {
	var out []float64
	st.ForEach(store.Pattern{P: prop(propName)}, func(t rdf.Triple) bool {
		if l, ok := t.O.(rdf.Literal); ok {
			if v, ok := l.Float(); ok {
				out = append(out, v)
			}
		}
		return true
	})
	return out
}

// Prop exposes the generated property IRI for name (for queries against
// generated data).
func Prop(name string) rdf.IRI { return prop(name) }

// Res exposes the generated resource IRI for (kind, i).
func Res(kind string, i int) rdf.IRI { return res(kind, i) }
