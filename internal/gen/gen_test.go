package gen

import (
	"testing"

	"github.com/lodviz/lodviz/internal/graph"
	"github.com/lodviz/lodviz/internal/rdf"
	"github.com/lodviz/lodviz/internal/store"
)

func TestScaleFreeGraphShape(t *testing.T) {
	triples := ScaleFreeGraph(500, 2, 1)
	st := LoadStore(triples)
	g := graph.FromStore(st)
	if g.NumNodes() != 500 {
		t.Errorf("nodes = %d, want 500", g.NumNodes())
	}
	// Degree skew: max degree far above the mean.
	maxDeg, total := 0, 0
	for i := 0; i < g.NumNodes(); i++ {
		d := g.Degree(graph.NodeID(i))
		total += d
		if d > maxDeg {
			maxDeg = d
		}
	}
	mean := float64(total) / float64(g.NumNodes())
	if float64(maxDeg) < mean*5 {
		t.Errorf("max degree %d vs mean %.1f — not scale-free", maxDeg, mean)
	}
}

func TestScaleFreeDeterministic(t *testing.T) {
	a := ScaleFreeGraph(100, 2, 7)
	b := ScaleFreeGraph(100, 2, 7)
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("not deterministic")
		}
	}
}

func TestErdosRenyi(t *testing.T) {
	triples := ErdosRenyiGraph(100, 300, 2)
	if len(triples) != 300 {
		t.Errorf("edges = %d", len(triples))
	}
	for _, tr := range triples {
		if tr.S == tr.O {
			t.Error("self loop generated")
		}
	}
}

func TestEntityDataset(t *testing.T) {
	opts := EntityOptions{
		Entities: 200, Classes: 4,
		NumericProps: 2, TemporalProps: 1, CategoryProps: 1,
		Categories: 5, LinkProps: 1, Seed: 3,
	}
	st := LoadStore(EntityDataset(opts))
	stats := st.ComputeStats()
	if stats.Triples == 0 {
		t.Fatal("no triples")
	}
	// Every entity has a type and a label.
	if n := st.Count(store.Pattern{P: rdf.RDFType}); n != 200 {
		t.Errorf("typed entities = %d", n)
	}
	if n := st.Count(store.Pattern{P: rdf.RDFSLabel}); n != 200 {
		t.Errorf("labels = %d", n)
	}
	vals := Values(st, "num0")
	if len(vals) != 200 {
		t.Errorf("num0 values = %d", len(vals))
	}
	for _, v := range vals {
		if v < 0 {
			t.Error("negative exponential value")
		}
	}
}

func TestDataCubeLoads(t *testing.T) {
	st := LoadStore(DataCube(10, 5, 4))
	// 10*5 observations.
	if n := st.Count(store.Pattern{P: rdf.QBDataSetProp}); n != 50 {
		t.Errorf("observations = %d, want 50", n)
	}
	if !st.Contains(rdf.Triple{S: CubeIRI(), P: rdf.RDFType, O: rdf.QBDataSet}) {
		t.Error("dataset declaration missing")
	}
}

func TestGeoPointsWithinBounds(t *testing.T) {
	st := LoadStore(GeoPoints(300, 5, 5))
	n := 0
	st.ForEach(store.Pattern{P: rdf.GeoLat}, func(tr rdf.Triple) bool {
		n++
		v, _ := tr.O.(rdf.Literal).Float()
		if v < -90 || v > 90 {
			t.Errorf("lat out of range: %g", v)
		}
		return true
	})
	if n != 300 {
		t.Errorf("points = %d", n)
	}
}

func TestMiniLODStore(t *testing.T) {
	st := MiniLODStore()
	if st.Len() < 50 {
		t.Errorf("MiniLOD triples = %d, seems truncated", st.Len())
	}
	// Athens is in Greece.
	athens := rdf.IRI(MiniNS + "athens")
	greece := rdf.IRI(MiniNS + "greece")
	if !st.Contains(rdf.Triple{S: athens, P: rdf.IRI(MiniNS + "country"), O: greece}) {
		t.Error("athens-country-greece missing")
	}
	// The ontology is extractable.
	if n := st.Count(store.Pattern{P: rdf.RDFSSubClassOf}); n != 3 {
		t.Errorf("subclass axioms = %d, want 3", n)
	}
}

func TestPropAndRes(t *testing.T) {
	if Prop("x") != rdf.IRI(NS+"prop/x") {
		t.Error("Prop wrong")
	}
	if Res("node", 3) != rdf.IRI(NS+"node/3") {
		t.Error("Res wrong")
	}
}
