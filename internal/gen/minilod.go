package gen

import (
	"github.com/lodviz/lodviz/internal/store"
	"github.com/lodviz/lodviz/internal/turtle"
)

// MiniLOD is a small, hand-written Linked-Data excerpt in Turtle used by the
// quickstart example and documentation: cities, countries, people and a tiny
// ontology, shaped like the DBpedia fragments the surveyed browsers
// demonstrate on.
const MiniLOD = `
@prefix rdf:  <http://www.w3.org/1999/02/22-rdf-syntax-ns#> .
@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
@prefix owl:  <http://www.w3.org/2002/07/owl#> .
@prefix xsd:  <http://www.w3.org/2001/XMLSchema#> .
@prefix geo:  <http://www.w3.org/2003/01/geo/wgs84_pos#> .
@prefix foaf: <http://xmlns.com/foaf/0.1/> .
@prefix ex:   <http://lodviz.example.org/mini/> .

# --- tiny ontology -------------------------------------------------------
ex:Place a owl:Class ; rdfs:label "Place" .
ex:City a owl:Class ; rdfs:subClassOf ex:Place ; rdfs:label "City" .
ex:Country a owl:Class ; rdfs:subClassOf ex:Place ; rdfs:label "Country" .
ex:Agent a owl:Class ; rdfs:label "Agent" .
ex:Person a owl:Class ; rdfs:subClassOf ex:Agent ; rdfs:label "Person" .

# --- countries -----------------------------------------------------------
ex:greece a ex:Country ; rdfs:label "Greece"@en ; ex:population 10768000 .
ex:france a ex:Country ; rdfs:label "France"@en ; ex:population 66990000 .
ex:australia a ex:Country ; rdfs:label "Australia"@en ; ex:population 23470000 .

# --- cities --------------------------------------------------------------
ex:athens a ex:City ; rdfs:label "Athens"@en ;
    ex:population 664046 ; ex:foundedIn "1834-09-18"^^xsd:date ;
    ex:country ex:greece ;
    geo:lat "37.9838"^^xsd:double ; geo:long "23.7275"^^xsd:double .
ex:thessaloniki a ex:City ; rdfs:label "Thessaloniki"@en ;
    ex:population 325182 ; ex:country ex:greece ;
    geo:lat "40.6401"^^xsd:double ; geo:long "22.9444"^^xsd:double .
ex:bordeaux a ex:City ; rdfs:label "Bordeaux"@en ;
    ex:population 252040 ; ex:foundedIn "1790-03-04"^^xsd:date ;
    ex:country ex:france ;
    geo:lat "44.8378"^^xsd:double ; geo:long "-0.5792"^^xsd:double .
ex:paris a ex:City ; rdfs:label "Paris"@en ;
    ex:population 2140526 ; ex:country ex:france ;
    geo:lat "48.8566"^^xsd:double ; geo:long "2.3522"^^xsd:double .
ex:melbourne a ex:City ; rdfs:label "Melbourne"@en ;
    ex:population 4936349 ; ex:country ex:australia ;
    geo:lat "-37.8136"^^xsd:double ; geo:long "144.9631"^^xsd:double .

# --- people --------------------------------------------------------------
ex:nikos a ex:Person ; foaf:name "Nikos" ; ex:livesIn ex:athens ;
    foaf:age 34 ; foaf:knows ex:timos .
ex:timos a ex:Person ; foaf:name "Timos" ; ex:livesIn ex:melbourne ;
    foaf:age 62 ; foaf:knows ex:nikos, ex:maria .
ex:maria a ex:Person ; foaf:name "Maria" ; ex:livesIn ex:thessaloniki ;
    foaf:age 29 ; foaf:knows ex:nikos .
ex:jean a ex:Person ; foaf:name "Jean" ; ex:livesIn ex:bordeaux ;
    foaf:age 41 ; foaf:knows ex:timos .
`

// MiniLODStore parses the embedded mini dataset into a store.
func MiniLODStore() *store.Store {
	triples, err := turtle.ParseString(MiniLOD)
	if err != nil {
		panic("gen: embedded MiniLOD does not parse: " + err.Error())
	}
	st, err := store.Load(triples)
	if err != nil {
		panic("gen: embedded MiniLOD does not load: " + err.Error())
	}
	return st
}

// MiniNS is the namespace of the embedded mini dataset.
const MiniNS = "http://lodviz.example.org/mini/"
