// Package geo supports the geospatial Linked Data systems of the survey's
// §3.3 (map4rdf, Facete, SexTant, LinkedGeoData browser, DBpedia Atlas):
// WGS84 point extraction from RDF, a point quadtree for viewport queries,
// and map binning for clutter-free rendering at low zoom.
package geo

import (
	"math"
	"sort"

	"github.com/lodviz/lodviz/internal/rdf"
	"github.com/lodviz/lodviz/internal/store"
)

// Point is a geolocated entity.
type Point struct {
	Entity   rdf.Term
	Lat, Lon float64
}

// ExtractPoints finds all entities with geo:lat and geo:long literals.
func ExtractPoints(st *store.Store) []Point {
	lats := map[rdf.Term]float64{}
	st.ForEach(store.Pattern{P: rdf.GeoLat}, func(t rdf.Triple) bool {
		if l, ok := t.O.(rdf.Literal); ok {
			if v, ok := l.Float(); ok {
				lats[t.S] = v
			}
		}
		return true
	})
	var out []Point
	st.ForEach(store.Pattern{P: rdf.GeoLong}, func(t rdf.Triple) bool {
		if lat, ok := lats[t.S]; ok {
			if l, ok := t.O.(rdf.Literal); ok {
				if lon, ok := l.Float(); ok {
					out = append(out, Point{Entity: t.S, Lat: lat, Lon: lon})
				}
			}
		}
		return true
	})
	sort.Slice(out, func(i, j int) bool { return rdf.Compare(out[i].Entity, out[j].Entity) < 0 })
	return out
}

// BBox is a lat/lon bounding box.
type BBox struct {
	MinLat, MinLon, MaxLat, MaxLon float64
}

// Contains reports whether the box contains the point.
func (b BBox) Contains(lat, lon float64) bool {
	return lat >= b.MinLat && lat <= b.MaxLat && lon >= b.MinLon && lon <= b.MaxLon
}

func (b BBox) intersects(o BBox) bool {
	return b.MinLat <= o.MaxLat && o.MinLat <= b.MaxLat &&
		b.MinLon <= o.MaxLon && o.MinLon <= b.MaxLon
}

// quadMax is the leaf capacity of the quadtree.
const quadMax = 32

// Quadtree indexes points for viewport (bounding-box) queries.
type Quadtree struct {
	bounds   BBox
	points   []Point
	children *[4]*Quadtree
	size     int
}

// NewQuadtree creates a quadtree over the given bounds.
func NewQuadtree(bounds BBox) *Quadtree {
	return &Quadtree{bounds: bounds}
}

// WorldQuadtree covers the whole WGS84 domain.
func WorldQuadtree() *Quadtree {
	return NewQuadtree(BBox{MinLat: -90, MinLon: -180, MaxLat: 90, MaxLon: 180})
}

// Len returns the number of indexed points.
func (q *Quadtree) Len() int { return q.size }

// Insert adds a point (points outside the bounds are clamped in).
func (q *Quadtree) Insert(p Point) {
	p.Lat = math.Max(q.bounds.MinLat, math.Min(q.bounds.MaxLat, p.Lat))
	p.Lon = math.Max(q.bounds.MinLon, math.Min(q.bounds.MaxLon, p.Lon))
	q.insert(p)
}

func (q *Quadtree) insert(p Point) {
	q.size++
	if q.children == nil {
		q.points = append(q.points, p)
		if len(q.points) > quadMax && q.splittable() {
			q.split()
		}
		return
	}
	q.children[q.quadrant(p.Lat, p.Lon)].insert(p)
}

// splittable guards against infinite splitting when many points share a
// coordinate.
func (q *Quadtree) splittable() bool {
	return q.bounds.MaxLat-q.bounds.MinLat > 1e-9 && q.bounds.MaxLon-q.bounds.MinLon > 1e-9
}

func (q *Quadtree) split() {
	midLat := (q.bounds.MinLat + q.bounds.MaxLat) / 2
	midLon := (q.bounds.MinLon + q.bounds.MaxLon) / 2
	q.children = &[4]*Quadtree{
		NewQuadtree(BBox{q.bounds.MinLat, q.bounds.MinLon, midLat, midLon}),
		NewQuadtree(BBox{q.bounds.MinLat, midLon, midLat, q.bounds.MaxLon}),
		NewQuadtree(BBox{midLat, q.bounds.MinLon, q.bounds.MaxLat, midLon}),
		NewQuadtree(BBox{midLat, midLon, q.bounds.MaxLat, q.bounds.MaxLon}),
	}
	pts := q.points
	q.points = nil
	// Redistribute into children; q.size already counts these points, and
	// child.insert only increments the child's own counter.
	for _, p := range pts {
		q.children[q.quadrant(p.Lat, p.Lon)].insert(p)
	}
}

func (q *Quadtree) quadrant(lat, lon float64) int {
	midLat := (q.bounds.MinLat + q.bounds.MaxLat) / 2
	midLon := (q.bounds.MinLon + q.bounds.MaxLon) / 2
	i := 0
	if lat >= midLat {
		i += 2
	}
	if lon >= midLon {
		i++
	}
	return i
}

// Query returns all points within the box.
func (q *Quadtree) Query(box BBox) []Point {
	var out []Point
	q.query(box, &out)
	return out
}

func (q *Quadtree) query(box BBox, out *[]Point) {
	if !q.bounds.intersects(box) {
		return
	}
	for _, p := range q.points {
		if box.Contains(p.Lat, p.Lon) {
			*out = append(*out, p)
		}
	}
	if q.children != nil {
		for _, c := range q.children {
			c.query(box, out)
		}
	}
}

// MapBin is one cluster marker for low-zoom rendering.
type MapBin struct {
	// CenterLat/CenterLon is the centroid of the binned points.
	CenterLat, CenterLon float64
	Count                int
}

// BinForZoom clusters points into a grid whose resolution doubles per zoom
// level (OSM-style), producing the aggregated markers map4rdf-like tools
// show instead of thousands of overlapping pins.
func BinForZoom(points []Point, zoom int) []MapBin {
	if zoom < 0 {
		zoom = 0
	}
	if zoom > 18 {
		zoom = 18
	}
	cells := 1 << uint(zoom+2)
	type agg struct {
		lat, lon float64
		n        int
	}
	grid := map[int]*agg{}
	var keys []int
	for _, p := range points {
		cx := int((p.Lon + 180) / 360 * float64(cells))
		cy := int((p.Lat + 90) / 180 * float64(cells))
		if cx >= cells {
			cx = cells - 1
		}
		if cy >= cells {
			cy = cells - 1
		}
		key := cy*cells + cx
		a := grid[key]
		if a == nil {
			a = &agg{}
			grid[key] = a
			keys = append(keys, key)
		}
		a.lat += p.Lat
		a.lon += p.Lon
		a.n++
	}
	sort.Ints(keys)
	out := make([]MapBin, 0, len(keys))
	for _, k := range keys {
		a := grid[k]
		out = append(out, MapBin{
			CenterLat: a.lat / float64(a.n),
			CenterLon: a.lon / float64(a.n),
			Count:     a.n,
		})
	}
	return out
}

// Haversine returns the great-circle distance between two points in
// kilometres.
func Haversine(lat1, lon1, lat2, lon2 float64) float64 {
	const earthRadiusKm = 6371
	rad := func(d float64) float64 { return d * math.Pi / 180 }
	dLat := rad(lat2 - lat1)
	dLon := rad(lon2 - lon1)
	a := math.Sin(dLat/2)*math.Sin(dLat/2) +
		math.Cos(rad(lat1))*math.Cos(rad(lat2))*math.Sin(dLon/2)*math.Sin(dLon/2)
	return 2 * earthRadiusKm * math.Asin(math.Sqrt(a))
}
