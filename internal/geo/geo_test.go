package geo

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/lodviz/lodviz/internal/rdf"
	"github.com/lodviz/lodviz/internal/store"
)

func ex(s string) rdf.IRI { return rdf.IRI("http://example.org/" + s) }

func TestExtractPoints(t *testing.T) {
	st := store.New()
	st.AddAll([]rdf.Triple{
		rdf.T(ex("athens"), rdf.GeoLat, rdf.NewDouble(37.98)),
		rdf.T(ex("athens"), rdf.GeoLong, rdf.NewDouble(23.73)),
		rdf.T(ex("bordeaux"), rdf.GeoLat, rdf.NewDouble(44.84)),
		rdf.T(ex("bordeaux"), rdf.GeoLong, rdf.NewDouble(-0.58)),
		rdf.T(ex("nolat"), rdf.GeoLong, rdf.NewDouble(10)),
		rdf.T(ex("badlat"), rdf.GeoLat, rdf.NewLiteral("not-a-number")),
		rdf.T(ex("badlat"), rdf.GeoLong, rdf.NewDouble(5)),
	})
	pts := ExtractPoints(st)
	if len(pts) != 2 {
		t.Fatalf("points = %v", pts)
	}
	if pts[0].Entity != ex("athens") || pts[0].Lat != 37.98 {
		t.Errorf("first point = %+v", pts[0])
	}
}

func TestQuadtreeQueryMatchesBruteForce(t *testing.T) {
	q := WorldQuadtree()
	rng := rand.New(rand.NewSource(1))
	var pts []Point
	for i := 0; i < 2000; i++ {
		p := Point{
			Entity: ex(fmt.Sprintf("p%d", i)),
			Lat:    rng.Float64()*180 - 90,
			Lon:    rng.Float64()*360 - 180,
		}
		pts = append(pts, p)
		q.Insert(p)
	}
	if q.Len() != 2000 {
		t.Fatalf("Len = %d", q.Len())
	}
	for trial := 0; trial < 10; trial++ {
		box := BBox{
			MinLat: rng.Float64()*160 - 90,
			MinLon: rng.Float64()*320 - 180,
		}
		box.MaxLat = box.MinLat + rng.Float64()*30
		box.MaxLon = box.MinLon + rng.Float64()*60
		got := q.Query(box)
		want := 0
		for _, p := range pts {
			if box.Contains(p.Lat, p.Lon) {
				want++
			}
		}
		if len(got) != want {
			t.Errorf("box %+v: got %d, want %d", box, len(got), want)
		}
	}
}

func TestQuadtreeDuplicatePointsNoInfiniteSplit(t *testing.T) {
	q := WorldQuadtree()
	for i := 0; i < 500; i++ {
		q.Insert(Point{Entity: ex("same"), Lat: 10, Lon: 10})
	}
	if q.Len() != 500 {
		t.Errorf("Len = %d", q.Len())
	}
	got := q.Query(BBox{MinLat: 9, MinLon: 9, MaxLat: 11, MaxLon: 11})
	if len(got) != 500 {
		t.Errorf("query = %d", len(got))
	}
}

func TestQuadtreeClampsOutOfRange(t *testing.T) {
	q := WorldQuadtree()
	q.Insert(Point{Entity: ex("x"), Lat: 999, Lon: -999})
	got := q.Query(BBox{MinLat: 89, MinLon: -180, MaxLat: 90, MaxLon: -179})
	if len(got) != 1 {
		t.Errorf("clamped point lost: %v", got)
	}
}

// Property: every inserted point is findable in a box around it.
func TestQuadtreePointFindableProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q := WorldQuadtree()
		var pts []Point
		for i := 0; i < 100; i++ {
			p := Point{Lat: rng.Float64()*180 - 90, Lon: rng.Float64()*360 - 180}
			pts = append(pts, p)
			q.Insert(p)
		}
		for _, p := range pts {
			got := q.Query(BBox{
				MinLat: p.Lat - 1e-6, MinLon: p.Lon - 1e-6,
				MaxLat: p.Lat + 1e-6, MaxLon: p.Lon + 1e-6,
			})
			found := false
			for _, g := range got {
				if g.Lat == p.Lat && g.Lon == p.Lon {
					found = true
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestBinForZoomAggregates(t *testing.T) {
	var pts []Point
	// Two clusters far apart.
	for i := 0; i < 100; i++ {
		pts = append(pts, Point{Lat: 38 + float64(i)*1e-4, Lon: 23})
		pts = append(pts, Point{Lat: -33, Lon: 151 + float64(i)*1e-4})
	}
	bins := BinForZoom(pts, 0)
	if len(bins) != 2 {
		t.Fatalf("zoom-0 bins = %d, want 2", len(bins))
	}
	total := 0
	for _, b := range bins {
		total += b.Count
	}
	if total != 200 {
		t.Errorf("binned %d points", total)
	}
	// Higher zoom — at least as many bins.
	if len(BinForZoom(pts, 10)) < 2 {
		t.Error("zoom-10 should keep clusters separate")
	}
}

func TestBinForZoomCentroids(t *testing.T) {
	pts := []Point{{Lat: 10, Lon: 20}, {Lat: 12, Lon: 22}}
	bins := BinForZoom(pts, 0)
	if len(bins) != 1 {
		t.Fatalf("bins = %d", len(bins))
	}
	if math.Abs(bins[0].CenterLat-11) > 1e-9 || math.Abs(bins[0].CenterLon-21) > 1e-9 {
		t.Errorf("centroid = %+v", bins[0])
	}
}

func TestBinForZoomClampsZoom(t *testing.T) {
	pts := []Point{{Lat: 0, Lon: 0}}
	if len(BinForZoom(pts, -5)) != 1 || len(BinForZoom(pts, 99)) != 1 {
		t.Error("zoom clamping broken")
	}
}

func TestHaversine(t *testing.T) {
	// Athens to Bordeaux is roughly 2130 km.
	d := Haversine(37.98, 23.73, 44.84, -0.58)
	if d < 2000 || d > 2300 {
		t.Errorf("Athens-Bordeaux = %g km", d)
	}
	if Haversine(10, 20, 10, 20) != 0 {
		t.Error("zero distance broken")
	}
}
