// Package graph extracts and represents the node-link structure of an RDF
// dataset — the view every system in the survey's Section 3.4 ("graph-based
// visualization") starts from. Nodes are RDF resources; edges are the
// object-property statements between them (literal-valued statements become
// node attributes, not edges).
package graph

import (
	"sort"

	"github.com/lodviz/lodviz/internal/rdf"
	"github.com/lodviz/lodviz/internal/store"
)

// NodeID is a dense node index in a Graph.
type NodeID int

// Edge is a directed, labeled edge.
type Edge struct {
	From, To NodeID
	Label    rdf.IRI
}

// Graph is a directed multigraph over RDF resources.
type Graph struct {
	// Terms maps NodeID to the RDF term it stands for.
	Terms []rdf.Term
	// Edges lists all edges.
	Edges []Edge
	// Out and In are adjacency lists (edge indexes).
	Out, In [][]int

	index map[rdf.Term]NodeID
}

// New creates an empty graph.
func New() *Graph {
	return &Graph{index: map[rdf.Term]NodeID{}}
}

// FromStore builds the graph of all resource-to-resource statements in the
// store, skipping literal objects.
func FromStore(st *store.Store) *Graph {
	g := New()
	st.ForEach(store.Pattern{}, func(t rdf.Triple) bool {
		if t.O.Kind() == rdf.KindLiteral {
			return true
		}
		g.AddEdge(t.S, t.O, t.P)
		return true
	})
	return g
}

// NumNodes returns the node count.
func (g *Graph) NumNodes() int { return len(g.Terms) }

// NumEdges returns the edge count.
func (g *Graph) NumEdges() int { return len(g.Edges) }

// Node interns a term as a node and returns its id.
func (g *Graph) Node(t rdf.Term) NodeID {
	if id, ok := g.index[t]; ok {
		return id
	}
	id := NodeID(len(g.Terms))
	g.index[t] = id
	g.Terms = append(g.Terms, t)
	g.Out = append(g.Out, nil)
	g.In = append(g.In, nil)
	return id
}

// Lookup returns the node for a term, if present.
func (g *Graph) Lookup(t rdf.Term) (NodeID, bool) {
	id, ok := g.index[t]
	return id, ok
}

// AddEdge adds a labeled edge between two terms, interning them as needed.
func (g *Graph) AddEdge(from, to rdf.Term, label rdf.IRI) {
	f, t := g.Node(from), g.Node(to)
	idx := len(g.Edges)
	g.Edges = append(g.Edges, Edge{From: f, To: t, Label: label})
	g.Out[f] = append(g.Out[f], idx)
	g.In[t] = append(g.In[t], idx)
}

// Degree returns the total (in+out) degree of a node.
func (g *Graph) Degree(n NodeID) int { return len(g.Out[n]) + len(g.In[n]) }

// Neighbors returns the distinct neighbor ids of n (either direction).
func (g *Graph) Neighbors(n NodeID) []NodeID {
	seen := map[NodeID]struct{}{}
	var out []NodeID
	add := func(id NodeID) {
		if id == n {
			return
		}
		if _, dup := seen[id]; !dup {
			seen[id] = struct{}{}
			out = append(out, id)
		}
	}
	for _, e := range g.Out[n] {
		add(g.Edges[e].To)
	}
	for _, e := range g.In[n] {
		add(g.Edges[e].From)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// BFS visits nodes in breadth-first order from start, calling fn with each
// node and its depth; fn returning false stops the traversal.
func (g *Graph) BFS(start NodeID, fn func(n NodeID, depth int) bool) {
	if int(start) >= g.NumNodes() {
		return
	}
	visited := make([]bool, g.NumNodes())
	type qe struct {
		n NodeID
		d int
	}
	queue := []qe{{start, 0}}
	visited[start] = true
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if !fn(cur.n, cur.d) {
			return
		}
		for _, nb := range g.Neighbors(cur.n) {
			if !visited[nb] {
				visited[nb] = true
				queue = append(queue, qe{nb, cur.d + 1})
			}
		}
	}
}

// Neighborhood returns all nodes within the given number of hops of start
// (including start) — the expansion primitive of Lodlive/Fenfire-style
// link-following browsers.
func (g *Graph) Neighborhood(start NodeID, hops int) []NodeID {
	var out []NodeID
	g.BFS(start, func(n NodeID, d int) bool {
		if d > hops {
			return false
		}
		out = append(out, n)
		return true
	})
	return out
}

// ConnectedComponents returns a component id per node (treating edges as
// undirected) and the number of components.
func (g *Graph) ConnectedComponents() ([]int, int) {
	comp := make([]int, g.NumNodes())
	for i := range comp {
		comp[i] = -1
	}
	next := 0
	for v := 0; v < g.NumNodes(); v++ {
		if comp[v] != -1 {
			continue
		}
		// BFS labeling.
		queue := []NodeID{NodeID(v)}
		comp[v] = next
		for len(queue) > 0 {
			n := queue[0]
			queue = queue[1:]
			for _, nb := range g.Neighbors(n) {
				if comp[nb] == -1 {
					comp[nb] = next
					queue = append(queue, nb)
				}
			}
		}
		next++
	}
	return comp, next
}

// KCore returns the maximal subgraph node set in which every node has
// (undirected) degree >= k — the density filter large-graph visualizers use
// to find the "interesting" core.
func (g *Graph) KCore(k int) []NodeID {
	n := g.NumNodes()
	deg := make([]int, n)
	removed := make([]bool, n)
	for v := 0; v < n; v++ {
		deg[v] = len(g.Neighbors(NodeID(v)))
	}
	changed := true
	for changed {
		changed = false
		for v := 0; v < n; v++ {
			if !removed[v] && deg[v] < k {
				removed[v] = true
				changed = true
				for _, nb := range g.Neighbors(NodeID(v)) {
					if !removed[nb] {
						deg[nb]--
					}
				}
			}
		}
	}
	var out []NodeID
	for v := 0; v < n; v++ {
		if !removed[v] {
			out = append(out, NodeID(v))
		}
	}
	return out
}

// UndirectedEdgePairs returns the distinct undirected node pairs with at
// least one edge, as index pairs — the form clustering and layout consume.
func (g *Graph) UndirectedEdgePairs() [][2]int {
	seen := map[[2]int]struct{}{}
	var out [][2]int
	for _, e := range g.Edges {
		a, b := int(e.From), int(e.To)
		if a > b {
			a, b = b, a
		}
		key := [2]int{a, b}
		if _, dup := seen[key]; !dup {
			seen[key] = struct{}{}
			out = append(out, key)
		}
	}
	return out
}
