package graph

import (
	"fmt"
	"testing"

	"github.com/lodviz/lodviz/internal/rdf"
	"github.com/lodviz/lodviz/internal/store"
)

func iri(s string) rdf.IRI { return rdf.IRI("http://e/" + s) }

func chainGraph(n int) *Graph {
	g := New()
	for i := 0; i < n-1; i++ {
		g.AddEdge(iri(fmt.Sprintf("n%d", i)), iri(fmt.Sprintf("n%d", i+1)), "http://e/next")
	}
	return g
}

func TestFromStoreSkipsLiterals(t *testing.T) {
	st := store.New()
	st.AddAll([]rdf.Triple{
		rdf.T(iri("a"), "http://e/knows", iri("b")),
		rdf.T(iri("a"), "http://e/name", rdf.NewLiteral("Alice")),
		rdf.T(iri("b"), "http://e/knows", iri("c")),
	})
	g := FromStore(st)
	if g.NumNodes() != 3 {
		t.Errorf("nodes = %d, want 3", g.NumNodes())
	}
	if g.NumEdges() != 2 {
		t.Errorf("edges = %d, want 2", g.NumEdges())
	}
}

func TestNodeInterning(t *testing.T) {
	g := New()
	a1 := g.Node(iri("a"))
	a2 := g.Node(iri("a"))
	if a1 != a2 {
		t.Error("same term interned twice")
	}
	if _, ok := g.Lookup(iri("a")); !ok {
		t.Error("Lookup failed")
	}
	if _, ok := g.Lookup(iri("zzz")); ok {
		t.Error("Lookup invented a node")
	}
}

func TestDegreeAndNeighbors(t *testing.T) {
	g := New()
	g.AddEdge(iri("hub"), iri("a"), "http://e/p")
	g.AddEdge(iri("hub"), iri("b"), "http://e/p")
	g.AddEdge(iri("c"), iri("hub"), "http://e/p")
	hub, _ := g.Lookup(iri("hub"))
	if g.Degree(hub) != 3 {
		t.Errorf("degree = %d, want 3", g.Degree(hub))
	}
	nbrs := g.Neighbors(hub)
	if len(nbrs) != 3 {
		t.Errorf("neighbors = %d, want 3", len(nbrs))
	}
}

func TestNeighborsDeduplicated(t *testing.T) {
	g := New()
	g.AddEdge(iri("a"), iri("b"), "http://e/p")
	g.AddEdge(iri("a"), iri("b"), "http://e/q") // parallel edge
	g.AddEdge(iri("b"), iri("a"), "http://e/r") // reverse edge
	a, _ := g.Lookup(iri("a"))
	if n := g.Neighbors(a); len(n) != 1 {
		t.Errorf("neighbors = %d, want 1", len(n))
	}
}

func TestBFSDepths(t *testing.T) {
	g := chainGraph(5)
	start, _ := g.Lookup(iri("n0"))
	depths := map[int]int{}
	g.BFS(start, func(n NodeID, d int) bool {
		depths[d]++
		return true
	})
	for d := 0; d < 5; d++ {
		if depths[d] != 1 {
			t.Errorf("depth %d count = %d", d, depths[d])
		}
	}
}

func TestNeighborhood(t *testing.T) {
	g := chainGraph(10)
	start, _ := g.Lookup(iri("n0"))
	hood := g.Neighborhood(start, 3)
	if len(hood) != 4 { // n0..n3
		t.Errorf("neighborhood = %d nodes, want 4", len(hood))
	}
}

func TestConnectedComponents(t *testing.T) {
	g := New()
	g.AddEdge(iri("a"), iri("b"), "http://e/p")
	g.AddEdge(iri("c"), iri("d"), "http://e/p")
	g.Node(iri("lonely"))
	comp, n := g.ConnectedComponents()
	if n != 3 {
		t.Errorf("components = %d, want 3", n)
	}
	a, _ := g.Lookup(iri("a"))
	b, _ := g.Lookup(iri("b"))
	if comp[a] != comp[b] {
		t.Error("a and b in different components")
	}
}

func TestKCore(t *testing.T) {
	g := New()
	// K4 clique plus a pendant.
	nodes := []string{"a", "b", "c", "d"}
	for i := range nodes {
		for j := i + 1; j < len(nodes); j++ {
			g.AddEdge(iri(nodes[i]), iri(nodes[j]), "http://e/p")
		}
	}
	g.AddEdge(iri("pendant"), iri("a"), "http://e/p")
	core := g.KCore(3)
	if len(core) != 4 {
		t.Errorf("3-core = %d nodes, want 4", len(core))
	}
	if len(g.KCore(10)) != 0 {
		t.Error("10-core should be empty")
	}
}

func TestUndirectedEdgePairs(t *testing.T) {
	g := New()
	g.AddEdge(iri("a"), iri("b"), "http://e/p")
	g.AddEdge(iri("b"), iri("a"), "http://e/q") // same undirected pair
	g.AddEdge(iri("a"), iri("c"), "http://e/p")
	if pairs := g.UndirectedEdgePairs(); len(pairs) != 2 {
		t.Errorf("pairs = %d, want 2", len(pairs))
	}
}

func TestBFSInvalidStart(t *testing.T) {
	g := New()
	g.BFS(99, func(NodeID, int) bool { t.Fatal("must not visit"); return false })
}
