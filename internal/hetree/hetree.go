// Package hetree implements HETree, the hierarchical aggregation model
// behind SynopsViz (Bikakis et al. [25,26] in the survey): a static tree of
// aggregate nodes over a one-dimensional (numeric or temporal) attribute that
// lets a front-end explore any dataset size at a bounded per-screen cost.
//
// Two flavors are provided, following the paper:
//
//   - HETree-C ("content-based"): leaves hold a fixed number of items, so
//     every leaf carries the same weight (equal-frequency partitioning).
//   - HETree-R ("range-based"): leaves span equal value ranges
//     (equal-width partitioning).
//
// The package supports the paper's two scalability mechanisms:
//
//   - Incremental construction (ICO): a tree starts as a bare root; children
//     materialize only when expanded, so exploring k nodes costs O(k·d)
//     materializations instead of building all O(n/ℓ) nodes up front.
//   - Adaptation: the degree and leaf capacity can be changed mid-session;
//     materialized structure is discarded lazily while the sorted data and
//     prefix sums (the expensive part) are reused.
//
// All aggregates are computed in O(1) per node from prefix sums over the
// sorted values.
package hetree

import (
	"errors"
	"fmt"
	"sort"
)

// Mode selects the partitioning strategy.
type Mode int

const (
	// ContentBased is HETree-C: equal-count leaves.
	ContentBased Mode = iota
	// RangeBased is HETree-R: equal-width leaves.
	RangeBased
)

func (m Mode) String() string {
	if m == ContentBased {
		return "HETree-C"
	}
	return "HETree-R"
}

// Item is one data object with its 1-D ordering value (a number, or a
// timestamp mapped to Unix seconds) and an opaque reference, typically the
// RDF resource the value belongs to.
type Item struct {
	Value float64
	Ref   any
}

// Node is one aggregate node of the tree. Aggregate fields cover every item
// in the node's interval.
type Node struct {
	// Lo and Hi delimit the node's value interval [Lo, Hi]; for content
	// nodes these are the actual min/max of the contained items.
	Lo, Hi float64
	// Count, Sum, Min, Max aggregate the contained items.
	Count    int
	Sum      float64
	Min, Max float64
	// Depth is the node's distance from the root.
	Depth int

	// loIdx/hiIdx delimit the node's slice of the sorted data.
	loIdx, hiIdx int
	// rLo/rHi is the assigned value range for range-based nodes.
	rLo, rHi float64
	children []*Node
	expanded bool
	leaf     bool
}

// Mean returns the node's mean value (0 when empty).
func (n *Node) Mean() float64 {
	if n.Count == 0 {
		return 0
	}
	return n.Sum / float64(n.Count)
}

// IsLeaf reports whether the node is a leaf of the (possibly unmaterialized)
// tree.
func (n *Node) IsLeaf() bool { return n.leaf }

// Tree is a HETree over a sorted copy of the input items.
type Tree struct {
	mode    Mode
	degree  int
	leafCap int
	data    []Item
	prefix  []float64 // prefix[i] = sum of data[:i].Value
	root    *Node

	// materialized counts nodes created so far — the cost metric for the
	// full-vs-incremental experiment (E5).
	materialized int
}

// Options configure tree construction.
type Options struct {
	// Mode selects HETree-C or HETree-R.
	Mode Mode
	// Degree is the fan-out of internal nodes (default 4).
	Degree int
	// LeafCapacity is the target number of items per leaf for HETree-C, or
	// the target number of leaves' worth of width for HETree-R (default 32).
	LeafCapacity int
	// Incremental, when true, defers all materialization below the root
	// (the paper's ICO strategy). When false the whole tree is built.
	Incremental bool
}

func (o *Options) normalize() {
	if o.Degree < 2 {
		o.Degree = 4
	}
	if o.LeafCapacity < 1 {
		o.LeafCapacity = 32
	}
}

// ErrNoData is returned when constructing a tree over no items.
var ErrNoData = errors.New("hetree: no items")

// New builds a HETree over items (copied and sorted by value).
func New(items []Item, opts Options) (*Tree, error) {
	if len(items) == 0 {
		return nil, ErrNoData
	}
	opts.normalize()
	data := make([]Item, len(items))
	copy(data, items)
	sort.Slice(data, func(i, j int) bool { return data[i].Value < data[j].Value })
	prefix := make([]float64, len(data)+1)
	for i, it := range data {
		prefix[i+1] = prefix[i] + it.Value
	}
	t := &Tree{
		mode:    opts.Mode,
		degree:  opts.Degree,
		leafCap: opts.LeafCapacity,
		data:    data,
		prefix:  prefix,
	}
	t.root = t.makeNode(0, len(data), data[0].Value, data[len(data)-1].Value, 0)
	if !opts.Incremental {
		t.expandAll(t.root)
	}
	return t, nil
}

// makeNode materializes one node covering data[lo:hi].
func (t *Tree) makeNode(lo, hi int, rLo, rHi float64, depth int) *Node {
	t.materialized++
	n := &Node{
		Depth: depth,
		loIdx: lo, hiIdx: hi,
		rLo: rLo, rHi: rHi,
	}
	n.Count = hi - lo
	if n.Count > 0 {
		n.Sum = t.prefix[hi] - t.prefix[lo]
		n.Min = t.data[lo].Value
		n.Max = t.data[hi-1].Value
	}
	switch t.mode {
	case ContentBased:
		n.Lo, n.Hi = n.Min, n.Max
		n.leaf = n.Count <= t.leafCap
	default:
		n.Lo, n.Hi = rLo, rHi
		// A range node is a leaf when its width reaches the leaf width.
		total := t.data[len(t.data)-1].Value - t.data[0].Value
		if total <= 0 {
			n.leaf = true
		} else {
			leafWidth := total / float64(t.numRangeLeaves())
			n.leaf = rHi-rLo <= leafWidth*1.0000001 || n.Count <= 1
		}
	}
	return n
}

// numRangeLeaves derives the leaf count for HETree-R from the leaf capacity,
// mirroring HETree-C's granularity.
func (t *Tree) numRangeLeaves() int {
	l := (len(t.data) + t.leafCap - 1) / t.leafCap
	if l < 1 {
		l = 1
	}
	return l
}

// Root returns the tree's root node.
func (t *Tree) Root() *Node { return t.root }

// Mode returns the tree's partitioning mode.
func (t *Tree) Mode() Mode { return t.mode }

// Len returns the number of items in the tree.
func (t *Tree) Len() int { return len(t.data) }

// MaterializedNodes returns how many nodes have been created so far.
func (t *Tree) MaterializedNodes() int { return t.materialized }

// Children returns the node's children, materializing them on first access
// (the ICO step). Leaves return nil.
func (t *Tree) Children(n *Node) []*Node {
	if n.leaf {
		return nil
	}
	if n.expanded {
		return n.children
	}
	n.expanded = true
	switch t.mode {
	case ContentBased:
		n.children = t.splitContent(n)
	default:
		n.children = t.splitRange(n)
	}
	return n.children
}

// splitContent splits a content node into ≤ degree children of near-equal
// leaf counts, aligned to leaf boundaries.
func (t *Tree) splitContent(n *Node) []*Node {
	nLeaves := (n.Count + t.leafCap - 1) / t.leafCap
	if nLeaves <= 1 {
		return nil
	}
	perChild := (nLeaves + t.degree - 1) / t.degree
	var out []*Node
	for lo := n.loIdx; lo < n.hiIdx; {
		hi := lo + perChild*t.leafCap
		if hi > n.hiIdx {
			hi = n.hiIdx
		}
		out = append(out, t.makeNode(lo, hi, 0, 0, n.Depth+1))
		lo = hi
	}
	return out
}

// splitRange splits a range node into degree equal-width children.
func (t *Tree) splitRange(n *Node) []*Node {
	width := (n.rHi - n.rLo) / float64(t.degree)
	if width <= 0 {
		return nil
	}
	var out []*Node
	for i := 0; i < t.degree; i++ {
		lo := n.rLo + float64(i)*width
		hi := lo + width
		last := i == t.degree-1
		if last {
			hi = n.rHi
		}
		// Locate the data slice for [lo, hi) — [lo, hi] for the last child —
		// by binary search on the sorted values.
		loIdx := sort.Search(len(t.data), func(k int) bool { return t.data[k].Value >= lo })
		var hiIdx int
		if last {
			hiIdx = sort.Search(len(t.data), func(k int) bool { return t.data[k].Value > hi })
		} else {
			hiIdx = sort.Search(len(t.data), func(k int) bool { return t.data[k].Value >= hi })
		}
		if loIdx < n.loIdx {
			loIdx = n.loIdx
		}
		if hiIdx > n.hiIdx {
			hiIdx = n.hiIdx
		}
		out = append(out, t.makeNode(loIdx, hiIdx, lo, hi, n.Depth+1))
	}
	return out
}

// expandAll materializes the full subtree below n.
func (t *Tree) expandAll(n *Node) {
	for _, c := range t.Children(n) {
		t.expandAll(c)
	}
}

// Items returns the node's items (slicing the shared sorted data; callers
// must not mutate the result).
func (t *Tree) Items(n *Node) []Item {
	return t.data[n.loIdx:n.hiIdx]
}

// LevelFor returns the shallowest frontier of the tree whose node count does
// not exceed budget (the "squeeze into the pixel budget" operation): it
// walks down from the root, expanding whole levels while they still fit.
func (t *Tree) LevelFor(budget int) []*Node {
	if budget < 1 {
		budget = 1
	}
	frontier := []*Node{t.root}
	for {
		var next []*Node
		done := false
		for _, n := range frontier {
			cs := t.Children(n)
			if cs == nil {
				done = true
				break
			}
			next = append(next, cs...)
		}
		if done || len(next) == 0 || len(next) > budget {
			return frontier
		}
		frontier = next
	}
}

// RangeQuery returns the maximal materia-lizable nodes covering [lo, hi]
// with at most maxNodes nodes: it descends only into nodes that straddle the
// range boundary, returning fully-covered nodes as-is — the drill-down
// primitive of multilevel exploration.
func (t *Tree) RangeQuery(lo, hi float64, maxNodes int) []*Node {
	if maxNodes < 1 {
		maxNodes = 1
	}
	var out []*Node
	var walk func(n *Node)
	walk = func(n *Node) {
		if n.Count == 0 || n.Max < lo || n.Min > hi {
			return
		}
		if (n.Min >= lo && n.Max <= hi) || n.leaf || len(out) >= maxNodes {
			out = append(out, n)
			return
		}
		for _, c := range t.Children(n) {
			walk(c)
		}
	}
	walk(t.root)
	return out
}

// Adapt changes the tree's degree and leaf capacity, discarding materialized
// structure but reusing the sorted data and prefix sums — the paper's
// "dynamic and efficient adaptation of the hierarchy to the user's
// preferences".
func (t *Tree) Adapt(degree, leafCapacity int) error {
	if degree < 2 {
		return fmt.Errorf("hetree: degree %d < 2", degree)
	}
	if leafCapacity < 1 {
		return fmt.Errorf("hetree: leaf capacity %d < 1", leafCapacity)
	}
	t.degree = degree
	t.leafCap = leafCapacity
	t.materialized = 0
	t.root = t.makeNode(0, len(t.data), t.data[0].Value, t.data[len(t.data)-1].Value, 0)
	return nil
}

// Height returns the height of the fully-expanded tree (computed without
// materializing it, from the leaf count and degree).
func (t *Tree) Height() int {
	leaves := (len(t.data) + t.leafCap - 1) / t.leafCap
	h := 0
	for span := 1; span < leaves; span *= t.degree {
		h++
	}
	return h
}
