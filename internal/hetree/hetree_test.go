package hetree

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func seq(n int) []Item {
	items := make([]Item, n)
	for i := range items {
		items[i] = Item{Value: float64(i), Ref: i}
	}
	return items
}

func TestNewErrors(t *testing.T) {
	if _, err := New(nil, Options{}); err != ErrNoData {
		t.Errorf("err = %v, want ErrNoData", err)
	}
}

func TestRootAggregates(t *testing.T) {
	tr, err := New(seq(100), Options{Mode: ContentBased, Degree: 4, LeafCapacity: 10})
	if err != nil {
		t.Fatal(err)
	}
	r := tr.Root()
	if r.Count != 100 || r.Min != 0 || r.Max != 99 {
		t.Errorf("root = %+v", r)
	}
	if r.Sum != 4950 || r.Mean() != 49.5 {
		t.Errorf("root sum/mean = %g/%g", r.Sum, r.Mean())
	}
}

func TestContentLeavesEqualCount(t *testing.T) {
	tr, _ := New(seq(64), Options{Mode: ContentBased, Degree: 2, LeafCapacity: 8})
	var leaves []*Node
	var walk func(n *Node)
	walk = func(n *Node) {
		cs := tr.Children(n)
		if cs == nil {
			leaves = append(leaves, n)
			return
		}
		for _, c := range cs {
			walk(c)
		}
	}
	walk(tr.Root())
	if len(leaves) != 8 {
		t.Fatalf("leaves = %d, want 8", len(leaves))
	}
	for i, l := range leaves {
		if l.Count != 8 {
			t.Errorf("leaf %d count = %d, want 8", i, l.Count)
		}
	}
}

func TestRangeLeavesEqualWidth(t *testing.T) {
	tr, _ := New(seq(101), Options{Mode: RangeBased, Degree: 2, LeafCapacity: 25})
	// Range [0,100], ~5 leaves worth → leaf width 20 → at depth with width<=20.
	frontier := tr.LevelFor(1 << 20)
	totalCount := 0
	for _, n := range frontier {
		totalCount += n.Count
	}
	if totalCount != 101 {
		t.Errorf("leaf counts sum to %d, want 101", totalCount)
	}
}

// checkInvariants verifies the HETree structural invariants for a subtree:
// children partition the parent's items exactly, aggregates are consistent,
// and values are ordered across content-based siblings.
func checkInvariants(t *testing.T, tr *Tree, n *Node) {
	t.Helper()
	cs := tr.Children(n)
	if cs == nil {
		return
	}
	count, sum := 0, 0.0
	for i, c := range cs {
		count += c.Count
		sum += c.Sum
		if c.Depth != n.Depth+1 {
			t.Errorf("child depth %d, parent %d", c.Depth, n.Depth)
		}
		if tr.Mode() == ContentBased && i > 0 && c.Count > 0 && cs[i-1].Count > 0 {
			if c.Min < cs[i-1].Max {
				t.Errorf("sibling order violated: %g < %g", c.Min, cs[i-1].Max)
			}
		}
		checkInvariants(t, tr, c)
	}
	if count != n.Count {
		t.Errorf("children counts %d != parent %d (depth %d)", count, n.Count, n.Depth)
	}
	if diff := sum - n.Sum; diff > 1e-6 || diff < -1e-6 {
		t.Errorf("children sums %g != parent %g", sum, n.Sum)
	}
}

func TestInvariantsContent(t *testing.T) {
	tr, _ := New(seq(1000), Options{Mode: ContentBased, Degree: 4, LeafCapacity: 16})
	checkInvariants(t, tr, tr.Root())
}

func TestInvariantsRange(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	items := make([]Item, 500)
	for i := range items {
		items[i] = Item{Value: rng.Float64() * 1000}
	}
	tr, _ := New(items, Options{Mode: RangeBased, Degree: 3, LeafCapacity: 20})
	checkInvariants(t, tr, tr.Root())
}

// Property: both modes conserve items and sums at every level, for random
// data, degrees and capacities.
func TestInvariantsProperty(t *testing.T) {
	f := func(seed int64, d8, l8 uint8, mode8 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 50 + int(seed%200+200)%200
		items := make([]Item, n)
		for i := range items {
			items[i] = Item{Value: rng.NormFloat64() * 50}
		}
		opts := Options{
			Mode:         Mode(int(mode8) % 2),
			Degree:       int(d8)%6 + 2,
			LeafCapacity: int(l8)%30 + 1,
		}
		tr, err := New(items, opts)
		if err != nil {
			return false
		}
		ok := true
		var walk func(nd *Node)
		walk = func(nd *Node) {
			cs := tr.Children(nd)
			if cs == nil {
				return
			}
			count, sum := 0, 0.0
			for _, c := range cs {
				count += c.Count
				sum += c.Sum
				walk(c)
			}
			if count != nd.Count {
				ok = false
			}
			if diff := sum - nd.Sum; diff > 1e-6 || diff < -1e-6 {
				ok = false
			}
		}
		walk(tr.Root())
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestIncrementalMaterializesLazily(t *testing.T) {
	full, _ := New(seq(10000), Options{Mode: ContentBased, Degree: 4, LeafCapacity: 10})
	fullNodes := full.MaterializedNodes()

	inc, _ := New(seq(10000), Options{Mode: ContentBased, Degree: 4, LeafCapacity: 10, Incremental: true})
	if inc.MaterializedNodes() != 1 {
		t.Errorf("incremental tree materialized %d nodes at start, want 1", inc.MaterializedNodes())
	}
	// Walk one root-to-leaf path.
	n := inc.Root()
	for {
		cs := inc.Children(n)
		if cs == nil {
			break
		}
		n = cs[0]
	}
	if inc.MaterializedNodes() >= fullNodes/10 {
		t.Errorf("path walk materialized %d of %d full nodes — not lazy enough", inc.MaterializedNodes(), fullNodes)
	}
	// The visited leaf still has correct aggregates.
	if n.Count == 0 || n.Count > 10 {
		t.Errorf("leaf count = %d", n.Count)
	}
}

func TestLevelForBudget(t *testing.T) {
	tr, _ := New(seq(4096), Options{Mode: ContentBased, Degree: 4, LeafCapacity: 4, Incremental: true})
	for _, budget := range []int{1, 4, 16, 64, 256} {
		frontier := tr.LevelFor(budget)
		if len(frontier) > budget {
			t.Errorf("LevelFor(%d) = %d nodes", budget, len(frontier))
		}
		total := 0
		for _, n := range frontier {
			total += n.Count
		}
		if total != 4096 {
			t.Errorf("LevelFor(%d) covers %d items", budget, total)
		}
	}
}

func TestRangeQuery(t *testing.T) {
	tr, _ := New(seq(1000), Options{Mode: ContentBased, Degree: 4, LeafCapacity: 10, Incremental: true})
	nodes := tr.RangeQuery(100, 200, 64)
	if len(nodes) == 0 {
		t.Fatal("no nodes returned")
	}
	count := 0
	for _, n := range nodes {
		if n.Max < 100 || n.Min > 200 {
			t.Errorf("node [%g,%g] outside query range", n.Min, n.Max)
		}
		count += n.Count
	}
	// Every item in [100,200] must be covered (boundary nodes may add more).
	if count < 101 {
		t.Errorf("covered %d items, want >= 101", count)
	}
}

func TestAdaptReusesData(t *testing.T) {
	tr, _ := New(seq(1000), Options{Mode: ContentBased, Degree: 4, LeafCapacity: 10})
	before := tr.Root().Sum
	if err := tr.Adapt(8, 50); err != nil {
		t.Fatal(err)
	}
	if tr.MaterializedNodes() != 1 {
		t.Errorf("adapt should reset materialization, got %d", tr.MaterializedNodes())
	}
	if tr.Root().Sum != before {
		t.Errorf("adapt changed aggregates: %g != %g", tr.Root().Sum, before)
	}
	cs := tr.Children(tr.Root())
	if len(cs) == 0 || len(cs) > 8 {
		t.Errorf("children after adapt = %d", len(cs))
	}
	if err := tr.Adapt(1, 10); err == nil {
		t.Error("degree 1 accepted")
	}
	if err := tr.Adapt(4, 0); err == nil {
		t.Error("leaf capacity 0 accepted")
	}
}

func TestHeight(t *testing.T) {
	tr, _ := New(seq(1000), Options{Mode: ContentBased, Degree: 10, LeafCapacity: 10})
	// 100 leaves, degree 10 → height 2.
	if h := tr.Height(); h != 2 {
		t.Errorf("Height = %d, want 2", h)
	}
}

func TestDuplicateValues(t *testing.T) {
	items := make([]Item, 100)
	for i := range items {
		items[i] = Item{Value: 42}
	}
	for _, mode := range []Mode{ContentBased, RangeBased} {
		tr, err := New(items, Options{Mode: mode, Degree: 4, LeafCapacity: 10})
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if tr.Root().Count != 100 || tr.Root().Min != 42 || tr.Root().Max != 42 {
			t.Errorf("%v root = %+v", mode, tr.Root())
		}
		checkInvariants(t, tr, tr.Root())
	}
}

func TestItemsAccess(t *testing.T) {
	tr, _ := New(seq(100), Options{Mode: ContentBased, Degree: 4, LeafCapacity: 10})
	items := tr.Items(tr.Root())
	if len(items) != 100 {
		t.Errorf("Items = %d", len(items))
	}
	// Sorted.
	for i := 1; i < len(items); i++ {
		if items[i].Value < items[i-1].Value {
			t.Fatal("items not sorted")
		}
	}
}

func TestModeString(t *testing.T) {
	if ContentBased.String() != "HETree-C" || RangeBased.String() != "HETree-R" {
		t.Error("mode labels wrong")
	}
}
