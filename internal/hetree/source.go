package hetree

import (
	"context"
	"errors"
	"sort"

	"github.com/lodviz/lodviz/internal/explore"
	"github.com/lodviz/lodviz/internal/rdf"
	"github.com/lodviz/lodviz/internal/store"
)

// ErrNoValues reports that the property has no numeric or temporal values to
// build a tree over.
var ErrNoValues = errors.New("hetree: property has no numeric or temporal values")

// FromSource collects a property's items directly from the ID-space source
// and builds the tree. The predicate-bound POS run arrives grouped by object,
// so each distinct value is decoded and parsed (Float or Time) exactly once
// no matter how many subjects share it — the old term-space path re-parsed
// the literal for every statement. Terms are materialized in two batch
// decodes (distinct objects, then subjects of numeric groups); ctx is
// honored while grouping large runs.
func FromSource(ctx context.Context, src explore.Source, prop rdf.IRI, opts Options) (*Tree, error) {
	pid, ok := src.LookupTermID(prop)
	if !ok {
		return nil, ErrNoValues
	}
	run, ok := src.ScanIDs(0, pid, 0, store.PosAny)
	if !ok {
		return nil, ErrNoValues
	}
	type group struct {
		oid  store.ID
		subs []store.ID
	}
	var groups []group
	visited := 0
	var cerr error
	run.ForEachSorted(func(t store.IDTriple) bool {
		visited++
		if visited%8192 == 0 {
			if cerr = ctx.Err(); cerr != nil {
				return false
			}
		}
		if len(groups) == 0 || groups[len(groups)-1].oid != t.O {
			groups = append(groups, group{oid: t.O})
		}
		g := &groups[len(groups)-1]
		g.subs = append(g.subs, t.S)
		return true
	})
	if cerr != nil {
		return nil, cerr
	}

	oids := make([]store.ID, len(groups))
	for i, g := range groups {
		oids[i] = g.oid
	}
	objTerms := src.Terms(oids)

	// Parse each distinct object once; keep only numeric/temporal groups.
	type parsed struct {
		value float64
		subs  []store.ID
	}
	var kept []parsed
	var subIDs []store.ID
	for i, g := range groups {
		l, ok := objTerms[i].(rdf.Literal)
		if !ok {
			continue
		}
		var v float64
		if f, ok := l.Float(); ok {
			v = f
		} else if tm, ok := l.Time(); ok {
			v = float64(tm.Unix())
		} else {
			continue
		}
		kept = append(kept, parsed{value: v, subs: g.subs})
		subIDs = append(subIDs, g.subs...)
	}
	if len(kept) == 0 {
		return nil, ErrNoValues
	}
	subTerms := src.Terms(subIDs)
	subFor := make(map[store.ID]rdf.Term, len(subIDs))
	for i, id := range subIDs {
		subFor[id] = subTerms[i]
	}
	items := make([]Item, 0, len(subIDs))
	for _, p := range kept {
		for _, sid := range p.subs {
			items = append(items, Item{Value: p.value, Ref: subFor[sid]})
		}
	}
	// Deterministic input order regardless of delta state: by value, then by
	// subject dictionary ID (New sorts by value anyway; this pins tie order).
	idx := make(map[rdf.Term]store.ID, len(subIDs))
	for i, id := range subIDs {
		idx[subTerms[i]] = id
	}
	sort.SliceStable(items, func(i, j int) bool {
		if items[i].Value != items[j].Value {
			return items[i].Value < items[j].Value
		}
		ti, _ := items[i].Ref.(rdf.Term)
		tj, _ := items[j].Ref.(rdf.Term)
		return idx[ti] < idx[tj]
	})
	return New(items, opts)
}
