package hetree

import (
	"context"
	"reflect"
	"sort"
	"testing"

	"github.com/lodviz/lodviz/internal/gen"
	"github.com/lodviz/lodviz/internal/rdf"
	"github.com/lodviz/lodviz/internal/store"
)

func numericStore(t *testing.T) *store.Store {
	t.Helper()
	triples := gen.EntityDataset(gen.EntityOptions{
		Entities: 80, Classes: 2, NumericProps: 1, TemporalProps: 1, CategoryProps: 1, Seed: 17,
	})
	st, err := store.Load(triples)
	if err != nil {
		t.Fatal(err)
	}
	// Delta adds so the POS grouping crosses the base/delta boundary.
	for i := 0; i < 4; i++ {
		if err := st.Add(rdf.Triple{
			S: gen.Res("late", i),
			P: gen.Prop("num0"),
			O: rdf.NewDouble(float64(1000 + i)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	return st
}

// TestFromSourceMatchesTermSpaceValues checks the ID-space collection against
// the term-space oracle: the tree must hold exactly the property's numeric
// values, sorted, with every item's Ref resolving to a subject that carries
// that value in the store.
func TestFromSourceMatchesTermSpaceValues(t *testing.T) {
	st := numericStore(t)
	prop := gen.Prop("num0")
	tree, err := FromSource(context.Background(), st, prop, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if tree.Mode() != ContentBased && tree.Mode() != RangeBased {
		t.Fatalf("unexpected mode %v", tree.Mode())
	}

	// Term-space oracle: every (subject, value) pair of the property.
	var want []float64
	st.ForEach(store.Pattern{P: prop}, func(tr rdf.Triple) bool {
		l, ok := tr.O.(rdf.Literal)
		if !ok {
			t.Fatalf("non-literal object %v", tr.O)
		}
		f, ok := l.Float()
		if !ok {
			t.Fatalf("non-numeric literal %v", tr.O)
		}
		want = append(want, f)
		return true
	})
	sort.Float64s(want)
	items := tree.Items(tree.Root())
	if len(items) != len(want) {
		t.Fatalf("tree holds %d items, property has %d values", len(items), len(want))
	}
	for i, it := range items {
		if it.Value != want[i] {
			t.Fatalf("item %d: value %v, want %v", i, it.Value, want[i])
		}
		ref, ok := it.Ref.(rdf.Term)
		if !ok {
			t.Fatalf("item %d: Ref %T is not a term", i, it.Ref)
		}
		if !st.Contains(rdf.Triple{S: ref, P: prop, O: rdf.NewDouble(it.Value)}) {
			// The literal may have been written with a different lexical
			// form; fall back to scanning the subject.
			found := false
			st.ForEach(store.Pattern{S: ref, P: prop}, func(tr rdf.Triple) bool {
				if l, ok := tr.O.(rdf.Literal); ok {
					if f, ok := l.Float(); ok && f == it.Value {
						found = true
						return false
					}
				}
				return true
			})
			if !found {
				t.Fatalf("item %d: subject %v does not carry value %v", i, ref, it.Value)
			}
		}
	}
}

func TestFromSourceDeterministic(t *testing.T) {
	st := numericStore(t)
	build := func() []Item {
		tree, err := FromSource(context.Background(), st, gen.Prop("num0"), Options{})
		if err != nil {
			t.Fatal(err)
		}
		return tree.Items(tree.Root())
	}
	first := build()
	for i := 0; i < 3; i++ {
		if got := build(); !reflect.DeepEqual(got, first) {
			t.Fatalf("run %d: item sequence changed across identical builds", i)
		}
	}
}

func TestFromSourceTemporalProperty(t *testing.T) {
	st := numericStore(t)
	tree, err := FromSource(context.Background(), st, gen.Prop("date0"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if tree.Len() != 80 {
		t.Fatalf("temporal tree holds %d items, want 80", tree.Len())
	}
}

func TestFromSourceNoValues(t *testing.T) {
	st := numericStore(t)
	cases := []rdf.IRI{
		"http://nowhere/prop", // unknown predicate
		gen.Prop("cat0"),      // string literals only
		rdf.RDFType,           // IRI objects only
	}
	for _, p := range cases {
		if _, err := FromSource(context.Background(), st, p, Options{}); err != ErrNoValues {
			t.Fatalf("prop %s: err = %v, want ErrNoValues", p, err)
		}
	}
}

func TestFromSourceCancelled(t *testing.T) {
	st := numericStore(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// The grouping loop checks ctx every 8192 visits; with only a few
	// hundred statements the scan may complete before noticing, so accept
	// either a clean tree or the context error — but never a different one.
	if _, err := FromSource(ctx, st, gen.Prop("num0"), Options{}); err != nil && err != context.Canceled {
		t.Fatalf("err = %v, want nil or context.Canceled", err)
	}
}
