// Package keyword implements the keyword-search capability of Table 2
// (VisiNav, RDF graph visualizer, Gephi, ...): an inverted index over the
// literals and local names of a dataset, with TF-IDF ranking and prefix
// completion — the "find a starting node" primitive of node-centric WoD
// exploration.
package keyword

import (
	"math"
	"sort"
	"strings"
	"unicode"

	"github.com/lodviz/lodviz/internal/rdf"
	"github.com/lodviz/lodviz/internal/store"
)

// Hit is one search result.
type Hit struct {
	// Entity is the matched resource.
	Entity rdf.Term
	// Score is the TF-IDF relevance.
	Score float64
	// Snippet is the text that matched.
	Snippet string
}

// Index is an inverted index from tokens to entities.
type Index struct {
	// postings maps token → entity ordinal → term frequency.
	postings map[string]map[int]int
	// entities and texts are parallel: ordinal → entity / indexed text.
	entities []rdf.Term
	texts    []string
	ordinals map[rdf.Term]int
	// docLen[i] is the token count of document i.
	docLen []int
}

// NewIndex creates an empty index.
func NewIndex() *Index {
	return &Index{
		postings: map[string]map[int]int{},
		ordinals: map[rdf.Term]int{},
	}
}

// BuildIndex indexes every literal object (as text of its subject) plus
// every IRI subject's local name.
func BuildIndex(st *store.Store) *Index {
	idx := NewIndex()
	seenSubject := map[rdf.Term]bool{}
	st.ForEach(store.Pattern{}, func(t rdf.Triple) bool {
		if l, ok := t.O.(rdf.Literal); ok {
			idx.Add(t.S, l.Lexical)
		}
		if !seenSubject[t.S] {
			seenSubject[t.S] = true
			if iri, ok := t.S.(rdf.IRI); ok {
				idx.Add(t.S, humanize(iri.LocalName()))
			}
		}
		return true
	})
	return idx
}

// humanize splits camelCase and underscores into words.
func humanize(s string) string {
	var b strings.Builder
	for i, r := range s {
		if i > 0 && unicode.IsUpper(r) {
			b.WriteByte(' ')
		}
		if r == '_' || r == '-' {
			b.WriteByte(' ')
			continue
		}
		b.WriteRune(r)
	}
	return b.String()
}

// Add indexes text under an entity.
func (idx *Index) Add(entity rdf.Term, text string) {
	ord, ok := idx.ordinals[entity]
	if !ok {
		ord = len(idx.entities)
		idx.ordinals[entity] = ord
		idx.entities = append(idx.entities, entity)
		idx.texts = append(idx.texts, "")
		idx.docLen = append(idx.docLen, 0)
	}
	if idx.texts[ord] == "" {
		idx.texts[ord] = text
	} else {
		idx.texts[ord] += " " + text
	}
	for _, tok := range Tokenize(text) {
		m := idx.postings[tok]
		if m == nil {
			m = map[int]int{}
			idx.postings[tok] = m
		}
		m[ord]++
		idx.docLen[ord]++
	}
}

// Len returns the number of indexed entities.
func (idx *Index) Len() int { return len(idx.entities) }

// Tokenize lowercases and splits text on non-alphanumeric runes.
func Tokenize(text string) []string {
	var out []string
	var cur strings.Builder
	flush := func() {
		if cur.Len() > 0 {
			out = append(out, strings.ToLower(cur.String()))
			cur.Reset()
		}
	}
	for _, r := range text {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			cur.WriteRune(r)
		} else {
			flush()
		}
	}
	flush()
	return out
}

// Search ranks entities by TF-IDF over the query tokens, returning at most
// limit hits.
func (idx *Index) Search(query string, limit int) []Hit {
	if limit <= 0 {
		limit = 10
	}
	tokens := Tokenize(query)
	if len(tokens) == 0 {
		return nil
	}
	n := float64(len(idx.entities))
	scores := map[int]float64{}
	for _, tok := range tokens {
		posting := idx.postings[tok]
		if len(posting) == 0 {
			continue
		}
		idf := math.Log(1 + n/float64(len(posting)))
		for ord, tf := range posting {
			dl := idx.docLen[ord]
			if dl == 0 {
				dl = 1
			}
			scores[ord] += float64(tf) / float64(dl) * idf
		}
	}
	hits := make([]Hit, 0, len(scores))
	for ord, sc := range scores {
		hits = append(hits, Hit{Entity: idx.entities[ord], Score: sc, Snippet: idx.texts[ord]})
	}
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].Score != hits[j].Score {
			return hits[i].Score > hits[j].Score
		}
		return rdf.Compare(hits[i].Entity, hits[j].Entity) < 0
	})
	if len(hits) > limit {
		hits = hits[:limit]
	}
	return hits
}

// Complete returns up to limit indexed tokens beginning with prefix — the
// type-ahead primitive.
func (idx *Index) Complete(prefix string, limit int) []string {
	if limit <= 0 {
		limit = 10
	}
	prefix = strings.ToLower(prefix)
	var out []string
	for tok := range idx.postings {
		if strings.HasPrefix(tok, prefix) {
			out = append(out, tok)
		}
	}
	sort.Strings(out)
	if len(out) > limit {
		out = out[:limit]
	}
	return out
}
