package keyword

import (
	"testing"

	"github.com/lodviz/lodviz/internal/rdf"
	"github.com/lodviz/lodviz/internal/store"
)

func ex(s string) rdf.IRI { return rdf.IRI("http://example.org/" + s) }

func sampleStore() *store.Store {
	st := store.New()
	st.AddAll([]rdf.Triple{
		rdf.T(ex("athens"), ex("label"), rdf.NewLiteral("Athens, the capital of Greece")),
		rdf.T(ex("athens"), ex("desc"), rdf.NewLiteral("ancient city")),
		rdf.T(ex("berlin"), ex("label"), rdf.NewLiteral("Berlin, the capital of Germany")),
		rdf.T(ex("sparta"), ex("label"), rdf.NewLiteral("Sparta, an ancient Greek city")),
		rdf.T(ex("GreatWallOfChina"), ex("type"), ex("Monument")),
	})
	return st
}

func TestTokenize(t *testing.T) {
	toks := Tokenize("Hello, World! foo_bar 42")
	want := []string{"hello", "world", "foo", "bar", "42"}
	if len(toks) != len(want) {
		t.Fatalf("tokens = %v", toks)
	}
	for i := range want {
		if toks[i] != want[i] {
			t.Errorf("token %d = %q, want %q", i, toks[i], want[i])
		}
	}
	if len(Tokenize("")) != 0 {
		t.Error("empty text should have no tokens")
	}
}

func TestSearchRanksBySpecificity(t *testing.T) {
	idx := BuildIndex(sampleStore())
	hits := idx.Search("ancient city", 10)
	if len(hits) < 2 {
		t.Fatalf("hits = %v", hits)
	}
	// Athens ("ancient city" verbatim, twice 'ancient'... actually once) and
	// Sparta both match; Berlin must not outrank them.
	top2 := map[rdf.Term]bool{hits[0].Entity: true, hits[1].Entity: true}
	if !top2[ex("athens")] || !top2[ex("sparta")] {
		t.Errorf("top hits = %v", hits)
	}
}

func TestSearchCommonWordRanksLower(t *testing.T) {
	idx := BuildIndex(sampleStore())
	hits := idx.Search("capital Greece", 10)
	if len(hits) == 0 {
		t.Fatal("no hits")
	}
	if hits[0].Entity != ex("athens") {
		t.Errorf("top hit = %v, want athens (has the rarer token)", hits[0].Entity)
	}
}

func TestSearchLocalNameHumanized(t *testing.T) {
	idx := BuildIndex(sampleStore())
	hits := idx.Search("great wall", 10)
	if len(hits) != 1 || hits[0].Entity != ex("GreatWallOfChina") {
		t.Errorf("camel-case local name not searchable: %v", hits)
	}
}

func TestSearchNoResults(t *testing.T) {
	idx := BuildIndex(sampleStore())
	if hits := idx.Search("zanzibar", 10); len(hits) != 0 {
		t.Errorf("hits = %v", hits)
	}
	if hits := idx.Search("", 10); len(hits) != 0 {
		t.Errorf("empty query hits = %v", hits)
	}
}

func TestSearchLimit(t *testing.T) {
	idx := BuildIndex(sampleStore())
	hits := idx.Search("city capital ancient", 1)
	if len(hits) != 1 {
		t.Errorf("limit ignored: %d hits", len(hits))
	}
	// Default limit when <= 0.
	hits = idx.Search("city", 0)
	if len(hits) == 0 || len(hits) > 10 {
		t.Errorf("default limit hits = %d", len(hits))
	}
}

func TestComplete(t *testing.T) {
	idx := BuildIndex(sampleStore())
	comps := idx.Complete("an", 10)
	found := false
	for _, c := range comps {
		if c == "ancient" {
			found = true
		}
	}
	if !found {
		t.Errorf("Complete(an) = %v, missing 'ancient'", comps)
	}
	if len(idx.Complete("zzz", 5)) != 0 {
		t.Error("bogus prefix completed")
	}
	if comps := idx.Complete("", 3); len(comps) != 3 {
		t.Errorf("empty prefix should cap at limit: %d", len(comps))
	}
}

func TestAddAccumulatesText(t *testing.T) {
	idx := NewIndex()
	idx.Add(ex("x"), "first")
	idx.Add(ex("x"), "second")
	if idx.Len() != 1 {
		t.Errorf("Len = %d, want 1", idx.Len())
	}
	hits := idx.Search("second", 5)
	if len(hits) != 1 || hits[0].Snippet != "first second" {
		t.Errorf("hits = %+v", hits)
	}
}

func TestDeterministicTieBreak(t *testing.T) {
	idx := NewIndex()
	idx.Add(ex("b"), "same text")
	idx.Add(ex("a"), "same text")
	hits := idx.Search("same", 5)
	if len(hits) != 2 || hits[0].Entity != ex("a") {
		t.Errorf("tie-break not deterministic: %v", hits)
	}
}
