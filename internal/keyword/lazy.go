package keyword

import (
	"sync"

	"github.com/lodviz/lodviz/internal/store"
)

// Lazy is a generation-tracked, lazily built Index over one store: the
// inverted index is a full-store scan, so it is built on first use and
// rebuilt only when the store's content generation has moved. One Lazy can
// back several consumers (the HTTP server and the façade share one), which
// keeps a dataset to a single index copy per generation. Safe for
// concurrent use; concurrent callers during a rebuild serialize so the
// scan runs once.
type Lazy struct {
	st *store.Store

	mu  sync.Mutex
	idx *Index
	gen uint64
}

// NewLazy returns a lazy index over st; nothing is built until Index.
func NewLazy(st *store.Store) *Lazy { return &Lazy{st: st} }

// Index returns the index for the store's current generation, (re)building
// it if the store changed since the last call.
func (l *Lazy) Index() *Index {
	gen := l.st.Generation()
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.idx == nil || l.gen != gen {
		l.idx = BuildIndex(l.st)
		l.gen = gen
	}
	return l.idx
}
