// Package layout computes 2-D positions for graph nodes: grid-accelerated
// Fruchterman–Reingold force-directed layout (the default of Gephi, IsaViz,
// RDF-Gravity and most of the survey's Section 3.4 systems), plus circular,
// grid, and radial-tree layouts for structured views.
//
// Layouts are deterministic for a given seed.
package layout

import (
	"math"
	"math/rand"

	"github.com/lodviz/lodviz/internal/graph"
)

// Point is a node position.
type Point struct{ X, Y float64 }

// Options tune the force-directed layout.
type Options struct {
	// Iterations of simulated annealing (default 50).
	Iterations int
	// Width and Height of the layout area (default 1000×1000).
	Width, Height float64
	// Seed for the initial random placement.
	Seed int64
}

func (o *Options) normalize() {
	if o.Iterations <= 0 {
		o.Iterations = 50
	}
	if o.Width <= 0 {
		o.Width = 1000
	}
	if o.Height <= 0 {
		o.Height = 1000
	}
}

// ForceDirected computes a Fruchterman–Reingold layout. Repulsion is
// approximated with a uniform grid so each node only interacts with nearby
// cells, keeping iterations near-linear — the optimization large-graph tools
// need once node counts pass a few thousand.
func ForceDirected(g *graph.Graph, opts Options) []Point {
	opts.normalize()
	n := g.NumNodes()
	pos := make([]Point, n)
	if n == 0 {
		return pos
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	for i := range pos {
		pos[i] = Point{X: rng.Float64() * opts.Width, Y: rng.Float64() * opts.Height}
	}
	if n == 1 {
		pos[0] = Point{X: opts.Width / 2, Y: opts.Height / 2}
		return pos
	}
	area := opts.Width * opts.Height
	k := math.Sqrt(area / float64(n)) // ideal edge length
	pairs := g.UndirectedEdgePairs()

	disp := make([]Point, n)
	temp := opts.Width / 10
	cool := temp / float64(opts.Iterations+1)

	for iter := 0; iter < opts.Iterations; iter++ {
		for i := range disp {
			disp[i] = Point{}
		}
		// Repulsive forces via grid binning: only cells within one cell
		// radius interact, beyond that repulsion is negligible.
		cell := k * 2
		gridW := int(opts.Width/cell) + 1
		gridH := int(opts.Height/cell) + 1
		grid := make(map[int][]int)
		cellOf := func(p Point) (int, int) {
			cx := int(p.X / cell)
			cy := int(p.Y / cell)
			if cx < 0 {
				cx = 0
			}
			if cy < 0 {
				cy = 0
			}
			if cx >= gridW {
				cx = gridW - 1
			}
			if cy >= gridH {
				cy = gridH - 1
			}
			return cx, cy
		}
		for i := 0; i < n; i++ {
			cx, cy := cellOf(pos[i])
			grid[cy*gridW+cx] = append(grid[cy*gridW+cx], i)
		}
		for i := 0; i < n; i++ {
			cx, cy := cellOf(pos[i])
			for dy := -1; dy <= 1; dy++ {
				for dx := -1; dx <= 1; dx++ {
					nx, ny := cx+dx, cy+dy
					if nx < 0 || ny < 0 || nx >= gridW || ny >= gridH {
						continue
					}
					for _, j := range grid[ny*gridW+nx] {
						if i == j {
							continue
						}
						dxv := pos[i].X - pos[j].X
						dyv := pos[i].Y - pos[j].Y
						d := math.Hypot(dxv, dyv)
						if d < 1e-9 {
							dxv, dyv, d = rng.Float64()-0.5, rng.Float64()-0.5, 1
						}
						f := k * k / d
						disp[i].X += dxv / d * f
						disp[i].Y += dyv / d * f
					}
				}
			}
		}
		// Attractive forces along edges.
		for _, e := range pairs {
			i, j := e[0], e[1]
			dxv := pos[i].X - pos[j].X
			dyv := pos[i].Y - pos[j].Y
			d := math.Hypot(dxv, dyv)
			if d < 1e-9 {
				continue
			}
			f := d * d / k
			fx, fy := dxv/d*f, dyv/d*f
			disp[i].X -= fx
			disp[i].Y -= fy
			disp[j].X += fx
			disp[j].Y += fy
		}
		// Apply displacement limited by temperature; keep inside the frame.
		for i := 0; i < n; i++ {
			d := math.Hypot(disp[i].X, disp[i].Y)
			if d < 1e-9 {
				continue
			}
			lim := math.Min(d, temp)
			pos[i].X += disp[i].X / d * lim
			pos[i].Y += disp[i].Y / d * lim
			pos[i].X = math.Max(0, math.Min(opts.Width, pos[i].X))
			pos[i].Y = math.Max(0, math.Min(opts.Height, pos[i].Y))
		}
		temp -= cool
	}
	return pos
}

// Circular places nodes evenly on a circle (the fallback layout of many WoD
// browsers for medium neighborhoods).
func Circular(n int, width, height float64) []Point {
	pos := make([]Point, n)
	if n == 0 {
		return pos
	}
	cx, cy := width/2, height/2
	r := math.Min(width, height) * 0.4
	for i := range pos {
		a := 2 * math.Pi * float64(i) / float64(n)
		pos[i] = Point{X: cx + r*math.Cos(a), Y: cy + r*math.Sin(a)}
	}
	return pos
}

// Grid places nodes row-major on a regular grid.
func Grid(n int, width, height float64) []Point {
	pos := make([]Point, n)
	if n == 0 {
		return pos
	}
	cols := int(math.Ceil(math.Sqrt(float64(n))))
	rows := (n + cols - 1) / cols
	for i := range pos {
		c, r := i%cols, i/cols
		pos[i] = Point{
			X: (float64(c) + 0.5) * width / float64(cols),
			Y: (float64(r) + 0.5) * height / float64(rows),
		}
	}
	return pos
}

// RadialTree lays out a rooted tree with the root at the center and each
// depth ring at increasing radius — the classic ontology-visualization
// arrangement (KC-Viz, OntoGraf).
//
// children[i] lists the child indexes of node i; the forest is laid out from
// root. Nodes unreachable from root are placed on the outermost ring.
func RadialTree(n int, root int, children [][]int, width, height float64) []Point {
	pos := make([]Point, n)
	if n == 0 || root < 0 || root >= n {
		return pos
	}
	cx, cy := width/2, height/2
	// Compute depth and subtree leaf counts.
	depth := make([]int, n)
	for i := range depth {
		depth[i] = -1
	}
	var maxDepth int
	var count func(v, d int) int
	leaves := make([]int, n)
	count = func(v, d int) int {
		depth[v] = d
		if d > maxDepth {
			maxDepth = d
		}
		if len(children[v]) == 0 {
			leaves[v] = 1
			return 1
		}
		total := 0
		for _, c := range children[v] {
			if depth[c] == -1 {
				total += count(c, d+1)
			}
		}
		if total == 0 {
			total = 1
		}
		leaves[v] = total
		return total
	}
	count(root, 0)
	ringGap := math.Min(width, height) * 0.45 / float64(maxDepth+1)

	// Assign angular wedges proportional to leaf counts.
	var place func(v int, a0, a1 float64)
	place = func(v int, a0, a1 float64) {
		r := float64(depth[v]) * ringGap
		mid := (a0 + a1) / 2
		pos[v] = Point{X: cx + r*math.Cos(mid), Y: cy + r*math.Sin(mid)}
		a := a0
		for _, c := range children[v] {
			if depth[c] != depth[v]+1 {
				continue
			}
			span := (a1 - a0) * float64(leaves[c]) / float64(leaves[v])
			place(c, a, a+span)
			a += span
		}
	}
	place(root, 0, 2*math.Pi)
	// Unreached nodes to the outer ring.
	unplaced := 0
	for v := 0; v < n; v++ {
		if depth[v] == -1 {
			unplaced++
		}
	}
	i := 0
	for v := 0; v < n; v++ {
		if depth[v] == -1 {
			a := 2 * math.Pi * float64(i) / float64(unplaced)
			r := float64(maxDepth+1) * ringGap
			pos[v] = Point{X: cx + r*math.Cos(a), Y: cy + r*math.Sin(a)}
			i++
		}
	}
	return pos
}

// Quality metrics for experiments.

// MeanEdgeLength returns the average Euclidean edge length of the layout.
func MeanEdgeLength(g *graph.Graph, pos []Point) float64 {
	pairs := g.UndirectedEdgePairs()
	if len(pairs) == 0 {
		return 0
	}
	var total float64
	for _, e := range pairs {
		total += math.Hypot(pos[e[0]].X-pos[e[1]].X, pos[e[0]].Y-pos[e[1]].Y)
	}
	return total / float64(len(pairs))
}

// MinNodeDistance returns the smallest pairwise node distance (sampled for
// large n) — a proxy for overlap/clutter.
func MinNodeDistance(pos []Point) float64 {
	n := len(pos)
	if n < 2 {
		return 0
	}
	step := 1
	if n > 2000 {
		step = n / 2000
	}
	best := math.Inf(1)
	for i := 0; i < n; i += step {
		for j := i + step; j < n; j += step {
			d := math.Hypot(pos[i].X-pos[j].X, pos[i].Y-pos[j].Y)
			if d < best {
				best = d
			}
		}
	}
	return best
}
