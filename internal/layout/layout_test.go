package layout

import (
	"fmt"
	"math"
	"testing"

	"github.com/lodviz/lodviz/internal/graph"
	"github.com/lodviz/lodviz/internal/rdf"
)

func iri(s string) rdf.IRI { return rdf.IRI("http://e/" + s) }

func ringGraph(n int) *graph.Graph {
	g := graph.New()
	for i := 0; i < n; i++ {
		g.AddEdge(iri(fmt.Sprintf("n%d", i)), iri(fmt.Sprintf("n%d", (i+1)%n)), "http://e/next")
	}
	return g
}

func TestForceDirectedBounds(t *testing.T) {
	g := ringGraph(50)
	pos := ForceDirected(g, Options{Iterations: 30, Width: 500, Height: 400, Seed: 1})
	if len(pos) != 50 {
		t.Fatalf("positions = %d", len(pos))
	}
	for i, p := range pos {
		if p.X < 0 || p.X > 500 || p.Y < 0 || p.Y > 400 {
			t.Errorf("node %d out of bounds: %+v", i, p)
		}
		if math.IsNaN(p.X) || math.IsNaN(p.Y) {
			t.Fatalf("node %d NaN position", i)
		}
	}
}

func TestForceDirectedDeterministic(t *testing.T) {
	g := ringGraph(20)
	a := ForceDirected(g, Options{Seed: 7})
	b := ForceDirected(g, Options{Seed: 7})
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("layout not deterministic for same seed")
		}
	}
}

func TestForceDirectedSeparatesNodes(t *testing.T) {
	g := ringGraph(30)
	pos := ForceDirected(g, Options{Iterations: 80, Seed: 3})
	if d := MinNodeDistance(pos); d < 1 {
		t.Errorf("min node distance = %g — nodes collapsed", d)
	}
}

func TestForceDirectedImprovesOverRandom(t *testing.T) {
	// On a ring, FR should make edge lengths much more uniform than the
	// random initial placement: compare stddev of edge lengths.
	g := ringGraph(40)
	random := ForceDirected(g, Options{Iterations: 1, Seed: 5})
	settled := ForceDirected(g, Options{Iterations: 150, Seed: 5})
	if sd(edgeLengths(g, settled)) >= sd(edgeLengths(g, random)) {
		t.Error("layout did not regularize edge lengths on a ring")
	}
}

func edgeLengths(g *graph.Graph, pos []Point) []float64 {
	var out []float64
	for _, e := range g.UndirectedEdgePairs() {
		out = append(out, math.Hypot(pos[e[0]].X-pos[e[1]].X, pos[e[0]].Y-pos[e[1]].Y))
	}
	return out
}

func sd(xs []float64) float64 {
	var m float64
	for _, x := range xs {
		m += x
	}
	m /= float64(len(xs))
	var v float64
	for _, x := range xs {
		v += (x - m) * (x - m)
	}
	return math.Sqrt(v / float64(len(xs)))
}

func TestForceDirectedEmptyAndSingle(t *testing.T) {
	g := graph.New()
	if pos := ForceDirected(g, Options{}); len(pos) != 0 {
		t.Error("empty graph should produce no positions")
	}
	g.Node(iri("only"))
	pos := ForceDirected(g, Options{Width: 100, Height: 100})
	if pos[0].X != 50 || pos[0].Y != 50 {
		t.Errorf("single node not centered: %+v", pos[0])
	}
}

func TestCircular(t *testing.T) {
	pos := Circular(4, 100, 100)
	if len(pos) != 4 {
		t.Fatalf("positions = %d", len(pos))
	}
	// All on a circle of radius 40 around (50,50).
	for i, p := range pos {
		r := math.Hypot(p.X-50, p.Y-50)
		if math.Abs(r-40) > 1e-9 {
			t.Errorf("node %d radius = %g", i, r)
		}
	}
	if len(Circular(0, 10, 10)) != 0 {
		t.Error("n=0 should be empty")
	}
}

func TestGrid(t *testing.T) {
	pos := Grid(9, 90, 90)
	if len(pos) != 9 {
		t.Fatalf("positions = %d", len(pos))
	}
	// 3x3 grid: first cell center at (15,15).
	if pos[0].X != 15 || pos[0].Y != 15 {
		t.Errorf("first cell = %+v", pos[0])
	}
	if pos[8].X != 75 || pos[8].Y != 75 {
		t.Errorf("last cell = %+v", pos[8])
	}
}

func TestRadialTree(t *testing.T) {
	// Root with two children, one grandchild.
	children := [][]int{{1, 2}, {3}, {}, {}}
	pos := RadialTree(4, 0, children, 200, 200)
	// Root at center.
	if pos[0].X != 100 || pos[0].Y != 100 {
		t.Errorf("root = %+v", pos[0])
	}
	// Children at ring 1 — equal radius.
	r1 := math.Hypot(pos[1].X-100, pos[1].Y-100)
	r2 := math.Hypot(pos[2].X-100, pos[2].Y-100)
	if math.Abs(r1-r2) > 1e-9 || r1 == 0 {
		t.Errorf("ring radii: %g vs %g", r1, r2)
	}
	// Grandchild farther out.
	r3 := math.Hypot(pos[3].X-100, pos[3].Y-100)
	if r3 <= r1 {
		t.Errorf("grandchild radius %g <= child %g", r3, r1)
	}
}

func TestRadialTreeUnreachableNodes(t *testing.T) {
	children := [][]int{{1}, {}, {}} // node 2 unreachable
	pos := RadialTree(3, 0, children, 100, 100)
	r2 := math.Hypot(pos[2].X-50, pos[2].Y-50)
	r1 := math.Hypot(pos[1].X-50, pos[1].Y-50)
	if r2 <= r1 {
		t.Errorf("unreachable node should sit on the outer ring: %g <= %g", r2, r1)
	}
}

func TestMeanEdgeLength(t *testing.T) {
	g := ringGraph(4)
	pos := []Point{{0, 0}, {10, 0}, {10, 10}, {0, 10}}
	if m := MeanEdgeLength(g, pos); m != 10 {
		t.Errorf("MeanEdgeLength = %g, want 10", m)
	}
	if MeanEdgeLength(graph.New(), nil) != 0 {
		t.Error("empty graph mean != 0")
	}
}
