package ldvm

import (
	"fmt"

	"github.com/lodviz/lodviz/internal/aggregate"
	"github.com/lodviz/lodviz/internal/rdf"
	"github.com/lodviz/lodviz/internal/recommend"
	"github.com/lodviz/lodviz/internal/vis"
)

// BindSpec materializes a recommendation into a renderable spec by binding
// the abstraction's columns onto the visualization's channels.
func BindSpec(a *Analytical, rec recommend.Recommendation) (*vis.Spec, error) {
	spec := &vis.Spec{Type: rec.Type, Title: fmt.Sprintf("%v", rec.Type)}
	col := func(channel string) string { return rec.Bindings[channel] }
	num := func(row map[string]rdf.Term, c string) (float64, bool) {
		t, ok := row[c]
		if !ok {
			return 0, false
		}
		l, ok := t.(rdf.Literal)
		if !ok {
			return 0, false
		}
		if v, ok := l.Float(); ok {
			return v, true
		}
		if tm, ok := l.Time(); ok {
			return float64(tm.Unix()), true
		}
		return 0, false
	}
	label := func(row map[string]rdf.Term, c string) string {
		t, ok := row[c]
		if !ok {
			return ""
		}
		switch tt := t.(type) {
		case rdf.Literal:
			return tt.Lexical
		case rdf.IRI:
			return tt.LocalName()
		default:
			return t.String()
		}
	}

	switch rec.Type {
	case vis.Scatter, vis.Bubble, vis.LineChart:
		var pts []vis.DataPoint
		for _, row := range a.Rows {
			x, okX := num(row, col("x"))
			y, okY := num(row, col("y"))
			if !okX || !okY {
				continue
			}
			p := vis.DataPoint{X: x, Y: y}
			if sc := col("size"); sc != "" {
				p.Size, _ = num(row, sc)
			}
			pts = append(pts, p)
		}
		spec.Series = []vis.Series{{Name: col("y"), Points: pts}}
		spec.XLabel, spec.YLabel = col("x"), col("y")
	case vis.BarChart, vis.PieChart:
		xCol := col("x")
		if xCol == "" {
			xCol = col("color")
		}
		yCol := col("y")
		type rowT = map[string]rdf.Term
		rows := make([]rowT, len(a.Rows))
		for i, r := range a.Rows {
			rows[i] = r
		}
		groups := aggregate.GroupBy(rows,
			func(r rowT) string { return label(r, xCol) },
			func(r rowT) float64 { v, _ := num(r, yCol); return v })
		var pts []vis.DataPoint
		for _, g := range groups {
			v := g.Sum
			if yCol == "" {
				v = float64(g.Count)
			}
			pts = append(pts, vis.DataPoint{Label: g.Key, Y: v})
		}
		spec.Series = []vis.Series{{Name: xCol, Points: pts}}
		spec.XLabel, spec.YLabel = xCol, yCol
	case vis.Histogram:
		xCol := col("x")
		var vals []float64
		for _, row := range a.Rows {
			if v, ok := num(row, xCol); ok {
				vals = append(vals, v)
			}
		}
		bins, err := aggregate.EqualWidth(vals, 20)
		if err != nil && len(vals) > 0 {
			return nil, fmt.Errorf("ldvm: histogram: %w", err)
		}
		var pts []vis.DataPoint
		for _, b := range bins {
			pts = append(pts, vis.DataPoint{
				Label: fmt.Sprintf("[%.3g,%.3g)", b.Lo, b.Hi),
				X:     (b.Lo + b.Hi) / 2,
				Y:     float64(b.Count),
			})
		}
		spec.Series = []vis.Series{{Name: xCol, Points: pts}}
		spec.XLabel, spec.YLabel = xCol, "count"
	case vis.Timeline:
		xCol := col("x")
		var pts []vis.DataPoint
		for _, row := range a.Rows {
			if v, ok := num(row, xCol); ok {
				pts = append(pts, vis.DataPoint{X: v, Y: 1, Label: label(row, xCol)})
			}
		}
		spec.Series = []vis.Series{{Name: xCol, Points: pts}}
	default:
		// Table / graph / map and other types: carry the rows as labeled
		// points so the view stage has the data.
		var pts []vis.DataPoint
		for i, row := range a.Rows {
			p := vis.DataPoint{X: float64(i), Y: float64(i)}
			if len(a.Columns) > 0 {
				p.Label = label(row, a.Columns[0])
			}
			pts = append(pts, p)
		}
		spec.Series = []vis.Series{{Name: "rows", Points: pts}}
	}
	return spec, nil
}
