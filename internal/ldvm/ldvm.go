// Package ldvm implements the Linked Data Visualization Model (Brunetti et
// al. — ref [29] in the survey; use cases in [85]): a four-stage pipeline
//
//	Source data → Analytical abstraction → Visualization abstraction → View
//
// with pluggable transformers between stages and compatibility checking, so
// datasets and visualizations can be connected dynamically — the survey's
// §3.2 "abstract visualization process".
package ldvm

import (
	"errors"
	"fmt"

	"github.com/lodviz/lodviz/internal/rdf"
	"github.com/lodviz/lodviz/internal/recommend"
	"github.com/lodviz/lodviz/internal/sparql"
	"github.com/lodviz/lodviz/internal/store"
	"github.com/lodviz/lodviz/internal/vis"
)

// Analytical is the analytical-abstraction stage: a tabular extract of the
// source dataset (named columns of RDF terms) plus per-column profiles.
type Analytical struct {
	Columns  []string
	Rows     []sparql.Binding
	Profiles []recommend.Profile
}

// Analyzer produces an analytical abstraction from a source dataset.
// Implementations correspond to LDVM's "analyzers" (Payola's term).
type Analyzer interface {
	// Name identifies the analyzer.
	Name() string
	// Analyze extracts the abstraction.
	Analyze(st *store.Store) (*Analytical, error)
}

// SPARQLAnalyzer extracts the abstraction with a SELECT query.
type SPARQLAnalyzer struct {
	// Label names the analyzer.
	Label string
	// Query is a SPARQL SELECT whose projection becomes the columns.
	Query string
}

// Name implements Analyzer.
func (a SPARQLAnalyzer) Name() string { return a.Label }

// Analyze implements Analyzer.
func (a SPARQLAnalyzer) Analyze(st *store.Store) (*Analytical, error) {
	res, err := sparql.Exec(st, a.Query)
	if err != nil {
		return nil, fmt.Errorf("ldvm: analyzer %q: %w", a.Label, err)
	}
	if res.Form != sparql.FormSelect {
		return nil, fmt.Errorf("ldvm: analyzer %q: query must be a SELECT", a.Label)
	}
	out := &Analytical{Columns: res.Vars, Rows: res.Rows}
	out.Profiles = Profile(out)
	return out, nil
}

// Profile computes per-column profiles for an abstraction.
func Profile(a *Analytical) []recommend.Profile {
	profiles := make([]recommend.Profile, len(a.Columns))
	for i, col := range a.Columns {
		vals := make([]rdf.Term, len(a.Rows))
		for j, row := range a.Rows {
			vals[j] = row[col]
		}
		profiles[i] = recommend.ProfileTerms(col, vals)
	}
	return profiles
}

// Pipeline is a configured LDVM pipeline.
type Pipeline struct {
	// Source is the dataset.
	Source *store.Store
	// Analyzer produces the analytical abstraction.
	Analyzer Analyzer
	// Visualizer turns the abstraction into a vis spec; when nil, the
	// top-ranked recommendation is used.
	Visualizer func(*Analytical) (*vis.Spec, error)
}

// ErrNoVisualization is returned when no visualization is applicable.
var ErrNoVisualization = errors.New("ldvm: no applicable visualization")

// Run executes the four stages and returns the final view (an SVG string)
// along with the spec that produced it.
func (p *Pipeline) Run() (*vis.Spec, string, error) {
	if p.Source == nil || p.Analyzer == nil {
		return nil, "", errors.New("ldvm: pipeline needs a source and an analyzer")
	}
	abs, err := p.Analyzer.Analyze(p.Source)
	if err != nil {
		return nil, "", err
	}
	visualize := p.Visualizer
	if visualize == nil {
		visualize = AutoVisualizer
	}
	spec, err := visualize(abs)
	if err != nil {
		return nil, "", err
	}
	return spec, vis.RenderSVG(spec), nil
}

// AutoVisualizer picks the top recommendation for the abstraction and binds
// the data into a renderable spec — LDVM's "visualization abstraction"
// computed rather than hand-configured.
func AutoVisualizer(a *Analytical) (*vis.Spec, error) {
	recs := recommend.Recommend(a.Profiles)
	if len(recs) == 0 {
		return nil, ErrNoVisualization
	}
	best := recs[0]
	return BindSpec(a, best)
}

// Compatible reports whether a recommendation's bindings can be satisfied by
// the abstraction's columns — LDVM's compatibility check between stages.
func Compatible(a *Analytical, rec recommend.Recommendation) bool {
	cols := map[string]bool{}
	for _, c := range a.Columns {
		cols[c] = true
	}
	for _, col := range rec.Bindings {
		if !cols[col] {
			return false
		}
	}
	return true
}
