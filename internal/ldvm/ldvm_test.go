package ldvm

import (
	"strings"
	"testing"

	"github.com/lodviz/lodviz/internal/recommend"
	"github.com/lodviz/lodviz/internal/store"
	"github.com/lodviz/lodviz/internal/turtle"
	"github.com/lodviz/lodviz/internal/vis"
)

const cities = `
@prefix ex: <http://example.org/> .
ex:athens ex:name "Athens" ; ex:population 664046 ; ex:founded 1834 .
ex:bordeaux ex:name "Bordeaux" ; ex:population 252040 ; ex:founded 1790 .
ex:berlin ex:name "Berlin" ; ex:population 3520031 ; ex:founded 1237 .
`

func cityStore(t *testing.T) *store.Store {
	t.Helper()
	ts, err := turtle.ParseString(cities)
	if err != nil {
		t.Fatal(err)
	}
	st, err := store.Load(ts)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestSPARQLAnalyzer(t *testing.T) {
	st := cityStore(t)
	a := SPARQLAnalyzer{Label: "city-stats", Query: `
PREFIX ex: <http://example.org/>
SELECT ?name ?population ?founded WHERE {
  ?c ex:name ?name ; ex:population ?population ; ex:founded ?founded .
}`}
	abs, err := a.Analyze(st)
	if err != nil {
		t.Fatal(err)
	}
	if len(abs.Rows) != 3 || len(abs.Columns) != 3 {
		t.Fatalf("abstraction = %d rows × %d cols", len(abs.Rows), len(abs.Columns))
	}
	// Profiles: population and founded numeric, name textual/categorical.
	kinds := map[string]recommend.ColumnKind{}
	for _, p := range abs.Profiles {
		kinds[p.Name] = p.Kind
	}
	if kinds["population"] != recommend.Numeric || kinds["founded"] != recommend.Numeric {
		t.Errorf("kinds = %v", kinds)
	}
}

func TestSPARQLAnalyzerErrors(t *testing.T) {
	st := cityStore(t)
	if _, err := (SPARQLAnalyzer{Label: "bad", Query: "NOT SPARQL"}).Analyze(st); err == nil {
		t.Error("bad query accepted")
	}
	if _, err := (SPARQLAnalyzer{Label: "ask", Query: "ASK { ?s ?p ?o }"}).Analyze(st); err == nil {
		t.Error("ASK accepted as analyzer")
	}
}

func TestPipelineEndToEnd(t *testing.T) {
	st := cityStore(t)
	p := &Pipeline{
		Source: st,
		Analyzer: SPARQLAnalyzer{Label: "pop-by-founding", Query: `
PREFIX ex: <http://example.org/>
SELECT ?founded ?population WHERE { ?c ex:population ?population ; ex:founded ?founded . }`},
	}
	spec, svg, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	if spec == nil || spec.PointCount() == 0 {
		t.Fatalf("spec = %+v", spec)
	}
	if !strings.HasPrefix(svg, "<svg") {
		t.Error("view stage did not render SVG")
	}
}

func TestPipelineMissingParts(t *testing.T) {
	if _, _, err := (&Pipeline{}).Run(); err == nil {
		t.Error("empty pipeline accepted")
	}
}

func TestPipelineCustomVisualizer(t *testing.T) {
	st := cityStore(t)
	p := &Pipeline{
		Source: st,
		Analyzer: SPARQLAnalyzer{Label: "names", Query: `
PREFIX ex: <http://example.org/>
SELECT ?name WHERE { ?c ex:name ?name }`},
		Visualizer: func(a *Analytical) (*vis.Spec, error) {
			return &vis.Spec{Type: vis.Table, Title: "custom"}, nil
		},
	}
	spec, _, err := p.Run()
	if err != nil || spec.Title != "custom" {
		t.Errorf("custom visualizer not used: %v %v", spec, err)
	}
}

func TestCompatible(t *testing.T) {
	abs := &Analytical{Columns: []string{"a", "b"}}
	if !Compatible(abs, recommend.Recommendation{Bindings: map[string]string{"x": "a", "y": "b"}}) {
		t.Error("compatible bindings rejected")
	}
	if Compatible(abs, recommend.Recommendation{Bindings: map[string]string{"x": "zzz"}}) {
		t.Error("incompatible bindings accepted")
	}
	if !Compatible(abs, recommend.Recommendation{}) {
		t.Error("empty bindings should always be compatible")
	}
}

func TestBindSpecBarAggregates(t *testing.T) {
	st := cityStore(t)
	a := SPARQLAnalyzer{Label: "x", Query: `
PREFIX ex: <http://example.org/>
SELECT ?name ?population WHERE { ?c ex:name ?name ; ex:population ?population . }`}
	abs, err := a.Analyze(st)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := BindSpec(abs, recommend.Recommendation{
		Type:     vis.BarChart,
		Bindings: map[string]string{"x": "name", "y": "population"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Series) != 1 || len(spec.Series[0].Points) != 3 {
		t.Fatalf("spec series = %+v", spec.Series)
	}
	for _, p := range spec.Series[0].Points {
		if p.Label == "" || p.Y == 0 {
			t.Errorf("bar point = %+v", p)
		}
	}
}

func TestBindSpecHistogram(t *testing.T) {
	st := cityStore(t)
	abs, err := SPARQLAnalyzer{Label: "x", Query: `
PREFIX ex: <http://example.org/>
SELECT ?population WHERE { ?c ex:population ?population }`}.Analyze(st)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := BindSpec(abs, recommend.Recommendation{
		Type:     vis.Histogram,
		Bindings: map[string]string{"x": "population"},
	})
	if err != nil {
		t.Fatal(err)
	}
	total := 0.0
	for _, p := range spec.Series[0].Points {
		total += p.Y
	}
	if total != 3 {
		t.Errorf("histogram covers %g values, want 3", total)
	}
}
