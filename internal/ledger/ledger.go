// Package ledger maintains a Merkle-hashed mutation ledger over the
// write-ahead log: every WAL record's payload becomes a leaf, leaves are
// grouped into fixed-size batches with a Merkle root each, and the batch
// roots are folded into a hash chain whose head — the ledger root — commits
// to the entire mutation history. Any reader holding the root can verify
// that a particular mutation is part of that history from a compact proof,
// without trusting the server to replay the log honestly (the audit-log
// construction the survey's dynamic-data challenge calls for: exploration
// over data that changes must be able to show *how* it changed).
//
// Domain separation follows the usual certificate-transparency discipline:
// leaf hashes are SHA-256(0x00 ‖ payload), interior nodes
// SHA-256(0x01 ‖ left ‖ right), and chain links
// SHA-256(0x02 ‖ previous ‖ batch root), so no cross-level collision can be
// staged. An odd node at any Merkle level is promoted unchanged.
//
// The ledger is in-memory and rebuilt from the surviving WAL on restart:
// after a snapshot truncates the log's prefix, the rebuilt chain starts at
// the first surviving record, so root continuity across a truncation
// restart is attested by the snapshot, not the ledger. Proofs are served
// for any leaf the current chain covers.
package ledger

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"sync"
)

// DefaultBatchSize is how many leaves seal one Merkle batch.
const DefaultBatchSize = 64

const (
	prefixLeaf  = 0x00
	prefixNode  = 0x01
	prefixChain = 0x02
)

// genesis anchors the hash chain for an empty ledger.
var genesis = sha256.Sum256([]byte("lodviz-ledger-genesis"))

// ErrUnknownSeq marks a proof request for a sequence the current chain does
// not cover (never appended, or truncated away before this ledger was
// rebuilt).
var ErrUnknownSeq = errors.New("ledger: sequence not covered")

// Ledger accumulates mutation leaves. Safe for concurrent use; Append is
// designed to run as a wal.Log observer (in log order, one caller at a
// time), while Root and Proof may race against it freely.
type Ledger struct {
	mu        sync.RWMutex
	batchSize int
	firstSeq  uint64     // sequence of leaf 0; 0 while empty
	leaves    [][32]byte // every leaf hash, in sequence order
	// chain[i] is the hash-chain value after folding sealed batch i;
	// chain[len-1] is the head over all sealed batches.
	chain [][32]byte
	// roots[i] is sealed batch i's Merkle root (kept for proofs).
	roots [][32]byte
}

// New returns an empty ledger with the default batch size.
func New() *Ledger { return NewWithBatchSize(DefaultBatchSize) }

// NewWithBatchSize returns an empty ledger sealing batches of n leaves
// (n ≥ 1; tests use small batches to exercise sealing).
func NewWithBatchSize(n int) *Ledger {
	if n < 1 {
		n = DefaultBatchSize
	}
	return &Ledger{batchSize: n}
}

// Append adds one mutation record. Records must arrive in sequence order
// with no gaps — exactly what a wal.Log observer or replay delivers;
// anything else panics, since a gap would silently attest to a different
// history.
func (l *Ledger) Append(seq uint64, payload []byte) {
	leaf := leafHash(payload)
	l.mu.Lock()
	defer l.mu.Unlock()
	switch {
	case len(l.leaves) == 0:
		l.firstSeq = seq
	case seq != l.firstSeq+uint64(len(l.leaves)):
		panic(fmt.Sprintf("ledger: sequence %d out of order (want %d)", seq, l.firstSeq+uint64(len(l.leaves))))
	}
	l.leaves = append(l.leaves, leaf)
	if len(l.leaves)%l.batchSize == 0 {
		start := len(l.leaves) - l.batchSize
		root := merkleRoot(l.leaves[start:])
		l.roots = append(l.roots, root)
		l.chain = append(l.chain, chainLink(l.chainHeadLocked(), root))
	}
}

// chainHeadLocked is the chain value over the sealed batches.
func (l *Ledger) chainHeadLocked() [32]byte {
	if len(l.chain) == 0 {
		return genesis
	}
	return l.chain[len(l.chain)-1]
}

// rootLocked folds the partial batch (if any) onto the sealed-chain head.
func (l *Ledger) rootLocked() [32]byte {
	head := l.chainHeadLocked()
	if part := len(l.leaves) % l.batchSize; part != 0 {
		head = chainLink(head, merkleRoot(l.leaves[len(l.leaves)-part:]))
	}
	return head
}

// Info is the public summary of the ledger's state.
type Info struct {
	// Root is the current ledger root, hex-encoded.
	Root string `json:"root"`
	// Count is the number of mutation leaves the root commits to.
	Count uint64 `json:"count"`
	// FirstSeq/LastSeq are the covered WAL sequence range (0/0 when empty).
	FirstSeq uint64 `json:"first_seq"`
	LastSeq  uint64 `json:"last_seq"`
	// SealedBatches counts full Merkle batches; BatchSize is their size.
	SealedBatches int `json:"sealed_batches"`
	BatchSize     int `json:"batch_size"`
}

// Root returns the current root and coverage summary.
func (l *Ledger) Root() Info {
	l.mu.RLock()
	defer l.mu.RUnlock()
	info := Info{
		Root:          hex.EncodeToString(root64(l.rootLocked())),
		Count:         uint64(len(l.leaves)),
		SealedBatches: len(l.roots),
		BatchSize:     l.batchSize,
	}
	if len(l.leaves) > 0 {
		info.FirstSeq = l.firstSeq
		info.LastSeq = l.firstSeq + uint64(len(l.leaves)) - 1
	}
	return info
}

// ProofStep is one Merkle-path sibling; Left says the sibling hashes on the
// left of the running value.
type ProofStep struct {
	Hash string `json:"hash"`
	Left bool   `json:"left"`
}

// Proof shows that one mutation record is committed to by Root: hash the
// record payload into Leaf, fold Path up to its batch root, chain it onto
// PrevChain, then fold the Follow batch roots — landing exactly on Root.
// VerifyProof implements that walk.
type Proof struct {
	// Seq is the WAL sequence the proof is about.
	Seq uint64 `json:"seq"`
	// Leaf is the leaf hash: SHA-256(0x00 ‖ record payload).
	Leaf string `json:"leaf"`
	// Index is the leaf's position within its batch.
	Index int `json:"index"`
	// Path climbs from the leaf to its batch root.
	Path []ProofStep `json:"path"`
	// PrevChain is the chain value before the leaf's batch.
	PrevChain string `json:"prev_chain"`
	// Follow are the batch roots sealed (or partial) after the leaf's
	// batch, folded in order to reach Root.
	Follow []string `json:"follow"`
	// Root is the ledger root this proof commits to.
	Root string `json:"root"`
}

// Proof builds an inclusion proof for the record at seq against the current
// root.
func (l *Ledger) Proof(seq uint64) (Proof, error) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	if len(l.leaves) == 0 || seq < l.firstSeq || seq >= l.firstSeq+uint64(len(l.leaves)) {
		return Proof{}, fmt.Errorf("%w: %d", ErrUnknownSeq, seq)
	}
	idx := int(seq - l.firstSeq)
	batch := idx / l.batchSize
	start := batch * l.batchSize
	end := start + l.batchSize
	if end > len(l.leaves) {
		end = len(l.leaves) // the partial batch
	}
	path, _ := merklePath(l.leaves[start:end], idx-start)

	prev := genesis
	if batch > 0 {
		prev = l.chain[batch-1]
	}
	var follow [][32]byte
	for b := batch + 1; b < len(l.roots); b++ {
		follow = append(follow, l.roots[b])
	}
	if part := len(l.leaves) % l.batchSize; part != 0 && batch < len(l.roots) {
		// The leaf is in a sealed batch and a partial batch follows.
		follow = append(follow, merkleRoot(l.leaves[len(l.leaves)-part:]))
	}

	p := Proof{
		Seq:       seq,
		Leaf:      hex.EncodeToString(root64(l.leaves[idx])),
		Index:     idx - start,
		PrevChain: hex.EncodeToString(root64(prev)),
		Root:      hex.EncodeToString(root64(l.rootLocked())),
	}
	for _, s := range path {
		p.Path = append(p.Path, ProofStep{Hash: hex.EncodeToString(root64(s.hash)), Left: s.left})
	}
	for _, f := range follow {
		p.Follow = append(p.Follow, hex.EncodeToString(root64(f)))
	}
	return p, nil
}

// VerifyProof checks a proof's internal hash walk: leaf → batch root →
// chained onto PrevChain → folded with Follow == Root. The caller supplies
// trust in Root (e.g. it matches a root fetched earlier or out of band) and,
// optionally, recomputes Leaf from the record payload via LeafHash.
func VerifyProof(p Proof) bool {
	cur, err := parseHash(p.Leaf)
	if err != nil {
		return false
	}
	for _, s := range p.Path {
		sib, err := parseHash(s.Hash)
		if err != nil {
			return false
		}
		if s.Left {
			cur = nodeHash(sib, cur)
		} else {
			cur = nodeHash(cur, sib)
		}
	}
	chain, err := parseHash(p.PrevChain)
	if err != nil {
		return false
	}
	chain = chainLink(chain, cur)
	for _, f := range p.Follow {
		fh, err := parseHash(f)
		if err != nil {
			return false
		}
		chain = chainLink(chain, fh)
	}
	want, err := parseHash(p.Root)
	if err != nil {
		return false
	}
	return chain == want
}

// LeafHash maps a WAL record payload to its ledger leaf hash, hex-encoded —
// what a verifier recomputes from the raw record to tie a Proof to actual
// bytes.
func LeafHash(payload []byte) string {
	h := leafHash(payload)
	return hex.EncodeToString(root64(h))
}

func leafHash(payload []byte) [32]byte {
	h := sha256.New()
	h.Write([]byte{prefixLeaf})
	h.Write(payload)
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}

func nodeHash(left, right [32]byte) [32]byte {
	h := sha256.New()
	h.Write([]byte{prefixNode})
	h.Write(left[:])
	h.Write(right[:])
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}

func chainLink(prev, batchRoot [32]byte) [32]byte {
	h := sha256.New()
	h.Write([]byte{prefixChain})
	h.Write(prev[:])
	h.Write(batchRoot[:])
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}

// merkleRoot folds a non-empty leaf slice to its root; an odd node at any
// level is promoted unchanged.
func merkleRoot(leaves [][32]byte) [32]byte {
	level := append([][32]byte{}, leaves...)
	for len(level) > 1 {
		next := level[:0]
		for i := 0; i < len(level); i += 2 {
			if i+1 < len(level) {
				next = append(next, nodeHash(level[i], level[i+1]))
			} else {
				next = append(next, level[i])
			}
		}
		level = next
	}
	return level[0]
}

type pathStep struct {
	hash [32]byte
	left bool
}

// merklePath returns the sibling path for leaves[idx] up to the root.
func merklePath(leaves [][32]byte, idx int) ([]pathStep, [32]byte) {
	level := append([][32]byte{}, leaves...)
	var path []pathStep
	for len(level) > 1 {
		if idx%2 == 0 {
			if idx+1 < len(level) {
				path = append(path, pathStep{hash: level[idx+1], left: false})
			}
			// Odd promoted node: no sibling, value carries up unchanged.
		} else {
			path = append(path, pathStep{hash: level[idx-1], left: true})
		}
		next := level[:0]
		for i := 0; i < len(level); i += 2 {
			if i+1 < len(level) {
				next = append(next, nodeHash(level[i], level[i+1]))
			} else {
				next = append(next, level[i])
			}
		}
		level = next
		idx /= 2
	}
	return path, level[0]
}

func root64(h [32]byte) []byte { return h[:] }

func parseHash(s string) ([32]byte, error) {
	var out [32]byte
	b, err := hex.DecodeString(s)
	if err != nil {
		return out, err
	}
	if len(b) != 32 {
		return out, fmt.Errorf("ledger: hash is %d bytes, want 32", len(b))
	}
	copy(out[:], b)
	return out, nil
}
