package ledger

import (
	"encoding/hex"
	"fmt"
	"strings"
	"testing"
)

func payload(i int) []byte { return []byte(fmt.Sprintf("mutation-%04d", i)) }

func fill(l *Ledger, firstSeq uint64, n int) {
	for i := 0; i < n; i++ {
		l.Append(firstSeq+uint64(i), payload(i))
	}
}

func TestEmptyLedgerRoot(t *testing.T) {
	l := New()
	info := l.Root()
	if info.Count != 0 || info.FirstSeq != 0 || info.LastSeq != 0 || info.SealedBatches != 0 {
		t.Fatalf("empty ledger info = %+v", info)
	}
	want := hex.EncodeToString(genesis[:])
	if info.Root != want {
		t.Fatalf("empty root = %s, want genesis %s", info.Root, want)
	}
	if _, err := l.Proof(1); err == nil {
		t.Fatal("Proof on empty ledger succeeded")
	}
}

func TestRootEvolvesAndIsDeterministic(t *testing.T) {
	a := NewWithBatchSize(4)
	b := NewWithBatchSize(4)
	seen := map[string]bool{}
	for i := 0; i < 11; i++ {
		a.Append(uint64(i+1), payload(i))
		b.Append(uint64(i+1), payload(i))
		ra, rb := a.Root(), b.Root()
		if ra.Root != rb.Root {
			t.Fatalf("after %d appends roots diverge: %s vs %s", i+1, ra.Root, rb.Root)
		}
		if seen[ra.Root] {
			t.Fatalf("root repeated after append %d", i+1)
		}
		seen[ra.Root] = true
		if ra.Count != uint64(i+1) || ra.LastSeq != uint64(i+1) || ra.FirstSeq != 1 {
			t.Fatalf("after %d appends info = %+v", i+1, ra)
		}
	}
	if got := a.Root().SealedBatches; got != 2 {
		t.Fatalf("sealed batches = %d, want 2", got)
	}
}

func TestProofVerifiesEveryLeaf(t *testing.T) {
	// Cover sealed batches, the partial tail, and batch-size-1 edge cases.
	for _, bs := range []int{1, 2, 4, 64} {
		for _, n := range []int{1, 3, 4, 7, 9} {
			l := NewWithBatchSize(bs)
			fill(l, 10, n) // nonzero first seq, as after a truncation rebuild
			root := l.Root().Root
			for seq := uint64(10); seq < 10+uint64(n); seq++ {
				p, err := l.Proof(seq)
				if err != nil {
					t.Fatalf("bs=%d n=%d Proof(%d): %v", bs, n, seq, err)
				}
				if p.Root != root {
					t.Fatalf("bs=%d n=%d proof root %s != ledger root %s", bs, n, p.Root, root)
				}
				if p.Leaf != LeafHash(payload(int(seq-10))) {
					t.Fatalf("bs=%d n=%d leaf mismatch for seq %d", bs, n, seq)
				}
				if !VerifyProof(p) {
					t.Fatalf("bs=%d n=%d proof for seq %d does not verify: %+v", bs, n, seq, p)
				}
			}
		}
	}
}

func TestProofTamperDetected(t *testing.T) {
	l := NewWithBatchSize(4)
	fill(l, 1, 10)
	p, err := l.Proof(6)
	if err != nil {
		t.Fatal(err)
	}
	flip := func(s string) string {
		c := byte('0')
		if s[0] == '0' {
			c = '1'
		}
		return string(c) + s[1:]
	}
	cases := map[string]func(Proof) Proof{
		"leaf":       func(p Proof) Proof { p.Leaf = flip(p.Leaf); return p },
		"root":       func(p Proof) Proof { p.Root = flip(p.Root); return p },
		"prev chain": func(p Proof) Proof { p.PrevChain = flip(p.PrevChain); return p },
		"path hash": func(p Proof) Proof {
			p.Path = append([]ProofStep{}, p.Path...)
			p.Path[0].Hash = flip(p.Path[0].Hash)
			return p
		},
		"path side": func(p Proof) Proof {
			p.Path = append([]ProofStep{}, p.Path...)
			p.Path[0].Left = !p.Path[0].Left
			return p
		},
		"follow": func(p Proof) Proof {
			p.Follow = append([]string{}, p.Follow...)
			p.Follow[0] = flip(p.Follow[0])
			return p
		},
		"dropped follow": func(p Proof) Proof { p.Follow = p.Follow[:len(p.Follow)-1]; return p },
		"bad hex":        func(p Proof) Proof { p.Leaf = strings.Repeat("zz", 32); return p },
		"short hash":     func(p Proof) Proof { p.Leaf = p.Leaf[:16]; return p },
	}
	if !VerifyProof(p) {
		t.Fatal("untampered proof must verify")
	}
	for name, mutate := range cases {
		if VerifyProof(mutate(p)) {
			t.Errorf("tampered proof (%s) verified", name)
		}
	}
}

func TestProofUnknownSeq(t *testing.T) {
	l := New()
	fill(l, 5, 3) // covers 5..7
	for _, seq := range []uint64{0, 1, 4, 8, 100} {
		if _, err := l.Proof(seq); err == nil {
			t.Errorf("Proof(%d) succeeded outside coverage", seq)
		}
	}
}

func TestAppendOutOfOrderPanics(t *testing.T) {
	l := New()
	l.Append(3, payload(0))
	defer func() {
		if recover() == nil {
			t.Fatal("gapped append did not panic")
		}
	}()
	l.Append(5, payload(1))
}

func TestPayloadBindsLeaf(t *testing.T) {
	// Two ledgers over different payloads never share a root.
	a, b := New(), New()
	a.Append(1, []byte("x"))
	b.Append(1, []byte("y"))
	if a.Root().Root == b.Root().Root {
		t.Fatal("different payloads produced the same root")
	}
}
