// Package nanocube implements a simplified Nanocube (Lins, Klosowski &
// Scheidegger, TVCG 2013 — ref [96]), the spatio-temporal count index the
// survey's Section 4 names as the kind of WoD-task-specific data structure
// future systems should adopt: a spatial quadtree whose every node carries
// a time-binned count vector, answering region × time-range aggregation in
// time proportional to the quadtree cells covering the region — independent
// of the number of ingested events.
package nanocube

import (
	"errors"
	"fmt"
)

// BBox is a [min,max) rectangle in (x, y) space. For geographic use, x is
// longitude and y latitude.
type BBox struct {
	MinX, MinY, MaxX, MaxY float64
}

// contains reports whether the box contains the point.
func (b BBox) contains(x, y float64) bool {
	return x >= b.MinX && x < b.MaxX && y >= b.MinY && y < b.MaxY
}

// intersects reports box overlap.
func (b BBox) intersects(o BBox) bool {
	return b.MinX < o.MaxX && o.MinX < b.MaxX && b.MinY < o.MaxY && o.MinY < b.MaxY
}

// covered reports whether o fully covers b.
func (b BBox) coveredBy(o BBox) bool {
	return o.MinX <= b.MinX && b.MaxX <= o.MaxX && o.MinY <= b.MinY && b.MaxY <= o.MaxY
}

type node struct {
	// counts[t] is the number of events in this cell at time bin t.
	counts   []uint32
	children *[4]*node
}

// Nanocube is the index. Create with New; not safe for concurrent mutation.
type Nanocube struct {
	world      BBox
	tMin, tMax float64
	tBins      int
	depth      int
	root       *node
	n          int
	nodes      int
}

// Options configure the cube.
type Options struct {
	// World is the spatial domain.
	World BBox
	// TMin/TMax delimit the temporal domain [TMin, TMax).
	TMin, TMax float64
	// TimeBins is the temporal resolution (default 64).
	TimeBins int
	// Depth is the quadtree depth — spatial resolution 2^Depth × 2^Depth
	// (default 8, max 16).
	Depth int
}

// New creates an empty nanocube.
func New(opts Options) (*Nanocube, error) {
	if opts.World.MaxX <= opts.World.MinX || opts.World.MaxY <= opts.World.MinY {
		return nil, errors.New("nanocube: empty spatial domain")
	}
	if opts.TMax <= opts.TMin {
		return nil, errors.New("nanocube: empty temporal domain")
	}
	if opts.TimeBins <= 0 {
		opts.TimeBins = 64
	}
	if opts.Depth <= 0 {
		opts.Depth = 8
	}
	if opts.Depth > 16 {
		opts.Depth = 16
	}
	return &Nanocube{
		world: opts.World,
		tMin:  opts.TMin, tMax: opts.TMax,
		tBins: opts.TimeBins,
		depth: opts.Depth,
	}, nil
}

// Len returns the number of ingested events.
func (nc *Nanocube) Len() int { return nc.n }

// Nodes returns the number of materialized quadtree nodes (the memory
// metric: sparse data costs sparse structure).
func (nc *Nanocube) Nodes() int { return nc.nodes }

// timeBin maps a timestamp to its bin, clamping into the domain.
func (nc *Nanocube) timeBin(t float64) int {
	b := int((t - nc.tMin) / (nc.tMax - nc.tMin) * float64(nc.tBins))
	if b < 0 {
		b = 0
	}
	if b >= nc.tBins {
		b = nc.tBins - 1
	}
	return b
}

// Add ingests one event at (x, y, t). Events outside the spatial domain are
// clamped onto its border cell.
func (nc *Nanocube) Add(x, y, t float64) {
	nc.n++
	bin := nc.timeBin(t)
	if nc.root == nil {
		nc.root = nc.newNode()
	}
	cur := nc.root
	box := nc.world
	cur.counts[bin]++
	for d := 0; d < nc.depth; d++ {
		q, childBox := quadrantOf(box, x, y)
		if cur.children == nil {
			cur.children = &[4]*node{}
		}
		if cur.children[q] == nil {
			cur.children[q] = nc.newNode()
		}
		cur = cur.children[q]
		box = childBox
		cur.counts[bin]++
	}
}

func (nc *Nanocube) newNode() *node {
	nc.nodes++
	return &node{counts: make([]uint32, nc.tBins)}
}

// quadrantOf returns the child quadrant index for (x, y) and its box,
// clamping coordinates into the box.
func quadrantOf(box BBox, x, y float64) (int, BBox) {
	midX := (box.MinX + box.MaxX) / 2
	midY := (box.MinY + box.MaxY) / 2
	q := 0
	child := BBox{box.MinX, box.MinY, midX, midY}
	right := x >= midX
	top := y >= midY
	if right {
		q++
		child.MinX, child.MaxX = midX, box.MaxX
	}
	if top {
		q += 2
		child.MinY, child.MaxY = midY, box.MaxY
	}
	return q, child
}

// Count returns the number of events in region × [t0, t1).
func (nc *Nanocube) Count(region BBox, t0, t1 float64) int {
	b0, b1 := nc.binRange(t0, t1)
	if b0 > b1 || nc.root == nil {
		return 0
	}
	total := 0
	nc.walk(nc.root, nc.world, region, 0, func(n *node) {
		for b := b0; b <= b1; b++ {
			total += int(n.counts[b])
		}
	})
	return total
}

// TimeSeries returns per-bin counts for the region across the whole
// temporal domain — the timeline strip under a Nanocube map.
func (nc *Nanocube) TimeSeries(region BBox) []int {
	out := make([]int, nc.tBins)
	if nc.root == nil {
		return out
	}
	nc.walk(nc.root, nc.world, region, 0, func(n *node) {
		for b, c := range n.counts {
			out[b] += int(c)
		}
	})
	return out
}

// binRange converts [t0, t1) to inclusive bin bounds.
func (nc *Nanocube) binRange(t0, t1 float64) (int, int) {
	if t1 <= t0 {
		return 1, 0
	}
	b0 := nc.timeBin(t0)
	// End is exclusive: the bin containing t1-ε.
	span := (nc.tMax - nc.tMin) / float64(nc.tBins)
	b1 := nc.timeBin(t1 - span/1e9)
	return b0, b1
}

// walk visits the maximal nodes fully covered by the region and recurses
// into straddling ones; fn receives each covered node exactly once.
func (nc *Nanocube) walk(n *node, box, region BBox, depth int, fn func(*node)) {
	if !box.intersects(region) {
		return
	}
	if box.coveredBy(region) || depth == nc.depth {
		// At max depth a straddling cell is an approximation boundary: the
		// cell's whole count is attributed (resolution-limited, as in the
		// original structure).
		fn(n)
		return
	}
	if n.children == nil {
		fn(n)
		return
	}
	midX := (box.MinX + box.MaxX) / 2
	midY := (box.MinY + box.MaxY) / 2
	boxes := [4]BBox{
		{box.MinX, box.MinY, midX, midY},
		{midX, box.MinY, box.MaxX, midY},
		{box.MinX, midY, midX, box.MaxY},
		{midX, midY, box.MaxX, box.MaxY},
	}
	for q, c := range n.children {
		if c != nil {
			nc.walk(c, boxes[q], region, depth+1, fn)
		}
	}
}

// HeatCell is one cell of a heatmap query.
type HeatCell struct {
	X, Y  int
	Count int
}

// Heatmap returns non-empty counts on the 2^level × 2^level grid for the
// time range — the zoom-level tiles a Nanocube front-end renders.
func (nc *Nanocube) Heatmap(level int, t0, t1 float64) ([]HeatCell, error) {
	if level < 0 || level > nc.depth {
		return nil, fmt.Errorf("nanocube: level %d out of range 0..%d", level, nc.depth)
	}
	b0, b1 := nc.binRange(t0, t1)
	if b0 > b1 || nc.root == nil {
		return nil, nil
	}
	var out []HeatCell
	var walk func(n *node, d, cx, cy int)
	walk = func(n *node, d, cx, cy int) {
		if d == level {
			total := 0
			for b := b0; b <= b1; b++ {
				total += int(n.counts[b])
			}
			if total > 0 {
				out = append(out, HeatCell{X: cx, Y: cy, Count: total})
			}
			return
		}
		if n.children == nil {
			return
		}
		for q, c := range n.children {
			if c != nil {
				walk(c, d+1, cx*2+q%2, cy*2+q/2)
			}
		}
	}
	walk(nc.root, 0, 0, 0)
	return out, nil
}
