package nanocube

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func worldCube(t *testing.T, tbins, depth int) *Nanocube {
	t.Helper()
	nc, err := New(Options{
		World: BBox{MinX: -180, MinY: -90, MaxX: 180, MaxY: 90},
		TMin:  0, TMax: 100,
		TimeBins: tbins, Depth: depth,
	})
	if err != nil {
		t.Fatal(err)
	}
	return nc
}

type event struct{ x, y, t float64 }

func randomEvents(seed int64, n int) []event {
	rng := rand.New(rand.NewSource(seed))
	out := make([]event, n)
	for i := range out {
		out[i] = event{
			x: rng.Float64()*360 - 180,
			y: rng.Float64()*180 - 90,
			t: rng.Float64() * 100,
		}
	}
	return out
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Options{World: BBox{0, 0, 0, 1}, TMin: 0, TMax: 1}); err == nil {
		t.Error("empty x-domain accepted")
	}
	if _, err := New(Options{World: BBox{0, 0, 1, 1}, TMin: 5, TMax: 5}); err == nil {
		t.Error("empty time domain accepted")
	}
}

func TestCountWholeDomain(t *testing.T) {
	nc := worldCube(t, 32, 6)
	evs := randomEvents(1, 5000)
	for _, e := range evs {
		nc.Add(e.x, e.y, e.t)
	}
	if nc.Len() != 5000 {
		t.Errorf("Len = %d", nc.Len())
	}
	got := nc.Count(BBox{-180, -90, 180, 90}, 0, 100)
	if got != 5000 {
		t.Errorf("whole-domain count = %d", got)
	}
}

func TestCountMatchesBruteForce(t *testing.T) {
	// Use region boundaries aligned to the depth-8 grid so the
	// resolution-limited approximation is exact.
	nc := worldCube(t, 50, 8)
	evs := randomEvents(2, 8000)
	for _, e := range evs {
		nc.Add(e.x, e.y, e.t)
	}
	cellW := 360.0 / 256
	cellH := 180.0 / 256
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		x0 := -180 + float64(rng.Intn(200))*cellW
		y0 := -90 + float64(rng.Intn(200))*cellH
		region := BBox{x0, y0, x0 + float64(rng.Intn(50)+1)*cellW, y0 + float64(rng.Intn(50)+1)*cellH}
		t0 := float64(rng.Intn(50)) * 2 // aligned to bins (width 2)
		t1 := t0 + float64(rng.Intn(20)+1)*2
		want := 0
		for _, e := range evs {
			if region.contains(e.x, e.y) && e.t >= t0 && e.t < t1 {
				want++
			}
		}
		if got := nc.Count(region, t0, t1); got != want {
			t.Errorf("trial %d: Count = %d, want %d (region %+v, t [%g,%g))",
				trial, got, want, region, t0, t1)
		}
	}
}

func TestTimeSeriesConservation(t *testing.T) {
	nc := worldCube(t, 20, 6)
	evs := randomEvents(4, 3000)
	for _, e := range evs {
		nc.Add(e.x, e.y, e.t)
	}
	series := nc.TimeSeries(BBox{-180, -90, 180, 90})
	total := 0
	for _, c := range series {
		total += c
	}
	if total != 3000 {
		t.Errorf("series total = %d", total)
	}
	// Regional series is bounded by global.
	regional := nc.TimeSeries(BBox{0, 0, 90, 45})
	for i := range regional {
		if regional[i] > series[i] {
			t.Errorf("bin %d: regional %d > global %d", i, regional[i], series[i])
		}
	}
}

func TestHeatmapConservation(t *testing.T) {
	nc := worldCube(t, 10, 5)
	evs := randomEvents(5, 2000)
	for _, e := range evs {
		nc.Add(e.x, e.y, e.t)
	}
	for _, level := range []int{0, 2, 5} {
		cells, err := nc.Heatmap(level, 0, 100)
		if err != nil {
			t.Fatal(err)
		}
		total := 0
		side := 1 << level
		for _, c := range cells {
			total += c.Count
			if c.X < 0 || c.X >= side || c.Y < 0 || c.Y >= side {
				t.Errorf("level %d: cell (%d,%d) outside grid", level, c.X, c.Y)
			}
			if c.Count <= 0 {
				t.Error("empty cell emitted")
			}
		}
		if total != 2000 {
			t.Errorf("level %d: heatmap total = %d", level, total)
		}
	}
	if _, err := nc.Heatmap(99, 0, 100); err == nil {
		t.Error("bad level accepted")
	}
}

func TestEmptyQueries(t *testing.T) {
	nc := worldCube(t, 10, 4)
	if nc.Count(BBox{-180, -90, 180, 90}, 0, 100) != 0 {
		t.Error("empty cube count != 0")
	}
	nc.Add(0, 0, 50)
	if nc.Count(BBox{-180, -90, 180, 90}, 60, 50) != 0 {
		t.Error("inverted time range != 0")
	}
	if nc.Count(BBox{100, 80, 110, 85}, 0, 100) != 0 {
		t.Error("empty region != 0")
	}
}

func TestQueryCostIndependentOfN(t *testing.T) {
	// The structural claim: node count grows with occupied cells, not
	// events; repeated same-cell inserts do not add nodes.
	nc := worldCube(t, 10, 8)
	nc.Add(10, 10, 5)
	nodesAfterOne := nc.Nodes()
	for i := 0; i < 10000; i++ {
		nc.Add(10, 10, 5)
	}
	if nc.Nodes() != nodesAfterOne {
		t.Errorf("same-cell inserts grew nodes: %d → %d", nodesAfterOne, nc.Nodes())
	}
	if got := nc.Count(BBox{-180, -90, 180, 90}, 0, 100); got != 10001 {
		t.Errorf("count = %d", got)
	}
}

// Property: whole-domain count always equals events ingested, and any
// region count never exceeds it.
func TestCountBoundsProperty(t *testing.T) {
	f := func(seed int64, n8 uint8) bool {
		nc, err := New(Options{
			World: BBox{0, 0, 100, 100}, TMin: 0, TMax: 10,
			TimeBins: 8, Depth: 6,
		})
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		n := int(n8)%200 + 1
		for i := 0; i < n; i++ {
			nc.Add(rng.Float64()*100, rng.Float64()*100, rng.Float64()*10)
		}
		if nc.Count(BBox{0, 0, 100, 100}, 0, 10) != n {
			return false
		}
		region := BBox{rng.Float64() * 50, rng.Float64() * 50, 50 + rng.Float64()*50, 50 + rng.Float64()*50}
		c := nc.Count(region, 0, 10)
		return c >= 0 && c <= n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestOutOfDomainEventsClamped(t *testing.T) {
	nc := worldCube(t, 10, 4)
	nc.Add(500, 500, 500)   // all out of range
	nc.Add(-500, -500, -50) // all out of range
	if got := nc.Count(BBox{-180, -90, 180, 90}, 0, 100); got != 2 {
		t.Errorf("clamped events lost: count = %d", got)
	}
}
