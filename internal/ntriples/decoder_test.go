package ntriples

import (
	"fmt"
	"io"
	"strings"
	"testing"

	"github.com/lodviz/lodviz/internal/rdf"
)

func docOf(n int) string {
	var b strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "<http://e/s%d> <http://e/p> <http://e/o%d> .\n", i, i)
	}
	return b.String()
}

func TestDecoderChunkBoundaries(t *testing.T) {
	d := NewDecoder(strings.NewReader(docOf(10)))
	d.SetChunkSize(3)
	var sizes []int
	total := 0
	for {
		chunk, err := d.NextChunk()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		sizes = append(sizes, len(chunk))
		total += len(chunk)
	}
	want := []int{3, 3, 3, 1}
	if len(sizes) != len(want) {
		t.Fatalf("chunk sizes = %v, want %v", sizes, want)
	}
	for i := range want {
		if sizes[i] != want[i] {
			t.Fatalf("chunk sizes = %v, want %v", sizes, want)
		}
	}
	if total != 10 {
		t.Fatalf("total triples = %d, want 10", total)
	}
	// Subsequent calls keep reporting EOF.
	if _, err := d.NextChunk(); err != io.EOF {
		t.Fatalf("post-EOF err = %v, want io.EOF", err)
	}
}

func TestDecoderMatchesReadAll(t *testing.T) {
	doc := docOf(25) + "# comment\n\n" + `<http://e/x> <http://e/p> "lit"@en .` + "\n"
	want, err := ParseString(doc)
	if err != nil {
		t.Fatal(err)
	}
	d := NewDecoder(strings.NewReader(doc))
	d.SetChunkSize(7)
	var got []rdf.Triple
	if err := d.DecodeAll(func(chunk []rdf.Triple) error {
		got = append(got, chunk...)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("decoder yielded %d triples, ReadAll %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("triple %d: %v != %v", i, got[i], want[i])
		}
	}
}

func TestDecoderMidStreamError(t *testing.T) {
	doc := docOf(4) + "not a triple\n" + docOf(2)
	d := NewDecoder(strings.NewReader(doc))
	d.SetChunkSize(2)
	var seen int
	for {
		chunk, err := d.NextChunk()
		if err == io.EOF {
			t.Fatal("decoder reached EOF past malformed line")
		}
		if err != nil {
			pe, ok := err.(*ParseError)
			if !ok {
				t.Fatalf("err = %v, want *ParseError", err)
			}
			if pe.Line != 5 {
				t.Fatalf("ParseError.Line = %d, want 5", pe.Line)
			}
			if seen != 4 {
				t.Fatalf("saw %d triples before the error, want 4", seen)
			}
			return
		}
		seen += len(chunk)
	}
}

func TestDecodeAllStopsOnCallbackError(t *testing.T) {
	d := NewDecoder(strings.NewReader(docOf(10)))
	d.SetChunkSize(2)
	calls := 0
	sentinel := fmt.Errorf("stop")
	err := d.DecodeAll(func([]rdf.Triple) error {
		calls++
		if calls == 2 {
			return sentinel
		}
		return nil
	})
	if err != sentinel {
		t.Fatalf("err = %v, want sentinel", err)
	}
	if calls != 2 {
		t.Fatalf("callback ran %d times, want 2", calls)
	}
}
