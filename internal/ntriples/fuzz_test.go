package ntriples

import (
	"strings"
	"testing"
	"unicode/utf8"
)

// FuzzNTriples throws arbitrary documents at the N-Triples reader. The
// invariants: no panics, and anything that parses must round-trip through
// Format/ParseString to the same triples (the serializer and parser agree).
func FuzzNTriples(f *testing.F) {
	seeds := []string{
		"<http://e/s> <http://e/p> <http://e/o> .\n",
		"<http://e/s> <http://e/p> \"literal\" .\n",
		"<http://e/s> <http://e/p> \"tag\"@en .\n",
		"<http://e/s> <http://e/p> \"5\"^^<http://www.w3.org/2001/XMLSchema#integer> .\n",
		"_:b0 <http://e/p> _:b1 .\n",
		"# comment\n\n<http://e/s> <http://e/p> \"esc \\\" \\n \\\\ \\u00e9\" .\n",
		"<http://e/s> <http://e/p> \"\\U0001F600\" .\n",
		"malformed line\n",
		"<http://e/s> <http://e/p> .\n",
		"",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, doc string) {
		triples, err := ParseString(doc)
		if err != nil {
			return
		}
		// The spec requires UTF-8 documents. The parser is byte-transparent
		// about ill-formed sequences inside literals, but the serializer
		// re-encodes them, so canonical round-tripping only holds for valid
		// UTF-8 input.
		if !utf8.ValidString(doc) {
			return
		}
		// Round-trip: serialize and re-parse; the triples must survive.
		back, err := ParseString(Format(triples))
		if err != nil {
			t.Fatalf("re-parsing serialized output failed: %v\ninput: %q\nserialized: %q",
				err, doc, Format(triples))
		}
		if len(back) != len(triples) {
			t.Fatalf("round-trip triple count %d != %d", len(back), len(triples))
		}
		for i := range triples {
			if back[i] != triples[i] {
				t.Fatalf("round-trip mismatch at %d: %v != %v", i, back[i], triples[i])
			}
		}
	})
}

// TestFuzzSeedsAsUnit runs the seed corpus as a plain test so `go test`
// exercises the round-trip invariant without the fuzz engine.
func TestFuzzSeedsAsUnit(t *testing.T) {
	doc := "<http://e/s> <http://e/p> \"esc \\\" \\n tab\\t\" .\n" +
		"_:b0 <http://e/p> \"caf\\u00e9\"@fr .\n"
	triples, err := ParseString(doc)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseString(Format(triples))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 || back[0] != triples[0] || back[1] != triples[1] {
		t.Fatalf("round-trip mismatch: %v vs %v", back, triples)
	}
	if !strings.Contains(Format(triples), "@fr") {
		t.Fatalf("language tag lost: %s", Format(triples))
	}
}
