// Package ntriples parses and serializes the N-Triples line-based RDF syntax
// (RDF 1.1 N-Triples). It is the streaming ingestion format for lodviz: the
// reader processes one line at a time so arbitrarily large dumps can be
// loaded without materializing the file.
package ntriples

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"github.com/lodviz/lodviz/internal/rdf"
)

// ParseError describes a syntax error with its line number.
type ParseError struct {
	Line int
	Msg  string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("ntriples: line %d: %s", e.Line, e.Msg)
}

// Reader streams triples from N-Triples input.
type Reader struct {
	scanner *bufio.Scanner
	line    int
}

// NewReader returns a streaming N-Triples reader over r.
func NewReader(r io.Reader) *Reader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	return &Reader{scanner: sc}
}

// Next returns the next triple. It returns io.EOF when the input is
// exhausted, or a *ParseError for malformed lines.
func (r *Reader) Next() (rdf.Triple, error) {
	for r.scanner.Scan() {
		r.line++
		line := strings.TrimSpace(r.scanner.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		t, err := parseLine(line, r.line)
		if err != nil {
			return rdf.Triple{}, err
		}
		return t, nil
	}
	if err := r.scanner.Err(); err != nil {
		return rdf.Triple{}, fmt.Errorf("ntriples: read: %w", err)
	}
	return rdf.Triple{}, io.EOF
}

// ReadAll parses the entire input and returns all triples.
func ReadAll(r io.Reader) ([]rdf.Triple, error) {
	nr := NewReader(r)
	var out []rdf.Triple
	for {
		t, err := nr.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
}

// ParseString parses a complete N-Triples document held in a string.
func ParseString(s string) ([]rdf.Triple, error) {
	return ReadAll(strings.NewReader(s))
}

// DefaultChunkSize is the number of triples a Decoder yields per chunk.
const DefaultChunkSize = 8192

// Decoder streams an N-Triples document as bounded chunks of triples, so
// gigabyte-sized inputs can be ingested without materializing the whole
// parse in one slice: the caller processes (or batch-inserts) one chunk at a
// time while the wire bytes stream through a fixed scanner buffer.
type Decoder struct {
	r     *Reader
	chunk int
}

// NewDecoder returns a Decoder over r yielding DefaultChunkSize-triple
// chunks.
func NewDecoder(r io.Reader) *Decoder {
	return &Decoder{r: NewReader(r), chunk: DefaultChunkSize}
}

// SetChunkSize overrides the chunk size (values < 1 are ignored).
func (d *Decoder) SetChunkSize(n int) {
	if n >= 1 {
		d.chunk = n
	}
}

// NextChunk parses and returns the next chunk of up to the configured number
// of triples. It returns io.EOF (and no triples) once the input is
// exhausted; a short final chunk is returned with a nil error and the
// following call reports io.EOF. Malformed input surfaces as a *ParseError
// carrying the offending line number.
func (d *Decoder) NextChunk() ([]rdf.Triple, error) {
	chunk := make([]rdf.Triple, 0, d.chunk)
	for len(chunk) < d.chunk {
		t, err := d.r.Next()
		if err == io.EOF {
			if len(chunk) == 0 {
				return nil, io.EOF
			}
			return chunk, nil
		}
		if err != nil {
			return nil, err
		}
		chunk = append(chunk, t)
	}
	return chunk, nil
}

// DecodeAll drains the decoder, passing each chunk to fn. It stops on the
// first parse error or the first error returned by fn.
func (d *Decoder) DecodeAll(fn func([]rdf.Triple) error) error {
	for {
		chunk, err := d.NextChunk()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if err := fn(chunk); err != nil {
			return err
		}
	}
}

type lineParser struct {
	s    string
	pos  int
	line int
}

func parseLine(s string, line int) (rdf.Triple, error) {
	p := &lineParser{s: s, line: line}
	subj, err := p.parseSubject()
	if err != nil {
		return rdf.Triple{}, err
	}
	p.skipWS()
	pred, err := p.parseIRI()
	if err != nil {
		return rdf.Triple{}, err
	}
	p.skipWS()
	obj, err := p.parseObject()
	if err != nil {
		return rdf.Triple{}, err
	}
	p.skipWS()
	if p.pos >= len(p.s) || p.s[p.pos] != '.' {
		return rdf.Triple{}, p.errf("expected '.' terminator")
	}
	p.pos++
	p.skipWS()
	if p.pos < len(p.s) && !strings.HasPrefix(p.s[p.pos:], "#") {
		return rdf.Triple{}, p.errf("trailing content after '.'")
	}
	return rdf.Triple{S: subj, P: pred, O: obj}, nil
}

func (p *lineParser) errf(format string, args ...any) error {
	return &ParseError{Line: p.line, Msg: fmt.Sprintf(format, args...) + fmt.Sprintf(" (col %d)", p.pos+1)}
}

func (p *lineParser) skipWS() {
	for p.pos < len(p.s) && (p.s[p.pos] == ' ' || p.s[p.pos] == '\t') {
		p.pos++
	}
}

func (p *lineParser) parseSubject() (rdf.Term, error) {
	if p.pos < len(p.s) && p.s[p.pos] == '_' {
		return p.parseBlank()
	}
	return p.parseIRI()
}

func (p *lineParser) parseObject() (rdf.Term, error) {
	if p.pos >= len(p.s) {
		return nil, p.errf("unexpected end of line, expected object")
	}
	switch p.s[p.pos] {
	case '<':
		return p.parseIRI()
	case '_':
		return p.parseBlank()
	case '"':
		return p.parseLiteral()
	default:
		return nil, p.errf("unexpected character %q for object", p.s[p.pos])
	}
}

func (p *lineParser) parseIRI() (rdf.IRI, error) {
	if p.pos >= len(p.s) || p.s[p.pos] != '<' {
		return "", p.errf("expected '<'")
	}
	end := strings.IndexByte(p.s[p.pos:], '>')
	if end < 0 {
		return "", p.errf("unterminated IRI")
	}
	iri := p.s[p.pos+1 : p.pos+end]
	p.pos += end + 1
	if iri == "" {
		return "", p.errf("empty IRI")
	}
	unescaped, err := unescape(iri, p)
	if err != nil {
		return "", err
	}
	return rdf.IRI(unescaped), nil
}

func (p *lineParser) parseBlank() (rdf.BlankNode, error) {
	if !strings.HasPrefix(p.s[p.pos:], "_:") {
		return "", p.errf("expected '_:'")
	}
	p.pos += 2
	start := p.pos
	for p.pos < len(p.s) && isBlankLabelChar(p.s[p.pos]) {
		p.pos++
	}
	if p.pos == start {
		return "", p.errf("empty blank node label")
	}
	return rdf.BlankNode(p.s[start:p.pos]), nil
}

func isBlankLabelChar(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' ||
		c == '_' || c == '-' || c == '.'
}

func (p *lineParser) parseLiteral() (rdf.Literal, error) {
	if p.s[p.pos] != '"' {
		return rdf.Literal{}, p.errf("expected '\"'")
	}
	p.pos++
	var b strings.Builder
	for {
		if p.pos >= len(p.s) {
			return rdf.Literal{}, p.errf("unterminated string literal")
		}
		c := p.s[p.pos]
		if c == '"' {
			p.pos++
			break
		}
		if c == '\\' {
			if p.pos+1 >= len(p.s) {
				return rdf.Literal{}, p.errf("dangling escape")
			}
			esc, n, err := decodeEscape(p.s[p.pos:])
			if err != nil {
				return rdf.Literal{}, p.errf("%v", err)
			}
			b.WriteString(esc)
			p.pos += n
			continue
		}
		b.WriteByte(c)
		p.pos++
	}
	lex := b.String()
	// Optional language tag or datatype.
	if p.pos < len(p.s) && p.s[p.pos] == '@' {
		p.pos++
		start := p.pos
		for p.pos < len(p.s) && (isAlnum(p.s[p.pos]) || p.s[p.pos] == '-') {
			p.pos++
		}
		if p.pos == start {
			return rdf.Literal{}, p.errf("empty language tag")
		}
		return rdf.NewLangLiteral(lex, p.s[start:p.pos]), nil
	}
	if strings.HasPrefix(p.s[p.pos:], "^^") {
		p.pos += 2
		dt, err := p.parseIRI()
		if err != nil {
			return rdf.Literal{}, err
		}
		return rdf.NewTypedLiteral(lex, dt), nil
	}
	return rdf.NewLiteral(lex), nil
}

func isAlnum(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
}

// decodeEscape decodes one escape sequence beginning at s[0] == '\\',
// returning the decoded text and how many input bytes were consumed.
func decodeEscape(s string) (string, int, error) {
	switch s[1] {
	case 't':
		return "\t", 2, nil
	case 'n':
		return "\n", 2, nil
	case 'r':
		return "\r", 2, nil
	case 'b':
		return "\b", 2, nil
	case 'f':
		return "\f", 2, nil
	case '"':
		return `"`, 2, nil
	case '\'':
		return "'", 2, nil
	case '\\':
		return `\`, 2, nil
	case 'u':
		if len(s) < 6 {
			return "", 0, fmt.Errorf("short \\u escape")
		}
		r, err := hexRune(s[2:6])
		if err != nil {
			return "", 0, err
		}
		return string(r), 6, nil
	case 'U':
		if len(s) < 10 {
			return "", 0, fmt.Errorf("short \\U escape")
		}
		r, err := hexRune(s[2:10])
		if err != nil {
			return "", 0, err
		}
		return string(r), 10, nil
	default:
		return "", 0, fmt.Errorf("invalid escape \\%c", s[1])
	}
}

func hexRune(s string) (rune, error) {
	var v rune
	for i := 0; i < len(s); i++ {
		c := s[i]
		var d rune
		switch {
		case c >= '0' && c <= '9':
			d = rune(c - '0')
		case c >= 'a' && c <= 'f':
			d = rune(c-'a') + 10
		case c >= 'A' && c <= 'F':
			d = rune(c-'A') + 10
		default:
			return 0, fmt.Errorf("invalid hex digit %q", c)
		}
		v = v<<4 | d
	}
	return v, nil
}

// unescape resolves \u/\U escapes inside IRIs.
func unescape(s string, p *lineParser) (string, error) {
	if !strings.ContainsRune(s, '\\') {
		return s, nil
	}
	var b strings.Builder
	for i := 0; i < len(s); {
		if s[i] != '\\' {
			b.WriteByte(s[i])
			i++
			continue
		}
		if i+1 >= len(s) {
			return "", p.errf("dangling escape in IRI")
		}
		esc, n, err := decodeEscape(s[i:])
		if err != nil {
			return "", p.errf("%v", err)
		}
		b.WriteString(esc)
		i += n
	}
	return b.String(), nil
}

// Write serializes triples to w in N-Triples syntax, one statement per line.
func Write(w io.Writer, triples []rdf.Triple) error {
	bw := bufio.NewWriter(w)
	for _, t := range triples {
		if !t.Valid() {
			return fmt.Errorf("ntriples: cannot serialize invalid triple %v", t)
		}
		if _, err := bw.WriteString(t.String()); err != nil {
			return fmt.Errorf("ntriples: write: %w", err)
		}
		if err := bw.WriteByte('\n'); err != nil {
			return fmt.Errorf("ntriples: write: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("ntriples: flush: %w", err)
	}
	return nil
}

// Format returns the N-Triples serialization of triples as a string.
func Format(triples []rdf.Triple) string {
	var b strings.Builder
	for _, t := range triples {
		b.WriteString(t.String())
		b.WriteByte('\n')
	}
	return b.String()
}
