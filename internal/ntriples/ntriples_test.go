package ntriples

import (
	"io"
	"strings"
	"testing"
	"testing/quick"

	"github.com/lodviz/lodviz/internal/rdf"
)

func TestParseBasicTriples(t *testing.T) {
	doc := `
# a comment
<http://e/s> <http://e/p> <http://e/o> .
<http://e/s> <http://e/name> "Alice" .
_:b1 <http://e/p> "42"^^<http://www.w3.org/2001/XMLSchema#integer> .
<http://e/s> <http://e/label> "Bonjour"@fr .
`
	ts, err := ParseString(doc)
	if err != nil {
		t.Fatalf("ParseString: %v", err)
	}
	if len(ts) != 4 {
		t.Fatalf("got %d triples, want 4", len(ts))
	}
	if ts[0].O != rdf.IRI("http://e/o") {
		t.Errorf("triple 0 object = %v", ts[0].O)
	}
	if ts[1].O != rdf.NewLiteral("Alice") {
		t.Errorf("triple 1 object = %v", ts[1].O)
	}
	if ts[2].S != rdf.BlankNode("b1") {
		t.Errorf("triple 2 subject = %v", ts[2].S)
	}
	if got, ok := ts[2].O.(rdf.Literal); !ok || got.Datatype != rdf.XSDInteger {
		t.Errorf("triple 2 object datatype = %v", ts[2].O)
	}
	if ts[3].O != rdf.NewLangLiteral("Bonjour", "fr") {
		t.Errorf("triple 3 object = %v", ts[3].O)
	}
}

func TestParseEscapes(t *testing.T) {
	doc := `<http://e/s> <http://e/p> "line1\nline2\ttab \"quoted\" back\\slash" .`
	ts, err := ParseString(doc)
	if err != nil {
		t.Fatalf("ParseString: %v", err)
	}
	want := "line1\nline2\ttab \"quoted\" back\\slash"
	if got := ts[0].O.(rdf.Literal).Lexical; got != want {
		t.Errorf("lexical = %q, want %q", got, want)
	}
}

func TestParseUnicodeEscapes(t *testing.T) {
	doc := `<http://e/s> <http://e/p> "café \U0001F600" .`
	ts, err := ParseString(doc)
	if err != nil {
		t.Fatalf("ParseString: %v", err)
	}
	if got := ts[0].O.(rdf.Literal).Lexical; got != "café 😀" {
		t.Errorf("lexical = %q", got)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		`<http://e/s> <http://e/p> <http://e/o>`,        // missing dot
		`<http://e/s> <http://e/p> .`,                   // missing object
		`"lit" <http://e/p> <http://e/o> .`,             // literal subject
		`<http://e/s> <http://e/p> "unterminated .`,     // unterminated literal
		`<http://e/s> <http://e/p> <http://e/o> . junk`, // trailing junk
		`<http://e/s> <unclosed <http://e/o> .`,         // unterminated IRI
		`_: <http://e/p> <http://e/o> .`,                // empty blank label
		`<http://e/s> <http://e/p> "x"@ .`,              // empty lang tag
		`<http://e/s> <http://e/p> "x\q" .`,             // bad escape
	}
	for _, doc := range bad {
		if _, err := ParseString(doc); err == nil {
			t.Errorf("ParseString(%q) succeeded, want error", doc)
		}
	}
}

func TestParseErrorHasLineNumber(t *testing.T) {
	doc := "<http://e/s> <http://e/p> <http://e/o> .\nbogus line\n"
	_, err := ParseString(doc)
	pe, ok := err.(*ParseError)
	if !ok {
		t.Fatalf("error type = %T, want *ParseError", err)
	}
	if pe.Line != 2 {
		t.Errorf("Line = %d, want 2", pe.Line)
	}
}

func TestStreamingReader(t *testing.T) {
	doc := strings.Repeat("<http://e/s> <http://e/p> \"v\" .\n", 100)
	r := NewReader(strings.NewReader(doc))
	n := 0
	for {
		_, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		n++
	}
	if n != 100 {
		t.Errorf("streamed %d triples, want 100", n)
	}
}

func TestWriteRoundTrip(t *testing.T) {
	in := []rdf.Triple{
		rdf.T(rdf.IRI("http://e/s"), "http://e/p", rdf.IRI("http://e/o")),
		rdf.T(rdf.BlankNode("x"), "http://e/p", rdf.NewLangLiteral("héllo\n", "en-gb")),
		rdf.T(rdf.IRI("http://e/s"), "http://e/p", rdf.NewInteger(-7)),
		rdf.T(rdf.IRI("http://e/s"), "http://e/p", rdf.NewLiteral(`tab\t "q"`)),
	}
	var sb strings.Builder
	if err := Write(&sb, in); err != nil {
		t.Fatalf("Write: %v", err)
	}
	out, err := ParseString(sb.String())
	if err != nil {
		t.Fatalf("re-parse: %v", err)
	}
	if len(out) != len(in) {
		t.Fatalf("round trip length %d != %d", len(out), len(in))
	}
	for i := range in {
		if in[i] != out[i] {
			t.Errorf("triple %d: %v != %v", i, in[i], out[i])
		}
	}
}

func TestWriteRejectsInvalid(t *testing.T) {
	var sb strings.Builder
	err := Write(&sb, []rdf.Triple{{S: rdf.NewLiteral("bad"), P: "p", O: rdf.IRI("o")}})
	if err == nil {
		t.Error("Write accepted invalid triple")
	}
}

// Property: any literal built from printable text round-trips through
// serialization and parsing.
func TestLiteralRoundTripProperty(t *testing.T) {
	f := func(lex string, langSeed uint8) bool {
		if !isValidUTF8NoControls(lex) {
			return true
		}
		var o rdf.Term
		switch langSeed % 3 {
		case 0:
			o = rdf.NewLiteral(lex)
		case 1:
			o = rdf.NewLangLiteral(lex, "en")
		default:
			o = rdf.NewTypedLiteral(lex, rdf.IRI("http://e/dt"))
		}
		tr := rdf.T(rdf.IRI("http://e/s"), "http://e/p", o)
		out, err := ParseString(Format([]rdf.Triple{tr}))
		return err == nil && len(out) == 1 && out[0] == tr
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func isValidUTF8NoControls(s string) bool {
	for _, r := range s {
		if r == '�' || (r < 0x20 && r != '\n' && r != '\t' && r != '\r') {
			return false
		}
	}
	return true
}

func TestFormat(t *testing.T) {
	s := Format([]rdf.Triple{rdf.T(rdf.IRI("http://e/s"), "http://e/p", rdf.NewLiteral("v"))})
	if s != "<http://e/s> <http://e/p> \"v\" .\n" {
		t.Errorf("Format = %q", s)
	}
}
