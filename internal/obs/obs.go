// Package obs is the dependency-free observability layer: atomic counters,
// gauges, and sharded histograms collected in a Registry and exposed in the
// Prometheus text format (version 0.0.4).
//
// Every metric handle is nil-safe — calling Inc, Add, Set, or Observe on a
// nil handle is a no-op costing one branch. Uninstrumented code paths (and
// the NoObs benchmark variants) therefore pass nil handles instead of
// wrapping every call site in a conditional.
package obs

import (
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing value.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one. Safe on a nil receiver.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n. Safe on a nil receiver.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value reads the current count. A nil counter reads zero.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a value that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value. Safe on a nil receiver.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add shifts the value by d (negative to decrease). Safe on a nil receiver.
func (g *Gauge) Add(d int64) {
	if g != nil {
		g.v.Add(d)
	}
}

// Inc adds one. Safe on a nil receiver.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one. Safe on a nil receiver.
func (g *Gauge) Dec() { g.Add(-1) }

// Value reads the current value. A nil gauge reads zero.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histShards is the number of independently updated shards per histogram;
// concurrent observers land on different cache lines most of the time.
// Must be a power of two.
const histShards = 8

// histShard is one shard's bucket counts plus sum/count. The trailing pad
// keeps shards on separate cache lines.
type histShard struct {
	count   atomic.Uint64
	sumBits atomic.Uint64 // float64 bits, CAS-updated
	counts  []atomic.Uint64
	_       [24]byte
}

func (s *histShard) addSum(v float64) {
	for {
		old := s.sumBits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if s.sumBits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Histogram counts observations into fixed buckets (upper-bound inclusive,
// Prometheus "le" semantics) with an implicit +Inf bucket. Updates are
// sharded; Snapshot merges the shards.
type Histogram struct {
	bounds []float64
	next   atomic.Uint64
	shards [histShards]histShard
}

// DefBuckets is the default latency bucket layout, in seconds: half a
// millisecond through ten seconds.
var DefBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// SizeBuckets is a default layout for size-ish quantities (rows, bytes,
// batch sizes): exponential from 1 to ~1M.
var SizeBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096, 16384, 65536, 262144, 1048576}

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	h := &Histogram{bounds: b}
	for i := range h.shards {
		h.shards[i].counts = make([]atomic.Uint64, len(b)+1)
	}
	return h
}

// Observe records one value. Safe on a nil receiver.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	sh := &h.shards[h.next.Add(1)&(histShards-1)]
	i := sort.SearchFloat64s(h.bounds, v)
	sh.counts[i].Add(1)
	sh.count.Add(1)
	sh.addSum(v)
}

// ObserveSince records the seconds elapsed since start. Safe on a nil
// receiver.
func (h *Histogram) ObserveSince(start time.Time) {
	h.Observe(time.Since(start).Seconds())
}

// HistSnapshot is a merged, point-in-time view of a histogram.
type HistSnapshot struct {
	Bounds []float64 // finite upper bounds
	Counts []uint64  // per-bucket (len(Bounds)+1, last is +Inf), not cumulative
	Count  uint64
	Sum    float64
}

// Snapshot merges the shards. A nil histogram snapshots as empty.
func (h *Histogram) Snapshot() HistSnapshot {
	if h == nil {
		return HistSnapshot{}
	}
	s := HistSnapshot{
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.bounds)+1),
	}
	for i := range h.shards {
		sh := &h.shards[i]
		for j := range sh.counts {
			s.Counts[j] += sh.counts[j].Load()
		}
		s.Count += sh.count.Load()
		s.Sum += math.Float64frombits(sh.sumBits.Load())
	}
	return s
}

// Quantile estimates the q-quantile (0..1) by linear interpolation within
// the bucket holding the target rank. Observations in the +Inf bucket clamp
// to the largest finite bound. Returns 0 when the histogram is empty or nil.
func (h *Histogram) Quantile(q float64) float64 {
	s := h.Snapshot()
	if s.Count == 0 {
		return 0
	}
	rank := q * float64(s.Count)
	var cum float64
	for i, c := range s.Counts {
		prev := cum
		cum += float64(c)
		if cum < rank || c == 0 {
			continue
		}
		if i >= len(s.Bounds) { // +Inf bucket
			return s.Bounds[len(s.Bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = s.Bounds[i-1]
		}
		hi := s.Bounds[i]
		return lo + (hi-lo)*(rank-prev)/float64(c)
	}
	return s.Bounds[len(s.Bounds)-1]
}
