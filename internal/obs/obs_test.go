package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "a counter")
	g := r.Gauge("g", "a gauge")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	g.Set(10)
	g.Dec()
	g.Add(-2)
	if g.Value() != 7 {
		t.Fatalf("gauge = %d, want 7", g.Value())
	}
}

func TestNilHandlesNoOp(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	var cv *CounterVec
	var gv *GaugeVec
	var hv *HistogramVec
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Inc()
	h.Observe(1)
	cv.With("x").Inc()
	gv.With("x").Set(2)
	hv.With("x").Observe(3)
	if c.Value() != 0 || g.Value() != 0 {
		t.Fatal("nil handles must read zero")
	}
	if s := h.Snapshot(); s.Count != 0 {
		t.Fatal("nil histogram must snapshot empty")
	}
	if h.Quantile(0.5) != 0 {
		t.Fatal("nil histogram quantile must be zero")
	}
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4, 8})
	for i := 1; i <= 8; i++ {
		h.Observe(float64(i))
	}
	h.Observe(100) // +Inf bucket
	s := h.Snapshot()
	if s.Count != 9 {
		t.Fatalf("count = %d, want 9", s.Count)
	}
	if s.Sum != 136 {
		t.Fatalf("sum = %v, want 136", s.Sum)
	}
	// buckets: le=1:1, le=2:1, le=4:2, le=8:4, +Inf:1
	want := []uint64{1, 1, 2, 4, 1}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d", i, s.Counts[i], w)
		}
	}
	if q := h.Quantile(0.5); q < 2 || q > 5 {
		t.Fatalf("p50 = %v, want within (2,5)", q)
	}
	if q := h.Quantile(0.99); q != 8 {
		t.Fatalf("p99 = %v, want 8 (clamped to largest finite bound)", q)
	}
	if q := h.Quantile(0.01); q > 1 {
		t.Fatalf("p1 = %v, want <= 1", q)
	}
}

func TestHistogramEmptyQuantile(t *testing.T) {
	h := newHistogram(nil)
	if q := h.Quantile(0.99); q != 0 {
		t.Fatalf("empty quantile = %v, want 0", q)
	}
}

// TestConcurrentUpdatesAndSnapshot hammers every metric kind from many
// goroutines while exposition snapshots run concurrently; run under -race
// this is the data-race proof for the whole package.
func TestConcurrentUpdatesAndSnapshot(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("conc_total", "concurrent counter")
	g := r.Gauge("conc_gauge", "concurrent gauge")
	h := r.Histogram("conc_seconds", "concurrent histogram", nil)
	cv := r.CounterVec("conc_labeled_total", "labeled", "worker")

	const workers = 8
	const perWorker = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			lbl := string(rune('a' + id))
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i%100) / 1000)
				cv.With(lbl).Inc()
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			var sb strings.Builder
			if err := r.WritePrometheus(&sb); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	<-done

	if c.Value() != workers*perWorker {
		t.Fatalf("counter = %d, want %d", c.Value(), workers*perWorker)
	}
	if g.Value() != workers*perWorker {
		t.Fatalf("gauge = %d, want %d", g.Value(), workers*perWorker)
	}
	if s := h.Snapshot(); s.Count != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", s.Count, workers*perWorker)
	}
	for w := 0; w < workers; w++ {
		if v := cv.With(string(rune('a' + w))).Value(); v != perWorker {
			t.Fatalf("labeled counter %d = %d, want %d", w, v, perWorker)
		}
	}
}

func TestRegistryPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup_total", "")
	mustPanic(t, "duplicate", func() { r.Gauge("dup_total", "") })
	mustPanic(t, "invalid name", func() { r.Counter("9starts_with_digit", "") })
	mustPanic(t, "invalid label", func() { r.CounterVec("v_total", "", "bad-label") })
	cv := r.CounterVec("arity_total", "", "a", "b")
	mustPanic(t, "arity", func() { cv.With("only-one") })
}

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic: %s", what)
		}
	}()
	fn()
}

func TestFuncCollectors(t *testing.T) {
	r := NewRegistry()
	r.GaugeFunc("fn_gauge", "scrape-time gauge", func() float64 { return 42.5 })
	r.CounterFunc("fn_total", "scrape-time counter", func() float64 { return 7 })
	r.GaugeVecFunc("fn_vec", "scrape-time labeled", []string{"ep"}, func() []Sample {
		return []Sample{
			{Labels: []string{"b"}, Value: 2},
			{Labels: []string{"a"}, Value: 1},
			{Labels: nil, Value: 9}, // wrong arity: dropped at exposition
		}
	})
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE fn_gauge gauge",
		"fn_gauge 42.5",
		"# TYPE fn_total counter",
		"fn_total 7",
		`fn_vec{ep="a"} 1`,
		`fn_vec{ep="b"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// samples must be sorted by label signature
	if strings.Index(out, `fn_vec{ep="a"}`) > strings.Index(out, `fn_vec{ep="b"}`) {
		t.Fatal("func vec samples not sorted")
	}
}

func TestExpositionFormat(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("req_total", "requests\nwith newline in help")
	c.Add(3)
	hv := r.HistogramVec("lat_seconds", "latency", []float64{0.1, 1}, "route")
	hv.With("/sparql").Observe(0.05)
	hv.With("/sparql").Observe(0.5)
	hv.With("/sparql").Observe(5)
	gv := r.GaugeVec("inflight", "in-flight", "route")
	gv.With(`we"ird\la𝔟el` + "\n").Set(1)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP req_total requests with newline in help\n",
		"# TYPE req_total counter\nreq_total 3\n",
		`lat_seconds_bucket{route="/sparql",le="0.1"} 1`,
		`lat_seconds_bucket{route="/sparql",le="1"} 2`,
		`lat_seconds_bucket{route="/sparql",le="+Inf"} 3`,
		`lat_seconds_sum{route="/sparql"} 5.55`,
		`lat_seconds_count{route="/sparql"} 3`,
		`inflight{route="we\"ird\\la𝔟el\n"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	if len(r.Families()) != 3 {
		t.Fatalf("families = %v", r.Families())
	}
}

func TestObserveSince(t *testing.T) {
	h := newHistogram(DefBuckets)
	h.ObserveSince(time.Now().Add(-time.Millisecond))
	if s := h.Snapshot(); s.Count != 1 || s.Sum <= 0 {
		t.Fatalf("ObserveSince snapshot = %+v", s)
	}
}

func TestQuantileInterpolation(t *testing.T) {
	h := newHistogram([]float64{10, 20})
	for i := 0; i < 10; i++ {
		h.Observe(15)
	}
	q := h.Quantile(0.5)
	if q < 10 || q > 20 {
		t.Fatalf("p50 = %v, want in [10,20]", q)
	}
	if math.IsNaN(q) {
		t.Fatal("NaN quantile")
	}
}
