package obs

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// A Sample is one labeled value emitted by a func-backed family at scrape
// time. Labels are positional, matching the family's declared label names.
type Sample struct {
	Labels []string
	Value  float64
}

// familyKind distinguishes exposition TYPE lines and layout.
type familyKind int

const (
	kindCounter familyKind = iota
	kindGauge
	kindHistogram
)

func (k familyKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// family is one metric name: its metadata plus either materialized children
// (one per label combination) or a scrape-time function.
type family struct {
	name   string
	help   string
	kind   familyKind
	labels []string
	bounds []float64 // histogram families

	mu       sync.Mutex
	children map[string]any // label signature -> *Counter | *Gauge | *Histogram
	order    []string
	fn       func() []Sample // func-backed families (children nil)
}

// Registry holds metric families and renders them as Prometheus text
// exposition. Registration methods panic on invalid or duplicate names —
// families are registered once at startup, so a clash is a programming
// error, not a runtime condition.
type Registry struct {
	mu    sync.Mutex
	fams  map[string]*family
	order []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func (r *Registry) register(name, help string, kind familyKind, labels []string, bounds []float64) *family {
	if !validName(name) {
		panic("obs: invalid metric name " + strconv.Quote(name))
	}
	for _, l := range labels {
		if !validName(l) {
			panic("obs: invalid label name " + strconv.Quote(l))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.fams[name]; ok {
		panic("obs: duplicate metric family " + name)
	}
	f := &family{
		name:     name,
		help:     help,
		kind:     kind,
		labels:   labels,
		bounds:   bounds,
		children: make(map[string]any),
	}
	r.fams[name] = f
	r.order = append(r.order, name)
	return f
}

// sigSep joins label values into a child key; 0xFF cannot appear in UTF-8
// label values' byte encoding as a separator ambiguity in practice.
const sigSep = "\xff"

func (f *family) child(values []string) any {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: %s expects %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, sigSep)
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.children[key]; ok {
		return c
	}
	var c any
	switch f.kind {
	case kindCounter:
		c = new(Counter)
	case kindGauge:
		c = new(Gauge)
	default:
		c = newHistogram(f.bounds)
	}
	f.children[key] = c
	f.order = append(f.order, key)
	return c
}

// Counter registers (and returns) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.register(name, help, kindCounter, nil, nil).child(nil).(*Counter)
}

// Gauge registers an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.register(name, help, kindGauge, nil, nil).child(nil).(*Gauge)
}

// Histogram registers an unlabeled histogram with the given finite bucket
// bounds (nil for DefBuckets).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	return r.register(name, help, kindHistogram, nil, bounds).child(nil).(*Histogram)
}

// CounterVec is a counter family with labels; With materializes one child
// per label combination.
type CounterVec struct{ f *family }

// With returns the child for the given label values, creating it on first
// use. Safe on a nil receiver (returns a nil, no-op counter).
func (v *CounterVec) With(values ...string) *Counter {
	if v == nil {
		return nil
	}
	return v.f.child(values).(*Counter)
}

// CounterVec registers a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{f: r.register(name, help, kindCounter, labels, nil)}
}

// GaugeVec is a gauge family with labels.
type GaugeVec struct{ f *family }

// With returns the child for the given label values. Safe on nil.
func (v *GaugeVec) With(values ...string) *Gauge {
	if v == nil {
		return nil
	}
	return v.f.child(values).(*Gauge)
}

// GaugeVec registers a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{f: r.register(name, help, kindGauge, labels, nil)}
}

// HistogramVec is a histogram family with labels.
type HistogramVec struct{ f *family }

// With returns the child for the given label values. Safe on nil.
func (v *HistogramVec) With(values ...string) *Histogram {
	if v == nil {
		return nil
	}
	return v.f.child(values).(*Histogram)
}

// HistogramVec registers a labeled histogram family with the given bounds
// (nil for DefBuckets).
func (r *Registry) HistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	return &HistogramVec{f: r.register(name, help, kindHistogram, labels, bounds)}
}

// CounterFunc registers a counter whose value is read from fn at scrape
// time — for subsystems that already keep their own atomic totals.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	f := r.register(name, help, kindCounter, nil, nil)
	f.fn = func() []Sample { return []Sample{{Value: fn()}} }
}

// GaugeFunc registers a gauge read from fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	f := r.register(name, help, kindGauge, nil, nil)
	f.fn = func() []Sample { return []Sample{{Value: fn()}} }
}

// CounterVecFunc registers a labeled counter family whose samples are
// produced by fn at scrape time — for per-endpoint totals held elsewhere.
func (r *Registry) CounterVecFunc(name, help string, labels []string, fn func() []Sample) {
	f := r.register(name, help, kindCounter, labels, nil)
	f.fn = fn
}

// GaugeVecFunc registers a labeled gauge family produced by fn at scrape
// time.
func (r *Registry) GaugeVecFunc(name, help string, labels []string, fn func() []Sample) {
	f := r.register(name, help, kindGauge, labels, nil)
	f.fn = fn
}

// Families returns the registered family names in registration order.
func (r *Registry) Families() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, len(r.order))
	copy(out, r.order)
	return out
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// labelString renders {a="x",b="y"}; extra appends one more pair (used for
// histogram le). Empty input renders as "".
func labelString(names, values []string, extraName, extraValue string) string {
	if len(names) == 0 && extraName == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteString(`"`)
	}
	if extraName != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraName)
		b.WriteString(`="`)
		b.WriteString(extraValue)
		b.WriteString(`"`)
	}
	b.WriteByte('}')
	return b.String()
}

// WritePrometheus renders every family in Prometheus text exposition format
// (families in registration order, children in creation order).
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.order))
	for _, name := range r.order {
		fams = append(fams, r.fams[name])
	}
	r.mu.Unlock()

	for _, f := range fams {
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, strings.ReplaceAll(f.help, "\n", " ")); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		if f.fn != nil {
			samples := f.fn()
			sort.SliceStable(samples, func(i, j int) bool {
				return strings.Join(samples[i].Labels, sigSep) < strings.Join(samples[j].Labels, sigSep)
			})
			for _, s := range samples {
				if len(s.Labels) != len(f.labels) {
					continue // malformed sample; drop rather than corrupt exposition
				}
				if _, err := fmt.Fprintf(w, "%s%s %s\n", f.name, labelString(f.labels, s.Labels, "", ""), formatValue(s.Value)); err != nil {
					return err
				}
			}
			continue
		}
		f.mu.Lock()
		keys := make([]string, len(f.order))
		copy(keys, f.order)
		children := make([]any, len(keys))
		for i, k := range keys {
			children[i] = f.children[k]
		}
		f.mu.Unlock()
		for i, key := range keys {
			var values []string
			if key != "" || len(f.labels) > 0 {
				values = strings.Split(key, sigSep)
			}
			switch c := children[i].(type) {
			case *Counter:
				if _, err := fmt.Fprintf(w, "%s%s %d\n", f.name, labelString(f.labels, values, "", ""), c.Value()); err != nil {
					return err
				}
			case *Gauge:
				if _, err := fmt.Fprintf(w, "%s%s %d\n", f.name, labelString(f.labels, values, "", ""), c.Value()); err != nil {
					return err
				}
			case *Histogram:
				s := c.Snapshot()
				var cum uint64
				for bi, bound := range s.Bounds {
					cum += s.Counts[bi]
					if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, labelString(f.labels, values, "le", formatValue(bound)), cum); err != nil {
						return err
					}
				}
				cum += s.Counts[len(s.Bounds)]
				if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, labelString(f.labels, values, "le", "+Inf"), cum); err != nil {
					return err
				}
				if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.name, labelString(f.labels, values, "", ""), formatValue(s.Sum)); err != nil {
					return err
				}
				if _, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, labelString(f.labels, values, "", ""), s.Count); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// Handler serves the registry as a Prometheus scrape target.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}
