// Package ontology implements the class-hierarchy extraction and the
// ontology-visualization layouts the survey reviews in §3.5: node-link
// trees (OntoGraf/KC-Viz family), CropCircles geometric containment
// (Wang & Parsia), Knoocks-style nested blocks, and NodeTrix-style adjacency
// matrices for dense regions.
package ontology

import (
	"math"
	"sort"

	"github.com/lodviz/lodviz/internal/rdf"
	"github.com/lodviz/lodviz/internal/store"
)

// Class is one node of the extracted class hierarchy.
type Class struct {
	IRI rdf.IRI
	// Label is the rdfs:label, or the local name as fallback.
	Label string
	// Instances is the number of direct rdf:type instances.
	Instances int
	// Children are subclass indexes within the Hierarchy.
	Children []int
	// Parent is the superclass index (-1 for roots).
	Parent int
}

// Hierarchy is the rdfs:subClassOf forest of a dataset with a virtual root.
type Hierarchy struct {
	// Classes[0] is the virtual root binding all top-level classes.
	Classes []Class
}

// Extract builds the class hierarchy from rdfs:subClassOf statements and
// rdf:type instance counts. Cycles are broken by ignoring back-edges.
func Extract(st *store.Store) *Hierarchy {
	h := &Hierarchy{Classes: []Class{{IRI: "", Label: "owl:Thing", Parent: -1}}}
	index := map[rdf.IRI]int{}

	intern := func(iri rdf.IRI) int {
		if i, ok := index[iri]; ok {
			return i
		}
		i := len(h.Classes)
		index[iri] = i
		label := iri.LocalName()
		for _, o := range st.Objects(iri, rdf.RDFSLabel) {
			if l, ok := o.(rdf.Literal); ok {
				label = l.Lexical
				break
			}
		}
		h.Classes = append(h.Classes, Class{IRI: iri, Label: label, Parent: -1})
		return i
	}

	// Collect classes: declared ones plus anything used as a type.
	for _, s := range st.Subjects(rdf.RDFType, rdf.RDFSClass) {
		if iri, ok := s.(rdf.IRI); ok {
			intern(iri)
		}
	}
	for _, s := range st.Subjects(rdf.RDFType, rdf.OWLClass) {
		if iri, ok := s.(rdf.IRI); ok {
			intern(iri)
		}
	}
	st.ForEach(store.Pattern{P: rdf.RDFType}, func(t rdf.Triple) bool {
		if iri, ok := t.O.(rdf.IRI); ok && iri != rdf.RDFSClass && iri != rdf.OWLClass {
			i := intern(iri)
			h.Classes[i].Instances++
		}
		return true
	})
	// Subclass edges (cycle-safe: only set parent if it doesn't create a
	// cycle).
	st.ForEach(store.Pattern{P: rdf.RDFSSubClassOf}, func(t rdf.Triple) bool {
		sub, ok1 := t.S.(rdf.IRI)
		super, ok2 := t.O.(rdf.IRI)
		if !ok1 || !ok2 || sub == super {
			return true
		}
		si := intern(sub)
		pi := intern(super)
		if h.Classes[si].Parent != -1 {
			return true // keep first parent (tree view of the DAG)
		}
		if h.createsCycle(si, pi) {
			return true
		}
		h.Classes[si].Parent = pi
		return true
	})
	// Attach roots to the virtual root and build child lists.
	for i := 1; i < len(h.Classes); i++ {
		if h.Classes[i].Parent == -1 {
			h.Classes[i].Parent = 0
		}
		p := h.Classes[i].Parent
		h.Classes[p].Children = append(h.Classes[p].Children, i)
	}
	for i := range h.Classes {
		children := h.Classes[i].Children
		sort.Slice(children, func(a, b int) bool {
			return h.Classes[children[a]].IRI < h.Classes[children[b]].IRI
		})
	}
	return h
}

func (h *Hierarchy) createsCycle(child, parent int) bool {
	for v := parent; v != -1; v = h.Classes[v].Parent {
		if v == child {
			return true
		}
	}
	return false
}

// SubtreeInstances returns the instance count of a class including all
// descendants.
func (h *Hierarchy) SubtreeInstances(i int) int {
	total := h.Classes[i].Instances
	for _, c := range h.Classes[i].Children {
		total += h.SubtreeInstances(c)
	}
	return total
}

// Depth returns the hierarchy's depth.
func (h *Hierarchy) Depth() int {
	var walk func(i, d int) int
	walk = func(i, d int) int {
		max := d
		for _, c := range h.Classes[i].Children {
			if cd := walk(c, d+1); cd > max {
				max = cd
			}
		}
		return max
	}
	return walk(0, 0)
}

// Circle is one circle of a CropCircles containment layout.
type Circle struct {
	Class   int
	X, Y, R float64
}

// CropCircles computes a geometric-containment layout: every class is a
// circle sized by its subtree weight, with children packed inside their
// parent (Wang & Parsia's topology-sensitive visualization).
func (h *Hierarchy) CropCircles(width float64) []Circle {
	out := make([]Circle, len(h.Classes))
	var place func(i int, cx, cy, r float64)
	place = func(i int, cx, cy, r float64) {
		out[i] = Circle{Class: i, X: cx, Y: cy, R: r}
		kids := h.Classes[i].Children
		if len(kids) == 0 {
			return
		}
		// Weight children by subtree size.
		weights := make([]float64, len(kids))
		total := 0.0
		for k, c := range kids {
			weights[k] = math.Sqrt(float64(h.SubtreeInstances(c) + 1))
			total += weights[k]
		}
		if len(kids) == 1 {
			// Single child: concentric, slightly smaller.
			place(kids[0], cx, cy, r*0.75)
			return
		}
		// Place children on an inner ring, radius share by weight.
		ringR := r * 0.55
		angle := 0.0
		for k, c := range kids {
			share := weights[k] / total
			childR := r * 0.42 * math.Sqrt(share*float64(len(kids))) / 1.2
			if childR > r*0.45 {
				childR = r * 0.45
			}
			a := angle + share*math.Pi // center of this child's arc
			place(c, cx+ringR*math.Cos(a*2), cy+ringR*math.Sin(a*2), childR)
			angle += share * math.Pi
		}
	}
	place(0, width/2, width/2, width/2*0.95)
	return out
}

// Block is one rectangle of a Knoocks-style nested-block layout.
type Block struct {
	Class      int
	X, Y, W, H float64
}

// Knoocks computes a nested-block (treemap-like) layout: each class is a
// rectangle subdivided horizontally among its children by subtree weight.
func (h *Hierarchy) Knoocks(width, height float64) []Block {
	out := make([]Block, len(h.Classes))
	var place func(i int, x, y, w, hh float64, horizontal bool)
	place = func(i int, x, y, w, hh float64, horizontal bool) {
		out[i] = Block{Class: i, X: x, Y: y, W: w, H: hh}
		kids := h.Classes[i].Children
		if len(kids) == 0 {
			return
		}
		total := 0.0
		weights := make([]float64, len(kids))
		for k, c := range kids {
			weights[k] = float64(h.SubtreeInstances(c) + 1)
			total += weights[k]
		}
		// Inset for the parent's border.
		const inset = 0.05
		x += w * inset
		y += hh * inset
		w *= 1 - 2*inset
		hh *= 1 - 2*inset
		off := 0.0
		for k, c := range kids {
			share := weights[k] / total
			if horizontal {
				place(c, x+off*w, y, w*share, hh, !horizontal)
				off += share
			} else {
				place(c, x, y+off*hh, w, hh*share, !horizontal)
				off += share
			}
		}
	}
	place(0, 0, 0, width, height, true)
	return out
}

// AdjacencyMatrix returns a NodeTrix-style dense matrix over the selected
// classes: cell (i,j) counts statements whose subject is typed i and object
// typed j.
func AdjacencyMatrix(st *store.Store, classes []rdf.IRI) [][]int {
	typeOf := map[rdf.Term]int{}
	for idx, cls := range classes {
		for _, inst := range st.Subjects(rdf.RDFType, cls) {
			typeOf[inst] = idx
		}
	}
	m := make([][]int, len(classes))
	for i := range m {
		m[i] = make([]int, len(classes))
	}
	st.ForEach(store.Pattern{}, func(t rdf.Triple) bool {
		if t.P == rdf.RDFType {
			return true
		}
		i, ok1 := typeOf[t.S]
		j, ok2 := typeOf[t.O]
		if ok1 && ok2 {
			m[i][j]++
		}
		return true
	})
	return m
}
