package ontology

import (
	"math"
	"testing"

	"github.com/lodviz/lodviz/internal/rdf"
	"github.com/lodviz/lodviz/internal/store"
	"github.com/lodviz/lodviz/internal/turtle"
)

const onto = `
@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
@prefix owl: <http://www.w3.org/2002/07/owl#> .
@prefix ex: <http://example.org/> .

ex:Agent a owl:Class ; rdfs:label "Agent" .
ex:Person a owl:Class ; rdfs:subClassOf ex:Agent .
ex:Organization a owl:Class ; rdfs:subClassOf ex:Agent .
ex:Student a owl:Class ; rdfs:subClassOf ex:Person .
ex:Place a owl:Class .

ex:alice a ex:Student .
ex:bob a ex:Person .
ex:carol a ex:Person .
ex:acme a ex:Organization .
ex:athens a ex:Place .
ex:alice ex:studiesAt ex:acme .
ex:bob ex:worksFor ex:acme .
`

func ex(s string) rdf.IRI { return rdf.IRI("http://example.org/" + s) }

func ontoStore(t *testing.T) *store.Store {
	t.Helper()
	ts, err := turtle.ParseString(onto)
	if err != nil {
		t.Fatal(err)
	}
	st, err := store.Load(ts)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func (h *Hierarchy) find(iri rdf.IRI) int {
	for i, c := range h.Classes {
		if c.IRI == iri {
			return i
		}
	}
	return -1
}

func TestExtractHierarchyShape(t *testing.T) {
	h := Extract(ontoStore(t))
	agent := h.find(ex("Agent"))
	person := h.find(ex("Person"))
	student := h.find(ex("Student"))
	place := h.find(ex("Place"))
	if agent < 0 || person < 0 || student < 0 || place < 0 {
		t.Fatalf("classes missing: %v", h.Classes)
	}
	if h.Classes[person].Parent != agent {
		t.Errorf("Person parent = %d, want Agent %d", h.Classes[person].Parent, agent)
	}
	if h.Classes[student].Parent != person {
		t.Errorf("Student parent wrong")
	}
	// Roots hang off the virtual root.
	if h.Classes[agent].Parent != 0 || h.Classes[place].Parent != 0 {
		t.Errorf("roots not attached to virtual root")
	}
	if h.Depth() != 3 {
		t.Errorf("Depth = %d, want 3", h.Depth())
	}
}

func TestInstanceCounts(t *testing.T) {
	h := Extract(ontoStore(t))
	person := h.find(ex("Person"))
	student := h.find(ex("Student"))
	if h.Classes[person].Instances != 2 { // bob, carol (alice is Student)
		t.Errorf("Person direct instances = %d", h.Classes[person].Instances)
	}
	if h.SubtreeInstances(person) != 3 { // + alice
		t.Errorf("Person subtree = %d", h.SubtreeInstances(person))
	}
	if h.Classes[student].Instances != 1 {
		t.Errorf("Student instances = %d", h.Classes[student].Instances)
	}
}

func TestLabels(t *testing.T) {
	h := Extract(ontoStore(t))
	agent := h.find(ex("Agent"))
	if h.Classes[agent].Label != "Agent" {
		t.Errorf("label = %q", h.Classes[agent].Label)
	}
	// Fallback to local name.
	place := h.find(ex("Place"))
	if h.Classes[place].Label != "Place" {
		t.Errorf("fallback label = %q", h.Classes[place].Label)
	}
}

func TestCycleBroken(t *testing.T) {
	src := `
@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
@prefix ex: <http://example.org/> .
ex:A rdfs:subClassOf ex:B .
ex:B rdfs:subClassOf ex:A .
`
	ts, _ := turtle.ParseString(src)
	st, _ := store.Load(ts)
	h := Extract(st) // must not hang or stack-overflow
	if h.Depth() > 2 {
		t.Errorf("cyclic input depth = %d", h.Depth())
	}
}

func TestCropCirclesContainment(t *testing.T) {
	h := Extract(ontoStore(t))
	circles := h.CropCircles(1000)
	if len(circles) != len(h.Classes) {
		t.Fatalf("circles = %d, want %d", len(circles), len(h.Classes))
	}
	// Every child circle center must be inside its parent circle, and be
	// smaller.
	for i, c := range h.Classes {
		if c.Parent < 0 {
			continue
		}
		p := circles[c.Parent]
		ch := circles[i]
		d := math.Hypot(ch.X-p.X, ch.Y-p.Y)
		if d > p.R {
			t.Errorf("class %d center outside parent (d=%g > R=%g)", i, d, p.R)
		}
		if ch.R >= p.R {
			t.Errorf("class %d radius %g >= parent %g", i, ch.R, p.R)
		}
	}
}

func TestKnoocksNesting(t *testing.T) {
	h := Extract(ontoStore(t))
	blocks := h.Knoocks(800, 600)
	if len(blocks) != len(h.Classes) {
		t.Fatalf("blocks = %d", len(blocks))
	}
	for i, c := range h.Classes {
		if c.Parent < 0 {
			continue
		}
		p := blocks[c.Parent]
		b := blocks[i]
		if b.X < p.X-1e-9 || b.Y < p.Y-1e-9 ||
			b.X+b.W > p.X+p.W+1e-9 || b.Y+b.H > p.Y+p.H+1e-9 {
			t.Errorf("block %d not nested in parent", i)
		}
		if b.W <= 0 || b.H <= 0 {
			t.Errorf("block %d degenerate: %+v", i, b)
		}
	}
}

func TestAdjacencyMatrix(t *testing.T) {
	st := ontoStore(t)
	m := AdjacencyMatrix(st, []rdf.IRI{ex("Student"), ex("Person"), ex("Organization")})
	// alice (Student) studiesAt acme (Organization): m[0][2] == 1.
	if m[0][2] != 1 {
		t.Errorf("m[0][2] = %d, want 1", m[0][2])
	}
	// bob (Person) worksFor acme: m[1][2] == 1.
	if m[1][2] != 1 {
		t.Errorf("m[1][2] = %d, want 1", m[1][2])
	}
	// No links between students and persons.
	if m[0][1] != 0 {
		t.Errorf("m[0][1] = %d", m[0][1])
	}
}

func TestEmptyStore(t *testing.T) {
	h := Extract(store.New())
	if len(h.Classes) != 1 {
		t.Errorf("empty store classes = %d, want 1 (virtual root)", len(h.Classes))
	}
	if h.Depth() != 0 {
		t.Errorf("empty depth = %d", h.Depth())
	}
	circles := h.CropCircles(100)
	if len(circles) != 1 {
		t.Errorf("circles = %d", len(circles))
	}
}
