// Package prefetch implements the caching and prefetching layer the survey
// recommends for future WoD systems (Section 4, refs [128,16,70,39,33]):
// a generic LRU/LFU cache over abstract region keys, plus a pan-direction
// prefetcher that predicts the next viewport tiles from the user's recent
// movement — the "latent feature following" idea of SCOUT and the tile
// prefetching of Battle et al.
package prefetch

import (
	"container/list"
	"sync"
)

// Policy selects the cache replacement policy.
type Policy int

// Replacement policies.
const (
	LRU Policy = iota
	LFU
)

// Cache is a bounded key→value cache with pluggable replacement policy and
// hit statistics. It is safe for concurrent use.
type Cache[K comparable, V any] struct {
	mu       sync.Mutex
	capacity int
	policy   Policy

	// LRU state.
	order *list.List
	items map[K]*list.Element

	// LFU state.
	freq map[K]int
	vals map[K]V

	// Hits and Misses count lookups.
	Hits, Misses int
}

type lruEntry[K comparable, V any] struct {
	key K
	val V
}

// NewCache creates a cache with the given capacity and policy.
func NewCache[K comparable, V any](capacity int, policy Policy) *Cache[K, V] {
	if capacity < 1 {
		capacity = 1
	}
	return &Cache[K, V]{
		capacity: capacity,
		policy:   policy,
		order:    list.New(),
		items:    map[K]*list.Element{},
		freq:     map[K]int{},
		vals:     map[K]V{},
	}
}

// Get returns the cached value and whether it was present.
func (c *Cache[K, V]) Get(key K) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	switch c.policy {
	case LFU:
		v, ok := c.vals[key]
		if ok {
			c.freq[key]++
			c.Hits++
		} else {
			c.Misses++
		}
		return v, ok
	default:
		el, ok := c.items[key]
		if !ok {
			var zero V
			c.Misses++
			return zero, false
		}
		c.Hits++
		c.order.MoveToFront(el)
		return el.Value.(lruEntry[K, V]).val, true
	}
}

// Contains reports presence without affecting statistics or recency.
func (c *Cache[K, V]) Contains(key K) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.policy == LFU {
		_, ok := c.vals[key]
		return ok
	}
	_, ok := c.items[key]
	return ok
}

// Put stores a value, evicting per policy when full.
func (c *Cache[K, V]) Put(key K, val V) {
	c.mu.Lock()
	defer c.mu.Unlock()
	switch c.policy {
	case LFU:
		if _, ok := c.vals[key]; !ok && len(c.vals) >= c.capacity {
			// Evict the least frequently used.
			var victim K
			best := int(^uint(0) >> 1)
			for k := range c.vals {
				if c.freq[k] < best {
					victim, best = k, c.freq[k]
				}
			}
			delete(c.vals, victim)
			delete(c.freq, victim)
		}
		c.vals[key] = val
		c.freq[key]++
	default:
		if el, ok := c.items[key]; ok {
			el.Value = lruEntry[K, V]{key, val}
			c.order.MoveToFront(el)
			return
		}
		if c.order.Len() >= c.capacity {
			last := c.order.Back()
			if last != nil {
				c.order.Remove(last)
				delete(c.items, last.Value.(lruEntry[K, V]).key)
			}
		}
		c.items[key] = c.order.PushFront(lruEntry[K, V]{key, val})
	}
}

// Len returns the number of cached entries.
func (c *Cache[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.policy == LFU {
		return len(c.vals)
	}
	return c.order.Len()
}

// HitRate returns hits / lookups (0 when no lookups yet).
func (c *Cache[K, V]) HitRate() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	total := c.Hits + c.Misses
	if total == 0 {
		return 0
	}
	return float64(c.Hits) / float64(total)
}

// Tile identifies one viewport tile in a pan/zoom session.
type Tile struct{ X, Y, Zoom int }

// Prefetcher predicts which tiles to load next from recent viewport
// movement: it extrapolates the current pan velocity and schedules the
// tiles ahead of the motion, falling back to the 8-neighborhood when idle.
type Prefetcher struct {
	// Lookahead is how many steps of motion to extrapolate (default 2).
	Lookahead int
	last      *Tile
	dx, dy    int
}

// NewPrefetcher creates a prefetcher.
func NewPrefetcher(lookahead int) *Prefetcher {
	if lookahead < 1 {
		lookahead = 2
	}
	return &Prefetcher{Lookahead: lookahead}
}

// Observe records the user's new viewport tile and returns the predicted
// tiles to prefetch, most confident first.
func (p *Prefetcher) Observe(t Tile) []Tile {
	var preds []Tile
	if p.last != nil && p.last.Zoom == t.Zoom {
		p.dx, p.dy = t.X-p.last.X, t.Y-p.last.Y
	}
	cur := t
	p.last = &cur

	if p.dx != 0 || p.dy != 0 {
		// Motion continues: prefetch along the velocity vector first.
		for step := 1; step <= p.Lookahead; step++ {
			preds = append(preds, Tile{X: t.X + p.dx*step, Y: t.Y + p.dy*step, Zoom: t.Zoom})
		}
		// Plus the flanks of the first predicted tile.
		preds = append(preds,
			Tile{X: t.X + p.dx - p.dy, Y: t.Y + p.dy - p.dx, Zoom: t.Zoom},
			Tile{X: t.X + p.dx + p.dy, Y: t.Y + p.dy + p.dx, Zoom: t.Zoom},
		)
	} else {
		// Idle: 8-neighborhood.
		for dy := -1; dy <= 1; dy++ {
			for dx := -1; dx <= 1; dx++ {
				if dx == 0 && dy == 0 {
					continue
				}
				preds = append(preds, Tile{X: t.X + dx, Y: t.Y + dy, Zoom: t.Zoom})
			}
		}
	}
	// Zoom-out parent tile is a common next step as well.
	preds = append(preds, Tile{X: t.X / 2, Y: t.Y / 2, Zoom: t.Zoom - 1})
	return preds
}

// SessionStats summarizes a simulated exploration session for E10.
type SessionStats struct {
	Requests   int
	Hits       int
	Prefetches int
}

// HitRate returns the session's cache hit rate.
func (s SessionStats) HitRate() float64 {
	if s.Requests == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Requests)
}

// SimulateSession replays a viewport trace against a cache of the given
// capacity, optionally prefetching, and reports the hit rate. load is
// invoked for every actual fetch (request misses and prefetches).
func SimulateSession(trace []Tile, capacity int, usePrefetch bool, load func(Tile)) SessionStats {
	cache := NewCache[Tile, struct{}](capacity, LRU)
	var pf *Prefetcher
	if usePrefetch {
		pf = NewPrefetcher(2)
	}
	var stats SessionStats
	for _, t := range trace {
		stats.Requests++
		if _, ok := cache.Get(t); ok {
			stats.Hits++
		} else {
			load(t)
			cache.Put(t, struct{}{})
		}
		if pf != nil {
			for _, pred := range pf.Observe(t) {
				if !cache.Contains(pred) {
					load(pred)
					cache.Put(pred, struct{}{})
					stats.Prefetches++
				}
			}
		}
	}
	return stats
}
