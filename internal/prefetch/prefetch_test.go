package prefetch

import (
	"testing"
)

func TestLRUCacheBasics(t *testing.T) {
	c := NewCache[string, int](2, LRU)
	c.Put("a", 1)
	c.Put("b", 2)
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Errorf("Get(a) = %d,%v", v, ok)
	}
	c.Put("c", 3) // evicts b (a was just used)
	if _, ok := c.Get("b"); ok {
		t.Error("b should have been evicted")
	}
	if _, ok := c.Get("a"); !ok {
		t.Error("a should survive")
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d", c.Len())
	}
}

func TestLRUUpdateExisting(t *testing.T) {
	c := NewCache[string, int](2, LRU)
	c.Put("a", 1)
	c.Put("a", 10)
	if v, _ := c.Get("a"); v != 10 {
		t.Errorf("updated value = %d", v)
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d", c.Len())
	}
}

func TestLFUCacheEvictsColdest(t *testing.T) {
	c := NewCache[string, int](2, LFU)
	c.Put("hot", 1)
	c.Put("cold", 2)
	for i := 0; i < 5; i++ {
		c.Get("hot")
	}
	c.Put("new", 3) // must evict "cold"
	if _, ok := c.Get("cold"); ok {
		t.Error("cold should have been evicted")
	}
	if _, ok := c.Get("hot"); !ok {
		t.Error("hot should survive")
	}
}

func TestHitRate(t *testing.T) {
	c := NewCache[string, int](4, LRU)
	c.Put("a", 1)
	c.Get("a")
	c.Get("missing")
	if c.HitRate() != 0.5 {
		t.Errorf("HitRate = %g", c.HitRate())
	}
	empty := NewCache[string, int](4, LRU)
	if empty.HitRate() != 0 {
		t.Error("empty hit rate != 0")
	}
}

func TestContainsDoesNotCountAsLookup(t *testing.T) {
	c := NewCache[string, int](4, LRU)
	c.Put("a", 1)
	c.Contains("a")
	c.Contains("b")
	if c.Hits != 0 || c.Misses != 0 {
		t.Error("Contains affected stats")
	}
}

func TestCapacityFloor(t *testing.T) {
	c := NewCache[string, int](0, LRU)
	c.Put("a", 1)
	if c.Len() != 1 {
		t.Error("capacity floor of 1 not applied")
	}
}

func TestPrefetcherIdleNeighborhood(t *testing.T) {
	p := NewPrefetcher(2)
	preds := p.Observe(Tile{X: 5, Y: 5, Zoom: 3})
	// Idle (no motion history): 8 neighbors + 1 zoom-out parent.
	if len(preds) != 9 {
		t.Errorf("idle predictions = %d, want 9", len(preds))
	}
	seen := map[Tile]bool{}
	for _, pr := range preds {
		seen[pr] = true
	}
	if !seen[Tile{X: 4, Y: 5, Zoom: 3}] || !seen[Tile{X: 6, Y: 6, Zoom: 3}] {
		t.Errorf("neighborhood incomplete: %v", preds)
	}
}

func TestPrefetcherFollowsMotion(t *testing.T) {
	p := NewPrefetcher(2)
	p.Observe(Tile{X: 0, Y: 0, Zoom: 3})
	preds := p.Observe(Tile{X: 1, Y: 0, Zoom: 3}) // moving +x
	// First prediction must be the next tile along the motion.
	if preds[0] != (Tile{X: 2, Y: 0, Zoom: 3}) {
		t.Errorf("first prediction = %v, want (2,0)", preds[0])
	}
	if preds[1] != (Tile{X: 3, Y: 0, Zoom: 3}) {
		t.Errorf("second prediction = %v, want (3,0)", preds[1])
	}
}

func TestPrefetcherZoomChangeResetsVelocity(t *testing.T) {
	p := NewPrefetcher(2)
	p.Observe(Tile{X: 0, Y: 0, Zoom: 3})
	p.Observe(Tile{X: 1, Y: 0, Zoom: 3})
	// Zoom change: velocity should not be recomputed from cross-zoom delta.
	preds := p.Observe(Tile{X: 10, Y: 10, Zoom: 4})
	// Old velocity (1,0) persists: prediction continues along it.
	if preds[0] != (Tile{X: 11, Y: 10, Zoom: 4}) {
		t.Errorf("prediction after zoom = %v", preds[0])
	}
}

// linearTrace pans straight across a tile row.
func linearTrace(n int) []Tile {
	out := make([]Tile, n)
	for i := range out {
		out[i] = Tile{X: i, Y: 0, Zoom: 5}
	}
	return out
}

func TestSimulateSessionPrefetchBeatsPlainCache(t *testing.T) {
	trace := linearTrace(100)
	loads := 0
	plain := SimulateSession(trace, 16, false, func(Tile) { loads++ })
	loadsPF := 0
	pf := SimulateSession(trace, 16, true, func(Tile) { loadsPF++ })
	if pf.HitRate() <= plain.HitRate() {
		t.Errorf("prefetch hit rate %g <= plain %g", pf.HitRate(), plain.HitRate())
	}
	// A linear pan with lookahead-2 prefetching should hit nearly always
	// after warmup.
	if pf.HitRate() < 0.9 {
		t.Errorf("prefetch hit rate = %g, want >= 0.9", pf.HitRate())
	}
	if plain.HitRate() != 0 {
		t.Errorf("plain cache on a non-repeating pan should never hit, got %g", plain.HitRate())
	}
	if pf.Prefetches == 0 || loadsPF <= loads {
		// Prefetching trades extra loads for latency; both counts recorded.
		t.Logf("loads plain=%d prefetch=%d", loads, loadsPF)
	}
}

func TestSimulateSessionRevisitsHitWithoutPrefetch(t *testing.T) {
	// Back-and-forth pan inside a small area: plain LRU must score hits.
	var trace []Tile
	for i := 0; i < 50; i++ {
		trace = append(trace, Tile{X: i % 4, Y: 0, Zoom: 2})
	}
	stats := SimulateSession(trace, 8, false, func(Tile) {})
	if stats.HitRate() < 0.8 {
		t.Errorf("revisit hit rate = %g", stats.HitRate())
	}
}

func TestSessionStatsZero(t *testing.T) {
	var s SessionStats
	if s.HitRate() != 0 {
		t.Error("zero stats hit rate != 0")
	}
}
