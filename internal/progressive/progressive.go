// Package progressive implements the incremental + approximate computation
// family the survey highlights (Section 2, refs [46,2,69,123]): aggregate
// answers are produced over progressively larger samples, each accompanied
// by a CLT-based confidence interval, so a visualization can render a
// "partially right" answer immediately and refine it — the sampleAction
// model of incremental visualization (Fisher et al., CHI 2012) and the
// online-aggregation core of BlinkDB/VisReduce.
package progressive

import (
	"context"
	"errors"
	"math"
	"math/rand"

	"github.com/lodviz/lodviz/internal/stats"
)

// Estimate is one progressive answer: the current aggregate value plus its
// uncertainty.
type Estimate struct {
	// Value is the running estimate of the aggregate.
	Value float64
	// SampleSize is how many items contributed.
	SampleSize int
	// Fraction is SampleSize / population size.
	Fraction float64
	// CI95 is the half-width of the 95% confidence interval (0 when
	// undefined, e.g. for n < 2).
	CI95 float64
	// Final marks the exact (full-data) answer.
	Final bool
}

// Agg selects the aggregate a progressive run computes.
type Agg int

// Supported progressive aggregates.
const (
	Mean Agg = iota
	Sum
	Count
)

// ErrBadBatch is returned for non-positive batch sizes.
var ErrBadBatch = errors.New("progressive: batch size must be positive")

// z95 is the normal 97.5th percentile used for two-sided 95% intervals.
const z95 = 1.959963984540054

// Run streams progressively refined estimates of the aggregate over values
// to out, sampling without replacement in random order (so every prefix is a
// uniform sample). It closes out when done or when ctx is cancelled —
// cancellation is what gives the "anytime" property.
func Run(ctx context.Context, values []float64, agg Agg, batch int, seed int64, out chan<- Estimate) error {
	defer close(out)
	if batch <= 0 {
		return ErrBadBatch
	}
	n := len(values)
	if n == 0 {
		select {
		case out <- Estimate{Final: true}:
		case <-ctx.Done():
		}
		return nil
	}
	perm := rand.New(rand.NewSource(seed)).Perm(n)
	var acc stats.Online
	for i, idx := range perm {
		acc.Add(values[idx])
		if (i+1)%batch == 0 || i == n-1 {
			est := estimate(&acc, agg, n)
			est.Final = i == n-1
			select {
			case out <- est:
			case <-ctx.Done():
				return ctx.Err()
			}
		}
	}
	return nil
}

// Collect runs the progressive computation synchronously and returns every
// emitted estimate — the convenient form for experiments. Cancelling ctx
// stops the underlying Run between batches.
func Collect(ctx context.Context, values []float64, agg Agg, batch int, seed int64) ([]Estimate, error) {
	out := make(chan Estimate, 16)
	errCh := make(chan error, 1)
	go func() { errCh <- Run(ctx, values, agg, batch, seed, out) }()
	var ests []Estimate
	for e := range out {
		ests = append(ests, e)
	}
	if err := <-errCh; err != nil {
		return nil, err
	}
	return ests, nil
}

// estimate converts the accumulator state into an Estimate with a CLT
// confidence interval, scaled for the chosen aggregate and corrected for
// sampling without replacement (finite population correction).
func estimate(acc *stats.Online, agg Agg, population int) Estimate {
	k := acc.N()
	est := Estimate{SampleSize: k, Fraction: float64(k) / float64(population)}
	se := 0.0
	if k >= 2 {
		fpc := 1 - float64(k)/float64(population)
		if fpc < 0 {
			fpc = 0
		}
		se = math.Sqrt(acc.Variance()/float64(k)) * math.Sqrt(fpc)
	}
	switch agg {
	case Mean:
		est.Value = acc.Mean()
		est.CI95 = z95 * se
	case Sum:
		est.Value = acc.Mean() * float64(population)
		est.CI95 = z95 * se * float64(population)
	case Count:
		// Counting a 0/1 indicator stream: the mean estimates the selectivity.
		est.Value = acc.Mean() * float64(population)
		est.CI95 = z95 * se * float64(population)
	}
	return est
}

// Sampler incrementally grows a uniform sample and exposes the current
// estimate on demand — the pull-based interface interactive front-ends use
// (one Step per frame).
type Sampler struct {
	values []float64
	perm   []int
	next   int
	acc    stats.Online
	agg    Agg
}

// NewSampler prepares a progressive sampler over values.
func NewSampler(values []float64, agg Agg, seed int64) *Sampler {
	return &Sampler{
		values: values,
		perm:   rand.New(rand.NewSource(seed)).Perm(len(values)),
		agg:    agg,
	}
}

// Step consumes up to k more items; it reports false when the data is
// exhausted.
func (s *Sampler) Step(k int) bool {
	for i := 0; i < k && s.next < len(s.perm); i++ {
		s.acc.Add(s.values[s.perm[s.next]])
		s.next++
	}
	return s.next < len(s.perm)
}

// Current returns the present estimate.
func (s *Sampler) Current() Estimate {
	e := estimate(&s.acc, s.agg, len(s.values))
	e.Final = s.next == len(s.values)
	return e
}

// Progress returns the fraction of data consumed.
func (s *Sampler) Progress() float64 {
	if len(s.values) == 0 {
		return 1
	}
	return float64(s.next) / float64(len(s.values))
}
