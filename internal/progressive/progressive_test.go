package progressive

import (
	"context"
	"math"
	"math/rand"
	"testing"
)

func normalValues(seed int64, n int, mean, sd float64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = rng.NormFloat64()*sd + mean
	}
	return vals
}

func TestCollectConvergesToExactMean(t *testing.T) {
	vals := normalValues(1, 10000, 50, 10)
	exact := 0.0
	for _, v := range vals {
		exact += v
	}
	exact /= float64(len(vals))

	ests, err := Collect(context.Background(), vals, Mean, 500, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(ests) != 20 {
		t.Fatalf("estimates = %d, want 20", len(ests))
	}
	last := ests[len(ests)-1]
	if !last.Final {
		t.Error("last estimate not marked Final")
	}
	if math.Abs(last.Value-exact) > 1e-9 {
		t.Errorf("final estimate %g != exact %g", last.Value, exact)
	}
	if last.CI95 > 1e-9 {
		t.Errorf("final CI95 = %g, want ~0 (finite population correction)", last.CI95)
	}
	// Error must broadly shrink: first estimate error vs last-but-one.
	firstErr := math.Abs(ests[0].Value - exact)
	midErr := math.Abs(ests[10].Value - exact)
	if firstErr < midErr/10 && midErr > 1 {
		t.Errorf("error not shrinking: first %g, mid %g", firstErr, midErr)
	}
}

func TestConfidenceIntervalCoverage(t *testing.T) {
	// Across many runs, the 95% CI at ~10% sampling should cover the true
	// mean in the vast majority of runs.
	vals := normalValues(7, 5000, 100, 20)
	exact := 0.0
	for _, v := range vals {
		exact += v
	}
	exact /= float64(len(vals))

	covered, total := 0, 0
	for trial := 0; trial < 100; trial++ {
		ests, err := Collect(context.Background(), vals, Mean, 500, int64(trial))
		if err != nil {
			t.Fatal(err)
		}
		e := ests[0] // 10% sample
		total++
		if math.Abs(e.Value-exact) <= e.CI95 {
			covered++
		}
	}
	if covered < 85 {
		t.Errorf("CI covered %d/100, want >= 85 (nominal 95)", covered)
	}
}

func TestSumAndCountScaling(t *testing.T) {
	vals := make([]float64, 1000)
	for i := range vals {
		vals[i] = 2
	}
	ests, err := Collect(context.Background(), vals, Sum, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	final := ests[len(ests)-1]
	if final.Value != 2000 {
		t.Errorf("sum = %g, want 2000", final.Value)
	}
	// Count over an indicator vector.
	ind := make([]float64, 1000)
	for i := 0; i < 250; i++ {
		ind[i] = 1
	}
	ests, _ = Collect(context.Background(), ind, Count, 100, 1)
	final = ests[len(ests)-1]
	if math.Abs(final.Value-250) > 1e-6 {
		t.Errorf("count = %g, want 250", final.Value)
	}
	// An intermediate estimate should be in a plausible band.
	if ests[2].Value < 50 || ests[2].Value > 450 {
		t.Errorf("intermediate count estimate = %g, implausible", ests[2].Value)
	}
}

func TestRunCancellation(t *testing.T) {
	vals := normalValues(3, 100000, 0, 1)
	ctx, cancel := context.WithCancel(context.Background())
	out := make(chan Estimate)
	errCh := make(chan error, 1)
	go func() { errCh <- Run(ctx, vals, Mean, 100, 1, out) }()
	// Read a few estimates then cancel.
	<-out
	<-out
	cancel()
	for range out {
		// drain until closed
	}
	if err := <-errCh; err != context.Canceled {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

func TestRunEmptyInput(t *testing.T) {
	ests, err := Collect(context.Background(), nil, Mean, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ests) != 1 || !ests[0].Final {
		t.Errorf("empty input ests = %+v", ests)
	}
}

func TestBadBatch(t *testing.T) {
	if _, err := Collect(context.Background(), []float64{1}, Mean, 0, 1); err != ErrBadBatch {
		t.Errorf("err = %v, want ErrBadBatch", err)
	}
}

func TestSamplerStepwise(t *testing.T) {
	vals := normalValues(5, 1000, 10, 2)
	s := NewSampler(vals, Mean, 9)
	if s.Progress() != 0 {
		t.Error("initial progress != 0")
	}
	steps := 0
	for s.Step(100) {
		steps++
		e := s.Current()
		if e.SampleSize != (steps)*100 {
			t.Errorf("step %d sample size = %d", steps, e.SampleSize)
		}
	}
	if s.Progress() != 1 {
		t.Errorf("final progress = %g", s.Progress())
	}
	final := s.Current()
	if !final.Final {
		t.Error("exhausted sampler not Final")
	}
	exact := 0.0
	for _, v := range vals {
		exact += v
	}
	exact /= float64(len(vals))
	if math.Abs(final.Value-exact) > 1e-9 {
		t.Errorf("final %g != exact %g", final.Value, exact)
	}
}

func TestSamplerEmpty(t *testing.T) {
	s := NewSampler(nil, Mean, 1)
	if s.Step(10) {
		t.Error("Step on empty should report done")
	}
	if s.Progress() != 1 {
		t.Error("empty sampler progress != 1")
	}
}

func TestFractionMonotone(t *testing.T) {
	vals := normalValues(11, 2000, 0, 1)
	ests, _ := Collect(context.Background(), vals, Mean, 250, 3)
	for i := 1; i < len(ests); i++ {
		if ests[i].Fraction <= ests[i-1].Fraction {
			t.Errorf("fraction not increasing at %d: %g <= %g", i, ests[i].Fraction, ests[i-1].Fraction)
		}
	}
}
