package progressive

import (
	"context"
	"math"

	"github.com/lodviz/lodviz/internal/stats"
)

// CountEstimate scales a count observed over the first n items of a
// population of known size into a population-level estimate with a CLT 95%
// interval: the observed selectivity count/n is a binomial proportion, so
// its standard error is sqrt(p(1-p)/n), shrunk by the finite-population
// correction as the scan approaches completion. This is the estimator the
// exploration layer's paged ID scans emit mid-scan — each page refines the
// answer, and at n == population the interval collapses to zero and the
// estimate is exact. n = 0 yields the empty estimate.
func CountEstimate(count, n, population int) Estimate {
	if n <= 0 || population <= 0 {
		return Estimate{Final: population <= 0}
	}
	if n > population {
		n = population
	}
	p := float64(count) / float64(n)
	if p < 0 {
		p = 0
	} else if p > 1 {
		p = 1
	}
	est := Estimate{
		Value:      p * float64(population),
		SampleSize: n,
		Fraction:   float64(n) / float64(population),
		Final:      n == population,
	}
	if est.Final {
		est.Value = float64(count)
		return est
	}
	fpc := 1 - float64(n)/float64(population)
	se := math.Sqrt(p * (1 - p) / float64(n) * fpc)
	est.CI95 = z95 * se * float64(population)
	return est
}

// Scan is the context-aware paged driver: it pulls successive pages of
// values from next (done=true marks the last page), folds them into the
// accumulator, and emits a refined CLT-bounded estimate after every page —
// the push counterpart of Sampler for consumers fed by paged ID scans
// rather than in-memory slices. Cancellation is checked between pages, so a
// client that goes away stops the underlying scan; emit returning false
// ends the run early. The final emitted estimate (Final=true once the last
// page lands and the whole population was seen) is also returned.
func Scan(ctx context.Context, agg Agg, population int, next func() (page []float64, done bool, err error), emit func(Estimate) bool) (Estimate, error) {
	var acc stats.Online
	for {
		if err := ctx.Err(); err != nil {
			return Estimate{}, err
		}
		page, done, err := next()
		if err != nil {
			return Estimate{}, err
		}
		for _, v := range page {
			acc.Add(v)
		}
		est := estimate(&acc, agg, population)
		est.Final = done && acc.N() >= population
		if !emit(est) || done {
			return est, nil
		}
	}
}
