package progressive

import (
	"context"
	"errors"
	"math"
	"testing"
)

func TestCountEstimateExactWhenComplete(t *testing.T) {
	e := CountEstimate(37, 100, 100)
	if !e.Final {
		t.Fatal("n == population should be final")
	}
	if e.Value != 37 || e.CI95 != 0 {
		t.Fatalf("final estimate = %+v, want exact 37 with CI 0", e)
	}
	if e.Fraction != 1 {
		t.Fatalf("Fraction = %v, want 1", e.Fraction)
	}
}

func TestCountEstimatePartialScales(t *testing.T) {
	// 10 of 40 observed over a population of 400: estimate 100.
	e := CountEstimate(10, 40, 400)
	if e.Final {
		t.Fatal("partial scan must not be final")
	}
	if math.Abs(e.Value-100) > 1e-9 {
		t.Fatalf("Value = %v, want 100", e.Value)
	}
	if e.CI95 <= 0 {
		t.Fatalf("CI95 = %v, want > 0 for 0 < p < 1", e.CI95)
	}
	if e.SampleSize != 40 || math.Abs(e.Fraction-0.1) > 1e-9 {
		t.Fatalf("SampleSize/Fraction = %d/%v, want 40/0.1", e.SampleSize, e.Fraction)
	}
	// Manual CLT check: z95 * sqrt(p(1-p)/n * fpc) * N.
	p, n, N := 0.25, 40.0, 400.0
	want := z95 * math.Sqrt(p*(1-p)/n*(1-n/N)) * N
	if math.Abs(e.CI95-want) > 1e-9 {
		t.Fatalf("CI95 = %v, want %v", e.CI95, want)
	}
}

func TestCountEstimateIntervalShrinks(t *testing.T) {
	prev := math.Inf(1)
	for _, n := range []int{50, 100, 200, 399} {
		e := CountEstimate(n/2, n, 400)
		if e.CI95 >= prev {
			t.Fatalf("CI95 did not shrink at n=%d: %v >= %v", n, e.CI95, prev)
		}
		prev = e.CI95
	}
}

func TestCountEstimateEdgeCases(t *testing.T) {
	if e := CountEstimate(0, 0, 100); e.Final || e.Value != 0 {
		t.Fatalf("n=0: %+v, want empty non-final estimate", e)
	}
	if e := CountEstimate(0, 10, 0); !e.Final {
		t.Fatalf("population=0: %+v, want final empty estimate", e)
	}
	// Zero observed count: estimate 0 with a collapsed interval (p = 0).
	if e := CountEstimate(0, 10, 100); e.Value != 0 || e.CI95 != 0 {
		t.Fatalf("count=0: %+v, want 0 +/- 0", e)
	}
	// n beyond population clamps to exact.
	if e := CountEstimate(5, 150, 100); !e.Final || e.Value != 5 {
		t.Fatalf("n > population: %+v, want final exact", e)
	}
}

func TestScanEmitsPerPageAndFinishes(t *testing.T) {
	// A 0/1 indicator stream: 4 of the 6 population items match.
	pages := [][]float64{{1, 0, 1}, {1, 1}, {0}}
	i := 0
	next := func() ([]float64, bool, error) {
		p := pages[i]
		i++
		return p, i == len(pages), nil
	}
	var emitted []Estimate
	final, err := Scan(context.Background(), Count, 6, next, func(e Estimate) bool {
		emitted = append(emitted, e)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(emitted) != 3 {
		t.Fatalf("emitted %d estimates, want one per page", len(emitted))
	}
	if !final.Final || math.Abs(final.Value-4) > 1e-9 {
		t.Fatalf("final = %+v, want final count 4", final)
	}
	for i := 1; i < len(emitted); i++ {
		if emitted[i].SampleSize <= emitted[i-1].SampleSize {
			t.Fatal("sample size must grow per page")
		}
	}
}

func TestScanStopsOnEmitFalse(t *testing.T) {
	calls := 0
	next := func() ([]float64, bool, error) {
		calls++
		return []float64{1}, false, nil
	}
	_, err := Scan(context.Background(), Count, 100, next, func(Estimate) bool { return false })
	if err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("next called %d times after emit false, want 1", calls)
	}
}

func TestScanPropagatesErrors(t *testing.T) {
	boom := errors.New("boom")
	_, err := Scan(context.Background(), Count, 10,
		func() ([]float64, bool, error) { return nil, false, boom },
		func(Estimate) bool { return true })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = Scan(ctx, Count, 10,
		func() ([]float64, bool, error) { return []float64{1}, false, nil },
		func(Estimate) bool { return true })
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
