package rdf

import "strings"

// Compare imposes the SPARQL-style total order over RDF terms used by ORDER
// BY: blank nodes sort before IRIs, which sort before literals. Within
// literals, values that are comparable in the XSD value space (numerics,
// booleans, temporals, strings) are compared by value; incomparable literals
// fall back to (datatype, lexical) ordering so the result is still a total
// order. It returns -1, 0, or +1.
func Compare(a, b Term) int {
	if a == nil || b == nil {
		switch {
		case a == nil && b == nil:
			return 0
		case a == nil:
			return -1
		default:
			return 1
		}
	}
	ka, kb := a.Kind(), b.Kind()
	if ka != kb {
		if ka < kb {
			return -1
		}
		return 1
	}
	switch ka {
	case KindBlank:
		return strings.Compare(string(a.(BlankNode)), string(b.(BlankNode)))
	case KindIRI:
		return strings.Compare(string(a.(IRI)), string(b.(IRI)))
	default:
		return compareLiterals(a.(Literal), b.(Literal))
	}
}

func compareLiterals(a, b Literal) int {
	// Numeric comparison across numeric datatypes.
	if fa, ok := a.Float(); ok {
		if fb, ok := b.Float(); ok {
			switch {
			case fa < fb:
				return -1
			case fa > fb:
				return 1
			}
			return tieBreak(a, b)
		}
	}
	// Temporal comparison.
	if ta, ok := a.Time(); ok {
		if tb, ok := b.Time(); ok {
			switch {
			case ta.Before(tb):
				return -1
			case ta.After(tb):
				return 1
			}
			return tieBreak(a, b)
		}
	}
	// Boolean comparison (false < true).
	if ba, ok := a.Bool(); ok {
		if bb, ok := b.Bool(); ok {
			switch {
			case !ba && bb:
				return -1
			case ba && !bb:
				return 1
			}
			return tieBreak(a, b)
		}
	}
	// Plain / lang strings compare lexically.
	if isStringish(a) && isStringish(b) {
		if c := strings.Compare(a.Lexical, b.Lexical); c != 0 {
			return c
		}
		return strings.Compare(a.Lang, b.Lang)
	}
	return tieBreak(a, b)
}

func isStringish(l Literal) bool {
	return l.Datatype == XSDString || l.Datatype == RDFLangString || l.Datatype == ""
}

// tieBreak orders literals that compare equal in the value space (or are
// incomparable) by datatype then lexical form then language, keeping Compare
// a total order.
func tieBreak(a, b Literal) int {
	if c := strings.Compare(string(a.Datatype), string(b.Datatype)); c != 0 {
		return c
	}
	if c := strings.Compare(a.Lexical, b.Lexical); c != 0 {
		return c
	}
	return strings.Compare(a.Lang, b.Lang)
}

// Equal reports whether two terms are the same RDF term.
func Equal(a, b Term) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	return a == b
}

// EffectiveBoolean computes the SPARQL effective boolean value (EBV) of a
// term: booleans by value, numerics by non-zero-ness, strings by
// non-emptiness. The second result is false when the term has no EBV (e.g.
// IRIs).
func EffectiveBoolean(t Term) (bool, bool) {
	l, ok := t.(Literal)
	if !ok {
		return false, false
	}
	if v, ok := l.Bool(); ok {
		return v, true
	}
	if v, ok := l.Float(); ok {
		return v != 0, true
	}
	if isStringish(l) {
		return l.Lexical != "", true
	}
	return false, false
}
