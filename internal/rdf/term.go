// Package rdf implements the RDF data model used throughout lodviz: terms
// (IRIs, blank nodes, literals), triples, and the XSD value system needed for
// ordering, filtering and aggregating Web-of-Data values.
//
// The model follows RDF 1.1 Concepts. Terms are small immutable values that
// are comparable with == (literals are normalized on construction), so they
// can be used directly as map keys.
package rdf

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// TermKind discriminates the three kinds of RDF terms.
type TermKind int

// The order of the kinds matches the SPARQL ORDER BY term ordering
// (blank nodes < IRIs < literals), so Compare can order by kind numerically.
const (
	// KindBlank identifies a blank node term.
	KindBlank TermKind = iota
	// KindIRI identifies an IRI term.
	KindIRI
	// KindLiteral identifies a literal term.
	KindLiteral
)

func (k TermKind) String() string {
	switch k {
	case KindIRI:
		return "iri"
	case KindBlank:
		return "blank"
	case KindLiteral:
		return "literal"
	default:
		return fmt.Sprintf("TermKind(%d)", int(k))
	}
}

// Term is an RDF term: an IRI, a blank node, or a literal.
//
// All implementations are comparable value types; two terms are equal in the
// RDF sense exactly when they are == in Go.
type Term interface {
	// Kind reports which kind of term this is.
	Kind() TermKind
	// String renders the term in N-Triples syntax.
	String() string
	// value is a marker preventing foreign implementations, which keeps the
	// == equality guarantee sound.
	value() Term
}

// IRI is an RDF IRI reference such as <http://example.org/alice>.
type IRI string

// Kind implements Term.
func (IRI) Kind() TermKind { return KindIRI }

// String renders the IRI in N-Triples syntax.
func (i IRI) String() string { return "<" + string(i) + ">" }

func (i IRI) value() Term { return i }

// LocalName returns the part of the IRI after the last '#', '/' or ':',
// which is what most visualization front-ends display as a label fallback.
func (i IRI) LocalName() string {
	s := string(i)
	if idx := strings.LastIndexAny(s, "#/:"); idx >= 0 && idx+1 < len(s) {
		return s[idx+1:]
	}
	return s
}

// Namespace returns the prefix of the IRI up to and including the last '#',
// '/' or ':'. For IRIs with no separator it returns the empty string.
func (i IRI) Namespace() string {
	s := string(i)
	if idx := strings.LastIndexAny(s, "#/:"); idx >= 0 {
		return s[:idx+1]
	}
	return ""
}

// BlankNode is an RDF blank node with a document-scoped label, e.g. _:b12.
type BlankNode string

// Kind implements Term.
func (BlankNode) Kind() TermKind { return KindBlank }

// String renders the blank node in N-Triples syntax.
func (b BlankNode) String() string { return "_:" + string(b) }

func (b BlankNode) value() Term { return b }

// Literal is an RDF literal: a lexical form plus a datatype IRI, and for
// rdf:langString literals a language tag.
//
// Construct literals with NewLiteral, NewLangLiteral or the typed helpers
// (NewInteger, NewDouble, ...) so normalization invariants hold.
type Literal struct {
	// Lexical is the lexical form, e.g. "42" or "hello".
	Lexical string
	// Datatype is the datatype IRI. Plain literals carry XSDString;
	// language-tagged literals carry RDFLangString.
	Datatype IRI
	// Lang is the language tag (lowercased), empty unless Datatype is
	// rdf:langString.
	Lang string
}

// Kind implements Term.
func (Literal) Kind() TermKind { return KindLiteral }

// String renders the literal in N-Triples syntax.
func (l Literal) String() string {
	q := quoteLiteral(l.Lexical)
	switch {
	case l.Lang != "":
		return q + "@" + l.Lang
	case l.Datatype != "" && l.Datatype != XSDString:
		return q + "^^" + l.Datatype.String()
	default:
		return q
	}
}

func (l Literal) value() Term { return l }

// quoteLiteral escapes a lexical form for N-Triples output.
func quoteLiteral(s string) string {
	var b strings.Builder
	b.Grow(len(s) + 2)
	b.WriteByte('"')
	for _, r := range s {
		switch r {
		case '"':
			b.WriteString(`\"`)
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		case '\r':
			b.WriteString(`\r`)
		case '\t':
			b.WriteString(`\t`)
		default:
			b.WriteRune(r)
		}
	}
	b.WriteByte('"')
	return b.String()
}

// NewLiteral returns a plain (xsd:string) literal.
func NewLiteral(lexical string) Literal {
	return Literal{Lexical: lexical, Datatype: XSDString}
}

// NewTypedLiteral returns a literal with an explicit datatype.
func NewTypedLiteral(lexical string, datatype IRI) Literal {
	if datatype == "" {
		datatype = XSDString
	}
	return Literal{Lexical: lexical, Datatype: datatype}
}

// NewLangLiteral returns a language-tagged literal. The tag is lowercased as
// required for term equality in RDF 1.1.
func NewLangLiteral(lexical, lang string) Literal {
	return Literal{Lexical: lexical, Datatype: RDFLangString, Lang: strings.ToLower(lang)}
}

// NewInteger returns an xsd:integer literal.
func NewInteger(v int64) Literal {
	return Literal{Lexical: strconv.FormatInt(v, 10), Datatype: XSDInteger}
}

// NewDouble returns an xsd:double literal.
func NewDouble(v float64) Literal {
	return Literal{Lexical: strconv.FormatFloat(v, 'g', -1, 64), Datatype: XSDDouble}
}

// NewDecimal returns an xsd:decimal literal.
func NewDecimal(v float64) Literal {
	return Literal{Lexical: strconv.FormatFloat(v, 'f', -1, 64), Datatype: XSDDecimal}
}

// NewBoolean returns an xsd:boolean literal.
func NewBoolean(v bool) Literal {
	return Literal{Lexical: strconv.FormatBool(v), Datatype: XSDBoolean}
}

// NewDateTime returns an xsd:dateTime literal in RFC 3339 / XSD canonical form.
func NewDateTime(t time.Time) Literal {
	return Literal{Lexical: t.UTC().Format("2006-01-02T15:04:05Z"), Datatype: XSDDateTime}
}

// NewDate returns an xsd:date literal.
func NewDate(t time.Time) Literal {
	return Literal{Lexical: t.UTC().Format("2006-01-02"), Datatype: XSDDate}
}

// NewYear returns an xsd:gYear literal.
func NewYear(y int) Literal {
	return Literal{Lexical: fmt.Sprintf("%04d", y), Datatype: XSDGYear}
}

// IsNumeric reports whether the literal has a numeric XSD datatype.
func (l Literal) IsNumeric() bool {
	switch l.Datatype {
	case XSDInteger, XSDDecimal, XSDDouble, XSDFloat, XSDInt, XSDLong,
		XSDShort, XSDByte, XSDNonNegativeInteger, XSDPositiveInteger,
		XSDNegativeInteger, XSDNonPositiveInteger, XSDUnsignedInt,
		XSDUnsignedLong:
		return true
	}
	return false
}

// IsTemporal reports whether the literal has a date/time XSD datatype.
func (l Literal) IsTemporal() bool {
	switch l.Datatype {
	case XSDDateTime, XSDDate, XSDGYear, XSDGYearMonth, XSDTime:
		return true
	}
	return false
}

// Float returns the numeric value of the literal, if it has one.
func (l Literal) Float() (float64, bool) {
	if !l.IsNumeric() {
		return 0, false
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(l.Lexical), 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// Int returns the integer value of the literal, if it has one.
func (l Literal) Int() (int64, bool) {
	switch l.Datatype {
	case XSDInteger, XSDInt, XSDLong, XSDShort, XSDByte,
		XSDNonNegativeInteger, XSDPositiveInteger, XSDNegativeInteger,
		XSDNonPositiveInteger, XSDUnsignedInt, XSDUnsignedLong:
		v, err := strconv.ParseInt(strings.TrimSpace(l.Lexical), 10, 64)
		if err != nil {
			return 0, false
		}
		return v, true
	}
	return 0, false
}

// Bool returns the boolean value of the literal, if it has one.
func (l Literal) Bool() (bool, bool) {
	if l.Datatype != XSDBoolean {
		return false, false
	}
	switch strings.TrimSpace(l.Lexical) {
	case "true", "1":
		return true, true
	case "false", "0":
		return false, true
	}
	return false, false
}

// Time returns the temporal value of the literal, if it has one.
func (l Literal) Time() (time.Time, bool) {
	lex := strings.TrimSpace(l.Lexical)
	var layouts []string
	switch l.Datatype {
	case XSDDateTime:
		layouts = []string{"2006-01-02T15:04:05Z07:00", "2006-01-02T15:04:05", "2006-01-02T15:04:05.999999999Z07:00"}
	case XSDDate:
		layouts = []string{"2006-01-02", "2006-01-02Z07:00"}
	case XSDGYear:
		layouts = []string{"2006"}
	case XSDGYearMonth:
		layouts = []string{"2006-01"}
	case XSDTime:
		layouts = []string{"15:04:05", "15:04:05Z07:00"}
	default:
		return time.Time{}, false
	}
	for _, layout := range layouts {
		if t, err := time.Parse(layout, lex); err == nil {
			return t, true
		}
	}
	return time.Time{}, false
}

// Triple is an RDF statement (subject, predicate, object).
type Triple struct {
	// S is the subject: an IRI or a blank node.
	S Term
	// P is the predicate: always an IRI.
	P IRI
	// O is the object: any term.
	O Term
}

// String renders the triple as one N-Triples line (without newline).
func (t Triple) String() string {
	return t.S.String() + " " + t.P.String() + " " + t.O.String() + " ."
}

// Valid reports whether the triple is well-formed per RDF 1.1: the subject is
// an IRI or blank node, the predicate a non-empty IRI, and the object any
// non-nil term.
func (t Triple) Valid() bool {
	if t.S == nil || t.O == nil || t.P == "" {
		return false
	}
	if t.S.Kind() == KindLiteral {
		return false
	}
	return true
}

// T is a convenience constructor for triples in tests and examples.
func T(s Term, p IRI, o Term) Triple { return Triple{S: s, P: p, O: o} }
