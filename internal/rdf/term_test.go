package rdf

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestIRIString(t *testing.T) {
	i := IRI("http://example.org/alice")
	if got, want := i.String(), "<http://example.org/alice>"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	if i.Kind() != KindIRI {
		t.Errorf("Kind() = %v, want KindIRI", i.Kind())
	}
}

func TestIRILocalNameAndNamespace(t *testing.T) {
	tests := []struct {
		iri   IRI
		local string
		ns    string
	}{
		{"http://example.org/alice", "alice", "http://example.org/"},
		{"http://example.org/ns#Person", "Person", "http://example.org/ns#"},
		{"urn:x", "x", "urn:"},
		{"noseparator", "noseparator", ""},
		{"http://example.org/", "http://example.org/", "http://example.org/"},
	}
	for _, tt := range tests {
		if got := tt.iri.LocalName(); got != tt.local {
			t.Errorf("LocalName(%q) = %q, want %q", tt.iri, got, tt.local)
		}
		if got := tt.iri.Namespace(); got != tt.ns {
			t.Errorf("Namespace(%q) = %q, want %q", tt.iri, got, tt.ns)
		}
	}
}

func TestBlankNodeString(t *testing.T) {
	b := BlankNode("b1")
	if got, want := b.String(), "_:b1"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	if b.Kind() != KindBlank {
		t.Errorf("Kind() = %v, want KindBlank", b.Kind())
	}
}

func TestLiteralString(t *testing.T) {
	tests := []struct {
		lit  Literal
		want string
	}{
		{NewLiteral("hello"), `"hello"`},
		{NewLangLiteral("hello", "EN"), `"hello"@en`},
		{NewInteger(42), `"42"^^<http://www.w3.org/2001/XMLSchema#integer>`},
		{NewLiteral(`say "hi"`), `"say \"hi\""`},
		{NewLiteral("a\nb\tc\\d"), `"a\nb\tc\\d"`},
	}
	for _, tt := range tests {
		if got := tt.lit.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
}

func TestLiteralEqualityAsMapKey(t *testing.T) {
	m := map[Term]int{}
	m[NewLiteral("x")] = 1
	m[NewLangLiteral("x", "en")] = 2
	m[NewInteger(7)] = 3
	if len(m) != 3 {
		t.Fatalf("expected 3 distinct keys, got %d", len(m))
	}
	if m[NewLiteral("x")] != 1 || m[NewLangLiteral("x", "EN")] != 2 {
		t.Error("literal equality via == not value-based")
	}
}

func TestNumericAccessors(t *testing.T) {
	if v, ok := NewInteger(-5).Int(); !ok || v != -5 {
		t.Errorf("Int() = %d,%v", v, ok)
	}
	if v, ok := NewDouble(2.5).Float(); !ok || v != 2.5 {
		t.Errorf("Float() = %g,%v", v, ok)
	}
	if _, ok := NewLiteral("2.5").Float(); ok {
		t.Error("plain string literal must not parse as numeric")
	}
	if v, ok := NewDecimal(1.25).Float(); !ok || v != 1.25 {
		t.Errorf("decimal Float() = %g,%v", v, ok)
	}
	if _, ok := (Literal{Lexical: "zzz", Datatype: XSDInteger}).Int(); ok {
		t.Error("malformed integer must not parse")
	}
}

func TestBooleanAccessor(t *testing.T) {
	cases := []struct {
		lex  string
		want bool
		ok   bool
	}{{"true", true, true}, {"false", false, true}, {"1", true, true}, {"0", false, true}, {"yes", false, false}}
	for _, tt := range cases {
		got, ok := (Literal{Lexical: tt.lex, Datatype: XSDBoolean}).Bool()
		if got != tt.want || ok != tt.ok {
			t.Errorf("Bool(%q) = %v,%v want %v,%v", tt.lex, got, ok, tt.want, tt.ok)
		}
	}
}

func TestTemporalAccessor(t *testing.T) {
	ts := time.Date(2015, 3, 15, 10, 30, 0, 0, time.UTC)
	l := NewDateTime(ts)
	got, ok := l.Time()
	if !ok || !got.Equal(ts) {
		t.Errorf("Time() = %v,%v want %v", got, ok, ts)
	}
	d := NewDate(ts)
	if gd, ok := d.Time(); !ok || gd.Year() != 2015 || gd.Month() != 3 {
		t.Errorf("date Time() = %v,%v", gd, ok)
	}
	y := NewYear(1996)
	if gy, ok := y.Time(); !ok || gy.Year() != 1996 {
		t.Errorf("gYear Time() = %v,%v", gy, ok)
	}
	if !l.IsTemporal() || NewLiteral("x").IsTemporal() {
		t.Error("IsTemporal misclassifies")
	}
}

func TestTripleStringAndValid(t *testing.T) {
	tr := T(IRI("http://e/s"), IRI("http://e/p"), NewLiteral("o"))
	want := `<http://e/s> <http://e/p> "o" .`
	if tr.String() != want {
		t.Errorf("String() = %q, want %q", tr.String(), want)
	}
	if !tr.Valid() {
		t.Error("triple should be valid")
	}
	if (Triple{S: NewLiteral("x"), P: "p", O: IRI("o")}).Valid() {
		t.Error("literal subject must be invalid")
	}
	if (Triple{S: IRI("s"), P: "", O: IRI("o")}).Valid() {
		t.Error("empty predicate must be invalid")
	}
	if (Triple{S: IRI("s"), P: "p"}).Valid() {
		t.Error("nil object must be invalid")
	}
}

func TestCompareKindOrder(t *testing.T) {
	b, i, l := BlankNode("b"), IRI("http://e/x"), NewLiteral("x")
	if Compare(b, i) >= 0 || Compare(i, l) >= 0 || Compare(b, l) >= 0 {
		t.Error("kind order must be blank < IRI < literal")
	}
	if Compare(l, i) <= 0 || Compare(i, b) <= 0 {
		t.Error("comparison must be antisymmetric across kinds")
	}
	if Compare(nil, i) >= 0 || Compare(i, nil) <= 0 || Compare(nil, nil) != 0 {
		t.Error("nil ordering broken")
	}
}

func TestCompareNumericAcrossDatatypes(t *testing.T) {
	a := NewInteger(2)
	b := NewDouble(2.5)
	c := NewDecimal(2.0)
	if Compare(a, b) >= 0 {
		t.Error("2 < 2.5 across integer/double")
	}
	if Compare(a, c) == 0 {
		t.Error("equal-valued literals of different datatype must tie-break, not equal... expected nonzero")
	}
	if Compare(a, a) != 0 {
		t.Error("identical literal must compare equal")
	}
}

func TestCompareTemporalAndBoolean(t *testing.T) {
	t1 := NewDateTime(time.Date(2010, 1, 1, 0, 0, 0, 0, time.UTC))
	t2 := NewDateTime(time.Date(2016, 3, 15, 0, 0, 0, 0, time.UTC))
	if Compare(t1, t2) >= 0 {
		t.Error("2010 < 2016")
	}
	if Compare(NewBoolean(false), NewBoolean(true)) >= 0 {
		t.Error("false < true")
	}
}

func TestCompareStrings(t *testing.T) {
	if Compare(NewLiteral("apple"), NewLiteral("banana")) >= 0 {
		t.Error("apple < banana")
	}
	if Compare(NewLangLiteral("x", "de"), NewLangLiteral("x", "en")) >= 0 {
		t.Error("lang tag must break ties")
	}
}

func TestEffectiveBoolean(t *testing.T) {
	tests := []struct {
		term Term
		want bool
		ok   bool
	}{
		{NewBoolean(true), true, true},
		{NewBoolean(false), false, true},
		{NewInteger(0), false, true},
		{NewInteger(3), true, true},
		{NewLiteral(""), false, true},
		{NewLiteral("x"), true, true},
		{IRI("http://e/x"), false, false},
	}
	for _, tt := range tests {
		got, ok := EffectiveBoolean(tt.term)
		if got != tt.want || ok != tt.ok {
			t.Errorf("EffectiveBoolean(%v) = %v,%v want %v,%v", tt.term, got, ok, tt.want, tt.ok)
		}
	}
}

// Property: Compare is a total order — antisymmetric and transitive over a
// mixed population of generated terms.
func TestCompareIsTotalOrderProperty(t *testing.T) {
	gen := func(seedA, seedB uint16) bool {
		a, b := termFromSeed(seedA), termFromSeed(seedB)
		ab, ba := Compare(a, b), Compare(b, a)
		if ab != -ba {
			return false
		}
		if a == b && ab != 0 {
			return false
		}
		return true
	}
	if err := quick.Check(gen, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestCompareTransitivityProperty(t *testing.T) {
	gen := func(sa, sb, sc uint16) bool {
		a, b, c := termFromSeed(sa), termFromSeed(sb), termFromSeed(sc)
		if Compare(a, b) <= 0 && Compare(b, c) <= 0 {
			return Compare(a, c) <= 0
		}
		return true
	}
	if err := quick.Check(gen, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

// termFromSeed deterministically produces a diverse term population.
func termFromSeed(seed uint16) Term {
	switch seed % 7 {
	case 0:
		return IRI("http://example.org/r" + itoa(int(seed)))
	case 1:
		return BlankNode("b" + itoa(int(seed%13)))
	case 2:
		return NewInteger(int64(seed%29) - 14)
	case 3:
		return NewDouble(float64(seed%31)/3.0 - 5)
	case 4:
		return NewLiteral(strings.Repeat("s", int(seed%5)) + itoa(int(seed%11)))
	case 5:
		return NewBoolean(seed%2 == 0)
	default:
		return NewDateTime(time.Date(1990+int(seed%40), time.Month(1+seed%12), 1+int(seed%28), 0, 0, 0, 0, time.UTC))
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	neg := i < 0
	if neg {
		i = -i
	}
	var b [20]byte
	pos := len(b)
	for i > 0 {
		pos--
		b[pos] = byte('0' + i%10)
		i /= 10
	}
	if neg {
		pos--
		b[pos] = '-'
	}
	return string(b[pos:])
}

// Property: round-trip of float literal construction preserves the value.
func TestDoubleRoundTripProperty(t *testing.T) {
	f := func(v float64) bool {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return true
		}
		got, ok := NewDouble(v).Float()
		return ok && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLangTagNormalization(t *testing.T) {
	if NewLangLiteral("x", "EN-GB").Lang != "en-gb" {
		t.Error("language tags must be lowercased")
	}
}

func TestTermKindString(t *testing.T) {
	if KindIRI.String() != "iri" || KindBlank.String() != "blank" || KindLiteral.String() != "literal" {
		t.Error("TermKind.String labels wrong")
	}
	if TermKind(42).String() != "TermKind(42)" {
		t.Error("unknown kind label wrong")
	}
}
