package rdf

// Namespace prefixes for the vocabularies the Web-of-Data systems in the
// survey rely on.
const (
	RDFNS  = "http://www.w3.org/1999/02/22-rdf-syntax-ns#"
	RDFSNS = "http://www.w3.org/2000/01/rdf-schema#"
	OWLNS  = "http://www.w3.org/2002/07/owl#"
	XSDNS  = "http://www.w3.org/2001/XMLSchema#"
	// QBNS is the W3C RDF Data Cube vocabulary (CubeViz, OpenCube, LDCE).
	QBNS = "http://purl.org/linked-data/cube#"
	// GeoNS is the W3C WGS84 geo vocabulary (map4rdf, Facete, SexTant).
	GeoNS = "http://www.w3.org/2003/01/geo/wgs84_pos#"
	// FOAFNS appears in most LOD browsing examples (LENA: "more complex than foaf").
	FOAFNS = "http://xmlns.com/foaf/0.1/"
	// DCTNS is Dublin Core terms.
	DCTNS = "http://purl.org/dc/terms/"
	// SKOSNS is used by code lists in statistical linked data.
	SKOSNS = "http://www.w3.org/2004/02/skos/core#"
)

// RDF vocabulary.
const (
	RDFType       IRI = RDFNS + "type"
	RDFProperty   IRI = RDFNS + "Property"
	RDFLangString IRI = RDFNS + "langString"
	RDFFirst      IRI = RDFNS + "first"
	RDFRest       IRI = RDFNS + "rest"
	RDFNil        IRI = RDFNS + "nil"
	RDFValue      IRI = RDFNS + "value"
)

// RDFS vocabulary.
const (
	RDFSLabel      IRI = RDFSNS + "label"
	RDFSComment    IRI = RDFSNS + "comment"
	RDFSClass      IRI = RDFSNS + "Class"
	RDFSSubClassOf IRI = RDFSNS + "subClassOf"
	RDFSSubPropOf  IRI = RDFSNS + "subPropertyOf"
	RDFSDomain     IRI = RDFSNS + "domain"
	RDFSRange      IRI = RDFSNS + "range"
	RDFSSeeAlso    IRI = RDFSNS + "seeAlso"
	RDFSResource   IRI = RDFSNS + "Resource"
)

// OWL vocabulary (the fragment ontology visualizers care about).
const (
	OWLClass              IRI = OWLNS + "Class"
	OWLThing              IRI = OWLNS + "Thing"
	OWLObjectProperty     IRI = OWLNS + "ObjectProperty"
	OWLDatatypeProperty   IRI = OWLNS + "DatatypeProperty"
	OWLEquivalentClass    IRI = OWLNS + "equivalentClass"
	OWLDisjointWith       IRI = OWLNS + "disjointWith"
	OWLSameAs             IRI = OWLNS + "sameAs"
	OWLInverseOf          IRI = OWLNS + "inverseOf"
	OWLFunctionalProperty IRI = OWLNS + "FunctionalProperty"
)

// XSD datatypes.
const (
	XSDString             IRI = XSDNS + "string"
	XSDBoolean            IRI = XSDNS + "boolean"
	XSDInteger            IRI = XSDNS + "integer"
	XSDInt                IRI = XSDNS + "int"
	XSDLong               IRI = XSDNS + "long"
	XSDShort              IRI = XSDNS + "short"
	XSDByte               IRI = XSDNS + "byte"
	XSDDecimal            IRI = XSDNS + "decimal"
	XSDFloat              IRI = XSDNS + "float"
	XSDDouble             IRI = XSDNS + "double"
	XSDDateTime           IRI = XSDNS + "dateTime"
	XSDDate               IRI = XSDNS + "date"
	XSDTime               IRI = XSDNS + "time"
	XSDGYear              IRI = XSDNS + "gYear"
	XSDGYearMonth         IRI = XSDNS + "gYearMonth"
	XSDAnyURI             IRI = XSDNS + "anyURI"
	XSDNonNegativeInteger IRI = XSDNS + "nonNegativeInteger"
	XSDNonPositiveInteger IRI = XSDNS + "nonPositiveInteger"
	XSDPositiveInteger    IRI = XSDNS + "positiveInteger"
	XSDNegativeInteger    IRI = XSDNS + "negativeInteger"
	XSDUnsignedInt        IRI = XSDNS + "unsignedInt"
	XSDUnsignedLong       IRI = XSDNS + "unsignedLong"
)

// RDF Data Cube vocabulary (W3C Recommendation), used by the statistical
// Linked Data systems surveyed in Section 3.3.
const (
	QBDataSet           IRI = QBNS + "DataSet"
	QBObservation       IRI = QBNS + "Observation"
	QBDataStructureDef  IRI = QBNS + "DataStructureDefinition"
	QBComponent         IRI = QBNS + "component"
	QBDimension         IRI = QBNS + "dimension"
	QBMeasure           IRI = QBNS + "measure"
	QBAttribute         IRI = QBNS + "attribute"
	QBDataSetProp       IRI = QBNS + "dataSet"
	QBStructure         IRI = QBNS + "structure"
	QBSlice             IRI = QBNS + "Slice"
	QBSliceKey          IRI = QBNS + "SliceKey"
	QBDimensionProperty IRI = QBNS + "DimensionProperty"
	QBMeasureProperty   IRI = QBNS + "MeasureProperty"
)

// WGS84 geo vocabulary.
const (
	GeoLat   IRI = GeoNS + "lat"
	GeoLong  IRI = GeoNS + "long"
	GeoPoint IRI = GeoNS + "Point"
)

// FOAF vocabulary fragment used by examples and generators.
const (
	FOAFPerson IRI = FOAFNS + "Person"
	FOAFName   IRI = FOAFNS + "name"
	FOAFKnows  IRI = FOAFNS + "knows"
	FOAFAge    IRI = FOAFNS + "age"
	FOAFMbox   IRI = FOAFNS + "mbox"
)

// WellKnownPrefixes maps common prefix labels to their namespaces; the Turtle
// serializer, the CLI and examples use it for compact output.
var WellKnownPrefixes = map[string]string{
	"rdf":  RDFNS,
	"rdfs": RDFSNS,
	"owl":  OWLNS,
	"xsd":  XSDNS,
	"qb":   QBNS,
	"geo":  GeoNS,
	"foaf": FOAFNS,
	"dct":  DCTNS,
	"skos": SKOSNS,
}
