// Package recommend implements visualization recommendation in the style of
// LinkDaViz, Vis Wizard and LDVizWiz (survey §3.2, refs [129,131,11]; the
// database-side analogues are SeeDB and Voyager [134,139]): columns are
// profiled into data-characteristic vectors, candidate (visualization type ×
// column binding) pairs are enumerated, and heuristic suitability scores
// rank them.
package recommend

import (
	"sort"

	"github.com/lodviz/lodviz/internal/rdf"
	"github.com/lodviz/lodviz/internal/vis"
)

// ColumnKind classifies a data column the way the wizards' heuristics do.
type ColumnKind int

// Column kinds, ordered roughly by specificity.
const (
	Numeric ColumnKind = iota
	Temporal
	Categorical
	GeoPoint
	Entity // IRIs — graph-able
	Text
)

func (k ColumnKind) String() string {
	switch k {
	case Numeric:
		return "numeric"
	case Temporal:
		return "temporal"
	case Categorical:
		return "categorical"
	case GeoPoint:
		return "geo"
	case Entity:
		return "entity"
	default:
		return "text"
	}
}

// Profile describes one column of the data selected for visualization.
type Profile struct {
	// Name identifies the column (predicate local name, SPARQL var, ...).
	Name string
	Kind ColumnKind
	// Cardinality is the number of distinct values.
	Cardinality int
	// Rows is the number of rows the column covers.
	Rows int
	// Coverage is the fraction of rows with a value (0..1).
	Coverage float64
}

// ProfileTerms derives a Profile from a sample of RDF terms.
func ProfileTerms(name string, terms []rdf.Term) Profile {
	p := Profile{Name: name, Rows: len(terms)}
	distinct := map[rdf.Term]struct{}{}
	numeric, temporal, iris, withValue := 0, 0, 0, 0
	for _, t := range terms {
		if t == nil {
			continue
		}
		withValue++
		distinct[t] = struct{}{}
		switch tt := t.(type) {
		case rdf.IRI:
			iris++
		case rdf.Literal:
			if tt.IsNumeric() {
				numeric++
			} else if tt.IsTemporal() {
				temporal++
			}
		}
	}
	p.Cardinality = len(distinct)
	if p.Rows > 0 {
		p.Coverage = float64(withValue) / float64(p.Rows)
	}
	switch {
	case withValue == 0:
		p.Kind = Text
	case numeric*10 >= withValue*9:
		p.Kind = Numeric
	case temporal*10 >= withValue*9:
		p.Kind = Temporal
	case iris*10 >= withValue*9:
		p.Kind = Entity
	case p.Cardinality <= 25 || p.Cardinality*10 <= withValue:
		p.Kind = Categorical
	default:
		p.Kind = Text
	}
	return p
}

// Recommendation is one ranked visualization suggestion.
type Recommendation struct {
	// Type is the suggested visualization type.
	Type vis.Type
	// Bindings maps visual channels ("x", "y", "color", "size") to column
	// names.
	Bindings map[string]string
	// Score in (0,1] — higher is more suitable.
	Score float64
	// Reason is a human-readable justification.
	Reason string
}

// Recommend ranks visualization types for the given column profiles,
// returning suggestions sorted by score descending.
func Recommend(cols []Profile) []Recommendation {
	var out []Recommendation
	add := func(t vis.Type, score float64, reason string, bindings map[string]string) {
		if score > 0 {
			out = append(out, Recommendation{Type: t, Bindings: bindings, Score: score, Reason: reason})
		}
	}
	byKind := map[ColumnKind][]Profile{}
	for _, c := range cols {
		byKind[c.Kind] = append(byKind[c.Kind], c)
	}
	nums := byKind[Numeric]
	cats := byKind[Categorical]
	times := byKind[Temporal]
	geos := byKind[GeoPoint]
	ents := byKind[Entity]

	// Scatter: two numerics.
	if len(nums) >= 2 {
		add(vis.Scatter, 0.9*coverage2(nums[0], nums[1]),
			"two numeric columns — correlation view (SemLens-style)",
			map[string]string{"x": nums[0].Name, "y": nums[1].Name})
		// Bubble with a third numeric.
		if len(nums) >= 3 {
			add(vis.Bubble, 0.75*coverage2(nums[0], nums[1]),
				"three numeric columns — bubble size encodes the third",
				map[string]string{"x": nums[0].Name, "y": nums[1].Name, "size": nums[2].Name})
		}
	}
	// Line/timeline: temporal + numeric.
	if len(times) >= 1 && len(nums) >= 1 {
		add(vis.LineChart, 0.95*coverage2(times[0], nums[0]),
			"temporal + numeric — trend over time",
			map[string]string{"x": times[0].Name, "y": nums[0].Name})
	}
	if len(times) >= 1 {
		add(vis.Timeline, 0.6*times[0].Coverage,
			"temporal column — event timeline (Tabulator-style)",
			map[string]string{"x": times[0].Name})
	}
	// Bar: categorical + numeric, penalized by high cardinality.
	if len(cats) >= 1 && len(nums) >= 1 {
		score := 0.9 * cardinalityPenalty(cats[0], 30)
		add(vis.BarChart, score,
			"categorical + numeric — per-category comparison",
			map[string]string{"x": cats[0].Name, "y": nums[0].Name})
	}
	// Pie: low-cardinality categorical alone.
	if len(cats) >= 1 {
		score := 0.7 * cardinalityPenalty(cats[0], 8)
		add(vis.PieChart, score,
			"low-cardinality categorical — part-of-whole",
			map[string]string{"color": cats[0].Name})
	}
	// Histogram: single numeric.
	if len(nums) >= 1 && len(cats) == 0 {
		add(vis.Histogram, 0.8*nums[0].Coverage,
			"single numeric column — distribution",
			map[string]string{"x": nums[0].Name})
	}
	// Map: geo column.
	if len(geos) >= 1 {
		score := 0.97 * geos[0].Coverage
		bind := map[string]string{"location": geos[0].Name}
		if len(nums) >= 1 {
			bind["size"] = nums[0].Name
		}
		add(vis.Map, score, "geo coordinates — map view (map4rdf-style)", bind)
	}
	// Graph: entity-to-entity columns.
	if len(ents) >= 2 {
		add(vis.GraphVis, 0.85*coverage2(ents[0], ents[1]),
			"two entity columns — node-link graph (Lodlive-style)",
			map[string]string{"source": ents[0].Name, "target": ents[1].Name})
	}
	// Treemap: hierarchy-ish categorical pair + numeric.
	if len(cats) >= 2 && len(nums) >= 1 {
		add(vis.Treemap, 0.65*cardinalityPenalty(cats[0], 50),
			"nested categories + numeric — treemap",
			map[string]string{"group": cats[0].Name, "leaf": cats[1].Name, "size": nums[0].Name})
	}
	// Parallel coordinates: many numerics.
	if len(nums) >= 4 {
		add(vis.ParallelCoords, 0.6,
			"many numeric columns — multivariate profile",
			map[string]string{"dims": nums[0].Name})
	}
	// Table always works, as the weakest suggestion.
	add(vis.Table, 0.25, "fallback — tabular view", nil)

	sort.SliceStable(out, func(i, j int) bool { return out[i].Score > out[j].Score })
	return out
}

func coverage2(a, b Profile) float64 {
	c := a.Coverage * b.Coverage
	if c <= 0 {
		return 0.01
	}
	return c
}

// cardinalityPenalty scales down as the distinct-value count passes ideal.
func cardinalityPenalty(p Profile, ideal int) float64 {
	if p.Cardinality <= 0 {
		return 0.01
	}
	if p.Cardinality <= ideal {
		return 1
	}
	return float64(ideal) / float64(p.Cardinality)
}
