package recommend

import (
	"testing"
	"time"

	"github.com/lodviz/lodviz/internal/rdf"
	"github.com/lodviz/lodviz/internal/vis"
)

func TestProfileTermsNumeric(t *testing.T) {
	var terms []rdf.Term
	for i := 0; i < 50; i++ {
		terms = append(terms, rdf.NewInteger(int64(i)))
	}
	p := ProfileTerms("age", terms)
	if p.Kind != Numeric || p.Cardinality != 50 || p.Coverage != 1 {
		t.Errorf("profile = %+v", p)
	}
}

func TestProfileTermsTemporal(t *testing.T) {
	var terms []rdf.Term
	for i := 0; i < 20; i++ {
		terms = append(terms, rdf.NewDate(time.Date(2000+i, 1, 1, 0, 0, 0, 0, time.UTC)))
	}
	if p := ProfileTerms("date", terms); p.Kind != Temporal {
		t.Errorf("kind = %v, want Temporal", p.Kind)
	}
}

func TestProfileTermsCategorical(t *testing.T) {
	var terms []rdf.Term
	cats := []string{"a", "b", "c"}
	for i := 0; i < 60; i++ {
		terms = append(terms, rdf.NewLiteral(cats[i%3]))
	}
	p := ProfileTerms("genre", terms)
	if p.Kind != Categorical || p.Cardinality != 3 {
		t.Errorf("profile = %+v", p)
	}
}

func TestProfileTermsEntity(t *testing.T) {
	var terms []rdf.Term
	for i := 0; i < 30; i++ {
		terms = append(terms, rdf.IRI("http://e/x"))
	}
	if p := ProfileTerms("link", terms); p.Kind != Entity {
		t.Errorf("kind = %v, want Entity", p.Kind)
	}
}

func TestProfileTermsCoverage(t *testing.T) {
	terms := []rdf.Term{rdf.NewInteger(1), nil, nil, rdf.NewInteger(2)}
	p := ProfileTerms("sparse", terms)
	if p.Coverage != 0.5 {
		t.Errorf("coverage = %g", p.Coverage)
	}
}

func TestProfileTermsEmpty(t *testing.T) {
	p := ProfileTerms("none", nil)
	if p.Kind != Text || p.Coverage != 0 {
		t.Errorf("profile = %+v", p)
	}
}

func top(recs []Recommendation) vis.Type {
	return recs[0].Type
}

func TestRecommendScatterForTwoNumerics(t *testing.T) {
	recs := Recommend([]Profile{
		{Name: "height", Kind: Numeric, Cardinality: 100, Rows: 100, Coverage: 1},
		{Name: "weight", Kind: Numeric, Cardinality: 100, Rows: 100, Coverage: 1},
	})
	if top(recs) != vis.Scatter {
		t.Errorf("top = %v, want scatter", top(recs))
	}
	if recs[0].Bindings["x"] != "height" || recs[0].Bindings["y"] != "weight" {
		t.Errorf("bindings = %v", recs[0].Bindings)
	}
}

func TestRecommendLineForTemporalNumeric(t *testing.T) {
	recs := Recommend([]Profile{
		{Name: "year", Kind: Temporal, Cardinality: 30, Rows: 30, Coverage: 1},
		{Name: "population", Kind: Numeric, Cardinality: 30, Rows: 30, Coverage: 1},
	})
	if top(recs) != vis.LineChart {
		t.Errorf("top = %v, want line chart", top(recs))
	}
}

func TestRecommendMapForGeo(t *testing.T) {
	recs := Recommend([]Profile{
		{Name: "location", Kind: GeoPoint, Cardinality: 500, Rows: 500, Coverage: 1},
		{Name: "population", Kind: Numeric, Cardinality: 500, Rows: 500, Coverage: 1},
	})
	if top(recs) != vis.Map {
		t.Errorf("top = %v, want map", top(recs))
	}
	if recs[0].Bindings["size"] != "population" {
		t.Errorf("map should bind size: %v", recs[0].Bindings)
	}
}

func TestRecommendBarForCategoricalNumeric(t *testing.T) {
	recs := Recommend([]Profile{
		{Name: "genre", Kind: Categorical, Cardinality: 5, Rows: 100, Coverage: 1},
		{Name: "count", Kind: Numeric, Cardinality: 80, Rows: 100, Coverage: 1},
	})
	if top(recs) != vis.BarChart {
		t.Errorf("top = %v, want bar chart", top(recs))
	}
}

func TestRecommendPiePenalizedByCardinality(t *testing.T) {
	lowCard := Recommend([]Profile{{Name: "type", Kind: Categorical, Cardinality: 4, Rows: 100, Coverage: 1}})
	highCard := Recommend([]Profile{{Name: "type", Kind: Categorical, Cardinality: 200, Rows: 1000, Coverage: 1}})
	var lowPie, highPie float64
	for _, r := range lowCard {
		if r.Type == vis.PieChart {
			lowPie = r.Score
		}
	}
	for _, r := range highCard {
		if r.Type == vis.PieChart {
			highPie = r.Score
		}
	}
	if lowPie <= highPie {
		t.Errorf("pie scores: low-card %g <= high-card %g", lowPie, highPie)
	}
}

func TestRecommendGraphForEntities(t *testing.T) {
	recs := Recommend([]Profile{
		{Name: "person", Kind: Entity, Cardinality: 50, Rows: 100, Coverage: 1},
		{Name: "knows", Kind: Entity, Cardinality: 50, Rows: 100, Coverage: 1},
	})
	if top(recs) != vis.GraphVis {
		t.Errorf("top = %v, want graph", top(recs))
	}
}

func TestRecommendAlwaysIncludesTableFallback(t *testing.T) {
	recs := Recommend([]Profile{{Name: "blob", Kind: Text, Cardinality: 100, Rows: 100, Coverage: 1}})
	found := false
	for _, r := range recs {
		if r.Type == vis.Table {
			found = true
		}
	}
	if !found {
		t.Error("no table fallback")
	}
}

func TestRecommendSortedDescending(t *testing.T) {
	recs := Recommend([]Profile{
		{Name: "a", Kind: Numeric, Cardinality: 10, Rows: 10, Coverage: 1},
		{Name: "b", Kind: Numeric, Cardinality: 10, Rows: 10, Coverage: 1},
		{Name: "c", Kind: Categorical, Cardinality: 3, Rows: 10, Coverage: 1},
		{Name: "t", Kind: Temporal, Cardinality: 10, Rows: 10, Coverage: 1},
	})
	for i := 1; i < len(recs); i++ {
		if recs[i].Score > recs[i-1].Score {
			t.Errorf("not sorted at %d: %g > %g", i, recs[i].Score, recs[i-1].Score)
		}
	}
	// Every recommendation carries a reason.
	for _, r := range recs {
		if r.Reason == "" {
			t.Errorf("%v has no reason", r.Type)
		}
	}
}

func TestColumnKindString(t *testing.T) {
	kinds := []ColumnKind{Numeric, Temporal, Categorical, GeoPoint, Entity, Text}
	for _, k := range kinds {
		if k.String() == "" {
			t.Errorf("kind %d has empty label", k)
		}
	}
}
