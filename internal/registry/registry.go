// Package registry encodes the survey's catalogue of Web-of-Data
// exploration and visualization systems — every row of Table 1 (generic
// visualization systems) and Table 2 (graph-based visualization systems),
// plus the systems discussed in prose (§3.1 browsers, §3.3 domain-specific,
// §3.6 libraries) — and regenerates the tables and the Section-4 aggregate
// observations from the data.
//
// Cell provenance. The survey's text pins several columns exactly:
// Section 4 states that only SynopsViz and VizBoard adopt approximation
// techniques (sampling/filtering or aggregation), that only SynopsViz uses
// external memory at runtime among Table-1 systems, and that LinkDaViz,
// Vis Wizard, LDVizWiz and LDVM (plus VizBoard, §3.2) provide
// recommendations; §3.4's prose pins keyword/filter capabilities for
// RDF-Gravity, the RDF graph visualizer, and sampling for Cytoscape-in-
// Oracle [127]. Checkmark *counts* per row are taken from the published
// table; the remaining cell positions are reconstructed from each cited
// system's own description and are marked Reconstructed below.
package registry

import (
	"sort"
	"strings"
)

// Capability is a feature column of the survey's tables.
type Capability string

// Capabilities used across Tables 1 and 2.
const (
	Recommendation Capability = "Recomm."
	Preferences    Capability = "Preferences"
	Statistics     Capability = "Statistics"
	Sampling       Capability = "Sampling"
	Aggregation    Capability = "Aggregation"
	Incremental    Capability = "Incr."
	Disk           Capability = "Disk"
	Keyword        Capability = "Keyword"
	Filtering      Capability = "Filter"
)

// Data-type codes of Table 1 (⋆ legend).
const (
	DataNumeric      = "N"
	DataTemporal     = "T"
	DataSpatial      = "S"
	DataHierarchical = "H"
	DataGraph        = "G"
)

// Visualization-type codes of Table 1 (⋆⋆ legend).
var VisTypeLegend = map[string]string{
	"B": "bubble chart", "C": "chart", "CI": "circles", "G": "graph",
	"M": "map", "P": "pie", "PC": "parallel coordinates", "S": "scatter",
	"SG": "streamgraph", "T": "treemap", "TL": "timeline", "TR": "tree",
}

// Table identifies which published table a system appears in.
type Table int

// Table identifiers; Prose marks systems discussed only in the text.
const (
	Prose  Table = 0
	Table1 Table = 1
	Table2 Table = 2
)

// System is one surveyed system.
type System struct {
	Name string
	// Refs are the survey's citation numbers.
	Refs []int
	Year int
	// Table is the published table the system appears in.
	Table Table
	// Section is the survey section discussing the system.
	Section string
	// DataTypes uses the Table-1 codes (N,T,S,H,G); Table-2 systems leave it
	// empty (all are graph systems).
	DataTypes []string
	// VisTypes uses the Table-1 codes.
	VisTypes []string
	// Caps are the checked capability columns.
	Caps []Capability
	// Domain is "generic" or "ontology" (Table 2) per the published tables.
	Domain string
	// App is "Web" or "Desktop".
	App string
	// Reconstructed marks capability cells whose column position was
	// inferred from the cited system's description rather than pinned by
	// the survey's prose (check *counts* always match the published row).
	Reconstructed []Capability
}

// Has reports whether the system has the capability checked.
func (s System) Has(c Capability) bool {
	for _, x := range s.Caps {
		if x == c {
			return true
		}
	}
	return false
}

// caps is shorthand for capability lists.
func caps(cs ...Capability) []Capability { return cs }

// Table1Systems returns the 11 rows of the survey's Table 1, in published
// order.
func Table1Systems() []System {
	return []System{
		{Name: "Rhizomer", Refs: []int{30}, Year: 2006, Table: Table1, Section: "3.2",
			DataTypes: []string{"N", "T", "S", "H", "G"}, VisTypes: []string{"C", "M", "T", "TL"},
			Caps: caps(Preferences), Domain: "generic", App: "Web",
			Reconstructed: caps(Preferences)},
		{Name: "VizBoard", Refs: []int{135, 136, 109}, Year: 2009, Table: Table1, Section: "3.2",
			DataTypes: []string{"N", "H"}, VisTypes: []string{"C", "S", "T"},
			Caps: caps(Recommendation, Preferences, Sampling), Domain: "generic", App: "Web",
			Reconstructed: caps(Preferences)},
		{Name: "LODWheel", Refs: []int{126}, Year: 2011, Table: Table1, Section: "3.2",
			DataTypes: []string{"N", "S", "G"}, VisTypes: []string{"C", "G", "M", "P"},
			Domain: "generic", App: "Web"},
		{Name: "SemLens", Refs: []int{59}, Year: 2011, Table: Table1, Section: "3.2",
			DataTypes: []string{"N"}, VisTypes: []string{"S"},
			Caps: caps(Preferences), Domain: "generic", App: "Web"},
		{Name: "LDVM", Refs: []int{29}, Year: 2013, Table: Table1, Section: "3.2",
			DataTypes: []string{"S", "H", "G"}, VisTypes: []string{"B", "M", "T", "TR"},
			Caps: caps(Recommendation), Domain: "generic", App: "Web"},
		{Name: "Payola", Refs: []int{84}, Year: 2013, Table: Table1, Section: "3.2",
			DataTypes: []string{"N", "T", "S", "H", "G"},
			VisTypes:  []string{"C", "CI", "G", "M", "T", "TL", "TR"},
			Domain:    "generic", App: "Web"},
		{Name: "LDVizWiz", Refs: []int{11}, Year: 2014, Table: Table1, Section: "3.2",
			DataTypes: []string{"S", "H", "G"}, VisTypes: []string{"M", "P", "TR"},
			Caps: caps(Recommendation), Domain: "generic", App: "Web"},
		{Name: "SynopsViz", Refs: []int{26, 25}, Year: 2014, Table: Table1, Section: "3.2",
			DataTypes: []string{"N", "T", "H"}, VisTypes: []string{"C", "P", "T", "TL"},
			Caps:   caps(Recommendation, Preferences, Statistics, Aggregation, Incremental, Disk),
			Domain: "generic", App: "Web",
			Reconstructed: caps(Recommendation)},
		{Name: "Vis Wizard", Refs: []int{131}, Year: 2014, Table: Table1, Section: "3.2",
			DataTypes: []string{"N", "T", "S"}, VisTypes: []string{"B", "C", "M", "P", "PC", "SG"},
			Caps: caps(Recommendation, Preferences), Domain: "generic", App: "Web",
			Reconstructed: caps(Preferences)},
		{Name: "LinkDaViz", Refs: []int{129}, Year: 2015, Table: Table1, Section: "3.2",
			DataTypes: []string{"N", "T", "S"}, VisTypes: []string{"B", "C", "S", "M", "P"},
			Caps: caps(Recommendation, Preferences), Domain: "generic", App: "Web",
			Reconstructed: caps(Preferences)},
		{Name: "ViCoMap", Refs: []int{112}, Year: 2015, Table: Table1, Section: "3.2",
			DataTypes: []string{"N", "T", "S"}, VisTypes: []string{"M"},
			Caps: caps(Statistics), Domain: "generic", App: "Web",
			Reconstructed: caps(Statistics)},
	}
}

// Table2Systems returns the 21 rows of the survey's Table 2, in published
// order.
func Table2Systems() []System {
	return []System{
		{Name: "RDF-Gravity", Refs: nil, Year: 2003, Table: Table2, Section: "3.4",
			Caps: caps(Keyword, Filtering), Domain: "generic", App: "Desktop"},
		{Name: "IsaViz", Refs: []int{108}, Year: 2003, Table: Table2, Section: "3.4",
			Caps: caps(Keyword, Filtering), Domain: "generic", App: "Desktop",
			Reconstructed: caps(Keyword, Filtering)},
		{Name: "RDF graph visualizer", Refs: []int{115}, Year: 2004, Table: Table2, Section: "3.4",
			Caps: caps(Keyword), Domain: "generic", App: "Desktop"},
		{Name: "GrOWL", Refs: []int{89}, Year: 2007, Table: Table2, Section: "3.5",
			Caps: caps(Keyword, Filtering, Aggregation), Domain: "ontology", App: "Desktop",
			Reconstructed: caps(Keyword, Filtering, Aggregation)},
		{Name: "NodeTrix", Refs: []int{61}, Year: 2007, Table: Table2, Section: "3.5",
			Caps: caps(Aggregation), Domain: "ontology", App: "Desktop",
			Reconstructed: caps(Aggregation)},
		{Name: "PGV", Refs: []int{36}, Year: 2007, Table: Table2, Section: "3.4",
			Caps: caps(Incremental, Disk), Domain: "generic", App: "Desktop",
			Reconstructed: caps(Incremental, Disk)},
		{Name: "Fenfire", Refs: []int{54}, Year: 2008, Table: Table2, Section: "3.4",
			Domain: "generic", App: "Desktop"},
		{Name: "Gephi", Refs: []int{15}, Year: 2009, Table: Table2, Section: "3.4",
			Caps: caps(Keyword, Filtering, Aggregation), Domain: "generic", App: "Desktop",
			Reconstructed: caps(Keyword)},
		{Name: "Trisolda", Refs: []int{38}, Year: 2010, Table: Table2, Section: "3.4",
			Caps: caps(Aggregation, Incremental, Disk), Domain: "generic", App: "Desktop",
			Reconstructed: caps(Incremental, Disk)},
		{Name: "Cytospace", Refs: []int{127}, Year: 2010, Table: Table2, Section: "3.4",
			Caps:   caps(Keyword, Filtering, Sampling, Aggregation, Disk),
			Domain: "generic", App: "Desktop",
			Reconstructed: caps(Keyword, Filtering)},
		{Name: "FlexViz", Refs: []int{45}, Year: 2010, Table: Table2, Section: "3.5",
			Caps: caps(Keyword, Filtering), Domain: "ontology", App: "Web",
			Reconstructed: caps(Keyword, Filtering)},
		{Name: "RelFinder", Refs: []int{58}, Year: 2010, Table: Table2, Section: "3.4",
			Domain: "generic", App: "Web"},
		{Name: "ZoomRDF", Refs: []int{142}, Year: 2010, Table: Table2, Section: "3.4",
			Caps: caps(Keyword, Filtering, Aggregation), Domain: "generic", App: "Desktop",
			Reconstructed: caps(Keyword, Filtering, Aggregation)},
		{Name: "KC-Viz", Refs: []int{104}, Year: 2011, Table: Table2, Section: "3.5",
			Caps: caps(Aggregation), Domain: "ontology", App: "Desktop",
			Reconstructed: caps(Aggregation)},
		{Name: "LODWheel", Refs: []int{126}, Year: 2011, Table: Table2, Section: "3.4",
			Caps: caps(Keyword, Filtering), Domain: "generic", App: "Web",
			Reconstructed: caps(Keyword, Filtering)},
		{Name: "GLOW", Refs: []int{64}, Year: 2012, Table: Table2, Section: "3.5",
			Caps: caps(Filtering, Aggregation), Domain: "ontology", App: "Desktop",
			Reconstructed: caps(Filtering, Aggregation)},
		{Name: "Lodlive", Refs: []int{31}, Year: 2012, Table: Table2, Section: "3.4",
			Caps: caps(Keyword), Domain: "generic", App: "Web",
			Reconstructed: caps(Keyword)},
		{Name: "OntoTrix", Refs: []int{14}, Year: 2013, Table: Table2, Section: "3.5",
			Caps: caps(Filtering, Aggregation), Domain: "ontology", App: "Desktop",
			Reconstructed: caps(Filtering, Aggregation)},
		{Name: "LODeX", Refs: []int{19}, Year: 2014, Table: Table2, Section: "3.4",
			Caps: caps(Filtering, Aggregation), Domain: "generic", App: "Web",
			Reconstructed: caps(Filtering, Aggregation)},
		{Name: "VOWL 2", Refs: []int{100, 99}, Year: 2014, Table: Table2, Section: "3.5",
			Domain: "ontology", App: "Web"},
		{Name: "graphVizdb", Refs: []int{23, 22}, Year: 2015, Table: Table2, Section: "3.4",
			Caps:   caps(Keyword, Filtering, Incremental, Disk),
			Domain: "generic", App: "Web",
			Reconstructed: caps(Keyword)},
	}
}

// ProseSystems returns the systems the survey discusses outside the two
// tables: browsers & exploratory systems (§3.1), domain/vocabulary/device-
// specific systems (§3.3) and visualization libraries (§3.6).
func ProseSystems() []System {
	mk := func(name string, refs []int, year int, section, domain, app string) System {
		return System{Name: name, Refs: refs, Year: year, Table: Prose,
			Section: section, Domain: domain, App: app}
	}
	return []System{
		// §3.1 browsers & exploratory systems.
		mk("Haystack", []int{111}, 2004, "3.1", "generic", "Desktop"),
		mk("Disco", nil, 2007, "3.1", "generic", "Web"),
		mk("Noadster", []int{113}, 2005, "3.1", "generic", "Web"),
		mk("Piggy Bank", []int{66}, 2005, "3.1", "generic", "Web"),
		mk("LESS", []int{13}, 2010, "3.1", "generic", "Web"),
		mk("Tabulator", []int{21}, 2006, "3.1", "generic", "Web"),
		mk("LENA", []int{87}, 2008, "3.1", "generic", "Web"),
		mk("Visor", []int{110}, 2011, "3.1", "generic", "Web"),
		mk("/facet", []int{62}, 2006, "3.1", "generic", "Web"),
		mk("Humboldt", []int{86}, 2008, "3.1", "generic", "Web"),
		mk("gFacet", []int{57}, 2010, "3.1", "generic", "Web"),
		mk("Explorator", []int{7}, 2009, "3.1", "generic", "Web"),
		mk("VisiNav", []int{53}, 2010, "3.1", "generic", "Web"),
		mk("Information Workbench", []int{52}, 2011, "3.1", "generic", "Web"),
		mk("Marbles", nil, 2009, "3.1", "generic", "Web"),
		mk("URI Burner", nil, 2009, "3.1", "generic", "Web"),
		// §3.3 domain, vocabulary & device-specific systems.
		mk("Map4rdf", []int{92}, 2012, "3.3", "geo-spatial", "Web"),
		mk("Facete", []int{122}, 2014, "3.3", "geo-spatial", "Web"),
		mk("SexTant", []int{20}, 2013, "3.3", "geo-spatial", "Web"),
		mk("Spacetime", []int{133}, 2014, "3.3", "geo-spatial", "Web"),
		mk("LinkedGeoData Browser", []int{121}, 2012, "3.3", "geo-spatial", "Web"),
		mk("DBpedia Atlas", []int{132}, 2015, "3.3", "geo-spatial", "Web"),
		mk("VISU", []int{6}, 2013, "3.3", "university data", "Web"),
		mk("CubeViz", []int{43, 114}, 2013, "3.3", "statistical", "Web"),
		mk("Payola Data Cube", []int{60}, 2014, "3.3", "statistical", "Web"),
		mk("OpenCube Toolkit", []int{75}, 2014, "3.3", "statistical", "Web"),
		mk("LDCE", []int{79}, 2014, "3.3", "statistical", "Web"),
		mk("LOSD Visualizations", []int{106}, 2014, "3.3", "statistical", "Web"),
		mk("DBpedia Mobile", []int{18}, 2009, "3.3", "mobile", "Mobile"),
		mk("Who's Who", []int{32}, 2011, "3.3", "mobile", "Mobile"),
		// §3.5 ontology visualizers outside Table 2.
		mk("CropCircles", []int{137}, 2006, "3.5", "ontology", "Desktop"),
		mk("Knoocks", []int{88}, 2008, "3.5", "ontology", "Desktop"),
		// §3.6 libraries.
		mk("Sgvizler", []int{120}, 2012, "3.6", "library", "Web"),
		mk("Visualbox", []int{50}, 2013, "3.6", "library", "Web"),
	}
}

// All returns every registry entry (both tables + prose systems).
func All() []System {
	out := Table1Systems()
	out = append(out, Table2Systems()...)
	out = append(out, ProseSystems()...)
	return out
}

// Observations computed from the registry — the Section-4 discussion points.

// ApproximationAdopters returns the Table-1 systems using sampling or
// aggregation; the survey's Section 4 states these are exactly SynopsViz and
// VizBoard.
func ApproximationAdopters() []string {
	var out []string
	for _, s := range Table1Systems() {
		if s.Has(Sampling) || s.Has(Aggregation) {
			out = append(out, s.Name)
		}
	}
	sort.Strings(out)
	return out
}

// DiskAdopters returns the systems of a table using external memory at
// runtime.
func DiskAdopters(t Table) []string {
	var out []string
	for _, s := range tableOf(t) {
		if s.Has(Disk) {
			out = append(out, s.Name)
		}
	}
	sort.Strings(out)
	return out
}

// RecommendationProviders returns the Table-1 systems offering visualization
// recommendation.
func RecommendationProviders() []string {
	var out []string
	for _, s := range Table1Systems() {
		if s.Has(Recommendation) {
			out = append(out, s.Name)
		}
	}
	sort.Strings(out)
	return out
}

// CapabilityCounts tallies each capability across a table — the aggregate
// view of how rarely scalability techniques appear, which is the survey's
// headline observation.
func CapabilityCounts(t Table) map[Capability]int {
	counts := map[Capability]int{}
	for _, s := range tableOf(t) {
		for _, c := range s.Caps {
			counts[c]++
		}
	}
	return counts
}

func tableOf(t Table) []System {
	switch t {
	case Table1:
		return Table1Systems()
	case Table2:
		return Table2Systems()
	default:
		return ProseSystems()
	}
}

// refString formats citation numbers like the paper ("[26, 25]").
func refString(refs []int) string {
	if len(refs) == 0 {
		return ""
	}
	parts := make([]string, len(refs))
	for i, r := range refs {
		parts[i] = itoa(r)
	}
	return "[" + strings.Join(parts, ", ") + "]"
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [8]byte
	pos := len(b)
	for i > 0 {
		pos--
		b[pos] = byte('0' + i%10)
		i /= 10
	}
	return string(b[pos:])
}
