package registry

import (
	"strings"
	"testing"
)

// The published tables' structural facts, used to verify the registry
// against the paper.

func TestTable1RowCountAndOrder(t *testing.T) {
	rows := Table1Systems()
	if len(rows) != 11 {
		t.Fatalf("Table 1 rows = %d, want 11", len(rows))
	}
	wantOrder := []string{"Rhizomer", "VizBoard", "LODWheel", "SemLens", "LDVM",
		"Payola", "LDVizWiz", "SynopsViz", "Vis Wizard", "LinkDaViz", "ViCoMap"}
	for i, w := range wantOrder {
		if rows[i].Name != w {
			t.Errorf("row %d = %s, want %s", i, rows[i].Name, w)
		}
	}
	// Years ascend as in the paper.
	for i := 1; i < len(rows); i++ {
		if rows[i].Year < rows[i-1].Year {
			t.Errorf("year order violated at %s", rows[i].Name)
		}
	}
}

func TestTable1AllGenericWeb(t *testing.T) {
	for _, s := range Table1Systems() {
		if s.Domain != "generic" || s.App != "Web" {
			t.Errorf("%s: domain/app = %s/%s", s.Name, s.Domain, s.App)
		}
	}
}

// Checkmark counts per Table-1 row, read directly from the published table.
func TestTable1CheckCounts(t *testing.T) {
	want := map[string]int{
		"Rhizomer": 1, "VizBoard": 3, "LODWheel": 0, "SemLens": 1, "LDVM": 1,
		"Payola": 0, "LDVizWiz": 1, "SynopsViz": 6, "Vis Wizard": 2,
		"LinkDaViz": 2, "ViCoMap": 1,
	}
	for _, s := range Table1Systems() {
		if got := len(s.Caps); got != want[s.Name] {
			t.Errorf("%s: %d checkmarks, want %d", s.Name, got, want[s.Name])
		}
	}
}

// Section 4: "none of the systems, with the exceptions of SynopsViz and
// VizBoard cases, adopt approximation techniques".
func TestSection4ApproximationClaim(t *testing.T) {
	got := ApproximationAdopters()
	if len(got) != 2 || got[0] != "SynopsViz" || got[1] != "VizBoard" {
		t.Errorf("approximation adopters = %v, want [SynopsViz VizBoard]", got)
	}
}

// Section 4: "most of the existing systems (except for SynopsViz) do not
// exploit external memory during runtime".
func TestSection4DiskClaim(t *testing.T) {
	got := DiskAdopters(Table1)
	if len(got) != 1 || got[0] != "SynopsViz" {
		t.Errorf("Table-1 disk adopters = %v, want [SynopsViz]", got)
	}
}

// Section 4: recommendation providers include LinkDaViz, Vis Wizard,
// LDVizWiz, LDVM (plus VizBoard per §3.2 and SynopsViz).
func TestSection4RecommendationClaim(t *testing.T) {
	got := RecommendationProviders()
	need := []string{"LDVM", "LDVizWiz", "LinkDaViz", "Vis Wizard", "VizBoard"}
	set := map[string]bool{}
	for _, g := range got {
		set[g] = true
	}
	for _, n := range need {
		if !set[n] {
			t.Errorf("missing recommendation provider %s in %v", n, got)
		}
	}
}

func TestTable2RowCountAndOrder(t *testing.T) {
	rows := Table2Systems()
	if len(rows) != 21 {
		t.Fatalf("Table 2 rows = %d, want 21", len(rows))
	}
	wantFirst, wantLast := "RDF-Gravity", "graphVizdb"
	if rows[0].Name != wantFirst || rows[len(rows)-1].Name != wantLast {
		t.Errorf("order: first=%s last=%s", rows[0].Name, rows[len(rows)-1].Name)
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Year < rows[i-1].Year {
			t.Errorf("year order violated at %s", rows[i].Name)
		}
	}
}

// Checkmark counts per Table-2 row from the published table.
func TestTable2CheckCounts(t *testing.T) {
	want := map[string]int{
		"RDF-Gravity": 2, "IsaViz": 2, "RDF graph visualizer": 1, "GrOWL": 3,
		"NodeTrix": 1, "PGV": 2, "Fenfire": 0, "Gephi": 3, "Trisolda": 3,
		"Cytospace": 5, "FlexViz": 2, "RelFinder": 0, "ZoomRDF": 3,
		"KC-Viz": 1, "LODWheel": 2, "GLOW": 2, "Lodlive": 1, "OntoTrix": 2,
		"LODeX": 2, "VOWL 2": 0, "graphVizdb": 4,
	}
	for _, s := range Table2Systems() {
		if got := len(s.Caps); got != want[s.Name] {
			t.Errorf("%s: %d checkmarks, want %d", s.Name, got, want[s.Name])
		}
	}
}

// Ontology-domain rows of Table 2 per the paper.
func TestTable2OntologyDomains(t *testing.T) {
	ontology := map[string]bool{
		"GrOWL": true, "NodeTrix": true, "FlexViz": true, "KC-Viz": true,
		"GLOW": true, "OntoTrix": true, "VOWL 2": true,
	}
	for _, s := range Table2Systems() {
		want := "generic"
		if ontology[s.Name] {
			want = "ontology"
		}
		if s.Domain != want {
			t.Errorf("%s domain = %s, want %s", s.Name, s.Domain, want)
		}
	}
}

// §3.4 prose: "[127] ... sampling techniques have been exploited" — the only
// Table-2 sampling adopter is Cytospace (Oracle).
func TestTable2SamplingClaim(t *testing.T) {
	for _, s := range Table2Systems() {
		if s.Has(Sampling) && s.Name != "Cytospace" {
			t.Errorf("unexpected sampling adopter %s", s.Name)
		}
	}
	found := false
	for _, s := range Table2Systems() {
		if s.Name == "Cytospace" && s.Has(Sampling) {
			found = true
		}
	}
	if !found {
		t.Error("Cytospace must have Sampling")
	}
}

// §3.4 prose: RDF-Gravity "offers filtering, keyword search".
func TestRDFGravityProsePin(t *testing.T) {
	for _, s := range Table2Systems() {
		if s.Name == "RDF-Gravity" {
			if !s.Has(Keyword) || !s.Has(Filtering) {
				t.Error("RDF-Gravity must have Keyword+Filter")
			}
		}
	}
}

func TestRenderTable1Structure(t *testing.T) {
	out := RenderTable1()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// title + header + separator + 11 rows.
	if len(lines) != 14 {
		t.Fatalf("rendered lines = %d, want 14\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "Table 1") {
		t.Error("title missing")
	}
	if !strings.Contains(out, "SynopsViz [26, 25]") {
		t.Error("citation formatting wrong")
	}
	// SynopsViz row has 6 Y marks.
	for _, l := range lines {
		if strings.Contains(l, "SynopsViz") {
			if got := strings.Count(l, " Y"); got != 6 {
				t.Errorf("SynopsViz rendered with %d checks: %q", got, l)
			}
		}
	}
}

func TestRenderTable2Structure(t *testing.T) {
	out := RenderTable2()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 24 { // title + header + sep + 21 rows
		t.Fatalf("rendered lines = %d, want 24", len(lines))
	}
	if !strings.Contains(out, "graphVizdb [23, 22]") {
		t.Error("graphVizdb row missing")
	}
}

func TestRenderCSV(t *testing.T) {
	csv1 := RenderCSV(Table1)
	if strings.Count(csv1, "\n") != 12 { // header + 11
		t.Errorf("table1 csv lines = %d", strings.Count(csv1, "\n"))
	}
	csv2 := RenderCSV(Table2)
	if strings.Count(csv2, "\n") != 22 { // header + 21
		t.Errorf("table2 csv lines = %d", strings.Count(csv2, "\n"))
	}
	if !strings.Contains(csv2, "graphVizdb,2015,1,1,0,0,1,1,generic,Web") {
		t.Errorf("graphVizdb csv row wrong:\n%s", csv2)
	}
}

func TestRenderObservations(t *testing.T) {
	out := RenderObservations()
	if !strings.Contains(out, "SynopsViz, VizBoard") {
		t.Errorf("observations missing approximation claim:\n%s", out)
	}
}

func TestAllIncludesProse(t *testing.T) {
	all := All()
	if len(all) != 11+21+len(ProseSystems()) {
		t.Errorf("All = %d entries", len(all))
	}
	names := map[string]bool{}
	for _, s := range ProseSystems() {
		names[s.Name] = true
	}
	for _, n := range []string{"Tabulator", "CubeViz", "Sgvizler", "DBpedia Mobile", "CropCircles"} {
		if !names[n] {
			t.Errorf("prose system %s missing", n)
		}
	}
}

func TestReconstructedCellsAreSubsetOfCaps(t *testing.T) {
	for _, s := range All() {
		for _, r := range s.Reconstructed {
			if !s.Has(r) {
				t.Errorf("%s: reconstructed %s not in caps", s.Name, r)
			}
		}
	}
}
