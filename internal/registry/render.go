package registry

import (
	"fmt"
	"strings"
)

// check renders a capability cell.
func check(s System, c Capability) string {
	if s.Has(c) {
		return "Y"
	}
	return ""
}

// RenderTable1 renders Table 1 exactly in the paper's column structure
// (plain-text alignment; "Y" stands for the paper's checkmark).
func RenderTable1() string {
	header := []string{"System", "Year", "Data Types", "Vis. Types", "Recomm.",
		"Preferences", "Statistics", "Sampling", "Aggregation", "Incr.", "Disk",
		"Domain", "App. Type"}
	var rows [][]string
	for _, s := range Table1Systems() {
		rows = append(rows, []string{
			s.Name + " " + refString(s.Refs),
			itoa(s.Year),
			strings.Join(s.DataTypes, ", "),
			strings.Join(s.VisTypes, ", "),
			check(s, Recommendation), check(s, Preferences), check(s, Statistics),
			check(s, Sampling), check(s, Aggregation), check(s, Incremental),
			check(s, Disk),
			s.Domain, s.App,
		})
	}
	return renderAligned("Table 1: Generic Visualization Systems", header, rows)
}

// RenderTable2 renders Table 2 in the paper's column structure.
func RenderTable2() string {
	header := []string{"System", "Year", "Keyword", "Filter", "Sampling",
		"Aggregation", "Incr.", "Disk", "Domain", "App. Type"}
	var rows [][]string
	for _, s := range Table2Systems() {
		rows = append(rows, []string{
			s.Name + " " + refString(s.Refs),
			itoa(s.Year),
			check(s, Keyword), check(s, Filtering), check(s, Sampling),
			check(s, Aggregation), check(s, Incremental), check(s, Disk),
			s.Domain, s.App,
		})
	}
	return renderAligned("Table 2: Graph-based Visualization Systems", header, rows)
}

// RenderCSV renders a table as CSV (for downstream tooling).
func RenderCSV(t Table) string {
	var b strings.Builder
	switch t {
	case Table1:
		b.WriteString("system,year,data_types,vis_types,recomm,preferences,statistics,sampling,aggregation,incr,disk,domain,app\n")
		for _, s := range Table1Systems() {
			fmt.Fprintf(&b, "%s,%d,%s,%s,%s,%s,%s,%s,%s,%s,%s,%s,%s\n",
				csvEscape(s.Name), s.Year,
				csvEscape(strings.Join(s.DataTypes, " ")),
				csvEscape(strings.Join(s.VisTypes, " ")),
				mark(s, Recommendation), mark(s, Preferences), mark(s, Statistics),
				mark(s, Sampling), mark(s, Aggregation), mark(s, Incremental),
				mark(s, Disk), s.Domain, s.App)
		}
	case Table2:
		b.WriteString("system,year,keyword,filter,sampling,aggregation,incr,disk,domain,app\n")
		for _, s := range Table2Systems() {
			fmt.Fprintf(&b, "%s,%d,%s,%s,%s,%s,%s,%s,%s,%s\n",
				csvEscape(s.Name), s.Year,
				mark(s, Keyword), mark(s, Filtering), mark(s, Sampling),
				mark(s, Aggregation), mark(s, Incremental), mark(s, Disk),
				s.Domain, s.App)
		}
	}
	return b.String()
}

func mark(s System, c Capability) string {
	if s.Has(c) {
		return "1"
	}
	return "0"
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

// RenderObservations prints the Section-4 aggregate observations computed
// from the registry.
func RenderObservations() string {
	var b strings.Builder
	b.WriteString("Section 4 observations (computed from the registry):\n")
	fmt.Fprintf(&b, "- Table-1 systems adopting approximation techniques: %s\n",
		strings.Join(ApproximationAdopters(), ", "))
	fmt.Fprintf(&b, "- Table-1 systems using external memory at runtime: %s\n",
		strings.Join(DiskAdopters(Table1), ", "))
	fmt.Fprintf(&b, "- Table-1 systems providing recommendations: %s\n",
		strings.Join(RecommendationProviders(), ", "))
	fmt.Fprintf(&b, "- Table-2 systems using external memory at runtime: %s\n",
		strings.Join(DiskAdopters(Table2), ", "))
	c1 := CapabilityCounts(Table1)
	fmt.Fprintf(&b, "- Table-1 capability counts: sampling=%d aggregation=%d incremental=%d disk=%d (of %d systems)\n",
		c1[Sampling], c1[Aggregation], c1[Incremental], c1[Disk], len(Table1Systems()))
	c2 := CapabilityCounts(Table2)
	fmt.Fprintf(&b, "- Table-2 capability counts: keyword=%d filter=%d sampling=%d aggregation=%d incremental=%d disk=%d (of %d systems)\n",
		c2[Keyword], c2[Filtering], c2[Sampling], c2[Aggregation], c2[Incremental], c2[Disk], len(Table2Systems()))
	return b.String()
}

// renderAligned produces a column-aligned plain-text table.
func renderAligned(title string, header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, cell := range r {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	b.WriteString(title)
	b.WriteByte('\n')
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			b.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
		}
		b.WriteByte('\n')
	}
	writeRow(header)
	total := len(header)*2 - 2
	for _, w := range widths {
		total += w
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, r := range rows {
		writeRow(r)
	}
	return b.String()
}
