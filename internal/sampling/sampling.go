// Package sampling implements the sampling/filtering data-reduction family
// the survey groups under "approximation techniques" (Section 2, refs
// [46,105,2,69,17]): reservoir, Bernoulli, systematic, stratified and
// weighted samplers, plus a visualization-aware sampler in the spirit of VAS
// (Park et al., ICDE 2016) that optimizes pixel coverage rather than
// statistical uniformity.
//
// All samplers are deterministic given a seed, so experiments reproduce.
package sampling

import (
	"errors"
	"math"
	"math/rand"
	"sort"
)

// ErrBadSize is returned when a requested sample size is invalid.
var ErrBadSize = errors.New("sampling: sample size must be positive")

// Reservoir maintains a uniform k-sample over a stream of unknown length
// (Vitter's algorithm R). It is the building block for progressive
// approximate visualization: at any moment the reservoir holds a uniform
// sample of everything seen so far.
type Reservoir[T any] struct {
	k    int
	n    int
	rng  *rand.Rand
	data []T
}

// NewReservoir creates a reservoir of capacity k.
func NewReservoir[T any](k int, seed int64) (*Reservoir[T], error) {
	if k <= 0 {
		return nil, ErrBadSize
	}
	return &Reservoir[T]{k: k, rng: rand.New(rand.NewSource(seed))}, nil
}

// Add offers one stream element to the reservoir.
func (r *Reservoir[T]) Add(v T) {
	r.n++
	if len(r.data) < r.k {
		r.data = append(r.data, v)
		return
	}
	if j := r.rng.Intn(r.n); j < r.k {
		r.data[j] = v
	}
}

// Sample returns the current sample (at most k elements). The returned slice
// is a copy.
func (r *Reservoir[T]) Sample() []T {
	out := make([]T, len(r.data))
	copy(out, r.data)
	return out
}

// Seen returns how many elements have been offered.
func (r *Reservoir[T]) Seen() int { return r.n }

// Bernoulli returns each element independently with probability p.
func Bernoulli[T any](xs []T, p float64, seed int64) []T {
	if p <= 0 {
		return nil
	}
	if p >= 1 {
		return append([]T(nil), xs...)
	}
	rng := rand.New(rand.NewSource(seed))
	var out []T
	for _, x := range xs {
		if rng.Float64() < p {
			out = append(out, x)
		}
	}
	return out
}

// Systematic returns every ceil(n/k)-th element starting from a random
// offset, preserving input order — the cheap sampler for pre-sorted series.
func Systematic[T any](xs []T, k int, seed int64) ([]T, error) {
	if k <= 0 {
		return nil, ErrBadSize
	}
	if k >= len(xs) {
		return append([]T(nil), xs...), nil
	}
	step := float64(len(xs)) / float64(k)
	rng := rand.New(rand.NewSource(seed))
	offset := rng.Float64() * step
	out := make([]T, 0, k)
	for i := 0; i < k; i++ {
		idx := int(offset + float64(i)*step)
		if idx >= len(xs) {
			idx = len(xs) - 1
		}
		out = append(out, xs[idx])
	}
	return out, nil
}

// Stratified draws a proportional uniform sample from each stratum, so small
// but important groups survive reduction (the failure mode of plain uniform
// sampling the survey's recommendation systems warn about).
func Stratified[T any](xs []T, stratum func(T) string, k int, seed int64) ([]T, error) {
	if k <= 0 {
		return nil, ErrBadSize
	}
	if k >= len(xs) {
		return append([]T(nil), xs...), nil
	}
	groups := map[string][]T{}
	var keys []string
	for _, x := range xs {
		s := stratum(x)
		if _, ok := groups[s]; !ok {
			keys = append(keys, s)
		}
		groups[s] = append(groups[s], x)
	}
	sort.Strings(keys)
	rng := rand.New(rand.NewSource(seed))
	out := make([]T, 0, k)
	remaining := k
	for i, key := range keys {
		grp := groups[key]
		// Proportional allocation with at least one element per stratum,
		// never exceeding what is left.
		share := int(math.Round(float64(len(grp)) / float64(len(xs)) * float64(k)))
		if share < 1 {
			share = 1
		}
		stratLeft := len(keys) - i - 1
		if share > remaining-stratLeft {
			share = remaining - stratLeft
		}
		if share > len(grp) {
			share = len(grp)
		}
		if share < 0 {
			share = 0
		}
		perm := rng.Perm(len(grp))
		for j := 0; j < share; j++ {
			out = append(out, grp[perm[j]])
		}
		remaining -= share
	}
	return out, nil
}

// Weighted draws k elements without replacement with probability
// proportional to weight, using the Efraimidis–Spirakis exponential-key
// method. Zero or negative weights are treated as tiny positive weights.
func Weighted[T any](xs []T, weight func(T) float64, k int, seed int64) ([]T, error) {
	if k <= 0 {
		return nil, ErrBadSize
	}
	if k >= len(xs) {
		return append([]T(nil), xs...), nil
	}
	type keyed struct {
		key float64
		idx int
	}
	rng := rand.New(rand.NewSource(seed))
	keys := make([]keyed, len(xs))
	for i, x := range xs {
		w := weight(x)
		if w <= 0 {
			w = 1e-12
		}
		keys[i] = keyed{key: math.Pow(rng.Float64(), 1/w), idx: i}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].key > keys[j].key })
	out := make([]T, 0, k)
	for i := 0; i < k; i++ {
		out = append(out, xs[keys[i].idx])
	}
	return out, nil
}

// Point is a 2-D point for visualization-aware sampling.
type Point struct {
	X, Y float64
}

// VisualizationAware greedily selects k points maximizing pixel coverage on
// a W×H canvas: a point whose pixel is already occupied adds no visual
// information, so the sampler prefers unseen pixels (the VAS insight —
// quality of a scatter plot is about covered pixels, not row counts).
func VisualizationAware(points []Point, k, w, h int, seed int64) ([]Point, error) {
	if k <= 0 {
		return nil, ErrBadSize
	}
	if k >= len(points) {
		return append([]Point(nil), points...), nil
	}
	if w < 1 {
		w = 1
	}
	if h < 1 {
		h = 1
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, p := range points {
		minX, maxX = math.Min(minX, p.X), math.Max(maxX, p.X)
		minY, maxY = math.Min(minY, p.Y), math.Max(maxY, p.Y)
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	pixel := func(p Point) int {
		px := int((p.X - minX) / (maxX - minX) * float64(w-1))
		py := int((p.Y - minY) / (maxY - minY) * float64(h-1))
		return py*w + px
	}
	// Shuffle for tie-breaking, then greedily take unseen pixels first.
	rng := rand.New(rand.NewSource(seed))
	order := rng.Perm(len(points))
	occupied := map[int]bool{}
	out := make([]Point, 0, k)
	var overflow []Point
	for _, i := range order {
		p := points[i]
		px := pixel(p)
		if !occupied[px] {
			occupied[px] = true
			out = append(out, p)
			if len(out) == k {
				return out, nil
			}
		} else {
			overflow = append(overflow, p)
		}
	}
	// Fewer distinct pixels than k: fill with the remainder.
	for _, p := range overflow {
		if len(out) == k {
			break
		}
		out = append(out, p)
	}
	return out, nil
}

// PixelCoverage reports the fraction of W×H pixels covered by the points —
// the quality metric experiment E3 uses to compare reduction strategies.
func PixelCoverage(points []Point, w, h int) float64 {
	if len(points) == 0 || w < 1 || h < 1 {
		return 0
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, p := range points {
		minX, maxX = math.Min(minX, p.X), math.Max(maxX, p.X)
		minY, maxY = math.Min(minY, p.Y), math.Max(maxY, p.Y)
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	occupied := map[int]bool{}
	for _, p := range points {
		px := int((p.X - minX) / (maxX - minX) * float64(w-1))
		py := int((p.Y - minY) / (maxY - minY) * float64(h-1))
		occupied[py*w+px] = true
	}
	return float64(len(occupied)) / float64(w*h)
}
