package sampling

import (
	"math"
	"testing"
	"testing/quick"
)

func TestReservoirSizeAndSeen(t *testing.T) {
	r, err := NewReservoir[int](10, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		r.Add(i)
	}
	if len(r.Sample()) != 10 {
		t.Errorf("sample size = %d, want 10", len(r.Sample()))
	}
	if r.Seen() != 1000 {
		t.Errorf("Seen = %d", r.Seen())
	}
}

func TestReservoirSmallStream(t *testing.T) {
	r, _ := NewReservoir[int](10, 1)
	for i := 0; i < 5; i++ {
		r.Add(i)
	}
	if len(r.Sample()) != 5 {
		t.Errorf("sample size = %d, want 5", len(r.Sample()))
	}
}

func TestReservoirBadSize(t *testing.T) {
	if _, err := NewReservoir[int](0, 1); err != ErrBadSize {
		t.Errorf("err = %v, want ErrBadSize", err)
	}
}

// Statistical property: over many trials each element is retained with
// probability ~ k/n (within generous bounds — this is a sanity check of
// uniformity, not a precision test).
func TestReservoirUniformity(t *testing.T) {
	const n, k, trials = 100, 10, 3000
	counts := make([]int, n)
	for trial := 0; trial < trials; trial++ {
		r, _ := NewReservoir[int](k, int64(trial))
		for i := 0; i < n; i++ {
			r.Add(i)
		}
		for _, v := range r.Sample() {
			counts[v]++
		}
	}
	expected := float64(trials) * float64(k) / float64(n) // 300
	for i, c := range counts {
		if math.Abs(float64(c)-expected) > expected*0.35 {
			t.Errorf("element %d retained %d times, expected ~%.0f", i, c, expected)
		}
	}
}

func TestBernoulli(t *testing.T) {
	xs := make([]int, 10000)
	for i := range xs {
		xs[i] = i
	}
	got := Bernoulli(xs, 0.1, 42)
	if len(got) < 800 || len(got) > 1200 {
		t.Errorf("p=0.1 sample size = %d, expected ~1000", len(got))
	}
	if len(Bernoulli(xs, 0, 1)) != 0 {
		t.Error("p=0 must return nothing")
	}
	if len(Bernoulli(xs, 1, 1)) != len(xs) {
		t.Error("p=1 must return everything")
	}
}

func TestSystematic(t *testing.T) {
	xs := make([]int, 100)
	for i := range xs {
		xs[i] = i
	}
	got, err := Systematic(xs, 10, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("size = %d", len(got))
	}
	// Order must be preserved.
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Errorf("order violated: %v", got)
		}
	}
	if _, err := Systematic(xs, 0, 1); err != ErrBadSize {
		t.Error("k=0 accepted")
	}
	all, _ := Systematic(xs, 200, 1)
	if len(all) != 100 {
		t.Errorf("oversized k should return all, got %d", len(all))
	}
}

func TestStratifiedKeepsSmallStrata(t *testing.T) {
	type row struct {
		class string
		id    int
	}
	var xs []row
	for i := 0; i < 990; i++ {
		xs = append(xs, row{"big", i})
	}
	for i := 0; i < 10; i++ {
		xs = append(xs, row{"rare", i})
	}
	got, err := Stratified(xs, func(r row) string { return r.class }, 50, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) > 50 {
		t.Errorf("size = %d > 50", len(got))
	}
	rare := 0
	for _, r := range got {
		if r.class == "rare" {
			rare++
		}
	}
	if rare == 0 {
		t.Error("stratified sampling lost the rare stratum entirely")
	}
}

func TestStratifiedProportionality(t *testing.T) {
	var xs []string
	for i := 0; i < 700; i++ {
		xs = append(xs, "a")
	}
	for i := 0; i < 300; i++ {
		xs = append(xs, "b")
	}
	got, _ := Stratified(xs, func(s string) string { return s }, 100, 5)
	a := 0
	for _, s := range got {
		if s == "a" {
			a++
		}
	}
	if a < 60 || a > 80 {
		t.Errorf("stratum a got %d of 100, expected ~70", a)
	}
}

func TestWeightedPrefersHeavy(t *testing.T) {
	type item struct {
		w  float64
		id int
	}
	var xs []item
	for i := 0; i < 100; i++ {
		w := 1.0
		if i < 5 {
			w = 1000
		}
		xs = append(xs, item{w, i})
	}
	heavyHits := 0
	for trial := 0; trial < 50; trial++ {
		got, err := Weighted(xs, func(it item) float64 { return it.w }, 10, int64(trial))
		if err != nil {
			t.Fatal(err)
		}
		for _, it := range got {
			if it.id < 5 {
				heavyHits++
			}
		}
	}
	// 5 heavy items should essentially always be drawn: ~250 hits of 500.
	if heavyHits < 200 {
		t.Errorf("heavy items drawn %d times over 50 trials, expected >200", heavyHits)
	}
}

func TestWeightedHandlesZeroWeights(t *testing.T) {
	xs := []int{1, 2, 3, 4}
	got, err := Weighted(xs, func(int) float64 { return 0 }, 2, 1)
	if err != nil || len(got) != 2 {
		t.Errorf("zero weights: %v %v", got, err)
	}
}

func TestVisualizationAwareCoverage(t *testing.T) {
	// Dense cluster + sparse outliers: VAS must keep outliers.
	var pts []Point
	for i := 0; i < 1000; i++ {
		pts = append(pts, Point{X: 0.5 + float64(i%10)*1e-6, Y: 0.5})
	}
	outliers := []Point{{0, 0}, {1, 1}, {0, 1}, {1, 0}}
	pts = append(pts, outliers...)

	vas, err := VisualizationAware(pts, 20, 100, 100, 11)
	if err != nil {
		t.Fatal(err)
	}
	cov := PixelCoverage(vas, 100, 100)
	// A uniform sample of 20 from this set would almost surely miss most
	// outliers; VAS must cover at least 4 distinct pixels.
	if cov < 4.0/10000 {
		t.Errorf("VAS coverage = %g, too low", cov)
	}
	found := 0
	for _, p := range vas {
		for _, o := range outliers {
			if p == o {
				found++
			}
		}
	}
	if found < 3 {
		t.Errorf("VAS kept %d/4 outliers", found)
	}
}

func TestVisualizationAwareFillsWhenFewPixels(t *testing.T) {
	pts := []Point{{0, 0}, {0, 0}, {0, 0}, {0, 0}}
	got, err := VisualizationAware(pts, 3, 10, 10, 1)
	if err != nil || len(got) != 3 {
		t.Errorf("expected fill to k: %v %v", got, err)
	}
}

func TestPixelCoverageEdges(t *testing.T) {
	if PixelCoverage(nil, 10, 10) != 0 {
		t.Error("empty coverage should be 0")
	}
	cov := PixelCoverage([]Point{{0, 0}}, 10, 10)
	if cov != 1.0/100 {
		t.Errorf("single point coverage = %g", cov)
	}
}

// Property: samplers never exceed requested size and never invent elements.
func TestSamplerBoundsProperty(t *testing.T) {
	f := func(seed int64, n8, k8 uint8) bool {
		n := int(n8)%200 + 1
		k := int(k8)%50 + 1
		xs := make([]int, n)
		set := map[int]bool{}
		for i := range xs {
			xs[i] = i * 3
			set[i*3] = true
		}
		sys, err := Systematic(xs, k, seed)
		if err != nil || len(sys) > n || len(sys) > max(k, n) {
			return false
		}
		for _, v := range sys {
			if !set[v] {
				return false
			}
		}
		str, err := Stratified(xs, func(v int) string {
			if v%2 == 0 {
				return "even"
			}
			return "odd"
		}, k, seed)
		if err != nil || len(str) > max(k, 2) && len(str) > n {
			return false
		}
		for _, v := range str {
			if !set[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
