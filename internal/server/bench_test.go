package server

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"sort"
	"testing"
	"time"

	"github.com/lodviz/lodviz/internal/rdf"
	"github.com/lodviz/lodviz/internal/store"
)

// synthStore builds a join-heavy synthetic dataset: n items, each typed,
// named, and linked to one of n/10 hub entities which are named in turn.
// The benchmark query walks item -> hub -> name, which is expensive enough
// cold that the cache-hit ratio is unambiguous.
func synthStore(tb testing.TB, n int) *store.Store {
	tb.Helper()
	const ns = "http://bench.example/"
	var triples []rdf.Triple
	typ := rdf.IRI(ns + "Item")
	for i := 0; i < n; i++ {
		item := rdf.IRI(fmt.Sprintf("%sitem/%d", ns, i))
		hub := rdf.IRI(fmt.Sprintf("%shub/%d", ns, i%(n/10)))
		triples = append(triples,
			rdf.Triple{S: item, P: rdf.RDFType, O: typ},
			rdf.Triple{S: item, P: rdf.IRI(ns + "name"), O: rdf.NewLiteral(fmt.Sprintf("item %d", i))},
			rdf.Triple{S: item, P: rdf.IRI(ns + "ref"), O: hub},
		)
	}
	for i := 0; i < n/10; i++ {
		hub := rdf.IRI(fmt.Sprintf("%shub/%d", ns, i))
		triples = append(triples, rdf.Triple{S: hub, P: rdf.IRI(ns + "name"), O: rdf.NewLiteral(fmt.Sprintf("hub %d", i))})
	}
	st, err := store.Load(triples)
	if err != nil {
		tb.Fatal(err)
	}
	return st
}

const benchQuery = `SELECT ?item ?hubName WHERE {
  ?item a <http://bench.example/Item> .
  ?item <http://bench.example/ref> ?hub .
  ?hub <http://bench.example/name> ?hubName
}`

func benchURL(ts *httptest.Server) string {
	return ts.URL + "/sparql?query=" + url.QueryEscape(benchQuery)
}

func timedGet(tb testing.TB, client *http.Client, u, wantCache string) time.Duration {
	tb.Helper()
	start := time.Now()
	resp, err := client.Get(u)
	if err != nil {
		tb.Fatal(err)
	}
	elapsed := time.Since(start)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		tb.Fatalf("status = %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Cache"); wantCache != "" && got != wantCache {
		tb.Fatalf("X-Cache = %q, want %q", got, wantCache)
	}
	return elapsed
}

// TestCacheHitLatency is the acceptance measurement: a repeated identical
// query must be at least 10x faster served from the cache than evaluated
// cold. Cold samples bypass the cache via distinct LIMIT offsets baked into
// otherwise-identical queries; medians over several samples keep scheduler
// noise out.
func TestCacheHitLatency(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	st := synthStore(t, 5000)
	s := New(st, Config{Logger: discardLogger()})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := &http.Client{}

	const samples = 5
	// Cold: each sample is a distinct query text (different LIMIT), so each
	// one parses, plans, and evaluates the full join.
	cold := make([]time.Duration, 0, samples)
	for i := 0; i < samples; i++ {
		q := fmt.Sprintf("%s LIMIT %d", benchQuery, 100000+i)
		u := ts.URL + "/sparql?query=" + url.QueryEscape(q)
		cold = append(cold, timedGet(t, client, u, "MISS"))
	}
	// Hot: one warmed query, repeatedly.
	u := benchURL(ts)
	timedGet(t, client, u, "MISS")
	hot := make([]time.Duration, 0, samples)
	for i := 0; i < samples; i++ {
		hot = append(hot, timedGet(t, client, u, "HIT"))
	}

	sort.Slice(cold, func(i, j int) bool { return cold[i] < cold[j] })
	sort.Slice(hot, func(i, j int) bool { return hot[i] < hot[j] })
	coldMed, hotMed := cold[samples/2], hot[samples/2]
	t.Logf("cold median = %v, hot median = %v, speedup = %.1fx",
		coldMed, hotMed, float64(coldMed)/float64(hotMed))
	if hotMed*10 > coldMed {
		t.Fatalf("cache hit not >=10x faster: cold median %v, hot median %v", coldMed, hotMed)
	}
}

func BenchmarkSPARQLCold(b *testing.B) {
	st := synthStore(b, 5000)
	s := New(st, Config{CacheCapacity: -1, Logger: discardLogger()})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := &http.Client{}
	u := benchURL(ts)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		timedGet(b, client, u, "MISS")
	}
}

func BenchmarkSPARQLCacheHit(b *testing.B) {
	st := synthStore(b, 5000)
	s := New(st, Config{Logger: discardLogger()})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := &http.Client{}
	u := benchURL(ts)
	timedGet(b, client, u, "MISS")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		timedGet(b, client, u, "HIT")
	}
}
