// Package cache implements the sharded LRU response cache behind the lodviz
// HTTP server. Keys are opaque strings that embed the store generation (see
// store.Generation), so a write to the store changes every key and instantly
// orphans all older entries — invalidation needs no coordination with
// writers, and stale entries simply age out of the LRU.
//
// The cache is sharded to keep lock contention off the serving hot path: a
// key is hashed to one of the shards and all list/map operations touch only
// that shard's mutex. Hit/miss/eviction counters are process-wide atomics.
package cache

import (
	"container/list"
	"hash/fnv"
	"sync"
	"sync/atomic"
)

// numShards is the shard count. A modest power of two: enough to spread a
// saturated server's lock traffic, small enough that per-shard LRU capacity
// stays meaningful for tiny caches.
const numShards = 16

// DefaultCapacity is the entry capacity used when New is given a
// non-positive capacity.
const DefaultCapacity = 4096

// Entry is one cached response: the serialized body plus the headers the
// server re-emits on a hit.
type Entry struct {
	// Body is the exact response body that was sent on the miss.
	Body []byte
	// ETag is the strong validator computed from Body.
	ETag string
	// ContentType is the response media type.
	ContentType string
	// Status is the HTTP status the entry was stored with.
	Status int
}

// Stats is a point-in-time snapshot of cache effectiveness.
type Stats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
	Entries   int
	Capacity  int
}

// Cache is a sharded, fixed-capacity LRU map from string keys to Entries.
// All methods are safe for concurrent use.
type Cache struct {
	shards    [numShards]shard
	capacity  int
	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64
}

type shard struct {
	mu    sync.Mutex
	ll    *list.List // front = most recently used
	items map[string]*list.Element
	cap   int
}

type cacheItem struct {
	key   string
	entry Entry
}

// New returns a cache holding at most capacity entries (DefaultCapacity when
// capacity <= 0). Capacity is split evenly across shards, so a pathological
// key distribution can evict slightly before the global capacity is reached.
func New(capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	perShard := (capacity + numShards - 1) / numShards
	c := &Cache{capacity: perShard * numShards}
	for i := range c.shards {
		c.shards[i].ll = list.New()
		c.shards[i].items = make(map[string]*list.Element)
		c.shards[i].cap = perShard
	}
	return c
}

func (c *Cache) shard(key string) *shard {
	h := fnv.New32a()
	h.Write([]byte(key))
	return &c.shards[h.Sum32()%numShards]
}

// Get returns the entry for key, marking it most recently used.
func (c *Cache) Get(key string) (Entry, bool) {
	s := c.shard(key)
	s.mu.Lock()
	el, ok := s.items[key]
	if !ok {
		s.mu.Unlock()
		c.misses.Add(1)
		return Entry{}, false
	}
	s.ll.MoveToFront(el)
	e := el.Value.(*cacheItem).entry
	s.mu.Unlock()
	c.hits.Add(1)
	return e, true
}

// Put stores the entry under key, evicting least-recently-used entries from
// the key's shard as needed. Storing an existing key replaces its entry and
// refreshes its recency.
func (c *Cache) Put(key string, e Entry) {
	s := c.shard(key)
	s.mu.Lock()
	if el, ok := s.items[key]; ok {
		el.Value.(*cacheItem).entry = e
		s.ll.MoveToFront(el)
		s.mu.Unlock()
		return
	}
	s.items[key] = s.ll.PushFront(&cacheItem{key: key, entry: e})
	var evicted uint64
	for s.ll.Len() > s.cap {
		back := s.ll.Back()
		s.ll.Remove(back)
		delete(s.items, back.Value.(*cacheItem).key)
		evicted++
	}
	s.mu.Unlock()
	if evicted > 0 {
		c.evictions.Add(evicted)
	}
}

// Len returns the current number of cached entries.
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += s.ll.Len()
		s.mu.Unlock()
	}
	return n
}

// Purge drops every entry, keeping the counters.
func (c *Cache) Purge() {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		s.ll.Init()
		s.items = make(map[string]*list.Element)
		s.mu.Unlock()
	}
}

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() Stats {
	return Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Entries:   c.Len(),
		Capacity:  c.capacity,
	}
}
