package cache

import (
	"fmt"
	"sync"
	"testing"
)

func TestPutGet(t *testing.T) {
	c := New(8)
	if _, ok := c.Get("missing"); ok {
		t.Fatal("empty cache returned a hit")
	}
	e := Entry{Body: []byte("body"), ETag: `"abc"`, ContentType: "application/json", Status: 200}
	c.Put("k", e)
	got, ok := c.Get("k")
	if !ok {
		t.Fatal("want hit after Put")
	}
	if string(got.Body) != "body" || got.ETag != `"abc"` || got.ContentType != "application/json" || got.Status != 200 {
		t.Fatalf("entry round-trip mismatch: %+v", got)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v, want 1 hit, 1 miss, 1 entry", st)
	}
}

func TestUpdateReplacesEntry(t *testing.T) {
	c := New(8)
	c.Put("k", Entry{Body: []byte("old")})
	c.Put("k", Entry{Body: []byte("new")})
	if c.Len() != 1 {
		t.Fatalf("Len = %d after double Put, want 1", c.Len())
	}
	got, _ := c.Get("k")
	if string(got.Body) != "new" {
		t.Fatalf("Body = %q, want new", got.Body)
	}
}

// TestLRUEviction pins the recency contract per shard: with a capacity of
// numShards (one entry per shard), a second key landing in an occupied shard
// evicts that shard's older entry.
func TestLRUEviction(t *testing.T) {
	c := New(numShards) // 1 entry per shard
	sh := c.shard("a")
	// Find another key that hashes to the same shard as "a".
	collide := ""
	for i := 0; i < 10000; i++ {
		k := fmt.Sprintf("key%d", i)
		if c.shard(k) == sh {
			collide = k
			break
		}
	}
	if collide == "" {
		t.Fatal("no colliding key found")
	}
	c.Put("a", Entry{Body: []byte("a")})
	c.Put(collide, Entry{Body: []byte("b")})
	if _, ok := c.Get("a"); ok {
		t.Fatal("oldest entry survived past shard capacity")
	}
	if _, ok := c.Get(collide); !ok {
		t.Fatal("newest entry was evicted")
	}
	if c.Stats().Evictions == 0 {
		t.Fatal("eviction not counted")
	}
}

// TestLRURecency verifies that a Get refreshes recency: the re-read entry
// survives an insert that evicts, the untouched one goes.
func TestLRURecency(t *testing.T) {
	c := New(numShards * 2) // 2 entries per shard
	sh := c.shard("seed")
	var keys []string
	for i := 0; len(keys) < 3 && i < 100000; i++ {
		k := fmt.Sprintf("key%d", i)
		if c.shard(k) == sh {
			keys = append(keys, k)
		}
	}
	if len(keys) < 3 {
		t.Fatal("not enough colliding keys found")
	}
	c.Put(keys[0], Entry{})
	c.Put(keys[1], Entry{})
	c.Get(keys[0])          // refresh keys[0]
	c.Put(keys[2], Entry{}) // evicts keys[1], the LRU
	if _, ok := c.Get(keys[0]); !ok {
		t.Fatal("recently-read entry was evicted")
	}
	if _, ok := c.Get(keys[1]); ok {
		t.Fatal("least-recently-used entry survived")
	}
}

func TestPurge(t *testing.T) {
	c := New(16)
	for i := 0; i < 10; i++ {
		c.Put(fmt.Sprintf("k%d", i), Entry{})
	}
	c.Purge()
	if c.Len() != 0 {
		t.Fatalf("Len = %d after Purge, want 0", c.Len())
	}
	if _, ok := c.Get("k3"); ok {
		t.Fatal("purged entry still readable")
	}
}

func TestDefaultCapacity(t *testing.T) {
	c := New(0)
	if c.Stats().Capacity < DefaultCapacity {
		t.Fatalf("Capacity = %d, want >= %d", c.Stats().Capacity, DefaultCapacity)
	}
}

// TestConcurrentAccess hammers Get/Put/Len/Stats/Purge from many goroutines;
// run under -race this pins the sharded locking discipline.
func TestConcurrentAccess(t *testing.T) {
	c := New(128)
	const goroutines = 16
	const ops = 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				key := fmt.Sprintf("key%d", (g*31+i)%257)
				switch i % 5 {
				case 0, 1:
					c.Put(key, Entry{Body: []byte(key), Status: 200})
				case 2, 3:
					if e, ok := c.Get(key); ok && string(e.Body) != key {
						t.Errorf("got body %q for key %q", e.Body, key)
					}
				case 4:
					c.Len()
					c.Stats()
				}
			}
		}(g)
	}
	// One goroutine purging concurrently exercises the reset path.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			c.Purge()
		}
	}()
	wg.Wait()
}

// TestGenerationKeysDisjoint documents the invalidation contract the server
// relies on: the same query at two store generations is two distinct keys,
// so a store write can never serve a pre-write body.
func TestGenerationKeysDisjoint(t *testing.T) {
	c := New(16)
	key := func(gen uint64) string { return fmt.Sprintf("sparql|SELECT ?s WHERE { ?s ?p ?o }|g%d", gen) }
	c.Put(key(1), Entry{Body: []byte("old")})
	if _, ok := c.Get(key(2)); ok {
		t.Fatal("entry cached at generation 1 answered a generation-2 lookup")
	}
	c.Put(key(2), Entry{Body: []byte("new")})
	got, ok := c.Get(key(2))
	if !ok || string(got.Body) != "new" {
		t.Fatalf("generation-2 entry = %q, %v", got.Body, ok)
	}
}

func BenchmarkGetHit(b *testing.B) {
	c := New(1024)
	for i := 0; i < 512; i++ {
		c.Put(fmt.Sprintf("key%d", i), Entry{Body: make([]byte, 256)})
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			c.Get(fmt.Sprintf("key%d", i%512))
			i++
		}
	})
}
