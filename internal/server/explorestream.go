package server

import (
	"errors"
	"net/http"

	"github.com/lodviz/lodviz/internal/explore"
	"github.com/lodviz/lodviz/internal/facet"
	"github.com/lodviz/lodviz/internal/progressive"
	"github.com/lodviz/lodviz/internal/server/cache"
	"github.com/lodviz/lodviz/internal/sparql"
)

// exploreSrc is the ID-space source exploration endpoints scan: the store,
// unless a test wrapped it (Config.exploreSource) to gate or instrument
// paging.
func (s *Server) exploreSrc() explore.Source {
	if s.cfg.exploreSource != nil {
		return s.cfg.exploreSource
	}
	return s.st
}

// estimateJSON carries one CLT-bounded progressive estimate on the wire:
// value ± ci95 covers the exact answer with 95% confidence, fraction is the
// share of the dataset scanned when it was taken.
type estimateJSON struct {
	Value    float64 `json:"value"`
	CI95     float64 `json:"ci95"`
	Fraction float64 `json:"fraction"`
}

func encodeEstimate(e progressive.Estimate) estimateJSON {
	return estimateJSON{Value: e.Value, CI95: e.CI95, Fraction: e.Fraction}
}

// facetsStreamBatch is one approximate NDJSON line of /facets/stream.
type facetsStreamBatch struct {
	Fraction float64             `json:"fraction"`
	Scanned  int                 `json:"scanned"`
	Count    int                 `json:"count"`
	Facets   []facetEstimateJSON `json:"facets"`
}

type facetEstimateJSON struct {
	Predicate string                   `json:"predicate"`
	Total     estimateJSON             `json:"total"`
	Values    []facetValueEstimateJSON `json:"values"`
}

type facetValueEstimateJSON struct {
	Term  sparql.JSONTerm `json:"term"`
	Count estimateJSON    `json:"count"`
}

// exploreStreamFinal is the last NDJSON line of a progressive exploration
// stream: the exact result (identical to the buffered endpoint's body) or a
// mid-stream error.
type exploreStreamFinal struct {
	Done     bool    `json:"done"`
	Fraction float64 `json:"fraction"`
	Result   any     `json:"result,omitempty"`
	Error    string  `json:"error,omitempty"`
}

// streamLiner sets up NDJSON streaming on w and returns the per-line writer
// (false once the client is gone) — the chunked plumbing the SPARQL
// streaming endpoint established.
func streamLiner(w http.ResponseWriter) func(v any) bool {
	h := w.Header()
	h.Set("Content-Type", streamContentType)
	h.Set("X-Cache", "BYPASS")
	w.WriteHeader(http.StatusOK)
	return ndjsonLiner(w)
}

// handleFacetsStream serves the facet distribution progressively as NDJSON:
// approximate batches (exact count, CLT-scaled value estimates) while the
// ID walk is still running, then a final done line whose result field is
// byte-equivalent to /facets. Parameters are exactly /facets'. A completed
// stream also fills the buffered endpoint's cache entry, so the next
// /facets request for the same view is a HIT.
func (s *Server) handleFacetsStream(w http.ResponseWriter, r *http.Request) {
	max, filters, rawFilters, errStatus, errMsg := s.facetParams(r)
	if errStatus != 0 {
		writeError(w, errStatus, errMsg)
		return
	}
	ctx, cancel := s.queryCtx(r)
	defer cancel()
	gen := s.st.Generation()
	line := streamLiner(w)

	sess, err := facet.NewSessionCtx(ctx, s.exploreSrc())
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, err.Error())
		return
	}
	sess.MaxValuesPerFacet = max
	for _, f := range filters {
		sess.Apply(f)
	}
	lines := 0
	count, fs, err := sess.Stream(ctx, 0, 1, func(b facet.Batch) bool {
		out := facetsStreamBatch{
			Fraction: b.Fraction,
			Scanned:  b.Scanned,
			Count:    b.Count,
			Facets:   []facetEstimateJSON{},
		}
		for _, fe := range b.Facets {
			fj := facetEstimateJSON{
				Predicate: string(fe.Predicate),
				Total:     encodeEstimate(fe.Total),
				Values:    []facetValueEstimateJSON{},
			}
			for _, v := range fe.Values {
				fj.Values = append(fj.Values, facetValueEstimateJSON{
					Term:  sparql.EncodeTerm(v.Term),
					Count: encodeEstimate(v.Count),
				})
			}
			out.Facets = append(out.Facets, fj)
		}
		if !line(out) {
			return false
		}
		lines++
		return true
	})
	if errors.Is(err, explore.ErrStopped) {
		// Client gone mid-stream: the batches delivered so far still count.
		markStream(w, lines, false)
		return
	}
	if err != nil {
		_, msg := queryError(err)
		markStream(w, lines, line(exploreStreamFinal{Error: msg}))
		return
	}
	resp := encodeFacetsResponse(count, fs)
	if line(exploreStreamFinal{Done: true, Fraction: 1, Result: resp}) {
		markStream(w, lines+1, true)
		s.fillCache(s.facetsKey(max, rawFilters, gen), gen, resp)
	} else {
		markStream(w, lines, false)
	}
}

// statsStreamBatch is one approximate NDJSON line of /stats/stream.
type statsStreamBatch struct {
	Fraction   float64             `json:"fraction"`
	Scanned    int                 `json:"scanned"`
	Predicates []predEstimateJSON  `json:"predicates"`
	Classes    []classEstimateJSON `json:"classes"`
}

type predEstimateJSON struct {
	Predicate        string       `json:"predicate"`
	Triples          estimateJSON `json:"triples"`
	DistinctSubjects int          `json:"distinctSubjects"`
	DistinctObjects  int          `json:"distinctObjects"`
}

type classEstimateJSON struct {
	Class sparql.JSONTerm `json:"class"`
	Count estimateJSON    `json:"count"`
}

// handleStatsStream serves the dataset summary progressively as NDJSON:
// approximate batches with CLT-scaled per-predicate and per-class counts
// while the scan runs, then a final done line whose result field is
// byte-equivalent to /stats (and fills its cache entry).
func (s *Server) handleStatsStream(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := s.queryCtx(r)
	defer cancel()
	gen := s.st.Generation()
	line := streamLiner(w)

	lines := 0
	stats, err := explore.StreamStats(ctx, s.exploreSrc(), 0, 1, func(b explore.StatsBatch) bool {
		out := statsStreamBatch{
			Fraction:   b.Fraction,
			Scanned:    b.Scanned,
			Predicates: []predEstimateJSON{},
			Classes:    []classEstimateJSON{},
		}
		for _, p := range b.Predicates {
			out.Predicates = append(out.Predicates, predEstimateJSON{
				Predicate:        string(p.Predicate),
				Triples:          encodeEstimate(p.Triples),
				DistinctSubjects: p.DistinctSubjects,
				DistinctObjects:  p.DistinctObjects,
			})
		}
		for _, c := range b.Classes {
			out.Classes = append(out.Classes, classEstimateJSON{
				Class: sparql.EncodeTerm(c.Class),
				Count: encodeEstimate(c.Count),
			})
		}
		if !line(out) {
			return false
		}
		lines++
		return true
	})
	if errors.Is(err, explore.ErrStopped) {
		// Client gone mid-stream: the batches delivered so far still count.
		markStream(w, lines, false)
		return
	}
	if err != nil {
		_, msg := queryError(err)
		markStream(w, lines, line(exploreStreamFinal{Error: msg}))
		return
	}
	resp := encodeStatsResponse(stats)
	if line(exploreStreamFinal{Done: true, Fraction: 1, Result: resp}) {
		markStream(w, lines+1, true)
		s.fillCache(s.statsKey(gen), gen, resp)
	} else {
		markStream(w, lines, false)
	}
}

// fillCache publishes a completed stream's exact result under the buffered
// endpoint's cache key, provided the generation is still current — a stream
// that raced a write must not cache a stale answer under the new key's
// generation namespace (the key embeds gen, so this is belt and braces).
func (s *Server) fillCache(key string, gen uint64, resp any) {
	if s.cache == nil || s.st.Generation() != gen {
		return
	}
	body, ct, status := mustJSON(resp)
	if status == http.StatusOK {
		s.cache.Put(key, cache.Entry{Body: body, ETag: etagFor(body), ContentType: ct, Status: status})
		s.met.cacheFills.Inc()
	}
}
