package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/lodviz/lodviz/internal/gen"
	"github.com/lodviz/lodviz/internal/rdf"
	"github.com/lodviz/lodviz/internal/store"
)

// streamFinalLine mirrors exploreStreamFinal with the result kept raw so
// tests can compare it byte-for-byte against the buffered endpoint's body.
type streamFinalLine struct {
	Done     bool            `json:"done"`
	Fraction float64         `json:"fraction"`
	Result   json.RawMessage `json:"result"`
	Error    string          `json:"error"`
}

// readStream drains an NDJSON exploration stream: all batch lines, then the
// final done/error line.
func readStream(t *testing.T, body io.Reader) (batches []json.RawMessage, final streamFinalLine) {
	t.Helper()
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	got := false
	for sc.Scan() {
		line := sc.Bytes()
		var probe struct {
			Done  bool   `json:"done"`
			Error string `json:"error"`
		}
		if err := json.Unmarshal(line, &probe); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", line, err)
		}
		if probe.Done || probe.Error != "" {
			if err := json.Unmarshal(line, &final); err != nil {
				t.Fatal(err)
			}
			got = true
			break
		}
		batches = append(batches, append(json.RawMessage(nil), line...))
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("reading stream: %v", err)
	}
	if !got {
		t.Fatal("stream ended without a done/error line")
	}
	return batches, final
}

func getBody(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

// TestFacetsStreamFinalMatchesBuffered verifies the convergence contract on
// the wire: the stream's final result must be byte-identical to the buffered
// /facets response. The cache is disabled so both sides compute
// independently.
func TestFacetsStreamFinalMatchesBuffered(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{CacheCapacity: -1})
	for _, params := range []string{"", "?max=3", "?filter=" + url.QueryEscape(exNS+"country=<"+exNS+"greece>")} {
		resp, err := http.Get(ts.URL + "/facets/stream" + params)
		if err != nil {
			t.Fatal(err)
		}
		if ct := resp.Header.Get("Content-Type"); ct != streamContentType {
			t.Fatalf("Content-Type = %q, want %q", ct, streamContentType)
		}
		if xc := resp.Header.Get("X-Cache"); xc != "BYPASS" {
			t.Fatalf("X-Cache = %q, want BYPASS", xc)
		}
		_, final := readStream(t, resp.Body)
		resp.Body.Close()
		if !final.Done || final.Error != "" || final.Fraction != 1 {
			t.Fatalf("final line = %+v, want done at fraction 1", final)
		}

		bresp, body := getBody(t, ts.URL+"/facets"+params)
		if bresp.StatusCode != http.StatusOK {
			t.Fatalf("buffered status = %d", bresp.StatusCode)
		}
		if string(final.Result) != strings.TrimSpace(string(body)) {
			t.Fatalf("params %q: stream final differs from buffered body:\nstream:   %s\nbuffered: %s",
				params, final.Result, body)
		}
	}
}

func TestStatsStreamFinalMatchesBuffered(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{CacheCapacity: -1})
	resp, err := http.Get(ts.URL + "/stats/stream")
	if err != nil {
		t.Fatal(err)
	}
	_, final := readStream(t, resp.Body)
	resp.Body.Close()
	if !final.Done || final.Error != "" {
		t.Fatalf("final line = %+v, want done", final)
	}
	bresp, body := getBody(t, ts.URL+"/stats")
	if bresp.StatusCode != http.StatusOK {
		t.Fatalf("buffered status = %d", bresp.StatusCode)
	}
	if string(final.Result) != strings.TrimSpace(string(body)) {
		t.Fatalf("stream final differs from buffered body:\nstream:   %s\nbuffered: %s", final.Result, body)
	}
}

// TestStreamFillsBufferedCache: a completed stream publishes its exact result
// under the buffered endpoint's cache key, so the next buffered request is a
// HIT without ever computing.
func TestStreamFillsBufferedCache(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	for _, ep := range []struct{ stream, buffered string }{
		{"/facets/stream", "/facets"},
		{"/stats/stream", "/stats"},
	} {
		resp, err := http.Get(ts.URL + ep.stream)
		if err != nil {
			t.Fatal(err)
		}
		_, final := readStream(t, resp.Body)
		resp.Body.Close()
		if !final.Done {
			t.Fatalf("%s did not complete", ep.stream)
		}
		bresp, body := getBody(t, ts.URL+ep.buffered)
		if xc := bresp.Header.Get("X-Cache"); xc != "HIT" {
			t.Fatalf("%s after %s: X-Cache = %q, want HIT", ep.buffered, ep.stream, xc)
		}
		if string(final.Result) != strings.TrimSpace(string(body)) {
			t.Fatalf("%s cache fill served different bytes than the stream final", ep.buffered)
		}
	}
}

// pageGatedSource wraps the store's ID-space surface, capping every page at a few
// triples and blocking all pages after the first until released — the
// deterministic way to hold a progressive stream mid-scan.
type pageGatedSource struct {
	*store.Store
	mu      sync.Mutex
	pages   int
	release chan struct{}
}

func (g *pageGatedSource) ForEachIDPage(s, p, o store.ID, pos, max int, fn func(store.IDTriple) bool) (int, bool) {
	g.mu.Lock()
	n := g.pages
	g.pages++
	g.mu.Unlock()
	if n >= 1 {
		<-g.release
	}
	if max > 8 {
		max = 8
	}
	return g.Store.ForEachIDPage(s, p, o, pos, max, fn)
}

// TestFacetsStreamFirstBatchArrivesMidScan is the progressive-delivery proof:
// with every page after the first gated shut, the client still receives a
// parseable approximate batch (fraction < 1, exact count, estimates with
// intervals) — then, once the gate opens, the stream converges to done.
func TestFacetsStreamFirstBatchArrivesMidScan(t *testing.T) {
	st := gen.MiniLODStore()
	gated := &pageGatedSource{Store: st, release: make(chan struct{})}
	s := New(st, Config{Logger: discardLogger(), CacheCapacity: -1, exploreSource: gated})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	defer func() {
		// Unblock any straggling pages even if an assertion bails out early.
		select {
		case <-gated.release:
		default:
			close(gated.release)
		}
	}()

	resp, err := http.Get(ts.URL + "/facets/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	br := bufio.NewReader(resp.Body)

	// The first approximate batch must arrive while the scan is provably
	// stuck: pages >= 2 is only reachable after the gate, and the gate has
	// not been opened yet.
	firstLine, err := br.ReadBytes('\n')
	if err != nil {
		t.Fatalf("reading first batch: %v", err)
	}
	var batch struct {
		Fraction float64         `json:"fraction"`
		Scanned  int             `json:"scanned"`
		Count    int             `json:"count"`
		Facets   json.RawMessage `json:"facets"`
		Done     bool            `json:"done"`
	}
	if err := json.Unmarshal(firstLine, &batch); err != nil {
		t.Fatalf("first line %q: %v", firstLine, err)
	}
	if batch.Done {
		t.Fatal("first line is already the final result; the gate never held the scan")
	}
	if batch.Fraction <= 0 || batch.Fraction >= 1 {
		t.Fatalf("first batch fraction = %v, want in (0,1)", batch.Fraction)
	}
	if batch.Scanned != 8 {
		t.Fatalf("first batch scanned = %d, want exactly the first gated page of 8", batch.Scanned)
	}
	if batch.Count <= 0 {
		t.Fatalf("count = %d, want the exact match-set size from the first batch on", batch.Count)
	}

	// Open the gate; the stream must now refine to the exact final answer.
	close(gated.release)
	_, final := readStream(t, br)
	if !final.Done || final.Error != "" {
		t.Fatalf("final = %+v, want done", final)
	}
	var parsed struct {
		Count  int `json:"count"`
		Facets []struct {
			Predicate string `json:"predicate"`
		} `json:"facets"`
	}
	if err := json.Unmarshal(final.Result, &parsed); err != nil {
		t.Fatal(err)
	}
	if parsed.Count != batch.Count {
		t.Fatalf("final count %d != first-batch count %d (count is exact from the start)", parsed.Count, batch.Count)
	}
	if len(parsed.Facets) == 0 {
		t.Fatal("final result carries no facets")
	}
}

// TestNeighborhoodSampling: identical (sample, seed) requests must serve
// identical bodies with the cache disabled, and sample validation rejects
// non-positive values.
func TestNeighborhoodSampling(t *testing.T) {
	hub := rdf.IRI("http://x/hub")
	var triples []rdf.Triple
	for i := 0; i < 40; i++ {
		leaf := rdf.IRI(fmt.Sprintf("http://x/leaf%d", i))
		if i%2 == 0 {
			triples = append(triples, rdf.Triple{S: hub, P: "http://x/out", O: leaf})
		} else {
			triples = append(triples, rdf.Triple{S: leaf, P: "http://x/in", O: hub})
		}
	}
	st, err := store.Load(triples)
	if err != nil {
		t.Fatal(err)
	}
	s := New(st, Config{Logger: discardLogger(), CacheCapacity: -1})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	q := "/graph/neighborhood?node=" + url.QueryEscape("<http://x/hub>") + "&sample=4&seed=11"
	resp1, body1 := getBody(t, ts.URL+q)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp1.StatusCode, body1)
	}
	var nb struct {
		Sampled  bool            `json:"sampled"`
		Coverage float64         `json:"coverage"`
		Nodes    json.RawMessage `json:"nodes"`
	}
	if err := json.Unmarshal(body1, &nb); err != nil {
		t.Fatal(err)
	}
	if !nb.Sampled {
		t.Fatal("fan-out 40 with sample=4 should report sampled")
	}
	if nb.Coverage <= 0 || nb.Coverage >= 1 {
		t.Fatalf("coverage = %v, want in (0,1)", nb.Coverage)
	}
	_, body2 := getBody(t, ts.URL+q)
	if string(body1) != string(body2) {
		t.Fatal("same (sample, seed) served different neighborhoods")
	}

	for _, bad := range []string{"sample=0", "sample=-3", "sample=abc"} {
		resp, body := getBody(t, ts.URL+"/graph/neighborhood?node="+url.QueryEscape("<http://x/hub>")+"&"+bad)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status = %d (%s), want 400", bad, resp.StatusCode, body)
		}
	}
}

// TestFacetWarming: serving a filtered /facets view must build its ancestor
// views (each filter prefix, down to the unfiltered root) into the response
// cache in the background, so zooming out is a HIT.
func TestFacetWarming(t *testing.T) {
	s, ts, _ := newTestServer(t, Config{FacetWarming: true})
	warmed := make(chan string, 8)
	s.warmHook = func(key string) { warmed <- key }

	params := url.Values{}
	params.Add("filter", exNS+"country=<"+exNS+"greece>")
	params.Add("filter", exNS+"population=664046")
	resp, body := getBody(t, ts.URL+"/facets?"+params.Encode())
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("filtered request status = %d: %s", resp.StatusCode, body)
	}

	// Two filters -> two ancestor views (one-filter prefix and the root).
	for i := 0; i < 2; i++ {
		select {
		case <-warmed:
		case <-time.After(10 * time.Second):
			t.Fatalf("warm job %d never finished", i)
		}
	}

	uresp, _ := getBody(t, ts.URL+"/facets")
	if xc := uresp.Header.Get("X-Cache"); xc != "HIT" {
		t.Fatalf("unfiltered /facets after warming: X-Cache = %q, want HIT", xc)
	}

	// The same filtered view again must not schedule duplicate warm jobs.
	getBody(t, ts.URL+"/facets?"+params.Encode())
	select {
	case key := <-warmed:
		t.Fatalf("duplicate warm job for %q", key)
	case <-time.After(100 * time.Millisecond):
	}
}
