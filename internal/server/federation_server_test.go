package server

import (
	"net/http"
	"net/url"
	"strings"
	"testing"

	"github.com/lodviz/lodviz/internal/rdf"
)

func TestCORSHeadersOnEveryResponse(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	for _, path := range []string{"/healthz", "/stats", "/sparql?query=" + url.QueryEscape("ASK { }")} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		if got := resp.Header.Get("Access-Control-Allow-Origin"); got != "*" {
			t.Errorf("%s: Access-Control-Allow-Origin = %q, want *", path, got)
		}
		if got := resp.Header.Get("Access-Control-Expose-Headers"); !strings.Contains(got, "ETag") {
			t.Errorf("%s: Access-Control-Expose-Headers = %q", path, got)
		}
	}
}

func TestCORSPreflight(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	req, err := http.NewRequest(http.MethodOptions, ts.URL+"/sparql", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Origin", "http://explorer.example")
	req.Header.Set("Access-Control-Request-Method", "POST")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("preflight status = %d, want 204", resp.StatusCode)
	}
	allow := resp.Header.Get("Access-Control-Allow-Methods")
	for _, m := range []string{"GET", "POST", "OPTIONS"} {
		if !strings.Contains(allow, m) {
			t.Errorf("Allow-Methods %q missing %s", allow, m)
		}
	}
	if got := resp.Header.Get("Access-Control-Allow-Headers"); !strings.Contains(got, "Content-Type") {
		t.Errorf("Allow-Headers = %q", got)
	}
	if got := resp.Header.Get("Access-Control-Max-Age"); got == "" {
		t.Error("Max-Age missing on preflight")
	}
}

// TestNoCORSOnWriteRoute pins the deliberate asymmetry: the unauthenticated
// write path must not approve cross-origin requests, or any webpage could
// mutate a reachable store through a visitor's browser.
func TestNoCORSOnWriteRoute(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	req, err := http.NewRequest(http.MethodOptions, ts.URL+"/triples", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Origin", "http://evil.example")
	req.Header.Set("Access-Control-Request-Method", "POST")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusNoContent {
		t.Fatal("preflight on /triples approved; writes must not be CORS-enabled")
	}
	if got := resp.Header.Get("Access-Control-Allow-Origin"); got != "" {
		t.Errorf("Access-Control-Allow-Origin = %q on write route, want unset", got)
	}

	// Direct (non-browser) POSTs keep working and also carry no CORS grant.
	post, err := http.Post(ts.URL+"/triples", "application/n-triples",
		strings.NewReader("<http://e/s> <http://e/p> \"v\" .\n"))
	if err != nil {
		t.Fatal(err)
	}
	post.Body.Close()
	if post.StatusCode != http.StatusOK {
		t.Fatalf("direct POST /triples status = %d", post.StatusCode)
	}
	if got := post.Header.Get("Access-Control-Allow-Origin"); got != "" {
		t.Errorf("Access-Control-Allow-Origin = %q on POST response, want unset", got)
	}
}

func TestSearchEndpoint(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	var doc struct {
		Query string `json:"query"`
		Hits  []struct {
			Entity struct {
				Type  string `json:"type"`
				Value string `json:"value"`
			} `json:"entity"`
			Score   float64 `json:"score"`
			Snippet string  `json:"snippet"`
		} `json:"hits"`
	}
	resp := getJSON(t, ts.URL+"/search?q=athens", &doc)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if len(doc.Hits) == 0 {
		t.Fatal("search for athens found nothing in MiniLOD")
	}
	if doc.Hits[0].Score <= 0 {
		t.Errorf("top hit score = %v", doc.Hits[0].Score)
	}

	// Repeat request is a cache hit (the index is generation-keyed).
	resp = getJSON(t, ts.URL+"/search?q=athens", &doc)
	if got := resp.Header.Get("X-Cache"); got != "HIT" {
		t.Errorf("X-Cache on repeat = %q, want HIT", got)
	}

	// Missing q is a client error.
	resp = getJSON(t, ts.URL+"/search", nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("missing q: status = %d, want 400", resp.StatusCode)
	}
	resp = getJSON(t, ts.URL+"/search?q=athens&limit=0", nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("limit=0: status = %d, want 400", resp.StatusCode)
	}
}

func TestCompleteEndpoint(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	var doc struct {
		Prefix      string   `json:"prefix"`
		Completions []string `json:"completions"`
	}
	resp := getJSON(t, ts.URL+"/complete?prefix=ath", &doc)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	found := false
	for _, c := range doc.Completions {
		if c == "athens" {
			found = true
		}
	}
	if !found {
		t.Errorf("completions = %v, want athens", doc.Completions)
	}
	resp = getJSON(t, ts.URL+"/complete", nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("missing prefix: status = %d, want 400", resp.StatusCode)
	}
}

// TestSearchSeesWrites pins the index-rebuild contract: a write advances
// the generation and the next search runs over a fresh index.
func TestSearchSeesWrites(t *testing.T) {
	_, ts, st := newTestServer(t, Config{})
	var doc struct {
		Hits []struct {
			Snippet string `json:"snippet"`
		} `json:"hits"`
	}
	getJSON(t, ts.URL+"/search?q=zanzibar", &doc)
	if len(doc.Hits) != 0 {
		t.Fatalf("zanzibar already present: %+v", doc.Hits)
	}
	if _, err := st.AddBatch([]rdf.Triple{{
		S: rdf.IRI(exNS + "zanzibar"),
		P: rdf.IRI(exNS + "label"),
		O: rdf.NewLiteral("Zanzibar old town"),
	}}); err != nil {
		t.Fatal(err)
	}
	getJSON(t, ts.URL+"/search?q=zanzibar", &doc)
	if len(doc.Hits) == 0 {
		t.Fatal("search does not see the ingested entity after a write")
	}
}

// TestServiceMentionDoesNotBypassCache pins exact SERVICE detection: a
// query whose IRIs merely contain the word keeps response caching.
func TestServiceMentionDoesNotBypassCache(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	q := url.QueryEscape(`SELECT * WHERE { ?s <http://example.org/services/offered> ?o }`)
	for i, want := range []string{"MISS", "HIT"} {
		resp, err := http.Get(ts.URL + "/sparql?query=" + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if got := resp.Header.Get("X-Cache"); got != want {
			t.Errorf("request %d: X-Cache = %q, want %q", i, got, want)
		}
	}
}

func TestFederationEndpointEmptyMesh(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	var doc struct {
		Endpoints []struct{} `json:"endpoints"`
		Cache     *struct{}  `json:"cache"`
	}
	resp := getJSON(t, ts.URL+"/federation", &doc)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if len(doc.Endpoints) != 0 {
		t.Errorf("endpoints = %d, want 0 on a fresh node", len(doc.Endpoints))
	}
	if doc.Cache == nil {
		t.Error("cache stats missing (default mesh caches)")
	}
}

func TestFederationEndpointListsPeers(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{Peers: []string{"http://peer-b.example/sparql"}})
	var doc struct {
		Endpoints []struct {
			URL   string `json:"url"`
			State string `json:"state"`
		} `json:"endpoints"`
	}
	getJSON(t, ts.URL+"/federation", &doc)
	if len(doc.Endpoints) != 1 || doc.Endpoints[0].URL != "http://peer-b.example/sparql" {
		t.Fatalf("endpoints = %+v", doc.Endpoints)
	}
	if doc.Endpoints[0].State != "closed" {
		t.Errorf("fresh peer state = %q, want closed", doc.Endpoints[0].State)
	}
}
