package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"github.com/lodviz/lodviz/internal/core"
	"github.com/lodviz/lodviz/internal/explain"
	"github.com/lodviz/lodviz/internal/explore"
	"github.com/lodviz/lodviz/internal/facet"
	"github.com/lodviz/lodviz/internal/federation"
	"github.com/lodviz/lodviz/internal/ntriples"
	"github.com/lodviz/lodviz/internal/rdf"
	"github.com/lodviz/lodviz/internal/server/cache"
	"github.com/lodviz/lodviz/internal/sparql"
	"github.com/lodviz/lodviz/internal/store"
)

// maxQueryBytes bounds a POSTed SPARQL query body.
const maxQueryBytes = 1 << 20

// maxIngestBytes bounds one POST /triples body.
const maxIngestBytes = 64 << 20

// handleSPARQL implements the SPARQL 1.1 Protocol query and update
// operations on one endpoint. A query arrives as ?query= on GET, as a form
// field on an urlencoded POST, or as the raw body with Content-Type
// application/sparql-query; results are SPARQL JSON. An update arrives only
// by POST — as an `update` form field or a raw application/sparql-update
// body — and is dispatched to handleUpdate. Query responses are cached
// under the whitespace/comment-normalized query text plus the store
// generation — except queries with a SERVICE clause, whose results depend
// on remote data the local generation cannot see; those bypass the response
// cache and rely on the federation layer's TTL-bounded remote-result cache
// instead.
func (s *Server) handleSPARQL(w http.ResponseWriter, r *http.Request) {
	q, isUpdate, errStatus, errMsg := sparqlRequestText(r)
	if errStatus != 0 {
		writeError(w, errStatus, errMsg)
		return
	}
	if isUpdate {
		s.handleUpdate(w, r, q)
		return
	}
	// ?explain=1 attaches the per-query execution trace to the response.
	// Explained responses always bypass the cache: the trace describes the
	// evaluation that just ran, and a cached body would carry none.
	explainReq := r.URL.Query().Get("explain") == "1"
	norm := NormalizeQuery(q)
	build := func() ([]byte, string, int) {
		ctx, cancel := s.queryCtx(r)
		defer cancel()
		var tr *explain.Trace
		if explainReq || s.cfg.SlowQueryThreshold > 0 {
			tr = explain.NewTrace()
		}
		start := time.Now()
		res, err := sparql.ExecCtx(ctx, s.querySource(), q, sparql.Options{
			Parallelism: s.cfg.Parallelism, Service: s.mesh,
			Metrics: s.engineMet, Trace: tr,
		})
		tr.Finish()
		if err != nil {
			s.noteSlowQuery(q, time.Since(start), 0, tr)
			status, msg := queryError(err)
			return errorJSON(msg), "application/json", status
		}
		s.noteSlowQuery(q, time.Since(start), len(res.Rows), tr)
		body, err := res.JSON()
		if err != nil {
			return errorJSON("encoding results: " + err.Error()), "application/json", http.StatusInternalServerError
		}
		if explainReq {
			if body, err = spliceExplain(body, tr); err != nil {
				return errorJSON("encoding trace: " + err.Error()), "application/json", http.StatusInternalServerError
			}
		}
		return body, sparql.JSONContentType, http.StatusOK
	}
	if explainReq || queryUsesService(norm, q) {
		s.serveUncached(w, r, build)
		return
	}
	key := fmt.Sprintf("sparql|%s|g%d", norm, s.st.Generation())
	s.serveCached(w, r, key, build)
}

// spliceExplain adds an "explain" member carrying the trace to a SPARQL
// JSON results body. HTML escaping stays off end to end so the pattern
// details' IRI angle brackets survive readable.
func spliceExplain(body []byte, tr *explain.Trace) ([]byte, error) {
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(body, &doc); err != nil {
		return nil, err
	}
	tb, err := tr.MarshalJSON()
	if err != nil {
		return nil, err
	}
	doc["explain"] = tb
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(doc); err != nil {
		return nil, err
	}
	return bytes.TrimSuffix(buf.Bytes(), []byte("\n")), nil
}

// noteSlowQuery counts and logs a query at or over the slow-query
// threshold, with the execution-plan summary from its trace.
func (s *Server) noteSlowQuery(q string, dur time.Duration, rows int, tr *explain.Trace) {
	if s.cfg.SlowQueryThreshold <= 0 || dur < s.cfg.SlowQueryThreshold {
		return
	}
	s.met.slowQueries.Inc()
	if len(q) > 400 {
		q = q[:400] + "…"
	}
	s.cfg.Logger.Warn("slow query",
		"dur", dur.Round(time.Microsecond).String(),
		"rows", rows,
		"query", q,
		"plan", tr.Summary(),
	)
}

// queryUsesService detects a SERVICE clause exactly. The substring check
// is a pre-filter keeping the common cached path parse-free (a SERVICE
// clause cannot exist without the literal keyword; comments are already
// stripped from norm); only queries containing the word pay one extra
// parse, so an IRI or literal that merely mentions "service" keeps its
// cacheability. Unparseable queries return true — the 400 they produce is
// not cacheable anyway.
func queryUsesService(norm, raw string) bool {
	if !strings.Contains(strings.ToUpper(norm), "SERVICE") {
		return false
	}
	parsed, err := sparql.Parse(raw)
	if err != nil {
		return true
	}
	return sparql.HasService(parsed.Where)
}

// sparqlRequestText extracts the query or update string per the SPARQL
// Protocol; a non-zero status signals a client error. Updates ride only on
// POST — the protocol has no GET binding for updates, so ?update= on a GET
// is just an absent query.
func sparqlRequestText(r *http.Request) (q string, isUpdate bool, errStatus int, errMsg string) {
	switch r.Method {
	case http.MethodGet:
		q = r.URL.Query().Get("query")
	case http.MethodPost:
		ct := r.Header.Get("Content-Type")
		if i := strings.IndexByte(ct, ';'); i >= 0 {
			ct = ct[:i]
		}
		ct = strings.TrimSpace(ct)
		switch ct {
		case "application/x-www-form-urlencoded", "":
			r.Body = http.MaxBytesReader(nil, r.Body, maxQueryBytes)
			if err := r.ParseForm(); err != nil {
				return "", false, http.StatusBadRequest, "parsing form body: " + err.Error()
			}
			q = r.PostForm.Get("query")
			if u := r.PostForm.Get("update"); u != "" {
				if q != "" {
					return "", false, http.StatusBadRequest, "request carries both query and update"
				}
				return u, true, 0, ""
			}
		case "application/sparql-query", "application/sparql-update":
			body, err := io.ReadAll(http.MaxBytesReader(nil, r.Body, maxQueryBytes))
			if err != nil {
				return "", false, http.StatusBadRequest, "reading query body: " + err.Error()
			}
			q = string(body)
			if ct == "application/sparql-update" {
				if strings.TrimSpace(q) == "" {
					return "", false, http.StatusBadRequest, "missing update body"
				}
				return q, true, 0, ""
			}
		default:
			return "", false, http.StatusUnsupportedMediaType, "unsupported Content-Type " + ct +
				" (use application/x-www-form-urlencoded, application/sparql-query, or application/sparql-update)"
		}
	}
	if strings.TrimSpace(q) == "" {
		return "", false, http.StatusBadRequest, "missing query parameter"
	}
	return q, false, 0, ""
}

// updateResponse is the JSON shape of a successful SPARQL update.
type updateResponse struct {
	Inserted   int    `json:"inserted"`
	Deleted    int    `json:"deleted"`
	Ops        int    `json:"ops"`
	Generation uint64 `json:"generation"`
}

// handleUpdate executes a SPARQL update request. Updates share /sparql's
// route (the protocol says the update operation may live on the query
// endpoint), and that route is CORS-enabled for browser exploration UIs —
// so its preflight would approve a cross-origin POST that this
// unauthenticated server must not honor for writes. Mirroring writeRoute's
// policy on POST /triples, any update bearing an Origin header is refused
// before execution: browser UIs read cross-origin, writes stay same-origin
// (or non-browser). Cache invalidation is free: every response cache key
// embeds the store generation, which an effective update advances.
func (s *Server) handleUpdate(w http.ResponseWriter, r *http.Request, text string) {
	if r.Header.Get("Origin") != "" {
		writeError(w, http.StatusForbidden, "cross-origin SPARQL updates are not allowed")
		return
	}
	ctx, cancel := s.queryCtx(r)
	defer cancel()
	res, err := sparql.ExecUpdateCtx(ctx, s.st, text, sparql.Options{Parallelism: s.cfg.Parallelism, Metrics: s.engineMet})
	if err != nil {
		status, msg := queryError(err)
		writeError(w, status, msg)
		return
	}
	writeJSON(w, http.StatusOK, updateResponse{
		Inserted:   res.Inserted,
		Deleted:    res.Deleted,
		Ops:        res.Ops,
		Generation: s.st.Generation(),
	})
}

// handleLedgerRoot serves the mutation ledger's current root and coverage.
// 404 when the server runs without a WAL-backed ledger. Never cached: the
// root must reflect the instant it is asked.
func (s *Server) handleLedgerRoot(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Ledger == nil {
		writeError(w, http.StatusNotFound, "no mutation ledger configured (start with -wal)")
		return
	}
	writeJSON(w, http.StatusOK, s.cfg.Ledger.Root())
}

// handleLedgerProof serves an inclusion proof for one WAL sequence
// (?seq=N) against the current ledger root.
func (s *Server) handleLedgerProof(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Ledger == nil {
		writeError(w, http.StatusNotFound, "no mutation ledger configured (start with -wal)")
		return
	}
	seq, err := strconv.ParseUint(r.URL.Query().Get("seq"), 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, "seq must be a non-negative integer")
		return
	}
	proof, err := s.cfg.Ledger.Proof(seq)
	if err != nil {
		writeError(w, http.StatusNotFound, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, proof)
}

func errorJSON(msg string) []byte {
	b, _ := json.Marshal(errorBody{Error: msg})
	return b
}

// facetsResponse is the /facets JSON shape.
type facetsResponse struct {
	Count  int         `json:"count"`
	Facets []facetJSON `json:"facets"`
}

type facetJSON struct {
	Predicate string           `json:"predicate"`
	Total     int              `json:"total"`
	Values    []facetValueJSON `json:"values"`
}

type facetValueJSON struct {
	Term  sparql.JSONTerm `json:"term"`
	Count int             `json:"count"`
}

// facetParams validates the /facets and /facets/stream parameters:
// conjunctive restrictions arrive as repeated filter=<predicate>=<value>
// parameters (rawFilters keeps their wire form for canonical cache keys);
// max=<n> caps values listed per facet.
func (s *Server) facetParams(r *http.Request) (max int, filters []facet.Filter, rawFilters []string, errStatus int, errMsg string) {
	max = s.cfg.MaxFacetValues
	if v := r.URL.Query().Get("max"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			return 0, nil, nil, http.StatusBadRequest, "max must be a positive integer"
		}
		max = n
	}
	rawFilters = append(rawFilters, r.URL.Query()["filter"]...)
	sort.Strings(rawFilters)
	for _, f := range rawFilters {
		pred, val, ok := strings.Cut(f, "=")
		if !ok {
			return 0, nil, nil, http.StatusBadRequest, "filter must be <predicate>=<value>: " + f
		}
		term, err := parseTermParam(val)
		if err != nil {
			return 0, nil, nil, http.StatusBadRequest, "filter value: " + err.Error()
		}
		filters = append(filters, facet.Filter{Predicate: rdf.IRI(strings.Trim(pred, "<>")), Value: term})
	}
	return max, filters, rawFilters, 0, ""
}

// facetsKey is the canonical facet cache key: defaulted max and sorted
// filters, so /facets, /facets?max=<default>, and a completed
// /facets/stream all land on the same entry.
func (s *Server) facetsKey(max int, rawFilters []string, gen uint64) string {
	return fmt.Sprintf("facets|m%d|%s|g%d", max, strings.Join(rawFilters, "\x00"), gen)
}

// buildFacetsResponse runs the ID-space facet computation; shared by the
// buffered handler, the streaming handler's exact final batch, and warm
// jobs, so all three produce byte-identical JSON.
func (s *Server) buildFacetsResponse(ctx context.Context, max int, filters []facet.Filter) (facetsResponse, error) {
	sess, err := facet.NewSessionCtx(ctx, s.exploreSrc())
	if err != nil {
		return facetsResponse{}, err
	}
	sess.MaxValuesPerFacet = max
	for _, f := range filters {
		sess.Apply(f)
	}
	count, err := sess.CountCtx(ctx)
	if err != nil {
		return facetsResponse{}, err
	}
	fs, err := sess.FacetsCtx(ctx)
	if err != nil {
		return facetsResponse{}, err
	}
	return encodeFacetsResponse(count, fs), nil
}

func encodeFacetsResponse(count int, fs []facet.Facet) facetsResponse {
	resp := facetsResponse{Count: count, Facets: []facetJSON{}}
	for _, f := range fs {
		fj := facetJSON{Predicate: string(f.Predicate), Total: f.Total, Values: []facetValueJSON{}}
		for _, v := range f.Values {
			fj.Values = append(fj.Values, facetValueJSON{Term: sparql.EncodeTerm(v.Term), Count: v.Count})
		}
		resp.Facets = append(resp.Facets, fj)
	}
	return resp
}

// handleFacets computes facet distributions over the dataset's entity set —
// in dictionary-ID space, with the request context (bounded by the query
// timeout) threaded into the scans. Serving a filtered view schedules
// background warming of its ancestor views when Config.FacetWarming is on.
func (s *Server) handleFacets(w http.ResponseWriter, r *http.Request) {
	max, filters, rawFilters, errStatus, errMsg := s.facetParams(r)
	if errStatus != 0 {
		writeError(w, errStatus, errMsg)
		return
	}
	s.serveCached(w, r, s.facetsKey(max, rawFilters, s.st.Generation()), func() ([]byte, string, int) {
		ctx, cancel := s.queryCtx(r)
		defer cancel()
		resp, err := s.buildFacetsResponse(ctx, max, filters)
		if err != nil {
			status, msg := queryError(err)
			return errorJSON(msg), "application/json", status
		}
		return mustJSON(resp)
	})
	s.warmFacetAncestors(max, filters, rawFilters)
}

// warmFacetAncestors schedules background builds of the filter-prefix views
// of a just-served facet request: a browsing session that drilled down is
// one click from zooming back out, so those responses are built off the
// request path and put in the response cache. Jobs are deduplicated by
// target key (which embeds the generation), bounded by a small semaphore,
// and re-check the generation before publishing so a stale answer is never
// cached.
func (s *Server) warmFacetAncestors(max int, filters []facet.Filter, rawFilters []string) {
	if s.warmSeen == nil || len(filters) == 0 {
		return
	}
	gen := s.st.Generation()
	for i := len(filters) - 1; i >= 0; i-- {
		key := s.facetsKey(max, rawFilters[:i], gen)
		if s.warmSeen.Contains(key) {
			continue
		}
		s.warmSeen.Put(key, struct{}{})
		prefix := filters[:i]
		go func(key string, prefix []facet.Filter) {
			s.warmSem <- struct{}{}
			defer func() { <-s.warmSem }()
			// Warm jobs deliberately outlive the request that spawned
			// them; their lifetime is the query timeout, not the request.
			//lint:allow ctxflow detached cache-warm job: bounded by QueryTimeout, must survive the originating request
			ctx, cancel := context.WithTimeout(context.Background(), s.cfg.QueryTimeout)
			defer cancel()
			resp, err := s.buildFacetsResponse(ctx, max, prefix)
			if err == nil && s.st.Generation() == gen {
				if body, ct, status := mustJSON(resp); status == http.StatusOK {
					s.cache.Put(key, cache.Entry{Body: body, ETag: etagFor(body), ContentType: ct, Status: status})
				}
			}
			if s.warmHook != nil {
				s.warmHook(key)
			}
		}(key, prefix)
	}
}

// neighborhoodResponse is the /graph/neighborhood JSON shape: nodes carries
// the induced vertex set (the start node first), edges refers to nodes by
// index. sampled and coverage appear when a sample= request truncated a
// huge-fanout node: coverage is the worst per-node fraction of adjacent
// statements actually expanded.
type neighborhoodResponse struct {
	Node     string            `json:"node"`
	Hops     int               `json:"hops"`
	Nodes    []sparql.JSONTerm `json:"nodes"`
	Edges    []edgeJSON        `json:"edges"`
	Sampled  bool              `json:"sampled,omitempty"`
	Coverage float64           `json:"coverage,omitempty"`
}

type edgeJSON struct {
	From  int    `json:"from"`
	To    int    `json:"to"`
	Label string `json:"label"`
}

// handleNeighborhood returns the k-hop neighborhood subgraph of one resource
// (node=<IRI>, hops=<n>, default 1) — the incremental-exploration primitive
// graph front-ends issue on every node expansion. The traversal runs
// directly over the store's ID permutations (the old implementation rebuilt
// the entire materialized graph per request), so the cost is proportional
// to the neighborhood. sample=<k> bounds the expanded statements per node
// through seed-deterministic reservoirs (seed=<n>, default 0) for
// huge-fanout nodes; the response then reports sampled and coverage.
func (s *Server) handleNeighborhood(w http.ResponseWriter, r *http.Request) {
	nodeParam := r.URL.Query().Get("node")
	if nodeParam == "" {
		writeError(w, http.StatusBadRequest, "missing node parameter")
		return
	}
	term, err := parseTermParam(nodeParam)
	if err != nil {
		writeError(w, http.StatusBadRequest, "node: "+err.Error())
		return
	}
	hops := 1
	if v := r.URL.Query().Get("hops"); v != "" {
		hops, err = strconv.Atoi(v)
		if err != nil || hops < 1 || hops > 8 {
			writeError(w, http.StatusBadRequest, "hops must be an integer in [1,8]")
			return
		}
	}
	sample := 0
	if v := r.URL.Query().Get("sample"); v != "" {
		sample, err = strconv.Atoi(v)
		if err != nil || sample < 1 {
			writeError(w, http.StatusBadRequest, "sample must be a positive integer")
			return
		}
	}
	var seed int64
	if v := r.URL.Query().Get("seed"); v != "" {
		seed, err = strconv.ParseInt(v, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, "seed must be an integer")
			return
		}
	}
	s.serveCached(w, r, s.cacheKey(r), func() ([]byte, string, int) {
		ctx, cancel := s.queryCtx(r)
		defer cancel()
		nb, err := explore.FindNeighborhood(ctx, s.exploreSrc(), term, explore.NeighborhoodOptions{
			Hops: hops, Sample: sample, Seed: seed,
		})
		if errors.Is(err, explore.ErrNodeNotFound) {
			return errorJSON("node not found: " + term.String()), "application/json", http.StatusNotFound
		}
		if err != nil {
			status, msg := queryError(err)
			return errorJSON(msg), "application/json", status
		}
		resp := neighborhoodResponse{
			Node: term.String(), Hops: hops, Edges: []edgeJSON{},
			Sampled: nb.Sampled, Coverage: nb.Coverage,
		}
		if !nb.Sampled {
			resp.Coverage = 0 // omitted from JSON; implied 1 for exact results
		}
		for _, n := range nb.Nodes {
			resp.Nodes = append(resp.Nodes, sparql.EncodeTerm(n))
		}
		for _, e := range nb.Edges {
			resp.Edges = append(resp.Edges, edgeJSON{From: e.From, To: e.To, Label: string(e.Pred)})
		}
		return mustJSON(resp)
	})
}

// hetreeResponse is the /hetree JSON shape: the budget-bounded level cut of
// the hierarchical aggregation tree over one numeric property.
type hetreeResponse struct {
	Property string           `json:"property"`
	Mode     string           `json:"mode"`
	Height   int              `json:"height"`
	Items    int              `json:"items"`
	Nodes    []hetreeNodeJSON `json:"nodes"`
}

type hetreeNodeJSON struct {
	Lo    float64 `json:"lo"`
	Hi    float64 `json:"hi"`
	Count int     `json:"count"`
	Mean  float64 `json:"mean"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	Depth int     `json:"depth"`
	Leaf  bool    `json:"leaf"`
}

// handleHETree serves the multilevel numeric overview (prop=<IRI>,
// budget=<maxNodes>, default 64): the widest tree level that fits the budget.
func (s *Server) handleHETree(w http.ResponseWriter, r *http.Request) {
	propParam := r.URL.Query().Get("prop")
	if propParam == "" {
		writeError(w, http.StatusBadRequest, "missing prop parameter")
		return
	}
	budget := 64
	if v := r.URL.Query().Get("budget"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			writeError(w, http.StatusBadRequest, "budget must be a positive integer")
			return
		}
		budget = n
	}
	prop := rdf.IRI(strings.Trim(propParam, "<>"))
	s.serveCached(w, r, s.cacheKey(r), func() ([]byte, string, int) {
		ctx, cancel := s.queryCtx(r)
		defer cancel()
		tree, err := core.NewExplorer(s.st, core.DefaultPreferences()).NumericHierarchyCtx(ctx, prop)
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			status, msg := queryError(err)
			return errorJSON(msg), "application/json", status
		}
		if err != nil {
			return errorJSON(err.Error()), "application/json", http.StatusNotFound
		}
		resp := hetreeResponse{
			Property: string(prop),
			Mode:     tree.Mode().String(),
			Height:   tree.Height(),
			Items:    tree.Len(),
			Nodes:    []hetreeNodeJSON{},
		}
		for _, n := range tree.LevelFor(budget) {
			resp.Nodes = append(resp.Nodes, hetreeNodeJSON{
				Lo: n.Lo, Hi: n.Hi, Count: n.Count, Mean: n.Mean(),
				Min: n.Min, Max: n.Max, Depth: n.Depth, Leaf: n.IsLeaf(),
			})
		}
		return mustJSON(resp)
	})
}

// statsResponse is the /stats JSON shape.
type statsResponse struct {
	Triples    int             `json:"triples"`
	Terms      int             `json:"terms"`
	Predicates []predStatJSON  `json:"predicates"`
	Classes    []classStatJSON `json:"classes"`
}

type predStatJSON struct {
	Predicate        string `json:"predicate"`
	Triples          int    `json:"triples"`
	DistinctSubjects int    `json:"distinctSubjects"`
	DistinctObjects  int    `json:"distinctObjects"`
	LiteralObjects   int    `json:"literalObjects"`
}

type classStatJSON struct {
	Class sparql.JSONTerm `json:"class"`
	Count int             `json:"count"`
}

// statsKey is the canonical /stats cache key; the completed streaming
// endpoint fills the same entry.
func (s *Server) statsKey(gen uint64) string {
	return fmt.Sprintf("stats|g%d", gen)
}

// encodeStatsResponse converts store.Stats to the /stats JSON shape; shared
// by the buffered handler and the streaming handler's exact final batch so
// both produce byte-identical JSON.
func encodeStatsResponse(stats store.Stats) statsResponse {
	resp := statsResponse{
		Triples:    stats.Triples,
		Terms:      stats.Terms,
		Predicates: []predStatJSON{},
		Classes:    []classStatJSON{},
	}
	for _, p := range stats.Predicates {
		resp.Predicates = append(resp.Predicates, predStatJSON{
			Predicate:        string(p.Predicate),
			Triples:          p.Triples,
			DistinctSubjects: p.DistinctSubjects,
			DistinctObjects:  p.DistinctObjects,
			LiteralObjects:   p.LiteralObjects,
		})
	}
	for cls, n := range stats.Classes {
		resp.Classes = append(resp.Classes, classStatJSON{Class: sparql.EncodeTerm(cls), Count: n})
	}
	sort.Slice(resp.Classes, func(i, j int) bool {
		if resp.Classes[i].Count != resp.Classes[j].Count {
			return resp.Classes[i].Count > resp.Classes[j].Count
		}
		return resp.Classes[i].Class.Value < resp.Classes[j].Class.Value
	})
	return resp
}

// handleStats serves the dataset summary (LODeX-style source statistics).
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.serveCached(w, r, s.statsKey(s.st.Generation()), func() ([]byte, string, int) {
		return mustJSON(encodeStatsResponse(s.st.ComputeStats()))
	})
}

// ingestResponse is the POST /triples JSON shape. Added counts the triples
// that actually changed the store (duplicates of existing triples count
// zero), so clients can tell a no-op ingest from a mutating one.
type ingestResponse struct {
	Added      int    `json:"added"`
	Received   int    `json:"received"`
	Triples    int    `json:"triples"`
	Generation uint64 `json:"generation"`
}

// handleIngest applies an N-Triples batch from the request body — the
// dynamic-data path. The whole batch is decoded and validated before the
// store is touched and then applied in one atomic AddBatch, so a 400
// response (malformed syntax or an invalid triple anywhere in the body)
// guarantees the store is exactly as it was: no partial writes, no spurious
// generation bump, no cache invalidation. A batch that does change the store
// advances the generation exactly once.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	// The full batch must be in hand before the store is touched (that is
	// what makes the write atomic), so decode with ReadAll; the wire bytes
	// still stream through the reader's fixed line buffer.
	triples, err := ntriples.ReadAll(http.MaxBytesReader(w, r.Body, maxIngestBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	added, err := s.st.AddBatch(triples)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, ingestResponse{
		Added:      added,
		Received:   len(triples),
		Triples:    s.st.Len(),
		Generation: s.st.Generation(),
	})
}

// limitParam reads a positive ?limit= capped at 100 (default def).
func limitParam(r *http.Request, def int) (int, error) {
	v := r.URL.Query().Get("limit")
	if v == "" {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 1 {
		return 0, fmt.Errorf("limit must be a positive integer")
	}
	if n > 100 {
		n = 100
	}
	return n, nil
}

// searchResponse is the /search JSON shape.
type searchResponse struct {
	Query string          `json:"query"`
	Hits  []searchHitJSON `json:"hits"`
}

type searchHitJSON struct {
	Entity  sparql.JSONTerm `json:"entity"`
	Score   float64         `json:"score"`
	Snippet string          `json:"snippet"`
}

// handleSearch serves TF-IDF ranked keyword search over the dataset's
// literals and local names (q=<text>, limit=<n> default 10) — the "find a
// starting node" primitive of node-centric exploration, now reachable over
// HTTP.
func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query().Get("q")
	if strings.TrimSpace(q) == "" {
		writeError(w, http.StatusBadRequest, "missing q parameter")
		return
	}
	limit, err := limitParam(r, 10)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	s.serveCached(w, r, s.cacheKey(r), func() ([]byte, string, int) {
		resp := searchResponse{Query: q, Hits: []searchHitJSON{}}
		for _, h := range s.kw.Index().Search(q, limit) {
			resp.Hits = append(resp.Hits, searchHitJSON{
				Entity:  sparql.EncodeTerm(h.Entity),
				Score:   h.Score,
				Snippet: h.Snippet,
			})
		}
		return mustJSON(resp)
	})
}

// completeResponse is the /complete JSON shape.
type completeResponse struct {
	Prefix      string   `json:"prefix"`
	Completions []string `json:"completions"`
}

// handleComplete serves prefix completion over the indexed tokens
// (prefix=<text>, limit=<n> default 10) — the type-ahead primitive.
func (s *Server) handleComplete(w http.ResponseWriter, r *http.Request) {
	prefix := r.URL.Query().Get("prefix")
	if strings.TrimSpace(prefix) == "" {
		writeError(w, http.StatusBadRequest, "missing prefix parameter")
		return
	}
	limit, err := limitParam(r, 10)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	s.serveCached(w, r, s.cacheKey(r), func() ([]byte, string, int) {
		comps := s.kw.Index().Complete(prefix, limit)
		if comps == nil {
			comps = []string{}
		}
		return mustJSON(completeResponse{Prefix: prefix, Completions: comps})
	})
}

// federationResponse is the /federation JSON shape.
type federationResponse struct {
	Endpoints []federation.EndpointStatus `json:"endpoints"`
	Cache     *federation.CacheStats      `json:"cache,omitempty"`
}

// handleFederation reports the health of every remote endpoint this node
// federates with — circuit state, latency EWMA, failure counts, capability
// coverage — plus the remote-result cache counters. Never cached: it is the
// operator's live view of the mesh.
func (s *Server) handleFederation(w http.ResponseWriter, r *http.Request) {
	resp := federationResponse{Endpoints: s.mesh.Status()}
	if cs, ok := s.mesh.CacheStats(); ok {
		resp.Cache = &cs
	}
	writeJSON(w, http.StatusOK, resp)
}

// healthzResponse is the /healthz JSON shape: liveness plus the store,
// cache, durability, and ledger state an operator checks first.
type healthzResponse struct {
	Status        string           `json:"status"`
	UptimeSeconds float64          `json:"uptimeSeconds"`
	Triples       int              `json:"triples"`
	Terms         int              `json:"terms"`
	Generation    uint64           `json:"generation"`
	LayoutEpoch   uint64           `json:"layoutEpoch"`
	DeltaTriples  int              `json:"deltaTriples"`
	Tombstones    int              `json:"tombstones"`
	Cache         *cacheHealth     `json:"cache,omitempty"`
	WAL           *walHealth       `json:"wal,omitempty"`
	Snapshot      *snapshotHealth  `json:"snapshot,omitempty"`
	Ledger        *ledgerRootBrief `json:"ledger,omitempty"`
}

type cacheHealth struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Entries   int    `json:"entries"`
	Capacity  int    `json:"capacity"`
}

type walHealth struct {
	// FrontierSeq is the highest sequence written (not necessarily
	// fsynced); SyncPolicy describes when writes become durable.
	FrontierSeq uint64 `json:"frontierSeq"`
	SyncPolicy  string `json:"syncPolicy,omitempty"`
}

type snapshotHealth struct {
	// SavedAt is the last successful snapshot write in RFC 3339;
	// AgeSeconds is how stale it is now. Both absent until the first save.
	SavedAt    string  `json:"savedAt,omitempty"`
	AgeSeconds float64 `json:"ageSeconds,omitempty"`
}

type ledgerRootBrief struct {
	Root    string `json:"root"`
	Leaves  uint64 `json:"leaves"`
	LastSeq uint64 `json:"lastSeq,omitempty"`
}

// handleHealthz reports liveness plus the serving counters operators watch.
// Never cached: it must reflect the instant it is asked.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	ob := s.st.Observe()
	resp := healthzResponse{
		Status:        "ok",
		UptimeSeconds: time.Since(s.started).Seconds(),
		Triples:       ob.Triples,
		Terms:         ob.Terms,
		Generation:    ob.Generation,
		LayoutEpoch:   ob.LayoutEpoch,
		DeltaTriples:  ob.Delta,
		Tombstones:    ob.Tombstones,
	}
	if s.cache != nil {
		cs := s.cache.Stats()
		resp.Cache = &cacheHealth{
			Hits: cs.Hits, Misses: cs.Misses, Evictions: cs.Evictions,
			Entries: cs.Entries, Capacity: cs.Capacity,
		}
	}
	if s.cfg.WAL != nil {
		resp.WAL = &walHealth{FrontierSeq: s.cfg.WAL.LastSeq(), SyncPolicy: s.cfg.WALSyncDesc}
	}
	if s.cfg.SnapshotSavedAt != nil {
		sh := &snapshotHealth{}
		if at := s.cfg.SnapshotSavedAt(); !at.IsZero() {
			sh.SavedAt = at.UTC().Format(time.RFC3339)
			sh.AgeSeconds = time.Since(at).Seconds()
		}
		resp.Snapshot = sh
	}
	if s.cfg.Ledger != nil {
		info := s.cfg.Ledger.Root()
		resp.Ledger = &ledgerRootBrief{Root: info.Root, Leaves: info.Count, LastSeq: info.LastSeq}
	}
	writeJSON(w, http.StatusOK, resp)
}

// parseTermParam reads an RDF term from a query parameter: <iri> or a bare
// curie-less IRI, _:label blank nodes, and "literal" with optional @lang or
// ^^<datatype>. A value that is neither is taken as a plain string literal.
func parseTermParam(s string) (rdf.Term, error) {
	s = strings.TrimSpace(s)
	switch {
	case s == "":
		return nil, fmt.Errorf("empty term")
	case strings.HasPrefix(s, "<") && strings.HasSuffix(s, ">"):
		return rdf.IRI(s[1 : len(s)-1]), nil
	case strings.HasPrefix(s, "_:"):
		return rdf.BlankNode(s[2:]), nil
	case strings.HasPrefix(s, `"`):
		end := -1
		for i := 1; i < len(s); i++ {
			if s[i] == '\\' {
				i++
				continue
			}
			if s[i] == '"' {
				end = i
				break
			}
		}
		if end < 0 {
			return nil, fmt.Errorf("unterminated literal %q", s)
		}
		lexical := s[1:end]
		rest := s[end+1:]
		switch {
		case rest == "":
			return rdf.NewLiteral(lexical), nil
		case strings.HasPrefix(rest, "@"):
			return rdf.NewLangLiteral(lexical, rest[1:]), nil
		case strings.HasPrefix(rest, "^^<") && strings.HasSuffix(rest, ">"):
			return rdf.NewTypedLiteral(lexical, rdf.IRI(rest[3:len(rest)-1])), nil
		default:
			return nil, fmt.Errorf("malformed literal suffix %q", rest)
		}
	case strings.Contains(s, ":"):
		return rdf.IRI(s), nil
	default:
		return rdf.NewLiteral(s), nil
	}
}

func mustJSON(v any) ([]byte, string, int) {
	b, err := json.Marshal(v)
	if err != nil {
		return errorJSON("encoding response: " + err.Error()), "application/json", http.StatusInternalServerError
	}
	return b, "application/json", http.StatusOK
}
