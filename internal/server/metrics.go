package server

import (
	"strconv"

	"github.com/lodviz/lodviz/internal/obs"
)

// serverMetrics holds the HTTP layer's instrumentation handles. Every
// server has one — over the registry Config.Metrics supplies, or a private
// one — so handlers never branch on "metrics enabled".
type serverMetrics struct {
	// requests counts finished requests by route, method, and status class
	// ("2xx"…); latency and bytes are per route.
	requests *obs.CounterVec
	latency  *obs.HistogramVec
	bytes    *obs.CounterVec
	// inFlight gauges requests currently holding a concurrency slot; shed
	// counts requests refused with 429 when an endpoint's slots ran out.
	inFlight *obs.Gauge
	shed     *obs.CounterVec
	// streams counts NDJSON streams by route and outcome ("completed" or
	// "aborted" — the client disconnected mid-stream); streamRows counts
	// the lines they delivered either way.
	streams    *obs.CounterVec
	streamRows *obs.CounterVec
	// cacheFills counts buffered-endpoint cache entries filled by a
	// completed stream (the fill-from-stream path); slowQueries counts
	// queries over Config.SlowQueryThreshold.
	cacheFills  *obs.Counter
	slowQueries *obs.Counter
}

func newServerMetrics(r *obs.Registry) *serverMetrics {
	return &serverMetrics{
		requests:    r.CounterVec("lodviz_http_requests_total", "Finished HTTP requests.", "route", "method", "class"),
		latency:     r.HistogramVec("lodviz_http_request_seconds", "HTTP request latency in seconds.", obs.DefBuckets, "route"),
		bytes:       r.CounterVec("lodviz_http_response_bytes_total", "HTTP response body bytes written.", "route"),
		inFlight:    r.Gauge("lodviz_http_in_flight_requests", "Requests currently holding a concurrency slot."),
		shed:        r.CounterVec("lodviz_http_shed_total", "Requests shed with 429 at the concurrency limiter.", "route"),
		streams:     r.CounterVec("lodviz_http_streams_total", "NDJSON streams by outcome (completed or aborted).", "route", "outcome"),
		streamRows:  r.CounterVec("lodviz_http_stream_rows_total", "NDJSON lines delivered by streaming endpoints.", "route"),
		cacheFills:  r.Counter("lodviz_cache_fill_from_stream_total", "Response-cache entries filled by completed streams."),
		slowQueries: r.Counter("lodviz_slow_queries_total", "Queries slower than the slow-query threshold."),
	}
}

// registerCollectors wires the obs-free subsystems (store, response cache,
// ledger, WAL frontier, federation mesh) into the registry as func-backed
// collectors sampled at scrape time.
func (s *Server) registerCollectors(r *obs.Registry) {
	st := s.st
	r.GaugeFunc("lodviz_store_triples", "Live triples in the store.",
		func() float64 { return float64(st.Observe().Triples) })
	r.GaugeFunc("lodviz_store_terms", "Dictionary terms in the store.",
		func() float64 { return float64(st.Observe().Terms) })
	r.GaugeFunc("lodviz_store_delta_triples", "Inserted triples awaiting merge into the sorted indexes.",
		func() float64 { return float64(st.Observe().Delta) })
	r.GaugeFunc("lodviz_store_tombstones", "Deleted triples awaiting physical removal.",
		func() float64 { return float64(st.Observe().Tombstones) })
	r.CounterFunc("lodviz_store_generation", "Store content generation (bumps on every effective write).",
		func() float64 { return float64(st.Observe().Generation) })
	r.CounterFunc("lodviz_store_layout_epoch", "Store layout epoch (bumps on every physical index reshuffle).",
		func() float64 { return float64(st.Observe().LayoutEpoch) })
	r.CounterFunc("lodviz_store_scan_pages_total", "Paged-scan pages served by the store.",
		func() float64 { return float64(st.Observe().ScanPages) })

	if c := s.cache; c != nil {
		r.CounterFunc("lodviz_cache_hits_total", "Response-cache hits.",
			func() float64 { return float64(c.Stats().Hits) })
		r.CounterFunc("lodviz_cache_misses_total", "Response-cache misses.",
			func() float64 { return float64(c.Stats().Misses) })
		r.CounterFunc("lodviz_cache_evictions_total", "Response-cache LRU evictions.",
			func() float64 { return float64(c.Stats().Evictions) })
		r.GaugeFunc("lodviz_cache_entries", "Response-cache entries resident.",
			func() float64 { return float64(c.Stats().Entries) })
		r.GaugeFunc("lodviz_cache_capacity", "Response-cache entry capacity.",
			func() float64 { return float64(c.Stats().Capacity) })
	}

	if led := s.cfg.Ledger; led != nil {
		r.GaugeFunc("lodviz_ledger_leaves", "Mutation-ledger leaves covered by the current root.",
			func() float64 { return float64(led.Root().Count) })
		r.GaugeFunc("lodviz_ledger_sealed_batches", "Sealed Merkle batches in the mutation ledger.",
			func() float64 { return float64(led.Root().SealedBatches) })
	}

	if w := s.cfg.WAL; w != nil {
		r.GaugeFunc("lodviz_wal_frontier_seq", "Highest WAL sequence written (not necessarily fsynced).",
			func() float64 { return float64(w.LastSeq()) })
	}

	mesh := s.mesh
	r.GaugeVecFunc("lodviz_federation_endpoint_state", "Circuit state per federated endpoint (1 = current state).",
		[]string{"endpoint", "state"}, func() []obs.Sample {
			var out []obs.Sample
			for _, ep := range mesh.Status() {
				out = append(out, obs.Sample{Labels: []string{ep.URL, ep.State}, Value: 1})
			}
			return out
		})
	r.GaugeVecFunc("lodviz_federation_endpoint_latency_ms", "Request-latency EWMA per federated endpoint.",
		[]string{"endpoint"}, func() []obs.Sample {
			var out []obs.Sample
			for _, ep := range mesh.Status() {
				out = append(out, obs.Sample{Labels: []string{ep.URL}, Value: ep.LatencyMs})
			}
			return out
		})
	r.CounterVecFunc("lodviz_federation_endpoint_requests_total", "Requests dispatched per federated endpoint.",
		[]string{"endpoint"}, func() []obs.Sample {
			var out []obs.Sample
			for _, ep := range mesh.Status() {
				out = append(out, obs.Sample{Labels: []string{ep.URL}, Value: float64(ep.Requests)})
			}
			return out
		})
	r.CounterVecFunc("lodviz_federation_endpoint_failures_total", "Failed requests per federated endpoint.",
		[]string{"endpoint"}, func() []obs.Sample {
			var out []obs.Sample
			for _, ep := range mesh.Status() {
				out = append(out, obs.Sample{Labels: []string{ep.URL}, Value: float64(ep.Failures)})
			}
			return out
		})
	if _, ok := mesh.CacheStats(); ok {
		r.CounterFunc("lodviz_federation_cache_hits_total", "Federation remote-result cache hits.",
			func() float64 { cs, _ := mesh.CacheStats(); return float64(cs.Hits) })
		r.CounterFunc("lodviz_federation_cache_misses_total", "Federation remote-result cache misses.",
			func() float64 { cs, _ := mesh.CacheStats(); return float64(cs.Misses) })
	}
}

// statusClass buckets an HTTP status for the requests metric ("2xx", "4xx",
// …).
func statusClass(status int) string {
	return strconv.Itoa(status/100) + "xx"
}
