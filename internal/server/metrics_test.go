package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strconv"
	"strings"
	"testing"
	"time"

	"github.com/lodviz/lodviz/internal/explain"
)

// TestMetricsEndpoint drives traffic through several layers, then asserts
// /metrics is valid Prometheus text exposition carrying every registered
// family.
func TestMetricsEndpoint(t *testing.T) {
	s, ts, _ := newTestServer(t, Config{})

	// One engine query (cached on the repeat), one facet request, one
	// streamed query, one shed-free healthz.
	q := url.QueryEscape(`SELECT ?s ?p ?o WHERE { ?s ?p ?o } LIMIT 3`)
	for _, u := range []string{
		ts.URL + "/sparql?query=" + q,
		ts.URL + "/sparql?query=" + q,
		ts.URL + "/facets",
		ts.URL + "/sparql/stream?query=" + q,
		ts.URL + "/healthz",
	} {
		resp, err := http.Get(u)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("Content-Type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)

	// Every registered family must be present as a TYPE line, and every
	// non-comment line must parse as `name value` or `name{labels} value`.
	for _, fam := range s.reg.Families() {
		if !strings.Contains(text, "# TYPE "+fam+" ") {
			t.Errorf("family %s missing from exposition", fam)
		}
	}
	for _, line := range strings.Split(strings.TrimSpace(text), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("unparseable line %q", line)
		}
		if _, err := strconv.ParseFloat(line[sp+1:], 64); err != nil {
			t.Errorf("line %q: value %q is not a float", line, line[sp+1:])
		}
		name := line[:sp]
		if i := strings.IndexByte(name, '{'); i >= 0 {
			if !strings.HasSuffix(name, "}") {
				t.Errorf("line %q: malformed label block", line)
			}
			name = name[:i]
		}
		if name == "" {
			t.Errorf("line %q: empty metric name", line)
		}
	}

	// Spot-check families from each instrumented layer actually carry
	// samples.
	for _, want := range []string{
		`lodviz_http_requests_total{route="/sparql",method="GET",class="2xx"} 2`,
		`lodviz_http_streams_total{route="/sparql/stream",outcome="completed"} 1`,
		"lodviz_store_triples ",
		"lodviz_cache_hits_total 1",
		"lodviz_engine_queries_materialized_total",
		"lodviz_http_request_seconds_bucket",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestExplainEndpoint asserts ?explain=1 attaches a span tree matching the
// executed plan and bypasses the response cache.
func TestExplainEndpoint(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	q := `SELECT ?city ?pop WHERE { ?city <` + exNS + `country> <` + exNS + `greece> . ?city <` + exNS + `population> ?pop }`

	resp, err := http.Post(ts.URL+"/sparql?explain=1", "application/sparql-query", strings.NewReader(q))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Cache"); got != "BYPASS" {
		t.Fatalf("X-Cache = %q, want BYPASS (explained responses are uncacheable)", got)
	}
	var doc struct {
		Results *struct {
			Bindings []json.RawMessage `json:"bindings"`
		} `json:"results"`
		Explain *struct {
			Root *explain.Span `json:"root"`
		} `json:"explain"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if doc.Results == nil || len(doc.Results.Bindings) == 0 {
		t.Fatal("explained response lost its results")
	}
	if doc.Explain == nil || doc.Explain.Root == nil || doc.Explain.Root.Name != "query" {
		t.Fatalf("explain member missing or malformed: %+v", doc.Explain)
	}
	var pats []*explain.Span
	var walk func(s *explain.Span)
	walk = func(s *explain.Span) {
		if s.Name == "pattern" {
			pats = append(pats, s)
		}
		for _, c := range s.Children {
			walk(c)
		}
	}
	walk(doc.Explain.Root)
	if len(pats) != 2 {
		t.Fatalf("pattern spans = %d, want 2", len(pats))
	}
	if last := pats[len(pats)-1]; last.RowsOut != len(doc.Results.Bindings) {
		t.Errorf("final span rowsOut %d != result rows %d", last.RowsOut, len(doc.Results.Bindings))
	}
	for _, p := range pats {
		if p.Strategy == "" {
			t.Errorf("pattern span %q missing strategy", p.Detail)
		}
	}

	// Without explain=1 the same query has no explain member and caches.
	resp2, err := http.Post(ts.URL+"/sparql", "application/sparql-query", strings.NewReader(q))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	body, _ := io.ReadAll(resp2.Body)
	if strings.Contains(string(body), `"explain"`) {
		t.Error("unexplained response carries an explain member")
	}
	if got := resp2.Header.Get("X-Cache"); got != "MISS" {
		t.Errorf("X-Cache = %q, want MISS (explain must not have filled the cache)", got)
	}
}

// TestSlowQueryLog asserts queries over the threshold are logged with a
// plan summary and counted.
func TestSlowQueryLog(t *testing.T) {
	var logBuf bytes.Buffer
	s, ts, _ := newTestServer(t, Config{
		SlowQueryThreshold: time.Nanosecond, // everything is slow
		Logger:             slog.New(slog.NewTextHandler(&logBuf, nil)),
	})
	q := url.QueryEscape(`SELECT ?city ?pop WHERE { ?city <` + exNS + `country> <` + exNS + `greece> . ?city <` + exNS + `population> ?pop }`)
	resp, err := http.Get(ts.URL + "/sparql?query=" + q)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	out := logBuf.String()
	if !strings.Contains(out, "slow query") {
		t.Fatalf("no slow-query log line in:\n%s", out)
	}
	if !strings.Contains(out, "pattern[") {
		t.Errorf("slow-query line missing plan summary:\n%s", out)
	}
	if got := s.met.slowQueries.Value(); got != 1 {
		t.Errorf("slowQueries = %d, want 1", got)
	}
}

// failAfterWriter fails every Write after the first n, simulating a client
// that disconnected mid-stream.
type failAfterWriter struct {
	hdr    http.Header
	writes int
	limit  int
}

func (f *failAfterWriter) Header() http.Header { return f.hdr }
func (f *failAfterWriter) WriteHeader(int)     {}
func (f *failAfterWriter) Write(p []byte) (int, error) {
	f.writes++
	if f.writes > f.limit {
		return 0, errors.New("client gone")
	}
	return len(p), nil
}

// TestStreamAbortAccounting asserts a mid-stream disconnect still records
// the delivered rows and an "aborted" outcome on the request recorder.
func TestStreamAbortAccounting(t *testing.T) {
	s, _, _ := newTestServer(t, Config{})
	// head line + 2 rows succeed, then the client vanishes.
	fw := &failAfterWriter{hdr: make(http.Header), limit: 3}
	rec := &statusRecorder{ResponseWriter: fw, status: http.StatusOK}
	r := httptest.NewRequest("GET", "/sparql/stream?query="+url.QueryEscape(`SELECT ?s WHERE { ?s ?p ?o }`), nil)

	s.handleSPARQLStream(rec, r)

	if rec.streamOutcome != "aborted" {
		t.Fatalf("streamOutcome = %q, want aborted", rec.streamOutcome)
	}
	if rec.streamRows != 2 {
		t.Errorf("streamRows = %d, want 2 (rows delivered before the disconnect)", rec.streamRows)
	}
	if rec.bytes == 0 {
		t.Error("bytes = 0; delivered lines must still be accounted")
	}

	// A completed stream on the same server records the other outcome.
	okRec := httptest.NewRecorder()
	rec2 := &statusRecorder{ResponseWriter: okRec, status: http.StatusOK}
	s.handleSPARQLStream(rec2, httptest.NewRequest("GET", "/sparql/stream?query="+url.QueryEscape(`SELECT ?s WHERE { ?s ?p ?o } LIMIT 2`), nil))
	if rec2.streamOutcome != "completed" || rec2.streamRows != 2 {
		t.Fatalf("completed stream: outcome=%q rows=%d, want completed/2", rec2.streamOutcome, rec2.streamRows)
	}
}

// TestFacetsStreamAbortAccounting drives the explore-stream abort path via
// a writer that dies after the first batch line.
func TestFacetsStreamAbortAccounting(t *testing.T) {
	s, _, _ := newTestServer(t, Config{})
	// The demo dataset is small enough that the scan may emit no
	// intermediate batch, so fail from the very first write.
	fw := &failAfterWriter{hdr: make(http.Header), limit: 0}
	rec := &statusRecorder{ResponseWriter: fw, status: http.StatusOK}
	s.handleFacetsStream(rec, httptest.NewRequest("GET", "/facets/stream", nil))
	if rec.streamOutcome != "aborted" {
		t.Fatalf("streamOutcome = %q, want aborted", rec.streamOutcome)
	}

	// The completed run fills the buffered endpoint's cache entry and
	// counts the fill.
	fillsBefore := s.met.cacheFills.Value()
	rec2 := &statusRecorder{ResponseWriter: httptest.NewRecorder(), status: http.StatusOK}
	s.handleFacetsStream(rec2, httptest.NewRequest("GET", "/facets/stream", nil))
	if rec2.streamOutcome != "completed" {
		t.Fatalf("streamOutcome = %q, want completed", rec2.streamOutcome)
	}
	if got := s.met.cacheFills.Value(); got != fillsBefore+1 {
		t.Errorf("cacheFills = %d, want %d", got, fillsBefore+1)
	}
}

// TestHealthzEnriched asserts the enriched status document carries the
// uptime and store sections (WAL/snapshot/ledger sections are exercised in
// the lodvizd wiring).
func TestHealthzEnriched(t *testing.T) {
	_, ts, st := newTestServer(t, Config{})
	var resp healthzResponse
	r := getJSON(t, ts.URL+"/healthz", &resp)
	if r.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", r.StatusCode)
	}
	if resp.UptimeSeconds <= 0 {
		t.Errorf("uptimeSeconds = %v, want > 0", resp.UptimeSeconds)
	}
	if resp.Triples != st.Len() || resp.Terms != st.NumTerms() {
		t.Errorf("triples/terms = %d/%d, want %d/%d", resp.Triples, resp.Terms, st.Len(), st.NumTerms())
	}
	if resp.WAL != nil || resp.Snapshot != nil || resp.Ledger != nil {
		t.Errorf("sections for unconfigured subsystems must be omitted: %+v", resp)
	}
}
