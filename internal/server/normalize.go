package server

import "strings"

// NormalizeQuery canonicalizes a SPARQL query's insignificant lexical
// variation so textually different spellings of the same query share one
// cache entry: runs of whitespace outside quoted strings and IRIs collapse to
// a single space, comments (# to end of line, outside strings) are dropped,
// and the result is trimmed. Content inside string literals (single- and
// double-quoted, short and triple-quoted long forms) and IRIREFs is
// preserved byte-for-byte, so two queries that normalize equally are the
// same query — the property the cache key depends on.
func NormalizeQuery(q string) string {
	var b strings.Builder
	b.Grow(len(q))
	i := 0
	pendingSpace := false
	emit := func(s string) {
		if pendingSpace && b.Len() > 0 {
			b.WriteByte(' ')
		}
		pendingSpace = false
		b.WriteString(s)
	}
	for i < len(q) {
		c := q[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f':
			pendingSpace = true
			i++
		case c == '#':
			// Comment to end of line.
			for i < len(q) && q[i] != '\n' {
				i++
			}
			pendingSpace = true
		case c == '<':
			// IRIREF: copy verbatim through the closing '>' (IRIs cannot
			// contain whitespace, but copying verbatim is simplest and safe).
			end := strings.IndexByte(q[i:], '>')
			if end < 0 {
				emit(q[i:])
				i = len(q)
				break
			}
			emit(q[i : i+end+1])
			i += end + 1
		case c == '\'' || c == '"':
			emit(copyString(q, &i))
		default:
			// A run of ordinary characters up to the next delimiter.
			j := i
			for j < len(q) {
				d := q[j]
				if d == ' ' || d == '\t' || d == '\n' || d == '\r' || d == '\f' ||
					d == '#' || d == '<' || d == '\'' || d == '"' {
					break
				}
				j++
			}
			emit(q[i:j])
			i = j
		}
	}
	return b.String()
}

// copyString copies a quoted string (short or long form) starting at *i,
// advancing *i past it, honoring backslash escapes. Unterminated strings are
// copied to the end of input.
func copyString(q string, i *int) string {
	start := *i
	quote := q[start]
	// Long form: ''' or """.
	if strings.HasPrefix(q[start:], strings.Repeat(string(quote), 3)) {
		delim := strings.Repeat(string(quote), 3)
		j := start + 3
		for j < len(q) {
			if q[j] == '\\' && j+1 < len(q) {
				j += 2
				continue
			}
			if strings.HasPrefix(q[j:], delim) {
				j += 3
				*i = j
				return q[start:j]
			}
			j++
		}
		*i = len(q)
		return q[start:]
	}
	j := start + 1
	for j < len(q) {
		if q[j] == '\\' && j+1 < len(q) {
			j += 2
			continue
		}
		if q[j] == quote {
			j++
			*i = j
			return q[start:j]
		}
		j++
	}
	*i = len(q)
	return q[start:]
}
