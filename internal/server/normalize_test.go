package server

import "testing"

func TestNormalizeQuery(t *testing.T) {
	cases := []struct {
		name, a, b string
		equal      bool
	}{
		{"whitespace runs", "SELECT ?s  WHERE\n{ ?s ?p ?o }", "SELECT ?s WHERE { ?s ?p ?o }", true},
		{"leading and trailing", "  ASK { ?s ?p ?o }\n", "ASK { ?s ?p ?o }", true},
		{"comments stripped", "SELECT ?s WHERE { ?s ?p ?o # match all\n}", "SELECT ?s WHERE { ?s ?p ?o }", true},
		{"string space preserved", `SELECT ?s WHERE { ?s ?p "a  b" }`, `SELECT ?s WHERE { ?s ?p "a b" }`, false},
		{"hash inside string kept", `ASK { ?s ?p "a#b" }`, `ASK { ?s ?p "ab" }`, false},
		{"iri preserved", "ASK { ?s <http://e/a#frag> ?o }", "ASK { ?s <http://e/afrag> ?o }", false},
		{"escaped quote in string", `ASK { ?s ?p "a\"  b" }`, `ASK { ?s ?p "a\" b" }`, false},
		{"long string newlines kept", "ASK { ?s ?p \"\"\"line1\n\nline2\"\"\" }", "ASK { ?s ?p \"\"\"line1\nline2\"\"\" }", false},
		{"distinct queries stay distinct", "ASK { ?s ?p 1 }", "ASK { ?s ?p 2 }", false},
	}
	for _, c := range cases {
		na, nb := NormalizeQuery(c.a), NormalizeQuery(c.b)
		if (na == nb) != c.equal {
			t.Errorf("%s: NormalizeQuery equality = %v, want %v\n  a: %q -> %q\n  b: %q -> %q",
				c.name, na == nb, c.equal, c.a, na, c.b, nb)
		}
	}
}

func TestNormalizeQueryIdempotent(t *testing.T) {
	q := "SELECT ?s\nWHERE {\n  ?s a <http://e/C> . # typed\n  ?s <http://e/p> 'v  v'\n}"
	once := NormalizeQuery(q)
	if NormalizeQuery(once) != once {
		t.Fatalf("not idempotent: %q -> %q", once, NormalizeQuery(once))
	}
}

func TestNormalizeQueryUnterminated(t *testing.T) {
	// Degenerate inputs must not panic or loop; they normalize to something.
	for _, q := range []string{`ASK { ?s ?p "unterminated`, "ASK { ?s <unterminated", `'''`, `"`, "#only a comment"} {
		_ = NormalizeQuery(q)
	}
}
