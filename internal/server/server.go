// Package server exposes a lodviz dataset over HTTP: a SPARQL 1.1 Protocol
// endpoint plus the exploration endpoints (facets, graph neighborhoods,
// HETree hierarchies, dataset statistics) that front-ends in the survey's
// system catalogue ship — one process, JSON in and out, built for repeated,
// overlapping exploration queries.
//
// The serving architecture, in request order:
//
//   - structured access logging (method, path, status, bytes, duration,
//     cache disposition) on every request;
//   - per-endpoint concurrency limits: each route has a fixed budget of
//     in-flight requests and sheds the excess with 429 + Retry-After, so one
//     expensive endpoint cannot starve the others;
//   - a sharded LRU response cache keyed by (normalized request, store
//     generation): repeated exploration requests are served straight from
//     memory, and any store write bumps the generation, which orphans every
//     cached entry at once — exploration workloads are read-heavy bursts
//     over a slowly changing dataset, exactly the shape this favors;
//   - strong ETags on cacheable responses with If-None-Match/304 handling,
//     so clients and proxies revalidate for free;
//   - per-request timeouts threaded as context cancellation into the SPARQL
//     engine, which aborts index scans mid-flight.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"log/slog"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"github.com/lodviz/lodviz/internal/explore"
	"github.com/lodviz/lodviz/internal/facet"
	"github.com/lodviz/lodviz/internal/federation"
	"github.com/lodviz/lodviz/internal/keyword"
	"github.com/lodviz/lodviz/internal/ledger"
	"github.com/lodviz/lodviz/internal/obs"
	"github.com/lodviz/lodviz/internal/prefetch"
	"github.com/lodviz/lodviz/internal/server/cache"
	"github.com/lodviz/lodviz/internal/sparql"
	"github.com/lodviz/lodviz/internal/store"
	"github.com/lodviz/lodviz/internal/wal"
)

// Config tunes a Server. The zero value is production-usable: NumCPU query
// parallelism, a 4096-entry cache, 64 in-flight requests per endpoint, and a
// 30-second query timeout.
type Config struct {
	// Parallelism is the SPARQL engine worker count (0 = NumCPU).
	Parallelism int
	// CacheCapacity is the response cache size in entries; 0 selects
	// cache.DefaultCapacity and negative values disable caching.
	CacheCapacity int
	// MaxInFlight caps concurrently served requests per endpoint; excess
	// requests are shed with 429. Non-positive values select 64.
	MaxInFlight int
	// QueryTimeout bounds one request's evaluation; non-positive values
	// select 30s.
	QueryTimeout time.Duration
	// MaxFacetValues caps values listed per facet on /facets
	// (non-positive = 25).
	MaxFacetValues int
	// Logger receives structured access and lifecycle logs (nil = stderr).
	Logger *slog.Logger
	// Mesh is the federation runtime answering SERVICE clauses; nil builds
	// a default mesh, so federated queries work out of the box.
	Mesh *federation.Mesh
	// Peers pre-registers remote SPARQL endpoints with the mesh (the
	// -peer flags of lodvizd).
	Peers []string
	// Keyword is the shared lazy keyword index backing /search and
	// /complete; nil builds one. The façade passes its own so a dataset
	// serving HTTP keeps a single index copy.
	Keyword *keyword.Lazy
	// Ledger, when set, is the Merkle mutation ledger over the WAL; it
	// enables /ledger/root and /ledger/proof. Nil (no WAL configured)
	// leaves those endpoints answering 404.
	Ledger *ledger.Ledger
	// Metrics is the registry /metrics exposes; nil builds a private one,
	// so the endpoint always works. lodvizd shares one registry between
	// the server and the WAL.
	Metrics *obs.Registry
	// WAL, when set, feeds the WAL frontier metric and /healthz's wal
	// section; WALSyncDesc describes the fsync policy there ("always" or
	// "none").
	WAL         *wal.Log
	WALSyncDesc string
	// SnapshotSavedAt, when set, reports the last successful snapshot
	// write (zero time = none yet); /healthz derives the snapshot age
	// from it.
	SnapshotSavedAt func() time.Time
	// SlowQueryThreshold, when positive, turns on the slow-query log:
	// /sparql queries at or over it are logged at warn level with their
	// duration, row count, and execution-plan summary.
	SlowQueryThreshold time.Duration

	// FacetWarming enables prefetch-driven warming of the facet response
	// cache: serving a filtered /facets view schedules background builds of
	// its ancestor views (each filter prefix), so the zoom-out steps a
	// browsing session takes next are already cached. Off by default;
	// lodvizd enables it unless -facet-warming=false.
	FacetWarming bool

	// querySource, when set by tests, replaces the store as the triple
	// source SPARQL evaluation scans — the seam for wrapping the store
	// with throttled or instrumented variants (the streaming endpoint's
	// first-row-before-completion test gates the scan on a channel).
	querySource sparql.Source
	// exploreSource, when set by tests, replaces the store as the ID-space
	// source the exploration endpoints (facets, stats, neighborhood) scan —
	// the seam the progressive endpoints' first-batch-mid-scan tests use to
	// gate paging.
	exploreSource explore.Source
}

func (c Config) withDefaults() Config {
	if c.Parallelism <= 0 {
		c.Parallelism = runtime.NumCPU()
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 64
	}
	if c.QueryTimeout <= 0 {
		c.QueryTimeout = 30 * time.Second
	}
	if c.MaxFacetValues <= 0 {
		c.MaxFacetValues = facet.DefaultMaxValues
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	}
	return c
}

// Server serves one dataset. Create with New; the zero value is unusable.
type Server struct {
	st    *store.Store
	cfg   Config
	cache *cache.Cache // nil when caching is disabled
	mesh  *federation.Mesh
	kw    *keyword.Lazy
	mux   *http.ServeMux

	// reg is the metrics registry /metrics serves; met and engineMet are
	// the HTTP-layer and SPARQL-engine handles registered on it. started
	// anchors /healthz's uptime.
	reg       *obs.Registry
	met       *serverMetrics
	engineMet *sparql.Metrics
	started   time.Time

	// warmSeen dedupes facet warm jobs (keyed by target cache key, which
	// embeds the generation); warmSem bounds concurrent warm builds.
	warmSeen *prefetch.Cache[string, struct{}]
	warmSem  chan struct{}

	// limiterHook, when set by tests, runs while the request holds its
	// concurrency slot — the deterministic way to saturate an endpoint.
	limiterHook func(route string)
	// streamRowHook, when set by tests, runs after each streamed row is
	// written and flushed (the argument is the rows-so-far count).
	streamRowHook func(rows int)
	// warmHook, when set by tests, runs after a facet warm job finishes
	// (argument: the cache key it built).
	warmHook func(key string)
}

// New builds a Server over st.
func New(st *store.Store, cfg Config) *Server {
	s := &Server{st: st, cfg: cfg.withDefaults(), started: time.Now()}
	if cfg.CacheCapacity >= 0 {
		s.cache = cache.New(cfg.CacheCapacity)
	}
	s.mesh = s.cfg.Mesh
	if s.mesh == nil {
		s.mesh = federation.NewMesh(federation.Options{})
	}
	for _, p := range s.cfg.Peers {
		s.mesh.AddPeer(p)
	}
	s.kw = s.cfg.Keyword
	if s.kw == nil {
		s.kw = keyword.NewLazy(st)
	}
	if s.cfg.FacetWarming && s.cache != nil {
		s.warmSeen = prefetch.NewCache[string, struct{}](256, prefetch.LRU)
		s.warmSem = make(chan struct{}, 2)
	}
	s.reg = s.cfg.Metrics
	if s.reg == nil {
		s.reg = obs.NewRegistry()
	}
	s.met = newServerMetrics(s.reg)
	s.engineMet = sparql.NewMetrics(s.reg)
	s.registerCollectors(s.reg)
	s.mux = http.NewServeMux()
	s.route("/sparql", s.handleSPARQL, "GET", "POST")
	s.route("/sparql/stream", s.handleSPARQLStream, "GET", "POST")
	s.route("/facets", s.handleFacets, "GET")
	s.route("/facets/stream", s.handleFacetsStream, "GET")
	s.route("/graph/neighborhood", s.handleNeighborhood, "GET")
	s.route("/hetree", s.handleHETree, "GET")
	s.route("/stats", s.handleStats, "GET")
	s.route("/stats/stream", s.handleStatsStream, "GET")
	s.route("/search", s.handleSearch, "GET")
	s.route("/complete", s.handleComplete, "GET")
	s.route("/federation", s.handleFederation, "GET")
	s.route("/ledger/root", s.handleLedgerRoot, "GET")
	s.route("/ledger/proof", s.handleLedgerProof, "GET")
	s.writeRoute("/triples", s.handleIngest, "POST")
	s.route("/healthz", s.handleHealthz, "GET")
	s.route("/metrics", s.handleMetrics, "GET")
	return s
}

// handleMetrics serves the registry in Prometheus text exposition format.
// Never cached: a scrape must see the live counters.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.reg.Handler().ServeHTTP(w, r)
}

// Handler returns the root http.Handler.
func (s *Server) Handler() http.Handler { return s.mux }

// route registers a read endpoint under path behind the standard
// middleware stack: access logging outermost, then permissive CORS
// (headers on every response, OPTIONS preflights answered in place), then
// the per-endpoint concurrency limiter, then method filtering.
func (s *Server) route(path string, h http.HandlerFunc, methods ...string) {
	s.routeWithCORS(path, h, true, methods)
}

// writeRoute is route without the CORS layer. Mutating endpoints are
// deliberately not CORS-enabled: the server has no authentication, so
// approving cross-origin preflights on a write path would let any webpage
// a browser visits mutate a reachable store. Browser UIs read
// cross-origin; writes stay same-origin (or non-browser).
func (s *Server) writeRoute(path string, h http.HandlerFunc, methods ...string) {
	s.routeWithCORS(path, h, false, methods)
}

func (s *Server) routeWithCORS(path string, h http.HandlerFunc, cors bool, methods []string) {
	limiter := make(chan struct{}, s.cfg.MaxInFlight)
	allowMethods := strings.Join(append(append([]string{}, methods...), http.MethodOptions), ", ")
	s.mux.HandleFunc(path, func(w http.ResponseWriter, r *http.Request) {
		startedAt := time.Now()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		switch {
		case cors:
			// Permissive CORS: browser-based exploration UIs load from
			// anywhere and call the read API cross-origin.
			hd := rec.Header()
			hd.Set("Access-Control-Allow-Origin", "*")
			hd.Set("Access-Control-Expose-Headers", "ETag, X-Cache, X-Stream-Incremental")
			if r.Method == http.MethodOptions {
				hd.Set("Access-Control-Allow-Methods", allowMethods)
				hd.Set("Access-Control-Allow-Headers", "Content-Type, If-None-Match")
				hd.Set("Access-Control-Max-Age", "86400")
				rec.WriteHeader(http.StatusNoContent)
			} else {
				s.serveLimited(rec, r, path, limiter, h, methods)
			}
		default:
			s.serveLimited(rec, r, path, limiter, h, methods)
		}
		dur := time.Since(startedAt)
		s.met.requests.With(path, r.Method, statusClass(rec.status)).Inc()
		s.met.latency.With(path).Observe(dur.Seconds())
		s.met.bytes.With(path).Add(uint64(rec.bytes))
		attrs := []any{
			"method", r.Method,
			"path", r.URL.Path,
			"status", rec.status,
			"bytes", rec.bytes,
			"dur", dur.Round(time.Microsecond).String(),
			"cache", rec.Header().Get("X-Cache"),
		}
		if rec.streamOutcome != "" {
			// A stream that lost its client mid-flight still logs and
			// counts what it delivered; the outcome distinguishes the two.
			s.met.streams.With(path, rec.streamOutcome).Inc()
			s.met.streamRows.With(path).Add(uint64(rec.streamRows))
			attrs = append(attrs, "rows", rec.streamRows, "stream", rec.streamOutcome)
		}
		s.cfg.Logger.Info("request", attrs...)
	})
}

func (s *Server) serveLimited(w http.ResponseWriter, r *http.Request, path string, limiter chan struct{}, h http.HandlerFunc, methods []string) {
	allowed := false
	for _, m := range methods {
		if r.Method == m {
			allowed = true
			break
		}
	}
	if !allowed {
		writeError(w, http.StatusMethodNotAllowed, fmt.Sprintf("method %s not allowed on %s", r.Method, path))
		return
	}
	select {
	case limiter <- struct{}{}:
		defer func() { <-limiter }()
	default:
		s.met.shed.With(path).Inc()
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "endpoint concurrency limit reached, retry shortly")
		return
	}
	s.met.inFlight.Inc()
	defer s.met.inFlight.Dec()
	if s.limiterHook != nil {
		s.limiterHook(path)
	}
	h(w, r)
}

// statusRecorder captures the status and byte count for the access log.
// Streaming handlers additionally report their delivered row count and
// outcome through markStream, so a mid-stream client disconnect is still
// fully accounted for in the log and the metrics.
type statusRecorder struct {
	http.ResponseWriter
	status        int
	bytes         int
	streamRows    int
	streamOutcome string // "" for non-streamed responses
}

// markStream records a streaming handler's delivered rows and outcome on
// the request's recorder; a no-op when w is not the middleware's recorder
// (direct handler tests).
func markStream(w http.ResponseWriter, rows int, completed bool) {
	rec, ok := w.(*statusRecorder)
	if !ok {
		return
	}
	rec.streamRows = rows
	if completed {
		rec.streamOutcome = "completed"
	} else {
		rec.streamOutcome = "aborted"
	}
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(p []byte) (int, error) {
	n, err := r.ResponseWriter.Write(p)
	r.bytes += n
	return n, err
}

// Flush forwards to the underlying writer so the streaming endpoint can
// push each NDJSON line to the client as it is produced.
func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// errorBody is the JSON error envelope every non-2xx response carries.
type errorBody struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(errorBody{Error: msg})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	body, err := json.Marshal(v)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "encoding response: "+err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(body)
}

// etagFor computes the strong validator for a response body.
func etagFor(body []byte) string {
	h := fnv.New64a()
	h.Write(body)
	return fmt.Sprintf("%q", strconv.FormatUint(h.Sum64(), 16))
}

// serveCached answers from the response cache under key, or builds the
// response, caches it if it is a 200, and serves it. ETag/If-None-Match
// revalidation applies to hits and misses alike; X-Cache reports the
// disposition.
func (s *Server) serveCached(w http.ResponseWriter, r *http.Request, key string, build func() (body []byte, contentType string, status int)) {
	if s.cache != nil {
		if e, ok := s.cache.Get(key); ok {
			serveEntry(w, r, e, "HIT")
			return
		}
	}
	body, contentType, status := build()
	e := cache.Entry{Body: body, ETag: etagFor(body), ContentType: contentType, Status: status}
	if s.cache != nil && status == http.StatusOK {
		s.cache.Put(key, e)
	}
	serveEntry(w, r, e, "MISS")
}

// serveUncached builds and serves a response without consulting or filling
// the response cache (ETag revalidation still applies). X-Cache reports
// BYPASS so operators can see which traffic is deliberately uncacheable.
func (s *Server) serveUncached(w http.ResponseWriter, r *http.Request, build func() (body []byte, contentType string, status int)) {
	body, contentType, status := build()
	e := cache.Entry{Body: body, ETag: etagFor(body), ContentType: contentType, Status: status}
	serveEntry(w, r, e, "BYPASS")
}

func serveEntry(w http.ResponseWriter, r *http.Request, e cache.Entry, disposition string) {
	h := w.Header()
	h.Set("X-Cache", disposition)
	h.Set("Content-Type", e.ContentType)
	if e.Status == http.StatusOK {
		h.Set("ETag", e.ETag)
		if match := r.Header.Get("If-None-Match"); match != "" && match == e.ETag {
			w.WriteHeader(http.StatusNotModified)
			return
		}
	}
	w.WriteHeader(e.Status)
	w.Write(e.Body)
}

// cacheKey builds the cache key for an exploration GET endpoint from its
// path, its canonicalized query parameters, and the store generation.
// url.Values.Encode percent-escapes names and values, so two requests whose
// decoded parameters differ can never collide on a key.
func (s *Server) cacheKey(r *http.Request) string {
	params := r.URL.Query()
	for _, vals := range params {
		sort.Strings(vals)
	}
	return fmt.Sprintf("%s?%s|g%d", r.URL.Path, params.Encode(), s.st.Generation())
}

// queryError maps a sparql error to an HTTP status: the caller's syntax
// errors are 400s, timeouts are 504s, everything else is the server's fault.
func queryError(err error) (int, string) {
	switch {
	case errors.Is(err, sparql.ErrParse):
		return http.StatusBadRequest, err.Error()
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout, "query timed out"
	case errors.Is(err, context.Canceled):
		return statusClientClosedRequest, "client closed request"
	default:
		return http.StatusInternalServerError, err.Error()
	}
}

// statusClientClosedRequest is nginx's non-standard 499: the client went
// away mid-query, nobody will read the response, but the access log should
// not claim a server error.
const statusClientClosedRequest = 499

// Serve accepts connections on ln until ctx is cancelled, then shuts down
// gracefully: in-flight requests get up to 10 seconds to finish. It returns
// nil on a clean shutdown.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	hs := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		s.cfg.Logger.Info("shutting down", "addr", ln.Addr().String())
		// The serving ctx is already cancelled here; the graceful drain
		// needs a fresh root bounded by its own deadline.
		//lint:allow ctxflow shutdown drain runs after the serving context is cancelled
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		return hs.Shutdown(sctx)
	}
}

// ListenAndServe listens on addr and calls Serve.
func (s *Server) ListenAndServe(ctx context.Context, addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.cfg.Logger.Info("listening", "addr", ln.Addr().String())
	return s.Serve(ctx, ln)
}
