package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/lodviz/lodviz/internal/gen"
	"github.com/lodviz/lodviz/internal/rdf"
	"github.com/lodviz/lodviz/internal/sparql"
	"github.com/lodviz/lodviz/internal/store"
)

const exNS = "http://lodviz.example.org/mini/"

func discardLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server, *store.Store) {
	t.Helper()
	if cfg.Logger == nil {
		cfg.Logger = discardLogger()
	}
	st := gen.MiniLODStore()
	s := New(st, cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts, st
}

// sparqlDoc mirrors the SPARQL JSON results document.
type sparqlDoc struct {
	Head struct {
		Vars []string `json:"vars"`
	} `json:"head"`
	Boolean *bool `json:"boolean"`
	Results *struct {
		Bindings []map[string]struct {
			Type     string `json:"type"`
			Value    string `json:"value"`
			Lang     string `json:"xml:lang"`
			Datatype string `json:"datatype"`
		} `json:"bindings"`
	} `json:"results"`
}

func getJSON(t *testing.T, url string, into any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading body: %v", err)
	}
	if into != nil {
		if err := json.Unmarshal(body, into); err != nil {
			t.Fatalf("decoding %s: %v\nbody: %s", url, err, body)
		}
	}
	return resp
}

func TestSPARQLSelectGet(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	q := `SELECT ?city ?pop WHERE { ?city <` + exNS + `country> <` + exNS + `greece> . ?city <` + exNS + `population> ?pop } ORDER BY DESC(?pop)`
	var doc sparqlDoc
	resp := getJSON(t, ts.URL+"/sparql?query="+url.QueryEscape(q), &doc)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/sparql-results+json" {
		t.Fatalf("Content-Type = %q", ct)
	}
	if len(doc.Head.Vars) != 2 || doc.Head.Vars[0] != "city" || doc.Head.Vars[1] != "pop" {
		t.Fatalf("vars = %v", doc.Head.Vars)
	}
	if len(doc.Results.Bindings) != 2 {
		t.Fatalf("got %d rows, want 2 (athens, thessaloniki)", len(doc.Results.Bindings))
	}
	first := doc.Results.Bindings[0]
	if first["city"].Type != "uri" || first["city"].Value != exNS+"athens" {
		t.Fatalf("first city = %+v, want athens", first["city"])
	}
	if first["pop"].Type != "literal" || first["pop"].Value != "664046" {
		t.Fatalf("first pop = %+v", first["pop"])
	}
	if first["pop"].Datatype == "" {
		t.Fatal("numeric literal should carry a datatype")
	}
}

func TestSPARQLAsk(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	q := `ASK { <` + exNS + `athens> <` + exNS + `country> <` + exNS + `greece> }`
	var doc sparqlDoc
	resp := getJSON(t, ts.URL+"/sparql?query="+url.QueryEscape(q), &doc)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if doc.Boolean == nil || !*doc.Boolean {
		t.Fatalf("boolean = %v, want true", doc.Boolean)
	}
}

func TestSPARQLPostForm(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	q := `SELECT ?s WHERE { ?s a <` + exNS + `Country> }`
	resp, err := http.PostForm(ts.URL+"/sparql", url.Values{"query": {q}})
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	var doc sparqlDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Results.Bindings) != 3 {
		t.Fatalf("got %d countries, want 3", len(doc.Results.Bindings))
	}
}

func TestSPARQLPostRawBody(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	q := `ASK { ?s ?p ?o }`
	resp, err := http.Post(ts.URL+"/sparql", "application/sparql-query", strings.NewReader(q))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
}

func TestSPARQLUnsupportedMediaType(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	resp, err := http.Post(ts.URL+"/sparql", "text/plain", strings.NewReader("ASK {?s ?p ?o}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnsupportedMediaType {
		t.Fatalf("status = %d, want 415", resp.StatusCode)
	}
}

func TestSPARQLMalformedQuery400(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	var e errorBody
	resp := getJSON(t, ts.URL+"/sparql?query="+url.QueryEscape("SELECT WHERE garbage {{{"), &e)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type = %q, want application/json", ct)
	}
	if e.Error == "" {
		t.Fatal("error body missing \"error\" field")
	}
}

func TestSPARQLMissingQuery400(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	var e errorBody
	resp := getJSON(t, ts.URL+"/sparql", &e)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
	if !strings.Contains(e.Error, "missing query") {
		t.Fatalf("error = %q", e.Error)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/sparql", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("status = %d, want 405", resp.StatusCode)
	}
}

func TestSPARQLTimeout504(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{QueryTimeout: time.Nanosecond})
	var e errorBody
	resp := getJSON(t, ts.URL+"/sparql?query="+url.QueryEscape("SELECT ?s WHERE { ?s ?p ?o }"), &e)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504 (body: %+v)", resp.StatusCode, e)
	}
}

func TestCacheMissThenHit(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	u := ts.URL + "/sparql?query=" + url.QueryEscape("SELECT ?s WHERE { ?s a <"+exNS+"City> }")
	var first, second sparqlDoc
	r1 := getJSON(t, u, &first)
	if got := r1.Header.Get("X-Cache"); got != "MISS" {
		t.Fatalf("first X-Cache = %q, want MISS", got)
	}
	r2 := getJSON(t, u, &second)
	if got := r2.Header.Get("X-Cache"); got != "HIT" {
		t.Fatalf("second X-Cache = %q, want HIT", got)
	}
	if len(first.Results.Bindings) != len(second.Results.Bindings) {
		t.Fatal("hit returned different row count than miss")
	}
	if r1.Header.Get("ETag") == "" || r1.Header.Get("ETag") != r2.Header.Get("ETag") {
		t.Fatalf("ETags differ: %q vs %q", r1.Header.Get("ETag"), r2.Header.Get("ETag"))
	}
}

// TestCacheNormalizedQueryShared asserts the whitespace/comment-insensitive
// keying: a reformatted spelling of a cached query is a HIT.
func TestCacheNormalizedQueryShared(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	q1 := "SELECT ?s WHERE { ?s a <" + exNS + "City> }"
	q2 := "SELECT   ?s\nWHERE {\n  ?s a <" + exNS + "City> # find the cities\n}"
	getJSON(t, ts.URL+"/sparql?query="+url.QueryEscape(q1), nil)
	resp := getJSON(t, ts.URL+"/sparql?query="+url.QueryEscape(q2), nil)
	if got := resp.Header.Get("X-Cache"); got != "HIT" {
		t.Fatalf("reformatted query X-Cache = %q, want HIT", got)
	}
}

func TestETag304RoundTrip(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	u := ts.URL + "/stats"
	resp := getJSON(t, u, nil)
	etag := resp.Header.Get("ETag")
	if etag == "" {
		t.Fatal("no ETag on cacheable response")
	}
	req, _ := http.NewRequest(http.MethodGet, u, nil)
	req.Header.Set("If-None-Match", etag)
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotModified {
		t.Fatalf("status = %d, want 304", resp2.StatusCode)
	}
	body, _ := io.ReadAll(resp2.Body)
	if len(body) != 0 {
		t.Fatalf("304 carried a %d-byte body", len(body))
	}
	if resp2.Header.Get("ETag") != etag {
		t.Fatalf("304 ETag = %q, want %q", resp2.Header.Get("ETag"), etag)
	}
}

// TestWriteInvalidatesCache is the invalidation contract end-to-end over
// HTTP: cache a query, POST a triple that changes its answer, and observe a
// MISS with the new row included.
func TestWriteInvalidatesCache(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	q := "SELECT ?s WHERE { ?s a <" + exNS + "City> }"
	u := ts.URL + "/sparql?query=" + url.QueryEscape(q)

	var before sparqlDoc
	getJSON(t, u, &before)
	resp := getJSON(t, u, nil)
	if resp.Header.Get("X-Cache") != "HIT" {
		t.Fatalf("warmup did not cache (X-Cache = %q)", resp.Header.Get("X-Cache"))
	}

	nt := "<" + exNS + "sparta> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <" + exNS + "City> .\n"
	ing, err := http.Post(ts.URL+"/triples", "application/n-triples", strings.NewReader(nt))
	if err != nil {
		t.Fatal(err)
	}
	var ingResp ingestResponse
	if err := json.NewDecoder(ing.Body).Decode(&ingResp); err != nil {
		t.Fatal(err)
	}
	ing.Body.Close()
	if ing.StatusCode != http.StatusOK || ingResp.Added != 1 {
		t.Fatalf("ingest status = %d, added = %d", ing.StatusCode, ingResp.Added)
	}

	var after sparqlDoc
	resp = getJSON(t, u, &after)
	if got := resp.Header.Get("X-Cache"); got != "MISS" {
		t.Fatalf("post-write X-Cache = %q, want MISS", got)
	}
	if len(after.Results.Bindings) != len(before.Results.Bindings)+1 {
		t.Fatalf("post-write rows = %d, want %d", len(after.Results.Bindings), len(before.Results.Bindings)+1)
	}
}

func TestIngestMalformed400(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	resp, err := http.Post(ts.URL+"/triples", "application/n-triples", strings.NewReader("this is not n-triples\n"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
}

// TestIngestAtomicRollback is the write-atomicity contract: a batch whose
// tail is malformed must leave the store untouched — the valid head triples
// are not applied, the size does not move, and the generation (hence every
// cached response) stays valid.
func TestIngestAtomicRollback(t *testing.T) {
	_, ts, st := newTestServer(t, Config{})
	lenBefore, genBefore := st.Len(), st.Generation()

	valid := "<" + exNS + "atomA> <" + exNS + "p> <" + exNS + "atomB> .\n"
	body := valid + valid[:len(valid)-2] + "garbage\n" // second statement malformed
	resp, err := http.Post(ts.URL+"/triples", "application/n-triples", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
	if st.Len() != lenBefore {
		t.Fatalf("store size moved on a 400: %d -> %d", lenBefore, st.Len())
	}
	if st.Generation() != genBefore {
		t.Fatalf("generation moved on a 400: %d -> %d", genBefore, st.Generation())
	}
	if st.Contains(rdf.T(rdf.IRI(exNS+"atomA"), rdf.IRI(exNS+"p"), rdf.IRI(exNS+"atomB"))) {
		t.Fatal("valid head triple of a rejected batch was applied")
	}
}

// TestIngestDuplicatesAreNoOp: re-posting existing triples reports zero
// added and leaves the generation (and therefore the response cache) alone.
func TestIngestDuplicatesAreNoOp(t *testing.T) {
	_, ts, st := newTestServer(t, Config{})
	nt := "<" + exNS + "dupS> <" + exNS + "dupP> <" + exNS + "dupO> .\n"

	post := func() ingestResponse {
		t.Helper()
		resp, err := http.Post(ts.URL+"/triples", "application/n-triples", strings.NewReader(nt))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status = %d", resp.StatusCode)
		}
		var ir ingestResponse
		if err := json.NewDecoder(resp.Body).Decode(&ir); err != nil {
			t.Fatal(err)
		}
		return ir
	}

	first := post()
	if first.Added != 1 || first.Received != 1 {
		t.Fatalf("first ingest: added=%d received=%d, want 1/1", first.Added, first.Received)
	}
	gen := st.Generation()
	second := post()
	if second.Added != 0 || second.Received != 1 {
		t.Fatalf("duplicate ingest: added=%d received=%d, want 0/1", second.Added, second.Received)
	}
	if st.Generation() != gen {
		t.Fatalf("duplicate ingest advanced generation: %d -> %d", gen, st.Generation())
	}
}

// TestIngestBatchBumpsGenerationOnce: a multi-triple batch is one content
// mutation, not one per triple.
func TestIngestBatchBumpsGenerationOnce(t *testing.T) {
	_, ts, st := newTestServer(t, Config{})
	gen := st.Generation()
	var b strings.Builder
	for i := 0; i < 100; i++ {
		fmt.Fprintf(&b, "<%sbatch%d> <%sp> <%so%d> .\n", exNS, i, exNS, exNS, i)
	}
	resp, err := http.Post(ts.URL+"/triples", "application/n-triples", strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ir ingestResponse
	if err := json.NewDecoder(resp.Body).Decode(&ir); err != nil {
		t.Fatal(err)
	}
	if ir.Added != 100 {
		t.Fatalf("added = %d, want 100", ir.Added)
	}
	if got := st.Generation(); got != gen+1 {
		t.Fatalf("batch of 100 advanced generation %d times, want 1", got-gen)
	}
}

// Test429UnderSaturation fills the one concurrency slot with a request
// parked inside the limiter hook, then asserts the next request is shed.
func Test429UnderSaturation(t *testing.T) {
	block := make(chan struct{})
	entered := make(chan struct{}, 1)
	s, ts, _ := newTestServer(t, Config{MaxInFlight: 1})
	s.limiterHook = func(route string) {
		if route == "/healthz" {
			entered <- struct{}{}
			<-block
		}
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, err := http.Get(ts.URL + "/healthz")
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-entered // the slot is now held

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 missing Retry-After")
	}
	var e errorBody
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e.Error == "" {
		t.Fatalf("429 body not a JSON error: %v %+v", err, e)
	}
	close(block)
	wg.Wait()

	// The slot is free again: the endpoint recovers.
	resp2, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("post-release status = %d, want 200", resp2.StatusCode)
	}
}

func TestFacets(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	var resp facetsResponse
	r := getJSON(t, ts.URL+"/facets", &resp)
	if r.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", r.StatusCode)
	}
	if resp.Count == 0 || len(resp.Facets) == 0 {
		t.Fatalf("facets empty: %+v", resp)
	}
	// The filtered view must be a subset.
	var filtered facetsResponse
	fu := ts.URL + "/facets?filter=" + url.QueryEscape(exNS+"country=<"+exNS+"greece>")
	getJSON(t, fu, &filtered)
	if filtered.Count >= resp.Count || filtered.Count == 0 {
		t.Fatalf("filtered count = %d, want 0 < n < %d", filtered.Count, resp.Count)
	}
}

func TestFacetsBadFilter400(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	var e errorBody
	r := getJSON(t, ts.URL+"/facets?filter=nocut", &e)
	if r.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", r.StatusCode)
	}
}

func TestNeighborhood(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	var resp neighborhoodResponse
	u := ts.URL + "/graph/neighborhood?node=" + url.QueryEscape("<"+exNS+"athens>")
	r := getJSON(t, u, &resp)
	if r.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", r.StatusCode)
	}
	if len(resp.Nodes) < 2 || resp.Nodes[0].Value != exNS+"athens" {
		t.Fatalf("nodes = %+v, want athens first with neighbors", resp.Nodes)
	}
	if len(resp.Edges) == 0 {
		t.Fatal("no edges in neighborhood")
	}
	for _, e := range resp.Edges {
		if e.From < 0 || e.From >= len(resp.Nodes) || e.To < 0 || e.To >= len(resp.Nodes) {
			t.Fatalf("edge index out of range: %+v", e)
		}
	}
	// 2 hops reaches strictly more of MiniLOD than 1.
	var wide neighborhoodResponse
	getJSON(t, u+"&hops=2", &wide)
	if len(wide.Nodes) <= len(resp.Nodes) {
		t.Fatalf("2-hop nodes = %d, want > %d", len(wide.Nodes), len(resp.Nodes))
	}
}

func TestNeighborhoodUnknownNode404(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	r := getJSON(t, ts.URL+"/graph/neighborhood?node="+url.QueryEscape("<http://nope.example/x>"), &errorBody{})
	if r.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", r.StatusCode)
	}
}

func TestHETree(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	var resp hetreeResponse
	u := ts.URL + "/hetree?prop=" + url.QueryEscape("<"+exNS+"population>") + "&budget=4"
	r := getJSON(t, u, &resp)
	if r.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", r.StatusCode)
	}
	if resp.Items != 8 { // 3 countries + 5 cities carry ex:population
		t.Fatalf("items = %d, want 8", resp.Items)
	}
	if len(resp.Nodes) == 0 || len(resp.Nodes) > 4 {
		t.Fatalf("nodes = %d, want 1..4 under budget", len(resp.Nodes))
	}
	total := 0
	for _, n := range resp.Nodes {
		total += n.Count
	}
	if total != resp.Items {
		t.Fatalf("level counts sum to %d, want %d", total, resp.Items)
	}
}

func TestHETreeUnknownProp404(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	r := getJSON(t, ts.URL+"/hetree?prop="+url.QueryEscape("<http://nope.example/p>"), &errorBody{})
	if r.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", r.StatusCode)
	}
}

func TestStats(t *testing.T) {
	_, ts, st := newTestServer(t, Config{})
	var resp statsResponse
	r := getJSON(t, ts.URL+"/stats", &resp)
	if r.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", r.StatusCode)
	}
	if resp.Triples != st.Len() {
		t.Fatalf("triples = %d, want %d", resp.Triples, st.Len())
	}
	if len(resp.Predicates) == 0 || len(resp.Classes) == 0 {
		t.Fatalf("stats empty: %+v", resp)
	}
}

func TestHealthz(t *testing.T) {
	_, ts, st := newTestServer(t, Config{})
	var resp healthzResponse
	r := getJSON(t, ts.URL+"/healthz", &resp)
	if r.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", r.StatusCode)
	}
	if resp.Status != "ok" || resp.Triples != st.Len() || resp.Cache == nil {
		t.Fatalf("healthz = %+v", resp)
	}
}

func TestCacheDisabled(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{CacheCapacity: -1})
	u := ts.URL + "/stats"
	getJSON(t, u, nil)
	resp := getJSON(t, u, nil)
	if got := resp.Header.Get("X-Cache"); got != "MISS" {
		t.Fatalf("X-Cache = %q with caching disabled, want MISS", got)
	}
}

// TestConcurrentMixedTraffic drives reads and writes in parallel; under
// -race this pins the cross-layer locking (store, cache, limiter).
func TestConcurrentMixedTraffic(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	queries := []string{
		"SELECT ?s WHERE { ?s a <" + exNS + "City> }",
		"SELECT ?s ?o WHERE { ?s <" + exNS + "country> ?o }",
		"ASK { ?s ?p ?o }",
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				switch i % 4 {
				case 0, 1, 2:
					u := ts.URL + "/sparql?query=" + url.QueryEscape(queries[(g+i)%len(queries)])
					resp, err := http.Get(u)
					if err == nil {
						io.Copy(io.Discard, resp.Body)
						resp.Body.Close()
						if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusTooManyRequests {
							t.Errorf("status = %d", resp.StatusCode)
						}
					}
				case 3:
					nt := fmt.Sprintf("<%sw%d-%d> <%srelated> <%sathens> .\n", exNS, g, i, exNS, exNS)
					resp, err := http.Post(ts.URL+"/triples", "application/n-triples", strings.NewReader(nt))
					if err == nil {
						io.Copy(io.Discard, resp.Body)
						resp.Body.Close()
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestGracefulShutdown(t *testing.T) {
	st := gen.MiniLODStore()
	s := New(st, Config{Logger: discardLogger()})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Serve(ctx, ln) }()

	resp, err := http.Get("http://" + ln.Addr().String() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Serve returned %v on graceful shutdown, want nil", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("server did not shut down")
	}
}

func TestParseTermParam(t *testing.T) {
	cases := []struct {
		in   string
		want rdf.Term
	}{
		{"<http://e/x>", rdf.IRI("http://e/x")},
		{"http://e/x", rdf.IRI("http://e/x")},
		{"_:b1", rdf.BlankNode("b1")},
		{`"plain"`, rdf.NewLiteral("plain")},
		{`"bonjour"@fr`, rdf.NewLangLiteral("bonjour", "fr")},
		{`"5"^^<http://www.w3.org/2001/XMLSchema#integer>`, rdf.NewTypedLiteral("5", rdf.IRI("http://www.w3.org/2001/XMLSchema#integer"))},
		{"plainword", rdf.NewLiteral("plainword")},
	}
	for _, c := range cases {
		got, err := parseTermParam(c.in)
		if err != nil {
			t.Fatalf("parseTermParam(%q): %v", c.in, err)
		}
		if got != c.want {
			t.Fatalf("parseTermParam(%q) = %v, want %v", c.in, got, c.want)
		}
	}
	for _, bad := range []string{"", `"unterminated`, `"x"^^bad`} {
		if _, err := parseTermParam(bad); err == nil {
			t.Fatalf("parseTermParam(%q) succeeded, want error", bad)
		}
	}
}

func TestQueryErrorMapping(t *testing.T) {
	_, parseErr := sparql.Exec(gen.MiniLODStore(), "SELECT {{{")
	status, _ := queryError(parseErr)
	if status != http.StatusBadRequest {
		t.Fatalf("parse error mapped to %d, want 400", status)
	}
	if status, _ := queryError(context.DeadlineExceeded); status != http.StatusGatewayTimeout {
		t.Fatalf("deadline mapped to %d, want 504", status)
	}
	if status, _ := queryError(context.Canceled); status != statusClientClosedRequest {
		t.Fatalf("cancel mapped to %d, want %d", status, statusClientClosedRequest)
	}
	if status, _ := queryError(fmt.Errorf("boom")); status != http.StatusInternalServerError {
		t.Fatalf("unknown error mapped to %d, want 500", status)
	}
}

// TestCacheKeyNoCollision is the regression test for decoded-parameter
// collisions: two requests whose decoded parameters differ must never share
// a cache key, even when naive '&'/'=' joining of decoded values would
// coincide.
func TestCacheKeyNoCollision(t *testing.T) {
	s := New(gen.MiniLODStore(), Config{Logger: discardLogger()})
	mk := func(rawQuery string) *http.Request {
		req := httptest.NewRequest(http.MethodGet, "/facets?"+rawQuery, nil)
		return req
	}
	// filter="p=v" with max=5  vs  a single filter "p=v&max=5".
	a := s.cacheKey(mk("filter=p%3Dv&max=5"))
	b := s.cacheKey(mk("filter=p%3Dv%26max%3D5"))
	if a == b {
		t.Fatalf("distinct decoded requests share cache key %q", a)
	}
	// Same decoded request, different parameter order: same key.
	c := s.cacheKey(mk("max=5&filter=p%3Dv"))
	if a != c {
		t.Fatalf("equivalent requests got distinct keys %q vs %q", a, c)
	}
}

// TestNegativeConfigDefaults pins that negative knobs fall back to defaults
// instead of panicking (make(chan, -1)) or insta-expiring every query.
func TestNegativeConfigDefaults(t *testing.T) {
	cfg := Config{MaxInFlight: -1, QueryTimeout: -time.Second, MaxFacetValues: -3, Parallelism: -2}.withDefaults()
	if cfg.MaxInFlight != 64 || cfg.QueryTimeout != 30*time.Second || cfg.MaxFacetValues != 25 || cfg.Parallelism < 1 {
		t.Fatalf("negative config not defaulted: %+v", cfg)
	}
	// Constructing and serving with negative knobs must work end to end.
	s := New(gen.MiniLODStore(), Config{MaxInFlight: -1, QueryTimeout: -time.Second, Logger: discardLogger()})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/sparql?query=" + url.QueryEscape("ASK { ?s ?p ?o }"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
}
