package server

import (
	"context"
	"encoding/json"
	"net/http"
	"strconv"

	"github.com/lodviz/lodviz/internal/sparql"
)

// streamContentType is the media type of the chunked streaming results
// format: one JSON document per line (NDJSON).
const streamContentType = "application/x-ndjson"

// streamHead is the first NDJSON line of a streamed SELECT response; it
// plays the role of the "head" object in the SPARQL JSON format.
type streamHead struct {
	Vars []string `json:"vars"`
}

// streamTrailer is the last NDJSON line: done marks a complete result set,
// error a mid-stream failure (the HTTP status is long gone by then).
type streamTrailer struct {
	Done  bool   `json:"done"`
	Rows  int    `json:"rows"`
	Error string `json:"error,omitempty"`
}

// streamAsk is the single NDJSON payload line of a streamed ASK response.
type streamAsk struct {
	Boolean bool `json:"boolean"`
}

// handleSPARQLStream implements chunked streaming query results: the query
// arrives exactly as on /sparql, the response is NDJSON — a head line with
// the projected variables, one results.bindings-shaped line per row, and a
// done/error trailer. Rows are written and flushed as the engine finds
// them, so the first row of a plain LIMIT/OFFSET query arrives while the
// scan is still running (and the scan stops once the limit is filled).
// Responses always bypass the generation cache, like SERVICE queries on
// /sparql: buffering a stream to cache it would forfeit the point.
func (s *Server) handleSPARQLStream(w http.ResponseWriter, r *http.Request) {
	q, isUpdate, errStatus, errMsg := sparqlRequestText(r)
	if errStatus != 0 {
		writeError(w, errStatus, errMsg)
		return
	}
	if isUpdate {
		writeError(w, http.StatusBadRequest, "updates are not streamable; POST them to /sparql")
		return
	}
	ctx, cancel := s.queryCtx(r)
	defer cancel()
	stm, err := sparql.PrepareStream(ctx, s.querySource(), q, sparql.Options{Parallelism: s.cfg.Parallelism, Service: s.mesh, Metrics: s.engineMet})
	if err != nil {
		status, msg := queryError(err)
		writeError(w, status, msg)
		return
	}

	h := w.Header()
	h.Set("Content-Type", streamContentType)
	h.Set("X-Cache", "BYPASS")
	h.Set("X-Stream-Incremental", strconv.FormatBool(stm.Incremental()))
	w.WriteHeader(http.StatusOK)
	line := ndjsonLiner(w)

	if stm.Form() == sparql.FormAsk {
		ans, err := stm.Ask()
		if err != nil {
			_, msg := queryError(err)
			markStream(w, 0, line(streamTrailer{Error: msg}))
			return
		}
		if line(streamAsk{Boolean: ans}) {
			markStream(w, 1, line(streamTrailer{Done: true}))
		} else {
			markStream(w, 0, false)
		}
		return
	}

	if !line(streamHead{Vars: stm.Vars()}) {
		markStream(w, 0, false)
		return
	}
	rows := 0
	clientGone := false
	runErr := stm.Run(func(row sparql.Binding) bool {
		if !line(sparql.EncodeBinding(row)) {
			clientGone = true
			return false
		}
		rows++
		if s.streamRowHook != nil {
			s.streamRowHook(rows)
		}
		return true
	})
	if runErr != nil {
		_, msg := queryError(runErr)
		markStream(w, rows, line(streamTrailer{Rows: rows, Error: msg}))
		return
	}
	if clientGone {
		// The rows delivered before the disconnect still count — the
		// access log and metrics must not lose them.
		markStream(w, rows, false)
		return
	}
	markStream(w, rows, line(streamTrailer{Done: true, Rows: rows}))
}

// ndjsonLiner returns the per-line NDJSON writer over w: encode, newline,
// flush — so each line reaches the client as it is produced. It reports
// false once the client is gone (the signal to stop evaluating).
func ndjsonLiner(w http.ResponseWriter) func(v any) bool {
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	return func(v any) bool {
		if err := enc.Encode(v); err != nil {
			return false // client gone; stop evaluating
		}
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}
}

// queryCtx bounds one request's evaluation by the configured timeout.
func (s *Server) queryCtx(r *http.Request) (ctx context.Context, cancel context.CancelFunc) {
	return context.WithTimeout(r.Context(), s.cfg.QueryTimeout)
}

// querySource is the triple source queries evaluate against: the store,
// unless a test wrapped it (Config.querySource) to observe or throttle
// scans.
func (s *Server) querySource() sparql.Source {
	if s.cfg.querySource != nil {
		return s.cfg.querySource
	}
	return s.st
}
