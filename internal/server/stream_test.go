package server

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/lodviz/lodviz/internal/gen"
	"github.com/lodviz/lodviz/internal/rdf"
	"github.com/lodviz/lodviz/internal/store"
)

// newHTTPTestServer serves an already-built Server (newTestServer builds
// its own store; this variant lets a test supply a wrapped query source).
func newHTTPTestServer(t *testing.T, s *Server) string {
	t.Helper()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts.URL
}

// streamLine is the union of every NDJSON line shape the endpoint emits.
type streamLine struct {
	Vars    []string `json:"vars"`
	Boolean *bool    `json:"boolean"`
	Done    *bool    `json:"done"`
	Rows    int      `json:"rows"`
	Error   string   `json:"error"`
	raw     map[string]json.RawMessage
}

func streamGet(t *testing.T, base, query string) []streamLine {
	t.Helper()
	resp, err := http.Get(base + "/sparql/stream?query=" + url.QueryEscape(query))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != streamContentType {
		t.Fatalf("Content-Type = %q, want %q", ct, streamContentType)
	}
	if xc := resp.Header.Get("X-Cache"); xc != "BYPASS" {
		t.Fatalf("X-Cache = %q, want BYPASS", xc)
	}
	var lines []streamLine
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var ln streamLine
		if err := json.Unmarshal(sc.Bytes(), &ln); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		json.Unmarshal(sc.Bytes(), &ln.raw)
		lines = append(lines, ln)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return lines
}

// TestStreamEndpointSelect: head line, one line per row, done trailer —
// and the rows match the buffered /sparql endpoint's bindings.
func TestStreamEndpointSelect(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	q := `SELECT ?s ?p ?o WHERE { ?s ?p ?o } LIMIT 5`
	lines := streamGet(t, ts.URL, q)
	if len(lines) != 7 { // head + 5 rows + trailer
		t.Fatalf("got %d lines, want 7", len(lines))
	}
	if len(lines[0].Vars) != 3 {
		t.Fatalf("head vars = %v, want 3 names", lines[0].Vars)
	}
	last := lines[len(lines)-1]
	if last.Done == nil || !*last.Done || last.Rows != 5 {
		t.Fatalf("trailer = %+v, want done with 5 rows", last)
	}
	// Differential against /sparql.
	var doc sparqlDoc
	getJSON(t, ts.URL+"/sparql?query="+url.QueryEscape(q), &doc)
	for i, b := range doc.Results.Bindings {
		row := lines[i+1].raw
		if len(row) != len(b) {
			t.Fatalf("row %d: stream has %d bindings, buffered has %d", i, len(row), len(b))
		}
		for name, term := range b {
			var st struct {
				Value string `json:"value"`
			}
			if err := json.Unmarshal(row[name], &st); err != nil || st.Value != term.Value {
				t.Errorf("row %d var %s: stream %s, buffered %s", i, name, row[name], term.Value)
			}
		}
	}
}

func TestStreamEndpointAsk(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	lines := streamGet(t, ts.URL, `ASK { ?s ?p ?o }`)
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	if lines[0].Boolean == nil || !*lines[0].Boolean {
		t.Fatalf("boolean line = %+v, want true", lines[0])
	}
	if lines[1].Done == nil || !*lines[1].Done {
		t.Fatalf("trailer = %+v, want done", lines[1])
	}
}

func TestStreamEndpointParseError(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/sparql/stream?query=" + url.QueryEscape("SELECT ?s WHERE {"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
}

// gatedSource wraps the store and blocks its scans — snapshot and paged
// alike — after `free` triples total, until the gate channel is closed:
// the deliberately slow store wrapper. Evaluation provably cannot finish
// while the gate is shut, so anything the client has read by then was
// delivered mid-evaluation.
type gatedSource struct {
	*store.Store
	free int64
	gate chan struct{}
	seen atomic.Int64
}

func (g *gatedSource) step() {
	if g.seen.Add(1) > g.free {
		<-g.gate
	}
}

func (g *gatedSource) ForEach(p store.Pattern, fn func(rdf.Triple) bool) {
	g.Store.ForEach(p, func(t rdf.Triple) bool {
		g.step()
		return fn(t)
	})
}

func (g *gatedSource) ForEachPage(p store.Pattern, pos, max int, fn func(rdf.Triple) bool) (int, bool) {
	return g.Store.ForEachPage(p, pos, max, func(t rdf.Triple) bool {
		g.step()
		return fn(t)
	})
}

// TestStreamFirstRowBeforeEvaluationCompletes is the streaming guarantee:
// the first NDJSON row reaches the client while the engine is still
// mid-scan (the gated source blocks after 3 triples; the full pattern has
// hundreds).
func TestStreamFirstRowBeforeEvaluationCompletes(t *testing.T) {
	st := gen.MiniLODStore()
	gate := make(chan struct{})
	// free covers the driver's first page (streamBatchInit matches) and
	// nothing more: the scan blocks mid-second-page while the client must
	// already hold the first rows.
	src := &gatedSource{Store: st, free: 6, gate: gate}
	s := New(st, Config{Logger: discardLogger(), querySource: src})
	ts := newHTTPTestServer(t, s)

	resp, err := http.Get(ts + "/sparql/stream?query=" + url.QueryEscape(`SELECT ?s ?p ?o WHERE { ?s ?p ?o }`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	readLine := func() string {
		linec := make(chan string, 1)
		errc := make(chan error, 1)
		go func() {
			if sc.Scan() {
				linec <- sc.Text()
			} else {
				errc <- sc.Err()
			}
		}()
		select {
		case ln := <-linec:
			return ln
		case err := <-errc:
			t.Fatalf("stream ended early: %v", err)
		case <-time.After(5 * time.Second):
			t.Fatal("timed out waiting for a streamed line while the scan was gated")
		}
		return ""
	}
	head := readLine()
	if !strings.Contains(head, "vars") {
		t.Fatalf("first line is not a head: %q", head)
	}
	firstRow := readLine()
	if !strings.Contains(firstRow, `"uri"`) && !strings.Contains(firstRow, `"literal"`) && !strings.Contains(firstRow, `"bnode"`) {
		t.Fatalf("second line is not a binding row: %q", firstRow)
	}
	// The gate is still shut: evaluation cannot have completed, yet the
	// client holds a row. Release the scan and drain the rest.
	close(gate)
	sawDone := false
	for sc.Scan() {
		if strings.Contains(sc.Text(), `"done":true`) {
			sawDone = true
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if !sawDone {
		t.Fatal("missing done trailer after releasing the gate")
	}
}

// TestStreamMatchesBufferedAcrossShapes: for representative query shapes
// (incremental and materializing alike) the streamed row sequence equals
// the buffered endpoint's bindings array.
func TestStreamMatchesBufferedAcrossShapes(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	for _, q := range []string{
		`SELECT ?s WHERE { ?s ?p ?o } LIMIT 3 OFFSET 2`,
		`SELECT ?s ?o WHERE { ?s ?p ?o } ORDER BY ?o ?s LIMIT 4`,
		`SELECT DISTINCT ?p WHERE { ?s ?p ?o } LIMIT 5`,
	} {
		lines := streamGet(t, ts.URL, q)
		var doc sparqlDoc
		getJSON(t, ts.URL+"/sparql?query="+url.QueryEscape(q), &doc)
		gotRows := len(lines) - 2
		if gotRows != len(doc.Results.Bindings) {
			t.Errorf("%s: streamed %d rows, buffered %d", q, gotRows, len(doc.Results.Bindings))
		}
	}
}
