package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/url"
	"strings"
	"testing"

	"github.com/lodviz/lodviz/internal/ledger"
)

// postUpdate sends a SPARQL update as an urlencoded form and decodes the
// response into into (when non-nil), returning the response.
func postUpdate(t *testing.T, tsURL, update string, into any) *http.Response {
	t.Helper()
	resp, err := http.PostForm(tsURL+"/sparql", url.Values{"update": {update}})
	if err != nil {
		t.Fatalf("POST update: %v", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading body: %v", err)
	}
	if into != nil {
		if err := json.Unmarshal(body, into); err != nil {
			t.Fatalf("decoding update response: %v\nbody: %s", err, body)
		}
	}
	return resp
}

func TestSPARQLUpdateRoundTrip(t *testing.T) {
	_, ts, st := newTestServer(t, Config{})
	gen := st.Generation()

	var ur updateResponse
	resp := postUpdate(t, ts.URL, `INSERT DATA {
		<http://ex/crete> <`+exNS+`country> <`+exNS+`greece> .
		<http://ex/crete> <`+exNS+`population> 623000 .
	}`, &ur)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	if ur.Inserted != 2 || ur.Deleted != 0 || ur.Ops != 1 {
		t.Fatalf("response = %+v, want 2 inserted", ur)
	}
	if ur.Generation == gen {
		t.Fatal("effective insert did not advance the generation")
	}

	// The inserted data is queryable through the same endpoint.
	q := `SELECT ?p WHERE { <http://ex/crete> <` + exNS + `population> ?p }`
	var doc sparqlDoc
	if resp := getJSON(t, ts.URL+"/sparql?query="+url.QueryEscape(q), &doc); resp.StatusCode != 200 {
		t.Fatalf("query status = %d", resp.StatusCode)
	}
	if len(doc.Results.Bindings) != 1 || doc.Results.Bindings[0]["p"].Value != "623000" {
		t.Fatalf("query after insert: %+v", doc.Results)
	}

	// DELETE WHERE removes it again.
	ur = updateResponse{}
	postUpdate(t, ts.URL, `DELETE WHERE { <http://ex/crete> ?p ?o }`, &ur)
	if ur.Deleted != 2 {
		t.Fatalf("deleted %d, want 2", ur.Deleted)
	}
	doc = sparqlDoc{}
	getJSON(t, ts.URL+"/sparql?query="+url.QueryEscape(q), &doc)
	if len(doc.Results.Bindings) != 0 {
		t.Fatalf("rows after delete: %+v", doc.Results)
	}
}

func TestSPARQLUpdateRawBody(t *testing.T) {
	_, ts, st := newTestServer(t, Config{})
	before := st.Len()
	resp, err := http.Post(ts.URL+"/sparql", "application/sparql-update",
		strings.NewReader(`INSERT DATA { <http://ex/a> <http://ex/p> <http://ex/b> }`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	if st.Len() != before+1 {
		t.Fatalf("store grew by %d, want 1", st.Len()-before)
	}
}

func TestSPARQLUpdateInvalidatesCache(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	q := ts.URL + "/sparql?query=" + url.QueryEscape(`SELECT ?o WHERE { <http://ex/c1> <http://ex/p> ?o }`)

	var doc sparqlDoc
	getJSON(t, q, &doc)
	if resp := getJSON(t, q, &doc); resp.Header.Get("X-Cache") != "HIT" {
		t.Fatalf("second identical query X-Cache = %q, want HIT", resp.Header.Get("X-Cache"))
	}
	if len(doc.Results.Bindings) != 0 {
		t.Fatalf("rows before insert: %+v", doc.Results)
	}

	postUpdate(t, ts.URL, `INSERT DATA { <http://ex/c1> <http://ex/p> "now" }`, nil)

	resp := getJSON(t, q, &doc)
	if resp.Header.Get("X-Cache") != "MISS" {
		t.Fatalf("post-update X-Cache = %q, want MISS (generation must orphan the entry)", resp.Header.Get("X-Cache"))
	}
	if len(doc.Results.Bindings) != 1 || doc.Results.Bindings[0]["o"].Value != "now" {
		t.Fatalf("rows after insert: %+v", doc.Results)
	}
}

func TestSPARQLUpdateRejectsCrossOrigin(t *testing.T) {
	_, ts, st := newTestServer(t, Config{})
	before := st.Generation()
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/sparql",
		strings.NewReader("update="+url.QueryEscape(`INSERT DATA { <http://ex/evil> <http://ex/p> 1 }`)))
	req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	req.Header.Set("Origin", "https://evil.example")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("status = %d, want 403", resp.StatusCode)
	}
	if st.Generation() != before {
		t.Fatal("cross-origin update mutated the store")
	}
	// Queries with an Origin header still work — reads are CORS-open.
	q := `ASK { ?s ?p ?o }`
	reqQ, _ := http.NewRequest(http.MethodGet, ts.URL+"/sparql?query="+url.QueryEscape(q), nil)
	reqQ.Header.Set("Origin", "https://anywhere.example")
	respQ, err := http.DefaultClient.Do(reqQ)
	if err != nil {
		t.Fatal(err)
	}
	respQ.Body.Close()
	if respQ.StatusCode != http.StatusOK {
		t.Fatalf("cross-origin query status = %d, want 200", respQ.StatusCode)
	}
}

func TestSPARQLUpdateProtocolErrors(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})

	// GET carries no update binding: ?update= is just a missing query.
	resp, err := http.Get(ts.URL + "/sparql?update=" + url.QueryEscape(`INSERT DATA { <http://ex/a> <http://ex/p> 1 }`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("GET update status = %d, want 400", resp.StatusCode)
	}

	// Both query and update in one form is ambiguous.
	resp, err = http.PostForm(ts.URL+"/sparql", url.Values{
		"query":  {`ASK { ?s ?p ?o }`},
		"update": {`INSERT DATA { <http://ex/a> <http://ex/p> 1 }`},
	})
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("query+update status = %d, want 400", resp.StatusCode)
	}

	// A parse error in the update text is the client's fault.
	resp = postUpdate(t, ts.URL, `INSERT DATA { ?v <http://ex/p> 1 }`, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad update status = %d, want 400", resp.StatusCode)
	}

	// Updates do not stream.
	resp, err = http.PostForm(ts.URL+"/sparql/stream", url.Values{"update": {`INSERT DATA { <http://ex/a> <http://ex/p> 1 }`}})
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("streamed update status = %d, want 400", resp.StatusCode)
	}
}

func TestLedgerEndpoints(t *testing.T) {
	led := ledger.New()
	led.Append(1, []byte("batch-1"))
	led.Append(2, []byte("batch-2"))
	_, ts, _ := newTestServer(t, Config{Ledger: led})

	var info ledger.Info
	if resp := getJSON(t, ts.URL+"/ledger/root", &info); resp.StatusCode != http.StatusOK {
		t.Fatalf("/ledger/root status = %d", resp.StatusCode)
	}
	if info.Count != 2 || info.FirstSeq != 1 || info.LastSeq != 2 || len(info.Root) != 64 {
		t.Fatalf("/ledger/root = %+v", info)
	}

	var proof ledger.Proof
	if resp := getJSON(t, ts.URL+"/ledger/proof?seq=2", &proof); resp.StatusCode != http.StatusOK {
		t.Fatalf("/ledger/proof status = %d", resp.StatusCode)
	}
	if proof.Root != info.Root {
		t.Fatalf("proof root %s != ledger root %s", proof.Root, info.Root)
	}
	if !ledger.VerifyProof(proof) {
		t.Fatalf("served proof does not verify: %+v", proof)
	}
	if proof.Leaf != ledger.LeafHash([]byte("batch-2")) {
		t.Fatal("proof leaf does not match the record payload hash")
	}

	for path, want := range map[string]int{
		"/ledger/proof?seq=99":  http.StatusNotFound,
		"/ledger/proof?seq=abc": http.StatusBadRequest,
		"/ledger/proof":         http.StatusBadRequest,
	} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Errorf("GET %s status = %d, want %d", path, resp.StatusCode, want)
		}
	}
}

func TestLedgerEndpointsWithoutLedger(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	for _, path := range []string{"/ledger/root", "/ledger/proof?seq=1"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s status = %d, want 404 when no ledger is configured", path, resp.StatusCode)
		}
	}
}
