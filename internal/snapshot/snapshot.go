// Package snapshot defines the lodviz on-disk snapshot format: a versioned,
// checksummed binary encoding of a dictionary-encoded triple store
// (dictionary terms followed by the sorted SPO index).
//
// The format is deliberately dumb and sequential — one pass to write, one
// pass to read, no seeking — so snapshots stream through bounded buffers and
// a partial write can never masquerade as a complete snapshot:
//
//	offset 0   magic   "LODVSNAP" (8 bytes)
//	offset 8   version uint32 LE
//	offset 12  terms   uint64 LE (dictionary entries; IDs are 1..terms)
//	offset 20  triples uint64 LE
//	           dictionary: per term a kind byte (rdf.TermKind) and its
//	           length-prefixed string fields (IRI/blank: one field;
//	           literal: lexical, datatype, lang)
//	           SPO index: per triple uvarint(s - prevS), uvarint(p),
//	           uvarint(o) — subjects are non-decreasing in SPO order, so
//	           delta coding keeps hub-heavy graphs compact
//	trailer    crc32   uint32 LE, IEEE, over every preceding byte
//
// This package owns only the wire format; the store package layers
// Store.WriteSnapshot / ReadSnapshot on top of it.
package snapshot

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
	"hash/crc32"
	"io"

	"github.com/lodviz/lodviz/internal/rdf"
)

// Magic identifies a lodviz snapshot file.
const Magic = "LODVSNAP"

// Version is the current format version.
const Version = 1

// maxStringLen bounds one decoded string field; longer lengths are treated
// as corruption rather than honored as allocations.
const maxStringLen = 1 << 30

// Format errors. Read-side failures wrap one of these.
var (
	ErrBadMagic = errors.New("snapshot: bad magic (not a lodviz snapshot)")
	ErrVersion  = errors.New("snapshot: unsupported format version")
	ErrChecksum = errors.New("snapshot: checksum mismatch (truncated or corrupt)")
	ErrCorrupt  = errors.New("snapshot: corrupt payload")
)

// Writer serializes one snapshot. Use NewWriter, then exactly the declared
// number of Term and Triple calls, then Close.
type Writer struct {
	bw      *bufio.Writer
	crc     hash.Hash32
	out     io.Writer // bw and crc
	prevS   uint32
	scratch [binary.MaxVarintLen64]byte
}

// NewWriter starts a snapshot on w and writes the header, declaring the
// dictionary and triple counts up front.
func NewWriter(w io.Writer, numTerms, numTriples int) (*Writer, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	sw := &Writer{bw: bw, crc: crc32.NewIEEE()}
	sw.out = io.MultiWriter(bw, sw.crc)
	var hdr [28]byte
	copy(hdr[:8], Magic)
	binary.LittleEndian.PutUint32(hdr[8:12], Version)
	binary.LittleEndian.PutUint64(hdr[12:20], uint64(numTerms))
	binary.LittleEndian.PutUint64(hdr[20:28], uint64(numTriples))
	if _, err := sw.out.Write(hdr[:]); err != nil {
		return nil, fmt.Errorf("snapshot: writing header: %w", err)
	}
	return sw, nil
}

func (sw *Writer) writeUvarint(v uint64) error {
	n := binary.PutUvarint(sw.scratch[:], v)
	_, err := sw.out.Write(sw.scratch[:n])
	return err
}

func (sw *Writer) writeString(s string) error {
	if err := sw.writeUvarint(uint64(len(s))); err != nil {
		return err
	}
	_, err := io.WriteString(sw.out, s)
	return err
}

// Term appends one dictionary entry. Terms must be written in ID order.
func (sw *Writer) Term(t rdf.Term) error {
	if t == nil {
		return fmt.Errorf("snapshot: nil term")
	}
	kind := t.Kind()
	if _, err := sw.out.Write([]byte{byte(kind)}); err != nil {
		return err
	}
	switch v := t.(type) {
	case rdf.IRI:
		return sw.writeString(string(v))
	case rdf.BlankNode:
		return sw.writeString(string(v))
	case rdf.Literal:
		if err := sw.writeString(v.Lexical); err != nil {
			return err
		}
		if err := sw.writeString(string(v.Datatype)); err != nil {
			return err
		}
		return sw.writeString(v.Lang)
	default:
		return fmt.Errorf("snapshot: unsupported term kind %v", kind)
	}
}

// Triple appends one SPO entry. Triples must arrive in SPO-sorted order
// (non-decreasing subject IDs); the subject is delta-coded against the
// previous call.
func (sw *Writer) Triple(s, p, o uint32) error {
	if s < sw.prevS {
		return fmt.Errorf("snapshot: triples out of SPO order (subject %d after %d)", s, sw.prevS)
	}
	if err := sw.writeUvarint(uint64(s - sw.prevS)); err != nil {
		return err
	}
	sw.prevS = s
	if err := sw.writeUvarint(uint64(p)); err != nil {
		return err
	}
	return sw.writeUvarint(uint64(o))
}

// Close seals the snapshot: it appends the checksum trailer and flushes.
// It does not close the underlying writer.
func (sw *Writer) Close() error {
	var tr [4]byte
	binary.LittleEndian.PutUint32(tr[:], sw.crc.Sum32())
	if _, err := sw.bw.Write(tr[:]); err != nil {
		return fmt.Errorf("snapshot: writing checksum: %w", err)
	}
	if err := sw.bw.Flush(); err != nil {
		return fmt.Errorf("snapshot: flush: %w", err)
	}
	return nil
}

// crcReader feeds every byte read through the running checksum.
type crcReader struct {
	r   *bufio.Reader
	crc hash.Hash32
}

func (c *crcReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	if n > 0 {
		c.crc.Write(p[:n])
	}
	return n, err
}

func (c *crcReader) ReadByte() (byte, error) {
	b, err := c.r.ReadByte()
	if err == nil {
		c.crc.Write([]byte{b})
	}
	return b, err
}

// Reader deserializes one snapshot. Use NewReader, then exactly NumTerms
// Term calls and NumTriples Triple calls, then Close to verify the checksum.
type Reader struct {
	raw   *bufio.Reader
	cr    *crcReader
	terms uint64
	tris  uint64
	prevS uint32
}

// NewReader reads and validates the snapshot header on r.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	sr := &Reader{raw: br, cr: &crcReader{r: br, crc: crc32.NewIEEE()}}
	var hdr [28]byte
	if _, err := io.ReadFull(sr.cr, hdr[:]); err != nil {
		return nil, fmt.Errorf("snapshot: reading header: %w", err)
	}
	if string(hdr[:8]) != Magic {
		return nil, ErrBadMagic
	}
	if v := binary.LittleEndian.Uint32(hdr[8:12]); v != Version {
		return nil, fmt.Errorf("%w: got %d, support %d", ErrVersion, v, Version)
	}
	sr.terms = binary.LittleEndian.Uint64(hdr[12:20])
	sr.tris = binary.LittleEndian.Uint64(hdr[20:28])
	return sr, nil
}

// NumTerms returns the declared dictionary size.
func (sr *Reader) NumTerms() uint64 { return sr.terms }

// NumTriples returns the declared triple count.
func (sr *Reader) NumTriples() uint64 { return sr.tris }

func (sr *Reader) readString() (string, error) {
	n, err := binary.ReadUvarint(sr.cr)
	if err != nil {
		return "", corrupt("string length: %v", err)
	}
	if n > maxStringLen {
		return "", corrupt("string length %d exceeds limit", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(sr.cr, buf); err != nil {
		return "", corrupt("string body: %v", err)
	}
	return string(buf), nil
}

// Term reads the next dictionary entry.
func (sr *Reader) Term() (rdf.Term, error) {
	kind, err := sr.cr.ReadByte()
	if err != nil {
		return nil, corrupt("term kind: %v", err)
	}
	switch rdf.TermKind(kind) {
	case rdf.KindIRI:
		s, err := sr.readString()
		if err != nil {
			return nil, err
		}
		return rdf.IRI(s), nil
	case rdf.KindBlank:
		s, err := sr.readString()
		if err != nil {
			return nil, err
		}
		return rdf.BlankNode(s), nil
	case rdf.KindLiteral:
		lex, err := sr.readString()
		if err != nil {
			return nil, err
		}
		dt, err := sr.readString()
		if err != nil {
			return nil, err
		}
		lang, err := sr.readString()
		if err != nil {
			return nil, err
		}
		return rdf.Literal{Lexical: lex, Datatype: rdf.IRI(dt), Lang: lang}, nil
	default:
		return nil, corrupt("unknown term kind %d", kind)
	}
}

// Triple reads the next SPO entry, undoing the subject delta coding.
func (sr *Reader) Triple() (s, p, o uint32, err error) {
	ds, err := binary.ReadUvarint(sr.cr)
	if err != nil {
		return 0, 0, 0, corrupt("triple subject: %v", err)
	}
	pv, err := binary.ReadUvarint(sr.cr)
	if err != nil {
		return 0, 0, 0, corrupt("triple predicate: %v", err)
	}
	ov, err := binary.ReadUvarint(sr.cr)
	if err != nil {
		return 0, 0, 0, corrupt("triple object: %v", err)
	}
	sv := uint64(sr.prevS) + ds
	if sv > 1<<32-1 || pv > 1<<32-1 || ov > 1<<32-1 {
		return 0, 0, 0, corrupt("triple ID overflows uint32")
	}
	sr.prevS = uint32(sv)
	return uint32(sv), uint32(pv), uint32(ov), nil
}

// Close reads the checksum trailer and verifies it against everything read
// so far. It must be called after the declared terms and triples have been
// consumed.
func (sr *Reader) Close() error {
	want := sr.cr.crc.Sum32()
	var tr [4]byte
	if _, err := io.ReadFull(sr.raw, tr[:]); err != nil {
		return fmt.Errorf("%w: missing checksum trailer: %v", ErrChecksum, err)
	}
	if got := binary.LittleEndian.Uint32(tr[:]); got != want {
		return fmt.Errorf("%w: stored %08x, computed %08x", ErrChecksum, got, want)
	}
	return nil
}

func corrupt(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}
