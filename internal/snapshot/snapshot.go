// Package snapshot defines the lodviz on-disk snapshot format: a versioned,
// checksummed binary encoding of a dictionary-encoded triple store
// (dictionary terms followed by the sorted SPO index).
//
// The format is deliberately dumb and sequential — one pass to write, one
// pass to read, no seeking — so snapshots stream through bounded buffers and
// a partial write can never masquerade as a complete snapshot:
//
//	offset 0   magic   "LODVSNAP" (8 bytes)
//	offset 8   version uint32 LE
//	offset 12  terms   uint64 LE (dictionary entries; IDs are 1..terms)
//	offset 20  triples uint64 LE
//	           dictionary: per term a kind byte (rdf.TermKind) and its
//	           length-prefixed string fields (IRI/blank: one field;
//	           literal: lexical, datatype, lang)
//	           SPO index (version 1): per triple uvarint(s - prevS),
//	           uvarint(p), uvarint(o) — subjects are non-decreasing in SPO
//	           order, so delta coding keeps hub-heavy graphs compact
//	           SPO index (version 2): full (s,p,o) delta coding. Per triple
//	           uvarint(ds = s - prevS); if ds > 0, uvarint(p) and
//	           uvarint(o) follow plain. If ds == 0 the subject repeats, so
//	           uvarint(dp = p - prevP); if dp > 0, uvarint(o) follows
//	           plain; if dp == 0 the (s,p) prefix repeats and
//	           uvarint(o - prevO) follows — strictly sorted SPO input makes
//	           every delta on a repeated prefix ≥ 1, so nothing is lost.
//	           Hub subjects with one multi-valued predicate (the common LOD
//	           shape) collapse to ~1 byte per triple.
//	           stats (version 2 only): uvarint(count), then per predicate —
//	           ascending uvarint(pid), uvarint(triples),
//	           uvarint(distinct subjects), uvarint(distinct objects) — the
//	           per-predicate cardinality table, persisted so a restored
//	           store starts with a warm query planner instead of an O(n)
//	           rescan.
//	trailer    crc32   uint32 LE, IEEE, over every preceding byte
//
// This package owns only the wire format; the store package layers
// Store.WriteSnapshot / ReadSnapshot on top of it. Readers accept both
// versions; writers default to the current one.
package snapshot

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
	"hash/crc32"
	"io"

	"github.com/lodviz/lodviz/internal/rdf"
)

// Magic identifies a lodviz snapshot file.
const Magic = "LODVSNAP"

// Version is the current (default) format version.
const Version = 2

// VersionV1 is the legacy format: subject-only delta coding, no stats
// section. Readers still accept it; NewWriterVersion can still produce it
// (migration tests pin that old snapshots restore).
const VersionV1 = 1

// maxStringLen bounds one decoded string field; longer lengths are treated
// as corruption rather than honored as allocations.
const maxStringLen = 1 << 30

// maxStatsEntries bounds the decoded stats table; the count is unverified
// until the trailing checksum, so it must not drive allocations.
const maxStatsEntries = 1 << 26

// Format errors. Read-side failures wrap one of these.
var (
	ErrBadMagic = errors.New("snapshot: bad magic (not a lodviz snapshot)")
	ErrVersion  = errors.New("snapshot: unsupported format version")
	ErrChecksum = errors.New("snapshot: checksum mismatch (truncated or corrupt)")
	ErrCorrupt  = errors.New("snapshot: corrupt payload")
)

// PredStat is one persisted per-predicate cardinality record (version 2).
type PredStat struct {
	// Pred is the predicate's dictionary ID.
	Pred uint32
	// Triples, DistinctSubjects and DistinctObjects mirror
	// store.PredCardinality.
	Triples          uint64
	DistinctSubjects uint64
	DistinctObjects  uint64
}

// Writer serializes one snapshot. Use NewWriter, then exactly the declared
// number of Term and Triple calls, optionally Stats, then Close.
type Writer struct {
	bw       *bufio.Writer
	crc      hash.Hash32
	out      io.Writer // bw and crc
	version  uint32
	prevS    uint32
	prevP    uint32
	prevO    uint32
	anyT     bool
	statsSet bool
	scratch  [binary.MaxVarintLen64]byte
}

// NewWriter starts a current-version snapshot on w and writes the header,
// declaring the dictionary and triple counts up front.
func NewWriter(w io.Writer, numTerms, numTriples int) (*Writer, error) {
	return NewWriterVersion(w, Version, numTerms, numTriples)
}

// NewWriterVersion is NewWriter for an explicit format version (VersionV1 or
// Version); tests use it to produce legacy snapshots.
func NewWriterVersion(w io.Writer, version, numTerms, numTriples int) (*Writer, error) {
	if version != VersionV1 && version != Version {
		return nil, fmt.Errorf("%w: cannot write version %d", ErrVersion, version)
	}
	bw := bufio.NewWriterSize(w, 1<<16)
	sw := &Writer{bw: bw, crc: crc32.NewIEEE(), version: uint32(version)}
	sw.out = io.MultiWriter(bw, sw.crc)
	var hdr [28]byte
	copy(hdr[:8], Magic)
	binary.LittleEndian.PutUint32(hdr[8:12], sw.version)
	binary.LittleEndian.PutUint64(hdr[12:20], uint64(numTerms))
	binary.LittleEndian.PutUint64(hdr[20:28], uint64(numTriples))
	if _, err := sw.out.Write(hdr[:]); err != nil {
		return nil, fmt.Errorf("snapshot: writing header: %w", err)
	}
	return sw, nil
}

func (sw *Writer) writeUvarint(v uint64) error {
	n := binary.PutUvarint(sw.scratch[:], v)
	_, err := sw.out.Write(sw.scratch[:n])
	return err
}

func (sw *Writer) writeString(s string) error {
	if err := sw.writeUvarint(uint64(len(s))); err != nil {
		return err
	}
	_, err := io.WriteString(sw.out, s)
	return err
}

// Term appends one dictionary entry. Terms must be written in ID order.
func (sw *Writer) Term(t rdf.Term) error {
	if t == nil {
		return fmt.Errorf("snapshot: nil term")
	}
	kind := t.Kind()
	if _, err := sw.out.Write([]byte{byte(kind)}); err != nil {
		return err
	}
	switch v := t.(type) {
	case rdf.IRI:
		return sw.writeString(string(v))
	case rdf.BlankNode:
		return sw.writeString(string(v))
	case rdf.Literal:
		if err := sw.writeString(v.Lexical); err != nil {
			return err
		}
		if err := sw.writeString(string(v.Datatype)); err != nil {
			return err
		}
		return sw.writeString(v.Lang)
	default:
		return fmt.Errorf("snapshot: unsupported term kind %v", kind)
	}
}

// Triple appends one SPO entry. Triples must arrive in SPO-sorted order
// (version 1: non-decreasing subjects; version 2: strictly increasing
// (s,p,o) — what a deduplicated sorted index always satisfies); positions
// are delta-coded against the previous call as the format allows.
func (sw *Writer) Triple(s, p, o uint32) error {
	if s < sw.prevS {
		return fmt.Errorf("snapshot: triples out of SPO order (subject %d after %d)", s, sw.prevS)
	}
	if sw.version == VersionV1 {
		if err := sw.writeUvarint(uint64(s - sw.prevS)); err != nil {
			return err
		}
		sw.prevS = s
		if err := sw.writeUvarint(uint64(p)); err != nil {
			return err
		}
		return sw.writeUvarint(uint64(o))
	}
	ds := s - sw.prevS
	if ds == 0 && sw.anyT {
		if p < sw.prevP {
			return fmt.Errorf("snapshot: triples out of SPO order (predicate %d after %d under subject %d)", p, sw.prevP, s)
		}
		dp := p - sw.prevP
		if dp == 0 && o <= sw.prevO {
			return fmt.Errorf("snapshot: triples out of SPO order (object %d after %d under subject %d predicate %d)", o, sw.prevO, s, p)
		}
		if err := sw.writeUvarint(0); err != nil {
			return err
		}
		if err := sw.writeUvarint(uint64(dp)); err != nil {
			return err
		}
		if dp == 0 {
			if err := sw.writeUvarint(uint64(o - sw.prevO)); err != nil {
				return err
			}
		} else if err := sw.writeUvarint(uint64(o)); err != nil {
			return err
		}
	} else {
		// New subject (the very first triple lands here too: its delta from
		// prevS == 0 is the subject itself, never zero for a valid ID).
		if s == 0 {
			return fmt.Errorf("snapshot: triple subject 0 is not a valid ID")
		}
		if err := sw.writeUvarint(uint64(ds)); err != nil {
			return err
		}
		if err := sw.writeUvarint(uint64(p)); err != nil {
			return err
		}
		if err := sw.writeUvarint(uint64(o)); err != nil {
			return err
		}
	}
	sw.prevS, sw.prevP, sw.prevO, sw.anyT = s, p, o, true
	return nil
}

// Stats appends the per-predicate cardinality table (version 2 only; at most
// once, after the triples). Entries must arrive sorted by ascending Pred.
func (sw *Writer) Stats(stats []PredStat) error {
	if sw.version == VersionV1 {
		return fmt.Errorf("snapshot: stats section requires format version %d", Version)
	}
	if sw.statsSet {
		return fmt.Errorf("snapshot: stats written twice")
	}
	sw.statsSet = true
	if err := sw.writeUvarint(uint64(len(stats))); err != nil {
		return err
	}
	prev := uint32(0)
	for i, st := range stats {
		if st.Pred == 0 || (i > 0 && st.Pred <= prev) {
			return fmt.Errorf("snapshot: stats not sorted by predicate ID at entry %d", i)
		}
		prev = st.Pred
		if err := sw.writeUvarint(uint64(st.Pred)); err != nil {
			return err
		}
		if err := sw.writeUvarint(st.Triples); err != nil {
			return err
		}
		if err := sw.writeUvarint(st.DistinctSubjects); err != nil {
			return err
		}
		if err := sw.writeUvarint(st.DistinctObjects); err != nil {
			return err
		}
	}
	return nil
}

// Close seals the snapshot: version 2 streams an empty stats section if none
// was written, then the checksum trailer is appended and flushed. It does
// not close the underlying writer.
func (sw *Writer) Close() error {
	if sw.version != VersionV1 && !sw.statsSet {
		if err := sw.Stats(nil); err != nil {
			return err
		}
	}
	var tr [4]byte
	binary.LittleEndian.PutUint32(tr[:], sw.crc.Sum32())
	if _, err := sw.bw.Write(tr[:]); err != nil {
		return fmt.Errorf("snapshot: writing checksum: %w", err)
	}
	if err := sw.bw.Flush(); err != nil {
		return fmt.Errorf("snapshot: flush: %w", err)
	}
	return nil
}

// crcReader feeds every byte read through the running checksum.
type crcReader struct {
	r   *bufio.Reader
	crc hash.Hash32
}

func (c *crcReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	if n > 0 {
		c.crc.Write(p[:n])
	}
	return n, err
}

func (c *crcReader) ReadByte() (byte, error) {
	b, err := c.r.ReadByte()
	if err == nil {
		c.crc.Write([]byte{b})
	}
	return b, err
}

// Reader deserializes one snapshot. Use NewReader, then exactly NumTerms
// Term calls and NumTriples Triple calls, optionally Stats (version 2), then
// Close to verify the checksum.
type Reader struct {
	raw       *bufio.Reader
	cr        *crcReader
	version   uint32
	terms     uint64
	tris      uint64
	prevS     uint32
	prevP     uint32
	prevO     uint32
	anyT      bool
	statsRead bool
}

// NewReader reads and validates the snapshot header on r. Both format
// versions are accepted; Version reports which one the stream uses.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	sr := &Reader{raw: br, cr: &crcReader{r: br, crc: crc32.NewIEEE()}}
	var hdr [28]byte
	if _, err := io.ReadFull(sr.cr, hdr[:]); err != nil {
		return nil, fmt.Errorf("snapshot: reading header: %w", err)
	}
	if string(hdr[:8]) != Magic {
		return nil, ErrBadMagic
	}
	sr.version = binary.LittleEndian.Uint32(hdr[8:12])
	if sr.version != VersionV1 && sr.version != Version {
		return nil, fmt.Errorf("%w: got %d, support %d and %d", ErrVersion, sr.version, VersionV1, Version)
	}
	sr.terms = binary.LittleEndian.Uint64(hdr[12:20])
	sr.tris = binary.LittleEndian.Uint64(hdr[20:28])
	return sr, nil
}

// Version returns the stream's format version.
func (sr *Reader) Version() int { return int(sr.version) }

// NumTerms returns the declared dictionary size.
func (sr *Reader) NumTerms() uint64 { return sr.terms }

// NumTriples returns the declared triple count.
func (sr *Reader) NumTriples() uint64 { return sr.tris }

func (sr *Reader) readString() (string, error) {
	n, err := binary.ReadUvarint(sr.cr)
	if err != nil {
		return "", corrupt("string length: %v", err)
	}
	if n > maxStringLen {
		return "", corrupt("string length %d exceeds limit", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(sr.cr, buf); err != nil {
		return "", corrupt("string body: %v", err)
	}
	return string(buf), nil
}

// Term reads the next dictionary entry.
func (sr *Reader) Term() (rdf.Term, error) {
	kind, err := sr.cr.ReadByte()
	if err != nil {
		return nil, corrupt("term kind: %v", err)
	}
	switch rdf.TermKind(kind) {
	case rdf.KindIRI:
		s, err := sr.readString()
		if err != nil {
			return nil, err
		}
		return rdf.IRI(s), nil
	case rdf.KindBlank:
		s, err := sr.readString()
		if err != nil {
			return nil, err
		}
		return rdf.BlankNode(s), nil
	case rdf.KindLiteral:
		lex, err := sr.readString()
		if err != nil {
			return nil, err
		}
		dt, err := sr.readString()
		if err != nil {
			return nil, err
		}
		lang, err := sr.readString()
		if err != nil {
			return nil, err
		}
		return rdf.Literal{Lexical: lex, Datatype: rdf.IRI(dt), Lang: lang}, nil
	default:
		return nil, corrupt("unknown term kind %d", kind)
	}
}

// Triple reads the next SPO entry, undoing the version's delta coding.
func (sr *Reader) Triple() (s, p, o uint32, err error) {
	ds, err := binary.ReadUvarint(sr.cr)
	if err != nil {
		return 0, 0, 0, corrupt("triple subject: %v", err)
	}
	if sr.version == VersionV1 {
		pv, err := binary.ReadUvarint(sr.cr)
		if err != nil {
			return 0, 0, 0, corrupt("triple predicate: %v", err)
		}
		ov, err := binary.ReadUvarint(sr.cr)
		if err != nil {
			return 0, 0, 0, corrupt("triple object: %v", err)
		}
		sv := uint64(sr.prevS) + ds
		if sv > 1<<32-1 || pv > 1<<32-1 || ov > 1<<32-1 {
			return 0, 0, 0, corrupt("triple ID overflows uint32")
		}
		sr.prevS = uint32(sv)
		return uint32(sv), uint32(pv), uint32(ov), nil
	}
	if ds == 0 && sr.anyT {
		// Repeated subject: predicate delta follows.
		dp, err := binary.ReadUvarint(sr.cr)
		if err != nil {
			return 0, 0, 0, corrupt("triple predicate delta: %v", err)
		}
		var ov uint64
		if dp == 0 {
			do, err := binary.ReadUvarint(sr.cr)
			if err != nil {
				return 0, 0, 0, corrupt("triple object delta: %v", err)
			}
			if do == 0 {
				return 0, 0, 0, corrupt("duplicate triple in SPO stream")
			}
			ov = uint64(sr.prevO) + do
		} else {
			ov, err = binary.ReadUvarint(sr.cr)
			if err != nil {
				return 0, 0, 0, corrupt("triple object: %v", err)
			}
		}
		pv := uint64(sr.prevP) + dp
		if pv > 1<<32-1 || ov > 1<<32-1 {
			return 0, 0, 0, corrupt("triple ID overflows uint32")
		}
		sr.prevP, sr.prevO = uint32(pv), uint32(ov)
		return sr.prevS, sr.prevP, sr.prevO, nil
	}
	// New subject: predicate and object arrive plain.
	pv, err := binary.ReadUvarint(sr.cr)
	if err != nil {
		return 0, 0, 0, corrupt("triple predicate: %v", err)
	}
	ov, err := binary.ReadUvarint(sr.cr)
	if err != nil {
		return 0, 0, 0, corrupt("triple object: %v", err)
	}
	sv := uint64(sr.prevS) + ds
	if sv > 1<<32-1 || pv > 1<<32-1 || ov > 1<<32-1 {
		return 0, 0, 0, corrupt("triple ID overflows uint32")
	}
	sr.prevS, sr.prevP, sr.prevO, sr.anyT = uint32(sv), uint32(pv), uint32(ov), true
	return sr.prevS, sr.prevP, sr.prevO, nil
}

// Stats reads the version-2 per-predicate cardinality table; it must be
// called after the declared triples. Version-1 streams have none and return
// nil. Entries arrive sorted by ascending predicate ID referencing the
// declared dictionary.
func (sr *Reader) Stats() ([]PredStat, error) {
	if sr.version == VersionV1 {
		return nil, nil
	}
	if sr.statsRead {
		return nil, corrupt("stats section read twice")
	}
	sr.statsRead = true
	count, err := binary.ReadUvarint(sr.cr)
	if err != nil {
		return nil, corrupt("stats count: %v", err)
	}
	if count > maxStatsEntries {
		return nil, corrupt("stats count %d exceeds limit", count)
	}
	const maxHint = 1 << 16
	out := make([]PredStat, 0, min(count, maxHint))
	prev := uint64(0)
	for i := uint64(0); i < count; i++ {
		pid, err := binary.ReadUvarint(sr.cr)
		if err != nil {
			return nil, corrupt("stats predicate: %v", err)
		}
		if pid == 0 || pid <= prev || pid > sr.terms {
			return nil, corrupt("stats predicate ID %d invalid at entry %d", pid, i)
		}
		prev = pid
		var vals [3]uint64
		for j := range vals {
			if vals[j], err = binary.ReadUvarint(sr.cr); err != nil {
				return nil, corrupt("stats entry %d: %v", i, err)
			}
		}
		out = append(out, PredStat{
			Pred:             uint32(pid),
			Triples:          vals[0],
			DistinctSubjects: vals[1],
			DistinctObjects:  vals[2],
		})
	}
	return out, nil
}

// Close reads the checksum trailer and verifies it against everything read
// so far. It must be called after the declared terms and triples have been
// consumed; a version-2 stats section not consumed via Stats is read and
// discarded so the checksum still covers the whole stream.
func (sr *Reader) Close() error {
	if sr.version != VersionV1 && !sr.statsRead {
		if _, err := sr.Stats(); err != nil {
			return err
		}
	}
	want := sr.cr.crc.Sum32()
	var tr [4]byte
	if _, err := io.ReadFull(sr.raw, tr[:]); err != nil {
		return fmt.Errorf("%w: missing checksum trailer: %v", ErrChecksum, err)
	}
	if got := binary.LittleEndian.Uint32(tr[:]); got != want {
		return fmt.Errorf("%w: stored %08x, computed %08x", ErrChecksum, got, want)
	}
	return nil
}

func corrupt(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}
