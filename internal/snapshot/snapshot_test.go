package snapshot

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"github.com/lodviz/lodviz/internal/rdf"
)

var testTerms = []rdf.Term{
	rdf.IRI("http://e/s"),
	rdf.BlankNode("b0"),
	rdf.NewLiteral("plain"),
	rdf.NewLangLiteral("hello", "en"),
	rdf.NewTypedLiteral("42", rdf.IRI("http://www.w3.org/2001/XMLSchema#integer")),
}

type id3 struct{ s, p, o uint32 }

var testTriples = []id3{{1, 1, 2}, {1, 1, 3}, {2, 1, 4}, {5, 1, 1}}

func encode(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf, len(testTerms), len(testTriples))
	if err != nil {
		t.Fatal(err)
	}
	for _, tm := range testTerms {
		if err := w.Term(tm); err != nil {
			t.Fatal(err)
		}
	}
	for _, tr := range testTriples {
		if err := w.Triple(tr.s, tr.p, tr.o); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestRoundTrip(t *testing.T) {
	data := encode(t)
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if r.NumTerms() != uint64(len(testTerms)) || r.NumTriples() != uint64(len(testTriples)) {
		t.Fatalf("header counts = %d/%d", r.NumTerms(), r.NumTriples())
	}
	for i, want := range testTerms {
		got, err := r.Term()
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("term %d = %v, want %v", i, got, want)
		}
	}
	for i, want := range testTriples {
		s, p, o, err := r.Triple()
		if err != nil {
			t.Fatal(err)
		}
		if (id3{s, p, o}) != want {
			t.Fatalf("triple %d = {%d %d %d}, want %v", i, s, p, o, want)
		}
	}
	if err := r.Close(); err != nil {
		t.Fatalf("checksum verify: %v", err)
	}
}

func TestBadMagic(t *testing.T) {
	data := encode(t)
	data[0] ^= 0xFF
	if _, err := NewReader(bytes.NewReader(data)); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("err = %v, want ErrBadMagic", err)
	}
}

func TestUnsupportedVersion(t *testing.T) {
	data := encode(t)
	data[8] = 99
	if _, err := NewReader(bytes.NewReader(data)); !errors.Is(err, ErrVersion) {
		t.Fatalf("err = %v, want ErrVersion", err)
	}
}

func TestChecksumDetectsFlippedByte(t *testing.T) {
	data := encode(t)
	data[30] ^= 0x01 // inside the dictionary payload
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	var readErr error
	for i := 0; i < len(testTerms) && readErr == nil; i++ {
		_, readErr = r.Term()
	}
	for i := 0; i < len(testTriples) && readErr == nil; i++ {
		_, _, _, readErr = r.Triple()
	}
	if readErr == nil {
		readErr = r.Close()
	}
	if readErr == nil {
		t.Fatal("flipped payload byte went undetected")
	}
}

func TestTruncationDetected(t *testing.T) {
	data := encode(t)
	for _, cut := range []int{len(data) - 1, len(data) - 4, 27, 10} {
		r, err := NewReader(bytes.NewReader(data[:cut]))
		if err != nil {
			continue // truncated inside the header: already an error
		}
		var readErr error
		for i := 0; i < len(testTerms) && readErr == nil; i++ {
			_, readErr = r.Term()
		}
		for i := 0; i < len(testTriples) && readErr == nil; i++ {
			_, _, _, readErr = r.Triple()
		}
		if readErr == nil {
			readErr = r.Close()
		}
		if readErr == nil {
			t.Fatalf("truncation at %d went undetected", cut)
		}
	}
}

func TestWriterRejectsOutOfOrderSubjects(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Triple(2, 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := w.Triple(1, 1, 1); err == nil {
		t.Fatal("out-of-order subject accepted")
	}
}

func TestCorruptStringLength(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, 1, 0)
	w.Term(rdf.IRI("http://e/x"))
	w.Close()
	data := buf.Bytes()
	// Overwrite the IRI length varint with an absurd value (10 bytes, all
	// continuation bits set except the last).
	big := []byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F}
	corrupted := append(append(append([]byte{}, data[:29]...), big...), data[30:]...)
	r, err := NewReader(bytes.NewReader(corrupted))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Term(); !errors.Is(err, ErrCorrupt) && err != io.ErrUnexpectedEOF {
		if err == nil {
			t.Fatal("absurd string length accepted")
		}
	}
}

// encodeV1 writes the shared fixture in the legacy format.
func encodeV1(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriterVersion(&buf, VersionV1, len(testTerms), len(testTriples))
	if err != nil {
		t.Fatal(err)
	}
	for _, tm := range testTerms {
		if err := w.Term(tm); err != nil {
			t.Fatal(err)
		}
	}
	for _, tr := range testTriples {
		if err := w.Triple(tr.s, tr.p, tr.o); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestV1RoundTrip pins backward compatibility: a legacy-format stream decodes
// to the same terms and triples through the same Reader.
func TestV1RoundTrip(t *testing.T) {
	data := encodeV1(t)
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if r.Version() != VersionV1 {
		t.Fatalf("Version() = %d, want %d", r.Version(), VersionV1)
	}
	for range testTerms {
		if _, err := r.Term(); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range testTriples {
		s, p, o, err := r.Triple()
		if err != nil {
			t.Fatal(err)
		}
		if (id3{s, p, o}) != want {
			t.Fatalf("triple %d = {%d %d %d}, want %v", i, s, p, o, want)
		}
	}
	if stats, err := r.Stats(); err != nil || stats != nil {
		t.Fatalf("v1 Stats() = %v, %v; want nil, nil", stats, err)
	}
	if err := r.Close(); err != nil {
		t.Fatalf("checksum verify: %v", err)
	}
}

// TestStatsRoundTrip pins the v2 stats section, including that Close skips
// an unread section without breaking the checksum.
func TestStatsRoundTrip(t *testing.T) {
	stats := []PredStat{
		{Pred: 1, Triples: 4, DistinctSubjects: 3, DistinctObjects: 4},
		{Pred: 3, Triples: 7, DistinctSubjects: 1, DistinctObjects: 7},
	}
	var buf bytes.Buffer
	w, err := NewWriter(&buf, len(testTerms), len(testTriples))
	if err != nil {
		t.Fatal(err)
	}
	for _, tm := range testTerms {
		if err := w.Term(tm); err != nil {
			t.Fatal(err)
		}
	}
	for _, tr := range testTriples {
		if err := w.Triple(tr.s, tr.p, tr.o); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Stats(stats); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if r.Version() != Version {
		t.Fatalf("Version() = %d, want %d", r.Version(), Version)
	}
	for range testTerms {
		if _, err := r.Term(); err != nil {
			t.Fatal(err)
		}
	}
	for range testTriples {
		if _, _, _, err := r.Triple(); err != nil {
			t.Fatal(err)
		}
	}
	got, err := r.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(stats) {
		t.Fatalf("got %d stats entries, want %d", len(got), len(stats))
	}
	for i := range got {
		if got[i] != stats[i] {
			t.Fatalf("stats[%d] = %+v, want %+v", i, got[i], stats[i])
		}
	}
	if err := r.Close(); err != nil {
		t.Fatalf("checksum verify: %v", err)
	}

	// Reading the same stream but never calling Stats must still checksum.
	r2, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for range testTerms {
		if _, err := r2.Term(); err != nil {
			t.Fatal(err)
		}
	}
	for range testTriples {
		if _, _, _, err := r2.Triple(); err != nil {
			t.Fatal(err)
		}
	}
	if err := r2.Close(); err != nil {
		t.Fatalf("checksum verify with skipped stats: %v", err)
	}
}

// TestV2RejectsUnsortedInput pins the v2 writer's strict-order checks and the
// reader's duplicate detection.
func TestV2RejectsUnsortedInput(t *testing.T) {
	newW := func() *Writer {
		var buf bytes.Buffer
		w, err := NewWriter(&buf, 5, 2)
		if err != nil {
			t.Fatal(err)
		}
		return w
	}
	w := newW()
	if err := w.Triple(2, 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := w.Triple(2, 1, 1); err == nil {
		t.Fatal("duplicate triple accepted")
	}
	w = newW()
	if err := w.Triple(2, 2, 1); err != nil {
		t.Fatal(err)
	}
	if err := w.Triple(2, 1, 5); err == nil {
		t.Fatal("descending predicate under one subject accepted")
	}
	w = newW()
	if err := w.Triple(0, 1, 1); err == nil {
		t.Fatal("subject ID 0 accepted")
	}
	w = newW()
	if err := w.Stats([]PredStat{{Pred: 2}, {Pred: 2}}); err == nil {
		t.Fatal("unsorted stats accepted")
	}
}

// TestV2SmallerOnHubs sanity-checks the point of the tighter coding: a hub
// subject with one multi-valued predicate costs ~1 byte per triple in v2.
func TestV2SmallerOnHubs(t *testing.T) {
	write := func(version int) int {
		var buf bytes.Buffer
		w, err := NewWriterVersion(&buf, version, 1, 1000)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Term(rdf.IRI("http://e/hub")); err != nil {
			t.Fatal(err)
		}
		for o := uint32(2); o < 1002; o++ {
			if err := w.Triple(1, 1, o); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		return buf.Len()
	}
	v1, v2 := write(VersionV1), write(Version)
	if v2 >= v1 {
		t.Fatalf("v2 hub encoding (%d bytes) not smaller than v1 (%d bytes)", v2, v1)
	}
}
