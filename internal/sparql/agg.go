package sparql

import (
	"fmt"
	"strings"

	"github.com/lodviz/lodviz/internal/rdf"
)

// evalAggExpr evaluates an expression that may contain aggregates over a
// group's rows. Non-aggregate subexpressions are evaluated against rep,
// the representative binding holding the group keys.
func evalAggExpr(e Expr, rows []Binding, rep Binding) (rdf.Term, error) {
	switch ex := e.(type) {
	case ExAggregate:
		return evalAggregate(ex, rows)
	case ExVar:
		t, ok := rep[ex.Name]
		if !ok {
			return nil, fmt.Errorf("%w: ?%s not a group key", errExpr, ex.Name)
		}
		return t, nil
	case ExTerm:
		return ex.Term, nil
	case ExUnary:
		inner, err := evalAggExpr(ex.Expr, rows, rep)
		if err != nil {
			return nil, err
		}
		return evalUnary(ExUnary{Op: ex.Op, Expr: ExTerm{Term: inner}}, rep)
	case ExBinary:
		l, err := evalAggExpr(ex.Left, rows, rep)
		if err != nil {
			return nil, err
		}
		r, err := evalAggExpr(ex.Right, rows, rep)
		if err != nil {
			return nil, err
		}
		return evalBinary(ExBinary{Op: ex.Op, Left: ExTerm{Term: l}, Right: ExTerm{Term: r}}, rep)
	case ExCall:
		args := make([]Expr, len(ex.Args))
		for i, a := range ex.Args {
			t, err := evalAggExpr(a, rows, rep)
			if err != nil {
				return nil, err
			}
			args[i] = ExTerm{Term: t}
		}
		return evalCall(ExCall{Name: ex.Name, Args: args}, rep)
	default:
		return nil, fmt.Errorf("%w: unsupported expression in aggregate context", errExpr)
	}
}

// evalAggregate computes one aggregate over the group's rows.
func evalAggregate(agg ExAggregate, rows []Binding) (rdf.Term, error) {
	// Collect the argument values (skipping error/unbound rows, per spec).
	var values []rdf.Term
	if agg.Star {
		values = make([]rdf.Term, len(rows))
		for i := range rows {
			values[i] = rdf.NewInteger(int64(i)) // placeholders; COUNT(*) counts rows
		}
	} else {
		for _, r := range rows {
			if t, err := evalExpr(agg.Arg, r); err == nil {
				values = append(values, t)
			}
		}
	}
	if agg.Distinct {
		seen := map[rdf.Term]struct{}{}
		uniq := values[:0:0]
		for _, v := range values {
			if _, dup := seen[v]; !dup {
				seen[v] = struct{}{}
				uniq = append(uniq, v)
			}
		}
		values = uniq
	}
	switch agg.Name {
	case "COUNT":
		return rdf.NewInteger(int64(len(values))), nil
	case "SUM":
		sum := 0.0
		allInt := true
		for _, v := range values {
			f, ok := numeric(v)
			if !ok {
				return nil, fmt.Errorf("%w: SUM over non-numeric", errExpr)
			}
			if l, isLit := v.(rdf.Literal); isLit {
				if _, isInt := l.Int(); !isInt {
					allInt = false
				}
			}
			sum += f
		}
		if allInt {
			return rdf.NewInteger(int64(sum)), nil
		}
		return rdf.NewDouble(sum), nil
	case "AVG":
		if len(values) == 0 {
			return rdf.NewInteger(0), nil
		}
		sum := 0.0
		for _, v := range values {
			f, ok := numeric(v)
			if !ok {
				return nil, fmt.Errorf("%w: AVG over non-numeric", errExpr)
			}
			sum += f
		}
		return rdf.NewDouble(sum / float64(len(values))), nil
	case "MIN", "MAX":
		if len(values) == 0 {
			return nil, fmt.Errorf("%w: %s of empty group", errExpr, agg.Name)
		}
		best := values[0]
		for _, v := range values[1:] {
			c := rdf.Compare(v, best)
			if (agg.Name == "MIN" && c < 0) || (agg.Name == "MAX" && c > 0) {
				best = v
			}
		}
		return best, nil
	case "SAMPLE":
		if len(values) == 0 {
			return nil, fmt.Errorf("%w: SAMPLE of empty group", errExpr)
		}
		return values[0], nil
	case "GROUP_CONCAT":
		var b strings.Builder
		for i, v := range values {
			if i > 0 {
				b.WriteString(agg.Separator)
			}
			switch t := v.(type) {
			case rdf.Literal:
				b.WriteString(t.Lexical)
			case rdf.IRI:
				b.WriteString(string(t))
			default:
				b.WriteString(v.String())
			}
		}
		return rdf.NewLiteral(b.String()), nil
	default:
		return nil, fmt.Errorf("%w: unknown aggregate %s", errExpr, agg.Name)
	}
}
