package sparql

import "github.com/lodviz/lodviz/internal/rdf"

// QueryForm distinguishes SELECT from ASK queries.
type QueryForm int

const (
	// FormSelect is a SELECT query returning solution rows.
	FormSelect QueryForm = iota
	// FormAsk is an ASK query returning a boolean.
	FormAsk
)

// Query is a parsed SPARQL query.
type Query struct {
	Form     QueryForm
	Distinct bool
	// Star is true for SELECT *.
	Star bool
	// Projection lists the selected expressions in order.
	Projection []SelectItem
	Where      *Group
	GroupBy    []Expr
	Having     []Expr
	OrderBy    []OrderKey
	Limit      int // -1 when absent
	Offset     int
	prefixes   map[string]string
}

// SelectItem is one projection entry: a bare variable, or (expr AS ?var).
type SelectItem struct {
	// Var is the output column name (without '?').
	Var string
	// Expr is nil for bare variables.
	Expr Expr
}

// OrderKey is one ORDER BY sort key.
type OrderKey struct {
	Expr Expr
	Desc bool
}

// Group is a SPARQL group graph pattern: an ordered list of elements plus the
// group's filters (applied, per the spec, after the group's patterns).
type Group struct {
	Elems   []GroupElem
	Filters []Expr
}

// GroupElem is an element of a group graph pattern.
type GroupElem interface{ groupElem() }

// TriplePattern is a triple pattern; each position is a Node.
type TriplePattern struct {
	S, P, O Node
}

func (TriplePattern) groupElem() {}

// Optional is an OPTIONAL { ... } element.
type Optional struct{ Inner *Group }

func (Optional) groupElem() {}

// Union is { A } UNION { B } (n-way unions are nested).
type Union struct{ Left, Right *Group }

func (Union) groupElem() {}

// SubGroup is a nested { ... } group.
type SubGroup struct{ Inner *Group }

func (SubGroup) groupElem() {}

// Bind is BIND(expr AS ?var).
type Bind struct {
	Expr Expr
	Var  string
}

func (Bind) groupElem() {}

// Values is an inline VALUES data block.
type Values struct {
	Vars []string
	// Rows holds one term per var; nil entries are UNDEF.
	Rows [][]rdf.Term
}

func (Values) groupElem() {}

// Service is a SPARQL 1.1 federated-query SERVICE clause: the inner group is
// evaluated against a remote SPARQL endpoint and joined with the local
// solutions. With Silent set, a failing or unreachable endpoint contributes
// the identity solution instead of failing the whole query.
type Service struct {
	// Endpoint is the remote SPARQL endpoint IRI.
	Endpoint string
	// Silent is true for SERVICE SILENT.
	Silent bool
	// Inner is the graph pattern evaluated remotely.
	Inner *Group
}

func (Service) groupElem() {}

// Node is a position in a triple pattern: either a constant term or a
// variable.
type Node struct {
	// Term is the constant, nil when the node is a variable.
	Term rdf.Term
	// Var is the variable name (without '?'), empty for constants.
	Var string
}

// IsVar reports whether the node is a variable.
func (n Node) IsVar() bool { return n.Var != "" }

// Expr is a SPARQL expression.
type Expr interface{ expr() }

// ExVar references a variable.
type ExVar struct{ Name string }

// ExTerm is a constant term.
type ExTerm struct{ Term rdf.Term }

// ExBinary is a binary operation: || && = != < > <= >= + - * /.
type ExBinary struct {
	Op          string
	Left, Right Expr
}

// ExUnary is unary ! or -.
type ExUnary struct {
	Op   string
	Expr Expr
}

// ExCall is a builtin function call, e.g. REGEX(?s, "^a").
type ExCall struct {
	Name string
	Args []Expr
}

// ExAggregate is an aggregate expression, valid in SELECT/HAVING/ORDER BY of
// grouped queries.
type ExAggregate struct {
	// Name is COUNT, SUM, AVG, MIN, MAX, SAMPLE or GROUP_CONCAT.
	Name     string
	Distinct bool
	// Star is true for COUNT(*).
	Star bool
	Arg  Expr
	// Separator applies to GROUP_CONCAT (default " ").
	Separator string
}

func (ExVar) expr()       {}
func (ExTerm) expr()      {}
func (ExBinary) expr()    {}
func (ExUnary) expr()     {}
func (ExCall) expr()      {}
func (ExAggregate) expr() {}
