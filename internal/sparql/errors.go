package sparql

import "errors"

// Error classes. Every error returned by this package matches exactly one of
// these under errors.Is, so callers (the HTTP server in particular) can map
// failures without string matching: ErrParse is the caller's fault (a 400),
// ErrEval is the engine's or the data's (a 500, or a timeout when the error
// also matches context.DeadlineExceeded).
var (
	// ErrParse classifies syntax errors: the query text is not valid SPARQL.
	ErrParse = errors.New("sparql: parse error")
	// ErrEval classifies evaluation failures on a well-formed query,
	// including context cancellation and deadline expiry (the underlying
	// context error stays reachable through the Unwrap chain).
	ErrEval = errors.New("sparql: evaluation error")
)

// classified attaches an error class to an underlying error without
// disturbing its message. Unwrap exposes both, so errors.Is finds the class
// sentinel and anything the original error wraps (e.g. context.Canceled).
type classified struct {
	class error
	err   error
}

func (c *classified) Error() string   { return c.err.Error() }
func (c *classified) Unwrap() []error { return []error{c.class, c.err} }

// wrapParse classifies err as a parse failure.
func wrapParse(err error) error {
	if err == nil || errors.Is(err, ErrParse) {
		return err
	}
	return &classified{class: ErrParse, err: err}
}

// wrapEval classifies err as an evaluation failure.
func wrapEval(err error) error {
	if err == nil || errors.Is(err, ErrEval) || errors.Is(err, ErrParse) {
		return err
	}
	return &classified{class: ErrEval, err: err}
}
