package sparql

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"github.com/lodviz/lodviz/internal/rdf"
	"github.com/lodviz/lodviz/internal/store"
)

func errTestStore(t *testing.T, n int) *store.Store {
	t.Helper()
	var triples []rdf.Triple
	for i := 0; i < n; i++ {
		triples = append(triples, rdf.Triple{
			S: rdf.IRI("http://e/s" + strings.Repeat("x", i%7)),
			P: rdf.IRI("http://e/p"),
			O: rdf.NewInteger(int64(i)),
		})
	}
	st, err := store.Load(triples)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestParseErrorClassified(t *testing.T) {
	_, err := Parse("SELECT WHERE {{{ nope")
	if err == nil {
		t.Fatal("want parse error")
	}
	if !errors.Is(err, ErrParse) {
		t.Fatalf("error %v does not match ErrParse", err)
	}
	if errors.Is(err, ErrEval) {
		t.Fatalf("parse error %v also matches ErrEval", err)
	}
	if !strings.Contains(err.Error(), "parse") {
		t.Fatalf("message lost: %q", err.Error())
	}
}

func TestExecParseErrorClassified(t *testing.T) {
	st := errTestStore(t, 4)
	_, err := Exec(st, "not sparql at all")
	if !errors.Is(err, ErrParse) {
		t.Fatalf("Exec error %v does not match ErrParse", err)
	}
}

func TestEvalErrorClassified(t *testing.T) {
	st := errTestStore(t, 4)
	// A bare projected variable that is not a GROUP BY key is an
	// evaluation-time failure on a syntactically valid query.
	_, err := Exec(st, "SELECT ?s (COUNT(?o) AS ?n) WHERE { ?s ?p ?o } GROUP BY ?p")
	if err == nil {
		t.Skip("engine tolerates non-key projection; no eval error available here")
	}
	if !errors.Is(err, ErrEval) {
		t.Fatalf("error %v does not match ErrEval", err)
	}
	if errors.Is(err, ErrParse) {
		t.Fatalf("eval error %v also matches ErrParse", err)
	}
}

func TestExecCtxCancelled(t *testing.T) {
	st := errTestStore(t, 64)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := ExecCtx(ctx, st, "SELECT ?s WHERE { ?s ?p ?o }", Options{})
	if err == nil {
		t.Fatal("want error from cancelled context")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not match context.Canceled", err)
	}
	if !errors.Is(err, ErrEval) {
		t.Fatalf("error %v does not match ErrEval", err)
	}
}

func TestExecCtxDeadline(t *testing.T) {
	st := errTestStore(t, 64)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	_, err := ExecCtx(ctx, st, "SELECT ?s WHERE { ?s ?p ?o . ?s ?q ?v }", Options{})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error %v does not match context.DeadlineExceeded", err)
	}
}

func TestExecCtxBackgroundSucceeds(t *testing.T) {
	st := errTestStore(t, 16)
	res, err := ExecCtx(context.Background(), st, "SELECT ?s WHERE { ?s ?p ?o }", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 16 {
		t.Fatalf("rows = %d, want 16", len(res.Rows))
	}
}

// TestExecCtxMidScanCancel cancels while a large single-pattern scan is in
// flight; the per-match poll inside ForEach must stop it.
func TestExecCtxMidScanCancel(t *testing.T) {
	st := errTestStore(t, 20000)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		// Cancel as soon as evaluation plausibly started.
		time.Sleep(50 * time.Microsecond)
		cancel()
		close(done)
	}()
	_, err := ExecCtx(ctx, st, "SELECT ?a ?b WHERE { ?a ?p ?x . ?b ?q ?x }", Options{Parallelism: 1})
	<-done
	// Either the query won the race (nil) or it was cancelled; what must
	// never happen is a non-context error.
	if err != nil && !errors.Is(err, context.Canceled) {
		t.Fatalf("unexpected error class: %v", err)
	}
}
