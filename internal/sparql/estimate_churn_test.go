package sparql

import (
	"fmt"
	"sort"
	"sync/atomic"
	"testing"

	"github.com/lodviz/lodviz/internal/rdf"
	"github.com/lodviz/lodviz/internal/store"
)

// countingIDSource records which ID-space access path the executor takes:
// ScanIDs (merge joins and scan-crosses) vs ForEachID (per-binding probes).
type countingIDSource struct {
	*store.Store
	scans  atomic.Int64
	probes atomic.Int64
}

func (c *countingIDSource) ScanIDs(s, p, o store.ID, lead store.Position) (store.IDRun, bool) {
	c.scans.Add(1)
	return c.Store.ScanIDs(s, p, o, lead)
}

func (c *countingIDSource) ForEachID(s, p, o store.ID, fn func(store.IDTriple) bool) {
	c.probes.Add(1)
	c.Store.ForEachID(s, p, o, fn)
}

// inflatingIDSource reproduces the pre-fix estimator: EstimateCountIDs as if
// tombstones were ignored (base range + delta, deletions invisible).
type inflatingIDSource struct {
	*countingIDSource
	inflate int
}

func (c *inflatingIDSource) EstimateCountIDs(s, p, o store.ID) int {
	return c.Store.EstimateCountIDs(s, p, o) + c.inflate
}

// churnedStore builds a store where one predicate has been almost entirely
// deleted without triggering a compaction: 90k base triples, <http://x/val>
// on 10,000 entities, then 9,900 of those deleted — tombstones stay under
// the len(spo)/8 merge threshold, so the planner sees base ranges that are
// 100× the live count unless the estimator subtracts tombstones.
func churnedStore(t testing.TB) *store.Store {
	t.Helper()
	const entities = 20000
	const valued = 10000
	const liveVals = 100
	ent := func(i int) rdf.IRI { return rdf.IRI(fmt.Sprintf("http://x/e%d", i)) }
	triples := make([]rdf.Triple, 0, 4*entities+valued+4)
	for i := 0; i < entities; i++ {
		for f := 0; f < 4; f++ {
			triples = append(triples, rdf.Triple{
				S: ent(i),
				P: rdf.IRI(fmt.Sprintf("http://x/filler%d", f)),
				O: rdf.NewInteger(int64(i)),
			})
		}
	}
	for i := 0; i < valued; i++ {
		triples = append(triples, rdf.Triple{S: ent(i), P: "http://x/val", O: rdf.NewInteger(int64(i))})
	}
	for i := 0; i < 4; i++ {
		triples = append(triples, rdf.Triple{S: ent(i), P: "http://x/pick", O: rdf.NewLiteral("yes")})
	}
	st, err := store.Load(triples)
	if err != nil {
		t.Fatal(err)
	}
	st.Compact()

	doomed := make([]rdf.Triple, 0, valued-liveVals)
	for i := liveVals; i < valued; i++ {
		doomed = append(doomed, rdf.Triple{S: ent(i), P: "http://x/val", O: rdf.NewInteger(int64(i))})
	}
	n, err := st.DeleteBatch(doomed)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(doomed) {
		t.Fatalf("DeleteBatch removed %d, want %d", n, len(doomed))
	}
	return st
}

// TestEstimateCountSubtractsTombstones pins the estimator itself.
func TestEstimateCountSubtractsTombstones(t *testing.T) {
	st := churnedStore(t)
	val := rdf.IRI("http://x/val")
	if got := st.EstimateCount(store.Pattern{P: val}); got != 100 {
		t.Errorf("EstimateCount(?s val ?o) = %d, want 100 (10000 base - 9900 tombstones)", got)
	}
	pid, ok := st.LookupTermID(rdf.Term(val))
	if !ok {
		t.Fatal("val predicate not in dictionary")
	}
	if got := st.EstimateCountIDs(0, pid, 0); got != 100 {
		t.Errorf("EstimateCountIDs(0, val, 0) = %d, want 100", got)
	}
	// A fully bound estimate of a tombstoned triple is zero, not one.
	dead := store.Pattern{S: rdf.IRI("http://x/e5000"), P: val, O: rdf.NewInteger(5000)}
	if got := st.EstimateCount(dead); got != 0 {
		t.Errorf("EstimateCount(tombstoned triple) = %d, want 0", got)
	}
}

// TestIDJoinDeleteChurnFlipsStrategy is the planner-level regression: after
// the delete churn, the 4-row join against the val predicate must take the
// merge path (100 live ≤ 4 rows × mergeScanFactor), not per-row probes sized
// for the 10,000 pre-delete triples. The inflating wrapper replays the old
// tombstone-blind estimate and proves the strategy choice rides on it.
func TestIDJoinDeleteChurnFlipsStrategy(t *testing.T) {
	st := churnedStore(t)
	const q = `SELECT ?e ?v WHERE { ?e <http://x/pick> "yes" . ?e <http://x/val> ?v }`

	fixed := &countingIDSource{Store: st}
	res, err := ExecOpts(fixed, q, Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("got %d rows, want 4", len(res.Rows))
	}
	// The first pattern (all-fresh ?e) is one ForEachID scan-cross by design;
	// the val pattern must NOT add per-binding probes on top of it.
	if got := fixed.probes.Load(); got > 1 {
		t.Errorf("tombstone-aware estimate probed %d times; want the merge path (≤1 scan-cross)", got)
	}
	if fixed.scans.Load() == 0 {
		t.Error("merge path never called ScanIDs")
	}

	// Same query, same store, pre-fix estimate: the planner overcounts the
	// churned predicate 100× and falls back to probing per binding.
	inflated := &inflatingIDSource{countingIDSource: &countingIDSource{Store: st}, inflate: 9900}
	if _, err := ExecOpts(inflated, q, Options{Parallelism: 1}); err != nil {
		t.Fatal(err)
	}
	if got, base := inflated.probes.Load(), fixed.probes.Load(); got < base+4 {
		t.Errorf("tombstone-blind estimate probed %d times (fixed path: %d); regression test lost its teeth", got, base)
	}

	// Differential: the chosen strategy must not change the answer.
	want, err := ExecOpts(st, q, Options{Parallelism: 1, NoIDJoin: true})
	if err != nil {
		t.Fatal(err)
	}
	if gotRows, wantRows := rowStrings(res), rowStrings(want); !equalStrings(gotRows, wantRows) {
		t.Errorf("merge-path rows differ from hash-path rows:\n got %v\nwant %v", gotRows, wantRows)
	}
}

func rowStrings(res *Results) []string {
	out := make([]string, 0, len(res.Rows))
	for _, row := range res.Rows {
		s := ""
		for _, v := range res.Vars {
			s += fmt.Sprintf("%s=%v;", v, row[v])
		}
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
